package turbohom

// One testing.B benchmark per table and figure of the paper's evaluation
// (§7), at laptop scales. The full parameter sweeps with the paper's
// 5-run timing protocol live in cmd/benchtables; these benches give
// `go test -bench` visibility into the same code paths and their
// allocation behaviour.
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/baseline/bitmat"
	"repro/internal/baseline/rdf3x"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/transform"
)

// benchScale keeps every fixture laptop-fast; cmd/benchtables sweeps real
// scales.
const (
	benchLUBMScale = 1
	benchBSBM      = 150
	benchYAGO      = 800
	benchBTC       = 800
)

// fixtures are shared across benchmarks and built once.
var (
	fixOnce sync.Once
	fix     struct {
		lubm *datagen.Dataset
		bsbm *datagen.Dataset
		yago *datagen.Dataset
		btc  *datagen.Dataset

		lubmAware  *transform.Data
		lubmDirect *transform.Data

		turbo     *engine.Engine // type-aware, optimized
		turboDir  *engine.Engine // direct, unoptimized (TurboHOM)
		turboBase *engine.Engine // type-aware, unoptimized
		rdf3x     *rdf3x.Store
		bitmat    *bitmat.Store

		store *Store // public API over the LUBM triples
	}
)

func fixtures() {
	fixOnce.Do(func() {
		fix.lubm = datagen.LUBMDataset(benchLUBMScale)
		fix.bsbm = datagen.BSBMDataset(benchBSBM)
		fix.yago = datagen.YAGODataset(benchYAGO)
		fix.btc = datagen.BTCDataset(benchBTC)

		fix.lubmAware = transform.Build(fix.lubm.Triples, transform.TypeAware)
		fix.lubmDirect = transform.Build(fix.lubm.Triples, transform.Direct)

		fix.turbo = engine.New(fix.lubmAware, core.Optimized())
		fix.turboDir = engine.New(fix.lubmDirect, core.Baseline())
		fix.turboBase = engine.New(fix.lubmAware, core.Baseline())
		fix.rdf3x = rdf3x.Load(fix.lubm.Triples)
		fix.bitmat = bitmat.Load(fix.lubm.Triples)

		fix.store = New(fix.lubm.Triples, nil)
	})
}

func benchCount(b *testing.B, count func(string) (int, error), query string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := count(query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_TransformSizes regenerates the Table 1 statistic: the
// cost of each transformation over the LUBM triples.
func BenchmarkTable1_TransformSizes(b *testing.B) {
	fixtures()
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			transform.Build(fix.lubm.Triples, transform.Direct)
		}
	})
	b.Run("type-aware", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			transform.Build(fix.lubm.Triples, transform.TypeAware)
		}
	})
}

// BenchmarkTable2_LUBMSolutions counts every LUBM query's solutions with
// TurboHOM++ (the Table 2 computation).
func BenchmarkTable2_LUBMSolutions(b *testing.B) {
	fixtures()
	for _, q := range fix.lubm.Queries {
		b.Run(q.ID, func(b *testing.B) { benchCount(b, fix.turbo.Count, q.Text) })
	}
}

// BenchmarkTable3_LUBM times the LUBM workload per engine — the Table 3
// comparison (TurboHOM++ vs the merge-join and bitmap baselines).
func BenchmarkTable3_LUBM(b *testing.B) {
	fixtures()
	engines := []struct {
		name  string
		count func(string) (int, error)
	}{
		{"TurboHOMpp", fix.turbo.Count},
		{"RDF3X", fix.rdf3x.Count},
		{"SystemX", fix.bitmat.Count},
	}
	for _, e := range engines {
		for _, q := range fix.lubm.Queries {
			b.Run(e.name+"/"+q.ID, func(b *testing.B) { benchCount(b, e.count, q.Text) })
		}
	}
}

// BenchmarkTable4_YAGO times the YAGO workload (Table 4).
func BenchmarkTable4_YAGO(b *testing.B) {
	fixtures()
	eng := engine.New(transform.Build(fix.yago.Triples, transform.TypeAware), core.Optimized())
	for _, q := range fix.yago.Queries {
		b.Run(q.ID, func(b *testing.B) { benchCount(b, eng.Count, q.Text) })
	}
}

// BenchmarkTable5_BTC times the BTC workload (Table 5).
func BenchmarkTable5_BTC(b *testing.B) {
	fixtures()
	eng := engine.New(transform.Build(fix.btc.Triples, transform.TypeAware), core.Optimized())
	for _, q := range fix.btc.Queries {
		b.Run(q.ID, func(b *testing.B) { benchCount(b, eng.Count, q.Text) })
	}
}

// BenchmarkTable6_BSBM times the BSBM explore mix with its OPTIONAL /
// FILTER / UNION features (Table 6).
func BenchmarkTable6_BSBM(b *testing.B) {
	fixtures()
	eng := engine.New(transform.Build(fix.bsbm.Triples, transform.TypeAware), core.Optimized())
	for _, q := range fix.bsbm.Queries {
		b.Run(q.ID, func(b *testing.B) { benchCount(b, eng.Count, q.Text) })
	}
}

// BenchmarkTable7_TypeAware contrasts direct vs type-aware transformation
// with optimizations off (Table 7) on the queries the transformation helps
// most (Q6, Q13, Q14 become point- or near-point-shaped).
func BenchmarkTable7_TypeAware(b *testing.B) {
	fixtures()
	for _, id := range []string{"Q2", "Q6", "Q13", "Q14"} {
		q := datagen.LUBMQuery(id)
		b.Run("direct/"+id, func(b *testing.B) { benchCount(b, fix.turboDir.Count, q.Text) })
		b.Run("type-aware/"+id, func(b *testing.B) { benchCount(b, fix.turboBase.Count, q.Text) })
	}
}

// BenchmarkFig6_DirectTransform is the Figure 6 configuration: unoptimized
// TurboHOM with the direct transformation against both baselines, on the
// queries the paper highlights (selective Q7 vs exploration-heavy Q2/Q9).
func BenchmarkFig6_DirectTransform(b *testing.B) {
	fixtures()
	engines := []struct {
		name  string
		count func(string) (int, error)
	}{
		{"TurboHOM", fix.turboDir.Count},
		{"RDF3X", fix.rdf3x.Count},
		{"SystemX", fix.bitmat.Count},
	}
	for _, e := range engines {
		for _, id := range []string{"Q2", "Q7", "Q9"} {
			q := datagen.LUBMQuery(id)
			b.Run(e.name+"/"+id, func(b *testing.B) { benchCount(b, e.count, q.Text) })
		}
	}
}

// BenchmarkFig15_Optimizations applies each optimization alone to the
// unoptimized type-aware engine on Q2 and Q9 (Figure 15's ablation).
func BenchmarkFig15_Optimizations(b *testing.B) {
	fixtures()
	variants := []struct {
		name string
		opts core.Opts
	}{
		{"baseline", core.Baseline()},
		{"INT", core.Opts{Intersect: true}},
		{"NLF", core.Opts{NoNLF: true}},
		{"DEG", core.Opts{NoDegree: true}},
		{"REUSE", core.Opts{ReuseOrder: true}},
	}
	for _, v := range variants {
		eng := engine.New(fix.lubmAware, v.opts)
		for _, id := range []string{"Q2", "Q9"} {
			q := datagen.LUBMQuery(id)
			b.Run(v.name+"/"+id, func(b *testing.B) { benchCount(b, eng.Count, q.Text) })
		}
	}
}

// BenchmarkFig16_Parallel sweeps worker counts on Q2 and Q9 (Figure 16's
// speed-up experiment).
func BenchmarkFig16_Parallel(b *testing.B) {
	fixtures()
	for _, workers := range []int{1, 2, 4} {
		opts := core.Optimized()
		opts.Workers = workers
		eng := engine.New(fix.lubmAware, opts)
		for _, id := range []string{"Q2", "Q9"} {
			q := datagen.LUBMQuery(id)
			b.Run(q.ID+"/workers-"+string(rune('0'+workers)), func(b *testing.B) {
				benchCount(b, eng.Count, q.Text)
			})
		}
	}
}

// BenchmarkLoad measures end-to-end store construction (transform + index
// build), the paper's loading phase.
func BenchmarkLoad(b *testing.B) {
	fixtures()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(fix.lubm.Triples, nil)
	}
}

// BenchmarkPrepareVsQuery contrasts the per-call cost of the one-shot
// Query path (re-parse and re-plan on every execution) with a Prepared
// executed many times: the amortization argument behind the prepared-query
// API. Q1 is selective, so the front end dominates and the gap is the
// parse+plan cost itself.
func BenchmarkPrepareVsQuery(b *testing.B) {
	fixtures()
	q := datagen.LUBMQuery("Q1").Text
	ctx := context.Background()

	b.Run("QueryPerCall", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fix.store.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PrepareOnce", func(b *testing.B) {
		p, err := fix.store.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PrepareOnceCount", func(b *testing.B) {
		p, err := fix.store.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Count(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamFirstK contrasts pulling the first k rows off a streaming
// cursor — Close abandons the remaining candidate regions — with full
// materialization of the same query. Q14 is the paper's big class scan, so
// the full result set is large and the early-termination win is the point
// of the cursor API.
func BenchmarkStreamFirstK(b *testing.B) {
	fixtures()
	q := datagen.LUBMQuery("Q14").Text
	ctx := context.Background()
	p, err := fix.store.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("FullMaterialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := p.Exec(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() == 0 {
				b.Fatal("empty result")
			}
		}
	})
	b.Run("StreamFirst5", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows := p.Select(ctx)
			for j := 0; j < 5; j++ {
				if !rows.Next() {
					b.Fatal("missing row")
				}
			}
			if err := rows.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNECStar is the NEC reduction's acceptance benchmark: a
// star-shaped query with repeated unlabeled neighbors (the LUBM Q4/Q7
// shape — one subject, one predicate, several object variables) counted
// with the reduction on and off. NEC-on enumerates one search path per hub
// and totals the fanout^k expansions combinatorially; NEC-off pays the full
// per-permutation search.
func BenchmarkNECStar(b *testing.B) {
	const (
		hubs   = 64
		fanout = 12
	)
	e := func(s string) Term { return NewIRI("http://ex.org/" + s) }
	var ts []Triple
	for h := 0; h < hubs; h++ {
		hub := e(fmt.Sprintf("hub%d", h))
		ts = append(ts, Triple{S: hub, P: TypeTerm, O: e("Hub")})
		for f := 0; f < fanout; f++ {
			ts = append(ts, Triple{S: hub, P: e("knows"), O: e(fmt.Sprintf("friend%d_%d", h, f))})
		}
	}
	const q = `PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ex: <http://ex.org/>
SELECT ?h ?a ?b ?c WHERE { ?h rdf:type ex:Hub . ?h ex:knows ?a . ?h ex:knows ?b . ?h ex:knows ?c . }`

	for _, v := range []struct {
		name string
		opts *Options
	}{
		{"NEC-on", &Options{Workers: 1}},
		{"NEC-off", &Options{Workers: 1, NEC: NECOff}},
	} {
		store := New(ts, v.opts)
		p, err := store.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		want := hubs * fanout * fanout * fanout
		if n, err := p.Count(context.Background()); err != nil || n != want {
			b.Fatalf("count = %d (%v), want %d", n, err, want)
		}
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Count(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeltaOverlay is the update tentpole's acceptance benchmark: the
// same LUBM query counted (a) over a store whose last ~5% of triples sit in
// the delta overlay, (b) over the same store after Compact folded them into
// the CSR base, and (c) during updates (an insert/delete pair between
// counts). The acceptance bar is query-over-delta within 2× of compacted
// and Compact restoring parity.
func BenchmarkDeltaOverlay(b *testing.B) {
	fixtures()
	triples := fix.lubm.Triples
	cut := len(triples) - len(triples)/20
	q := datagen.LUBMQuery("Q2").Text
	ctx := context.Background()

	mkStore := func() (*Store, *Prepared) {
		s := New(triples[:cut], &Options{Workers: 1})
		s.Insert(triples[cut:])
		p, err := s.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		return s, p
	}

	sDelta, pDelta := mkStore()
	want, err := pDelta.Count(ctx)
	if err != nil {
		b.Fatal(err)
	}
	sCompact, pCompact := mkStore()
	sCompact.Compact()
	if n, err := pCompact.Count(ctx); err != nil || n != want {
		b.Fatalf("compacted count = %d (%v), want %d", n, err, want)
	}

	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n, err := pDelta.Count(ctx); err != nil || n != want {
				b.Fatalf("count = %d (%v), want %d", n, err, want)
			}
		}
	})
	b.Run("compacted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n, err := pCompact.Count(ctx); err != nil || n != want {
				b.Fatalf("count = %d (%v), want %d", n, err, want)
			}
		}
	})
	b.Run("query-during-updates", func(b *testing.B) {
		s, p := mkStore()
		extra := Triple{S: NewIRI("http://ex.org/upd-s"), P: NewIRI("http://ex.org/upd-p"), O: NewIRI("http://ex.org/upd-o")}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Insert([]Triple{extra})
			s.Delete([]Triple{extra})
			if _, err := p.Count(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = sDelta
}

// BenchmarkParallelSelect is the ordered-region-pipeline acceptance
// benchmark: draining a streaming cursor over an exploration-heavy LUBM
// query with sequential matching vs the parallel pipeline. Row order is
// identical in both configurations (differential-tested), so the comparison
// is pure throughput. On a multi-core box the parallel drain should be ≥2x;
// the CI bench-gate holds whatever this records against regressions.
func BenchmarkParallelSelect(b *testing.B) {
	fixtures()
	q := datagen.LUBMQuery("Q9").Text
	ctx := context.Background()

	parallel := runtime.GOMAXPROCS(0)
	if parallel < 2 {
		parallel = 2 // still exercises the pipeline machinery on 1-core boxes
	}
	for _, v := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", parallel},
	} {
		store := New(fix.lubm.Triples, &Options{Workers: v.workers})
		p, err := store.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		var want int
		rows := p.Select(ctx)
		for rows.Next() {
			want++
		}
		if err := rows.Close(); err != nil || want == 0 {
			b.Fatalf("fixture drain: %d rows, %v", want, err)
		}
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				rows := p.Select(ctx)
				for rows.Next() {
					n++
				}
				if err := rows.Close(); err != nil || n != want {
					b.Fatalf("drained %d rows (%v), want %d", n, err, want)
				}
			}
			b.ReportMetric(float64(want)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkNECStarEnumerate measures the expansion path with a visitor (full
// row materialization), where NEC still wins by sharing candidate
// computation and join checks across class members.
func BenchmarkNECStarEnumerate(b *testing.B) {
	const (
		hubs   = 32
		fanout = 8
	)
	e := func(s string) Term { return NewIRI("http://ex.org/" + s) }
	var ts []Triple
	for h := 0; h < hubs; h++ {
		hub := e(fmt.Sprintf("hub%d", h))
		for f := 0; f < fanout; f++ {
			ts = append(ts, Triple{S: hub, P: e("knows"), O: e(fmt.Sprintf("friend%d_%d", h, f))})
		}
	}
	const q = `PREFIX ex: <http://ex.org/>
SELECT ?h ?a ?b ?c WHERE { ?h ex:knows ?a . ?h ex:knows ?b . ?h ex:knows ?c . }`

	for _, v := range []struct {
		name string
		opts *Options
	}{
		{"NEC-on", &Options{Workers: 1}},
		{"NEC-off", &Options{Workers: 1, NEC: NECOff}},
	} {
		store := New(ts, v.opts)
		p, err := store.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := p.Exec(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != hubs*fanout*fanout*fanout {
					b.Fatalf("rows = %d", res.Len())
				}
			}
		})
	}
}

// skewedTriples builds the pathological-store fixture: one hub subject with
// `fan` objects over one predicate, so the two-variable star query below has
// a single candidate region yielding fan² rows — the whole-region-buffering
// worst case the resumable pipeline exists to tame.
func skewedTriples(fan int) ([]Triple, string) {
	e := func(s string) Term { return NewIRI("http://ex.org/" + s) }
	ts := make([]Triple, 0, fan)
	for f := 0; f < fan; f++ {
		ts = append(ts, Triple{S: e("hub"), P: e("p"), O: e(fmt.Sprintf("leaf%d", f))})
	}
	q := `PREFIX ex: <http://ex.org/>
SELECT ?a ?b WHERE { ?h ex:p ?a . ?h ex:p ?b . }`
	return ts, q
}

// BenchmarkSkewedFirstRows is the per-row-bounded-streaming acceptance
// benchmark: the first 10 rows of a single region that yields >200k
// solutions, drained through a parallel streaming cursor (bounded segments
// from a suspended search cursor) vs full materialization (what consuming
// the first rows cost when a region buffered its entire result). The
// bench-gate asserts the allocation ratio — machine-independent — and, on
// runners with ≥4 CPUs, the ≥5x first-row latency win; bytes-per-row is the
// recorded per-delivered-row allocation footprint of the streamed path.
func BenchmarkSkewedFirstRows(b *testing.B) {
	const fan = 450 // one region, fan² = 202 500 rows
	ts, q := skewedTriples(fan)
	const firstRows = 10
	ctx := context.Background()
	store := New(ts, &Options{Workers: 2})
	p, err := store.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("streamed", func(b *testing.B) {
		b.ReportAllocs()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < b.N; i++ {
			rows := p.Select(ctx)
			n := 0
			for n < firstRows && rows.Next() {
				n++
			}
			if err := rows.Close(); err != nil || n != firstRows {
				b.Fatalf("streamed %d rows (%v)", n, err)
			}
		}
		runtime.ReadMemStats(&m1)
		// Allocation per DELIVERED row — the satellite's bound: independent
		// of the 202 500-row region size (≈150 MB/row under whole-region
		// buffering).
		b.ReportMetric(float64(m1.TotalAlloc-m0.TotalAlloc)/float64(b.N)/firstRows, "bytes-per-row")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/firstRows, "ns-per-row")
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := p.Exec(ctx)
			if err != nil || res.Len() < firstRows {
				b.Fatalf("materialized %d rows (%v)", res.Len(), err)
			}
			_ = res.Rows[:firstRows]
		}
	})
}

// BenchmarkOrderByTopK is the streaming ORDER BY acceptance benchmark on the
// paper's increasing-solution LUBM queries: `ORDER BY … LIMIT 5` through the
// bounded top-k heap vs the unbounded ORDER BY (sorted runs + merge, which
// must retain every row). The bench-gate holds the B/op ratio — the top-k
// path must stay strictly cheaper as the solution count grows.
func BenchmarkOrderByTopK(b *testing.B) {
	ds := datagen.LUBMDataset(8) // Q2: 30 rows, Q9: 461 rows
	store := New(ds.Triples, nil)
	ctx := context.Background()
	for _, id := range []string{"Q2", "Q9"} {
		base := datagen.LUBMQuery(id).Text
		for _, v := range []struct {
			name string
			mod  string
		}{
			{"full", "\nORDER BY ?X"},
			{"topk", "\nORDER BY ?X LIMIT 5"},
		} {
			p, err := store.Prepare(base + v.mod)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(id+"/"+v.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := p.Exec(ctx)
					if err != nil || res.Len() == 0 {
						b.Fatalf("%d rows (%v)", res.Len(), err)
					}
				}
			})
		}
	}
}

// BenchmarkRegionSplit is the region-internal work-splitting acceptance
// benchmark: a count over a dataset whose query has exactly ONE candidate
// region (a single typed hub), so region-granular parallelism has nothing
// to distribute — any parallel speedup comes entirely from hungry workers
// adopting split-off tails of the owner's suspended search cursor. On a
// multi-core box the parallel count should be ≥2x; the CI bench-gate holds
// that ratio on runners with ≥4 CPUs (on fewer cores the split protocol
// still runs, demand-driven, but cannot beat one core).
func BenchmarkRegionSplit(b *testing.B) {
	const (
		mids         = 64
		leavesPerMid = 600 // 38 400 rows, all inside one region
	)
	e := func(s string) Term { return NewIRI("http://ex.org/" + s) }
	typ := NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	var ts []Triple
	ts = append(ts, Triple{S: e("hub"), P: typ, O: e("H")})
	for m := 0; m < mids; m++ {
		mid := e(fmt.Sprintf("mid%d", m))
		ts = append(ts, Triple{S: mid, P: typ, O: e("M")})
		ts = append(ts, Triple{S: e("hub"), P: e("p"), O: mid})
		for l := 0; l < leavesPerMid; l++ {
			leaf := e(fmt.Sprintf("leaf%d_%d", m, l))
			ts = append(ts, Triple{S: mid, P: e("q"), O: leaf})
		}
	}
	const q = `PREFIX ex: <http://ex.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?x ?y WHERE { ?h rdf:type ex:H . ?h ex:p ?x . ?x ex:q ?y . }`
	const want = mids * leavesPerMid
	ctx := context.Background()

	parallel := runtime.GOMAXPROCS(0)
	if parallel < 4 {
		parallel = 4 // still exercises the split protocol on small boxes
	}
	for _, v := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", parallel},
	} {
		store := New(ts, &Options{Workers: v.workers})
		p, err := store.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := p.Count(ctx)
				if err != nil || n != want {
					b.Fatalf("counted %d (%v), want %d", n, err, want)
				}
			}
			b.ReportMetric(float64(want)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkCostOrder is the statistics-cost-model acceptance benchmark: the
// skewed two-path instance where the paper's candidate-population heuristic
// ranks the wrong root-to-leaf path first (the large-population path is the
// CHEAP one to defer, because the other path collapses to one row per
// branch). The cost model's exchange ranking runs the collapsing path first
// and roughly halves the search nodes; the bench-gate holds the resulting
// ns/op ratio — a within-run comparison, so it is machine-independent.
func BenchmarkCostOrder(b *testing.B) {
	const (
		na = 200 // path A: r -pa-> a -pb-> b, exactly one b per a
		nc = 360 // path B: r -pc-> c, the big fan the heuristic grabs first
	)
	e := func(s string) Term { return NewIRI("http://ex.org/" + s) }
	typ := NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	var ts []Triple
	ts = append(ts, Triple{S: e("r"), P: typ, O: e("R")})
	for i := 0; i < na; i++ {
		a, o := e(fmt.Sprintf("a%d", i)), e(fmt.Sprintf("b%d", i))
		ts = append(ts,
			Triple{S: a, P: typ, O: e("A")},
			Triple{S: e("r"), P: e("pa"), O: a},
			Triple{S: o, P: typ, O: e("B")},
			Triple{S: a, P: e("pb"), O: o})
	}
	for j := 0; j < nc; j++ {
		c := e(fmt.Sprintf("c%d", j))
		ts = append(ts, Triple{S: c, P: typ, O: e("C")}, Triple{S: e("r"), P: e("pc"), O: c})
	}
	const q = `PREFIX ex: <http://ex.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?a ?b ?c WHERE {
	?r rdf:type ex:R . ?a rdf:type ex:A . ?b rdf:type ex:B . ?c rdf:type ex:C .
	?r ex:pa ?a . ?a ex:pb ?b . ?r ex:pc ?c .
}`
	const want = na * nc
	ctx := context.Background()

	for _, v := range []struct {
		name string
		cost bool
	}{
		{"heuristic", false},
		{"cost", true},
	} {
		store := New(ts, &Options{Workers: 1, CostOrder: v.cost})
		p, err := store.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := p.Count(ctx)
				if err != nil || n != want {
					b.Fatalf("counted %d (%v), want %d", n, err, want)
				}
			}
		})
	}
}

// coldStart holds the ~1M-triple cold-start fixture: the LUBM dataset as
// N-Triples text and as a persisted snapshot directory. Built once per
// process; the snapshot directory intentionally outlives the benchmark so
// -count runs reuse it.
var (
	coldOnce sync.Once
	cold     struct {
		nt  []byte
		dir string
		err error
	}
)

func coldFixtures(b *testing.B) {
	coldOnce.Do(func() {
		const coldScale = 72 // ~1M triples
		ds := datagen.LUBMDataset(coldScale)
		var buf bytes.Buffer
		if cold.err = rdf.WriteAll(&buf, ds.Triples); cold.err != nil {
			return
		}
		cold.nt = buf.Bytes()
		if cold.dir, cold.err = os.MkdirTemp("", "coldstart"); cold.err != nil {
			return
		}
		s := New(ds.Triples, &Options{Workers: 1})
		cold.err = s.Save(cold.dir)
	})
	if cold.err != nil {
		b.Fatal(cold.err)
	}
}

// BenchmarkColdStart is the storage tentpole's acceptance benchmark: opening
// a ~1M-triple store from its binary snapshot (frozen CSR arrays and
// dictionaries read directly, no parsing, no transformation) versus
// rebuilding it from N-Triples text. CI gates snapshot/parse at >=10x.
func BenchmarkColdStart(b *testing.B) {
	coldFixtures(b)
	opts := &Options{Workers: 1}
	var parsed, loaded Stats
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(cold.nt)))
		for i := 0; i < b.N; i++ {
			s, err := Open(bytes.NewReader(cold.nt), opts)
			if err != nil {
				b.Fatal(err)
			}
			parsed = s.Stats()
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := OpenDir(cold.dir, opts)
			if err != nil {
				b.Fatal(err)
			}
			loaded = s.Stats()
			s.Close()
		}
	})
	if parsed.Triples != 0 && loaded != parsed {
		b.Fatalf("snapshot stats %+v differ from parsed stats %+v", loaded, parsed)
	}
}
