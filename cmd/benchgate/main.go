// Command benchgate records and gates benchmark results, the comparator
// behind the CI bench-gate job.
//
// It reads `go test -bench` output on stdin — either plain text or the
// test2json stream produced by `go test -json` — collects every benchmark
// result line with ALL of its metrics (ns/op, B/op, allocs/op, and any
// custom testing.B ReportMetric columns such as bytes-per-row), reduces the
// -count repetitions of each metric to their median, and then either writes
// a baseline file or checks the run against one:
//
//	go test -run=NONE -bench 'X|Y' -count=6 -json ./... | benchgate -write BENCH_pr5.json
//	go test -run=NONE -bench 'X|Y' -count=6 -json ./... | benchgate -check BENCH_pr5.json
//
// -check exits non-zero when any baseline benchmark regressed by more than
// -threshold in ns/op (default 1.25, i.e. >25% slower), when a baseline
// benchmark is missing from the run entirely (a silently deleted benchmark
// must not pass the gate), or when a baseline B/op value regressed by more
// than -memthreshold (default 1.30). Bytes are far more stable across
// machines than nanoseconds, so the memory gate holds even as CI hardware
// drifts — the ROADMAP's cross-machine-baseline concern. New benchmarks
// absent from the baseline are reported but do not fail; refresh the
// baseline with -write to start tracking them.
//
// Absolute ns/op comparisons drift with CI hardware, so the gate also
// supports machine-independent ratio assertions taken WITHIN one run:
//
//	-speedup '[metric:]slowBench:fastBench>=2.0[@minCPUs]'
//
// fails unless slowBench's metric is at least the given multiple of
// fastBench's (':' separates the parts because benchmark names contain
// '/'). metric defaults to ns/op; `mem` is an alias for B/op and `ns` for
// ns/op; any other metric name (e.g. bytes-per-row) is matched literally:
//
//	-speedup 'mem:BenchmarkOrderBy/full:BenchmarkOrderBy/topk>=4.0'
//
// asserts the full sort allocates ≥4x the bytes per op of the top-k path —
// a pure ratio, valid on any machine. The comparison also comes in a
// ceiling form, '<=', gating tail behavior instead of a win:
//
//	-speedup 'BenchmarkServeLoad/Q9/clients8/p99:BenchmarkServeLoad/Q9/clients8/p50<=20'
//
// fails if the first benchmark's metric exceeds the given multiple of the
// second's — here, a p99 more than 20x its own run's p50. With @minCPUs
// the assertion is skipped (reported only) on machines with fewer CPUs —
// a parallel-vs-sequential speedup cannot materialize on a 1-core runner.
// Repeatable.
//
// The baseline file is committed at the repository root, one file per perf
// PR (BENCH_pr4.json, BENCH_pr5.json, ...), forming the project's recorded
// perf trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark record.
type Baseline struct {
	// Go is the toolchain that produced the record (informational).
	Go string `json:"go"`
	// MaxProcs is GOMAXPROCS at record time (informational; parallel
	// benchmarks scale with it, so cross-machine comparisons need care).
	MaxProcs int `json:"maxprocs"`
	// Benchmarks holds one entry per benchmark, sorted by name.
	Benchmarks []Entry `json:"benchmarks"`
}

// Entry is one benchmark's reduced result. NsPerOp duplicates
// Metrics["ns/op"] so baselines stay readable (and PR4-era files without
// Metrics keep working).
type Entry struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// testEvent is the subset of the test2json schema benchgate consumes.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// metrics maps metric unit -> samples across -count runs.
type metrics map[string][]float64

// resultLine matches a complete benchmark result line as plain `go test
// -bench` prints it: name (with the -GOMAXPROCS suffix Go appends, stripped
// so baselines stay portable across core counts), iteration count, then the
// metric columns.
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$`)

// metricPair matches one "value unit" column of a result line.
var metricPair = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)\s+([^\s]+)`)

// test2json splits a result across two output events — the name (trailing
// tab) and then the measurements — so the stream parser stitches them.
var (
	nameOnly   = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s*$`)
	timingOnly = regexp.MustCompile(`^\s*\d+\s+(.+)$`)
)

func main() {
	write := flag.String("write", "", "write the run as a baseline to this file")
	check := flag.String("check", "", "check the run against the baseline in this file")
	threshold := flag.Float64("threshold", 1.25, "max allowed current/baseline ns-per-op ratio")
	memThreshold := flag.Float64("memthreshold", 1.30, "max allowed current/baseline B-per-op ratio")
	var speedups speedupFlags
	flag.Var(&speedups, "speedup", "within-run ratio assertion '[metric:]slow:fast>=N[@minCPUs]' (repeatable)")
	flag.Parse()
	if (*write == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -write or -check is required")
		os.Exit(2)
	}

	results, err := collect(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}

	if *write != "" {
		if err := writeBaseline(*write, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(results), *write)
		return
	}
	ok := checkBaseline(*check, results, *threshold, *memThreshold)
	for _, sp := range speedups {
		if !sp.check(results) {
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// speedupSpec is one parsed -speedup assertion. With ceiling=false the
// ratio slow/fast must be at least bound (a required win); with
// ceiling=true it must be at most bound (a tail-latency or overhead cap).
type speedupSpec struct {
	metric     string
	slow, fast string
	bound      float64
	ceiling    bool
	minCPUs    int
}

type speedupFlags []speedupSpec

func (f *speedupFlags) String() string { return fmt.Sprintf("%d assertions", len(*f)) }

func (f *speedupFlags) Set(s string) error {
	spec := s
	minCPUs := 0
	if at := strings.LastIndex(spec, "@"); at >= 0 {
		n, err := strconv.Atoi(spec[at+1:])
		if err != nil {
			return fmt.Errorf("bad @minCPUs in %q", s)
		}
		minCPUs = n
		spec = spec[:at]
	}
	ceiling := false
	names, boundStr, found := strings.Cut(spec, ">=")
	if !found {
		names, boundStr, found = strings.Cut(spec, "<=")
		ceiling = true
	}
	if !found {
		return fmt.Errorf("bad -speedup %q, want '[metric:]a:b>=N[@minCPUs]' or '[metric:]a:b<=N[@minCPUs]'", s)
	}
	parts := strings.Split(names, ":")
	metric := "ns/op"
	var slow, fast string
	switch len(parts) {
	case 2:
		slow, fast = parts[0], parts[1]
	case 3:
		switch parts[0] {
		case "mem":
			metric = "B/op"
		case "ns":
			metric = "ns/op"
		default:
			metric = parts[0] // literal metric unit, e.g. bytes-per-row
		}
		slow, fast = parts[1], parts[2]
	default:
		return fmt.Errorf("bad benchmark pair in %q", s)
	}
	if slow == "" || fast == "" || metric == "" {
		return fmt.Errorf("bad benchmark pair in %q", s)
	}
	bound, err := strconv.ParseFloat(boundStr, 64)
	if err != nil {
		return fmt.Errorf("bad ratio in %q", s)
	}
	*f = append(*f, speedupSpec{metric: metric, slow: slow, fast: fast, bound: bound, ceiling: ceiling, minCPUs: minCPUs})
	return nil
}

func (sp speedupSpec) check(results map[string]metrics) bool {
	slow := results[sp.slow][sp.metric]
	fast := results[sp.fast][sp.metric]
	if len(slow) == 0 || len(fast) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: speedup %s: %s/%s: metric missing from run\n", sp.metric, sp.slow, sp.fast)
		return false
	}
	ratio := median(slow) / median(fast)
	op := ">="
	violated := ratio < sp.bound
	if sp.ceiling {
		op = "<="
		violated = ratio > sp.bound
	}
	if sp.minCPUs > 0 && runtime.NumCPU() < sp.minCPUs {
		fmt.Printf("speedup[%s] %s / %s = %.2fx (want %s %.2fx; not enforced, %d CPUs < %d)\n",
			sp.metric, sp.slow, sp.fast, ratio, op, sp.bound, runtime.NumCPU(), sp.minCPUs)
		return true
	}
	if violated {
		fmt.Fprintf(os.Stderr, "benchgate: FAILED — speedup[%s] %s / %s = %.2fx, want %s %.2fx\n",
			sp.metric, sp.slow, sp.fast, ratio, op, sp.bound)
		return false
	}
	fmt.Printf("speedup[%s] %s / %s = %.2fx (%s %.2fx)  ok\n", sp.metric, sp.slow, sp.fast, ratio, op, sp.bound)
	return true
}

// collect parses stdin into per-benchmark, per-metric samples.
func collect(r io.Reader) (map[string]metrics, error) {
	samples := map[string]metrics{}
	add := func(name, cols string) {
		m := samples[name]
		if m == nil {
			m = metrics{}
			samples[name] = m
		}
		for _, pair := range metricPair.FindAllStringSubmatch(cols, -1) {
			if v, err := strconv.ParseFloat(pair[1], 64); err == nil {
				m[pair[2]] = append(m[pair[2]], v)
			}
		}
	}
	pending := "" // benchmark name awaiting its measurement line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > 0 && line[0] == '{' {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				line = strings.TrimSuffix(ev.Output, "\n")
			}
		}
		switch {
		case resultLine.MatchString(line):
			m := resultLine.FindStringSubmatch(line)
			add(m[1], m[2])
			pending = ""
		case nameOnly.MatchString(line):
			pending = nameOnly.FindStringSubmatch(line)[1]
		case pending != "" && timingOnly.MatchString(line):
			add(pending, timingOnly.FindStringSubmatch(line)[1])
			pending = ""
		}
	}
	// Drop anything that never reported ns/op — the parser is permissive
	// and non-benchmark lines must not become phantom entries.
	for name, m := range samples {
		if len(m["ns/op"]) == 0 {
			delete(samples, name)
		}
	}
	return samples, sc.Err()
}

// median reduces one benchmark's -count samples; the middle value resists
// the occasional scheduling hiccup better than the mean.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func writeBaseline(path string, results map[string]metrics) error {
	b := Baseline{Go: runtime.Version(), MaxProcs: runtime.GOMAXPROCS(0)}
	for name, ms := range results {
		e := Entry{Name: name, NsPerOp: median(ms["ns/op"]), Runs: len(ms["ns/op"]), Metrics: map[string]float64{}}
		for unit, xs := range ms {
			e.Metrics[unit] = median(xs)
		}
		b.Benchmarks = append(b.Benchmarks, e)
	}
	sort.Slice(b.Benchmarks, func(i, j int) bool { return b.Benchmarks[i].Name < b.Benchmarks[j].Name })
	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func checkBaseline(path string, results map[string]metrics, threshold, memThreshold float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return false
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		return false
	}

	ok := true
	seen := map[string]bool{}
	fmt.Printf("%-60s %14s %14s %7s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, e := range base.Benchmarks {
		seen[e.Name] = true
		ms, found := results[e.Name]
		if !found {
			fmt.Printf("%-60s %14.0f %14s %7s  MISSING\n", e.Name, e.NsPerOp, "-", "-")
			ok = false
			continue
		}
		cur := median(ms["ns/op"])
		ratio := cur / e.NsPerOp
		verdict := "ok"
		if ratio > threshold {
			verdict = fmt.Sprintf("REGRESSION (> %.2fx)", threshold)
			ok = false
		}
		// Memory gate: bytes per op barely drift across machines, so the
		// absolute baseline holds where ns/op cannot. A benchmark that
		// stopped reporting B/op (ReportAllocs dropped, -benchmem missing)
		// fails like a missing benchmark would — silence must not pass.
		if baseMem, has := e.Metrics["B/op"]; has && baseMem > 0 {
			if xs := ms["B/op"]; len(xs) > 0 {
				curMem := median(xs)
				if curMem/baseMem > memThreshold {
					verdict = fmt.Sprintf("MEM REGRESSION (%.0f -> %.0f B/op, > %.2fx)", baseMem, curMem, memThreshold)
					ok = false
				}
			} else {
				verdict = "B/op MISSING (baseline gates it)"
				ok = false
			}
		}
		fmt.Printf("%-60s %14.0f %14.0f %6.2fx  %s\n", e.Name, e.NsPerOp, cur, ratio, verdict)
	}
	for name, ms := range results {
		if !seen[name] {
			fmt.Printf("%-60s %14s %14.0f %7s  new (not gated)\n", name, "-", median(ms["ns/op"]), "-")
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "benchgate: FAILED — benchmark regression or missing benchmark")
	} else {
		fmt.Println("benchgate: OK")
	}
	return ok
}
