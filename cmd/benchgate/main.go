// Command benchgate records and gates benchmark results, the comparator
// behind the CI bench-gate job.
//
// It reads `go test -bench` output on stdin — either plain text or the
// test2json stream produced by `go test -json` — collects every benchmark
// result line, reduces the -count repetitions of each benchmark to their
// median ns/op, and then either writes a baseline file or checks the run
// against one:
//
//	go test -run=NONE -bench 'X|Y' -count=6 -json ./... | benchgate -write BENCH_pr4.json
//	go test -run=NONE -bench 'X|Y' -count=6 -json ./... | benchgate -check BENCH_pr4.json
//
// -check exits non-zero when any baseline benchmark regressed by more than
// -threshold (default 1.25, i.e. >25% slower), or when a baseline benchmark
// is missing from the run entirely (a silently deleted benchmark must not
// pass the gate). New benchmarks absent from the baseline are reported but
// do not fail; refresh the baseline with -write to start tracking them.
//
// Absolute ns/op comparisons drift with CI hardware, so the gate also
// supports machine-independent ratio assertions taken WITHIN one run:
//
//	-speedup 'slowBench:fastBench>=2.0[@minCPUs]'
//
// fails unless slowBench's ns/op is at least the given multiple of
// fastBench's (':' separates the pair because benchmark names contain
// '/'). With @minCPUs the assertion is skipped (reported only) on machines
// with fewer CPUs — a parallel-vs-sequential speedup cannot materialize on
// a 1-core runner. Repeatable.
//
// The baseline file is committed at the repository root, one file per perf
// PR (BENCH_pr4.json, ...), forming the project's recorded perf trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark record.
type Baseline struct {
	// Go is the toolchain that produced the record (informational).
	Go string `json:"go"`
	// MaxProcs is GOMAXPROCS at record time (informational; parallel
	// benchmarks scale with it, so cross-machine comparisons need care).
	MaxProcs int `json:"maxprocs"`
	// Benchmarks holds one entry per benchmark, sorted by name.
	Benchmarks []Entry `json:"benchmarks"`
}

// Entry is one benchmark's reduced result.
type Entry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Runs    int     `json:"runs"`
}

// testEvent is the subset of the test2json schema benchgate consumes.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// resultLine matches a complete benchmark result line as plain `go test
// -bench` prints it: name (with the -GOMAXPROCS suffix Go appends, stripped
// so baselines stay portable across core counts), iteration count, ns/op.
// Extra metrics after ns/op are ignored.
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// test2json splits a result across two output events — the name (trailing
// tab) and then the measurements — so the stream parser stitches them.
var (
	nameOnly   = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s*$`)
	timingOnly = regexp.MustCompile(`^\s*\d+\s+([0-9.]+) ns/op`)
)

func main() {
	write := flag.String("write", "", "write the run as a baseline to this file")
	check := flag.String("check", "", "check the run against the baseline in this file")
	threshold := flag.Float64("threshold", 1.25, "max allowed current/baseline ns-per-op ratio")
	var speedups speedupFlags
	flag.Var(&speedups, "speedup", "within-run ratio assertion 'slow:fast>=N[@minCPUs]' (repeatable)")
	flag.Parse()
	if (*write == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -write or -check is required")
		os.Exit(2)
	}

	results, err := collect(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}

	if *write != "" {
		if err := writeBaseline(*write, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(results), *write)
		return
	}
	ok := checkBaseline(*check, results, *threshold)
	for _, sp := range speedups {
		if !sp.check(results) {
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// speedupSpec is one parsed -speedup assertion.
type speedupSpec struct {
	slow, fast string
	min        float64
	minCPUs    int
}

type speedupFlags []speedupSpec

func (f *speedupFlags) String() string { return fmt.Sprintf("%d assertions", len(*f)) }

func (f *speedupFlags) Set(s string) error {
	spec := s
	minCPUs := 0
	if at := strings.LastIndex(spec, "@"); at >= 0 {
		n, err := strconv.Atoi(spec[at+1:])
		if err != nil {
			return fmt.Errorf("bad @minCPUs in %q", s)
		}
		minCPUs = n
		spec = spec[:at]
	}
	names, minStr, found := strings.Cut(spec, ">=")
	if !found {
		return fmt.Errorf("bad -speedup %q, want 'slow:fast>=N[@minCPUs]'", s)
	}
	slow, fast, found := strings.Cut(names, ":")
	if !found || slow == "" || fast == "" {
		return fmt.Errorf("bad benchmark pair in %q", s)
	}
	min, err := strconv.ParseFloat(minStr, 64)
	if err != nil {
		return fmt.Errorf("bad ratio in %q", s)
	}
	*f = append(*f, speedupSpec{slow: slow, fast: fast, min: min, minCPUs: minCPUs})
	return nil
}

func (sp speedupSpec) check(results map[string][]float64) bool {
	slow, okS := results[sp.slow]
	fast, okF := results[sp.fast]
	if !okS || !okF {
		fmt.Fprintf(os.Stderr, "benchgate: speedup %s/%s: benchmark missing from run\n", sp.slow, sp.fast)
		return false
	}
	ratio := median(slow) / median(fast)
	if sp.minCPUs > 0 && runtime.NumCPU() < sp.minCPUs {
		fmt.Printf("speedup %s / %s = %.2fx (want >= %.2fx; not enforced, %d CPUs < %d)\n",
			sp.slow, sp.fast, ratio, sp.min, runtime.NumCPU(), sp.minCPUs)
		return true
	}
	if ratio < sp.min {
		fmt.Fprintf(os.Stderr, "benchgate: FAILED — speedup %s / %s = %.2fx, want >= %.2fx\n",
			sp.slow, sp.fast, ratio, sp.min)
		return false
	}
	fmt.Printf("speedup %s / %s = %.2fx (>= %.2fx)  ok\n", sp.slow, sp.fast, ratio, sp.min)
	return true
}

// collect parses stdin into per-benchmark ns/op samples and reduces each to
// its median.
func collect(r io.Reader) (map[string][]float64, error) {
	samples := map[string][]float64{}
	add := func(name, ns string) {
		if v, err := strconv.ParseFloat(ns, 64); err == nil {
			samples[name] = append(samples[name], v)
		}
	}
	pending := "" // benchmark name awaiting its measurement line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > 0 && line[0] == '{' {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				line = strings.TrimSuffix(ev.Output, "\n")
			}
		}
		switch {
		case resultLine.MatchString(line):
			m := resultLine.FindStringSubmatch(line)
			add(m[1], m[2])
			pending = ""
		case nameOnly.MatchString(line):
			pending = nameOnly.FindStringSubmatch(line)[1]
		case pending != "" && timingOnly.MatchString(line):
			add(pending, timingOnly.FindStringSubmatch(line)[1])
			pending = ""
		}
	}
	return samples, sc.Err()
}

// median reduces one benchmark's -count samples; the middle value resists
// the occasional scheduling hiccup better than the mean.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func writeBaseline(path string, results map[string][]float64) error {
	b := Baseline{Go: runtime.Version(), MaxProcs: runtime.GOMAXPROCS(0)}
	for name, xs := range results {
		b.Benchmarks = append(b.Benchmarks, Entry{Name: name, NsPerOp: median(xs), Runs: len(xs)})
	}
	sort.Slice(b.Benchmarks, func(i, j int) bool { return b.Benchmarks[i].Name < b.Benchmarks[j].Name })
	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func checkBaseline(path string, results map[string][]float64, threshold float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return false
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		return false
	}

	ok := true
	seen := map[string]bool{}
	fmt.Printf("%-60s %14s %14s %7s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, e := range base.Benchmarks {
		seen[e.Name] = true
		xs, found := results[e.Name]
		if !found {
			fmt.Printf("%-60s %14.0f %14s %7s  MISSING\n", e.Name, e.NsPerOp, "-", "-")
			ok = false
			continue
		}
		cur := median(xs)
		ratio := cur / e.NsPerOp
		verdict := "ok"
		if ratio > threshold {
			verdict = fmt.Sprintf("REGRESSION (> %.2fx)", threshold)
			ok = false
		}
		fmt.Printf("%-60s %14.0f %14.0f %6.2fx  %s\n", e.Name, e.NsPerOp, cur, ratio, verdict)
	}
	for name, xs := range results {
		if !seen[name] {
			fmt.Printf("%-60s %14s %14.0f %7s  new (not gated)\n", name, "-", median(xs), "-")
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "benchgate: FAILED — benchmark regression or missing benchmark")
	} else {
		fmt.Println("benchgate: OK")
	}
	return ok
}
