// Command benchtables regenerates the tables and figures of the paper's
// evaluation section (§7) at laptop scale.
//
//	benchtables -all                          # everything, default scales
//	benchtables -table 3 -lubm 1,2,4          # Table 3 at three LUBM scales
//	benchtables -fig 15 -lubm 4               # optimization ablation
//
// Output is aligned text, one block per table/figure, in the layout of the
// paper's tables (engines as rows, queries as columns, times in
// milliseconds averaged with the 5-run drop-best/worst protocol).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		table = flag.String("table", "", "table number to regenerate (1-7)")
		fig   = flag.String("fig", "", "figure number to regenerate (6, 15, 16)")
		all   = flag.Bool("all", false, "regenerate every table and figure")
		lubm  = flag.String("lubm", "1,4,16", "comma-separated LUBM scales")
		bsbm  = flag.Int("bsbm", 400, "BSBM products")
		yago  = flag.Int("yago", 2000, "YAGO people")
		btc   = flag.Int("btc", 2000, "BTC people")
	)
	flag.Parse()

	scales, err := parseScales(*lubm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	s := bench.Scales{LUBM: scales, BSBM: *bsbm, YAGO: *yago, BTC: *btc}
	top := scales[len(scales)-1]

	emit := func(t *bench.Table) {
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
	}

	ran := false
	want := func(kind, id string) bool {
		if *all {
			return true
		}
		switch kind {
		case "table":
			return *table == id
		case "fig":
			return *fig == id
		}
		return false
	}

	if want("table", "1") {
		emit(bench.Table1(s))
		ran = true
	}
	if want("table", "2") {
		emit(bench.Table2(s.LUBM))
		ran = true
	}
	if want("table", "3") {
		for _, sc := range s.LUBM {
			emit(bench.Table3(sc))
		}
		ran = true
	}
	if want("table", "4") {
		emit(bench.Table4(s.YAGO))
		ran = true
	}
	if want("table", "5") {
		emit(bench.Table5(s.BTC))
		ran = true
	}
	if want("table", "6") {
		emit(bench.Table6(s.BSBM))
		ran = true
	}
	if want("table", "7") {
		emit(bench.Table7(top))
		ran = true
	}
	if want("fig", "6") {
		emit(bench.Fig6(top))
		ran = true
	}
	if want("fig", "15") {
		emit(bench.Fig15(top))
		ran = true
	}
	if want("fig", "16") {
		emit(bench.Fig16(top, nil))
		ran = true
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "benchtables: nothing selected; use -all, -table N, or -fig N")
		os.Exit(1)
	}
}

func parseScales(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad LUBM scale %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
