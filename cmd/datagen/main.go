// Command datagen emits the benchmark datasets as N-Triples.
//
//	datagen -dataset lubm -scale 4 -infer -o lubm4.nt
//
// -infer materializes the inferred triples (subclass/subproperty closure,
// inverses, transitivity, class-definition rules) exactly as the paper
// loads LUBM and BSBM ("original triples as well as inferred triples",
// §7.1). YAGO and BTC are emitted as-is regardless, matching the paper.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

func main() {
	var (
		dataset = flag.String("dataset", "lubm", "dataset: lubm, bsbm, yago, btc")
		scale   = flag.Int("scale", 1, "scale factor (lubm: universities; bsbm: products/100; yago, btc: people/1000)")
		seed    = flag.Int64("seed", 1, "generator seed")
		infer   = flag.Bool("infer", false, "materialize inferred triples (lubm, bsbm)")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if err := run(*dataset, *scale, *seed, *infer, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale int, seed int64, infer bool, out string) error {
	var triples []rdf.Triple
	switch strings.ToLower(dataset) {
	case "lubm":
		triples = datagen.LUBM(datagen.LUBMConfig{Universities: scale, Seed: seed})
		if infer {
			triples = datagen.Materialize(triples, datagen.LUBMRules())
		}
	case "bsbm":
		triples = datagen.BSBM(datagen.BSBMConfig{Products: scale * 100, Seed: seed})
		if infer {
			triples = datagen.Materialize(triples, datagen.BSBMRules())
		}
	case "yago":
		triples = datagen.YAGO(datagen.YAGOConfig{People: scale * 1000, Seed: seed})
	case "btc":
		triples = datagen.BTC(datagen.BTCConfig{People: scale * 1000, Seed: seed})
	default:
		return fmt.Errorf("unknown dataset %q (lubm, bsbm, yago, btc)", dataset)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := rdf.WriteAll(bw, triples); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d triples\n", len(triples))
	return nil
}
