// Command serveload is the load generator for `turbohom serve`: it drives N
// concurrent SPARQL 1.1 Protocol clients against a running endpoint, each
// fully draining and decoding its streamed responses, and reports latency
// percentiles and row throughput as Go benchmark lines — the format
// cmd/benchgate consumes, so CI can gate tail latency and scaling with
// machine-independent ratio assertions.
//
//	turbohom serve -dataset lubm -scale 8 -addr :3030 &
//	serveload -url http://localhost:3030 -dataset lubm -id Q9 -clients 8 -requests 64
//
// emits
//
//	BenchmarkServeLoad/Q9/clients8/p50 1 1234567 ns/op
//	BenchmarkServeLoad/Q9/clients8/p90 1 2234567 ns/op
//	BenchmarkServeLoad/Q9/clients8/p99 1 3234567 ns/op
//	BenchmarkServeLoad/Q9/clients8/throughput 64 1534567 ns/op 48211.0 rows/s
//
// -inproc additionally builds the same dataset in this process and drains
// the same query straight from a Rows cursor (no HTTP), emitting
// .../inproc/... lines — the denominator for "how much does the wire cost"
// ratio gates.
//
// -min-hitrate F gates the server's result cache over the load phase: the
// cache_hits / cache_misses deltas observed through /healthz must reach the
// given fraction, or serveload exits 1 — the hot-repeat contract that a
// repeated query is answered by replay, not re-execution.
//
// -slow-rows N runs the slow-client probe after the load phase: one
// streaming request read at one row per -slow-every, polling the server's
// /healthz between rows, then a deliberate mid-stream disconnect. It fails
// (exit 1) if the server's heap grew more than -heap-growth beyond the
// pre-stream baseline — the backpressure contract: a stalled client must
// suspend its cursor, not buffer the result — or if the server never
// counted the aborted query in queries_cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	turbohom "repro"
	"repro/internal/datagen"
	"repro/internal/server/loadtest"
)

func main() {
	var (
		baseURL    = flag.String("url", "http://127.0.0.1:3030", "base URL of the turbohom serve endpoint")
		queryStr   = flag.String("query", "", "SPARQL query text")
		queryFile  = flag.String("query-file", "", "file containing the SPARQL query")
		dataset    = flag.String("dataset", "", "benchmark workload naming -id: lubm, bsbm, yago, btc")
		queryID    = flag.String("id", "", "benchmark query ID (e.g. Q9) from -dataset")
		scale      = flag.Int("scale", 1, "dataset scale for -inproc")
		clients    = flag.Int("clients", 1, "concurrent clients")
		requests   = flag.Int("requests", 16, "total requests across all clients")
		accept     = flag.String("accept", "json", "result format to request: json or xml")
		name       = flag.String("name", "", "benchmark name prefix (default ServeLoad/<id>)")
		inproc     = flag.Bool("inproc", false, "also drain the query in-process (needs -dataset/-scale) and emit .../inproc lines")
		minHitrate = flag.Float64("min-hitrate", 0, "fail unless the load phase's result-cache hit rate (from /healthz cache_hits / cache_misses deltas) reaches this fraction (0 = skip)")
		slowRows   = flag.Int("slow-rows", 0, "after the load phase, read this many rows at -slow-every pace then disconnect (0 = skip)")
		slowEvery  = flag.Duration("slow-every", time.Second, "pace of the slow-client probe")
		heapGrowth = flag.Uint64("heap-growth", 96<<20, "max server heap_alloc growth tolerated during the slow probe (bytes)")
		timeout    = flag.Duration("timeout", 5*time.Minute, "overall deadline")
	)
	flag.Parse()

	if err := run(*baseURL, *queryStr, *queryFile, *dataset, *queryID, *scale,
		*clients, *requests, *accept, *name, *inproc, *minHitrate, *slowRows, *slowEvery, *heapGrowth, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

func run(baseURL, queryStr, queryFile, dataset, queryID string, scale,
	clients, requests int, accept, name string, inproc bool, minHitrate float64,
	slowRows int, slowEvery time.Duration, heapGrowth uint64, timeout time.Duration) error {

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	query, label, err := resolveQuery(queryStr, queryFile, dataset, queryID)
	if err != nil {
		return err
	}
	var acceptCT string
	switch accept {
	case "json", "":
		acceptCT = "application/sparql-results+json"
	case "xml":
		acceptCT = "application/sparql-results+xml"
	default:
		return fmt.Errorf("unknown -accept %q (json or xml)", accept)
	}
	if name == "" {
		name = "ServeLoad/" + label
	}

	// Snapshot the cache counters so the hit-rate gate measures this load
	// phase only, not whatever warmed the server before it.
	var hitsBefore, missesBefore int64
	if minHitrate > 0 {
		h, err := loadtest.GetHealth(ctx, http.DefaultClient, baseURL)
		if err != nil {
			return fmt.Errorf("pre-load healthz: %w", err)
		}
		hitsBefore, missesBefore = h.Metrics["cache_hits"], h.Metrics["cache_misses"]
	}

	// Load phase: concurrent clients, full drains.
	rep, err := loadtest.Run(ctx, loadtest.Config{
		BaseURL:  baseURL,
		Query:    query,
		Clients:  clients,
		Requests: requests,
		Accept:   acceptCT,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# %s: %d requests over %d clients, %d rows in %s\n",
		name, rep.Requests, rep.Clients, rep.Rows, rep.Elapsed.Round(time.Millisecond))
	fmt.Print(rep.BenchLines(fmt.Sprintf("%s/clients%d", name, clients)))

	// Hot-repeat contract: every request after the cold leader must have
	// been answered from the result cache.
	if minHitrate > 0 {
		h, err := loadtest.GetHealth(ctx, http.DefaultClient, baseURL)
		if err != nil {
			return fmt.Errorf("post-load healthz: %w", err)
		}
		hits := h.Metrics["cache_hits"] - hitsBefore
		misses := h.Metrics["cache_misses"] - missesBefore
		if hits+misses == 0 {
			return fmt.Errorf("no cacheable requests reached the server (cache disabled, or an ASK form?) — cannot gate the hit rate")
		}
		rate := float64(hits) / float64(hits+misses)
		fmt.Fprintf(os.Stderr, "# %s: result cache %d hits / %d misses (rate %.3f, bound %.3f)\n",
			name, hits, misses, rate, minHitrate)
		if rate < minHitrate {
			return fmt.Errorf("result-cache hit rate %.3f below the %.3f bound (%d hits, %d misses)", rate, minHitrate, hits, misses)
		}
	}

	// In-process baseline: same query, same store contents, no HTTP.
	if inproc {
		inrep, err := runInproc(ctx, dataset, scale, query, requests)
		if err != nil {
			return fmt.Errorf("inproc baseline: %w", err)
		}
		fmt.Print(inrep.BenchLines(name + "/inproc"))
	}

	// Slow-client probe: bounded server memory while a client reads at a
	// crawl, and a counted cursor abort on disconnect.
	if slowRows > 0 {
		sd, err := loadtest.SlowDrain(ctx, baseURL, query, slowRows, slowEvery)
		if err != nil {
			return fmt.Errorf("slow drain: %w", err)
		}
		growth := uint64(0)
		if sd.MaxHeap > sd.BaseHeap {
			growth = sd.MaxHeap - sd.BaseHeap
		}
		fmt.Fprintf(os.Stderr, "# slow drain: %d rows at %s pace, heap %d -> max %d (growth %d, bound %d), stream live: %v, server cancel: %v\n",
			sd.RowsRead, slowEvery, sd.BaseHeap, sd.MaxHeap, growth, heapGrowth, sd.StreamLive, sd.ServerCancel)
		if growth > heapGrowth {
			return fmt.Errorf("server heap grew %d bytes during slow drain, bound %d — is the stream buffering?", growth, heapGrowth)
		}
		if !sd.StreamLive {
			return fmt.Errorf("probe inconclusive: the stream finished before the disconnect — use a larger result set (the response must exceed socket buffering)")
		}
		if !sd.ServerCancel {
			return fmt.Errorf("server never counted the disconnected query in queries_cancelled")
		}
	}
	return nil
}

// resolveQuery yields the query text and a short label for bench names.
func resolveQuery(queryStr, queryFile, dataset, queryID string) (query, label string, err error) {
	switch {
	case queryStr != "":
		return queryStr, "custom", nil
	case queryFile != "":
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return "", "", err
		}
		return string(b), "custom", nil
	case queryID != "":
		var qs []datagen.Query
		switch strings.ToLower(dataset) {
		case "lubm":
			qs = datagen.LUBMQueries()
		case "bsbm":
			qs = datagen.BSBMQueries()
		case "yago":
			qs = datagen.YAGOQueries()
		case "btc":
			qs = datagen.BTCQueries()
		default:
			return "", "", fmt.Errorf("-id needs -dataset (lubm, bsbm, yago, btc)")
		}
		for _, q := range qs {
			if strings.EqualFold(q.ID, queryID) {
				return q.Text, q.ID, nil
			}
		}
		return "", "", fmt.Errorf("query %s not part of dataset %s", queryID, dataset)
	}
	return "", "", fmt.Errorf("one of -query, -query-file, or -dataset/-id is required")
}

// runInproc drains the query straight from a cursor, once per request, on
// a locally built copy of the dataset — the no-HTTP latency floor.
func runInproc(ctx context.Context, dataset string, scale int, query string, requests int) (*loadtest.Report, error) {
	var triples []turbohom.Triple
	switch strings.ToLower(dataset) {
	case "lubm":
		triples = datagen.LUBMDataset(scale).Triples
	case "bsbm":
		triples = datagen.BSBMDataset(scale * 100).Triples
	case "yago":
		triples = datagen.YAGODataset(scale * 1000).Triples
	case "btc":
		triples = datagen.BTCDataset(scale * 1000).Triples
	default:
		return nil, fmt.Errorf("-inproc needs -dataset (lubm, bsbm, yago, btc)")
	}
	store := turbohom.New(triples, nil)
	defer store.Close()
	p, err := store.Prepare(query)
	if err != nil {
		return nil, err
	}

	var (
		lat  []time.Duration
		rows int64
	)
	start := time.Now()
	for i := 0; i < requests; i++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		t0 := time.Now()
		rs := p.Select(ctx)
		for rs.Next() {
			rows++
		}
		if err := rs.Close(); err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(t0))
	}
	return loadtest.Summarize(1, requests, 0, lat, rows, time.Since(start)), nil
}
