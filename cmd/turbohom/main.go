// Command turbohom loads an RDF dataset and runs SPARQL queries against it
// through the TurboHOM++ engine.
//
// Load an N-Triples file and run an inline query:
//
//	turbohom -data data.nt -query 'SELECT ?s WHERE { ?s ?p ?o . } LIMIT 5'
//
// Or generate a benchmark dataset on the fly and run one of its queries:
//
//	turbohom -dataset lubm -scale 2 -id Q9 -time
//
// Flags select the transformation (-transform direct|typeaware), disable
// the optimization suite (-noopt), set the worker count (-workers), print
// only the solution count (-count), and repeat the query with the paper's
// timing protocol (-time).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	turbohom "repro"
	"repro/internal/bench"
	"repro/internal/datagen"
)

func main() {
	var (
		dataFile  = flag.String("data", "", "N-Triples file to load")
		dataset   = flag.String("dataset", "", "generate a benchmark dataset: lubm, bsbm, yago, btc")
		scale     = flag.Int("scale", 1, "dataset scale factor (universities / products / people)")
		queryStr  = flag.String("query", "", "SPARQL query text")
		queryFile = flag.String("query-file", "", "file containing the SPARQL query")
		queryID   = flag.String("id", "", "benchmark query ID (e.g. Q2) from the generated dataset")
		transf    = flag.String("transform", "typeaware", "graph transformation: typeaware or direct")
		noopt     = flag.Bool("noopt", false, "disable the TurboHOM++ optimization suite")
		workers   = flag.Int("workers", 1, "parallel workers over starting vertices")
		countOnly = flag.Bool("count", false, "print only the solution count")
		timeIt    = flag.Bool("time", false, "apply the paper's timing protocol and report elapsed ms")
		maxRows   = flag.Int("max-rows", 20, "cap on printed rows (0 = unlimited)")
	)
	flag.Parse()

	if err := run(*dataFile, *dataset, *scale, *queryStr, *queryFile, *queryID,
		*transf, *noopt, *workers, *countOnly, *timeIt, *maxRows); err != nil {
		fmt.Fprintln(os.Stderr, "turbohom:", err)
		os.Exit(1)
	}
}

func run(dataFile, dataset string, scale int, queryStr, queryFile, queryID,
	transf string, noopt bool, workers int, countOnly, timeIt bool, maxRows int) error {

	opts := &turbohom.Options{Workers: workers, DisableOptimizations: noopt}
	switch transf {
	case "typeaware":
		opts.Transformation = turbohom.TypeAware
	case "direct":
		opts.Transformation = turbohom.Direct
	default:
		return fmt.Errorf("unknown transformation %q", transf)
	}

	var (
		store *turbohom.Store
		err   error
	)
	switch {
	case dataFile != "":
		store, err = turbohom.OpenFile(dataFile, opts)
		if err != nil {
			return err
		}
	case dataset != "":
		ds, err := generated(dataset, scale)
		if err != nil {
			return err
		}
		store = turbohom.New(ds.Triples, opts)
	default:
		return fmt.Errorf("one of -data or -dataset is required")
	}

	// Benchmark query IDs resolve against the named workload, whether the
	// triples came from the generator or from a file.
	var queries []datagen.Query
	if queryID != "" {
		if dataset == "" {
			return fmt.Errorf("-id needs -dataset to name the workload")
		}
		queries, err = workloadQueries(dataset)
		if err != nil {
			return err
		}
	}

	st := store.Stats()
	fmt.Printf("loaded %d triples -> %d vertices, %d edges (%s transformation)\n",
		st.Triples, st.Vertices, st.Edges, st.Transformation)

	query := queryStr
	switch {
	case queryFile != "":
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		query = string(b)
	case queryID != "":
		for _, q := range queries {
			if strings.EqualFold(q.ID, queryID) {
				query = q.Text
			}
		}
		if query == "" {
			return fmt.Errorf("query %s not part of dataset %s", queryID, dataset)
		}
	}
	if query == "" {
		return fmt.Errorf("no query: use -query, -query-file, or -id")
	}

	if timeIt {
		n, err := store.Count(query)
		if err != nil {
			return err
		}
		d := bench.Measure(func() {
			if _, err := store.Count(query); err != nil {
				panic(err)
			}
		})
		fmt.Printf("%d solutions in %s ms (5 runs, best/worst dropped)\n", n, bench.Fmt(d))
		return nil
	}

	if countOnly {
		n, err := store.Count(query)
		if err != nil {
			return err
		}
		fmt.Println(n)
		return nil
	}

	res, err := store.Query(query)
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(res.Vars, "\t"))
	for i, row := range res.Rows {
		if maxRows > 0 && i == maxRows {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
			break
		}
		cells := make([]string, len(row))
		for j, t := range row {
			cells[j] = string(t)
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
	return nil
}

func generated(name string, scale int) (*datagen.Dataset, error) {
	switch strings.ToLower(name) {
	case "lubm":
		return datagen.LUBMDataset(scale), nil
	case "bsbm":
		return datagen.BSBMDataset(scale * 100), nil
	case "yago":
		return datagen.YAGODataset(scale * 1000), nil
	case "btc":
		return datagen.BTCDataset(scale * 1000), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (lubm, bsbm, yago, btc)", name)
	}
}

func workloadQueries(name string) ([]datagen.Query, error) {
	switch strings.ToLower(name) {
	case "lubm":
		return datagen.LUBMQueries(), nil
	case "bsbm":
		return datagen.BSBMQueries(), nil
	case "yago":
		return datagen.YAGOQueries(), nil
	case "btc":
		return datagen.BTCQueries(), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}
