// Command turbohom loads an RDF dataset and runs SPARQL queries against it
// through the TurboHOM++ engine.
//
// Load an N-Triples file and run an inline query:
//
//	turbohom -data data.nt -query 'SELECT ?s WHERE { ?s ?p ?o . } LIMIT 5'
//
// Or generate a benchmark dataset on the fly and run one of its queries:
//
//	turbohom -dataset lubm -scale 2 -id Q9 -time
//
// Flags select the transformation (-transform direct|typeaware), disable
// the optimization suite (-noopt), set the worker count (-workers, default
// 0 = all CPUs; rows stream through the ordered parallel region pipeline in
// the same order as a sequential run, -stream-buffer bounds how many
// not-yet-printed rows the workers may buffer — per-row backpressure, so a
// pathological region cannot balloon memory), print only the solution
// count (-count), and repeat the query with the paper's timing protocol
// (-time).
//
// -explain skips row output and prints how the matcher ran the query: the
// matching order per pattern component, the cost model's estimated rows at
// each position, and the filter counters (search nodes, candidate regions,
// signature checked/killed). -costorder switches the order ranking from the
// paper's candidate-population heuristic to the statistics cost model.
//
// -update file.nt streams additional triples into the store WHILE the query
// executes, demonstrating the mutable store's snapshot isolation: the
// query's cursor pins the snapshot current when it starts and is undisturbed
// by the concurrent inserts; a count taken after loading reflects them. Use
// -compact to fold the accumulated delta back into the base afterwards.
//
// -save dir persists the loaded store as a binary snapshot directory, and
// -load dir opens one: cold start reads the frozen arrays directly — no
// N-Triples parsing, no transformation — and replays the write-ahead log, so
// mutations against a loaded store (-update, -compact) are durable across
// restarts. -syncwal fsyncs the log on every batch.
//
// Queries are prepared once and results stream through a cursor: rows print
// as the matcher finds them, and both Ctrl-C and the -max-rows cap abandon
// the remaining search instead of completing it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	turbohom "repro"
	"repro/internal/bench"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

func main() {
	// Ctrl-C / SIGTERM cancel the in-flight query — the cursor's context
	// propagates into the matcher, which abandons its remaining candidate
	// regions — and, under `serve`, start the graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// `turbohom serve` starts the SPARQL 1.1 Protocol endpoint; everything
	// else is the one-shot query CLI.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serveMain(ctx, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "turbohom serve:", err)
			os.Exit(1)
		}
		return
	}

	var (
		dataFile  = flag.String("data", "", "N-Triples file to load")
		dataset   = flag.String("dataset", "", "generate a benchmark dataset: lubm, bsbm, yago, btc")
		scale     = flag.Int("scale", 1, "dataset scale factor (universities / products / people)")
		queryStr  = flag.String("query", "", "SPARQL query text")
		queryFile = flag.String("query-file", "", "file containing the SPARQL query")
		queryID   = flag.String("id", "", "benchmark query ID (e.g. Q2) from the generated dataset")
		transf    = flag.String("transform", "typeaware", "graph transformation: typeaware or direct")
		noopt     = flag.Bool("noopt", false, "disable the TurboHOM++ optimization suite")
		workers   = flag.Int("workers", 0, "parallel workers over candidate regions (0 = all CPUs, 1 = sequential)")
		streamBuf = flag.Int("stream-buffer", 0, "max rows parallel streaming buffers ahead of the consumer (0 = 64x workers)")
		countOnly = flag.Bool("count", false, "print only the solution count")
		explain   = flag.Bool("explain", false, "print the matching order, cost estimates, and filter counters instead of rows")
		costOrder = flag.Bool("costorder", false, "rank matching orders by graph statistics instead of the candidate-population heuristic")
		updateF   = flag.String("update", "", "N-Triples file to insert concurrently while the query runs")
		compact   = flag.Bool("compact", false, "compact the delta overlay (after -update finishes, if given; durable stores also fold the WAL into the snapshot)")
		saveDir   = flag.String("save", "", "persist the loaded store as a snapshot directory")
		loadDir   = flag.String("load", "", "open a durable store from a snapshot directory (instead of -data; -dataset then only names the -id workload)")
		syncWAL   = flag.Bool("syncwal", false, "fsync the write-ahead log on every insert/delete batch")
		timeIt    = flag.Bool("time", false, "apply the paper's timing protocol and report elapsed ms")
		maxRows   = flag.Int("max-rows", 20, "stop after printing this many rows (0 = unlimited)")
	)
	flag.Parse()

	if err := run(ctx, *dataFile, *dataset, *scale, *queryStr, *queryFile, *queryID,
		*transf, *noopt, *costOrder, *workers, *streamBuf, *countOnly, *explain, *timeIt, *maxRows, *updateF, *compact,
		*saveDir, *loadDir, *syncWAL); err != nil {
		fmt.Fprintln(os.Stderr, "turbohom:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, dataFile, dataset string, scale int, queryStr, queryFile, queryID,
	transf string, noopt, costOrder bool, workers, streamBuf int, countOnly, explain, timeIt bool, maxRows int, updateFile string, compact bool,
	saveDir, loadDir string, syncWAL bool) (retErr error) {

	opts := &turbohom.Options{Workers: workers, StreamBuffer: streamBuf, DisableOptimizations: noopt, CostOrder: costOrder, SyncWAL: syncWAL}
	switch transf {
	case "typeaware":
		opts.Transformation = turbohom.TypeAware
	case "direct":
		opts.Transformation = turbohom.Direct
	default:
		return fmt.Errorf("unknown transformation %q", transf)
	}

	store, err := openStore(dataFile, dataset, scale, loadDir, opts)
	if err != nil {
		return err
	}
	// Close on every exit path, and do not swallow its error: on a durable
	// store (-load) Close flushes and releases the write-ahead log, and
	// under -syncwal a failure there means an acknowledged write may not be
	// on disk — exiting 0 would hide that.
	defer func() {
		if cerr := store.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("closing store: %w", cerr)
		}
	}()

	if saveDir != "" {
		if err := store.Save(saveDir); err != nil {
			return err
		}
		fmt.Printf("snapshot saved to %s\n", saveDir)
		if queryStr == "" && queryFile == "" && queryID == "" {
			return nil
		}
	}

	// Benchmark query IDs resolve against the named workload, whether the
	// triples came from the generator, a file, or a loaded snapshot.
	var queries []datagen.Query
	if queryID != "" {
		if dataset == "" {
			return fmt.Errorf("-id needs -dataset to name the workload")
		}
		queries, err = workloadQueries(dataset)
		if err != nil {
			return err
		}
	}

	st := store.Stats()
	fmt.Printf("loaded %d triples -> %d vertices, %d edges (%s transformation)\n",
		st.Triples, st.Vertices, st.Edges, st.Transformation)

	query := queryStr
	switch {
	case queryFile != "":
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		query = string(b)
	case queryID != "":
		for _, q := range queries {
			if strings.EqualFold(q.ID, queryID) {
				query = q.Text
			}
		}
		if query == "" {
			return fmt.Errorf("query %s not part of dataset %s", queryID, dataset)
		}
	}
	if query == "" {
		return fmt.Errorf("no query: use -query, -query-file, or -id")
	}

	// Parse and plan once; every execution below reuses the prepared query.
	prepared, err := store.Prepare(query)
	if err != nil {
		return err
	}

	// Query-while-loading: stream the update file into the store in the
	// background. Executions that started before a batch landed keep their
	// snapshot; the post-load count below sees everything. If the query
	// itself fails, the loader is cancelled and no post-load stats print.
	if updateFile != "" {
		lctx, lcancel := context.WithCancel(ctx)
		loadDone := make(chan error, 1)
		go func() { loadDone <- streamInserts(lctx, store, updateFile) }()
		defer func() {
			if retErr != nil {
				lcancel()
				<-loadDone
				return
			}
			defer lcancel()
			if err := <-loadDone; err != nil {
				fmt.Fprintln(os.Stderr, "turbohom: update load:", err)
				return
			}
			n, err := prepared.Count(ctx)
			if err != nil {
				fmt.Fprintln(os.Stderr, "turbohom: post-load count:", err)
				return
			}
			st := store.Stats()
			fmt.Printf("after -update: %d triples -> %d vertices, %d edges; query now has %d solutions\n",
				st.Triples, st.Vertices, st.Edges, n)
			if compact {
				if err := store.Compact(); err != nil {
					fmt.Fprintln(os.Stderr, "turbohom: compact:", err)
					return
				}
				fmt.Println("delta compacted into base")
			}
		}()
	} else if compact {
		// Standalone -compact (no -update): fold whatever the store holds
		// — on a durable store this also rewrites the snapshot and resets
		// the write-ahead log.
		defer func() {
			if retErr != nil {
				return
			}
			if err := store.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "turbohom: compact:", err)
				return
			}
			fmt.Println("delta compacted into base")
		}()
	}

	if timeIt {
		n, err := prepared.Count(ctx)
		if err != nil {
			return err
		}
		var measureErr error
		d := bench.Measure(func() {
			if _, err := prepared.Count(ctx); err != nil && measureErr == nil {
				measureErr = err
			}
		})
		if measureErr != nil {
			if errors.Is(measureErr, context.Canceled) {
				fmt.Println("(timing interrupted)")
				return nil
			}
			return measureErr
		}
		fmt.Printf("%d solutions in %s ms (5 runs, best/worst dropped)\n", n, bench.Fmt(d))
		return nil
	}

	if explain {
		report, err := prepared.Explain(ctx)
		if err != nil {
			return err
		}
		fmt.Print(report)
		return nil
	}

	if countOnly {
		n, err := prepared.Count(ctx)
		if err != nil {
			return err
		}
		fmt.Println(n)
		return nil
	}

	// Streaming is parallel in row order, so the cursor serves capped and
	// uncapped drains alike — no separate materializing path needed.
	rows := prepared.Select(ctx)
	defer rows.Close()
	fmt.Println(strings.Join(rows.Vars(), "\t"))
	printed := 0
	for rows.Next() {
		row := rows.Row()
		cells := make([]string, len(row))
		for j, t := range row {
			cells[j] = string(t)
		}
		fmt.Println(strings.Join(cells, "\t"))
		printed++
		if maxRows > 0 && printed == maxRows {
			fmt.Printf("... (output capped at %d rows; remaining search abandoned)\n", maxRows)
			return nil
		}
	}
	if err := rows.Err(); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Printf("(%d rows, interrupted)\n", printed)
			return nil
		}
		return err
	}
	fmt.Printf("(%d rows)\n", printed)
	return nil
}

// streamInserts reads file as N-Triples and inserts it into the store in
// batches, so queries interleave with many small atomic updates.
func streamInserts(ctx context.Context, store *turbohom.Store, file string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	r := rdf.NewReader(f)
	const batchSize = 512
	batch := make([]turbohom.Triple, 0, batchSize)
	inserted := 0
	flush := func() error {
		n, err := store.Insert(batch)
		inserted += n
		batch = batch[:0]
		return err
	}
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		t, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		batch = append(batch, t)
		if len(batch) == batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("inserted %d new triples from %s (concurrently with the query)\n", inserted, file)
	return nil
}

// openStore resolves the three data sources shared by the query CLI and
// `serve`: a durable snapshot directory (-load), an N-Triples file (-data),
// or a generated benchmark dataset (-dataset/-scale).
func openStore(dataFile, dataset string, scale int, loadDir string, opts *turbohom.Options) (*turbohom.Store, error) {
	switch {
	case loadDir != "":
		// -dataset stays legal alongside -load: it names the benchmark
		// workload for -id without generating any triples.
		if dataFile != "" {
			return nil, fmt.Errorf("-load replaces -data")
		}
		return turbohom.OpenDir(loadDir, opts)
	case dataFile != "":
		return turbohom.OpenFile(dataFile, opts)
	case dataset != "":
		ds, err := generated(dataset, scale)
		if err != nil {
			return nil, err
		}
		return turbohom.New(ds.Triples, opts), nil
	}
	return nil, fmt.Errorf("one of -data, -dataset, or -load is required")
}

func generated(name string, scale int) (*datagen.Dataset, error) {
	switch strings.ToLower(name) {
	case "lubm":
		return datagen.LUBMDataset(scale), nil
	case "bsbm":
		return datagen.BSBMDataset(scale * 100), nil
	case "yago":
		return datagen.YAGODataset(scale * 1000), nil
	case "btc":
		return datagen.BTCDataset(scale * 1000), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (lubm, bsbm, yago, btc)", name)
	}
}

func workloadQueries(name string) ([]datagen.Query, error) {
	switch strings.ToLower(name) {
	case "lubm":
		return datagen.LUBMQueries(), nil
	case "bsbm":
		return datagen.BSBMQueries(), nil
	case "yago":
		return datagen.YAGOQueries(), nil
	case "btc":
		return datagen.BTCQueries(), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}
