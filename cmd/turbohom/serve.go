package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"time"

	turbohom "repro"
	"repro/internal/server"
)

// serveMain implements `turbohom serve`: load a store (same -data/-dataset/
// -load sources as the query CLI) and serve the W3C SPARQL 1.1 Protocol on
// -addr until the context is cancelled (SIGINT/SIGTERM), then drain
// in-flight requests gracefully.
//
//	turbohom serve -dataset lubm -scale 8 -addr :3030
//	curl 'http://localhost:3030/sparql?query=SELECT...' \
//	     -H 'Accept: application/sparql-results+json'
//
// Responses stream row by row from the matcher's cursor, so a result of any
// size is served in bounded memory; disconnecting mid-response aborts the
// remaining search. With -load the store is durable and SPARQL updates
// (INSERT DATA / DELETE DATA) are logged to the WAL before applying;
// -readonly rejects them instead.
//
// Repeated SELECTs are answered from a snapshot-versioned result cache
// (64 MiB by default; size it with -cache-bytes, disable it with
// -cache-off): a hit replays the byte-identical response without running
// the matcher, the X-Turbohom-Cache header says which happened, and
// committed updates invalidate exactly the entries whose query footprint
// overlaps what the update touched — everything else is carried forward.
//
//	turbohom serve -dataset lubm -scale 8 -cache-bytes $((128<<20))
//	curl -sD- 'http://localhost:3030/sparql?query=...' | grep X-Turbohom-Cache
func serveMain(ctx context.Context, args []string) (retErr error) {
	fs := flag.NewFlagSet("turbohom serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":3030", "listen address")
		dataFile   = fs.String("data", "", "N-Triples file to load")
		dataset    = fs.String("dataset", "", "generate a benchmark dataset: lubm, bsbm, yago, btc")
		scale      = fs.Int("scale", 1, "dataset scale factor")
		loadDir    = fs.String("load", "", "open a durable store from a snapshot directory")
		syncWAL    = fs.Bool("syncwal", false, "fsync the write-ahead log on every update")
		transf     = fs.String("transform", "typeaware", "graph transformation: typeaware or direct")
		noopt      = fs.Bool("noopt", false, "disable the TurboHOM++ optimization suite")
		workers    = fs.Int("workers", 0, "parallel workers per query (0 = all CPUs)")
		streamBuf  = fs.Int("stream-buffer", 0, "max rows a query buffers ahead of its client (0 = 64x workers)")
		costOrder  = fs.Bool("costorder", false, "rank matching orders by graph statistics")
		timeout    = fs.Duration("timeout", 0, "per-query wall budget (0 = 30s, negative = unlimited)")
		maxRows    = fs.Int("max-rows", 0, "truncate SELECT responses after this many rows, announced in the X-Turbohom-Truncated trailer (0 = unlimited)")
		cacheSize  = fs.Int("prepared-cache", 0, "prepared-query LRU entries (0 = 128, negative disables)")
		drain      = fs.Duration("drain", 0, "graceful-shutdown budget for in-flight requests (0 = 10s)")
		readOnly   = fs.Bool("readonly", false, "reject SPARQL updates with 403")
		cacheBytes = fs.Int64("cache-bytes", 0, "result-cache byte budget (0 = 64 MiB)")
		cacheOff   = fs.Bool("cache-off", false, "disable the result cache")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	opts := &turbohom.Options{
		Workers:              *workers,
		StreamBuffer:         *streamBuf,
		DisableOptimizations: *noopt,
		CostOrder:            *costOrder,
		SyncWAL:              *syncWAL,
	}
	switch *transf {
	case "typeaware":
		opts.Transformation = turbohom.TypeAware
	case "direct":
		opts.Transformation = turbohom.Direct
	default:
		return fmt.Errorf("unknown transformation %q", *transf)
	}

	store, err := openStore(*dataFile, *dataset, *scale, *loadDir, opts)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := store.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("closing store: %w", cerr)
		}
	}()

	resultCache := *cacheBytes
	if *cacheOff {
		resultCache = -1
	}
	srv := server.New(store, turbohom.ServerOptions{
		QueryTimeout:     *timeout,
		MaxRows:          *maxRows,
		PreparedCache:    *cacheSize,
		DrainTimeout:     *drain,
		ReadOnly:         *readOnly,
		ResultCacheBytes: resultCache,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	st := store.Stats()
	fmt.Printf("serving %d triples (%d vertices, %d edges, %s transformation)\n",
		st.Triples, st.Vertices, st.Edges, st.Transformation)
	fmt.Printf("SPARQL endpoint: http://%s/sparql  (health: /healthz)\n", l.Addr())

	start := time.Now()
	err = srv.Serve(ctx, l)
	m := srv.Metrics()
	fmt.Printf("server stopped after %s: %d queries (%d ok, %d failed, %d cancelled), %d rows, %d updates\n",
		time.Since(start).Round(time.Millisecond),
		m.QueriesStarted, m.QueriesOK, m.QueriesFailed, m.QueriesCancelled,
		m.RowsStreamed, m.UpdatesOK)
	return err
}
