// Command turbolint runs the repository's project-specific go/analysis
// suite — the analyzers under internal/lint that enforce the engine's
// concurrency and determinism invariants (snapshot pinning, row cloning,
// map-iteration order, cancellation cadence, paired binding undos).
//
// Run it over the module the way CI does:
//
//	go run ./cmd/turbolint ./...
//
// The binary is dual-mode. Invoked by a human (package patterns as
// arguments) it re-executes itself through `go vet -vettool=<self>`,
// which handles loading, caching and dependency analysis; invoked by the
// go command (a *.cfg unit file, -V=full, or -flags) it speaks the
// unitchecker protocol directly. Flags are forwarded verbatim, so both
// analyzer flags and vet flags work from the command line:
//
//	go run ./cmd/turbolint -json ./...                # machine-readable
//	go run ./cmd/turbolint -maporder.pkgs=... ./...   # re-scope a checker
//
// Exit status follows go vet: non-zero when any diagnostic is reported
// (including in -json mode, where diagnostics go to stdout as JSON).
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	if vetMode(os.Args[1:]) {
		unitchecker.Main(lint.Analyzers()...) // does not return
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "turbolint: cannot locate own executable: %v\n", err)
		os.Exit(2)
	}
	args := append([]string{"vet", "-vettool=" + self}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	cmd.Stdin = os.Stdin
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "turbolint: %v\n", err)
		os.Exit(2)
	}
}

// vetMode reports whether the go command is driving this process as a
// vet tool: a unit config file argument, the -V version handshake, the
// -flags introspection call, or the unitchecker help subcommand.
func vetMode(args []string) bool {
	for _, a := range args {
		switch {
		case strings.HasSuffix(a, ".cfg"),
			strings.HasPrefix(a, "-V"),
			a == "-flags",
			a == "help":
			return true
		}
	}
	return false
}
