// Package turbohom is an in-memory RDF store and SPARQL engine built on
// subgraph-isomorphism technology, reproducing "Taming Subgraph Isomorphism
// for RDF Query Processing" (Kim, Shin, Han, Hong, Chafi — VLDB 2015).
//
// The paper's thesis is that a state-of-the-art subgraph isomorphism
// algorithm (TurboISO), relaxed to graph homomorphism and tamed for RDF,
// outperforms purpose-built RDF engines — often by orders of magnitude.
// This package is the public face of that system:
//
//   - Store loads RDF triples (from memory or N-Triples), transforms them
//     into a labeled graph under either the direct or the type-aware
//     transformation (paper §3.2, §4.1), and answers SPARQL queries —
//     basic graph patterns with FILTER, OPTIONAL, and UNION — through the
//     TurboHOM++ matching engine with its full optimization suite (+INT,
//     -NLF, -DEG, +REUSE; paper §4.3) and parallel execution (§5.2).
//
//   - Graph and Pattern expose the underlying matcher for generic labeled
//     graphs: classic subgraph isomorphism and e-graph homomorphism
//     (paper Definitions 1 and 2) without any RDF machinery.
//
// # Quick start
//
//	store, err := turbohom.OpenFile("data.nt", nil)
//	if err != nil { ... }
//	res, err := store.Query(`
//	    PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
//	    SELECT ?x WHERE { ?x rdf:type ub:Student . }`)
//
// The internal packages hold the substrates: the matching engine
// (internal/core), graph storage (internal/graph), transformations
// (internal/transform), the SPARQL front end (internal/sparql,
// internal/engine), two baseline RDF engines used by the paper's
// experiments (internal/baseline/...), benchmark dataset generators
// (internal/datagen), and the experiment harness (internal/bench).
package turbohom
