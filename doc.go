// Package turbohom is an in-memory RDF store and SPARQL engine built on
// subgraph-isomorphism technology, reproducing "Taming Subgraph Isomorphism
// for RDF Query Processing" (Kim, Shin, Han, Hong, Chafi — VLDB 2015).
//
// The paper's thesis is that a state-of-the-art subgraph isomorphism
// algorithm (TurboISO), relaxed to graph homomorphism and tamed for RDF,
// outperforms purpose-built RDF engines — often by orders of magnitude.
// This package is the public face of that system:
//
//   - Store loads RDF triples (from memory or N-Triples), transforms them
//     into a labeled graph under either the direct or the type-aware
//     transformation (paper §3.2, §4.1), and answers SPARQL queries —
//     basic graph patterns with FILTER, OPTIONAL, and UNION — through the
//     TurboHOM++ matching engine with its full optimization suite (+INT,
//     -NLF, -DEG, +REUSE; paper §4.3), the NEC query reduction (§2.2),
//     and parallel execution (§5.2). Matching runs on all CPUs by default
//     (Options.Workers = 0 means runtime.GOMAXPROCS) on every path,
//     including streaming cursors: the ordered region pipeline searches
//     candidate regions concurrently and reorders rows back into the
//     sequential enumeration order, so results are byte-identical for
//     every worker count.
//
//   - Insert, Delete, and Compact mutate the store while it serves
//     queries. Updates land in a delta overlay merged on the fly with the
//     compacted base (the differential-index design of RDF-3X), and
//     Compact folds the delta back in.
//
//   - Prepared amortizes the SPARQL front end: Store.Prepare parses and
//     plans once, and the resulting Prepared is immutable and safe for
//     concurrent execution from many goroutines.
//
//   - Rows streams solutions as the matcher finds them. The engine's
//     early-termination machinery is wired straight into the cursor:
//     closing a Rows (or cancelling its context) after k rows abandons the
//     remaining candidate regions instead of scanning them, which is the
//     paper's MaxSolutions idea surfaced as an API contract.
//
//   - Graph and Pattern expose the underlying matcher for generic labeled
//     graphs: classic subgraph isomorphism and e-graph homomorphism
//     (paper Definitions 1 and 2) without any RDF machinery, both
//     materialized (FindIsomorphisms) and streamed (Isomorphisms).
//
// # Quick start
//
//	store, err := turbohom.OpenFile("data.nt", nil)
//	if err != nil { ... }
//
//	// Parse and plan once; execute many times, concurrently if you like.
//	students, err := store.Prepare(`
//	    PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
//	    PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
//	    SELECT ?x WHERE { ?x rdf:type ub:Student . }`)
//	if err != nil { ... }
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//
//	rows := students.Select(ctx)
//	defer rows.Close()
//	for rows.Next() {
//	    var x turbohom.Term
//	    if err := rows.Scan(&x); err != nil { ... }
//	    fmt.Println(x)
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Or range directly with the iterator form:
//
//	for row, err := range students.All(ctx) {
//	    if err != nil { ... }
//	    fmt.Println(row[0])
//	}
//
// # Updates and snapshot isolation
//
// Insert and Delete apply batches of triples atomically; Compact folds the
// accumulated delta back into the base representation. Every query
// execution pins the immutable snapshot current at its start: a Rows cursor
// opened before an update enumerates exactly the pre-update solutions even
// when drained afterwards — including across a mid-stream Compact — while
// executions started after the update see all of it. Writers are
// serialized; readers never block and never observe a partial batch.
// Duplicate inserts and absent deletes are ignored (the store is a triple
// set), and literal terms are canonicalized — "café" spelled with a \u
// escape and spelled raw intern as the same term. Under the type-aware
// transformation an rdfs:subClassOf change rewrites the label closure and
// triggers an implicit compaction.
//
// # Streaming vs buffering
//
// Basic graph patterns, FILTER, OPTIONAL, UNION, LIMIT/OFFSET and DISTINCT
// all stream: each row flows from the matcher's visitor callback to the
// cursor without materializing the result set (DISTINCT keeps a seen-set
// but emits incrementally). Streaming is parallel by default and bounded
// per row: workers search candidate regions through resumable cursors,
// buffering at most Options.StreamBuffer not-yet-delivered rows
// (backpressure that suspends a worker mid-region, so even one region with
// an enormous result set streams its first rows promptly in bounded
// memory), and a reorder stage delivers rows in the sequential order.
// ORDER BY must see every solution before the first row leaves, but no
// longer buffers-then-sorts monolithically: ORDER BY with LIMIT k retains
// only the best k+offset rows in a bounded heap (O(k) result memory), and
// unbounded ORDER BY sorts bounded runs as rows arrive and merges them on
// emission. Store.Query and Store.Count remain as one-shot convenience
// wrappers over the prepared path.
//
// # Serving over HTTP
//
// The engine serves real traffic through `turbohom serve`, a W3C SPARQL
// 1.1 Protocol endpoint (internal/server):
//
//	turbohom serve -dataset lubm -scale 8 -addr :3030
//	curl 'http://localhost:3030/sparql?query=SELECT...' \
//	     -H 'Accept: application/sparql-results+json'
//
// SELECT and ASK are answered over GET or POST with content-negotiated
// JSON or XML results; responses stream row by row straight from a Rows
// cursor, so the contracts above carry to the wire: a result of any size
// is served in bounded per-connection memory (the client's TCP window is
// the backpressure signal that suspends the query's workers), a client
// that disconnects mid-response aborts the remaining search, and every
// response observes one snapshot. SPARQL updates (INSERT DATA / DELETE
// DATA) map onto Store.Update — WAL-durable when the store was opened
// with -load. Per-query wall budgets, row caps (announced in the
// X-Turbohom-Truncated trailer), a prepared-query LRU, graceful drain on
// shutdown, and /healthz counters are built in; see DESIGN.md
// ("Serving") and cmd/serveload for the CI load harness that gates p50,
// p99 and rows/s.
//
// # NEC query reduction
//
// Star-shaped patterns that repeat a predicate over interchangeable
// variables —
//
//	SELECT ?h ?a ?b ?c WHERE { ?h :knows ?a . ?h :knows ?b . ?h :knows ?c . }
//
// compile to equivalent query vertices that the matcher merges into one
// Neighborhood Equivalence Class (paper §2.2) and expands by combination:
// candidate lists and joins are computed once per class, not once per
// member, and Count totals the expansions without enumerating them. The
// reduction is on by default and result sets are identical either way; set
// Options.NEC = NECOff to disable it (ablations, differential testing).
// DESIGN.md describes the mechanism and its soundness argument.
//
// The internal packages hold the substrates: the matching engine
// (internal/core), graph storage (internal/graph), transformations
// (internal/transform), the SPARQL front end (internal/sparql,
// internal/engine), the HTTP protocol endpoint (internal/server), two
// baseline RDF engines used by the paper's experiments
// (internal/baseline/...), benchmark dataset generators
// (internal/datagen), and the experiment harness (internal/bench).
//
// The concurrency and determinism contracts above — snapshot pinning,
// borrowed visitor rows, byte-identical row order, prompt cancellation,
// paired binding undos — are enforced mechanically by the repository's
// own go/analysis suite: `go run ./cmd/turbolint ./...` must stay clean
// (CI requires it). DESIGN.md ("Enforced invariants") maps each analyzer
// to its invariant and the historical bug it pins down.
package turbohom
