// Inference walkthrough: the paper loads "original triples as well as
// inferred triples" (§7.1) — without materialized inference, most LUBM
// queries return nothing. This example builds a tiny ontology, shows the
// before/after of each rule family, and runs queries that only succeed on
// the materialized graph.
package main

import (
	"fmt"
	"log"

	turbohom "repro"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

const ns = "http://uni.example/"

func iri(s string) turbohom.Term { return turbohom.NewIRI(ns + s) }

func main() {
	sub := func(a, b string) turbohom.Triple {
		return turbohom.Triple{S: iri(a), P: rdf.SubClassTerm, O: iri(b)}
	}
	subP := func(a, b string) turbohom.Triple {
		return turbohom.Triple{S: iri(a), P: rdf.NewIRI(rdf.RDFSSubProp), O: iri(b)}
	}

	// TBox: a miniature univ-bench.
	ontology := []turbohom.Triple{
		sub("FullProfessor", "Professor"),
		sub("Professor", "Faculty"),
		sub("Faculty", "Person"),
		subP("headOf", "worksFor"),
		subP("worksFor", "memberOf"),
		{S: iri("degreeFrom"), P: rdf.NewIRI(rdf.OWLInverseOf), O: iri("hasAlumnus")},
		{S: iri("subOrganizationOf"), P: rdf.TypeTerm, O: rdf.NewIRI(rdf.OWLTransitive)},
	}

	// ABox: one professor heading a department inside a university.
	facts := []turbohom.Triple{
		{S: iri("kim"), P: turbohom.TypeTerm, O: iri("FullProfessor")},
		{S: iri("kim"), P: iri("headOf"), O: iri("cs")},
		{S: iri("kim"), P: iri("degreeFrom"), O: iri("mit")},
		{S: iri("cs"), P: iri("subOrganizationOf"), O: iri("engineering")},
		{S: iri("engineering"), P: iri("subOrganizationOf"), O: iri("univ1")},
	}

	raw := append(append([]turbohom.Triple{}, ontology...), facts...)

	// Extract the rules from the TBox, add the paper's class-definition
	// rule (headOf implies Chair), and materialize.
	rules := datagen.ExtractRules(raw)
	rules.AddPropertyClass(iri("headOf"), iri("Chair"))
	full := datagen.Materialize(raw, rules)
	fmt.Printf("%d asserted triples -> %d after materialization\n\n", len(raw), len(full))

	before := turbohom.New(raw, nil)
	after := turbohom.New(full, nil)

	show := func(title, q string) {
		nb, err := before.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		na, err := after.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s  before: %d   after: %d\n", title, nb, na)
	}

	const prefix = `
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		PREFIX u: <http://uni.example/>
	`
	// Note the first query works even before materialization: the
	// type-aware transformation folds rdfs:subClassOf into vertex labels
	// transitively (paper §4.1, Definition 3), so class closure is the one
	// rule family the engine gets for free. Everything else needs the
	// materializer.
	show("subclass closure: ?x rdf:type u:Person",
		prefix+`SELECT ?x WHERE { ?x rdf:type u:Person . }`)
	show("subproperty closure: ?x u:memberOf u:cs",
		prefix+`SELECT ?x WHERE { ?x u:memberOf u:cs . }`)
	show("inverse: u:mit u:hasAlumnus ?x",
		prefix+`SELECT ?x WHERE { u:mit u:hasAlumnus ?x . }`)
	show("transitivity: ?x u:subOrganizationOf u:univ1",
		prefix+`SELECT ?x WHERE { ?x u:subOrganizationOf u:univ1 . }`)
	show("class definition: ?x rdf:type u:Chair",
		prefix+`SELECT ?x WHERE { ?x rdf:type u:Chair . }`)

	fmt.Println("\nEvery 'before: 0' line is a query the paper's benchmarks rely")
	fmt.Println("on that only the materialized graph can answer — the reason the")
	fmt.Println("standard LUBM loading includes inferred triples. Class closure")
	fmt.Println("alone already works: the type-aware transformation computes it")
	fmt.Println("while folding types into labels (Definition 3).")
}
