// Labeled-graph matching without RDF: the paper's Figure 1 run through the
// public Graph/Pattern API, showing the difference between subgraph
// isomorphism (Definition 1) and e-graph homomorphism (Definition 2) — the
// single relaxation that turns a subgraph isomorphism algorithm into an RDF
// pattern matcher.
package main

import (
	"context"
	"fmt"
	"log"

	turbohom "repro"
)

func main() {
	// Data graph g1 (paper Figure 1b, reconstructed from the published
	// solution set).
	gb := turbohom.NewGraphBuilder()
	v0 := gb.AddVertex("B")
	v1 := gb.AddVertex("A")
	v2 := gb.AddVertex("B")
	v3 := gb.AddVertex("A", "D")
	v4 := gb.AddVertex("C")
	v5 := gb.AddVertex("C", "E")
	gb.AddEdge(v0, v1, "a")
	gb.AddEdge(v0, v4, "b")
	gb.AddEdge(v2, v1, "a")
	gb.AddEdge(v2, v3, "a")
	gb.AddEdge(v2, v5, "b")
	gb.AddEdge(v3, v4, "c")
	gb.AddEdge(v3, v5, "c")
	g := gb.Build()
	fmt.Printf("data graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// Query graph q1 (Figure 1a): u0 unlabeled, u1{A}, u2{B}, u3{A},
	// u4{C}; one edge label left blank.
	p := turbohom.NewPattern()
	u0 := p.AddVertex()
	u1 := p.AddVertex("A")
	u2 := p.AddVertex("B")
	u3 := p.AddVertex("A")
	u4 := p.AddVertex("C")
	p.AddEdge(u0, u1, "a")
	p.AddEdge(u0, u4, "b")
	p.AddEdge(u2, u1, "a")
	p.AddEdge(u2, u3, "a")
	p.AddWildcardEdge(u3, u4)

	iso, err := g.FindIsomorphisms(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subgraph isomorphisms (injective): %d\n", len(iso))
	for _, m := range iso {
		printMapping(m)
	}

	// The streaming form yields each mapping as the matcher finds it;
	// breaking out of the loop would abandon the remaining search.
	fmt.Println("\ne-graph homomorphisms (injectivity dropped):")
	nHom := 0
	for m, err := range g.Homomorphisms(context.Background(), p) {
		if err != nil {
			log.Fatal(err)
		}
		printMapping(m)
		nHom++
	}
	fmt.Printf("  (%d total)\n", nHom)

	fmt.Println("\nThe two extra homomorphisms map u0 and u2 to the same data")
	fmt.Println("vertex — the RDF pattern-matching semantics the paper obtains")
	fmt.Println("from TurboISO by removing one constraint (§2.2).")
}

func printMapping(m []int) {
	fmt.Print("  {")
	for u, v := range m {
		if u > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("u%d->v%d", u, v)
	}
	fmt.Println("}")
}
