// LUBM benchmark walkthrough: generate the paper's main dataset at a small
// scale, load it into TurboHOM++ and the two baseline engines, and compare
// solution counts and elapsed times over all 14 queries — a miniature of
// the paper's Table 3 experiment.
//
//	go run ./examples/lubm [-scale 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	turbohom "repro"
	"repro/internal/baseline/bitmat"
	"repro/internal/baseline/rdf3x"
	"repro/internal/datagen"
)

func main() {
	scale := flag.Int("scale", 2, "LUBM scale factor (universities)")
	flag.Parse()

	fmt.Printf("generating LUBM%d (with inferred triples)...\n", *scale)
	ds := datagen.LUBMDataset(*scale)
	fmt.Printf("%d triples\n\n", len(ds.Triples))

	turbo := turbohom.New(ds.Triples, nil)
	merge := rdf3x.Load(ds.Triples)
	bits := bitmat.Load(ds.Triples)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tsolutions\tTurboHOM++\tRDF-3X\tbitmap\t")
	for _, q := range ds.Queries {
		n, err := turbo.Count(q.Text)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}

		tTurbo := timeOf(func() { mustCount(turbo.Count, q.Text, n) })
		tMerge := timeOf(func() { mustCount(merge.Count, q.Text, n) })
		tBits := timeOf(func() { mustCount(bits.Count, q.Text, n) })

		kind := "constant"
		if q.Increasing {
			kind = "increasing"
		}
		fmt.Fprintf(w, "%s (%s)\t%d\t%v\t%v\t%v\t\n", q.ID, kind, n, tTurbo, tMerge, tBits)
	}
	w.Flush()

	fmt.Println("\nThe shape to look for (paper §7.2): TurboHOM++ leads everywhere;")
	fmt.Println("constant-solution queries stay flat as -scale grows, while the")
	fmt.Println("baselines' scan-proportional costs keep rising.")
}

func mustCount(f func(string) (int, error), q string, want int) {
	n, err := f(q)
	if err != nil {
		log.Fatal(err)
	}
	if n != want {
		log.Fatalf("engine disagreement: %d vs %d", n, want)
	}
}

// timeOf reports the best of three runs — cheap and stable enough for a
// demo; the real protocol lives in internal/bench.
func timeOf(f func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best.Round(10 * time.Microsecond)
}
