// Quickstart: build a tiny RDF dataset in memory, load it into a Store,
// and run SPARQL queries through the prepared/streaming API — the
// five-minute tour of the public surface.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	turbohom "repro"
)

func main() {
	ex := func(s string) turbohom.Term { return turbohom.NewIRI("http://example.org/" + s) }

	// A miniature version of the paper's running example (Figure 3): a
	// graduate student, her university, and her department.
	triples := []turbohom.Triple{
		{S: ex("student1"), P: turbohom.TypeTerm, O: ex("GraduateStudent")},
		{S: ex("student1"), P: turbohom.TypeTerm, O: ex("Student")}, // inferred
		{S: ex("univ1"), P: turbohom.TypeTerm, O: ex("University")},
		{S: ex("dept1"), P: turbohom.TypeTerm, O: ex("Department")},
		{S: ex("student1"), P: ex("undergraduateDegreeFrom"), O: ex("univ1")},
		{S: ex("student1"), P: ex("memberOf"), O: ex("dept1")},
		{S: ex("dept1"), P: ex("subOrganizationOf"), O: ex("univ1")},
		{S: ex("student1"), P: ex("telephone"), O: turbohom.NewLiteral("012-345-6789")},
		{S: ex("student1"), P: ex("emailAddress"), O: turbohom.NewLiteral("john@dept1.univ1.edu")},
	}

	// nil options: type-aware transformation, full TurboHOM++ optimization
	// suite.
	store := turbohom.New(triples, nil)
	st := store.Stats()
	fmt.Printf("loaded %d triples -> %d vertices, %d edges (%s)\n\n",
		st.Triples, st.Vertices, st.Edges, st.Transformation)

	// Deadlines and cancellation propagate into the matcher: a query that
	// exceeds the budget abandons its remaining candidate regions.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()

	// The paper's Figure 5 query: students with an undergraduate degree
	// from the university their department belongs to. Under the
	// type-aware transformation this becomes a simple triangle (Figure 8).
	// Prepare parses and plans once; the Prepared is reusable and safe for
	// concurrent execution.
	triangle, err := store.Prepare(`
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		PREFIX ex: <http://example.org/>
		SELECT ?X ?Y ?Z WHERE {
			?X rdf:type ex:Student .
			?Y rdf:type ex:University .
			?Z rdf:type ex:Department .
			?X ex:undergraduateDegreeFrom ?Y .
			?X ex:memberOf ?Z .
			?Z ex:subOrganizationOf ?Y .
		}`)
	if err != nil {
		log.Fatal(err)
	}

	// Streaming cursor: rows arrive as the matcher finds them, and Close
	// (or a cancelled context) stops the search early.
	fmt.Println("triangle query (paper Fig. 5):")
	rows := triangle.Select(ctx)
	for rows.Next() {
		var x, y, z turbohom.Term
		if err := rows.Scan(&x, &y, &z); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  X=%s  Y=%s  Z=%s\n", x, y, z)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()

	// The same Prepared can also be drained with the iterator form, or
	// materialized, or counted — each execution reuses the cached plan.
	if n, err := triangle.Count(ctx); err == nil {
		fmt.Printf("  (count-only re-execution: %d solutions)\n", n)
	}

	// Variables work in any position, including the predicate. All returns
	// a range-over-func iterator; breaking out terminates the search.
	facts, err := store.Prepare(`
		PREFIX ex: <http://example.org/>
		SELECT ?p ?o WHERE { ex:student1 ?p ?o . }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\neverything about student1:")
	for row, err := range facts.All(ctx) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %s\n", row[0], row[1])
	}

	// OPTIONAL and FILTER, evaluated the paper's way (§5.1): cheap filters
	// during exploration, the rest after matching. One-shot queries can
	// skip Prepare with Store.Select (or the materializing Store.Query).
	optRows, err := store.Select(ctx, `
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		PREFIX ex: <http://example.org/>
		SELECT ?X ?tel WHERE {
			?X rdf:type ex:Student .
			OPTIONAL { ?X ex:telephone ?tel . }
		}`)
	if err != nil {
		log.Fatal(err)
	}
	defer optRows.Close()
	fmt.Println("\nstudents with optional telephone:")
	for optRows.Next() {
		row := optRows.Row()
		tel := string(row[1])
		if tel == "" {
			tel = "(none)"
		}
		fmt.Printf("  %s  %s\n", row[0], tel)
	}
	if err := optRows.Err(); err != nil {
		log.Fatal(err)
	}
}
