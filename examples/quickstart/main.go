// Quickstart: build a tiny RDF dataset in memory, load it into a Store,
// and run SPARQL queries — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	turbohom "repro"
)

func main() {
	ex := func(s string) turbohom.Term { return turbohom.NewIRI("http://example.org/" + s) }

	// A miniature version of the paper's running example (Figure 3): a
	// graduate student, her university, and her department.
	triples := []turbohom.Triple{
		{S: ex("student1"), P: turbohom.TypeTerm, O: ex("GraduateStudent")},
		{S: ex("student1"), P: turbohom.TypeTerm, O: ex("Student")}, // inferred
		{S: ex("univ1"), P: turbohom.TypeTerm, O: ex("University")},
		{S: ex("dept1"), P: turbohom.TypeTerm, O: ex("Department")},
		{S: ex("student1"), P: ex("undergraduateDegreeFrom"), O: ex("univ1")},
		{S: ex("student1"), P: ex("memberOf"), O: ex("dept1")},
		{S: ex("dept1"), P: ex("subOrganizationOf"), O: ex("univ1")},
		{S: ex("student1"), P: ex("telephone"), O: turbohom.NewLiteral("012-345-6789")},
		{S: ex("student1"), P: ex("emailAddress"), O: turbohom.NewLiteral("john@dept1.univ1.edu")},
	}

	// nil options: type-aware transformation, full TurboHOM++ optimization
	// suite.
	store := turbohom.New(triples, nil)
	st := store.Stats()
	fmt.Printf("loaded %d triples -> %d vertices, %d edges (%s)\n\n",
		st.Triples, st.Vertices, st.Edges, st.Transformation)

	// The paper's Figure 5 query: students with an undergraduate degree
	// from the university their department belongs to. Under the
	// type-aware transformation this becomes a simple triangle (Figure 8).
	const q = `
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		PREFIX ex: <http://example.org/>
		SELECT ?X ?Y ?Z WHERE {
			?X rdf:type ex:Student .
			?Y rdf:type ex:University .
			?Z rdf:type ex:Department .
			?X ex:undergraduateDegreeFrom ?Y .
			?X ex:memberOf ?Z .
			?Z ex:subOrganizationOf ?Y .
		}`
	res, err := store.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("triangle query (paper Fig. 5):")
	for _, row := range res.Rows {
		fmt.Printf("  X=%s  Y=%s  Z=%s\n", row[0], row[1], row[2])
	}

	// Variables work in any position, including the predicate.
	res, err = store.Query(`
		PREFIX ex: <http://example.org/>
		SELECT ?p ?o WHERE { ex:student1 ?p ?o . }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\neverything about student1 (%d facts):\n", res.Len())
	for _, row := range res.Rows {
		fmt.Printf("  %s -> %s\n", row[0], row[1])
	}

	// OPTIONAL and FILTER, evaluated the paper's way (§5.1): cheap filters
	// during exploration, the rest after matching.
	res, err = store.Query(`
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		PREFIX ex: <http://example.org/>
		SELECT ?X ?tel WHERE {
			?X rdf:type ex:Student .
			OPTIONAL { ?X ex:telephone ?tel . }
		}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstudents with optional telephone:")
	for _, row := range res.Rows {
		tel := string(row[1])
		if tel == "" {
			tel = "(none)"
		}
		fmt.Printf("  %s  %s\n", row[0], tel)
	}
}
