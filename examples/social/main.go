// Social-graph scenario: the paper motivates RDF engines with social
// networks among its application areas. This example models a small social
// platform and exercises the general SPARQL features of §5.1 — OPTIONAL,
// FILTER (comparisons, regex, bound), and UNION — plus parallel matching.
package main

import (
	"context"
	"fmt"
	"log"

	turbohom "repro"
)

const ns = "http://social.example/"

func iri(s string) turbohom.Term { return turbohom.NewIRI(ns + s) }

func socialTriples() []turbohom.Triple {
	var ts []turbohom.Triple
	add := func(s, p string, o turbohom.Term) {
		ts = append(ts, turbohom.Triple{S: iri(s), P: iri(p), O: o})
	}
	typ := func(s, class string) {
		ts = append(ts, turbohom.Triple{S: iri(s), P: turbohom.TypeTerm, O: iri(class)})
	}

	people := []struct {
		id, name string
		age      int64
		city     string
	}{
		{"ada", "Ada", 36, "london"},
		{"alan", "Alan", 41, "london"},
		{"grace", "Grace", 85, "newyork"},
		{"linus", "Linus", 55, "helsinki"},
		{"margaret", "Margaret", 88, "boston"},
	}
	for _, p := range people {
		typ(p.id, "Person")
		add(p.id, "name", turbohom.NewLiteral(p.name))
		add(p.id, "age", turbohom.NewIntLiteral(p.age))
		add(p.id, "livesIn", iri(p.city))
	}
	for _, c := range []string{"london", "newyork", "helsinki", "boston"} {
		typ(c, "City")
	}

	follows := [][2]string{
		{"ada", "alan"}, {"alan", "ada"}, {"grace", "ada"},
		{"linus", "grace"}, {"margaret", "grace"}, {"ada", "margaret"},
	}
	for _, f := range follows {
		add(f[0], "follows", iri(f[1]))
	}

	posts := []struct {
		id, author, text string
	}{
		{"p1", "ada", "Notes on the Analytical Engine"},
		{"p2", "alan", "On computable numbers"},
		{"p3", "grace", "Compilers and how to build them"},
		{"p4", "ada", "More engine diagrams"},
	}
	for _, p := range posts {
		typ(p.id, "Post")
		add(p.id, "author", iri(p.author))
		add(p.id, "text", turbohom.NewLiteral(p.text))
	}
	// Only some posts have likes — OPTIONAL territory.
	add("p1", "likedBy", iri("alan"))
	add("p1", "likedBy", iri("grace"))
	add("p3", "likedBy", iri("linus"))
	return ts
}

func run(store *turbohom.Store, title, q string) {
	// Stream the rows: they print as the matcher finds them, and an error
	// (or a cancelled context) surfaces at the end of the range.
	p, err := store.Prepare(q)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Println(title)
	n := 0
	for row, err := range p.All(context.Background()) {
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		fmt.Print("  ")
		for i, cell := range row {
			if i > 0 {
				fmt.Print(" | ")
			}
			if cell == "" {
				fmt.Print("-")
			} else {
				fmt.Print(string(cell))
			}
		}
		fmt.Println()
		n++
	}
	fmt.Printf("(%d rows)\n\n", n)
}

func main() {
	// Two workers: the paper's §5.2 parallelization, dynamic chunks of
	// starting vertices.
	store := turbohom.New(socialTriples(), &turbohom.Options{Workers: 2})

	const prefix = `
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		PREFIX s: <http://social.example/>
	`

	run(store, "mutual follows (cycle pattern)", prefix+`
		SELECT ?a ?b WHERE {
			?a s:follows ?b .
			?b s:follows ?a .
		}`)

	run(store, "posts with optional likes", prefix+`
		SELECT ?text ?fan WHERE {
			?post rdf:type s:Post .
			?post s:text ?text .
			OPTIONAL { ?post s:likedBy ?fan . }
		}`)

	run(store, "authors under 60 whose posts mention engines (FILTER + regex)", prefix+`
		SELECT ?name ?text WHERE {
			?post s:author ?p .
			?post s:text ?text .
			?p s:name ?name .
			?p s:age ?age .
			FILTER(?age < 60)
			FILTER regex(?text, "[Ee]ngine")
		}`)

	run(store, "Londoners or people Grace follows (UNION)", prefix+`
		SELECT ?name WHERE {
			{ ?p s:livesIn s:london . ?p s:name ?name . }
			UNION
			{ s:grace s:follows ?p . ?p s:name ?name . }
		}`)

	run(store, "people without any posts (OPTIONAL + !bound)", prefix+`
		SELECT ?name WHERE {
			?p rdf:type s:Person .
			?p s:name ?name .
			OPTIONAL { ?post s:author ?p . }
			FILTER(!bound(?post))
		}`)

	run(store, "follower-of-follower reach (homomorphism allows ?a = ?c)", prefix+`
		SELECT ?a ?c WHERE {
			?a s:follows ?b .
			?b s:follows ?c .
		}`)
}
