module repro

go 1.24

require golang.org/x/tools v0.29.0

// Offline build: golang.org/x/tools is satisfied by the vendored subset in
// third_party (copied from the Go toolchain's cmd/vendor tree); see
// third_party/golang.org/x/tools/README.md.
replace golang.org/x/tools => ./third_party/golang.org/x/tools

tool repro/cmd/turbolint
