package turbohom

import (
	"context"
	"iter"

	"repro/internal/core"
	"repro/internal/graph"
)

// Graph is a generic labeled multigraph for direct subgraph matching,
// independent of RDF. Vertices carry label sets, edges carry one label.
// Build it with NewGraphBuilder; match Patterns against it with
// FindIsomorphisms or FindHomomorphisms (paper Definitions 1 and 2).
type Graph struct {
	g      *graph.Graph
	labels map[string]uint32
	elabel map[string]uint32
}

// GraphBuilder accumulates vertices and edges for a Graph.
type GraphBuilder struct {
	b      *graph.Builder
	n      int
	labels map[string]uint32
	elabel map[string]uint32
}

// NewGraphBuilder returns an empty builder.
func NewGraphBuilder() *GraphBuilder {
	return &GraphBuilder{
		b:      graph.NewBuilder(),
		labels: map[string]uint32{},
		elabel: map[string]uint32{},
	}
}

func internLabel(m map[string]uint32, s string) uint32 {
	if id, ok := m[s]; ok {
		return id
	}
	id := uint32(len(m))
	m[s] = id
	return id
}

// AddVertex appends a vertex with the given labels and returns its ID.
func (gb *GraphBuilder) AddVertex(labels ...string) int {
	v := uint32(gb.n)
	gb.n++
	gb.b.EnsureVertex(v)
	for _, l := range labels {
		gb.b.AddVertexLabel(v, internLabel(gb.labels, l))
	}
	return int(v)
}

// AddEdge adds a directed labeled edge between vertices returned by
// AddVertex.
func (gb *GraphBuilder) AddEdge(from, to int, label string) {
	gb.b.AddEdge(uint32(from), internLabel(gb.elabel, label), uint32(to))
}

// Build freezes the graph.
func (gb *GraphBuilder) Build() *Graph {
	return &Graph{g: gb.b.Build(), labels: gb.labels, elabel: gb.elabel}
}

// Pattern is a query graph over the same label vocabulary.
type Pattern struct {
	vertices []patternVertex
	edges    []patternEdge
}

type patternVertex struct{ labels []string }

type patternEdge struct {
	from, to int
	label    string
	wildcard bool
}

// NewPattern returns an empty pattern.
func NewPattern() *Pattern { return &Pattern{} }

// AddVertex appends a pattern vertex requiring the given labels (none means
// unconstrained, the paper's blank label set).
func (p *Pattern) AddVertex(labels ...string) int {
	p.vertices = append(p.vertices, patternVertex{labels: labels})
	return len(p.vertices) - 1
}

// AddEdge adds a directed edge that must match the given label.
func (p *Pattern) AddEdge(from, to int, label string) {
	p.edges = append(p.edges, patternEdge{from: from, to: to, label: label})
}

// AddWildcardEdge adds a directed edge matching any label (the paper's
// blank edge label).
func (p *Pattern) AddWildcardEdge(from, to int) {
	p.edges = append(p.edges, patternEdge{from: from, to: to, wildcard: true})
}

// compile lowers the pattern onto g's label vocabulary. ok is false when a
// pattern label never occurs in the graph (no matches possible).
func (g *Graph) compile(p *Pattern) (*core.QueryGraph, bool) {
	qg := core.NewQueryGraph()
	for _, v := range p.vertices {
		var ls []uint32
		for _, l := range v.labels {
			id, ok := g.labels[l]
			if !ok {
				return nil, false
			}
			ls = append(ls, id)
		}
		qg.AddVertex(ls, core.NoID)
	}
	for _, e := range p.edges {
		if e.wildcard {
			qg.AddVarEdge(e.from, e.to, -1)
			continue
		}
		id, ok := g.elabel[e.label]
		if !ok {
			return nil, false
		}
		qg.AddEdge(e.from, e.to, id)
	}
	return qg, true
}

// FindIsomorphisms returns every subgraph isomorphism of p in g as vertex
// mappings: result[i][u] is the data vertex matched to pattern vertex u.
func (g *Graph) FindIsomorphisms(p *Pattern) ([][]int, error) {
	return g.find(p, core.Isomorphism)
}

// FindHomomorphisms returns every graph homomorphism (the RDF matching
// semantics: injectivity dropped) of p in g.
func (g *Graph) FindHomomorphisms(p *Pattern) ([][]int, error) {
	return g.find(p, core.Homomorphism)
}

// Isomorphisms streams every subgraph isomorphism of p in g as it is found,
// without materializing the result set. Breaking out of the range loop
// terminates the search early (the matcher abandons its remaining candidate
// regions), as does cancelling ctx — the context error is then yielded with
// a nil mapping as the final pair.
func (g *Graph) Isomorphisms(ctx context.Context, p *Pattern) iter.Seq2[[]int, error] {
	return g.stream(ctx, p, core.Isomorphism)
}

// Homomorphisms streams every graph homomorphism of p in g; see
// Isomorphisms for the iteration contract.
func (g *Graph) Homomorphisms(ctx context.Context, p *Pattern) iter.Seq2[[]int, error] {
	return g.stream(ctx, p, core.Homomorphism)
}

func (g *Graph) stream(ctx context.Context, p *Pattern, sem core.Semantics) iter.Seq2[[]int, error] {
	return func(yield func([]int, error) bool) {
		qg, ok := g.compile(p)
		if !ok {
			return
		}
		_, err := core.Stream(ctx, g.g, qg, sem, core.Optimized(), func(m core.Match) bool {
			row := make([]int, len(m.Vertices))
			for u, v := range m.Vertices {
				row[u] = int(v)
			}
			return yield(row, nil)
		})
		if err != nil {
			yield(nil, err)
		}
	}
}

func (g *Graph) find(p *Pattern, sem core.Semantics) ([][]int, error) {
	qg, ok := g.compile(p)
	if !ok {
		return nil, nil
	}
	matches, err := core.Collect(context.Background(), g.g, qg, sem, core.Optimized())
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(matches))
	for i, m := range matches {
		row := make([]int, len(m.Vertices))
		for u, v := range m.Vertices {
			row[u] = int(v)
		}
		out[i] = row
	}
	return out, nil
}

// NumVertices reports the data graph's vertex count.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges reports the data graph's edge count.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// ProfileResult reports where a match run spent its effort: candidate
// regions explored, candidate vertices collected, and search-tree nodes
// visited — the counters behind the paper's §3 profiling discussion.
type ProfileResult = core.ProfileResult

// ProfileIsomorphisms runs FindIsomorphisms sequentially and returns effort
// counters instead of the matches.
func (g *Graph) ProfileIsomorphisms(p *Pattern) (ProfileResult, error) {
	return g.profile(p, core.Isomorphism)
}

// ProfileHomomorphisms runs FindHomomorphisms sequentially and returns
// effort counters instead of the matches.
func (g *Graph) ProfileHomomorphisms(p *Pattern) (ProfileResult, error) {
	return g.profile(p, core.Homomorphism)
}

func (g *Graph) profile(p *Pattern, sem core.Semantics) (ProfileResult, error) {
	qg, ok := g.compile(p)
	if !ok {
		return ProfileResult{}, nil
	}
	return core.Profile(context.Background(), g.g, qg, sem, core.Optimized())
}
