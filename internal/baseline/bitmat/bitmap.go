// Package bitmat implements a bitmap-indexing RDF engine in the style of the
// paper's "System-X" competitor (and of BitMat/TripleBit): per-predicate
// bitmap indexes over subjects and objects, compressed sparse adjacency per
// predicate, bound-variable nested-index joins with bitmap candidate
// pruning, and relational FILTER / OPTIONAL / UNION evaluation on top.
//
// Its cost profile is the one the paper contrasts with graph exploration:
// per-pattern index scans whose size grows with the dataset, joined through
// materialized intermediates.
package bitmat

import "math/bits"

// bitmap is a fixed-capacity dense bitset over uint32 IDs.
type bitmap []uint64

func newBitmap(n int) bitmap { return make(bitmap, (n+63)/64) }

func (b bitmap) set(i uint32)      { b[i>>6] |= 1 << (i & 63) }
func (b bitmap) get(i uint32) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// and intersects b with o in place. The bitmaps must have equal capacity.
func (b bitmap) and(o bitmap) {
	for i := range b {
		b[i] &= o[i]
	}
}

// clone copies the bitmap.
func (b bitmap) clone() bitmap {
	c := make(bitmap, len(b))
	copy(c, b)
	return c
}

// count returns the number of set bits.
func (b bitmap) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
