package bitmat

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/transform"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}

// universityTriples is a small dataset shared across tests.
func universityTriples() []rdf.Triple {
	return []rdf.Triple{
		{S: iri("alice"), P: rdf.TypeTerm, O: iri("Student")},
		{S: iri("bob"), P: rdf.TypeTerm, O: iri("Student")},
		{S: iri("carol"), P: rdf.TypeTerm, O: iri("Professor")},
		t3("alice", "advisor", "carol"),
		t3("bob", "advisor", "carol"),
		t3("carol", "teacherOf", "course1"),
		t3("alice", "takesCourse", "course1"),
		t3("bob", "takesCourse", "course2"),
		{S: iri("alice"), P: iri("name"), O: rdf.NewLiteral("Alice")},
		{S: iri("alice"), P: iri("age"), O: rdf.NewIntLiteral(22)},
		{S: iri("bob"), P: iri("age"), O: rdf.NewIntLiteral(27)},
	}
}

func TestLoadDedup(t *testing.T) {
	ts := universityTriples()
	ts = append(ts, ts[0], ts[3]) // duplicates
	s := Load(ts)
	if s.NumTriples() != len(universityTriples()) {
		t.Fatalf("NumTriples = %d, want %d", s.NumTriples(), len(universityTriples()))
	}
	if s.NumPredicates() != 6 {
		t.Fatalf("NumPredicates = %d, want 6", s.NumPredicates())
	}
}

func TestPredIndexLookups(t *testing.T) {
	s := Load(universityTriples())
	advisorID, ok := s.dict.Lookup(iri("advisor"))
	if !ok {
		t.Fatal("advisor predicate not interned")
	}
	pi := &s.preds[s.pred(advisorID)]
	carol, _ := s.dict.Lookup(iri("carol"))
	alice, _ := s.dict.Lookup(iri("alice"))
	bob, _ := s.dict.Lookup(iri("bob"))

	subs := pi.subjectsOf(carol)
	if len(subs) != 2 {
		t.Fatalf("subjectsOf(carol) = %v, want 2 entries", subs)
	}
	if !pi.has(alice, carol) || !pi.has(bob, carol) {
		t.Fatal("has() missed existing advisor edges")
	}
	if pi.has(carol, alice) {
		t.Fatal("has() invented a reversed edge")
	}
	if got := pi.objectsOf(alice); len(got) != 1 || got[0] != carol {
		t.Fatalf("objectsOf(alice) = %v, want [carol]", got)
	}
}

func TestBitmapOps(t *testing.T) {
	b := newBitmap(200)
	for _, i := range []uint32{0, 63, 64, 199} {
		b.set(i)
	}
	if !b.get(0) || !b.get(63) || !b.get(64) || !b.get(199) {
		t.Fatal("set bits not observed")
	}
	if b.get(1) || b.get(198) {
		t.Fatal("unset bits observed")
	}
	if b.count() != 4 {
		t.Fatalf("count = %d, want 4", b.count())
	}
	c := b.clone()
	o := newBitmap(200)
	o.set(63)
	o.set(100)
	c.and(o)
	if c.count() != 1 || !c.get(63) {
		t.Fatalf("and: got count %d", c.count())
	}
	// Original untouched by clone's and.
	if b.count() != 4 {
		t.Fatal("clone aliased the original")
	}
}

func TestBGPJoin(t *testing.T) {
	s := Load(universityTriples())
	// Students advised by carol who take a course she teaches.
	_, rows, err := s.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT ?x WHERE {
			?x ex:advisor ex:carol .
			ex:carol ex:teacherOf ?c .
			?x ex:takesCourse ?c .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != iri("alice") {
		t.Fatalf("rows = %v, want [[alice]]", rows)
	}
}

func TestVariablePredicate(t *testing.T) {
	s := Load(universityTriples())
	_, rows, err := s.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT ?p ?o WHERE { ex:alice ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("alice has %d triples, want 5: %v", len(rows), rows)
	}
}

func TestFilter(t *testing.T) {
	s := Load(universityTriples())
	_, rows, err := s.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT ?x WHERE { ?x ex:age ?a . FILTER(?a > 25) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != iri("bob") {
		t.Fatalf("rows = %v, want [[bob]]", rows)
	}
}

func TestOptional(t *testing.T) {
	s := Load(universityTriples())
	_, rows, err := s.Query(`
		PREFIX ex: <http://ex.org/>
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?x ?n WHERE {
			?x rdf:type ex:Student .
			OPTIONAL { ?x ex:name ?n . }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	byX := map[rdf.Term]rdf.Term{}
	for _, r := range rows {
		byX[r[0]] = r[1]
	}
	if byX[iri("alice")] != rdf.NewLiteral("Alice") {
		t.Fatalf("alice name = %q", byX[iri("alice")])
	}
	if byX[iri("bob")] != rdf.Term("") {
		t.Fatalf("bob name should be unbound, got %q", byX[iri("bob")])
	}
}

func TestUnion(t *testing.T) {
	s := Load(universityTriples())
	_, rows, err := s.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT ?x WHERE {
			{ ?x ex:takesCourse ex:course1 . } UNION { ?x ex:takesCourse ex:course2 . }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
}

func TestUnknownConstant(t *testing.T) {
	s := Load(universityTriples())
	n, err := s.Count(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:advisor ex:nobody . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
}

func TestDistinctLimitOffset(t *testing.T) {
	s := Load(universityTriples())
	_, rows, err := s.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT DISTINCT ?y WHERE { ?x ex:advisor ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("distinct rows = %d, want 1", len(rows))
	}
	_, rows, err = s.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT ?x WHERE { ?x ex:advisor ?y . } LIMIT 1 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("limit/offset rows = %d, want 1", len(rows))
	}
}

func TestRepeatedVariable(t *testing.T) {
	ts := []rdf.Triple{
		t3("a", "knows", "a"),
		t3("a", "knows", "b"),
		t3("b", "knows", "b"),
	}
	s := Load(ts)
	n, err := s.Count(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:knows ?x . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("self-loop count = %d, want 2", n)
	}
}

// TestDifferentialAgainstTurboHOM cross-checks solution counts between the
// bitmap engine and the matcher-backed engine on random BGPs over random
// graphs.
func TestDifferentialAgainstTurboHOM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	preds := []string{"p0", "p1", "p2"}
	for trial := 0; trial < 30; trial++ {
		nv := 8 + rng.Intn(8)
		var ts []rdf.Triple
		for i := 0; i < nv*3; i++ {
			s := fmt.Sprintf("v%d", rng.Intn(nv))
			o := fmt.Sprintf("v%d", rng.Intn(nv))
			p := preds[rng.Intn(len(preds))]
			ts = append(ts, t3(s, p, o))
		}
		bm := Load(ts)
		data := transform.Build(ts, transform.TypeAware)
		eng := engine.New(data, core.Optimized())

		queries := []string{
			`PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p0 ?y . ?y ex:p1 ?z . }`,
			`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p0 ?y . ?x ex:p2 ?z . }`,
			`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p0 ?y . ?y ex:p1 ?x . }`,
		}
		for _, q := range queries {
			want, err := eng.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := bm.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d query %q: bitmat=%d turbohom=%d", trial, q, got, want)
			}
		}
	}
}

func TestDeterministicRows(t *testing.T) {
	s := Load(universityTriples())
	run := func() []string {
		_, rows, err := s.Query(`PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:advisor ?y . }`)
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for _, r := range rows {
			keys = append(keys, fmt.Sprint(r))
		}
		sort.Strings(keys)
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic results: %v vs %v", a, b)
		}
	}
}

func TestCartesianJoin(t *testing.T) {
	s := Load(universityTriples())
	// Two patterns sharing no variables: cartesian product.
	n, err := s.Count(`PREFIX ex: <http://ex.org/>
		SELECT ?x ?y WHERE { ?x ex:teacherOf ?a . ?y ex:name ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // 1 teacherOf x 1 name
		t.Fatalf("count = %d, want 1", n)
	}
}

func TestVariablePredicateJoin(t *testing.T) {
	s := Load(universityTriples())
	// The wildcard-predicate pattern joins through a bound variable,
	// exercising the full-scan lookup path.
	_, rows, err := s.Query(`PREFIX ex: <http://ex.org/>
		SELECT ?p WHERE { ?x ex:advisor ex:carol . ?x ?p ex:course1 . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != iri("takesCourse") {
		t.Fatalf("rows = %v, want [[takesCourse]]", rows)
	}
}

func TestNestedOptionalUnboundJoin(t *testing.T) {
	s := Load(universityTriples())
	// The outer OPTIONAL may leave ?c unbound; the inner one joins on it.
	_, rows, err := s.Query(`PREFIX ex: <http://ex.org/>
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?x ?c ?t WHERE {
			?x rdf:type ex:Student .
			OPTIONAL { ?x ex:takesCourse ?c .
				OPTIONAL { ?teacher ex:teacherOf ?c . } }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestOrderByBitmat(t *testing.T) {
	s := Load(universityTriples())
	_, rows, err := s.Query(`PREFIX ex: <http://ex.org/>
		SELECT ?x ?a WHERE { ?x ex:age ?a . } ORDER BY DESC(?a)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != iri("bob") {
		t.Fatalf("desc order wrong: %v", rows)
	}
	_, rows, err = s.Query(`PREFIX ex: <http://ex.org/>
		SELECT ?x ?a WHERE { ?x ex:age ?a . } ORDER BY ?a`)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != iri("alice") {
		t.Fatalf("asc order wrong: %v", rows)
	}
}

func TestCountWithModifiers(t *testing.T) {
	s := Load(universityTriples())
	n, err := s.Count(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:advisor ?y . } LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count with LIMIT = %d, want 1", n)
	}
}

func TestExplain(t *testing.T) {
	s := Load(universityTriples())
	if got := s.Explain(); got == "" {
		t.Fatal("empty explain")
	}
}

func TestUnionJoinsWithBase(t *testing.T) {
	s := Load(universityTriples())
	// UNION inside a group with a base pattern: hashJoin path.
	n, err := s.Count(`PREFIX ex: <http://ex.org/>
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?x WHERE {
			?x rdf:type ex:Student .
			{ ?x ex:takesCourse ex:course1 . } UNION { ?x ex:takesCourse ex:course2 . }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}
