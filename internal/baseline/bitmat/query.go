package bitmat

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Query parses and evaluates a SPARQL query (basic graph patterns with
// FILTER, OPTIONAL, and UNION) and returns the projected rows. Unbound
// positions hold the empty term.
func (s *Store) Query(src string) (vars []string, rows [][]rdf.Term, err error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	rel, err := s.evalGroup(q.Where)
	if err != nil {
		return nil, nil, err
	}
	if len(q.OrderBy) > 0 {
		s.orderRelation(rel, q.OrderBy)
	}
	vars = q.ProjectedVars()
	out := make([][]rdf.Term, 0, len(rel.rows))
	for _, r := range rel.rows {
		row := make([]rdf.Term, len(vars))
		for i, v := range vars {
			if ci := rel.colIndex(v); ci >= 0 && r[ci] != unbound {
				row[i] = s.dict.Term(r[ci])
			}
		}
		out = append(out, row)
	}
	if q.Distinct {
		out = dedupTermRows(out)
	}
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = nil
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit >= 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return vars, out, nil
}

// Count evaluates the query and returns the solution count without
// materializing terms (except when DISTINCT forces it).
func (s *Store) Count(src string) (int, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return 0, err
	}
	if q.Distinct || q.Limit >= 0 || q.Offset > 0 {
		_, rows, err := s.Query(src)
		return len(rows), err
	}
	rel, err := s.evalGroup(q.Where)
	if err != nil {
		return 0, err
	}
	return len(rel.rows), nil
}

// evalGroup evaluates a group pattern: BGP, then UNION chains joined in,
// then OPTIONAL left joins, then FILTERs.
func (s *Store) evalGroup(g *sparql.GroupPattern) (*relation, error) {
	rel, err := s.evalBGP(g.Triples)
	if err != nil {
		return nil, err
	}
	for _, chain := range g.Unions {
		alts := make([]*relation, 0, len(chain))
		for _, alt := range chain {
			r, err := s.evalGroup(alt)
			if err != nil {
				return nil, err
			}
			alts = append(alts, r)
		}
		rel = hashJoin(rel, union(alts))
		if len(rel.rows) == 0 {
			return rel, nil
		}
	}
	for _, opt := range g.Optionals {
		r, err := s.evalGroup(opt)
		if err != nil {
			return nil, err
		}
		rel = leftJoin(rel, r)
	}
	for _, f := range g.Filters {
		rel = s.applyFilter(rel, f)
		if len(rel.rows) == 0 {
			return rel, nil
		}
	}
	return rel, nil
}

// applyFilter keeps the rows satisfying the expression, evaluating it over
// the dictionary terms of the row.
func (s *Store) applyFilter(rel *relation, f sparql.Expr) *relation {
	need := map[string]bool{}
	f.Vars(need)
	slots := make(map[string]int, len(need))
	for v := range need {
		if ci := rel.colIndex(v); ci >= 0 {
			slots[v] = ci
		}
	}
	out := &relation{cols: rel.cols}
	b := make(sparql.Bindings, len(slots))
	for _, r := range rel.rows {
		clear(b)
		for v, ci := range slots {
			if r[ci] != unbound {
				b[v] = s.dict.Term(r[ci])
			}
		}
		if sparql.EvalFilter(f, b) {
			out.rows = append(out.rows, r)
		}
	}
	return out
}

// pattern is a compiled triple pattern.
type pattern struct {
	ids  triple    // constant IDs; NoID for variables
	vars [3]string // variable names; "" for constants
	est  int       // estimated result size
	dead bool      // a constant is absent from the dictionary
}

// compile resolves the pattern constants and estimates its cardinality.
func (s *Store) compile(tp sparql.TriplePattern) pattern {
	var p pattern
	for i, pos := range [3]sparql.TermOrVar{tp.S, tp.P, tp.O} {
		if pos.IsVar() {
			p.ids[i] = rdf.NoID
			p.vars[i] = pos.Var
			continue
		}
		id, ok := s.dict.Lookup(pos.Term)
		if !ok {
			p.dead = true
			return p
		}
		p.ids[i] = id
	}
	p.est = s.estimate(p)
	return p
}

func (s *Store) estimate(p pattern) int {
	if p.ids[1] == rdf.NoID {
		return s.n // variable predicate: full scan
	}
	slot := s.pred(p.ids[1])
	if slot < 0 {
		return 0
	}
	pi := &s.preds[slot]
	switch {
	case p.ids[0] != rdf.NoID && p.ids[2] != rdf.NoID:
		if pi.has(p.ids[0], p.ids[2]) {
			return 1
		}
		return 0
	case p.ids[0] != rdf.NoID:
		return len(pi.objectsOf(p.ids[0]))
	case p.ids[2] != rdf.NoID:
		return len(pi.subjectsOf(p.ids[2]))
	default:
		return pi.n
	}
}

// evalBGP evaluates a basic graph pattern with a greedy bound-variable
// nested-index join, pruning scans with per-variable candidate bitmaps.
func (s *Store) evalBGP(tps []sparql.TriplePattern) (*relation, error) {
	if len(tps) == 0 {
		return emptyRelation(), nil
	}
	pats := make([]pattern, 0, len(tps))
	for _, tp := range tps {
		p := s.compile(tp)
		if p.dead || p.est == 0 {
			return noSolutions(), nil
		}
		pats = append(pats, p)
	}

	cand := s.candidateBitmaps(pats)

	remaining := make([]bool, len(pats))
	for i := range remaining {
		remaining[i] = true
	}
	first := 0
	for i := range pats {
		if pats[i].est < pats[first].est {
			first = i
		}
	}
	rel := s.scan(pats[first], cand)
	remaining[first] = false
	bound := map[string]bool{}
	for _, c := range rel.cols {
		bound[c] = true
	}

	for n := 1; n < len(pats); n++ {
		best, bestConn := -1, false
		for i, rem := range remaining {
			if !rem {
				continue
			}
			conn := false
			for _, v := range pats[i].vars {
				if v != "" && bound[v] {
					conn = true
					break
				}
			}
			if best == -1 || (conn && !bestConn) ||
				(conn == bestConn && pats[i].est < pats[best].est) {
				best, bestConn = i, conn
			}
		}
		remaining[best] = false
		if bestConn {
			rel = s.extend(rel, pats[best], cand)
		} else {
			rel = hashJoin(rel, s.scan(pats[best], cand))
		}
		if len(rel.rows) == 0 {
			return rel, nil
		}
		for _, c := range rel.cols {
			bound[c] = true
		}
	}
	return rel, nil
}

// candidateBitmaps ANDs, for every variable that appears in two or more
// constant-predicate patterns, the subject/object bitmaps of those patterns
// — the BitMat-style pruning step.
func (s *Store) candidateBitmaps(pats []pattern) map[string]bitmap {
	uses := map[string]int{}
	for _, p := range pats {
		if p.ids[1] == rdf.NoID {
			continue
		}
		if p.vars[0] != "" {
			uses[p.vars[0]]++
		}
		if p.vars[2] != "" {
			uses[p.vars[2]]++
		}
	}
	cand := map[string]bitmap{}
	for _, p := range pats {
		if p.ids[1] == rdf.NoID {
			continue
		}
		slot := s.pred(p.ids[1])
		if slot < 0 {
			continue
		}
		pi := &s.preds[slot]
		for pos, bits := range map[int]bitmap{0: pi.subjBits, 2: pi.objBits} {
			v := p.vars[pos]
			if v == "" || uses[v] < 2 {
				continue
			}
			if cur, ok := cand[v]; ok {
				cur.and(bits)
			} else {
				cand[v] = bits.clone()
			}
		}
	}
	return cand
}

// pass reports whether value x of variable v survives its candidate bitmap.
func pass(cand map[string]bitmap, v string, x uint32) bool {
	if v == "" {
		return true
	}
	b, ok := cand[v]
	return !ok || b.get(x)
}

// scan materializes one pattern's bindings from the best index.
func (s *Store) scan(p pattern, cand map[string]bitmap) *relation {
	rel := &relation{}
	addCols := func() (si, oi, pi int) {
		si, oi, pi = -1, -1, -1
		add := func(v string) int {
			if v == "" {
				return -1
			}
			if ci := rel.colIndex(v); ci >= 0 {
				return ci
			}
			rel.cols = append(rel.cols, v)
			return len(rel.cols) - 1
		}
		si = add(p.vars[0])
		pi = add(p.vars[1])
		oi = add(p.vars[2])
		return
	}

	if p.ids[1] == rdf.NoID {
		// Variable predicate: scan the full triple list.
		si, oi, pi := addCols()
		for _, t := range s.triples {
			if p.ids[0] != rdf.NoID && t[0] != p.ids[0] {
				continue
			}
			if p.ids[2] != rdf.NoID && t[2] != p.ids[2] {
				continue
			}
			if !pass(cand, p.vars[0], t[0]) || !pass(cand, p.vars[2], t[2]) {
				continue
			}
			row := make([]uint32, len(rel.cols))
			if setRow(row, si, t[0], pi, t[1], oi, t[2]) {
				rel.rows = append(rel.rows, row)
			}
		}
		return rel
	}

	slot := s.pred(p.ids[1])
	if slot < 0 {
		return noSolutions()
	}
	idx := &s.preds[slot]
	si, oi, pi := addCols()
	emit := func(sv, ov uint32) {
		if !pass(cand, p.vars[0], sv) || !pass(cand, p.vars[2], ov) {
			return
		}
		row := make([]uint32, len(rel.cols))
		if setRow(row, si, sv, pi, p.ids[1], oi, ov) {
			rel.rows = append(rel.rows, row)
		}
	}
	switch {
	case p.ids[0] != rdf.NoID && p.ids[2] != rdf.NoID:
		if idx.has(p.ids[0], p.ids[2]) {
			emit(p.ids[0], p.ids[2])
		}
	case p.ids[0] != rdf.NoID:
		for _, o := range idx.objectsOf(p.ids[0]) {
			emit(p.ids[0], o)
		}
	case p.ids[2] != rdf.NoID:
		for _, sv := range idx.subjectsOf(p.ids[2]) {
			emit(sv, p.ids[2])
		}
	default:
		for i, sv := range idx.subjIDs {
			for _, o := range idx.objAdj[idx.subjOff[i]:idx.subjOff[i+1]] {
				emit(sv, o)
			}
		}
	}
	return rel
}

// setRow writes the variable bindings into row, rejecting rows where one
// variable is used in several positions with conflicting values
// (?x ?p ?x patterns share a column index).
func setRow(row []uint32, si int, sv uint32, pi int, pv uint32, oi int, ov uint32) bool {
	if si >= 0 && si == oi && sv != ov {
		return false
	}
	if si >= 0 && si == pi && sv != pv {
		return false
	}
	if oi >= 0 && oi == pi && ov != pv {
		return false
	}
	if si >= 0 {
		row[si] = sv
	}
	if pi >= 0 {
		row[pi] = pv
	}
	if oi >= 0 {
		row[oi] = ov
	}
	return true
}

// extend nested-index joins the relation with one connected pattern: for
// every row, bound positions become constants and the per-predicate index
// enumerates the rest.
func (s *Store) extend(rel *relation, p pattern, cand map[string]bitmap) *relation {
	out := &relation{cols: append([]string(nil), rel.cols...)}
	// New columns introduced by this pattern.
	colOf := [3]int{-1, -1, -1}
	isNew := [3]bool{}
	for i, v := range p.vars {
		if v == "" {
			continue
		}
		if ci := out.colIndex(v); ci >= 0 {
			colOf[i] = ci
		} else {
			out.cols = append(out.cols, v)
			colOf[i] = len(out.cols) - 1
			isNew[i] = true
		}
	}

	for _, r := range rel.rows {
		// Resolve the pattern against this row.
		var want triple
		for i := range want {
			switch {
			case p.ids[i] != rdf.NoID:
				want[i] = p.ids[i]
			case !isNew[i] && r[colOf[i]] != unbound:
				want[i] = r[colOf[i]]
			default:
				want[i] = rdf.NoID
			}
		}
		s.lookup(want, p, func(sv, pv, ov uint32) {
			if !pass(cand, p.vars[0], sv) || !pass(cand, p.vars[2], ov) {
				return
			}
			row := make([]uint32, len(out.cols))
			copy(row, r)
			vals := [3]uint32{sv, pv, ov}
			for i := range vals {
				if colOf[i] >= 0 {
					if !isNew[i] && row[colOf[i]] != unbound && row[colOf[i]] != vals[i] {
						return
					}
					row[colOf[i]] = vals[i]
				}
			}
			// Repeated variable inside this pattern.
			for i := 0; i < 3; i++ {
				for j := i + 1; j < 3; j++ {
					if colOf[i] >= 0 && colOf[i] == colOf[j] && vals[i] != vals[j] {
						return
					}
				}
			}
			out.rows = append(out.rows, row)
		})
	}
	return out
}

// lookup enumerates the triples matching the bound components of want
// (NoID = wildcard) through the cheapest available index.
func (s *Store) lookup(want triple, p pattern, emit func(sv, pv, ov uint32)) {
	if want[1] == rdf.NoID {
		for _, t := range s.triples {
			if want[0] != rdf.NoID && t[0] != want[0] {
				continue
			}
			if want[2] != rdf.NoID && t[2] != want[2] {
				continue
			}
			emit(t[0], t[1], t[2])
		}
		return
	}
	slot := s.pred(want[1])
	if slot < 0 {
		return
	}
	idx := &s.preds[slot]
	switch {
	case want[0] != rdf.NoID && want[2] != rdf.NoID:
		if idx.has(want[0], want[2]) {
			emit(want[0], want[1], want[2])
		}
	case want[0] != rdf.NoID:
		for _, o := range idx.objectsOf(want[0]) {
			emit(want[0], want[1], o)
		}
	case want[2] != rdf.NoID:
		for _, sv := range idx.subjectsOf(want[2]) {
			emit(sv, want[1], want[2])
		}
	default:
		for i, sv := range idx.subjIDs {
			for _, o := range idx.objAdj[idx.subjOff[i]:idx.subjOff[i+1]] {
				emit(sv, want[1], o)
			}
		}
	}
}

// orderRelation sorts the relation's rows by the ORDER BY keys; unbound
// cells (OPTIONAL) order first, as in the shared SPARQL ordering.
func (s *Store) orderRelation(rel *relation, keys []sparql.OrderKey) {
	type keyCol struct {
		ci   int
		desc bool
	}
	var cols []keyCol
	for _, k := range keys {
		if ci := rel.colIndex(k.Var); ci >= 0 {
			cols = append(cols, keyCol{ci, k.Desc})
		}
	}
	if len(cols) == 0 {
		return
	}
	term := func(id uint32) rdf.Term {
		if id == unbound {
			return ""
		}
		return s.dict.Term(id)
	}
	sort.SliceStable(rel.rows, func(i, j int) bool {
		for _, kc := range cols {
			c := sparql.CompareTerms(term(rel.rows[i][kc.ci]), term(rel.rows[j][kc.ci]))
			if c == 0 {
				continue
			}
			if kc.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func dedupTermRows(rows [][]rdf.Term) [][]rdf.Term {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var b strings.Builder
	for _, r := range rows {
		b.Reset()
		for _, t := range r {
			b.WriteString(string(t))
			b.WriteByte('\x00')
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// Explain returns a short description of the store, for debugging.
func (s *Store) Explain() string {
	return fmt.Sprintf("bitmat: %d triples, %d predicates, %d terms",
		s.n, len(s.preds), s.dict.Len())
}
