package bitmat

import "repro/internal/rdf"

// unbound marks an OPTIONAL variable with no binding in a row.
const unbound = rdf.NoID

// relation is a materialized intermediate result: named columns over rows of
// dictionary IDs.
type relation struct {
	cols []string
	rows [][]uint32
}

func (r *relation) colIndex(name string) int {
	for i, c := range r.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// emptyRelation returns a relation with no columns and a single empty row —
// the join identity (one empty solution).
func emptyRelation() *relation {
	return &relation{rows: [][]uint32{{}}}
}

// noSolutions returns a relation with no rows.
func noSolutions() *relation { return &relation{} }

// hashJoin inner-joins a and b on their shared columns; with no shared
// columns it degenerates to the cartesian product.
func hashJoin(a, b *relation) *relation {
	var keyA, keyB []int
	for ia, ca := range a.cols {
		if ib := b.colIndex(ca); ib >= 0 {
			keyA = append(keyA, ia)
			keyB = append(keyB, ib)
		}
	}
	out := &relation{cols: append([]string(nil), a.cols...)}
	var bExtra []int
	for ib, cb := range b.cols {
		if a.colIndex(cb) < 0 {
			out.cols = append(out.cols, cb)
			bExtra = append(bExtra, ib)
		}
	}

	if len(keyA) == 0 {
		for _, ra := range a.rows {
			for _, rb := range b.rows {
				out.rows = append(out.rows, concatRow(ra, rb, bExtra))
			}
		}
		return out
	}

	// Build the hash table on the smaller side, probe with the larger.
	build, probe := b, a
	keyBuild, keyProbe := keyB, keyA
	buildIsA := false
	if len(a.rows) < len(b.rows) {
		build, probe = a, b
		keyBuild, keyProbe = keyA, keyB
		buildIsA = true
	}
	ht := make(map[string][]int, len(build.rows))
	for i, r := range build.rows {
		k := rowKey(r, keyBuild)
		ht[k] = append(ht[k], i)
	}
	for _, rp := range probe.rows {
		for _, bi := range ht[rowKey(rp, keyProbe)] {
			rb := build.rows[bi]
			if buildIsA {
				// rb is the a-row, rp the b-row.
				out.rows = append(out.rows, concatRow(rb, rp, bExtra))
			} else {
				out.rows = append(out.rows, concatRow(rp, rb, bExtra))
			}
		}
	}
	return out
}

// leftJoin left-joins a with b on their shared columns (SPARQL OPTIONAL):
// rows of a without a matching b row keep their values and take unbound for
// b's extra columns. Shared columns where the a side is unbound (nested
// OPTIONAL) match any b value and adopt it.
func leftJoin(a, b *relation) *relation {
	var keyA, keyB []int
	for ia, ca := range a.cols {
		if ib := b.colIndex(ca); ib >= 0 {
			keyA = append(keyA, ia)
			keyB = append(keyB, ib)
		}
	}
	out := &relation{cols: append([]string(nil), a.cols...)}
	var bExtra []int
	for ib, cb := range b.cols {
		if a.colIndex(cb) < 0 {
			out.cols = append(out.cols, cb)
			bExtra = append(bExtra, ib)
		}
	}

	ht := make(map[string][]int, len(b.rows))
	for i, r := range b.rows {
		ht[rowKey(r, keyB)] = append(ht[rowKey(r, keyB)], i)
	}
	nullRow := make([]uint32, len(bExtra))
	for i := range nullRow {
		nullRow[i] = unbound
	}
	for _, ra := range a.rows {
		matched := false
		if !rowHasUnbound(ra, keyA) {
			for _, bi := range ht[rowKey(ra, keyA)] {
				out.rows = append(out.rows, concatRow(ra, b.rows[bi], bExtra))
				matched = true
			}
		} else {
			// Unbound join columns: fall back to a scan matching only the
			// bound ones. Rare (nested OPTIONAL), so the linear pass is fine.
			for _, rb := range b.rows {
				ok := true
				for x := range keyA {
					if ra[keyA[x]] != unbound && ra[keyA[x]] != rb[keyB[x]] {
						ok = false
						break
					}
				}
				if ok {
					merged := append([]uint32(nil), ra...)
					for x := range keyA {
						if merged[keyA[x]] == unbound {
							merged[keyA[x]] = rb[keyB[x]]
						}
					}
					for _, ib := range bExtra {
						merged = append(merged, rb[ib])
					}
					out.rows = append(out.rows, merged)
					matched = true
				}
			}
		}
		if !matched {
			out.rows = append(out.rows, concatRow(ra, nullRow, allIndexes(len(nullRow))))
		}
	}
	return out
}

// union concatenates relations, aligning columns by name; missing columns
// become unbound.
func union(rels []*relation) *relation {
	if len(rels) == 1 {
		return rels[0]
	}
	// Column union in first-seen order.
	out := &relation{}
	seen := map[string]int{}
	for _, r := range rels {
		for _, c := range r.cols {
			if _, ok := seen[c]; !ok {
				seen[c] = len(out.cols)
				out.cols = append(out.cols, c)
			}
		}
	}
	for _, r := range rels {
		pos := make([]int, len(r.cols))
		for i, c := range r.cols {
			pos[i] = seen[c]
		}
		for _, row := range r.rows {
			dst := make([]uint32, len(out.cols))
			for i := range dst {
				dst[i] = unbound
			}
			for i, v := range row {
				dst[pos[i]] = v
			}
			out.rows = append(out.rows, dst)
		}
	}
	return out
}

func concatRow(ra, rb []uint32, bExtra []int) []uint32 {
	row := make([]uint32, 0, len(ra)+len(bExtra))
	row = append(row, ra...)
	for _, ib := range bExtra {
		row = append(row, rb[ib])
	}
	return row
}

func allIndexes(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func rowKey(r []uint32, key []int) string {
	b := make([]byte, 0, len(key)*5)
	for _, k := range key {
		v := r[k]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), 0)
	}
	return string(b)
}

func rowHasUnbound(r []uint32, key []int) bool {
	for _, k := range key {
		if r[k] == unbound {
			return true
		}
	}
	return false
}
