package bitmat

import (
	"sort"

	"repro/internal/rdf"
)

// predIndex is the per-predicate index: subject and object bitmaps plus the
// two CSR adjacency maps (subject -> sorted objects, object -> sorted
// subjects). CSR keys are the sorted distinct subjects/objects, located by
// binary search.
type predIndex struct {
	n int // triple count for this predicate

	subjBits bitmap
	objBits  bitmap

	subjIDs []uint32 // sorted distinct subjects
	subjOff []int
	objAdj  []uint32 // objects grouped by subject, each group sorted

	objIDs  []uint32 // sorted distinct objects
	objOff  []int
	subjAdj []uint32 // subjects grouped by object, each group sorted
}

// objectsOf returns the sorted objects reachable from subject s.
func (pi *predIndex) objectsOf(s uint32) []uint32 {
	i := sort.Search(len(pi.subjIDs), func(k int) bool { return pi.subjIDs[k] >= s })
	if i == len(pi.subjIDs) || pi.subjIDs[i] != s {
		return nil
	}
	return pi.objAdj[pi.subjOff[i]:pi.subjOff[i+1]]
}

// subjectsOf returns the sorted subjects reaching object o.
func (pi *predIndex) subjectsOf(o uint32) []uint32 {
	i := sort.Search(len(pi.objIDs), func(k int) bool { return pi.objIDs[k] >= o })
	if i == len(pi.objIDs) || pi.objIDs[i] != o {
		return nil
	}
	return pi.subjAdj[pi.objOff[i]:pi.objOff[i+1]]
}

// has reports whether the triple (s, thisPredicate, o) exists.
func (pi *predIndex) has(s, o uint32) bool {
	objs := pi.objectsOf(s)
	j := sort.Search(len(objs), func(k int) bool { return objs[k] >= o })
	return j < len(objs) && objs[j] == o
}

// edge is one dictionary-encoded (subject, object) pair of a predicate.
type edge struct{ s, o uint32 }

// Store is the immutable bitmap-indexed triple store.
type Store struct {
	dict     *rdf.Dictionary // every term: subjects, predicates, objects
	predSlot map[uint32]int  // term ID of a predicate -> index into preds
	predTerm []uint32        // slot -> term ID
	preds    []predIndex
	triples  []triple // all triples sorted (S,P,O) — variable-predicate scans
	n        int
}

// triple is a dictionary-encoded statement (S, P, O).
type triple [3]uint32

// Load dictionary-encodes, deduplicates, and indexes the triples.
func Load(ts []rdf.Triple) *Store {
	s := &Store{
		dict:     rdf.NewDictionary(),
		predSlot: make(map[uint32]int),
	}
	all := make([]triple, 0, len(ts))
	for _, t := range ts {
		all = append(all, triple{
			s.dict.Intern(t.S),
			s.dict.Intern(t.P),
			s.dict.Intern(t.O),
		})
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	all = dedupTriples(all)
	s.triples = all
	s.n = len(all)

	// Group edges per predicate.
	perPred := make(map[uint32][]edge)
	for _, t := range all {
		perPred[t[1]] = append(perPred[t[1]], edge{t[0], t[2]})
	}
	// Deterministic slot order: by predicate term ID.
	predIDs := make([]uint32, 0, len(perPred))
	for p := range perPred {
		predIDs = append(predIDs, p)
	}
	sort.Slice(predIDs, func(i, j int) bool { return predIDs[i] < predIDs[j] })

	nTerms := s.dict.Len()
	for _, p := range predIDs {
		s.predSlot[p] = len(s.preds)
		s.predTerm = append(s.predTerm, p)
		s.preds = append(s.preds, buildPredIndex(perPred[p], nTerms))
	}
	return s
}

func buildPredIndex(edges []edge, nTerms int) predIndex {
	pi := predIndex{
		n:        len(edges),
		subjBits: newBitmap(nTerms),
		objBits:  newBitmap(nTerms),
	}
	// Subject-major CSR.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].s != edges[j].s {
			return edges[i].s < edges[j].s
		}
		return edges[i].o < edges[j].o
	})
	for _, e := range edges {
		pi.subjBits.set(e.s)
		pi.objBits.set(e.o)
		if n := len(pi.subjIDs); n == 0 || pi.subjIDs[n-1] != e.s {
			pi.subjIDs = append(pi.subjIDs, e.s)
			pi.subjOff = append(pi.subjOff, len(pi.objAdj))
		}
		pi.objAdj = append(pi.objAdj, e.o)
	}
	pi.subjOff = append(pi.subjOff, len(pi.objAdj))

	// Object-major CSR.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].o != edges[j].o {
			return edges[i].o < edges[j].o
		}
		return edges[i].s < edges[j].s
	})
	for _, e := range edges {
		if n := len(pi.objIDs); n == 0 || pi.objIDs[n-1] != e.o {
			pi.objIDs = append(pi.objIDs, e.o)
			pi.objOff = append(pi.objOff, len(pi.subjAdj))
		}
		pi.subjAdj = append(pi.subjAdj, e.s)
	}
	pi.objOff = append(pi.objOff, len(pi.subjAdj))
	return pi
}

func dedupTriples(ts []triple) []triple {
	if len(ts) < 2 {
		return ts
	}
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[w-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}

// NumTriples reports the number of distinct triples loaded.
func (s *Store) NumTriples() int { return s.n }

// NumPredicates reports the number of distinct predicates.
func (s *Store) NumPredicates() int { return len(s.preds) }

// Dict exposes the term dictionary.
func (s *Store) Dict() *rdf.Dictionary { return s.dict }

// pred returns the index slot for a predicate term ID, or -1.
func (s *Store) pred(termID uint32) int {
	slot, ok := s.predSlot[termID]
	if !ok {
		return -1
	}
	return slot
}
