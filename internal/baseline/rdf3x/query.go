package rdf3x

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// relation is a materialized intermediate result: a column list and rows of
// dictionary IDs.
type relation struct {
	cols []string
	rows [][]uint32
}

func (r *relation) colIndex(name string) int {
	for i, c := range r.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Query evaluates a SPARQL basic graph pattern query (no OPTIONAL, FILTER,
// or UNION — matching the feature set of the original RDF-3X release used
// in the paper) and returns the projected rows.
func (s *Store) Query(src string) (vars []string, rows [][]rdf.Term, err error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if len(q.Where.Filters) > 0 || len(q.Where.Optionals) > 0 || len(q.Where.Unions) > 0 {
		return nil, nil, errors.New("rdf3x: only basic graph patterns are supported")
	}
	rel, err := s.evalBGP(q.Where.Triples)
	if err != nil {
		return nil, nil, err
	}
	if len(q.OrderBy) > 0 {
		s.orderRelation(rel, q.OrderBy)
	}
	vars = q.ProjectedVars()
	out := make([][]rdf.Term, 0, len(rel.rows))
	for _, r := range rel.rows {
		row := make([]rdf.Term, len(vars))
		for i, v := range vars {
			if ci := rel.colIndex(v); ci >= 0 {
				row[i] = s.dict.Term(r[ci])
			}
		}
		out = append(out, row)
	}
	if q.Distinct {
		out = dedupTermRows(out)
	}
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = nil
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit >= 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return vars, out, nil
}

// Count evaluates a BGP query and returns the solution count without
// materializing terms.
func (s *Store) Count(src string) (int, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return 0, err
	}
	if len(q.Where.Filters) > 0 || len(q.Where.Optionals) > 0 || len(q.Where.Unions) > 0 {
		return 0, errors.New("rdf3x: only basic graph patterns are supported")
	}
	if q.Distinct {
		_, rows, err := s.Query(src)
		return len(rows), err
	}
	rel, err := s.evalBGP(q.Where.Triples)
	if err != nil {
		return 0, err
	}
	return len(rel.rows), nil
}

// compiledPattern is a triple pattern with resolved constants.
type compiledPattern struct {
	ids  triple    // constant IDs, NoID for vars
	vars [3]string // var names, "" for constants
	est  int
}

// evalBGP compiles the patterns, orders them greedily by estimated scan
// size (joining connected patterns first), and pipelines sort-merge joins.
func (s *Store) evalBGP(patterns []sparql.TriplePattern) (*relation, error) {
	if len(patterns) == 0 {
		return &relation{rows: [][]uint32{{}}}, nil
	}
	comp := make([]compiledPattern, 0, len(patterns))
	for _, tp := range patterns {
		var cp compiledPattern
		for i, pos := range []sparql.TermOrVar{tp.S, tp.P, tp.O} {
			if pos.IsVar() {
				cp.ids[i] = rdf.NoID
				cp.vars[i] = pos.Var
				continue
			}
			id, ok := s.dict.Lookup(pos.Term)
			if !ok {
				return &relation{}, nil // unknown constant: empty result
			}
			cp.ids[i] = id
		}
		cp.est = s.estimate(cp.ids)
		if cp.est == 0 {
			return &relation{}, nil
		}
		comp = append(comp, cp)
	}

	// Greedy join order: start from the most selective pattern; always
	// prefer patterns connected to the bound variables.
	remaining := make([]bool, len(comp))
	for i := range remaining {
		remaining[i] = true
	}
	pickFirst := 0
	for i := range comp {
		if comp[i].est < comp[pickFirst].est {
			pickFirst = i
		}
	}
	cur := s.scanPattern(comp[pickFirst])
	remaining[pickFirst] = false
	bound := map[string]bool{}
	for _, c := range cur.cols {
		bound[c] = true
	}
	for n := 1; n < len(comp); n++ {
		best, bestConnected := -1, false
		for i, rem := range remaining {
			if !rem {
				continue
			}
			connected := false
			for _, v := range comp[i].vars {
				if v != "" && bound[v] {
					connected = true
					break
				}
			}
			if best == -1 || (connected && !bestConnected) ||
				(connected == bestConnected && comp[i].est < comp[best].est) {
				best, bestConnected = i, connected
			}
		}
		next := s.scanPattern(comp[best])
		remaining[best] = false
		cur = mergeJoin(cur, next)
		if len(cur.rows) == 0 {
			return cur, nil
		}
		for _, c := range cur.cols {
			bound[c] = true
		}
	}
	return cur, nil
}

// scanPattern materializes one pattern's bindings via an index range scan.
func (s *Store) scanPattern(cp compiledPattern) *relation {
	rng, _ := s.scanRange(cp.ids)
	// Column set: distinct variables in S,P,O order.
	var cols []string
	var colPos []int
	seen := map[string]int{}
	for i, v := range cp.vars {
		if v == "" {
			continue
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = len(cols)
		cols = append(cols, v)
		colPos = append(colPos, i)
	}
	rel := &relation{cols: cols}
	for _, t := range rng {
		// Repeated-variable patterns (?x ?p ?x) must bind consistently.
		ok := true
		for i, v := range cp.vars {
			if v == "" {
				continue
			}
			if first := seen[v]; colPos[first] != i && t[colPos[first]] != t[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make([]uint32, len(cols))
		for ci, pi := range colPos {
			row[ci] = t[pi]
		}
		rel.rows = append(rel.rows, row)
	}
	return rel
}

// mergeJoin sort-merge joins two relations on their shared columns
// (cartesian product when none are shared). Both inputs are materialized
// and sorted — the scan-proportional cost profile of RDF-3X's plans.
func mergeJoin(a, b *relation) *relation {
	var keyA, keyB []int
	for ia, ca := range a.cols {
		if ib := b.colIndex(ca); ib >= 0 {
			keyA = append(keyA, ia)
			keyB = append(keyB, ib)
		}
	}
	// Output columns: all of a, plus b's non-shared.
	out := &relation{cols: append([]string(nil), a.cols...)}
	var bExtra []int
	for ib, cb := range b.cols {
		if a.colIndex(cb) < 0 {
			out.cols = append(out.cols, cb)
			bExtra = append(bExtra, ib)
		}
	}

	if len(keyA) == 0 {
		for _, ra := range a.rows {
			for _, rb := range b.rows {
				out.rows = append(out.rows, joinRow(ra, rb, bExtra))
			}
		}
		return out
	}

	sortRows(a.rows, keyA)
	sortRows(b.rows, keyB)
	i, j := 0, 0
	for i < len(a.rows) && j < len(b.rows) {
		c := cmpKeys(a.rows[i], b.rows[j], keyA, keyB)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the equal runs and emit their product.
			i2 := i
			for i2 < len(a.rows) && cmpKeys(a.rows[i2], b.rows[j], keyA, keyB) == 0 {
				i2++
			}
			j2 := j
			for j2 < len(b.rows) && cmpKeys(a.rows[i], b.rows[j2], keyA, keyB) == 0 {
				j2++
			}
			for x := i; x < i2; x++ {
				for y := j; y < j2; y++ {
					out.rows = append(out.rows, joinRow(a.rows[x], b.rows[y], bExtra))
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

func joinRow(ra, rb []uint32, bExtra []int) []uint32 {
	row := make([]uint32, 0, len(ra)+len(bExtra))
	row = append(row, ra...)
	for _, ib := range bExtra {
		row = append(row, rb[ib])
	}
	return row
}

func sortRows(rows [][]uint32, key []int) {
	sort.Slice(rows, func(i, j int) bool {
		for _, k := range key {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
}

func cmpKeys(ra, rb []uint32, keyA, keyB []int) int {
	for x := range keyA {
		va, vb := ra[keyA[x]], rb[keyB[x]]
		if va < vb {
			return -1
		}
		if va > vb {
			return 1
		}
	}
	return 0
}

// orderRelation sorts the relation's rows by the ORDER BY keys, comparing
// dictionary terms with the shared SPARQL ordering.
func (s *Store) orderRelation(rel *relation, keys []sparql.OrderKey) {
	type keyCol struct {
		ci   int
		desc bool
	}
	var cols []keyCol
	for _, k := range keys {
		if ci := rel.colIndex(k.Var); ci >= 0 {
			cols = append(cols, keyCol{ci, k.Desc})
		}
	}
	if len(cols) == 0 {
		return
	}
	sort.SliceStable(rel.rows, func(i, j int) bool {
		for _, kc := range cols {
			c := sparql.CompareTerms(s.dict.Term(rel.rows[i][kc.ci]), s.dict.Term(rel.rows[j][kc.ci]))
			if c == 0 {
				continue
			}
			if kc.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func dedupTermRows(rows [][]rdf.Term) [][]rdf.Term {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		k := fmt.Sprint(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
