package rdf3x

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/transform"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}

func sample() []rdf.Triple {
	return []rdf.Triple{
		{S: iri("alice"), P: rdf.TypeTerm, O: iri("Student")},
		{S: iri("bob"), P: rdf.TypeTerm, O: iri("Student")},
		{S: iri("carol"), P: rdf.TypeTerm, O: iri("Professor")},
		t3("alice", "advisor", "carol"),
		t3("bob", "advisor", "carol"),
		t3("carol", "teacherOf", "course1"),
		t3("alice", "takesCourse", "course1"),
		t3("bob", "takesCourse", "course2"),
	}
}

func TestLoadDedup(t *testing.T) {
	ts := sample()
	ts = append(ts, ts[0], ts[0], ts[3])
	s := Load(ts)
	if s.NumTriples() != len(sample()) {
		t.Fatalf("NumTriples = %d, want %d", s.NumTriples(), len(sample()))
	}
}

func TestAllPermutationsSorted(t *testing.T) {
	s := Load(sample())
	for p := perm(0); p < numPerms; p++ {
		idx := s.indexes[p]
		ord := p.order()
		for i := 1; i < len(idx); i++ {
			a, b := idx[i-1], idx[i]
			cmp := 0
			for _, c := range ord {
				if a[c] != b[c] {
					if a[c] < b[c] {
						cmp = -1
					} else {
						cmp = 1
					}
					break
				}
			}
			if cmp > 0 {
				t.Fatalf("permutation %d not sorted at %d", p, i)
			}
		}
	}
}

func TestScanRangePicksCoveringPerm(t *testing.T) {
	s := Load(sample())
	advisor, _ := s.dict.Lookup(iri("advisor"))
	carol, _ := s.dict.Lookup(iri("carol"))

	// P bound -> POS or PSO family; range must contain exactly the two
	// advisor triples.
	rng, _ := s.scanRange(triple{rdf.NoID, advisor, rdf.NoID})
	if len(rng) != 2 {
		t.Fatalf("advisor scan = %d triples, want 2", len(rng))
	}
	// P,O bound.
	rng, _ = s.scanRange(triple{rdf.NoID, advisor, carol})
	if len(rng) != 2 {
		t.Fatalf("advisor->carol scan = %d, want 2", len(rng))
	}
	for _, tr := range rng {
		if tr[1] != advisor || tr[2] != carol {
			t.Fatalf("scan returned non-matching triple %v", tr)
		}
	}
	// All unbound: the full store.
	rng, _ = s.scanRange(triple{rdf.NoID, rdf.NoID, rdf.NoID})
	if len(rng) != s.NumTriples() {
		t.Fatalf("full scan = %d, want %d", len(rng), s.NumTriples())
	}
}

func TestQueryJoin(t *testing.T) {
	s := Load(sample())
	_, rows, err := s.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT ?x WHERE {
			?x ex:advisor ex:carol .
			ex:carol ex:teacherOf ?c .
			?x ex:takesCourse ?c .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != iri("alice") {
		t.Fatalf("rows = %v, want [[alice]]", rows)
	}
}

func TestVariablePredicate(t *testing.T) {
	s := Load(sample())
	n, err := s.Count(`PREFIX ex: <http://ex.org/> SELECT ?p WHERE { ex:alice ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
}

func TestRepeatedVariablePattern(t *testing.T) {
	s := Load([]rdf.Triple{
		t3("a", "knows", "a"),
		t3("a", "knows", "b"),
	})
	n, err := s.Count(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:knows ?x . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
}

func TestCartesianProduct(t *testing.T) {
	s := Load(sample())
	n, err := s.Count(`PREFIX ex: <http://ex.org/>
		SELECT ?x ?y WHERE { ?x ex:teacherOf ?a . ?y ex:takesCourse ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // 1 teacherOf x 2 takesCourse
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestUnknownConstantEmpty(t *testing.T) {
	s := Load(sample())
	n, err := s.Count(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:advisor ex:nobody . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
}

func TestUnsupportedFeaturesRejected(t *testing.T) {
	s := Load(sample())
	for _, q := range []string{
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:advisor ?y . FILTER(?y = ex:carol) }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { OPTIONAL { ?x ex:advisor ?y . } }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { { ?x ex:advisor ?y . } UNION { ?x ex:takesCourse ?y . } }`,
	} {
		if _, _, err := s.Query(q); err == nil {
			t.Errorf("query accepted but unsupported: %s", q)
		}
		if _, err := s.Count(q); err == nil {
			t.Errorf("Count accepted but unsupported: %s", q)
		}
	}
}

func TestDistinctAndLimit(t *testing.T) {
	s := Load(sample())
	_, rows, err := s.Query(`PREFIX ex: <http://ex.org/> SELECT DISTINCT ?y WHERE { ?x ex:advisor ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("distinct = %d rows, want 1", len(rows))
	}
	_, rows, err = s.Query(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:advisor ?y . } LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("limit = %d rows, want 1", len(rows))
	}
}

// TestDifferentialAgainstTurboHOM cross-checks the merge-join engine
// against the matcher on random BGPs.
func TestDifferentialAgainstTurboHOM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	preds := []string{"p0", "p1", "p2"}
	queries := []string{
		`PREFIX ex: <http://ex.org/> SELECT ?x ?z WHERE { ?x ex:p0 ?y . ?y ex:p1 ?z . }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p0 ?y . ?x ex:p1 ?y . }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p2 ?x . }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x ?y ?z WHERE { ?x ex:p0 ?y . ?y ex:p1 ?z . ?z ex:p2 ?x . }`,
	}
	for trial := 0; trial < 25; trial++ {
		nv := 6 + rng.Intn(10)
		var ts []rdf.Triple
		for i := 0; i < nv*3; i++ {
			ts = append(ts, t3(
				fmt.Sprintf("v%d", rng.Intn(nv)),
				preds[rng.Intn(len(preds))],
				fmt.Sprintf("v%d", rng.Intn(nv))))
		}
		store := Load(ts)
		eng := engine.New(transform.Build(ts, transform.TypeAware), core.Optimized())
		for _, q := range queries {
			want, err := eng.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := store.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d %q: rdf3x=%d turbohom=%d", trial, q, got, want)
			}
		}
	}
}
