// Package rdf3x implements an RDF-3X-style triple store: the full set of
// six permutation indexes (SPO, SOP, PSO, POS, OSP, OPS) over dictionary-
// encoded triples, range scans against constant prefixes, and a greedy
// selectivity-ordered pipeline of sort-merge joins. It reproduces the
// scan-join cost behaviour of the paper's RDF-3X competitor [18]: work is
// proportional to the scanned index ranges, so elapsed time grows with the
// dataset even for selective queries.
package rdf3x

import (
	"sort"

	"repro/internal/rdf"
)

// perm identifies one of the six component orders.
type perm uint8

const (
	pSPO perm = iota
	pSOP
	pPSO
	pPOS
	pOSP
	pOPS
	numPerms
)

// order returns the triple-component positions (0=S, 1=P, 2=O) of a
// permutation, most significant first.
func (p perm) order() [3]int {
	switch p {
	case pSPO:
		return [3]int{0, 1, 2}
	case pSOP:
		return [3]int{0, 2, 1}
	case pPSO:
		return [3]int{1, 0, 2}
	case pPOS:
		return [3]int{1, 2, 0}
	case pOSP:
		return [3]int{2, 0, 1}
	default:
		return [3]int{2, 1, 0}
	}
}

// triple is a dictionary-encoded statement.
type triple [3]uint32 // S, P, O

// Store is the immutable six-index triple store.
type Store struct {
	dict    *rdf.Dictionary
	indexes [numPerms][]triple // each sorted in its permutation order
	n       int
}

// Load dictionary-encodes and indexes the triples.
func Load(triples []rdf.Triple) *Store {
	s := &Store{dict: rdf.NewDictionary()}
	base := make([]triple, 0, len(triples))
	for _, t := range triples {
		base = append(base, triple{
			s.dict.Intern(t.S),
			s.dict.Intern(t.P),
			s.dict.Intern(t.O),
		})
	}
	// Deduplicate (RDF is a set of statements).
	sort.Slice(base, func(i, j int) bool { return tripleLess(base[i], base[j]) })
	base = dedup(base)
	s.n = len(base)

	for p := perm(0); p < numPerms; p++ {
		idx := make([]triple, len(base))
		copy(idx, base)
		ord := p.order()
		sort.Slice(idx, func(i, j int) bool {
			a, b := idx[i], idx[j]
			for _, c := range ord {
				if a[c] != b[c] {
					return a[c] < b[c]
				}
			}
			return false
		})
		s.indexes[p] = idx
	}
	return s
}

func tripleLess(a, b triple) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

func dedup(ts []triple) []triple {
	if len(ts) < 2 {
		return ts
	}
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[w-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}

// NumTriples reports the number of distinct triples.
func (s *Store) NumTriples() int { return s.n }

// Dict exposes the term dictionary.
func (s *Store) Dict() *rdf.Dictionary { return s.dict }

// pickPerm chooses the permutation whose prefix covers the bound component
// set (bitmask over S=1, P=2, O=4).
func pickPerm(boundMask int) perm {
	switch boundMask {
	case 0:
		return pSPO
	case 1: // S
		return pSPO
	case 2: // P
		return pPOS
	case 4: // O
		return pOSP
	case 1 | 2: // S,P
		return pSPO
	case 1 | 4: // S,O
		return pSOP
	case 2 | 4: // P,O
		return pPOS
	default: // all bound
		return pSPO
	}
}

// scanRange returns the index slice matching the bound components of
// pattern pat (NoID = unbound). The scan is a binary-searched contiguous
// range of the chosen permutation — RDF-3X's range scan.
func (s *Store) scanRange(pat triple) ([]triple, perm) {
	mask := 0
	if pat[0] != rdf.NoID {
		mask |= 1
	}
	if pat[1] != rdf.NoID {
		mask |= 2
	}
	if pat[2] != rdf.NoID {
		mask |= 4
	}
	p := pickPerm(mask)
	idx := s.indexes[p]
	ord := p.order()
	// Determine the bound prefix values in permutation order.
	var prefix []uint32
	for _, c := range ord {
		if pat[c] == rdf.NoID {
			break
		}
		prefix = append(prefix, pat[c])
	}
	lo := sort.Search(len(idx), func(i int) bool { return cmpPrefix(idx[i], ord, prefix) >= 0 })
	hi := sort.Search(len(idx), func(i int) bool { return cmpPrefix(idx[i], ord, prefix) > 0 })
	return idx[lo:hi], p
}

// cmpPrefix compares t's permuted components against the prefix.
func cmpPrefix(t triple, ord [3]int, prefix []uint32) int {
	for i, v := range prefix {
		c := t[ord[i]]
		if c < v {
			return -1
		}
		if c > v {
			return 1
		}
	}
	return 0
}

// estimate returns the exact range size for a pattern — the statistic the
// join orderer uses (RDF-3X keeps aggregated statistics; with in-memory
// indexes the exact count is one binary search away).
func (s *Store) estimate(pat triple) int {
	r, _ := s.scanRange(pat)
	return len(r)
}
