// Package bench regenerates every table and figure of the paper's
// evaluation section (§7): the transformation size statistics (Table 1),
// the LUBM solution counts and elapsed times (Tables 2, 3), the YAGO, BTC
// and BSBM workloads (Tables 4-6), the type-aware transformation ablation
// (Table 7), the direct-transformation comparison (Figure 6), the
// per-optimization ablation (Figure 15), and the parallel speed-up
// (Figure 16).
//
// The timing protocol is the paper's: each query runs five times with warm
// indexes; the best and worst runs are dropped and the remaining three
// averaged (§7.1). Engines are compared on solution counts first — a
// mismatching engine is flagged in the output the way the paper flags
// TripleBit's wrong answers.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Runs is the number of repetitions of the timing protocol.
const Runs = 5

// Measure runs f Runs times and returns the mean of the middle runs after
// dropping the best and the worst (paper §7.1).
func Measure(f func()) time.Duration {
	ts := make([]time.Duration, Runs)
	for i := range ts {
		start := time.Now()
		f()
		ts[i] = time.Since(start)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	mid := ts[1 : len(ts)-1]
	var sum time.Duration
	for _, t := range mid {
		sum += t
	}
	return sum / time.Duration(len(mid))
}

// Fmt renders a duration the way the paper's tables do: milliseconds with
// two decimals.
func Fmt(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// Table is a formatted result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Lookup returns the cell at (rowLabel, column header), or "". Rows are
// addressed by their first cell. Tests use it to make assertions about
// runner output without parsing text.
func (t *Table) Lookup(rowLabel, col string) string {
	ci := -1
	for i, h := range t.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		return ""
	}
	for _, row := range t.Rows {
		if len(row) > ci && row[0] == rowLabel {
			return row[ci]
		}
	}
	return ""
}
