package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
)

func TestMeasureProtocol(t *testing.T) {
	calls := 0
	d := Measure(func() {
		calls++
		time.Sleep(time.Millisecond)
	})
	if calls != Runs {
		t.Fatalf("Measure ran f %d times, want %d", calls, Runs)
	}
	if d < 500*time.Microsecond {
		t.Fatalf("implausible duration %v", d)
	}
}

func TestFmtMilliseconds(t *testing.T) {
	if got := Fmt(1530 * time.Microsecond); got != "1.53" {
		t.Fatalf("Fmt = %q, want 1.53", got)
	}
	if got := Fmt(90 * time.Microsecond); got != "0.09" {
		t.Fatalf("Fmt = %q, want 0.09", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "bee"},
	}
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "2")
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a       bee", "longer  2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableLookup(t *testing.T) {
	tbl := &Table{Header: []string{"engine", "Q1"}}
	tbl.AddRow("turbo", "0.12")
	if got := tbl.Lookup("turbo", "Q1"); got != "0.12" {
		t.Fatalf("Lookup = %q", got)
	}
	if got := tbl.Lookup("missing", "Q1"); got != "" {
		t.Fatalf("Lookup(missing) = %q", got)
	}
}

func TestTable1Shape(t *testing.T) {
	tbl := Table1(Scales{LUBM: []int{1}, BSBM: 20, YAGO: 100, BTC: 100})
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Type-aware must remove edges (the type triples) on LUBM.
	eDirect, err1 := strconv.Atoi(tbl.Lookup("LUBM1", "|E| direct"))
	eTyped, err2 := strconv.Atoi(tbl.Lookup("LUBM1", "|E| type-aware"))
	if err1 != nil || err2 != nil {
		t.Fatalf("non-numeric cells: %v %v", err1, err2)
	}
	if eTyped >= eDirect {
		t.Fatalf("type-aware |E| (%d) not smaller than direct (%d)", eTyped, eDirect)
	}
}

func TestTable2CountsMatchEngines(t *testing.T) {
	tbl := Table2([]int{1})
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tbl.Rows))
	}
	// Spot-check against an independently built engine.
	ds := datagen.LUBMDataset(1)
	e := NewBitMat(ds.Triples)
	want, err := e.Count(datagen.LUBMQuery("Q5").Text)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Lookup("LUBM1", "Q5"); got != strconv.Itoa(want) {
		t.Fatalf("Table2 Q5 = %s, bitmat says %d", got, want)
	}
}

// TestTable3EngineAgreement is the cross-engine differential test on the
// full LUBM workload: every engine must report TurboHOM++'s counts (no "X"
// cells) and RDF-3X must answer every LUBM query (all BGPs).
func TestTable3EngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine comparison")
	}
	tbl := Table3(1)
	for _, row := range tbl.Rows {
		for i, cell := range row {
			if cell == "X" || cell == "n/a" {
				t.Errorf("engine %s disagrees on %s", row[0], tbl.Header[i])
			}
		}
	}
}

func TestTables4Through6Run(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine tables")
	}
	for name, tbl := range map[string]*Table{
		"t4": Table4(400),
		"t5": Table5(400),
		"t6": Table6(100),
	} {
		if len(tbl.Rows) < 2 {
			t.Errorf("%s: too few rows", name)
		}
		for _, row := range tbl.Rows {
			for i, cell := range row {
				if cell == "X" {
					t.Errorf("%s: engine %s wrong count on %s", name, row[0], tbl.Header[i])
				}
			}
		}
	}
}

func TestTable7GainPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("timing table")
	}
	tbl := Table7(1)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	// Q6 and Q14 become point-shaped under the type-aware transformation;
	// the paper's Table 7 reports its largest gains there. Timing noise on
	// a busy host can still hide gains on sub-millisecond queries, so only
	// sanity-check that the gain cells parse as positive numbers.
	for _, col := range []string{"Q6", "Q14"} {
		g, err := strconv.ParseFloat(tbl.Lookup("gain", col), 64)
		if err != nil || g <= 0 {
			t.Errorf("gain %s = %q, want positive number", col, tbl.Lookup("gain", col))
		}
	}
}

func TestFig15Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("timing figure")
	}
	tbl := Fig15(1)
	if len(tbl.Rows) != 5 { // baseline + 4 variants
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
}

func TestFig16SpeedupColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing figure")
	}
	tbl := Fig16(1, []int{1, 2})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	if got := tbl.Lookup("1", "Q2 speed-up"); got != "1.00" {
		t.Fatalf("single-worker speed-up = %s, want 1.00", got)
	}
}
