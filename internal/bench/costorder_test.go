package bench

// Cost-based ordering differential: Opts.CostOrder changes only the
// enumeration order the matcher explores, never the answer set. Every
// benchmark workload must therefore produce permutation-equal row multisets
// with the cost model on and off, under both semantics and with the NEC
// reduction on and off; and on the skewed instance the cost model was built
// for, the profile must prove it visits no more search nodes than the
// paper's candidate-population heuristic.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/transform"
)

// sortedRows executes src and returns its rows as sorted strings — the
// multiset representation for permutation-equality.
func sortedRows(t *testing.T, e *engine.Engine, src string) []string {
	t.Helper()
	res, err := e.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var b strings.Builder
		for _, term := range row {
			b.WriteString(string(term))
			b.WriteByte('\x00')
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return keys
}

func TestCostOrderDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload sweep")
	}
	datasets := []*datagen.Dataset{
		datagen.LUBMDataset(1),
		datagen.BSBMDataset(120),
		datagen.YAGODataset(600),
		datagen.BTCDataset(600),
	}
	for _, ds := range datasets {
		data := transform.Build(ds.Triples, transform.TypeAware)
		for _, sem := range []core.Semantics{core.Homomorphism, core.Isomorphism} {
			for _, noNEC := range []bool{false, true} {
				heur := core.Optimized()
				heur.NoNEC = noNEC
				heur.Workers = 1
				he := engine.New(data, heur)
				he.SetSemantics(sem)
				cost := heur
				cost.CostOrder = true
				ce := engine.New(data, cost)
				ce.SetSemantics(sem)
				name := fmt.Sprintf("%s/%v/noNEC=%v", ds.Name, sem, noNEC)
				for _, q := range ds.Queries {
					want := sortedRows(t, he, q.Text)
					got := sortedRows(t, ce, q.Text)
					if len(got) != len(want) {
						t.Errorf("%s %s: %d rows with CostOrder, %d without",
							name, q.ID, len(got), len(want))
						continue
					}
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("%s %s: row multisets differ at %d", name, q.ID, i)
							break
						}
					}
				}
			}
		}
	}

	// Skewed instance: two root-to-leaf paths where the population heuristic
	// picks the wrong one first. Path A (r -> a -> b) has population 50+50,
	// path B (r -> c) population 90, so the heuristic runs B first — but A's
	// final cardinality is only 50 (each a has exactly one b), so running A
	// first costs ~100 + 50·90 nodes against B-first's ~90 + 90·100. The
	// cost model's exchange ranking must find the cheap order and the
	// profile must show it.
	fR, fA, fB, fC := uint32(0), uint32(1), uint32(2), uint32(3)
	bld := graph.NewBuilder()
	bld.AddVertexLabel(0, fR)
	next := uint32(1)
	for i := 0; i < 50; i++ {
		av := next
		next++
		bld.AddVertexLabel(av, fA)
		bld.AddEdge(0, 1, av)
		bv := next
		next++
		bld.AddVertexLabel(bv, fB)
		bld.AddEdge(av, 2, bv)
	}
	for i := 0; i < 90; i++ {
		cv := next
		next++
		bld.AddVertexLabel(cv, fC)
		bld.AddEdge(0, 3, cv)
	}
	g := bld.Build()
	q := core.NewQueryGraph()
	qr := q.AddVertex([]uint32{fR}, core.NoID)
	qa := q.AddVertex([]uint32{fA}, core.NoID)
	qb := q.AddVertex([]uint32{fB}, core.NoID)
	qc := q.AddVertex([]uint32{fC}, core.NoID)
	q.AddEdge(qr, qa, 1)
	q.AddEdge(qa, qb, 2)
	q.AddEdge(qr, qc, 3)

	heurOpts := core.Optimized()
	costOpts := heurOpts
	costOpts.CostOrder = true
	heurPr, err := core.Profile(context.Background(), g, q, core.Homomorphism, heurOpts)
	if err != nil {
		t.Fatal(err)
	}
	costPr, err := core.Profile(context.Background(), g, q, core.Homomorphism, costOpts)
	if err != nil {
		t.Fatal(err)
	}
	if heurPr.Solutions != costPr.Solutions {
		t.Fatalf("skewed instance: %d solutions with cost order, %d with heuristic",
			costPr.Solutions, heurPr.Solutions)
	}
	if costPr.SearchNodes >= heurPr.SearchNodes {
		t.Errorf("skewed instance: cost order visited %d search nodes, heuristic %d — no win",
			costPr.SearchNodes, heurPr.SearchNodes)
	}
}
