package bench

// Cross-engine differential tests: four independent implementations — the
// TurboHOM++ matcher under both transformations, the six-permutation
// merge-join engine, and the bitmap-index engine — must agree on the
// solution count of every benchmark query. This is the repository's
// strongest end-to-end correctness check: the engines share no evaluation
// code (the matcher explores graphs; the baselines scan and join indexes).

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/transform"
)

// diffEngines builds the comparison set for a dataset. rdf3x only supports
// BGPs, so withRDF3X is false for the BSBM workload (OPTIONAL/FILTER),
// matching the paper's own exclusion.
func diffEngines(t *testing.T, ds *datagen.Dataset, withRDF3X bool) []QueryEngine {
	t.Helper()
	engines := []QueryEngine{
		TurboPlusPlus(ds.Triples),
		NewTurbo("TurboHOM-direct", ds.Triples, transform.Direct, core.Baseline()),
		NewBitMat(ds.Triples),
	}
	if withRDF3X {
		engines = append(engines, NewRDF3X(ds.Triples))
	}
	return engines
}

func assertAgreement(t *testing.T, ds *datagen.Dataset, engines []QueryEngine) {
	t.Helper()
	for _, q := range ds.Queries {
		want := -1
		wantEngine := ""
		for _, e := range engines {
			n, err := e.Count(q.Text)
			if err != nil {
				t.Errorf("%s %s on %s: %v", ds.Name, e.Name(), q.ID, err)
				continue
			}
			if want == -1 {
				want, wantEngine = n, e.Name()
				continue
			}
			if n != want {
				t.Errorf("%s %s: %s says %d, %s says %d",
					ds.Name, q.ID, wantEngine, want, e.Name(), n)
			}
		}
	}
}

func TestDifferentialLUBM(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine differential")
	}
	ds := datagen.LUBMDataset(1)
	assertAgreement(t, ds, diffEngines(t, ds, true))
}

func TestDifferentialYAGO(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine differential")
	}
	ds := datagen.YAGODataset(600)
	assertAgreement(t, ds, diffEngines(t, ds, true))
}

func TestDifferentialBTC(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine differential")
	}
	ds := datagen.BTCDataset(600)
	assertAgreement(t, ds, diffEngines(t, ds, true))
}

func TestDifferentialBSBM(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine differential")
	}
	ds := datagen.BSBMDataset(120)
	assertAgreement(t, ds, diffEngines(t, ds, false))
}

// TestDifferentialParallelWorkers re-runs the LUBM workload with parallel
// matching: worker count must never change a solution count.
func TestDifferentialParallelWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine differential")
	}
	ds := datagen.LUBMDataset(1)
	seq := TurboPlusPlus(ds.Triples)
	parOpts := core.Optimized()
	parOpts.Workers = 4
	par := NewTurbo("TurboHOM++(4)", ds.Triples, transform.TypeAware, parOpts)
	for _, q := range ds.Queries {
		a, err := seq.Count(q.Text)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Count(q.Text)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: sequential %d vs parallel %d", q.ID, a, b)
		}
	}
}

// TestDifferentialOptimizationCombos checks that every combination of the
// four optimizations preserves LUBM solution counts (the optimizations must
// be pure performance changes).
func TestDifferentialOptimizationCombos(t *testing.T) {
	if testing.Short() {
		t.Skip("16-combo sweep")
	}
	ds := datagen.LUBMDataset(1)
	data := transform.Build(ds.Triples, transform.TypeAware)
	ref := TurboPlusPlus(ds.Triples)

	// Spot-check the heavy queries with every optimization mask; the full
	// workload with the default masks is covered elsewhere.
	heavy := []string{"Q2", "Q8", "Q9", "Q12"}
	for mask := 0; mask < 16; mask++ {
		opts := core.Opts{
			Intersect:  mask&1 != 0,
			NoNLF:      mask&2 != 0,
			NoDegree:   mask&4 != 0,
			ReuseOrder: mask&8 != 0,
		}
		e := engine.New(data, opts)
		for _, id := range heavy {
			q := datagen.LUBMQuery(id)
			want, err := ref.Count(q.Text)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Count(q.Text)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("mask %04b %s: %d, want %d", mask, id, got, want)
			}
		}
	}
}

// TestQueriesParse ensures every workload query parses (guarding the query
// text against typos that only a specific engine would notice).
func TestQueriesParse(t *testing.T) {
	all := [][]datagen.Query{
		datagen.LUBMQueries(), datagen.BSBMQueries(),
		datagen.YAGOQueries(), datagen.BTCQueries(),
	}
	tiny := datagen.LUBMDataset(1)
	e := TurboPlusPlus(tiny.Triples)
	for _, qs := range all {
		for _, q := range qs {
			if _, err := e.Count(q.Text); err != nil && !strings.Contains(err.Error(), "disconnected") {
				t.Errorf("%s: %v", q.ID, err)
			}
		}
	}
}
