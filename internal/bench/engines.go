package bench

import (
	"repro/internal/baseline/bitmat"
	"repro/internal/baseline/rdf3x"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/transform"
)

// QueryEngine is the uniform surface the benchmark runners drive: execute a
// SPARQL query, return its solution count. Counting (rather than
// materializing) matches the paper's protocol of excluding dictionary
// lookups from measured time.
type QueryEngine interface {
	Name() string
	Count(query string) (int, error)
}

// turboEngine adapts engine.Engine.
type turboEngine struct {
	name string
	e    *engine.Engine
}

func (t *turboEngine) Name() string { return t.name }

func (t *turboEngine) Count(q string) (int, error) { return t.e.Count(q) }

// NewTurbo builds a TurboHOM++-family engine: triples transformed under
// mode, matched with opts.
func NewTurbo(name string, triples []rdf.Triple, mode transform.Mode, opts core.Opts) QueryEngine {
	data := transform.Build(triples, mode)
	return &turboEngine{name: name, e: engine.New(data, opts)}
}

// TurboPlusPlus is the paper's headline configuration: type-aware
// transformation with the full optimization suite.
func TurboPlusPlus(triples []rdf.Triple) QueryEngine {
	return NewTurbo("TurboHOM++", triples, transform.TypeAware, core.Optimized())
}

// TurboDirect is TurboHOM: direct transformation, no optimizations — the
// configuration of the paper's Figure 6.
func TurboDirect(triples []rdf.Triple) QueryEngine {
	return NewTurbo("TurboHOM", triples, transform.Direct, core.Baseline())
}

// rdf3xEngine adapts the RDF-3X-style store.
type rdf3xEngine struct{ s *rdf3x.Store }

func (r *rdf3xEngine) Name() string { return "RDF-3X" }

func (r *rdf3xEngine) Count(q string) (int, error) { return r.s.Count(q) }

// NewRDF3X builds the six-permutation merge-join baseline.
func NewRDF3X(triples []rdf.Triple) QueryEngine {
	return &rdf3xEngine{s: rdf3x.Load(triples)}
}

// bitmatEngine adapts the bitmap-index store (the System-X stand-in).
type bitmatEngine struct{ s *bitmat.Store }

func (b *bitmatEngine) Name() string { return "System-X" }

func (b *bitmatEngine) Count(q string) (int, error) { return b.s.Count(q) }

// NewBitMat builds the bitmap-index baseline.
func NewBitMat(triples []rdf.Triple) QueryEngine {
	return &bitmatEngine{s: bitmat.Load(triples)}
}

// countCell runs the query on e and renders the paper's table conventions:
// the elapsed time in milliseconds, "X" when the engine's solution count
// disagrees with want (the paper's wrong-answer marker), and "n/a" when the
// engine cannot run the query (RDF-3X on OPTIONAL/FILTER, like the paper's
// Table 6 exclusions).
func countCell(e QueryEngine, query string, want int) string {
	n, err := e.Count(query)
	if err != nil {
		return "n/a"
	}
	d := Measure(func() {
		if _, err := e.Count(query); err != nil {
			panic(err)
		}
	})
	if n != want {
		return "X"
	}
	return Fmt(d)
}
