package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/transform"
)

// Fig6 compares the unoptimized, direct-transformation TurboHOM against the
// two baseline engines over the LUBM workload — the paper's Figure 6, the
// motivating experiment: graph exploration already wins the selective
// queries but loses some exploration-heavy ones before the paper's
// improvements are applied.
func Fig6(scale int) *Table {
	ds := datagen.LUBMDataset(scale)
	engines := []QueryEngine{
		TurboDirect(ds.Triples),
		NewRDF3X(ds.Triples),
		NewBitMat(ds.Triples),
	}
	return engineTimes(
		fmt.Sprintf("Figure 6: TurboHOM (direct transformation) vs RDF engines (%s) [ms]", lubmScaleName(scale)),
		engines, ds.Queries)
}

// optimizationVariants are the four toggles of Figure 15, each applied
// alone on top of the unoptimized type-aware configuration.
var optimizationVariants = []struct {
	Name string
	Opts core.Opts
}{
	{"+INT", core.Opts{Intersect: true}},
	{"-NLF", core.Opts{NoNLF: true}},
	{"-DEG", core.Opts{NoDegree: true}},
	{"+REUSE", core.Opts{ReuseOrder: true}},
}

// Fig15 measures how much each optimization alone shaves off the
// unoptimized elapsed time of the two exploration-heavy LUBM queries — the
// paper's Figure 15 ("reduced elapsed time of each optimization", Q2 and
// Q9).
func Fig15(scale int) *Table {
	ds := datagen.LUBMDataset(scale)
	data := transform.Build(ds.Triples, transform.TypeAware)

	queries := []datagen.Query{datagen.LUBMQuery("Q2"), datagen.LUBMQuery("Q9")}
	t := &Table{
		Title:  fmt.Sprintf("Figure 15: reduced elapsed time per optimization (%s) [ms]", lubmScaleName(scale)),
		Header: []string{"variant", "Q2 reduced", "Q9 reduced"},
	}

	base := engine.New(data, core.Baseline())
	baseline := make([]time.Duration, len(queries))
	for i, q := range queries {
		baseline[i] = Measure(func() { mustCount(base, q.Text) })
	}
	t.AddRow("baseline (ms)", Fmt(baseline[0]), Fmt(baseline[1]))

	for _, v := range optimizationVariants {
		e := engine.New(data, v.Opts)
		row := []string{v.Name}
		for i, q := range queries {
			d := Measure(func() { mustCount(e, q.Text) })
			row = append(row, Fmt(baseline[i]-d))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig16 measures the parallel speed-up of Q2 and Q9 with growing worker
// counts — the paper's Figure 16. The worker counts are host-adjusted;
// speed-up is reported relative to one worker.
func Fig16(scale int, workers []int) *Table {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	ds := datagen.LUBMDataset(scale)
	data := transform.Build(ds.Triples, transform.TypeAware)
	queries := []datagen.Query{datagen.LUBMQuery("Q2"), datagen.LUBMQuery("Q9")}

	t := &Table{
		Title:  fmt.Sprintf("Figure 16: parallel speed-up of Q2 and Q9 (%s)", lubmScaleName(scale)),
		Header: []string{"workers", "Q2 ms", "Q2 speed-up", "Q9 ms", "Q9 speed-up"},
	}
	var base [2]time.Duration
	for _, w := range workers {
		opts := core.Optimized()
		opts.Workers = w
		e := engine.New(data, opts)
		var ts [2]time.Duration
		for i, q := range queries {
			ts[i] = Measure(func() { mustCount(e, q.Text) })
		}
		if w == workers[0] {
			base = ts
		}
		t.AddRow(fmt.Sprint(w),
			Fmt(ts[0]), fmt.Sprintf("%.2f", float64(base[0])/float64(ts[0])),
			Fmt(ts[1]), fmt.Sprintf("%.2f", float64(base[1])/float64(ts[1])))
	}
	return t
}
