package bench

// Randomized differential fuzzing: generate random SPARQL BGPs over the
// LUBM vocabulary and require all engines to agree on the solution count.
// Unlike the fixed workload tests, this explores query shapes the paper
// never wrote down — stars, paths, triangles, constant injections — and has
// historically been the test that finds planner corner cases.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rdf"
	"repro/internal/transform"
)

// Entity kinds of the LUBM schema, used to generate queries that compose:
// chaining random predicates without domain/range awareness yields almost
// only empty results.
const (
	kStudent = iota
	kFaculty
	kPerson // supertype position: student or faculty
	kCourse
	kDept
	kUniv
	kOrg // dept, univ, or research group
	kPub
	numKinds
)

// fuzzPredicates carry the schema: domain kind -> range kind.
var fuzzPredicates = []struct {
	name   string
	domain int
	rng    int
}{
	{"advisor", kStudent, kFaculty},
	{"takesCourse", kStudent, kCourse},
	{"teacherOf", kFaculty, kCourse},
	{"memberOf", kPerson, kDept},
	{"worksFor", kFaculty, kDept},
	{"subOrganizationOf", kOrg, kOrg},
	{"undergraduateDegreeFrom", kPerson, kUniv},
	{"headOf", kFaculty, kDept},
	{"publicationAuthor", kPub, kPerson},
	{"hasAlumnus", kUniv, kPerson},
	{"degreeFrom", kPerson, kUniv},
}

// kindCompatible reports whether a variable of kind a can stand where kind
// b is expected (kPerson absorbs students and faculty; kOrg absorbs
// departments and universities).
func kindCompatible(a, b int) bool {
	if a == b {
		return true
	}
	if b == kPerson && (a == kStudent || a == kFaculty) {
		return true
	}
	if a == kPerson && (b == kStudent || b == kFaculty) {
		return true
	}
	if b == kOrg && (a == kDept || a == kUniv) {
		return true
	}
	if a == kOrg && (b == kDept || b == kUniv) {
		return true
	}
	return false
}

// randomBGP builds a connected, schema-respecting BGP with n patterns.
// Variables carry kinds; each new pattern attaches to an existing variable
// through a predicate whose domain or range matches its kind. Objects are
// sometimes pinned to constants of the right kind.
func randomBGP(rng *rand.Rand, n int, constants map[int][]rdf.Term) string {
	type qvar struct {
		name string
		kind int
	}
	var b strings.Builder
	b.WriteString("PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\nSELECT * WHERE {\n")

	p0 := fuzzPredicates[rng.Intn(len(fuzzPredicates))]
	vars := []qvar{{"?v0", p0.domain}}
	next := 1
	newVar := func(kind int) qvar {
		v := qvar{fmt.Sprintf("?v%d", next), kind}
		next++
		vars = append(vars, v)
		return v
	}

	for i := 0; i < n; i++ {
		// Pick an anchor variable and a predicate it can join.
		var anchor qvar
		var pred struct {
			name   string
			domain int
			rng    int
		}
		var anchorIsSubject bool
		found := false
		for attempt := 0; attempt < 20 && !found; attempt++ {
			anchor = vars[rng.Intn(len(vars))]
			pred = fuzzPredicates[rng.Intn(len(fuzzPredicates))]
			if kindCompatible(anchor.kind, pred.domain) {
				anchorIsSubject = true
				found = true
			} else if kindCompatible(anchor.kind, pred.rng) {
				anchorIsSubject = false
				found = true
			}
		}
		if !found {
			continue
		}
		otherKind := pred.rng
		if !anchorIsSubject {
			otherKind = pred.domain
		}
		// Other endpoint: new variable (60%), existing compatible variable
		// (20%), or constant of the right kind (20%).
		var other string
		switch r := rng.Intn(10); {
		case r < 2:
			var comp []qvar
			for _, v := range vars {
				if kindCompatible(v.kind, otherKind) {
					comp = append(comp, v)
				}
			}
			if len(comp) > 0 {
				other = comp[rng.Intn(len(comp))].name
				break
			}
			fallthrough
		case r < 4:
			if cs := constants[otherKind]; len(cs) > 0 {
				other = string(cs[rng.Intn(len(cs))])
				break
			}
			fallthrough
		default:
			other = newVar(otherKind).name
		}
		if anchorIsSubject {
			fmt.Fprintf(&b, "  %s ub:%s %s .\n", anchor.name, pred.name, other)
		} else {
			fmt.Fprintf(&b, "  %s ub:%s %s .\n", other, pred.name, anchor.name)
		}
	}
	b.WriteString("}")
	return b.String()
}

// sampleEntities buckets data IRIs by schema kind for constant injection.
func sampleEntities(triples []rdf.Triple) map[int][]rdf.Term {
	out := map[int][]rdf.Term{}
	add := func(kind int, t rdf.Term) {
		if len(out[kind]) < 8 {
			out[kind] = append(out[kind], t)
		}
	}
	for _, t := range triples {
		s := string(t.S)
		switch {
		case strings.Contains(s, "Student"):
			add(kStudent, t.S)
		case strings.Contains(s, "Professor") || strings.Contains(s, "Lecturer"):
			if !strings.Contains(s, "Publication") {
				add(kFaculty, t.S)
			}
		case strings.Contains(s, "Course"):
			add(kCourse, t.S)
		case strings.Contains(s, "/ResearchGroup"):
			add(kOrg, t.S)
		case strings.Contains(s, "Department") && !strings.Contains(s, "edu/"):
			add(kDept, t.S)
		case strings.Contains(s, "www.University"):
			add(kUniv, t.S)
		}
	}
	return out
}

func TestFuzzRandomBGPs(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing sweep")
	}
	ds := datagen.LUBMDataset(1)
	engines := []QueryEngine{
		TurboPlusPlus(ds.Triples),
		NewTurbo("TurboHOM-direct", ds.Triples, transform.Direct, core.Baseline()),
		NewRDF3X(ds.Triples),
		NewBitMat(ds.Triples),
	}
	rng := rand.New(rand.NewSource(2026))
	constants := sampleEntities(ds.Triples)

	const trials = 400
	nonEmpty, large := 0, 0
	for trial := 0; trial < trials; trial++ {
		q := randomBGP(rng, 2+rng.Intn(3), constants)
		// Cap runaway results: a random query can explode; skip queries
		// whose reference count is huge.
		ref, err := engines[0].Count(q)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, q)
		}
		if ref > 2_000_000 {
			continue
		}
		if ref > 0 {
			nonEmpty++
		}
		if ref > 100 {
			large++
		}
		for _, e := range engines[1:] {
			n, err := e.Count(q)
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, e.Name(), err, q)
			}
			if n != ref {
				t.Fatalf("trial %d: %s says %d, %s says %d\n%s",
					trial, engines[0].Name(), ref, e.Name(), n, q)
			}
		}
	}
	// The sweep must actually exercise solutions, not just empty results.
	if nonEmpty < trials/5 || large < 5 {
		t.Fatalf("fuzz coverage too thin: %d/%d non-empty, %d large", nonEmpty, trials, large)
	}
}

// TestFuzzWithTypeConstraints mixes rdf:type patterns in, exercising the
// label-folding path against engines that see type triples as data.
func TestFuzzWithTypeConstraints(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing sweep")
	}
	classes := []string{
		"Student", "GraduateStudent", "UndergraduateStudent", "Professor",
		"Faculty", "Person", "Department", "University", "Course",
		"ResearchGroup", "Chair",
	}
	ds := datagen.LUBMDataset(1)
	engines := []QueryEngine{
		TurboPlusPlus(ds.Triples),
		NewRDF3X(ds.Triples),
		NewBitMat(ds.Triples),
	}
	rng := rand.New(rand.NewSource(777))
	constants := sampleEntities(ds.Triples)

	for trial := 0; trial < 200; trial++ {
		base := randomBGP(rng, 1+rng.Intn(3), constants)
		// Attach a type constraint to a random variable mentioned in the
		// query.
		v := fmt.Sprintf("?v%d", rng.Intn(2))
		if !strings.Contains(base, v) {
			v = "?v0"
		}
		typed := strings.Replace(base, "}",
			fmt.Sprintf("  %s <%s> ub:%s .\n}", v, rdf.RDFType, classes[rng.Intn(len(classes))]), 1)

		ref, err := engines[0].Count(typed)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, typed)
		}
		if ref > 2_000_000 {
			continue
		}
		for _, e := range engines[1:] {
			n, err := e.Count(typed)
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, e.Name(), err, typed)
			}
			if n != ref {
				t.Fatalf("trial %d: turbo says %d, %s says %d\n%s",
					trial, ref, e.Name(), n, typed)
			}
		}
	}
}
