package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/transform"
)

// Scales bundles the dataset sizes of one benchmark campaign. The defaults
// are sized for a laptop; the paper's absolute scales (LUBM80-8000,
// billion-triple crawls) need only larger numbers here, not different code.
type Scales struct {
	LUBM []int // university counts, ascending
	BSBM int   // products
	YAGO int   // people
	BTC  int   // people
}

// DefaultScales returns the campaign used by the committed EXPERIMENTS.md.
func DefaultScales() Scales {
	return Scales{LUBM: []int{1, 4, 16}, BSBM: 400, YAGO: 2000, BTC: 2000}
}

// lubmScaleName renders "LUBM4".
func lubmScaleName(scale int) string { return fmt.Sprintf("LUBM%d", scale) }

// Table1 reports |V| and |E| of every dataset under the direct and the
// type-aware transformation — the paper's Table 1, which quantifies how
// many edges the type-aware transformation removes.
func Table1(s Scales) *Table {
	t := &Table{
		Title:  "Table 1: graph size statistics (direct vs type-aware transformation)",
		Header: []string{"dataset", "|V| direct", "|E| direct", "|V| type-aware", "|E| type-aware"},
	}
	add := func(name string, triples []rdf.Triple) {
		d := transform.Build(triples, transform.Direct)
		ta := transform.Build(triples, transform.TypeAware)
		t.AddRow(name,
			fmt.Sprint(d.G.NumVertices()), fmt.Sprint(d.G.NumEdges()),
			fmt.Sprint(ta.G.NumVertices()), fmt.Sprint(ta.G.NumEdges()))
	}
	for _, scale := range s.LUBM {
		add(lubmScaleName(scale), datagen.LUBMDataset(scale).Triples)
	}
	add("BTC", datagen.BTCDataset(s.BTC).Triples)
	add("BSBM", datagen.BSBMDataset(s.BSBM).Triples)
	add("YAGO", datagen.YAGODataset(s.YAGO).Triples)
	return t
}

// Table2 reports the solution counts of the 14 LUBM queries at every scale
// — the paper's Table 2.
func Table2(scales []int) *Table {
	t := &Table{
		Title:  "Table 2: number of solutions in LUBM queries",
		Header: []string{"dataset"},
	}
	queries := datagen.LUBMQueries()
	for _, q := range queries {
		t.Header = append(t.Header, q.ID)
	}
	for _, scale := range scales {
		ds := datagen.LUBMDataset(scale)
		e := TurboPlusPlus(ds.Triples)
		row := []string{lubmScaleName(scale)}
		for _, q := range queries {
			n, err := e.Count(q.Text)
			if err != nil {
				row = append(row, "err")
				continue
			}
			row = append(row, fmt.Sprint(n))
		}
		t.AddRow(row...)
	}
	return t
}

// Table3 reports elapsed times of the LUBM queries for every engine at one
// scale — one sub-table of the paper's Table 3 (run it per scale for
// 3a/3b/3c). TurboHOM++'s solution counts are the reference; a deviating
// engine gets the paper's "X" marker instead of a time.
func Table3(scale int) *Table {
	ds := datagen.LUBMDataset(scale)
	turbo := TurboPlusPlus(ds.Triples)
	engines := []QueryEngine{turbo, NewRDF3X(ds.Triples), NewBitMat(ds.Triples)}
	return engineTimes(
		fmt.Sprintf("Table 3 (%s): elapsed time [ms]", lubmScaleName(scale)),
		engines, ds.Queries)
}

// Table4 is the YAGO workload: solution counts and per-engine times — the
// paper's Table 4.
func Table4(people int) *Table {
	ds := datagen.YAGODataset(people)
	turbo := TurboPlusPlus(ds.Triples)
	engines := []QueryEngine{turbo, NewRDF3X(ds.Triples), NewBitMat(ds.Triples)}
	return engineTimesWithCounts("Table 4: YAGO — solutions and elapsed time [ms]", engines, ds.Queries)
}

// Table5 is the BTC workload — the paper's Table 5.
func Table5(people int) *Table {
	ds := datagen.BTCDataset(people)
	turbo := TurboPlusPlus(ds.Triples)
	engines := []QueryEngine{turbo, NewRDF3X(ds.Triples), NewBitMat(ds.Triples)}
	return engineTimesWithCounts("Table 5: BTC — solutions and elapsed time [ms]", engines, ds.Queries)
}

// Table6 is the BSBM explore mix — the paper's Table 6. RDF-3X is excluded
// exactly as in the paper: it does not support OPTIONAL and FILTER.
func Table6(products int) *Table {
	ds := datagen.BSBMDataset(products)
	turbo := TurboPlusPlus(ds.Triples)
	engines := []QueryEngine{turbo, NewBitMat(ds.Triples)}
	return engineTimesWithCounts("Table 6: BSBM — solutions and elapsed time [ms]", engines, ds.Queries)
}

// Table7 contrasts the direct and the type-aware transformation with all
// optimizations off — the paper's Table 7 ("effect of type-aware
// transformation"), including the per-query performance gain row.
func Table7(scale int) *Table {
	ds := datagen.LUBMDataset(scale)
	direct := engine.New(transform.Build(ds.Triples, transform.Direct), core.Baseline())
	typed := engine.New(transform.Build(ds.Triples, transform.TypeAware), core.Baseline())

	t := &Table{
		Title:  fmt.Sprintf("Table 7: effect of type-aware transformation (%s, no optimizations)", lubmScaleName(scale)),
		Header: []string{"metric"},
	}
	for _, q := range ds.Queries {
		t.Header = append(t.Header, q.ID)
	}
	dRow := []string{"direct (ms)"}
	taRow := []string{"type-aware (ms)"}
	gainRow := []string{"gain"}
	for _, q := range ds.Queries {
		dT := Measure(func() { mustCount(direct, q.Text) })
		taT := Measure(func() { mustCount(typed, q.Text) })
		dRow = append(dRow, Fmt(dT))
		taRow = append(taRow, Fmt(taT))
		gain := float64(dT) / float64(taT)
		gainRow = append(gainRow, fmt.Sprintf("%.2f", gain))
	}
	t.AddRow(dRow...)
	t.AddRow(taRow...)
	t.AddRow(gainRow...)
	return t
}

func mustCount(e *engine.Engine, q string) {
	if _, err := e.Count(q); err != nil {
		panic(err)
	}
}

// engineTimes renders queries × engines as elapsed times, using the first
// engine's counts as ground truth.
func engineTimes(title string, engines []QueryEngine, queries []datagen.Query) *Table {
	t := &Table{Title: title, Header: []string{"engine"}}
	for _, q := range queries {
		t.Header = append(t.Header, q.ID)
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		n, err := engines[0].Count(q.Text)
		if err != nil {
			panic(fmt.Sprintf("%s on %s: %v", engines[0].Name(), q.ID, err))
		}
		want[i] = n
	}
	for _, e := range engines {
		row := []string{e.Name()}
		for i, q := range queries {
			row = append(row, countCell(e, q.Text, want[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// engineTimesWithCounts is engineTimes plus a leading "# of sol." row, the
// layout of the paper's Tables 4-6.
func engineTimesWithCounts(title string, engines []QueryEngine, queries []datagen.Query) *Table {
	t := engineTimes(title, engines, queries)
	counts := []string{"# of sol."}
	for _, q := range queries {
		n, err := engines[0].Count(q.Text)
		if err != nil {
			counts = append(counts, "err")
			continue
		}
		counts = append(counts, fmt.Sprint(n))
	}
	t.Rows = append([][]string{counts}, t.Rows...)
	return t
}
