package cache

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
)

func fpOf(labels, preds []uint32) *Footprint {
	fp := NewFootprint()
	for _, l := range labels {
		fp.AddLabel(l)
	}
	for _, p := range preds {
		fp.AddPred(p)
	}
	return fp
}

func TestFootprintIntersects(t *testing.T) {
	empty := NewFootprint()
	universal := NewFootprint()
	universal.WidenAll()
	allLabels := NewFootprint()
	allLabels.WidenLabels()

	cases := []struct {
		name string
		a, b *Footprint
		want bool
	}{
		{"empty-empty", empty, empty, false},
		{"empty-universal", empty, universal, false},
		{"universal-universal", universal, universal, true},
		{"universal-label", universal, fpOf([]uint32{3}, nil), true},
		{"universal-pred", universal, fpOf(nil, []uint32{9}), true},
		{"disjoint-labels", fpOf([]uint32{1, 2}, nil), fpOf([]uint32{3}, nil), false},
		{"shared-label", fpOf([]uint32{1, 2}, nil), fpOf([]uint32{2}, nil), true},
		{"label-vs-pred-same-id", fpOf([]uint32{7}, nil), fpOf(nil, []uint32{7}), false},
		{"shared-pred", fpOf(nil, []uint32{4}), fpOf([]uint32{4}, []uint32{4}), true},
		{"alllabels-vs-preds-only", allLabels, fpOf(nil, []uint32{1}), false},
		{"alllabels-vs-label", allLabels, fpOf([]uint32{1}, nil), true},
		{"nil-anything", nil, universal, false},
	}
	for _, tc := range cases {
		if got := tc.a.Intersects(tc.b); got != tc.want {
			t.Errorf("%s: Intersects = %v, want %v", tc.name, got, tc.want)
		}
		if got := tc.b.Intersects(tc.a); got != tc.want {
			t.Errorf("%s (swapped): Intersects = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFootprintMerge(t *testing.T) {
	a := fpOf([]uint32{1}, nil)
	a.Merge(fpOf([]uint32{2}, []uint32{3}))
	if !a.Intersects(fpOf([]uint32{2}, nil)) || !a.Intersects(fpOf(nil, []uint32{3})) {
		t.Fatalf("merge lost ids: %s", a)
	}
	u := NewFootprint()
	u.WidenAll()
	a.Merge(u)
	if !a.Universal() {
		t.Fatalf("merge with universal should widen, got %s", a)
	}
}

func row(terms ...string) []rdf.Term {
	r := make([]rdf.Term, len(terms))
	for i, s := range terms {
		r[i] = rdf.Term(s)
	}
	return r
}

func entryOf(epoch uint64, fp *Footprint, rows int) *Entry {
	rs := make([][]rdf.Term, rows)
	for i := range rs {
		rs[i] = row(fmt.Sprintf("<http://example.org/x%d>", i))
	}
	return NewEntry([]string{"x"}, rs, fp, epoch)
}

func TestCacheHitMissAndLRUEviction(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("hit on empty cache")
	}
	ea := entryOf(1, fpOf(nil, []uint32{1}), 4)
	if !c.Put("a", ea) {
		t.Fatal("Put rejected a small entry")
	}
	got, ok := c.Get("a", 1)
	if !ok || got != ea {
		t.Fatal("expected hit for key a")
	}

	// A budget of ~3 entries: inserting a fourth evicts the LRU one.
	per := ea.Bytes()
	small := New(3*per + per/2)
	for _, k := range []string{"a", "b", "c"} {
		small.Put(k, entryOf(1, fpOf(nil, []uint32{1}), 4))
	}
	small.Get("a", 1) // touch a: b becomes LRU
	small.Put("d", entryOf(1, fpOf(nil, []uint32{1}), 4))
	if _, ok := small.Get("b", 1); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := small.Get(k, 1); !ok {
			t.Fatalf("entry %s should have survived", k)
		}
	}
	st := small.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("used %d exceeds budget %d", st.Bytes, st.Budget)
	}
}

func TestCacheAdmissionCaps(t *testing.T) {
	c := New(1 << 20)
	maxBytes, maxRows := c.Limits()
	if maxBytes <= 0 || maxRows <= 0 {
		t.Fatalf("Limits = %d, %d", maxBytes, maxRows)
	}
	big := entryOf(1, NewFootprint(), maxRows+1)
	if c.Put("big", big) {
		t.Fatal("entry above the row cap was admitted")
	}
	// One giant row blows the byte cap.
	huge := NewEntry([]string{"x"}, [][]rdf.Term{{rdf.Term(make([]byte, maxBytes))}}, NewFootprint(), 1)
	if c.Put("huge", huge) {
		t.Fatal("entry above the byte cap was admitted")
	}
}

func TestCarryForwardAndInvalidation(t *testing.T) {
	c := New(1 << 20)
	// Entry A reads predicate 1; entry B reads predicate 2.
	c.Put("A", entryOf(1, fpOf(nil, []uint32{1}), 2))
	c.Put("B", entryOf(1, fpOf(nil, []uint32{2}), 2))

	// A batch touching predicate 1 moves the store to epoch 2.
	c.Advance(2, fpOf(nil, []uint32{1}))

	if _, ok := c.Get("A", 2); ok {
		t.Fatal("A intersects the delta and must miss")
	}
	eb, ok := c.Get("B", 2)
	if !ok {
		t.Fatal("B is disjoint from the delta and must carry forward")
	}
	if eb.Epoch() != 2 {
		t.Fatalf("B should be re-tagged to epoch 2, got %d", eb.Epoch())
	}
	st := c.Stats()
	if st.CarryForwards != 1 || st.Invalidated != 1 {
		t.Fatalf("carry=%d invalidated=%d, want 1/1", st.CarryForwards, st.Invalidated)
	}

	// A universal delta (schema rebuild) kills everything that reads.
	c.Advance(3, func() *Footprint { f := NewFootprint(); f.WidenAll(); return f }())
	if _, ok := c.Get("B", 3); ok {
		t.Fatal("B must be invalidated by a universal delta")
	}

	// An empty delta (compaction) carries everything forward.
	c.Put("C", entryOf(3, fpOf([]uint32{5}, nil), 2))
	c.Advance(4, NewFootprint())
	if e, ok := c.Get("C", 4); !ok || e.Epoch() != 4 {
		t.Fatal("C must carry forward across an empty delta")
	}
}

func TestStaleBeyondRingDropped(t *testing.T) {
	c := New(1 << 20)
	c.Put("old", entryOf(1, fpOf(nil, []uint32{999}), 1))
	// Push more than deltaRing disjoint batches so the ring forgets the
	// entry's neighborhood.
	for e := uint64(2); e < 2+deltaRing+8; e++ {
		c.Advance(e, fpOf(nil, []uint32{1}))
	}
	if _, ok := c.Get("old", 2+deltaRing+7); ok {
		t.Fatal("entry older than the delta ring must be dropped, not served")
	}
	if st := c.Stats(); st.Invalidated != 1 {
		t.Fatalf("invalidated = %d, want 1", st.Invalidated)
	}
}

func TestLookupAheadOfAdvance(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", entryOf(1, fpOf(nil, []uint32{7}), 1))
	// The store published epoch 2 but Advance has not landed: miss, but the
	// entry must survive to be carried forward once the record arrives.
	if _, ok := c.Get("k", 2); ok {
		t.Fatal("cannot serve epoch 2 before its delta is known")
	}
	c.Advance(2, fpOf(nil, []uint32{8}))
	if e, ok := c.Get("k", 2); !ok || e.Epoch() != 2 {
		t.Fatal("entry should carry forward after the late Advance")
	}
}

func TestSingleflight(t *testing.T) {
	c := New(1 << 20)
	_, fl, leader := c.GetOrStart("q", 1)
	if !leader || fl == nil {
		t.Fatal("first caller must lead")
	}
	var wg sync.WaitGroup
	followers := 8
	got := make([]*Entry, followers)
	for i := 0; i < followers; i++ {
		e2, fl2, lead2 := c.GetOrStart("q", 1)
		if e2 != nil || lead2 {
			t.Fatal("concurrent caller must follow, not lead or hit")
		}
		wg.Add(1)
		go func(i int, fl2 *Flight) {
			defer wg.Done()
			got[i] = fl2.Wait(context.Background())
		}(i, fl2)
	}
	e := entryOf(1, NewFootprint(), 1)
	c.Finish("q", fl, e)
	wg.Wait()
	for i, g := range got {
		if g != e {
			t.Fatalf("follower %d got %v, want the leader's entry", i, g)
		}
	}
	// The flight is resolved: the next caller hits the admitted entry.
	if e2, _, _ := c.GetOrStart("q", 1); e2 != e {
		t.Fatal("entry should be served after Finish")
	}
}

func TestSingleflightFailedLeader(t *testing.T) {
	c := New(1 << 20)
	_, fl, _ := c.GetOrStart("q", 1)
	_, fl2, lead2 := c.GetOrStart("q", 1)
	if lead2 {
		t.Fatal("second caller must follow")
	}
	done := make(chan *Entry)
	go func() { done <- fl2.Wait(context.Background()) }()
	c.Finish("q", fl, nil) // leader failed: nothing admitted
	if got := <-done; got != nil {
		t.Fatal("follower behind a failed leader must get nil")
	}
	if _, ok := c.Get("q", 1); ok {
		t.Fatal("nothing should be cached after a failed flight")
	}
	// The key is free again: the next caller leads.
	if _, _, lead := c.GetOrStart("q", 1); !lead {
		t.Fatal("key must be leadable after a failed flight")
	}
}

func TestFlightWaitHonorsContext(t *testing.T) {
	c := New(1 << 20)
	_, fl, _ := c.GetOrStart("q", 1)
	_, fl2, _ := c.GetOrStart("q", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if got := fl2.Wait(ctx); got != nil {
		t.Fatal("Wait must return nil on context cancellation")
	}
	c.Finish("q", fl, nil)
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c != New(0) || New(-1) != nil {
		t.Fatal("non-positive budgets must build a nil cache")
	}
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("nil cache must miss")
	}
	if e, fl, leader := c.GetOrStart("k", 1); e != nil || fl != nil || leader {
		t.Fatal("nil cache must not start flights")
	}
	c.Advance(2, NewFootprint())
	c.Finish("k", nil, nil)
	if c.Put("k", entryOf(1, NewFootprint(), 1)) {
		t.Fatal("nil cache must not admit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatal("nil cache stats must be zero")
	}
}

func TestConcurrentCacheOps(t *testing.T) {
	c := New(1 << 18)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%10)
				if e, fl, leader := c.GetOrStart(key, uint64(i/20+1)); e == nil {
					if leader {
						c.Finish(key, fl, entryOf(uint64(i/20+1), fpOf(nil, []uint32{uint32(i % 3)}), 2))
					} else if fl != nil {
						fl.Wait(context.Background())
					}
				}
				if g == 0 && i%20 == 19 {
					c.Advance(uint64(i/20+2), fpOf(nil, []uint32{uint32(i % 3)}))
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > st.Budget {
		t.Fatalf("used %d exceeds budget %d", st.Bytes, st.Budget)
	}
}
