// Package cache implements the snapshot-versioned result cache: materialized
// row sets keyed by (canonical query text, options fingerprint), tagged with
// the snapshot epoch they were computed against, held under a strict byte
// budget with LRU eviction, and invalidated by footprint intersection with
// the store's committed write batches.
//
// The footprint machinery is the cache's consistency argument (in the spirit
// of the partition-pruning synopsis of arXiv:1510.07749, applied to cache
// entries instead of shards). A query footprint over-approximates the
// dictionary IDs — vertex labels and edge labels/predicates — the search can
// read; a delta footprint records the IDs a committed batch touched. Both
// sides speak IDs because the store's dictionaries are append-only: an ID
// never changes meaning, so a footprint computed at epoch E stays valid at
// every later epoch. When the two are disjoint, the batch cannot have
// changed the query's result set, and a cached entry from the pre-batch
// epoch is re-tagged to the post-batch epoch (carry-forward) instead of
// evicted.
package cache

import (
	"fmt"
	"sort"
	"strings"
)

// Footprint is a set of vertex-label IDs and edge-label (predicate) IDs,
// each dimension independently widenable to "all". The zero value (and
// NewFootprint) is the empty footprint, which intersects nothing — the
// footprint of a no-op batch, and of a query reading no graph data.
type Footprint struct {
	allLabels bool
	allPreds  bool
	labels    map[uint32]struct{}
	preds     map[uint32]struct{}
}

// NewFootprint returns an empty footprint.
func NewFootprint() *Footprint { return &Footprint{} }

// AddLabel records one vertex-label ID.
func (f *Footprint) AddLabel(l uint32) {
	if f.allLabels {
		return
	}
	if f.labels == nil {
		f.labels = make(map[uint32]struct{})
	}
	f.labels[l] = struct{}{}
}

// AddPred records one edge-label (predicate) ID.
func (f *Footprint) AddPred(p uint32) {
	if f.allPreds {
		return
	}
	if f.preds == nil {
		f.preds = make(map[uint32]struct{})
	}
	f.preds[p] = struct{}{}
}

// WidenLabels widens the label dimension to every label, present and future.
func (f *Footprint) WidenLabels() {
	f.allLabels = true
	f.labels = nil
}

// WidenPreds widens the predicate dimension to every predicate, present and
// future.
func (f *Footprint) WidenPreds() {
	f.allPreds = true
	f.preds = nil
}

// WidenAll makes the footprint universal: it intersects every non-empty
// footprint. The universal footprint is the conservative answer whenever the
// reads (or writes) cannot be enumerated — a plan proven empty by an
// unknown term (a later insert interning that term can flip it non-empty),
// or a schema change rebuilding the label closure.
func (f *Footprint) WidenAll() {
	f.WidenLabels()
	f.WidenPreds()
}

// Empty reports whether the footprint covers nothing.
func (f *Footprint) Empty() bool {
	return f == nil || (!f.allLabels && !f.allPreds && len(f.labels) == 0 && len(f.preds) == 0)
}

// Universal reports whether both dimensions are widened.
func (f *Footprint) Universal() bool { return f != nil && f.allLabels && f.allPreds }

// Merge widens f to cover g as well.
func (f *Footprint) Merge(g *Footprint) {
	if g == nil {
		return
	}
	if g.allLabels {
		f.WidenLabels()
	} else {
		for l := range g.labels {
			f.AddLabel(l)
		}
	}
	if g.allPreds {
		f.WidenPreds()
	} else {
		for p := range g.preds {
			f.AddPred(p)
		}
	}
}

// Intersects reports whether the two footprints share any label or any
// predicate. An "all" dimension intersects every non-empty counterpart
// dimension (two "all" dimensions intersect each other); the empty footprint
// intersects nothing.
func (f *Footprint) Intersects(g *Footprint) bool {
	if f == nil || g == nil {
		return false
	}
	return dimIntersects(f.allLabels, f.labels, g.allLabels, g.labels) ||
		dimIntersects(f.allPreds, f.preds, g.allPreds, g.preds)
}

func dimIntersects(fAll bool, fSet map[uint32]struct{}, gAll bool, gSet map[uint32]struct{}) bool {
	switch {
	case fAll:
		return gAll || len(gSet) > 0
	case gAll:
		return len(fSet) > 0
	}
	small, big := fSet, gSet
	if len(big) < len(small) {
		small, big = big, small
	}
	for x := range small {
		if _, ok := big[x]; ok {
			return true
		}
	}
	return false
}

// String renders the footprint deterministically, for tests and debugging.
func (f *Footprint) String() string {
	if f.Empty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	writeDim := func(name string, all bool, set map[uint32]struct{}) {
		if !all && len(set) == 0 {
			return
		}
		if b.Len() > 1 {
			b.WriteByte(' ')
		}
		b.WriteString(name)
		if all {
			b.WriteString(":*")
			return
		}
		ids := make([]uint32, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		b.WriteByte(':')
		for i, id := range ids {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", id)
		}
	}
	writeDim("labels", f.allLabels, f.labels)
	writeDim("preds", f.allPreds, f.preds)
	b.WriteByte('}')
	return b.String()
}
