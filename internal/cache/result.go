package cache

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/rdf"
)

// Byte-accounting constants: the budget charges an entry for its retained
// term bytes plus fixed overheads for slice headers and bookkeeping, so the
// configured budget tracks real heap retention instead of just payload.
const (
	entryOverhead = 256
	rowOverhead   = 48
	termOverhead  = 16

	// maxEntryRows caps admission: a result set larger than this is served
	// streaming-only and never cached, so one huge scan cannot thrash the
	// whole cache.
	maxEntryRows = 1 << 16

	// deltaRing is how many committed batches of invalidation history the
	// cache keeps. An entry older than the ring's reach cannot prove itself
	// disjoint from everything that happened since, and is dropped as stale.
	deltaRing = 64
)

// RowBytes is the accounted size of one cached row.
func RowBytes(row []rdf.Term) int64 {
	n := int64(rowOverhead)
	for _, t := range row {
		n += int64(len(t)) + termOverhead
	}
	return n
}

// Entry is one materialized result set: the projection and every row, tagged
// with the snapshot epoch it is valid at and the query's footprint. Rows are
// shared with every replay — callers must treat them as immutable.
type Entry struct {
	Vars []string
	Rows [][]rdf.Term

	fp    *Footprint
	epoch uint64
	bytes int64
	key   string
}

// NewEntry builds a cache entry for a result set computed against snapshot
// epoch, reading at most the given footprint.
func NewEntry(vars []string, rows [][]rdf.Term, fp *Footprint, epoch uint64) *Entry {
	e := &Entry{Vars: vars, Rows: rows, fp: fp, epoch: epoch}
	e.bytes = entryOverhead
	for _, v := range vars {
		e.bytes += int64(len(v)) + termOverhead
	}
	for _, r := range rows {
		e.bytes += RowBytes(r)
	}
	return e
}

// Epoch returns the snapshot epoch the entry is currently valid at (it moves
// forward as carry-forward re-tags the entry).
func (e *Entry) Epoch() uint64 { return e.epoch }

// Bytes returns the entry's accounted size.
func (e *Entry) Bytes() int64 { return e.bytes }

// Flight is one in-progress computation of a cache entry. The leader that
// started it publishes the resulting entry (or nil, when the result was not
// admissible) through Finish; followers Wait for it instead of running the
// same search concurrently.
type Flight struct {
	done chan struct{}
	e    *Entry
}

// Wait blocks until the flight's leader finishes or ctx is cancelled. It
// returns the admitted entry, or nil when the leader produced nothing
// cacheable (the follower should then run the query itself, without
// re-entering the flight protocol — a second flight behind a failing leader
// would just serialize failures).
func (fl *Flight) Wait(ctx context.Context) *Entry {
	select {
	case <-fl.done:
		return fl.e
	case <-ctx.Done():
		return nil
	}
}

// Stats is a point-in-time snapshot of the cache's state and counters.
type Stats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	Budget        int64 `json:"budget"`
	Evictions     int64 `json:"evictions"`      // dropped for capacity (LRU)
	CarryForwards int64 `json:"carry_forwards"` // entries re-tagged across a disjoint batch
	Invalidated   int64 `json:"invalidated"`    // dropped by footprint intersection or staleness
}

// Cache is the snapshot-versioned result cache. A nil *Cache is a valid,
// always-missing cache (caching disabled). All methods are safe for
// concurrent use.
//
// Invalidation is lazy: Advance only records the committed batch's (epoch,
// delta footprint) in a bounded ring, and each lookup fast-forwards its
// entry through the recorded deltas — re-tagging it to the current epoch
// when every intervening batch is footprint-disjoint (carry-forward), and
// dropping it the moment one intersects. Writes therefore cost O(1)
// regardless of how many entries are cached.
type Cache struct {
	mu            sync.Mutex
	budget        int64
	maxEntryBytes int64

	used    int64
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	flights map[string]*Flight
	deltas  []deltaRec // committed batches, ascending contiguous epochs

	evictions     int64
	carryForwards int64
	invalidated   int64
}

type deltaRec struct {
	epoch uint64
	fp    *Footprint
}

// New builds a cache with the given byte budget. A non-positive budget
// returns nil — the disabled cache.
func New(budget int64) *Cache {
	if budget <= 0 {
		return nil
	}
	maxEntry := budget / 16
	if maxEntry < 1<<16 {
		maxEntry = 1 << 16
	}
	if maxEntry > budget {
		maxEntry = budget
	}
	return &Cache{
		budget:        budget,
		maxEntryBytes: maxEntry,
		entries:       make(map[string]*list.Element),
		order:         list.New(),
		flights:       make(map[string]*Flight),
	}
}

// Limits returns the admission caps: the maximum accounted bytes and rows of
// one entry. A producer that exceeds either mid-stream can stop collecting.
func (c *Cache) Limits() (maxBytes int64, maxRows int) {
	if c == nil {
		return 0, 0
	}
	return c.maxEntryBytes, maxEntryRows
}

// Advance records that the store committed a batch moving the snapshot to
// epoch, touching the given delta footprint. Epochs must arrive in
// increasing order (the store notifies under its writer lock).
func (c *Cache) Advance(epoch uint64, fp *Footprint) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.deltas); n > 0 && epoch <= c.deltas[n-1].epoch {
		return
	}
	if len(c.deltas) == deltaRing {
		copy(c.deltas, c.deltas[1:])
		c.deltas = c.deltas[:deltaRing-1]
	}
	c.deltas = append(c.deltas, deltaRec{epoch: epoch, fp: fp})
}

// Get looks up key for a request observing snapshot epoch cur. A hit means
// the entry's rows are exactly the query's result set at cur.
func (c *Cache) Get(key string, cur uint64) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookupLocked(key, cur)
}

// GetOrStart is Get plus singleflight admission: on a miss with no
// computation in progress the caller becomes the leader (leader == true) and
// MUST call Finish exactly once with the flight; on a miss behind an
// in-progress computation the returned flight is to be Waited on.
func (c *Cache) GetOrStart(key string, cur uint64) (e *Entry, fl *Flight, leader bool) {
	if c == nil {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.lookupLocked(key, cur); ok {
		return e, nil, false
	}
	if fl, ok := c.flights[key]; ok {
		return nil, fl, false
	}
	fl = &Flight{done: make(chan struct{})}
	c.flights[key] = fl
	return nil, fl, true
}

// Finish resolves a flight started by GetOrStart: e non-nil admits the entry
// (subject to the byte budget and admission caps) and hands it to every
// waiting follower; nil releases the followers to run on their own.
func (c *Cache) Finish(key string, fl *Flight, e *Entry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.flights[key] == fl {
		delete(c.flights, key)
	}
	if e != nil && c.admitLocked(key, e) {
		fl.e = e
	}
	c.mu.Unlock()
	close(fl.done)
}

// Put admits an entry outside the flight protocol (a follower that ran solo
// after its leader failed can still backfill the cache). It reports whether
// the entry was admitted.
func (c *Cache) Put(key string, e *Entry) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitLocked(key, e)
}

// Stats returns the cache's counters and occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       len(c.entries),
		Bytes:         c.used,
		Budget:        c.budget,
		Evictions:     c.evictions,
		CarryForwards: c.carryForwards,
		Invalidated:   c.invalidated,
	}
}

// lookupLocked finds key and fast-forwards it to cur through the recorded
// deltas. Every intervening batch disjoint from the entry's footprint
// re-tags the entry (carry-forward); an intersecting batch — or history
// beyond the ring's reach — drops it.
func (c *Cache) lookupLocked(key string, cur uint64) (*Entry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*Entry)
	if e.epoch >= cur {
		// The entry was computed at (or has been carried to) cur or later; a
		// request that read its epoch just before a concurrent admission may
		// see a newer entry, which is equivalent to arriving a moment later.
		c.order.MoveToFront(el)
		return e, true
	}
	reached := e.epoch
	for _, rec := range c.deltas {
		if rec.epoch <= e.epoch {
			continue
		}
		if rec.epoch != reached+1 {
			// The ring dropped batches between the entry's epoch and this
			// record: the entry cannot prove itself current anymore.
			c.removeLocked(el)
			c.invalidated++
			return nil, false
		}
		if rec.fp.Intersects(e.fp) {
			c.removeLocked(el)
			c.invalidated++
			return nil, false
		}
		reached = rec.epoch
	}
	if reached > e.epoch {
		e.epoch = reached
		c.carryForwards++
	}
	if reached < cur {
		// Batches up to cur exist that Advance has not delivered yet (the
		// notification runs under the store's writer lock, a hair behind the
		// snapshot publication). Miss without dropping: the records may
		// arrive and prove the entry disjoint.
		return nil, false
	}
	c.order.MoveToFront(el)
	return e, true
}

func (c *Cache) admitLocked(key string, e *Entry) bool {
	if e.bytes > c.maxEntryBytes || len(e.Rows) > maxEntryRows {
		return false
	}
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	e.key = key
	c.entries[key] = c.order.PushFront(e)
	c.used += e.bytes
	for c.used > c.budget {
		oldest := c.order.Back()
		if oldest == nil || oldest.Value.(*Entry) == e {
			break
		}
		c.removeLocked(oldest)
		c.evictions++
	}
	return true
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*Entry)
	c.order.Remove(el)
	delete(c.entries, e.key)
	c.used -= e.bytes
}
