package core

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// Labels and edge labels used by the paper-figure fixtures.
const (
	lA = uint32(0)
	lB = uint32(1)
	lC = uint32(2)
	lD = uint32(3)
	lE = uint32(4)

	ea = uint32(0)
	eb = uint32(1)
	ec = uint32(2)
)

// fig1Data builds the data graph g1 of paper Figure 1 (reconstructed from
// the published solution set):
//
//	v0{B} -a-> v1{A}    v0 -b-> v4{C}
//	v2{B} -a-> v1       v2 -a-> v3{A,D}   v2 -b-> v5{C,E}
//	v3 -c-> v4          v3 -c-> v5
func fig1Data() *graph.Graph {
	b := graph.NewBuilder()
	b.AddVertexLabel(0, lB)
	b.AddVertexLabel(1, lA)
	b.AddVertexLabel(2, lB)
	b.AddVertexLabel(3, lA)
	b.AddVertexLabel(3, lD)
	b.AddVertexLabel(4, lC)
	b.AddVertexLabel(5, lC)
	b.AddVertexLabel(5, lE)
	b.AddEdge(0, ea, 1)
	b.AddEdge(0, eb, 4)
	b.AddEdge(2, ea, 1)
	b.AddEdge(2, ea, 3)
	b.AddEdge(2, eb, 5)
	b.AddEdge(3, ec, 4)
	b.AddEdge(3, ec, 5)
	return b.Build()
}

// fig1Query builds the query q1 of Figure 1: u0 blank, u1{A}, u2{B}, u3{A},
// u4{C}; edges u0-a->u1, u0-b->u4, u2-a->u1, u2-a->u3, and a blank-label
// edge u3->u4.
func fig1Query() *QueryGraph {
	q := NewQueryGraph()
	u0 := q.AddVertex(nil, NoID)
	u1 := q.AddVertex([]uint32{lA}, NoID)
	u2 := q.AddVertex([]uint32{lB}, NoID)
	u3 := q.AddVertex([]uint32{lA}, NoID)
	u4 := q.AddVertex([]uint32{lC}, NoID)
	q.AddEdge(u0, u1, ea)
	q.AddEdge(u0, u4, eb)
	q.AddEdge(u2, u1, ea)
	q.AddEdge(u2, u3, ea)
	q.AddVarEdge(u3, u4, -1)
	return q
}

// allOptCombos enumerates every combination of the four optimizations,
// each with the NEC reduction on and off.
func allOptCombos() []Opts {
	var out []Opts
	for mask := 0; mask < 32; mask++ {
		out = append(out, Opts{
			Intersect:  mask&1 != 0,
			NoNLF:      mask&2 != 0,
			NoDegree:   mask&4 != 0,
			ReuseOrder: mask&8 != 0,
			NoNEC:      mask&16 != 0,
		})
	}
	return out
}

// TestPaperFig1Homomorphism checks the paper's Figure 1 claim: three
// e-graph homomorphisms, each binding the blank edge (u3,u4) to label c.
func TestPaperFig1Homomorphism(t *testing.T) {
	g := fig1Data()
	q := fig1Query()
	for _, opts := range allOptCombos() {
		sols, err := Collect(context.Background(), g, q, Homomorphism, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(sols) != 3 {
			t.Fatalf("opts %+v: %d homomorphisms, want 3: %v", opts, len(sols), sols)
		}
		want := map[[5]uint32]bool{
			{0, 1, 2, 3, 4}: true, // M1
			{2, 3, 2, 3, 5}: true, // M2
			{2, 1, 2, 3, 5}: true, // M3
		}
		for _, s := range sols {
			var key [5]uint32
			copy(key[:], s.Vertices)
			if !want[key] {
				t.Errorf("opts %+v: unexpected solution %v", opts, s.Vertices)
			}
			delete(want, key)
			// The blank edge (index 4) must bind to c; constant edges carry
			// their constants.
			if s.EdgeLabels[4] != ec {
				t.Errorf("opts %+v: Me(u3,u4) = %d, want c", opts, s.EdgeLabels[4])
			}
			if s.EdgeLabels[0] != ea || s.EdgeLabels[1] != eb {
				t.Errorf("opts %+v: constant edge bindings wrong: %v", opts, s.EdgeLabels)
			}
		}
		if len(want) != 0 {
			t.Errorf("opts %+v: missing solutions: %v", opts, want)
		}
	}
}

// TestPaperFig1Isomorphism checks that injectivity leaves only M1.
func TestPaperFig1Isomorphism(t *testing.T) {
	g := fig1Data()
	q := fig1Query()
	for _, opts := range allOptCombos() {
		sols, err := Collect(context.Background(), g, q, Isomorphism, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(sols) != 1 {
			t.Fatalf("opts %+v: %d isomorphisms, want 1: %v", opts, len(sols), sols)
		}
		want := []uint32{0, 1, 2, 3, 4}
		for i, v := range want {
			if sols[0].Vertices[i] != v {
				t.Fatalf("opts %+v: solution %v, want %v", opts, sols[0].Vertices, want)
			}
		}
	}
}

// TestPaperFig2MatchingOrder builds the matching-order-problem instance of
// Figure 2 (a clique query over a skewed star) and checks the engine
// terminates with zero results quickly under every configuration.
func TestPaperFig2MatchingOrder(t *testing.T) {
	const (
		numX = 10
		numY = 1000
		numZ = 5
	)
	lX, lY, lZ, lAA := uint32(0), uint32(1), uint32(2), uint32(3)
	b := graph.NewBuilder()
	v0 := uint32(0)
	b.AddVertexLabel(v0, lAA)
	next := uint32(1)
	var xs, ys, zs []uint32
	for i := 0; i < numX; i++ {
		b.AddVertexLabel(next, lX)
		xs = append(xs, next)
		next++
	}
	for i := 0; i < numY; i++ {
		b.AddVertexLabel(next, lY)
		ys = append(ys, next)
		next++
	}
	for i := 0; i < numZ; i++ {
		b.AddVertexLabel(next, lZ)
		zs = append(zs, next)
		next++
	}
	for _, x := range xs {
		b.AddEdge(v0, 0, x)
	}
	for _, y := range ys {
		b.AddEdge(v0, 0, y)
	}
	for _, z := range zs {
		b.AddEdge(v0, 0, z)
	}
	// X-Y and X-Z edges exist, Y-Z edges do not: the clique query has no
	// answer, and a bad matching order pays 10000*10*5 comparisons.
	for i, x := range xs {
		for j, y := range ys {
			if (i+j)%2 == 0 {
				b.AddEdge(x, 0, y)
			}
		}
		for _, z := range zs {
			b.AddEdge(x, 0, z)
		}
	}
	g := b.Build()

	q := NewQueryGraph()
	u0 := q.AddVertex([]uint32{lAA}, NoID)
	u1 := q.AddVertex([]uint32{lX}, NoID)
	u2 := q.AddVertex([]uint32{lY}, NoID)
	u3 := q.AddVertex([]uint32{lZ}, NoID)
	q.AddEdge(u0, u1, 0)
	q.AddEdge(u0, u2, 0)
	q.AddEdge(u0, u3, 0)
	q.AddEdge(u1, u2, 0)
	q.AddEdge(u1, u3, 0)
	q.AddEdge(u2, u3, 0)

	for _, sem := range []Semantics{Homomorphism, Isomorphism} {
		for _, opts := range []Opts{Baseline(), Optimized()} {
			n, err := Count(context.Background(), g, q, sem, opts)
			if err != nil {
				t.Fatal(err)
			}
			if n != 0 {
				t.Errorf("sem %v opts %+v: count = %d, want 0", sem, opts, n)
			}
		}
	}
}

func TestSingleVertexQuery(t *testing.T) {
	g := fig1Data()
	q := NewQueryGraph()
	q.AddVertex([]uint32{lA}, NoID)
	n, err := Count(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // v1 and v3
		t.Errorf("count = %d, want 2", n)
	}
	// Pinned single vertex.
	q2 := NewQueryGraph()
	q2.AddVertex([]uint32{lA}, 3)
	if n, _ := Count(context.Background(), g, q2, Homomorphism, Optimized()); n != 1 {
		t.Errorf("pinned count = %d, want 1", n)
	}
	// Pin with mismatched label.
	q3 := NewQueryGraph()
	q3.AddVertex([]uint32{lC}, 3)
	if n, _ := Count(context.Background(), g, q3, Homomorphism, Optimized()); n != 0 {
		t.Errorf("mismatched pin count = %d, want 0", n)
	}
}

func TestPinnedVertexQuery(t *testing.T) {
	g := fig1Data()
	// u0 pinned to v2, u0 -a-> u1 {A}: expect v1 and v3.
	q := NewQueryGraph()
	u0 := q.AddVertex(nil, 2)
	u1 := q.AddVertex([]uint32{lA}, NoID)
	q.AddEdge(u0, u1, ea)
	sols, err := Collect(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint32]bool{}
	for _, s := range sols {
		if s.Vertices[0] != 2 {
			t.Errorf("pinned vertex mapped to %d", s.Vertices[0])
		}
		got[s.Vertices[1]] = true
	}
	if len(sols) != 2 || !got[1] || !got[3] {
		t.Errorf("solutions = %v, want u1 in {v1, v3}", sols)
	}
}

func TestSelfLoop(t *testing.T) {
	b := graph.NewBuilder()
	b.AddVertexLabel(0, lA)
	b.AddVertexLabel(1, lA)
	b.AddEdge(0, ea, 0) // self loop on v0
	b.AddEdge(0, ea, 1)
	g := b.Build()

	q := NewQueryGraph()
	u0 := q.AddVertex([]uint32{lA}, NoID)
	q.AddEdge(u0, u0, ea)
	n, err := Count(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("self-loop count = %d, want 1 (v0 only)", n)
	}
	// Wildcard self loop.
	q2 := NewQueryGraph()
	u := q2.AddVertex(nil, NoID)
	q2.AddVarEdge(u, u, -1)
	if n, _ := Count(context.Background(), g, q2, Homomorphism, Optimized()); n != 1 {
		t.Errorf("wildcard self-loop count = %d, want 1", n)
	}
}

func TestPredVarConsistency(t *testing.T) {
	// v0 -a-> v1, v0 -b-> v1, v1 -a-> v2, v1 -b-> v2.
	b := graph.NewBuilder()
	b.AddEdge(0, ea, 1)
	b.AddEdge(0, eb, 1)
	b.AddEdge(1, ea, 2)
	b.AddEdge(1, eb, 2)
	g := b.Build()

	// ?x -?p-> ?y -?p-> ?z with a SHARED predicate variable: only label-
	// consistent pairs qualify: (a,a) and (b,b) through v0->v1->v2.
	q := NewQueryGraph()
	x := q.AddVertex(nil, NoID)
	y := q.AddVertex(nil, NoID)
	z := q.AddVertex(nil, NoID)
	q.AddVarEdge(x, y, 0)
	q.AddVarEdge(y, z, 0)
	n, err := Count(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("shared predvar count = %d, want 2", n)
	}

	// Distinct variables: 2x2 = 4 combinations.
	q2 := NewQueryGraph()
	x = q2.AddVertex(nil, NoID)
	y = q2.AddVertex(nil, NoID)
	z = q2.AddVertex(nil, NoID)
	q2.AddVarEdge(x, y, 0)
	q2.AddVarEdge(y, z, 1)
	if n, _ := Count(context.Background(), g, q2, Homomorphism, Optimized()); n != 4 {
		t.Errorf("distinct predvar count = %d, want 4", n)
	}
}

func TestMultiEdgeWildcardBindings(t *testing.T) {
	// Two parallel edges with different labels: a wildcard query edge must
	// yield two solutions differing only in Me (paper Def. 2).
	b := graph.NewBuilder()
	b.AddEdge(0, ea, 1)
	b.AddEdge(0, eb, 1)
	g := b.Build()
	q := NewQueryGraph()
	x := q.AddVertex(nil, NoID)
	y := q.AddVertex(nil, NoID)
	q.AddVarEdge(x, y, -1)
	sols, err := Collect(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("wildcard multi-edge solutions = %d, want 2", len(sols))
	}
	gotLabels := map[uint32]bool{}
	for _, s := range sols {
		gotLabels[s.EdgeLabels[0]] = true
	}
	if !gotLabels[ea] || !gotLabels[eb] {
		t.Errorf("bindings = %v, want {a, b}", gotLabels)
	}
}

func TestMaxSolutions(t *testing.T) {
	g := fig1Data()
	q := fig1Query()
	opts := Optimized()
	opts.MaxSolutions = 2
	n, err := Count(context.Background(), g, q, Homomorphism, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("capped count = %d, want 2", n)
	}
	sols, _ := Collect(context.Background(), g, q, Homomorphism, opts)
	if len(sols) != 2 {
		t.Errorf("capped collect = %d, want 2", len(sols))
	}
}

func TestStreamStop(t *testing.T) {
	g := fig1Data()
	q := fig1Query()
	calls := 0
	n, err := Stream(context.Background(), g, q, Homomorphism, Optimized(), func(Match) bool {
		calls++
		return false // stop immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || n != 1 {
		t.Errorf("stream stop: calls=%d n=%d, want 1/1", calls, n)
	}
}

func TestValidationErrors(t *testing.T) {
	g := fig1Data()
	// Empty query.
	if _, err := Count(context.Background(), g, NewQueryGraph(), Homomorphism, Optimized()); err == nil {
		t.Error("empty query accepted")
	}
	// Disconnected query.
	q := NewQueryGraph()
	q.AddVertex([]uint32{lA}, NoID)
	q.AddVertex([]uint32{lB}, NoID)
	if _, err := Count(context.Background(), g, q, Homomorphism, Optimized()); err == nil {
		t.Error("disconnected query accepted")
	}
	// Out-of-range edge endpoints.
	q2 := NewQueryGraph()
	q2.AddVertex(nil, NoID)
	q2.Edges = append(q2.Edges, QueryEdge{From: 0, To: 5, Label: 0, PredVar: -1})
	if _, err := Count(context.Background(), g, q2, Homomorphism, Optimized()); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := fig1Data()
	q := fig1Query()
	seq, err := Collect(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	opts := Optimized()
	opts.Workers = 4
	par, err := Collect(context.Background(), g, q, Homomorphism, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel = %d solutions, sequential = %d", len(par), len(seq))
	}
	// A full parallel Collect gathers solutions per chunk and merges them in
	// chunk order, so it must reproduce the sequential enumeration exactly —
	// not merely as a set.
	key := func(m Match) string {
		s := ""
		for _, v := range m.Vertices {
			s += string(rune('0' + v))
		}
		return s
	}
	for i := range seq {
		if key(par[i]) != key(seq[i]) {
			t.Fatalf("solution order differs at %d: parallel %v vs sequential %v",
				i, par[i].Vertices, seq[i].Vertices)
		}
	}

	// Same check at a scale where workers actually race over many chunks.
	gb, qb := bipartiteInstance(64)
	seqB, err := Collect(context.Background(), gb, qb, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	parB, err := Collect(context.Background(), gb, qb, Homomorphism, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(parB) != len(seqB) {
		t.Fatalf("bipartite: parallel %d, sequential %d", len(parB), len(seqB))
	}
	for i := range seqB {
		if parB[i].Vertices[0] != seqB[i].Vertices[0] || parB[i].Vertices[1] != seqB[i].Vertices[1] {
			t.Fatalf("bipartite order differs at %d: %v vs %v", i, parB[i].Vertices, seqB[i].Vertices)
		}
	}
}

func TestEmptyDataGraph(t *testing.T) {
	g := graph.NewBuilder().Build()
	q := fig1Query()
	n, err := Count(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("count on empty graph = %d", n)
	}
}

func TestOptimizedAndBaselineAgreeOnFig1(t *testing.T) {
	g := fig1Data()
	q := fig1Query()
	for _, sem := range []Semantics{Homomorphism, Isomorphism} {
		a, _ := Count(context.Background(), g, q, sem, Baseline())
		b, _ := Count(context.Background(), g, q, sem, Optimized())
		if a != b {
			t.Errorf("sem %v: baseline %d != optimized %d", sem, a, b)
		}
	}
}

// TestPointQueryFastPath checks Algorithm 1 lines 1-4: a single-vertex
// query reports exactly the filtered candidates, in both execution modes.
func TestPointQueryFastPath(t *testing.T) {
	g := fig1Data()
	q := NewQueryGraph()
	q.AddVertex([]uint32{lB}, NoID)
	for _, workers := range []int{1, 4} {
		opts := Optimized()
		opts.Workers = workers
		n, err := Count(context.Background(), g, q, Homomorphism, opts)
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 { // v0 and v2 carry B
			t.Fatalf("workers=%d: count = %d, want 2", workers, n)
		}
		sols, err := Collect(context.Background(), g, q, Homomorphism, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(sols) != 2 {
			t.Fatalf("workers=%d: collected %d, want 2", workers, len(sols))
		}
	}
}

// TestPointQueryRespectsLimit checks MaxSolutions on the fast path.
func TestPointQueryRespectsLimit(t *testing.T) {
	g := fig1Data()
	q := NewQueryGraph()
	q.AddVertex(nil, NoID) // every vertex matches
	opts := Optimized()
	opts.MaxSolutions = 3
	n, err := Count(context.Background(), g, q, Homomorphism, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count = %d, want 3 (limited)", n)
	}
}

// TestStartVertexPrefersPinnedEntity is the regression test for the
// start-vertex refinement guards: with a pinned constant and a huge class
// vertex in one query, the matcher must root exploration at the constant —
// observable through the pinned vertex winning ties against the class
// vertex whose estimate exceeds one.
func TestStartVertexPrefersPinnedEntity(t *testing.T) {
	// Data: hub vertex h (pinned in the query) points to 3 of 1000
	// L-labeled vertices.
	b := graph.NewBuilder()
	const hub = 1000
	for v := uint32(0); v < hub; v++ {
		b.AddVertexLabel(v, lA)
	}
	b.EnsureVertex(hub)
	b.AddEdge(hub, ea, 5)
	b.AddEdge(hub, ea, 6)
	b.AddEdge(hub, ea, 7)
	g := b.Build()

	q := NewQueryGraph()
	x := q.AddVertex([]uint32{lA}, NoID)
	h := q.AddVertex(nil, hub)
	q.AddEdge(h, x, ea)

	m := newMatcher(context.Background(), g, q, Homomorphism, Optimized())
	start, cands := m.startCandidates()
	if start != h {
		t.Fatalf("start vertex = %d, want pinned %d", start, h)
	}
	if len(cands) != 1 || cands[0] != hub {
		t.Fatalf("candidates = %v, want [hub]", cands)
	}

	n, err := Count(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
}
