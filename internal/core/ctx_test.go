package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
)

// bipartiteInstance builds a dense bipartite graph (n A-vertices fully
// connected to n B-vertices) and the single-edge query over it, giving n*n
// solutions spread over n candidate regions.
func bipartiteInstance(n int) (*graph.Graph, *QueryGraph) {
	fA, fB := uint32(0), uint32(1)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertexLabel(uint32(i), fA)
		b.AddVertexLabel(uint32(n+i), fB)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.AddEdge(uint32(i), 0, uint32(n+j))
		}
	}
	g := b.Build()
	q := NewQueryGraph()
	u0 := q.AddVertex([]uint32{fA}, NoID)
	u1 := q.AddVertex([]uint32{fB}, NoID)
	q.AddEdge(u0, u1, 0)
	return g, q
}

func TestCancelledContextStopsCount(t *testing.T) {
	g, q := bipartiteInstance(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Count(ctx, g, q, Homomorphism, Optimized()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	opts := Optimized()
	opts.Workers = 4
	if _, err := Count(ctx, g, q, Homomorphism, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
}

func TestCancelMidStreamAbandonsRegions(t *testing.T) {
	const n = 64
	g, q := bipartiteInstance(n)
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	_, err := Stream(ctx, g, q, Homomorphism, Optimized(), func(Match) bool {
		seen++
		if seen == 1 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen >= n*n {
		t.Fatalf("visited all %d solutions despite cancellation", seen)
	}
}

func TestVisitorStopIsNotAnError(t *testing.T) {
	g, q := bipartiteInstance(16)
	seen := 0
	n, err := Stream(context.Background(), g, q, Homomorphism, Optimized(), func(Match) bool {
		seen++
		return seen < 5
	})
	if err != nil {
		t.Fatalf("err = %v, want nil for a visitor-initiated stop", err)
	}
	if n != 5 || seen != 5 {
		t.Fatalf("visited %d (returned %d), want 5", seen, n)
	}
}

func TestMaxSolutionsProfileCountsPartialEffort(t *testing.T) {
	g, q := bipartiteInstance(32)
	full, err := Profile(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	opts := Optimized()
	opts.MaxSolutions = 3
	part, err := Profile(context.Background(), g, q, Homomorphism, opts)
	if err != nil {
		t.Fatal(err)
	}
	if part.Solutions != 3 {
		t.Fatalf("limited solutions = %d, want 3", part.Solutions)
	}
	if part.Regions >= full.Regions || part.SearchNodes >= full.SearchNodes {
		t.Fatalf("early termination did not shrink effort: partial %+v vs full %+v", part, full)
	}
}
