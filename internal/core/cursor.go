package core

import (
	"context"
	"sync/atomic"

	"repro/internal/graph"
)

// This file makes the subgraph search resumable: regionCursor re-expresses
// searchState.search's recursion as an explicit stack of loop frames, so the
// enumeration of one candidate region can be suspended after any emitted row
// and resumed later — by the same goroutine or, state in hand, by another
// scheduler entirely. Cursor wraps it into a whole-run enumeration (regions
// in sequential order) with the same resumability.
//
// The machine is a faithful transliteration of the recursion in search.go,
// which remains the sequential production path and the reference oracle for
// the differential suite: for any pause/resume schedule, the cursor must
// deliver byte-identical rows, in the identical order, with identical
// profile counters. Each frame kind mirrors one loop of the recursion:
//
//	cfSearch — the per-candidate loop of search(dc) at one matching-order
//	           position (including the +INT and IsJoinable paths);
//	cfWild   — the per-label loop of bindWild for one wildcard edge;
//	cfExpand — the per-candidate loop of expandClass/assign for one member
//	           of one NEC equivalence class during combination expansion.
//
// NEC representative positions (searchNEC) push no frame at all: their
// candidate filtering happens at push time and the search descends exactly
// once, so there is nothing to iterate when the subtree returns — just like
// the recursion.
//
// Suspend/resume invariants. All search state lives in the searchState
// arrays (mapping, edgeBind, varBind, used, classCands, fullMap/fullEdges,
// the per-depth scratch buffers) plus the frame stack; nothing lives on the
// goroutine stack between resume calls. Each frame records the bindings it
// owns (bound/setVar/expSet) and undoes them when control re-enters it after
// the subtree beneath finished — so resuming continues exactly where the
// last emit happened. A suspended cursor holds live bindings in those
// arrays: abandoning a region mid-search is only safe through abort(), which
// unwinds the stack undoing every frame's effects, unless the searchState is
// discarded with the cursor. One deliberate divergence from the recursion, invisible in every
// observable (rows, order, counters): the (u, v) vertex binding is placed
// before the position's wildcard labels are enumerated rather than beneath
// them, which keeps the binding's undo in the cfSearch frame; nothing inside
// the wildcard loop reads mapping[u] or used[v].
type regionCursor struct {
	st    *searchState
	stack []cframe

	// NEC expansion accounting: the recursion computes
	// NECExpansionsSkipped from the solution count before/after one
	// reduced solution's expansion. The cursor's expansion interleaves
	// with suspensions, so the base is recorded when the first cfExpand
	// frame is pushed and folded in when the expansion's frames have all
	// popped (or the run stops mid-expansion).
	expActive   bool
	expBase     int
	expStackLen int
}

type cframeKind uint8

const (
	cfSearch cframeKind = iota
	cfWild
	cfExpand
)

// cframe is one suspended loop of the search recursion.
type cframe struct {
	kind cframeKind

	// cfSearch, cfWild: matching-order position and its query vertex.
	dc int
	u  int

	// list is the frame's iteration space: candidate vertices (cfSearch),
	// edge labels (cfWild), or the class candidate snapshot (cfExpand).
	// i indexes the next element to try.
	list []uint32
	i    int

	// cfSearch: the data vertex currently bound to u (undone on re-entry),
	// and the membership-test edges (nil when +INT already intersected).
	v          uint32
	bound      bool
	constJoins []int

	// cfWild: the wildcard edge (edge = query edge index, wi = position in
	// plan.wild[dc]), the vertex being placed, the predicate-variable
	// binding observed on entry (NoID = unbound), and whether this frame
	// bound the variable for the current label.
	edge      int
	wi        int
	wv        uint32
	prevBound uint32
	setVar    bool

	// cfExpand: class and member being assigned, plus the currently
	// assigned data vertex (isomorphism only; undone on re-entry).
	ci, mi int
	expCur uint32
	expSet bool
}

// start (re)initializes the cursor for the region and plan currently set on
// st (st.rg, st.plan). The caller owns st's lifecycle; one searchState can
// serve many consecutive regions through the same cursor, exactly like the
// sequential loop in run().
func (rc *regionCursor) start(st *searchState) {
	rc.st = st
	rc.stack = rc.stack[:0]
	rc.expActive = false
	rc.descend(0)
}

// resume advances the search until maxRows more solutions have been emitted
// (counted the way the run counts them, so an NEC bulk count may overshoot),
// the region is exhausted, or the search stops (visitor false, limit,
// cancellation). It reports whether the region is finished; false means the
// cursor is suspended and resume can be called again. maxRows <= 0 runs to
// exhaustion.
func (rc *regionCursor) resume(maxRows int) bool {
	st := rc.st
	base := st.count
	for len(rc.stack) > 0 {
		if st.stopped {
			rc.abort()
			return true
		}
		rc.step()
		if maxRows > 0 && st.count-base >= maxRows && len(rc.stack) > 0 {
			if st.stopped {
				continue // deliver the stop verdict, not a suspension
			}
			return false
		}
	}
	rc.finishExpansion()
	return true
}

// undo reverts the bindings this frame currently holds — the cfSearch
// vertex binding, the cfWild predicate-variable and edge-label bindings,
// the cfExpand member assignment. It is the single undo site, shared by
// step()'s re-entry and abort()'s unwind, so the two cannot drift: a new
// binding added to one frame kind is undone on both paths or neither.
func (f *cframe) undo(st *searchState) {
	switch f.kind {
	case cfSearch:
		if f.bound {
			if st.used != nil {
				st.used[f.v] = false
			}
			f.bound = false
		}
	case cfWild:
		if f.setVar {
			st.varBind[st.m.q.Edges[f.edge].PredVar] = NoID
			f.setVar = false
		}
		st.edgeBind[f.edge] = NoID
	case cfExpand:
		if f.expSet {
			st.used[f.expCur] = false
			f.expSet = false
		}
	}
}

// revertInto clears, in dst, the bindings this frame currently holds —
// without touching the frame itself. It is the cross-state sibling of undo,
// used when a region split hands a CLONE of the searchState to a thief: the
// clone must not carry the bindings of the frames the thief is not taking,
// while the victim's frames keep their flags for their own later undo.
func (f *cframe) revertInto(dst *searchState) {
	switch f.kind {
	case cfSearch:
		if f.bound && dst.used != nil {
			dst.used[f.v] = false
		}
	case cfWild:
		if f.setVar {
			dst.varBind[dst.m.q.Edges[f.edge].PredVar] = NoID
		}
		dst.edgeBind[f.edge] = NoID
	case cfExpand:
		if f.expSet {
			dst.used[f.expCur] = false
		}
	}
}

// abort abandons a suspended region mid-search, unwinding the frame stack
// and undoing every binding the frames still hold, exactly as each frame's
// own re-entry would. After abort the searchState is clean for the next
// region: required whenever the state outlives the abandoned region, as in
// the pipeline's span-quota cutoffs, where a worker that dropped a
// suspended cursor without unwinding would silently prune later spans
// against stale used[]/varBind[] entries.
func (rc *regionCursor) abort() {
	st := rc.st
	for i := len(rc.stack) - 1; i >= 0; i-- {
		rc.stack[i].undo(st)
	}
	rc.stack = rc.stack[:0]
	rc.finishExpansion()
}

// cloneForSplit copies the bindings of a suspended search into a fresh,
// independently resumable searchState for a region thief: the mapping/edge/
// variable/injectivity arrays and the NEC snapshots are deep copies, the
// scratch buffers are fresh (per-goroutine), and the visitor, profile sink
// and stop flag are the thief's own. The shared region, plan and matcher are
// immutable for the rest of the region's life and stay shared.
func (st *searchState) cloneForSplit(visit Visitor, prof *ProfileResult, stop *atomic.Bool) *searchState {
	n := &searchState{
		m:        st.m,
		ctx:      st.ctx,
		visit:    visit,
		rg:       st.rg,
		plan:     st.plan,
		mapping:  append([]uint32(nil), st.mapping...),
		edgeBind: append([]uint32(nil), st.edgeBind...),
		varBind:  append([]uint32(nil), st.varBind...),
		profile:  prof,
		stop:     stop,
		candBuf:  make([][]uint32, len(st.candBuf)),
		adjBuf:   make([][]uint32, len(st.adjBuf)),
		listsBuf: make([][][]uint32, len(st.listsBuf)),
	}
	if st.used != nil {
		n.used = append([]bool(nil), st.used...)
	}
	if st.m.red != nil {
		// The class snapshots alias the victim's per-depth candBuf scratch,
		// which later victim regions overwrite — the thief needs owned copies.
		n.classCands = make([][]uint32, len(st.classCands))
		for i, c := range st.classCands {
			n.classCands[i] = append([]uint32(nil), c...)
		}
		n.fullMap = append([]uint32(nil), st.fullMap...)
		n.fullEdges = append([]uint32(nil), st.fullEdges...)
	}
	return n
}

// splitOff carves the tail half of this suspended cursor's bottom-most
// pending candidate loop into a new, independently resumable cursor, or
// returns nil when no split is possible. The caller must hold whatever lock
// serializes this cursor's resumes (the pipeline's region handle): the
// victim keeps iterating the head of the split frame's list, the thief
// enumerates the stolen tail over a cloned searchState.
//
// The split point must be the bottom-most frame with iterations remaining:
// every frame below it is exhausted, so every row the victim still produces
// (the current subtree plus the head candidates) precedes every stolen-tail
// row in the sequential enumeration — which is exactly the contract the
// pipeline's span splicing needs. Only cfSearch frames split: wildcard label
// loops and NEC expansions are cheap per iteration and not worth cloning.
func (rc *regionCursor) splitOff(visit Visitor, prof *ProfileResult, stop *atomic.Bool) *regionCursor {
	si := -1
	for i := range rc.stack {
		if rc.stack[i].i < len(rc.stack[i].list) {
			si = i
			break
		}
	}
	if si < 0 {
		return nil
	}
	f := &rc.stack[si]
	if f.kind != cfSearch {
		return nil
	}
	remaining := len(f.list) - f.i
	if remaining < 2 {
		return nil
	}
	take := remaining / 2
	stolen := append([]uint32(nil), f.list[len(f.list)-take:]...)
	f.list = f.list[:len(f.list)-take]

	nst := rc.st.cloneForSplit(visit, prof, stop)
	// The clone copied the victim's live bindings wholesale; the frames at
	// and above the split point belong to the victim's current subtree, so
	// their bindings must not leak into the thief's state.
	for i := len(rc.stack) - 1; i >= si; i-- {
		rc.stack[i].revertInto(nst)
	}
	nrc := &regionCursor{st: nst}
	nrc.stack = append(nrc.stack, cframe{
		kind: cfSearch, dc: f.dc, u: f.u, list: stolen, constJoins: f.constJoins,
	})
	return nrc
}

// step executes one iteration of the top frame's loop. Frames are addressed
// by index, never by retained pointer, because pushes may grow the stack's
// backing array.
func (rc *regionCursor) step() {
	st := rc.st
	top := len(rc.stack) - 1
	f := &rc.stack[top]
	f.undo(st)
	switch f.kind {
	case cfSearch:
		for f.i < len(f.list) {
			v := f.list[f.i]
			f.i++
			st.steps++
			if st.steps&2047 == 0 {
				if err := st.ctx.Err(); err != nil {
					st.err = err
					st.stopped = true
					return
				}
				if st.stop != nil && st.stop.Load() {
					st.stopped = true
					return
				}
			}
			if st.profile != nil {
				st.profile.SearchNodes++
			}
			if st.used != nil && st.used[v] {
				continue
			}
			if f.constJoins != nil && !st.checkConstJoins(f.u, v, f.constJoins) {
				continue
			}
			if !st.checkSelfLoops(v, st.plan.selfConst[f.dc]) {
				continue
			}
			// Bind u -> v and descend. The binding is undone when control
			// re-enters this frame.
			st.mapping[f.u] = v
			if st.used != nil {
				st.used[v] = true
			}
			f.v, f.bound = v, true
			dc, u := f.dc, f.u
			if len(st.plan.wild[dc]) == 0 {
				rc.descend(dc + 1)
			} else {
				rc.pushWild(dc, u, v, 0)
			}
			return
		}
		rc.stack = rc.stack[:top]

	case cfWild:
		e := &st.m.q.Edges[f.edge]
		for f.i < len(f.list) {
			lbl := f.list[f.i]
			f.i++
			if f.prevBound != NoID && lbl != f.prevBound {
				continue
			}
			st.edgeBind[f.edge] = lbl
			if e.PredVar >= 0 && f.prevBound == NoID {
				st.varBind[e.PredVar] = lbl
				f.setVar = true
			}
			dc, u, v, wi := f.dc, f.u, f.wv, f.wi
			rc.pushWild(dc, u, v, wi+1)
			return
		}
		rc.stack = rc.stack[:top]

	case cfExpand:
		members := st.m.red.classes[f.ci].members
		for f.i < len(f.list) {
			v := f.list[f.i]
			f.i++
			if st.used != nil {
				if st.used[v] {
					continue
				}
				st.used[v] = true
				f.expCur, f.expSet = v, true
			}
			st.fullMap[members[f.mi]] = v
			ci, mi := f.ci, f.mi
			rc.pushExpand(ci, mi+1)
			return
		}
		rc.stack = rc.stack[:top]
		rc.maybeFinishExpansion()
	}
}

// descend enters matching-order position dc, or emits a solution when the
// order is complete — search(dc)'s entry.
func (rc *regionCursor) descend(dc int) {
	st := rc.st
	if dc == len(st.plan.order) {
		rc.emit()
		return
	}
	rc.pushSearch(dc)
}

// pushSearch prepares position dc exactly as search(dc) does: candidate
// lookup, the +INT intersection, and the deferred-NEC snapshot (which
// descends without a frame).
func (rc *regionCursor) pushSearch(dc int) {
	st := rc.st
	plan := st.plan
	u := plan.order[dc]

	var cands []uint32
	if dc == 0 {
		st.rootBuf[0] = st.rg.root
		cands = st.rootBuf[:]
	} else {
		cands = st.rg.cand[rkey(u, st.mapping[st.m.parent[u]])]
	}

	constJoins := plan.constJoins[dc]
	if st.m.opts.Intersect && len(constJoins) > 0 {
		cands = st.intersectJoins(dc, u, cands, constJoins)
		constJoins = nil
	}

	if st.m.red != nil {
		if ci := st.m.red.classOf[u]; ci >= 0 {
			rc.pushNEC(dc, u, ci, cands, constJoins)
			return
		}
	}

	rc.stack = append(rc.stack, cframe{kind: cfSearch, dc: dc, u: u, list: cands, constJoins: constJoins})
}

// pushNEC mirrors searchNEC: filter the class candidates, snapshot the
// survivors, and descend once — no frame, because there is nothing to
// iterate at this position when the subtree returns.
func (rc *regionCursor) pushNEC(dc, u, ci int, cands []uint32, constJoins []int) {
	st := rc.st
	buf := st.candBuf[dc][:0]
	for _, v := range cands {
		st.steps++
		if st.steps&2047 == 0 {
			if err := st.ctx.Err(); err != nil {
				st.err = err
				st.stopped = true
				return
			}
			if st.stop != nil && st.stop.Load() {
				st.stopped = true
				return
			}
		}
		if st.profile != nil {
			st.profile.SearchNodes++
		}
		if st.used != nil && st.used[v] {
			continue
		}
		if constJoins != nil && !st.checkConstJoins(u, v, constJoins) {
			continue
		}
		buf = append(buf, v)
	}
	st.candBuf[dc] = buf
	k := st.m.red.classSize[u]
	if len(buf) == 0 || (st.used != nil && len(buf) < k) {
		return
	}
	st.classCands[ci] = buf
	rc.descend(dc + 1)
}

// pushWild enters wildcard edge wi of position dc for the candidate binding
// u -> v, or descends past the position when every wildcard edge is bound —
// bindWild's body.
func (rc *regionCursor) pushWild(dc, u int, v uint32, wi int) {
	st := rc.st
	edges := st.plan.wild[dc]
	if wi == len(edges) {
		rc.descend(dc + 1)
		return
	}
	m := st.m
	ei := edges[wi]
	e := &m.q.Edges[ei]
	vf, vt := v, v
	if e.From != u {
		vf = st.mapping[e.From]
	}
	if e.To != u {
		vt = st.mapping[e.To]
	}
	st.lblBuf = m.g.EdgeLabelsBetween(st.lblBuf[:0], vf, vt)
	if len(st.lblBuf) == 0 {
		return // dead end; edgeBind[ei] keeps its prior value, as in bindWild
	}
	bound := NoID
	if e.PredVar >= 0 {
		bound = st.varBind[e.PredVar]
	}
	// The frame outlives this call (and any suspension), so it owns a copy
	// of the label list — the recursion copies for the same reason.
	labels := append([]uint32(nil), st.lblBuf...)
	rc.stack = append(rc.stack, cframe{
		kind: cfWild, dc: dc, u: u, wv: v,
		edge: ei, wi: wi, list: labels, prevBound: bound,
	})
}

// pushExpand assigns member mi of NEC class ci (and onward), emitting the
// fully-expanded match when every class is assigned — expandClass/assign.
func (rc *regionCursor) pushExpand(ci, mi int) {
	st := rc.st
	red := st.m.red
	for ci < len(red.classes) && mi == len(red.classes[ci].members) {
		ci, mi = ci+1, 0
	}
	if ci == len(red.classes) {
		st.emitMatch(st.fullMap, st.fullEdges)
		return
	}
	rc.stack = append(rc.stack, cframe{kind: cfExpand, ci: ci, mi: mi, list: st.classCands[ci]})
}

// emit delivers the current reduced solution: directly, or through NEC
// combination expansion — searchState.emit's body, with expandClass turned
// into cfExpand frames so a huge expansion suspends like any other subtree.
func (rc *regionCursor) emit() {
	st := rc.st
	if st.m.red == nil {
		st.emitMatch(st.mapping, st.edgeBind)
		return
	}
	red := st.m.red

	if st.visit == nil && st.used == nil {
		// Count-only homomorphism: pure product, no enumeration (emitNEC's
		// fast path verbatim).
		total := 1
		for ci, cls := range red.classes {
			n := len(st.classCands[ci])
			for range cls.members {
				if n != 0 && total > int(^uint(0)>>1)/n {
					total = int(^uint(0) >> 1)
					break
				}
				total *= n
			}
		}
		if st.profile != nil {
			st.profile.NECExpansionsSkipped += total - 1
		}
		st.bulkCount(total)
		return
	}

	for ov := range red.orig.Vertices {
		rv := red.vertexMap[ov]
		if red.classSize[rv] == 1 {
			st.fullMap[ov] = st.mapping[rv]
		}
	}
	for oe, re := range red.edgeMap {
		if re >= 0 {
			st.fullEdges[oe] = st.edgeBind[re]
		}
	}
	rc.expActive = true
	rc.expBase = st.count
	rc.expStackLen = len(rc.stack)
	rc.pushExpand(0, 0)
	rc.maybeFinishExpansion() // the expansion may complete without frames
}

// maybeFinishExpansion folds the expansion-skipped counter in once the
// expansion's frames have all popped.
func (rc *regionCursor) maybeFinishExpansion() {
	if rc.expActive && len(rc.stack) == rc.expStackLen {
		rc.finishExpansion()
	}
}

func (rc *regionCursor) finishExpansion() {
	if !rc.expActive {
		return
	}
	rc.expActive = false
	st := rc.st
	if st.profile != nil && st.count > rc.expBase {
		st.profile.NECExpansionsSkipped += st.count - rc.expBase - 1
	}
}

// Cursor is a resumable whole-run enumeration: the same regions, in the same
// order, with the same counters as the sequential run(), but pausable after
// any emitted row. It is the shippable unit of work the pipeline schedules
// (one cursor per region, suspended on backpressure, its remaining range
// stealable) and the natural seam for distributed sharding: a suspended
// cursor plus its candidate range describes exactly the work left to do.
//
// A Cursor is single-goroutine; it holds no locks and spawns nothing.
type Cursor struct {
	m      *matcher
	st     *searchState
	rg     *region
	rc     regionCursor
	cands  []uint32
	start  int
	next   int // next start-candidate index
	in     bool
	plan   *searchPlan // +REUSE shared plan (nil until first surviving region)
	point  bool
	done   bool
	folded bool // signature counters folded into the profile
}

// foldSig folds the matcher's signature-filter counters into the profile,
// once, when the enumeration completes — the Cursor-shaped counterpart of
// run()'s deferred fold.
func (c *Cursor) foldSig() {
	if !c.folded {
		c.folded = true
		c.m.foldSigCounters()
	}
}

// NewCursor validates the query and prepares a resumable enumeration of all
// matches of q in g. Rows are delivered to visit (which may stop the run by
// returning false) during Resume calls, in exactly the sequential
// enumeration order; opts.Profile, MaxSolutions and the ctx-cancellation
// contract behave as in Stream. opts.Workers is ignored — a cursor is the
// sequential search made suspendable; parallelism schedules many cursors.
func NewCursor(ctx context.Context, g graph.View, q *QueryGraph, sem Semantics, opts Opts, visit Visitor) (*Cursor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m := newMatcher(ctx, g, q, sem, opts)
	c := &Cursor{m: m}
	c.start, c.cands = m.startCandidates()
	pr := opts.Profile
	if pr != nil {
		pr.StartVertex = c.start
		pr.StartCandidates = len(c.cands)
		if m.red != nil {
			pr.NECClasses = len(m.red.classes)
			pr.NECMergedVertices = m.red.mergedVertices()
		}
	}
	if len(c.cands) == 0 {
		c.done = true
		c.foldSig()
		return c, nil
	}
	c.point = len(m.q.Vertices) == 1 && len(m.q.Edges) == 0
	if !c.point {
		m.buildQueryTree(c.start)
		c.rg = newRegion(len(m.q.Vertices))
	}
	c.st = newSearchState(m, visit, opts.MaxSolutions, nil)
	c.st.profile = pr
	return c, nil
}

// Resume advances the enumeration until maxRows more rows have been emitted
// (maxRows <= 0 means: until exhaustion), then suspends. It returns the
// number of rows emitted by this call and whether the enumeration is
// complete. After done is reported true (or an error is returned), further
// calls return (0, true, err) idempotently.
func (c *Cursor) Resume(maxRows int) (int, bool, error) {
	if c.done {
		return 0, true, c.err()
	}
	st := c.st
	before := c.clampedCount()
	budget := func() int {
		if maxRows <= 0 {
			return 0
		}
		used := c.clampedCount() - before
		if used >= maxRows {
			return -1 // no budget left
		}
		return maxRows - used
	}

	if c.point {
		c.resumePoint(maxRows, before)
		if c.done {
			c.foldSig()
		}
		return c.clampedCount() - before, c.done, c.err()
	}

	for {
		if st.stopped {
			c.done = true
			break
		}
		if c.in {
			b := budget()
			if b < 0 {
				return c.clampedCount() - before, false, nil
			}
			if !c.rc.resume(b) {
				return c.clampedCount() - before, false, nil
			}
			c.in = false
			continue
		}
		if c.next >= len(c.cands) {
			c.done = true
			break
		}
		if err := c.m.ctx.Err(); err != nil {
			st.err = err
			c.done = true
			break
		}
		vs := c.cands[c.next]
		c.next++
		c.rg.reset(vs)
		if !c.m.explore(c.rg, c.start, vs) {
			continue
		}
		if st.profile != nil {
			st.profile.Regions++
			for _, total := range c.rg.totals {
				st.profile.ExploredCandidates += total
			}
		}
		if c.plan == nil || !c.m.opts.ReuseOrder {
			c.plan = c.m.buildPlan(c.rg)
		}
		st.rg, st.plan = c.rg, c.plan
		c.rc.start(st)
		c.in = true
	}
	c.foldSig()
	return c.clampedCount() - before, true, c.err()
}

// resumePoint is the point-shaped-query fast path of run(), resumable.
func (c *Cursor) resumePoint(maxRows, before int) {
	st := c.st
	pr := st.profile
	for c.next < len(c.cands) {
		if st.stopped {
			c.done = true
			return
		}
		if maxRows > 0 && c.clampedCount()-before >= maxRows {
			return
		}
		if c.next&1023 == 0 {
			if err := c.m.ctx.Err(); err != nil {
				st.err = err
				c.done = true
				return
			}
		}
		v := c.cands[c.next]
		c.next++
		if pr != nil {
			pr.Regions++
			pr.SearchNodes++
		}
		st.mapping[0] = v
		st.emit()
	}
	c.done = true
}

// clampedCount is the run's solution count with the MaxSolutions overshoot
// clamp run() applies (an NEC bulk count can exceed the cap by one batch).
func (c *Cursor) clampedCount() int {
	n := c.st.count
	if limit := c.m.opts.MaxSolutions; limit > 0 && n > limit {
		n = limit
	}
	return n
}

// Count reports the total number of solutions emitted so far (clamped to
// MaxSolutions, like the run-level APIs).
func (c *Cursor) Count() int {
	if c.st == nil {
		return 0
	}
	return c.clampedCount()
}

func (c *Cursor) err() error {
	if c.st == nil {
		return nil
	}
	return c.st.err
}
