package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
)

// cursorKeys drives a whole-run Cursor under a pause/resume schedule:
// quotas are taken from sched cyclically (nil = run to exhaustion in one
// Resume). It returns the per-row keys and the summed per-call row counts.
func cursorKeys(t *testing.T, g graph.View, q *QueryGraph, sem Semantics, opts Opts, sched []int) ([]string, int) {
	t.Helper()
	var keys []string
	c, err := NewCursor(context.Background(), g, q, sem, opts, func(mt Match) bool {
		keys = append(keys, matchKey(mt))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; ; i++ {
		quota := 0
		if len(sched) > 0 {
			quota = sched[i%len(sched)]
		}
		n, done, err := c.Resume(quota)
		if err != nil {
			t.Fatalf("Resume: %v", err)
		}
		total += n
		if done {
			break
		}
		if quota > 0 && n == 0 {
			t.Fatalf("suspended cursor made no progress (quota %d after %d rows)", quota, total)
		}
	}
	return keys, total
}

// resumeSchedules is the satellite's pause/resume corpus: suspend after
// every row, after every 7 rows, and at random points.
func resumeSchedules(r *rand.Rand) map[string][]int {
	random := make([]int, 17)
	for i := range random {
		random[i] = 1 + r.Intn(11)
	}
	return map[string][]int{
		"uninterrupted": nil,
		"every-row":     {1},
		"every-7":       {7},
		"random":        random,
	}
}

// TestCursorDifferential is the tentpole's core acceptance suite: over the
// full instance corpus, both semantics, NEC on and off, and every
// pause/resume schedule, the resumable cursor must reproduce the recursive
// sequential enumeration byte-identically — rows, order, and profile
// totals.
func TestCursorDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	scheds := resumeSchedules(r)
	for _, inst := range pipelineInstances() {
		for _, sem := range []Semantics{Homomorphism, Isomorphism} {
			for _, noNEC := range []bool{false, true} {
				opts := Optimized()
				opts.NoNEC = noNEC
				opts.Workers = 1
				var wantProf ProfileResult
				seq := opts
				seq.Profile = &wantProf
				want := streamKeys(t, inst.g, inst.q, sem, seq)
				for name, sched := range scheds {
					t.Run(fmt.Sprintf("%s/%v/noNEC=%v/%s", inst.name, sem, noNEC, name), func(t *testing.T) {
						var gotProf ProfileResult
						copts := opts
						copts.Profile = &gotProf
						got, n := cursorKeys(t, inst.g, inst.q, sem, copts, sched)
						if n != len(want) || len(got) != len(want) {
							t.Fatalf("cursor: %d rows (reported %d), want %d", len(got), n, len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("row %d:\n got %s\nwant %s", i, got[i], want[i])
							}
						}
						if gotProf != wantProf {
							t.Fatalf("profile diverged:\ncursor %+v\n  want %+v", gotProf, wantProf)
						}
					})
				}
			}
		}
	}
}

// TestCursorBaselineOpts runs the pause/resume differential under the
// unoptimized configuration too (per-region plans, no +INT, no +REUSE),
// where the cursor exercises the IsJoinable membership path.
func TestCursorBaselineOpts(t *testing.T) {
	for _, inst := range pipelineInstances() {
		for _, sem := range []Semantics{Homomorphism, Isomorphism} {
			opts := Baseline()
			opts.Workers = 1
			want := streamKeys(t, inst.g, inst.q, sem, opts)
			got, _ := cursorKeys(t, inst.g, inst.q, sem, opts, []int{3})
			if len(got) != len(want) {
				t.Fatalf("%s/%v: %d rows, want %d", inst.name, sem, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s/%v row %d: %s want %s", inst.name, sem, i, got[i], want[i])
				}
			}
		}
	}
}

// TestResumableWorkersDifferential is the workers axis of the satellite
// suite: the pipeline (itself built on suspended cursors, with per-segment
// quotas derived from StreamBuffer) must reproduce the sequential rows for
// every worker count and row-buffer bound.
func TestResumableWorkersDifferential(t *testing.T) {
	for _, inst := range pipelineInstances() {
		for _, sem := range []Semantics{Homomorphism, Isomorphism} {
			for _, noNEC := range []bool{false, true} {
				opts := Optimized()
				opts.NoNEC = noNEC
				opts.Workers = 1
				want := streamKeys(t, inst.g, inst.q, sem, opts)
				for _, workers := range []int{2, 4, 8} {
					for _, rows := range []int{0, 1, 7} {
						par := opts
						par.Workers = workers
						par.StreamBuffer = rows
						got := streamKeys(t, inst.g, inst.q, sem, par)
						if len(got) != len(want) {
							t.Fatalf("%s/%v/noNEC=%v workers=%d buf=%d: %d rows, want %d",
								inst.name, sem, noNEC, workers, rows, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s/%v/noNEC=%v workers=%d buf=%d row %d:\n got %s\nwant %s",
									inst.name, sem, noNEC, workers, rows, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestCursorLimitAndStop pins MaxSolutions and visitor-stop semantics on the
// cursor: the same prefix as the sequential run, stopping mid-resume.
func TestCursorLimitAndStop(t *testing.T) {
	g, q := bipartiteInstance(24)
	opts := Optimized()
	opts.Workers = 1
	full := streamKeys(t, g, q, Homomorphism, opts)

	opts.MaxSolutions = 11
	got, n := cursorKeys(t, g, q, Homomorphism, opts, []int{3})
	if n != 11 || len(got) != 11 {
		t.Fatalf("limit: %d rows (reported %d), want 11", len(got), n)
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("limit row %d: %s, want prefix %s", i, got[i], full[i])
		}
	}

	// Visitor stop: stop after 5 rows mid-resume; done with no error.
	opts.MaxSolutions = 0
	var stopped []string
	c, err := NewCursor(context.Background(), g, q, Homomorphism, opts, func(mt Match) bool {
		stopped = append(stopped, matchKey(mt))
		return len(stopped) < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	n, done, err := c.Resume(0)
	if err != nil || !done {
		t.Fatalf("stop: done=%v err=%v", done, err)
	}
	if n != 5 || len(stopped) != 5 {
		t.Fatalf("stop: %d rows (reported %d), want 5", len(stopped), n)
	}
	// Idempotent after done.
	if n, done, err := c.Resume(0); n != 0 || !done || err != nil {
		t.Fatalf("post-done Resume = (%d, %v, %v)", n, done, err)
	}
}

// TestCursorCancellation: a cancelled context surfaces through Resume and
// the rows delivered before it form a sequential prefix.
func TestCursorCancellation(t *testing.T) {
	g, q := bipartiteInstance(32)
	opts := Optimized()
	opts.Workers = 1
	full := streamKeys(t, g, q, Homomorphism, opts)

	ctx, cancel := context.WithCancel(context.Background())
	var got []string
	c, err := NewCursor(ctx, g, q, Homomorphism, opts, func(mt Match) bool {
		got = append(got, matchKey(mt))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := c.Resume(3); done || err != nil {
		t.Fatalf("first resume: done=%v err=%v", done, err)
	}
	cancel()
	var lastErr error
	for i := 0; i < len(full)+1; i++ {
		_, done, err := c.Resume(3)
		if done {
			lastErr = err
			break
		}
	}
	if lastErr != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", lastErr)
	}
	if len(got) >= len(full) {
		t.Fatalf("cancellation did not cut the run (%d rows)", len(got))
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("row %d: %s, want prefix %s", i, got[i], full[i])
		}
	}
}

// skewedInstance builds an instance whose FIRST region dwarfs the rest: hub
// 0 has a fan-out of big leaves while the remaining hubs have small ones, so
// a two-leaf query yields big² rows from one region and tiny trickles from
// the others — the shape that used to buffer a whole region and now
// exercises suspended cursors and work stealing.
func skewedInstance(big, smallHubs, small int) (*graph.Graph, *QueryGraph) {
	fHub, fLeaf := uint32(0), uint32(1)
	b := graph.NewBuilder()
	next := uint32(0)
	addHub := func(fan int) {
		hv := next
		next++
		b.AddVertexLabel(hv, fHub)
		for f := 0; f < fan; f++ {
			lv := next
			next++
			b.AddVertexLabel(lv, fLeaf)
			b.AddEdge(hv, 7, lv)
		}
	}
	addHub(big)
	for h := 0; h < smallHubs; h++ {
		addHub(small)
	}
	g := b.Build()
	q := NewQueryGraph()
	hub := q.AddVertex([]uint32{fHub}, NoID)
	for i := 0; i < 2; i++ {
		leaf := q.AddVertex([]uint32{fLeaf}, NoID)
		q.AddEdge(hub, leaf, 7)
	}
	return g, q
}

// heavyTailInstance puts the expensive regions at the END of the candidate
// range: many trivial hubs followed by a block of heavy ones. Workers that
// drain the trivial batches go idle while one worker grinds through the
// heavy tail batch — exactly the shape adaptive splitting exists for.
func heavyTailInstance(light, heavy, heavyFan int) (*graph.Graph, *QueryGraph) {
	fHub, fLeaf := uint32(0), uint32(1)
	b := graph.NewBuilder()
	next := uint32(0)
	addHub := func(fan int) {
		hv := next
		next++
		b.AddVertexLabel(hv, fHub)
		for f := 0; f < fan; f++ {
			lv := next
			next++
			b.AddVertexLabel(lv, fLeaf)
			b.AddEdge(hv, 7, lv)
		}
	}
	for h := 0; h < light; h++ {
		addHub(1)
	}
	for h := 0; h < heavy; h++ {
		addHub(heavyFan)
	}
	g := b.Build()
	q := NewQueryGraph()
	hub := q.AddVertex([]uint32{fHub}, NoID)
	for i := 0; i < 2; i++ {
		leaf := q.AddVertex([]uint32{fLeaf}, NoID)
		q.AddEdge(hub, leaf, 7)
	}
	return g, q
}

// TestPipelineStealSplit: with the heavy regions packed into the tail
// batches, workers that finish the light work steal the remaining range of
// the loaded batches, and the merged output must still be the exact
// sequential sequence — for streaming, Collect, and Count alike.
func TestPipelineStealSplit(t *testing.T) {
	// 930 regions, 4 workers: chunk = 930/32+1 = 30, so the 30 heavy
	// regions land in exactly the last batch. The three workers that drain
	// the trivial batches find the shared cursor exhausted while the last
	// batch's owner is grinding 30 × 1600-row regions — they must steal.
	g, q := heavyTailInstance(900, 30, 40)
	opts := Optimized()
	opts.NoNEC = true
	opts.Workers = 1
	want := streamKeys(t, g, q, Homomorphism, opts)
	wantN, err := Count(context.Background(), g, q, Homomorphism, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Streaming with a tiny row budget parks the heavy batch's owner on
	// backpressure with a suspended cursor; pausing the consumer once inside
	// the heavy range hands the CPU to the idle workers (on a single-core
	// scheduler the emitter/owner channel ping-pong would otherwise starve
	// them), which must then find the shared cursor exhausted and split the
	// owner's remaining range.
	before := pipelineSteals.Load()
	par := opts
	par.Workers = 4
	par.StreamBuffer = 8
	var got []string
	rows := 0
	n, err := Stream(context.Background(), g, q, Homomorphism, par, func(mt Match) bool {
		rows++
		if rows == 1000 { // inside heavy region 0: 29 heavy regions still pending
			time.Sleep(5 * time.Millisecond)
		}
		got = append(got, matchKey(mt))
		return true
	})
	if err != nil || n != len(want) {
		t.Fatalf("stream: %d rows (%v), want %d", n, err, len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream row %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	if steals := pipelineSteals.Load() - before; steals == 0 {
		t.Error("no steals on the heavy-tail stream: adaptive splitting never engaged")
	}

	// Count takes the same split paths; totals must match sequentially.
	gotN, err := Count(context.Background(), g, q, Homomorphism, par)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN {
		t.Fatalf("count: %d, want %d", gotN, wantN)
	}
}

// TestCappedParallelCountBounded: MaxSolutions must bound parallel COUNT
// work even when one region holds millions of solutions — the span-local
// cutoff stops the cursor mid-region (a regression here once cost ~700x:
// workers with no limit searched whole spans before delivering any count).
func TestCappedParallelCountBounded(t *testing.T) {
	g, q := skewedInstance(2000, 0, 0) // one region, 4M rows
	opts := Optimized()
	opts.NoNEC = true // count every solution individually
	opts.Workers = 4
	opts.MaxSolutions = 1
	var prof ProfileResult
	opts.Profile = &prof
	n, err := Count(context.Background(), g, q, Homomorphism, opts)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if prof.SearchNodes > 200_000 {
		t.Fatalf("capped count searched %d nodes of a 4M-row region: early termination lost", prof.SearchNodes)
	}
}

// TestStealSplice unit-tests the splitting protocol itself, no scheduler
// involved: halving of the victim's range, chain splicing in region order,
// recursive re-splits, and refusal to steal from a spent range.
func TestStealSplice(t *testing.T) {
	ps := &pipeState{}
	owner := &spanWork{sub: newSpan(), next: 5, hi: 25}
	ps.stealable = append(ps.stealable, owner)

	s1 := ps.steal()
	if s1 == nil || s1.next != 15 || s1.hi != 25 || owner.hi != 15 {
		t.Fatalf("first steal: got %+v, owner hi %d", s1, owner.hi)
	}
	if owner.sub.next != s1.sub {
		t.Fatal("first steal did not splice after the owner's span")
	}
	owner.next = 13 // owner progressed: avail 2, so s1's [15,25) is largest
	s2 := ps.steal()
	if s2 == nil || s2.next != 20 || s2.hi != 25 || s1.hi != 20 {
		t.Fatalf("second steal: got %+v, s1 hi %d", s2, s1.hi)
	}
	if s1.sub.next != s2.sub || s2.sub.next != nil {
		t.Fatal("second steal spliced out of order")
	}
	// Drain the ranges; spent spans must become unstealable.
	owner.next, s1.next, s2.next = owner.hi, s1.hi, s2.hi
	if s := ps.steal(); s != nil {
		t.Fatalf("stole from spent ranges: %+v", s)
	}
	if len(ps.stealable) != 0 {
		t.Fatalf("spent spans not dropped: %d left", len(ps.stealable))
	}
}

// TestPipelineSkewedFirstRowsBounded is the memory-bound regression: one
// region yields >100k rows, and streaming its first 10 must not buffer the
// region. The assertion is on delivered work, via the profile: with a tiny
// row budget, the emitter consumes 10 rows and stops; the workers' merged
// SearchNodes must be a small fraction of the full run's (whole-region
// buffering would search all >100k rows before delivering the first).
// The allocation-side assertion lives in BenchmarkSkewedFirstRows and the
// GOMEMLIMIT-constrained CI step.
func TestPipelineSkewedFirstRowsBounded(t *testing.T) {
	g, q := skewedInstance(340, 4, 2) // region 0 alone: 340² = 115_600 rows
	opts := Optimized()
	opts.NoNEC = true // search every row (NEC would bulk-expand combinatorially)
	opts.Workers = 1
	var full ProfileResult
	opts.Profile = &full
	if _, err := Stream(context.Background(), g, q, Homomorphism, opts, func(Match) bool { return true }); err != nil {
		t.Fatal(err)
	}

	var part ProfileResult
	par := Optimized()
	par.NoNEC = true
	par.Workers = 2
	par.StreamBuffer = 16
	par.Profile = &part
	seen := 0
	if _, err := Stream(context.Background(), g, q, Homomorphism, par, func(Match) bool {
		seen++
		return seen < 10
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Fatalf("saw %d rows, want 10", seen)
	}
	if part.SearchNodes*20 >= full.SearchNodes {
		t.Fatalf("first-10 search effort not bounded: %d of %d search nodes (whole-region buffering?)",
			part.SearchNodes, full.SearchNodes)
	}
}
