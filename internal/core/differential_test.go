package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// bruteForce counts solutions by exhaustive assignment — the reference
// implementation for differential testing. It counts (Mv, Me) pairs: for a
// fixed vertex assignment, each combination of labels on wildcard edges is a
// distinct solution (PredVar sharing respected).
func bruteForce(g *graph.Graph, q *QueryGraph, sem Semantics) int {
	n := len(q.Vertices)
	assign := make([]uint32, n)

	countEdgeCombos := func() int {
		// Constant edges must exist; wildcard edges contribute their label
		// choices, constrained by shared predicate variables.
		type wildEdge struct {
			labels  []uint32
			predVar int
		}
		var wilds []wildEdge
		for _, e := range q.Edges {
			vf, vt := assign[e.From], assign[e.To]
			if !e.Wildcard() {
				if !g.HasEdge(vf, vt, e.Label) {
					return 0
				}
				continue
			}
			labels := g.EdgeLabelsBetween(nil, vf, vt)
			if len(labels) == 0 {
				return 0
			}
			wilds = append(wilds, wildEdge{labels, e.PredVar})
		}
		// Enumerate wildcard label assignments with variable consistency.
		varBind := map[int]uint32{}
		var rec func(i int) int
		rec = func(i int) int {
			if i == len(wilds) {
				return 1
			}
			total := 0
			for _, l := range wilds[i].labels {
				pv := wilds[i].predVar
				if pv >= 0 {
					if b, ok := varBind[pv]; ok {
						if b != l {
							continue
						}
						total += rec(i + 1)
						continue
					}
					varBind[pv] = l
					total += rec(i + 1)
					delete(varBind, pv)
					continue
				}
				total += rec(i + 1)
			}
			return total
		}
		return rec(0)
	}

	var rec func(i int) int
	rec = func(i int) int {
		if i == n {
			return countEdgeCombos()
		}
		qv := q.Vertices[i]
		total := 0
		for v := uint32(0); int(v) < g.NumVertices(); v++ {
			if qv.ID != NoID && qv.ID != v {
				continue
			}
			if !g.HasAllLabels(v, qv.Labels) {
				continue
			}
			if sem == Isomorphism {
				dup := false
				for j := 0; j < i; j++ {
					if assign[j] == v {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
			}
			assign[i] = v
			total += rec(i + 1)
		}
		return total
	}
	return rec(0)
}

// randomData builds a random labeled graph.
func randomData(r *rand.Rand, nV, nL, nEL, nE int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureVertex(uint32(nV - 1))
	for v := 0; v < nV; v++ {
		for l := 0; l < nL; l++ {
			if r.Intn(3) == 0 {
				b.AddVertexLabel(uint32(v), uint32(l))
			}
		}
	}
	for i := 0; i < nE; i++ {
		b.AddEdge(uint32(r.Intn(nV)), uint32(r.Intn(nEL)), uint32(r.Intn(nV)))
	}
	return b.Build()
}

// randomQuery builds a random connected query over the data's label spaces.
func randomQuery(r *rand.Rand, nV, nL, nEL, dataV int) *QueryGraph {
	q := NewQueryGraph()
	for i := 0; i < nV; i++ {
		var labels []uint32
		for l := 0; l < nL; l++ {
			if r.Intn(4) == 0 {
				labels = append(labels, uint32(l))
			}
		}
		id := NoID
		if r.Intn(8) == 0 {
			id = uint32(r.Intn(dataV))
		}
		q.AddVertex(labels, id)
	}
	addEdge := func(from, to int) {
		switch r.Intn(5) {
		case 0:
			q.AddVarEdge(from, to, -1) // anonymous wildcard
		case 1:
			q.AddVarEdge(from, to, r.Intn(2)) // shared-able predicate var
		default:
			q.AddEdge(from, to, uint32(r.Intn(nEL)))
		}
	}
	// Random spanning tree keeps the query connected.
	for i := 1; i < nV; i++ {
		p := r.Intn(i)
		if r.Intn(2) == 0 {
			addEdge(p, i)
		} else {
			addEdge(i, p)
		}
	}
	extra := r.Intn(3)
	for i := 0; i < extra; i++ {
		a, b := r.Intn(nV), r.Intn(nV)
		addEdge(a, b)
	}
	return q
}

// TestDifferentialRandom cross-checks the engine against brute force on
// random graph/query pairs for both semantics and every optimization combo.
func TestDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	combos := allOptCombos()
	for trial := 0; trial < 120; trial++ {
		dataV := 4 + r.Intn(8)
		g := randomData(r, dataV, 3, 3, dataV*2+r.Intn(10))
		qV := 2 + r.Intn(3)
		q := randomQuery(r, qV, 3, 3, dataV)
		for _, sem := range []Semantics{Homomorphism, Isomorphism} {
			want := bruteForce(g, q, sem)
			// Rotate through opt combos to bound runtime while covering all.
			opts := combos[trial%len(combos)]
			got, err := Count(context.Background(), g, q, sem, opts)
			if err != nil {
				t.Fatalf("trial %d sem %v: %v", trial, sem, err)
			}
			if got != want {
				t.Fatalf("trial %d sem %v opts %+v: engine %d, brute force %d\nquery: %+v",
					trial, sem, opts, got, want, q)
			}
			// Also check the fully optimized path every trial, with the NEC
			// reduction both on (the default) and off.
			for _, noNEC := range []bool{false, true} {
				o := Optimized()
				o.NoNEC = noNEC
				got2, err := Count(context.Background(), g, q, sem, o)
				if err != nil {
					t.Fatal(err)
				}
				if got2 != want {
					t.Fatalf("trial %d sem %v optimized (NoNEC=%v): engine %d, brute force %d\nquery: %+v",
						trial, sem, noNEC, got2, want, q)
				}
			}
		}
	}
}

// randomStarQuery builds a hub with nLeaves leaves drawn from a tiny pool of
// leaf templates, so equivalent leaves (and hence NEC classes) occur on most
// trials — the shape TestDifferentialRandom's spanning trees rarely hit.
func randomStarQuery(r *rand.Rand, nLeaves, nL, nEL, dataV int) *QueryGraph {
	q := NewQueryGraph()
	var hubLabels []uint32
	if r.Intn(2) == 0 {
		hubLabels = []uint32{uint32(r.Intn(nL))}
	}
	hub := q.AddVertex(hubLabels, NoID)
	type tmpl struct {
		labels []uint32
		el     uint32
		out    bool
		back   bool
	}
	tmpls := make([]tmpl, 2)
	for i := range tmpls {
		var labels []uint32
		for l := 0; l < nL; l++ {
			if r.Intn(3) == 0 {
				labels = append(labels, uint32(l))
			}
		}
		tmpls[i] = tmpl{labels, uint32(r.Intn(nEL)), r.Intn(2) == 0, r.Intn(4) == 0}
	}
	for i := 0; i < nLeaves; i++ {
		tm := tmpls[r.Intn(len(tmpls))]
		leaf := q.AddVertex(tm.labels, NoID)
		if tm.out {
			q.AddEdge(hub, leaf, tm.el)
		} else {
			q.AddEdge(leaf, hub, tm.el)
		}
		if tm.back {
			q.AddEdge(leaf, hub, uint32((int(tm.el)+1)%nEL))
		}
	}
	return q
}

// TestDifferentialNEC cross-checks the NEC reduction on star-heavy random
// queries: counts against brute force and full solution sets against the
// unreduced matcher, under both semantics.
func TestDifferentialNEC(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	reduced := 0
	for trial := 0; trial < 80; trial++ {
		dataV := 5 + r.Intn(8)
		g := randomData(r, dataV, 3, 3, dataV*2+r.Intn(12))
		q := randomStarQuery(r, 2+r.Intn(3), 3, 3, dataV)
		if reduceNEC(q) != nil {
			reduced++
		}
		for _, sem := range []Semantics{Homomorphism, Isomorphism} {
			want := bruteForce(g, q, sem)
			on := Optimized()
			off := Optimized()
			off.NoNEC = true
			gotOn, err := Count(context.Background(), g, q, sem, on)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			gotOff, err := Count(context.Background(), g, q, sem, off)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if gotOn != want || gotOff != want {
				t.Fatalf("trial %d sem %v: NEC on %d, off %d, brute force %d\nquery: %+v",
					trial, sem, gotOn, gotOff, want, q)
			}
			solsOn, err := Collect(context.Background(), g, q, sem, on)
			if err != nil {
				t.Fatal(err)
			}
			solsOff, err := Collect(context.Background(), g, q, sem, off)
			if err != nil {
				t.Fatal(err)
			}
			a, b := matchKeys(solsOn), matchKeys(solsOff)
			if len(a) != len(b) {
				t.Fatalf("trial %d sem %v: solution sets sized %d vs %d", trial, sem, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d sem %v: solution sets differ at %d: %q vs %q\nquery: %+v",
						trial, sem, i, a[i], b[i], q)
				}
			}
		}
	}
	// The generator exists to exercise the reduction; make sure it does.
	if reduced < 20 {
		t.Fatalf("only %d/80 star trials produced an NEC reduction", reduced)
	}
}

// TestDifferentialParallel cross-checks the parallel driver.
func TestDifferentialParallel(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		dataV := 8 + r.Intn(10)
		g := randomData(r, dataV, 3, 3, dataV*3)
		q := randomQuery(r, 2+r.Intn(3), 3, 3, dataV)
		want := bruteForce(g, q, Homomorphism)
		opts := Optimized()
		opts.Workers = 4
		got, err := Count(context.Background(), g, q, Homomorphism, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: parallel %d, brute force %d\nquery: %+v", trial, got, want, q)
		}
	}
}

// TestDifferentialDenseLabels stresses multi-label vertices (the
// intersection paths in candidate generation).
func TestDifferentialDenseLabels(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		dataV := 6 + r.Intn(6)
		b := graph.NewBuilder()
		b.EnsureVertex(uint32(dataV - 1))
		for v := 0; v < dataV; v++ {
			for l := 0; l < 4; l++ {
				if r.Intn(2) == 0 {
					b.AddVertexLabel(uint32(v), uint32(l))
				}
			}
		}
		for i := 0; i < dataV*3; i++ {
			b.AddEdge(uint32(r.Intn(dataV)), uint32(r.Intn(2)), uint32(r.Intn(dataV)))
		}
		g := b.Build()

		q := NewQueryGraph()
		nQ := 2 + r.Intn(2)
		for i := 0; i < nQ; i++ {
			var labels []uint32
			for l := 0; l < 4; l++ {
				if r.Intn(3) == 0 {
					labels = append(labels, uint32(l))
				}
			}
			q.AddVertex(labels, NoID)
		}
		for i := 1; i < nQ; i++ {
			q.AddEdge(r.Intn(i), i, uint32(r.Intn(2)))
		}
		want := bruteForce(g, q, Homomorphism)
		got, err := Count(context.Background(), g, q, Homomorphism, Optimized())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: engine %d, brute force %d", trial, got, want)
		}
	}
}
