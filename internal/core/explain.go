package core

import (
	"context"

	"repro/internal/graph"
)

// ExplainResult describes how the matcher executed (or would execute) a
// query: the chosen start vertex, the matching order of the first surviving
// candidate region, the cost model's per-position cardinality estimates,
// and the run's effort counters — including the signature filter's
// checked/killed rates. Vertex indices refer to the ORIGINAL query graph:
// when the NEC reduction merged vertices, each order position reports the
// representative's original index.
type ExplainResult struct {
	// StartVertex is the chosen starting query vertex (original index).
	StartVertex int
	// StartCandidates is the size of its refined candidate list.
	StartCandidates int
	// CostOrdered reports whether the statistics-driven cost model ranked
	// the matching order (Opts.CostOrder with usable statistics); false
	// means the paper's candidate-population heuristic did.
	CostOrdered bool
	// Order is the matching order of the first surviving region, as
	// original query vertex indices; Order[0] is the start vertex. A
	// point-shaped query reports just the start vertex.
	Order []int
	// EstRows[i] is the cost model's estimated number of partial solutions
	// after binding Order[i] — the per-position search cardinality the
	// ranking reasoned about. Empty when no region survived exploration.
	EstRows []float64
	// Profile holds the run's effort counters (search nodes, signature
	// checked/killed, NEC statistics), with Solutions filled in.
	Profile ProfileResult
	// Solutions is the number of matches found.
	Solutions int
}

// Explain runs the match sequentially and reports the plan the matcher
// chose together with its effort counters. It is a diagnostic: the run pays
// for full execution (Solutions is exact), so cap it with Opts.MaxSolutions
// when only the plan is of interest.
func Explain(ctx context.Context, g graph.View, q *QueryGraph, sem Semantics, opts Opts) (ExplainResult, error) {
	var er ExplainResult
	if err := q.Validate(); err != nil {
		return er, err
	}
	opts.Workers = 1
	var pr ProfileResult
	opts.Profile = &pr
	m := newMatcher(ctx, g, q, sem, opts)
	st := m.g.Stats()
	er.CostOrdered = opts.CostOrder && st != nil
	orig := func(u int) int {
		if m.red != nil {
			return m.red.repOrig[u]
		}
		return u
	}
	captured := false
	m.onPlan = func(rg *region, plan *searchPlan) {
		// The first surviving region's plan is the one reported: under
		// +REUSE it is the only plan, and without it the later per-region
		// plans differ only through region-local candidate counts.
		if captured {
			return
		}
		captured = true
		er.Order = make([]int, len(plan.order))
		for i, u := range plan.order {
			er.Order[i] = orig(u)
		}
		if st != nil {
			er.EstRows = m.orderCosts(rg, plan, st)
		}
	}
	n, err := m.run(nil)
	er.StartVertex = orig(pr.StartVertex)
	er.StartCandidates = pr.StartCandidates
	if !captured {
		er.Order = []int{er.StartVertex}
	}
	pr.Solutions = n
	er.Profile = pr
	er.Solutions = n
	return er, err
}
