package core

import "repro/internal/cache"

// AddFootprint widens fp to cover everything matching q can read from the
// data graph: the label sets constraining its vertices and the edge labels
// of its constant-predicate edges. A wildcard (variable-predicate) edge
// reads the whole adjacency of its endpoints, so it widens the predicate
// dimension entirely — any committed edge change could alter its matches.
//
// Vertex ID pins and pushed-down predicates add nothing: a pin resolves
// through the append-only vertex dictionary (the ID never changes meaning)
// and a pushed filter reads only the candidate's term, which is immutable
// once interned. What CAN change for a pinned or filtered vertex — its
// labels and its adjacency — is covered by the label/predicate dimensions
// above.
func (q *QueryGraph) AddFootprint(fp *cache.Footprint) {
	for i := range q.Vertices {
		for _, l := range q.Vertices[i].Labels {
			fp.AddLabel(l)
		}
	}
	for _, e := range q.Edges {
		if e.Wildcard() {
			fp.WidenPreds()
			continue
		}
		fp.AddPred(e.Label)
	}
}
