package core

import (
	"context"
	"math/rand"
	"testing"
)

// FuzzResumePoints drives the resumable cursor under fuzzer-chosen
// pause/resume schedules over randomized graph/query instances and requires
// byte-identical results to the uninterrupted recursive enumeration — the
// suspend/resume invariants of the explicit-stack search under adversarial
// schedules (suspend inside wildcard chains, NEC expansions, between
// regions, after every row). The corpus seeds cover both semantics and the
// NEC reduction; the fuzzer mutates the instance seed and the schedule
// bytes freely.
func FuzzResumePoints(f *testing.F) {
	f.Add(int64(1), false, false, []byte{1})
	f.Add(int64(2), true, false, []byte{7, 1, 3})
	f.Add(int64(3), false, true, []byte{2, 2, 9, 1})
	f.Add(int64(42), true, true, []byte{1, 13})
	f.Add(int64(99), false, false, []byte{})
	f.Fuzz(func(t *testing.T, seed int64, iso, noNEC bool, sched []byte) {
		r := rand.New(rand.NewSource(seed))
		dataV := 4 + r.Intn(8)
		g := randomData(r, dataV, 3, 3, dataV*2+r.Intn(10))
		var q *QueryGraph
		if seed%2 == 0 {
			// Star-heavy shapes exercise the NEC expansion frames.
			q = randomStarQuery(r, 2+r.Intn(3), 3, 3, dataV)
		} else {
			q = randomQuery(r, 2+r.Intn(3), 3, 3, dataV)
		}
		sem := Homomorphism
		if iso {
			sem = Isomorphism
		}
		opts := Optimized()
		opts.NoNEC = noNEC
		opts.Workers = 1

		var want []string
		if _, err := Stream(context.Background(), g, q, sem, opts, func(mt Match) bool {
			want = append(want, matchKey(mt))
			return true
		}); err != nil {
			t.Fatal(err)
		}

		var got []string
		c, err := NewCursor(context.Background(), g, q, sem, opts, func(mt Match) bool {
			got = append(got, matchKey(mt))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; ; i++ {
			quota := 0
			if len(sched) > 0 {
				quota = int(sched[i%len(sched)])%16 + 1
			}
			n, done, err := c.Resume(quota)
			if err != nil {
				t.Fatal(err)
			}
			total += n
			if done {
				break
			}
			if quota > 0 && n == 0 {
				t.Fatalf("suspended cursor made no progress (quota %d after %d rows)", quota, total)
			}
		}
		if len(got) != len(want) || total != len(want) {
			t.Fatalf("cursor %d rows (reported %d), recursive %d", len(got), total, len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("row %d diverged:\ncursor    %s\nrecursive %s", i, got[i], want[i])
			}
		}
	})
}
