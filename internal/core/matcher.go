package core

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/intset"
)

// Match is one solution: the vertex mapping Mv and, for every query edge,
// the bound data edge label (Me). For constant-label edges the binding is
// the constant itself. The slices are reused between callbacks — copy them
// if they must outlive the call.
type Match struct {
	Vertices   []uint32
	EdgeLabels []uint32
}

// Clone deep-copies the match.
func (m Match) Clone() Match {
	return Match{
		Vertices:   append([]uint32(nil), m.Vertices...),
		EdgeLabels: append([]uint32(nil), m.EdgeLabels...),
	}
}

// Visitor receives each solution; returning false stops the search.
type Visitor func(Match) bool

// Stream enumerates all matches of q in g, invoking visit for each in the
// deterministic sequential region order. It returns the number of solutions
// visited. With opts.Workers > 1 the candidate regions are searched by the
// ordered parallel region pipeline through resumable cursors, whose reorder
// stage delivers rows in exactly the order a sequential run would produce
// (opts.StreamBuffer bounds the not-yet-delivered rows in flight — per-row
// backpressure that suspends workers mid-region); the visitor always runs
// on the calling goroutine. Cancelling ctx abandons the candidate regions
// not yet emitted and returns ctx.Err(); a visitor returning false stops
// cleanly with a nil error, and in the parallel case abandons the work
// beyond the row window just like MaxSolutions does.
func Stream(ctx context.Context, g graph.View, q *QueryGraph, sem Semantics, opts Opts, visit Visitor) (int, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	m := newMatcher(ctx, g, q, sem, opts)
	if opts.Workers > 1 {
		return m.runPipeline(visit)
	}
	return m.run(visit)
}

// Collect enumerates all matches and returns them as deep copies, always in
// the sequential enumeration order. With opts.Workers > 1 the candidate
// regions are processed by the same ordered pipeline that backs Stream, so
// a parallel Collect — including one capped by MaxSolutions — returns
// exactly the rows and order of a sequential one. Cancelling ctx abandons
// the remaining work and returns ctx.Err() along with the rows emitted
// before the cancellation took effect.
func Collect(ctx context.Context, g graph.View, q *QueryGraph, sem Semantics, opts Opts) ([]Match, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m := newMatcher(ctx, g, q, sem, opts)
	var out []Match
	if opts.Workers > 1 {
		// Pipeline rows are already deep copies owned by the emitter.
		_, err := m.runPipeline(func(mt Match) bool {
			out = append(out, mt)
			return true
		})
		return out, err
	}
	_, err := m.run(func(mt Match) bool {
		out = append(out, mt.Clone())
		return true
	})
	return out, err
}

// Count returns the number of matches without materializing them. With
// opts.Workers > 1 the candidate regions are counted by the parallel
// pipeline with per-batch totals summed in region order, so a MaxSolutions
// cap clamps identically to a sequential count. Counting runs with no
// visitor, which lets the NEC reduction total equivalence-class expansions
// combinatorially instead of enumerating them. Cancelling ctx abandons the
// remaining work and returns ctx.Err().
func Count(ctx context.Context, g graph.View, q *QueryGraph, sem Semantics, opts Opts) (int, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	m := newMatcher(ctx, g, q, sem, opts)
	if opts.Workers > 1 {
		return m.runPipeline(nil)
	}
	return m.run(nil)
}

// nlfReq is one neighborhood-label-frequency requirement of a query vertex:
// the data vertex must have at least count neighbors in direction dir over
// edge label el (NoID = any) carrying label vl (NoID = any).
type nlfReq struct {
	dir   graph.Dir
	el    uint32
	vl    uint32
	count int
}

// matcher holds the query-global immutable state of one match run.
type matcher struct {
	ctx  context.Context
	g    graph.View
	q    *QueryGraph // the graph being searched (NEC-reduced when red != nil)
	sem  Semantics
	opts Opts

	// red is the NEC reduction in effect, or nil. When non-nil, q is the
	// reduced graph; candidate regions, matching orders, and the search all
	// operate on it, and solutions are expanded back into the original
	// query's vertex space at emit time.
	red *necReduction

	adjEdges [][]int // per query vertex: incident edge indices

	// Query tree (built once per run from the chosen start vertex).
	start      int
	parent     []int   // tree parent per query vertex (-1 for start)
	parentEdge []int   // edge index connecting parent -> vertex (-1 for start)
	children   [][]int // tree children per query vertex
	bfsOrder   []int
	nonTree    []int // non-tree edge indices

	nlf     [][]nlfReq // per query vertex
	degOut  []int      // per query vertex: required out-degree (iso) or #out types (hom)
	degIn   []int
	qOutDeg []int // true query out/in degree per vertex (iso filter)
	qInDeg  []int

	// sigMask holds, per query vertex, the required neighborhood-signature
	// bits: the OR of graph.SignatureBit over every fully concrete
	// (direction, edge label, neighbor label) requirement. A data vertex
	// whose signature is missing any required bit cannot match.
	sigMask []uint64

	// Signature-filter profile counters. They live on the matcher as atomics
	// (not on per-worker profiles) because passFilters runs on every worker
	// against the shared matcher; they are folded into opts.Profile once at
	// the end of a run, and only counted when profiling is on.
	sigChecked atomic.Int64
	sigKilled  atomic.Int64

	// onPlan, when non-nil, observes each freshly built matching order with
	// its region — the Explain capture hook. Sequential runs only.
	onPlan func(*region, *searchPlan)
}

func newMatcher(ctx context.Context, g graph.View, q *QueryGraph, sem Semantics, opts Opts) *matcher {
	if ctx == nil {
		ctx = context.Background()
	}
	m := &matcher{ctx: ctx, g: g, q: q, sem: sem, opts: opts}
	if !opts.NoNEC {
		if red := reduceNEC(q); red != nil {
			m.red = red
			m.q = red.reduced
		}
	}
	m.adjEdges = m.q.adjacentEdges()
	m.buildFilters()
	return m
}

// buildFilters precomputes the NLF requirements and degree thresholds.
//
// Under an NEC reduction the thresholds are computed from the ORIGINAL query
// graph and projected onto the reduced vertices: a class neighbor (hub) keeps
// the full strength of its k member edges (under isomorphism it must have k
// distinct neighbors of the member type, not one), and a representative's
// constraints equal any member's, since members are indistinguishable.
func (m *matcher) buildFilters() {
	src, srcAdj := m.q, m.adjEdges
	if m.red != nil {
		src = m.red.orig
		srcAdj = src.adjacentEdges()
	}
	n := len(src.Vertices)
	nlf := make([][]nlfReq, n)
	sig := make([]uint64, n)
	degOut := make([]int, n)
	degIn := make([]int, n)
	qOutDeg := make([]int, n)
	qInDeg := make([]int, n)

	type reqKey struct {
		dir graph.Dir
		el  uint32
		vl  uint32
	}
	for u := 0; u < n; u++ {
		counts := make(map[reqKey]int)
		for _, ei := range srcAdj[u] {
			e := src.Edges[ei]
			endpoints := [][2]int{}
			if e.From == u {
				endpoints = append(endpoints, [2]int{int(graph.Out), e.To})
			}
			if e.To == u {
				endpoints = append(endpoints, [2]int{int(graph.In), e.From})
			}
			for _, ep := range endpoints {
				dir, nb := graph.Dir(ep[0]), ep[1]
				nbLabels := src.Vertices[nb].Labels
				if len(nbLabels) == 0 {
					counts[reqKey{dir, e.Label, NoID}]++
					continue
				}
				for _, l := range nbLabels {
					counts[reqKey{dir, e.Label, l}]++
				}
			}
		}
		for k, c := range counts {
			if m.sem == Homomorphism {
				// Weakened filter: at least one neighbor per distinct type
				// (paper §2.2, "Modifying TurboISO for e-Graph
				// Homomorphism").
				c = 1
			}
			nlf[u] = append(nlf[u], nlfReq{k.dir, k.el, k.vl, c})
		}
		sort.Slice(nlf[u], func(i, j int) bool { // determinism
			a, b := nlf[u][i], nlf[u][j]
			if a.dir != b.dir {
				return a.dir < b.dir
			}
			if a.el != b.el {
				return a.el < b.el
			}
			return a.vl < b.vl
		})
		// Signature mask: only fully concrete requirements map to bits —
		// exactly the triples the data-side signatures are built from.
		for _, r := range nlf[u] {
			if r.el != NoID && r.vl != NoID {
				sig[u] |= graph.SignatureBit(r.dir, r.el, r.vl)
			}
		}

		// Degree thresholds.
		outTypes := map[reqKey]bool{}
		inTypes := map[reqKey]bool{}
		for _, ei := range srcAdj[u] {
			e := src.Edges[ei]
			if e.From == u {
				qOutDeg[u]++
				outTypes[reqKey{graph.Out, e.Label, 0}] = true
			}
			if e.To == u {
				qInDeg[u]++
				inTypes[reqKey{graph.In, e.Label, 0}] = true
			}
		}
		if m.sem == Isomorphism {
			degOut[u] = qOutDeg[u]
			degIn[u] = qInDeg[u]
		} else {
			// Weakened: at least as many neighbors as distinct neighbor
			// types in each direction.
			degOut[u] = len(outTypes)
			degIn[u] = len(inTypes)
		}
	}

	if m.red == nil {
		m.nlf, m.degOut, m.degIn, m.qOutDeg, m.qInDeg = nlf, degOut, degIn, qOutDeg, qInDeg
		m.sigMask = sig
		return
	}
	rn := len(m.q.Vertices)
	m.nlf = make([][]nlfReq, rn)
	m.sigMask = make([]uint64, rn)
	m.degOut = make([]int, rn)
	m.degIn = make([]int, rn)
	m.qOutDeg = make([]int, rn)
	m.qInDeg = make([]int, rn)
	for rv := 0; rv < rn; rv++ {
		ov := m.red.repOrig[rv]
		m.nlf[rv] = nlf[ov]
		m.sigMask[rv] = sig[ov]
		m.degOut[rv] = degOut[ov]
		m.degIn[rv] = degIn[ov]
		m.qOutDeg[rv] = qOutDeg[ov]
		m.qInDeg[rv] = qInDeg[ov]
	}
}

// passFilters applies the static candidate tests for query vertex u against
// data vertex v: ID pin, label subset, pushed-down predicate, degree filter,
// NLF filter.
func (m *matcher) passFilters(u int, v uint32) bool {
	qv := &m.q.Vertices[u]
	if qv.ID != NoID && qv.ID != v {
		return false
	}
	if !m.opts.NoSignature {
		if mask := m.sigMask[u]; mask != 0 {
			if m.opts.Profile != nil {
				m.sigChecked.Add(1)
			}
			if m.g.Signature(v)&mask != mask {
				if m.opts.Profile != nil {
					m.sigKilled.Add(1)
				}
				return false
			}
		}
	}
	if !m.g.HasAllLabels(v, qv.Labels) {
		return false
	}
	if qv.Pred != nil && !qv.Pred(v) {
		return false
	}
	if !m.opts.NoDegree {
		if m.g.Degree(v, graph.Out) < m.degOut[u] || m.g.Degree(v, graph.In) < m.degIn[u] {
			return false
		}
	}
	if !m.opts.NoNLF && !m.nlfFilter(u, v) {
		return false
	}
	return true
}

func (m *matcher) nlfFilter(u int, v uint32) bool {
	for _, r := range m.nlf[u] {
		var have int
		switch {
		case r.el != NoID && r.vl != NoID:
			have = m.g.GroupSize(v, r.dir, r.el, r.vl)
		case r.el != NoID:
			have = m.g.CountEdgeLabel(v, r.dir, r.el)
		case r.vl != NoID:
			have = m.g.CountVertexLabel(v, r.dir, r.vl)
		default:
			have = m.g.Degree(v, r.dir)
		}
		if have < r.count {
			return false
		}
	}
	return true
}

// freqEstimate bounds the number of start candidates for u from above — the
// rough rank used by ChooseStartQueryVertex before top-k refinement, read
// straight from the precomputed graph statistics. The minimum runs over the
// exact per-label vertex counts AND the distinct subject/object counts of
// every incident constant edge, so a labeled vertex with a rare predicate
// now ranks by the predicate, which the label-only estimate used to miss.
// The result must stay an upper bound on the refined candidate list:
// startCandidates skips refining a vertex whose estimate already exceeds
// the best list.
func (m *matcher) freqEstimate(u int) int {
	qv := &m.q.Vertices[u]
	if qv.ID != NoID {
		return 1
	}
	st := m.g.Stats()
	est := st.Vertices
	for _, l := range qv.Labels {
		if n := st.LabelCount(l); n < est {
			est = n
		}
	}
	// Predicate index over incident constant edges (paper §4.2,
	// ChooseStartQueryVertex): a candidate for u must appear as subject
	// (resp. object) of every constant outgoing (resp. incoming) edge.
	for _, ei := range m.adjEdges[u] {
		e := m.q.Edges[ei]
		if e.Wildcard() {
			continue
		}
		var n int
		if e.From == u {
			n = st.SubjectCount(e.Label)
		} else {
			n = st.ObjectCount(e.Label)
		}
		if n < est {
			est = n
		}
	}
	return est
}

// startCandidates picks the starting query vertex (lowest refined candidate
// count among the top-k rank-scored vertices) and returns it with its full
// filtered candidate list.
//
// Refinement is guarded twice to keep the choice O(best list), not O(data):
// a ranked vertex whose rough frequency estimate — an upper bound on its
// refined list — already exceeds the best refined list is skipped without
// materialization, and ties on list length are broken by the candidates'
// total data degree, a proxy for the region exploration the start vertex
// will trigger (this is what makes a pinned constant beat a pinned class
// vertex under the direct transformation).
func (m *matcher) startCandidates() (int, []uint32) {
	n := len(m.q.Vertices)
	type scored struct {
		u     int
		est   int
		score float64
	}
	ranked := make([]scored, 0, n)
	for u := 0; u < n; u++ {
		// A deferred NEC representative is never bound by the search, so it
		// cannot root the exploration. Its class neighbor is always
		// unmerged (a vertex with two or more class members as neighbors
		// fails the single-neighbor signature), so candidates remain.
		if m.red != nil && m.red.classOf[u] >= 0 {
			continue
		}
		deg := len(m.adjEdges[u])
		if deg == 0 {
			deg = 1
		}
		est := m.freqEstimate(u)
		ranked = append(ranked, scored{u, est, float64(est) / float64(deg)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score < ranked[j].score
		}
		return ranked[i].u < ranked[j].u
	})
	k := m.opts.topK()
	if k > len(ranked) {
		k = len(ranked)
	}

	best := -1
	var bestList []uint32
	bestDeg := 0
	for i := 0; i < k; i++ {
		if best != -1 && ranked[i].est > len(bestList) {
			continue // cannot beat the current best list
		}
		u := ranked[i].u
		list := m.materializeCandidates(u)
		deg := m.totalDegree(list)
		if best == -1 || len(list) < len(bestList) ||
			(len(list) == len(bestList) && deg < bestDeg) {
			best, bestList, bestDeg = u, list, deg
		}
		if len(bestList) == 0 {
			break // no candidates at all: empty result, stop refining
		}
	}
	return best, bestList
}

// totalDegree sums the data degrees of the candidates — the tie-break
// metric of startCandidates. The scan is capped: ties only matter between
// small lists (typically pinned vertices), and a capped sample keeps the
// start-vertex choice from costing O(data) on large label classes.
func (m *matcher) totalDegree(list []uint32) int {
	const sampleCap = 64
	if len(list) > sampleCap {
		list = list[:sampleCap]
	}
	d := 0
	for _, v := range list {
		d += m.g.Degree(v, graph.Out) + m.g.Degree(v, graph.In)
	}
	return d
}

// materializeCandidates builds the filtered candidate list for query vertex
// u from the best available index.
func (m *matcher) materializeCandidates(u int) []uint32 {
	qv := &m.q.Vertices[u]
	var base []uint32
	switch {
	case qv.ID != NoID:
		if int(qv.ID) < m.g.NumVertices() && m.passFilters(u, qv.ID) {
			return []uint32{qv.ID}
		}
		return nil
	case len(qv.Labels) > 0:
		sets := make([][]uint32, len(qv.Labels))
		for i, l := range qv.Labels {
			sets[i] = m.g.VerticesWithLabel(l)
		}
		base = intset.IntersectK(nil, sets...)
	default:
		// Predicate index: smallest subject/object list among incident
		// constant-label edges.
		for _, ei := range m.adjEdges[u] {
			e := m.q.Edges[ei]
			if e.Wildcard() {
				continue
			}
			var list []uint32
			if e.From == u {
				list = m.g.SubjectsOf(e.Label)
			} else {
				list = m.g.ObjectsOf(e.Label)
			}
			if base == nil || len(list) < len(base) {
				base = list
			}
		}
		if base == nil {
			// Fully unconstrained vertex: every data vertex qualifies.
			base = make([]uint32, m.g.NumVertices())
			for i := range base {
				base[i] = uint32(i)
			}
		}
	}
	out := make([]uint32, 0, len(base))
	for _, v := range base {
		if m.passFilters(u, v) {
			out = append(out, v)
		}
	}
	return out
}

// buildQueryTree runs the BFS of WriteQueryTree from the chosen start
// vertex, recording tree parents, tree edges, and non-tree edges.
func (m *matcher) buildQueryTree(start int) {
	n := len(m.q.Vertices)
	m.start = start
	m.parent = make([]int, n)
	m.parentEdge = make([]int, n)
	m.children = make([][]int, n)
	m.bfsOrder = m.bfsOrder[:0]
	m.nonTree = m.nonTree[:0]
	for i := range m.parent {
		m.parent[i] = -1
		m.parentEdge[i] = -1
	}
	visited := make([]bool, n)
	treeEdge := make([]bool, len(m.q.Edges))
	visited[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		m.bfsOrder = append(m.bfsOrder, u)
		for _, ei := range m.adjEdges[u] {
			e := m.q.Edges[ei]
			w := e.To
			if w == u {
				w = e.From
			}
			if w == u || visited[w] {
				continue
			}
			visited[w] = true
			treeEdge[ei] = true
			m.parent[w] = u
			m.parentEdge[w] = ei
			m.children[u] = append(m.children[u], w)
			queue = append(queue, w)
		}
	}
	for ei := range m.q.Edges {
		if !treeEdge[ei] {
			m.nonTree = append(m.nonTree, ei)
		}
	}
}

// treeEdgeDir returns the direction of u's parent edge as seen from the
// parent: Out when the edge points parent -> u.
func (m *matcher) treeEdgeDir(u int) graph.Dir {
	e := m.q.Edges[m.parentEdge[u]]
	if e.From == m.parent[u] {
		return graph.Out
	}
	return graph.In
}

// childCandidates appends to dst the filtered candidates for tree child c
// reachable from the data vertex v matched to c's parent.
func (m *matcher) childCandidates(dst []uint32, c int, v uint32) []uint32 {
	e := m.q.Edges[m.parentEdge[c]]
	dir := m.treeEdgeDir(c)
	qc := &m.q.Vertices[c]

	// Pinned child: a direct edge-existence test beats list generation.
	if qc.ID != NoID {
		if int(qc.ID) >= m.g.NumVertices() {
			return dst
		}
		ok := false
		if e.Wildcard() {
			if dir == graph.Out {
				ok = m.g.HasEdge(v, qc.ID, graph.NoLabel)
			} else {
				ok = m.g.HasEdge(qc.ID, v, graph.NoLabel)
			}
		} else {
			if dir == graph.Out {
				ok = m.g.HasEdge(v, qc.ID, e.Label)
			} else {
				ok = m.g.HasEdge(qc.ID, v, e.Label)
			}
		}
		if ok && m.passFilters(c, qc.ID) {
			dst = append(dst, qc.ID)
		}
		return dst
	}

	base := m.adjacentSet(nil, v, dir, e.Label, qc.Labels)
	for _, w := range base {
		if m.passFilters(c, w) {
			dst = append(dst, w)
		}
	}
	return dst
}

// adjacentSet appends to dst the neighbors of v in direction dir matching
// edge label el (NoID = any) and carrying all of labels (paper §4.2,
// ExploreCandidateRegion's inductive case: intersect per-label groups,
// union when information is blank).
func (m *matcher) adjacentSet(dst []uint32, v uint32, dir graph.Dir, el uint32, labels []uint32) []uint32 {
	switch {
	case el != NoID && len(labels) == 1:
		return append(dst, m.g.Adj(v, dir, el, labels[0])...)
	case el != NoID && len(labels) > 1:
		sets := make([][]uint32, len(labels))
		for i, l := range labels {
			sets[i] = m.g.Adj(v, dir, el, l)
		}
		return intset.IntersectK(dst, sets...)
	case el != NoID:
		return m.g.AdjEdgeLabel(dst, v, dir, el)
	case len(labels) == 1:
		return m.g.AdjVertexLabel(dst, v, dir, labels[0])
	case len(labels) > 1:
		var tmp []uint32
		sets := make([][]uint32, len(labels))
		for i, l := range labels {
			start := len(tmp)
			tmp = m.g.AdjVertexLabel(tmp, v, dir, l)
			sets[i] = tmp[start:]
		}
		return intset.IntersectK(dst, sets...)
	default:
		return m.g.AdjAny(dst, v, dir)
	}
}
