package core

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the NEC (Neighborhood Equivalence Class) query
// reduction TurboHOM++ inherits from TurboISO (paper §2.2, "Modifying
// TurboISO for e-Graph Homomorphism"): query vertices that are
// indistinguishable — same label set, no pin, no pushed-down predicate, and
// an identical multiset of constant-label edges to one shared neighbor —
// are merged into a single representative vertex. The matcher then searches
// the reduced graph and expands each reduced solution by combination:
// independent Cartesian binding under homomorphism (class members bind
// freely, paper §2.2 notes the reduction is *more* powerful there) and
// injective k-permutations under isomorphism. A star pattern with k
// equivalent leaves costs one search path per region instead of |C|^k.
//
// Mergeability is deliberately restricted to single-neighbor classes: every
// constraint on a class member is then resolved no later than the
// representative's position in the matching order (its lone neighbor is its
// query-tree parent, and parallel edges to the parent are non-tree edges
// resolved at the child), so the class candidate set snapshotted there is
// exact and deferred expansion at emit time is sound. Classes spanning
// multiple neighbors would need cross-position re-validation and are left
// unmerged.

// necClass is one nontrivial equivalence class. members lists the original
// query vertex indices in ascending order; members[0] is the representative
// that survives into the reduced graph.
type necClass struct {
	members []int
}

// necReduction maps between an original query graph and its NEC-reduced
// form.
type necReduction struct {
	orig    *QueryGraph
	reduced *QueryGraph
	classes []necClass

	vertexMap []int // original vertex -> reduced vertex (members map to their rep)
	edgeMap   []int // original edge -> reduced edge, -1 for dropped member edges
	repOrig   []int // reduced vertex -> the original vertex it was built from
	classOf   []int // reduced vertex -> class index, -1 when unmerged
	classSize []int // reduced vertex -> member count (1 when unmerged)
}

// necSignature returns the equivalence-class key of query vertex u, or ""
// when u is not mergeable. Two vertices merge iff they produce the same
// non-empty signature: same sorted label set and the same multiset of
// (direction, edge label) constant edges, all incident to one shared
// neighbor.
func necSignature(q *QueryGraph, adj [][]int, u int) string {
	qv := &q.Vertices[u]
	if qv.ID != NoID || qv.Pred != nil || len(adj[u]) == 0 {
		return ""
	}
	neighbor := -1
	parts := make([]string, 0, len(adj[u]))
	for _, ei := range adj[u] {
		e := q.Edges[ei]
		// Wildcard edges bind their own Me label (and may share predicate
		// variables); self-loops constrain the vertex against itself. Both
		// break the "identical constraints" premise of deferred expansion.
		if e.Wildcard() || e.PredVar >= 0 || e.From == e.To {
			return ""
		}
		w, dir := e.To, byte('>')
		if e.To == u {
			w, dir = e.From, '<'
		}
		if neighbor == -1 {
			neighbor = w
		} else if neighbor != w {
			return ""
		}
		parts = append(parts, fmt.Sprintf("%c%d", dir, e.Label))
	}
	sort.Strings(parts)
	labels := append([]uint32(nil), qv.Labels...)
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "n%d L%v E%v", neighbor, labels, parts)
	return b.String()
}

// reduceNEC partitions q's vertices into neighborhood equivalence classes
// and builds the reduced query graph. It returns nil when no class has two
// or more members (the reduction would be the identity).
func reduceNEC(q *QueryGraph) *necReduction {
	n := len(q.Vertices)
	if n < 3 {
		// A two-vertex class would have to be mutually adjacent (the query
		// is connected), which necSignature rejects.
		return nil
	}
	adj := q.adjacentEdges()
	groups := map[string][]int{}
	for u := 0; u < n; u++ {
		if sig := necSignature(q, adj, u); sig != "" {
			groups[sig] = append(groups[sig], u)
		}
	}

	var classes []necClass
	drop := make([]bool, n)
	classIdxOf := make([]int, n)
	for i := range classIdxOf {
		classIdxOf[i] = -1
	}
	// Deterministic class order: by smallest member index. Members are
	// already ascending (the vertex loop above runs in order).
	var sigs []string
	for sig, mem := range groups {
		if len(mem) >= 2 {
			sigs = append(sigs, sig)
		}
	}
	sort.Slice(sigs, func(i, j int) bool { return groups[sigs[i]][0] < groups[sigs[j]][0] })
	for _, sig := range sigs {
		mem := groups[sig]
		ci := len(classes)
		classes = append(classes, necClass{members: mem})
		for _, u := range mem {
			classIdxOf[u] = ci
		}
		for _, u := range mem[1:] {
			drop[u] = true
		}
	}
	if len(classes) == 0 {
		return nil
	}

	red := &necReduction{
		orig:      q,
		reduced:   NewQueryGraph(),
		classes:   classes,
		vertexMap: make([]int, n),
		edgeMap:   make([]int, len(q.Edges)),
	}
	for u := 0; u < n; u++ {
		if drop[u] {
			continue
		}
		rv := len(red.reduced.Vertices)
		red.reduced.Vertices = append(red.reduced.Vertices, q.Vertices[u])
		red.vertexMap[u] = rv
		red.repOrig = append(red.repOrig, u)
		if ci := classIdxOf[u]; ci >= 0 {
			red.classOf = append(red.classOf, ci)
			red.classSize = append(red.classSize, len(classes[ci].members))
		} else {
			red.classOf = append(red.classOf, -1)
			red.classSize = append(red.classSize, 1)
		}
	}
	for _, cls := range classes {
		rep := red.vertexMap[cls.members[0]]
		for _, u := range cls.members[1:] {
			red.vertexMap[u] = rep
		}
	}
	for i, e := range q.Edges {
		if drop[e.From] || drop[e.To] {
			// A dropped member's edges are re-created per expansion; they
			// are constant-label by construction, so their Me binding is
			// the constant itself.
			red.edgeMap[i] = -1
			continue
		}
		red.edgeMap[i] = len(red.reduced.Edges)
		red.reduced.Edges = append(red.reduced.Edges, QueryEdge{
			From:    red.vertexMap[e.From],
			To:      red.vertexMap[e.To],
			Label:   e.Label,
			PredVar: e.PredVar,
		})
	}
	return red
}

// mergedVertices reports how many query vertices the reduction eliminated.
func (r *necReduction) mergedVertices() int {
	n := 0
	for _, c := range r.classes {
		n += len(c.members) - 1
	}
	return n
}
