package core

import (
	"context"
	"sort"
	"testing"

	"repro/internal/graph"
)

// starData builds hubs labeled lA, each pointing at its own set of lB
// leaves over edge label ea. fanouts[i] is hub i's leaf count.
func starData(fanouts []int) *graph.Graph {
	b := graph.NewBuilder()
	next := uint32(len(fanouts))
	for h, f := range fanouts {
		b.AddVertexLabel(uint32(h), lA)
		for i := 0; i < f; i++ {
			b.AddVertexLabel(next, lB)
			b.AddEdge(uint32(h), ea, next)
			next++
		}
	}
	return b.Build()
}

// starQuery builds a hub with k equivalent leaf children — the NEC shape.
func starQuery(k int) *QueryGraph {
	q := NewQueryGraph()
	hub := q.AddVertex([]uint32{lA}, NoID)
	for i := 0; i < k; i++ {
		leaf := q.AddVertex([]uint32{lB}, NoID)
		q.AddEdge(hub, leaf, ea)
	}
	return q
}

func TestNECReduceStar(t *testing.T) {
	q := starQuery(3)
	red := reduceNEC(q)
	if red == nil {
		t.Fatal("star query not reduced")
	}
	if len(red.classes) != 1 {
		t.Fatalf("classes = %d, want 1", len(red.classes))
	}
	if got := red.classes[0].members; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("members = %v, want [1 2 3]", got)
	}
	if len(red.reduced.Vertices) != 2 || len(red.reduced.Edges) != 1 {
		t.Fatalf("reduced = %d vertices / %d edges, want 2/1",
			len(red.reduced.Vertices), len(red.reduced.Edges))
	}
	if red.mergedVertices() != 2 {
		t.Fatalf("merged = %d, want 2", red.mergedVertices())
	}
	// All three leaves map to the representative.
	rep := red.vertexMap[1]
	if red.vertexMap[2] != rep || red.vertexMap[3] != rep {
		t.Fatalf("vertexMap = %v, members should share the rep", red.vertexMap)
	}
	if red.classSize[rep] != 3 || red.classOf[rep] < 0 {
		t.Fatalf("rep classSize = %d classOf = %d", red.classSize[rep], red.classOf[rep])
	}
	// Dropped member edges carry their constant label.
	if red.edgeMap[1] != -1 || red.edgeMap[2] != -1 {
		t.Fatalf("edgeMap = %v, member edges should be dropped", red.edgeMap)
	}
}

// TestNECReduceExclusions pins down every condition that must block a merge.
func TestNECReduceExclusions(t *testing.T) {
	// Direction matters: hub->x vs y->hub are not equivalent.
	q := NewQueryGraph()
	hub := q.AddVertex([]uint32{lA}, NoID)
	x := q.AddVertex([]uint32{lB}, NoID)
	y := q.AddVertex([]uint32{lB}, NoID)
	q.AddEdge(hub, x, ea)
	q.AddEdge(y, hub, ea)
	if reduceNEC(q) != nil {
		t.Error("merged leaves with opposite edge directions")
	}

	// Different edge labels.
	q = NewQueryGraph()
	hub = q.AddVertex([]uint32{lA}, NoID)
	x = q.AddVertex([]uint32{lB}, NoID)
	y = q.AddVertex([]uint32{lB}, NoID)
	q.AddEdge(hub, x, ea)
	q.AddEdge(hub, y, eb)
	if reduceNEC(q) != nil {
		t.Error("merged leaves with different edge labels")
	}

	// Different label sets.
	q = NewQueryGraph()
	hub = q.AddVertex([]uint32{lA}, NoID)
	x = q.AddVertex([]uint32{lB}, NoID)
	y = q.AddVertex([]uint32{lC}, NoID)
	q.AddEdge(hub, x, ea)
	q.AddEdge(hub, y, ea)
	if reduceNEC(q) != nil {
		t.Error("merged leaves with different labels")
	}

	// A pinned member never merges.
	q = starQuery(2)
	q.Vertices[1].ID = 7
	if reduceNEC(q) != nil {
		t.Error("merged a pinned vertex")
	}

	// A pushed-down predicate never merges (closures are incomparable).
	q = starQuery(2)
	q.Vertices[2].Pred = func(uint32) bool { return true }
	if reduceNEC(q) != nil {
		t.Error("merged a vertex with a predicate")
	}

	// Wildcard edges bind their own labels; members must stay separate.
	q = NewQueryGraph()
	hub = q.AddVertex([]uint32{lA}, NoID)
	x = q.AddVertex([]uint32{lB}, NoID)
	y = q.AddVertex([]uint32{lB}, NoID)
	q.AddVarEdge(hub, x, -1)
	q.AddVarEdge(hub, y, -1)
	if reduceNEC(q) != nil {
		t.Error("merged wildcard-edge leaves")
	}

	// Label-set order must not matter.
	q = NewQueryGraph()
	hub = q.AddVertex([]uint32{lA}, NoID)
	x = q.AddVertex([]uint32{lB, lC}, NoID)
	y = q.AddVertex([]uint32{lC, lB}, NoID)
	q.AddEdge(hub, x, ea)
	q.AddEdge(hub, y, ea)
	if red := reduceNEC(q); red == nil || len(red.classes) != 1 {
		t.Error("label-set order blocked a merge")
	}
}

// TestNECStarCounts checks the expansion against brute force on stars with
// skewed fanouts, under both semantics and every worker count.
func TestNECStarCounts(t *testing.T) {
	g := starData([]int{4, 2, 0, 1, 5})
	for k := 2; k <= 4; k++ {
		q := starQuery(k)
		for _, sem := range []Semantics{Homomorphism, Isomorphism} {
			want := bruteForce(g, q, sem)
			for _, workers := range []int{1, 4} {
				for _, base := range []Opts{Baseline(), Optimized()} {
					opts := base
					opts.Workers = workers
					got, err := Count(context.Background(), g, q, sem, opts)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("k=%d sem=%v workers=%d opts=%+v: NEC %d, brute force %d",
							k, sem, workers, opts, got, want)
					}
					opts.NoNEC = true
					off, err := Count(context.Background(), g, q, sem, opts)
					if err != nil {
						t.Fatal(err)
					}
					if off != want {
						t.Fatalf("k=%d sem=%v NEC off: %d, want %d", k, sem, off, want)
					}
				}
			}
		}
	}
}

func matchKeys(sols []Match) []string {
	keys := make([]string, 0, len(sols))
	for _, s := range sols {
		k := ""
		for _, v := range s.Vertices {
			k += string(rune('A' + v))
		}
		k += "|"
		for _, l := range s.EdgeLabels {
			k += string(rune('a' + l))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestNECCollectSolutionSets verifies the expanded matches themselves — full
// vertex mappings and edge bindings — are identical with NEC on and off.
func TestNECCollectSolutionSets(t *testing.T) {
	g := starData([]int{3, 2, 4})
	q := starQuery(3)
	for _, sem := range []Semantics{Homomorphism, Isomorphism} {
		on, err := Collect(context.Background(), g, q, sem, Optimized())
		if err != nil {
			t.Fatal(err)
		}
		off := Optimized()
		off.NoNEC = true
		want, err := Collect(context.Background(), g, q, sem, off)
		if err != nil {
			t.Fatal(err)
		}
		a, b := matchKeys(on), matchKeys(want)
		if len(a) != len(b) {
			t.Fatalf("sem %v: NEC on %d solutions, off %d", sem, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sem %v: solution sets differ at %d: %q vs %q", sem, i, a[i], b[i])
			}
		}
	}
}

// TestNECProfileCounters is the star acceptance test: the reduction must
// report its classes and a non-zero expansions-skipped count, and must visit
// far fewer search nodes than the unreduced run.
func TestNECProfileCounters(t *testing.T) {
	g := starData([]int{8, 8, 8, 8})
	q := starQuery(3)

	on, err := Profile(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if on.NECClasses != 1 || on.NECMergedVertices != 2 {
		t.Fatalf("NEC counters = %+v, want 1 class / 2 merged", on)
	}
	if on.NECExpansionsSkipped == 0 {
		t.Fatalf("expansions skipped = 0: %+v", on)
	}

	offOpts := Optimized()
	offOpts.NoNEC = true
	off, err := Profile(context.Background(), g, q, Homomorphism, offOpts)
	if err != nil {
		t.Fatal(err)
	}
	if off.NECClasses != 0 || off.NECExpansionsSkipped != 0 {
		t.Fatalf("NEC-off run reported reduction work: %+v", off)
	}
	if on.Solutions != off.Solutions {
		t.Fatalf("solutions differ: NEC on %d, off %d", on.Solutions, off.Solutions)
	}
	// 4 hubs x 8^3 homomorphic expansions: the reduced search must be far
	// cheaper than per-permutation enumeration.
	if on.SearchNodes*10 >= off.SearchNodes {
		t.Fatalf("search nodes: NEC on %d, off %d — no reduction win", on.SearchNodes, off.SearchNodes)
	}
}

// TestNECMaxSolutions checks the cap against the combinatorial bulk count,
// which can only overshoot internally, never in the returned value.
func TestNECMaxSolutions(t *testing.T) {
	g := starData([]int{5, 5})
	q := starQuery(3)
	opts := Optimized()
	opts.MaxSolutions = 7
	n, err := Count(context.Background(), g, q, Homomorphism, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("capped count = %d, want 7", n)
	}
	sols, err := Collect(context.Background(), g, q, Homomorphism, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 7 {
		t.Fatalf("capped collect = %d, want 7", len(sols))
	}
}

// TestNECStreamStop ensures a visitor returning false stops mid-expansion.
func TestNECStreamStop(t *testing.T) {
	g := starData([]int{6, 6})
	q := starQuery(3)
	calls := 0
	n, err := Stream(context.Background(), g, q, Homomorphism, Optimized(), func(Match) bool {
		calls++
		return calls < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || n != 3 {
		t.Fatalf("stream stop: calls=%d n=%d, want 3/3", calls, n)
	}
}

// TestNECIsoLaterVertexCollision covers the injectivity interaction between
// deferred members and query vertices matched after the class position: a
// chain hub->leafs plus a tail vertex that competes for the same data
// vertices.
func TestNECIsoLaterVertexCollision(t *testing.T) {
	// Data: hub -> {x1, x2, x3} via ea, and hub -> x1 via eb (the tail).
	b := graph.NewBuilder()
	b.AddVertexLabel(0, lA)
	for v := uint32(1); v <= 3; v++ {
		b.AddVertexLabel(v, lB)
		b.AddEdge(0, ea, v)
	}
	b.AddEdge(0, eb, 1)
	b.AddEdge(0, eb, 2)
	g := b.Build()

	// Query: hub with two equivalent ea-leaves and one eb-tail, all lB.
	q := NewQueryGraph()
	hub := q.AddVertex([]uint32{lA}, NoID)
	l1 := q.AddVertex([]uint32{lB}, NoID)
	l2 := q.AddVertex([]uint32{lB}, NoID)
	tail := q.AddVertex([]uint32{lB}, NoID)
	q.AddEdge(hub, l1, ea)
	q.AddEdge(hub, l2, ea)
	q.AddEdge(hub, tail, eb)

	if red := reduceNEC(q); red == nil || len(red.classes) != 1 {
		t.Fatal("ea-leaves should merge")
	}
	for _, sem := range []Semantics{Homomorphism, Isomorphism} {
		want := bruteForce(g, q, sem)
		got, err := Count(context.Background(), g, q, sem, Optimized())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sem %v: NEC %d, brute force %d", sem, got, want)
		}
	}
}

// TestNECMultiClass exercises two classes on one hub (distinct predicates)
// under both semantics, where isomorphism must keep the classes' expansions
// mutually injective.
func TestNECMultiClass(t *testing.T) {
	b := graph.NewBuilder()
	b.AddVertexLabel(0, lA)
	for v := uint32(1); v <= 4; v++ {
		b.AddVertexLabel(v, lB)
		b.AddEdge(0, ea, v)
		b.AddEdge(0, eb, v) // same targets reachable over both labels
	}
	g := b.Build()

	q := NewQueryGraph()
	hub := q.AddVertex([]uint32{lA}, NoID)
	for i := 0; i < 2; i++ {
		leaf := q.AddVertex([]uint32{lB}, NoID)
		q.AddEdge(hub, leaf, ea)
	}
	for i := 0; i < 2; i++ {
		leaf := q.AddVertex([]uint32{lB}, NoID)
		q.AddEdge(hub, leaf, eb)
	}
	red := reduceNEC(q)
	if red == nil || len(red.classes) != 2 {
		t.Fatalf("want 2 classes, got %+v", red)
	}
	for _, sem := range []Semantics{Homomorphism, Isomorphism} {
		want := bruteForce(g, q, sem)
		got, err := Count(context.Background(), g, q, sem, Optimized())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sem %v: NEC %d, brute force %d", sem, got, want)
		}
	}
}

// TestNECParallelEdgesToHub merges members that have two parallel edges to
// the hub (one becomes the tree edge, the other a non-tree join at the
// representative's position).
func TestNECParallelEdgesToHub(t *testing.T) {
	b := graph.NewBuilder()
	b.AddVertexLabel(0, lA)
	for v := uint32(1); v <= 3; v++ {
		b.AddVertexLabel(v, lB)
		b.AddEdge(0, ea, v)
		if v != 2 {
			b.AddEdge(v, eb, 0) // back edge missing for v2
		}
	}
	g := b.Build()

	q := NewQueryGraph()
	hub := q.AddVertex([]uint32{lA}, NoID)
	for i := 0; i < 2; i++ {
		leaf := q.AddVertex([]uint32{lB}, NoID)
		q.AddEdge(hub, leaf, ea)
		q.AddEdge(leaf, hub, eb)
	}
	red := reduceNEC(q)
	if red == nil || len(red.classes) != 1 {
		t.Fatalf("parallel-edge leaves should merge: %+v", red)
	}
	for _, sem := range []Semantics{Homomorphism, Isomorphism} {
		want := bruteForce(g, q, sem)
		for _, opts := range []Opts{Baseline(), Optimized()} {
			got, err := Count(context.Background(), g, q, sem, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("sem %v opts %+v: NEC %d, brute force %d", sem, opts, got, want)
			}
		}
	}
}
