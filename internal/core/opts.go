package core

// Semantics selects the matching semantics.
type Semantics uint8

const (
	// Homomorphism is the RDF pattern-matching semantics (paper Def. 2):
	// no injectivity, weakened degree/NLF filters, and edge-label bindings
	// (Me) for variable predicates.
	Homomorphism Semantics = iota
	// Isomorphism is classic subgraph isomorphism (paper Def. 1): the
	// vertex mapping must be injective.
	Isomorphism
)

func (s Semantics) String() string {
	if s == Isomorphism {
		return "isomorphism"
	}
	return "homomorphism"
}

// Opts control the optimization suite and execution of a match. The zero
// value runs the plain TurboHOM configuration: no +INT, NLF and degree
// filters enabled, per-region matching orders, single-threaded.
type Opts struct {
	// Intersect enables +INT: bulk IsJoinable tests via one k-way
	// intersection per candidate list instead of per-candidate binary
	// searches (paper §4.3).
	Intersect bool
	// NoNLF disables the neighborhood label frequency filter (-NLF).
	NoNLF bool
	// NoDegree disables the degree filter (-DEG).
	NoDegree bool
	// ReuseOrder computes the matching order for the first candidate
	// region only and reuses it for all others (+REUSE).
	ReuseOrder bool
	// NoNEC disables the NEC query reduction (merging equivalent query
	// vertices and enumerating their solutions by combination, paper §2.2).
	// The reduction is on by default because it only ever shrinks the
	// search; disable it to reproduce the unreduced search or to
	// differential-test the expansion.
	NoNEC bool
	// Workers sets the number of goroutines processing starting vertices
	// (paper §5.2). Values < 2 mean sequential execution. Only Collect and
	// Count honor it: Stream is contractually sequential (its visitor sees
	// solutions in deterministic region order and may stop the search), so
	// Stream ignores Workers entirely rather than silently racing. A full
	// parallel Collect returns the same solution order as a sequential one.
	Workers int
	// MaxSolutions stops the search after this many solutions; 0 means
	// unlimited.
	MaxSolutions int
	// StartVertexCandidates caps how many top-ranked query vertices are
	// refined when choosing the start vertex. 0 uses the default (3).
	StartVertexCandidates int
	// Profile, when non-nil, accumulates effort counters (candidate regions
	// explored, search-tree nodes visited) into the pointed-to result during
	// the run. Only sequential execution (Workers < 2) updates it; parallel
	// runs leave it untouched. Solutions is not filled in — it is the run's
	// return value.
	Profile *ProfileResult
}

// Optimized returns the full TurboHOM++ optimization set (+INT, -NLF,
// -DEG, +REUSE), single-threaded.
func Optimized() Opts {
	return Opts{Intersect: true, NoNLF: true, NoDegree: true, ReuseOrder: true}
}

// Baseline returns the unoptimized TurboHOM configuration.
func Baseline() Opts { return Opts{} }

func (o Opts) topK() int {
	if o.StartVertexCandidates > 0 {
		return o.StartVertexCandidates
	}
	return 3
}
