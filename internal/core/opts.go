package core

// Semantics selects the matching semantics.
type Semantics uint8

const (
	// Homomorphism is the RDF pattern-matching semantics (paper Def. 2):
	// no injectivity, weakened degree/NLF filters, and edge-label bindings
	// (Me) for variable predicates.
	Homomorphism Semantics = iota
	// Isomorphism is classic subgraph isomorphism (paper Def. 1): the
	// vertex mapping must be injective.
	Isomorphism
)

func (s Semantics) String() string {
	if s == Isomorphism {
		return "isomorphism"
	}
	return "homomorphism"
}

// Opts control the optimization suite and execution of a match. The zero
// value runs the plain TurboHOM configuration: no +INT, NLF and degree
// filters enabled, per-region matching orders, single-threaded.
type Opts struct {
	// Intersect enables +INT: bulk IsJoinable tests via one k-way
	// intersection per candidate list instead of per-candidate binary
	// searches (paper §4.3).
	Intersect bool
	// NoNLF disables the neighborhood label frequency filter (-NLF).
	NoNLF bool
	// NoDegree disables the degree filter (-DEG).
	NoDegree bool
	// ReuseOrder computes the matching order for the first candidate
	// region only and reuses it for all others (+REUSE).
	ReuseOrder bool
	// CostOrder ranks the root-to-leaf query paths by cardinality estimates
	// derived from the graph's precomputed statistics (average fanouts with
	// join-selectivity clamps) instead of the paper's candidate-population
	// heuristic when determining each region's matching order. The result
	// SET is unchanged — only the enumeration order of solutions can differ,
	// because the matching order is part of the sequential enumeration
	// contract. Falls back to the paper heuristic when the graph carries no
	// statistics.
	CostOrder bool
	// NoSignature disables the compact neighborhood-signature filter: the
	// 64-bit Bloom signature over incident (direction, edge label, neighbor
	// label) triples checked before any adjacency walk. The signature is a
	// necessary condition implied by the NLF filter, so disabling it never
	// changes results; it exists as an ablation toggle.
	NoSignature bool
	// NoNEC disables the NEC query reduction (merging equivalent query
	// vertices and enumerating their solutions by combination, paper §2.2).
	// The reduction is on by default because it only ever shrinks the
	// search; disable it to reproduce the unreduced search or to
	// differential-test the expansion.
	NoNEC bool
	// Workers sets the number of goroutines processing starting vertices
	// (paper §5.2). Values < 2 mean sequential execution. Stream, Collect
	// and Count all honor it through the ordered region pipeline: workers
	// claim candidate-region batches, search them into buffers, and a
	// reorder stage replays the buffers in sequential region order, so row
	// order, early termination (a visitor returning false, MaxSolutions)
	// and cancellation behave exactly as in a sequential run.
	Workers int
	// StreamBuffer bounds the parallel pipeline's buffering in ROWS: the
	// number of not-yet-delivered solutions workers may hold ahead of the
	// emitting goroutine before they block with their region search
	// suspended (per-row backpressure). The bound is independent of region
	// size — a single region yielding a million rows still buffers only
	// O(StreamBuffer) of them — and may be exceeded by a small constant
	// factor (one in-production segment per in-flight batch). 0 means
	// 64×Workers. Smaller values tighten memory and the work an
	// early-terminated run can overshoot; larger values smooth the
	// worker/emitter handoff.
	StreamBuffer int
	// MaxSolutions stops the search after this many solutions; 0 means
	// unlimited.
	MaxSolutions int
	// StartVertexCandidates caps how many top-ranked query vertices are
	// refined when choosing the start vertex. 0 uses the default (3).
	StartVertexCandidates int
	// Profile, when non-nil, accumulates effort counters (candidate regions
	// explored, search-tree nodes visited) into the pointed-to result during
	// the run. Parallel runs merge per-worker counters into it before
	// returning: a run that completes (or stops by visitor/limit at the
	// very end) reports the same Regions/SearchNodes totals as a sequential
	// run, while an early-terminated parallel run may report somewhat more —
	// workers race ahead of the emitter within the reorder window. The
	// pointed-to result must not be read until the call returns. Solutions
	// is not filled in — it is the run's return value.
	Profile *ProfileResult
}

// Optimized returns the full TurboHOM++ optimization set (+INT, -NLF,
// -DEG, +REUSE), single-threaded.
func Optimized() Opts {
	return Opts{Intersect: true, NoNLF: true, NoDegree: true, ReuseOrder: true}
}

// Baseline returns the unoptimized TurboHOM configuration.
func Baseline() Opts { return Opts{} }

func (o Opts) topK() int {
	if o.StartVertexCandidates > 0 {
		return o.StartVertexCandidates
	}
	return 3
}
