package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the ordered parallel region pipeline (paper §5.2
// lifted from materialized fan-out to streaming) on top of the resumable
// search cursor: W workers claim contiguous batches of candidate regions
// from a shared cursor and search them through regionCursor, delivering
// solutions in bounded row *segments* instead of whole-batch buffers. The
// calling goroutine — the emitter — replays the segments in exact
// sequential order, so every sequential contract survives parallelism
// unchanged: rows arrive in the sequential enumeration order, a visitor
// returning false stops the run, and MaxSolutions cuts the stream at the
// same row it would cut a sequential run.
//
// Backpressure is per row. A segment holds at most quota rows (derived from
// Opts.StreamBuffer, which counts rows in flight); a worker that fills a
// segment hands it to the batch's delivery channel and, when the channel is
// full, blocks with its region search *suspended in the cursor* — a
// pathological region that yields a hundred thousand rows therefore never
// buffers more than ~2 segments of them, and the first rows reach the
// consumer after O(quota) search work, not after the region is exhausted.
// A second, coarser bound remains from PR 4: a token semaphore keeps at
// most `window` batches in flight ahead of the emitter, so an
// early-terminated run abandons everything beyond the window.
//
// Adaptive batch splitting (work stealing on suspended cursors): a worker
// that runs out of unclaimed batches steals the remaining candidate range
// of a still-running batch — typically one pinned down by a pathological
// region, its owner blocked on backpressure with a suspended cursor. The
// stolen range becomes a new sub-span spliced into the batch's delivery
// chain right after the victim's span, so the emitter still replays rows in
// sequential region order:
//
//	batch [lo,hi): owner at region r   ──steal──▶  owner keeps [lo, r]
//	                                               thief takes (r, hi)
//	delivery chain: owner-span ──▶ thief-span ──▶ (further splits…)
//
// Each span is a channel of segments closed when the span's range is
// exhausted; span.next is written under the batch lock before the close, so
// the emitter can follow the chain race-free after observing the close.

// maxPipelineChunk caps the candidate-region batch size. Batches amortize
// scheduling; splitting (above) now handles skew, so the cap matters less
// than in PR 4, but it still bounds how much work one token pins.
const maxPipelineChunk = 64

// segment is one bounded slice of a batch's solution stream.
type segment struct {
	sols  []Match // solutions in sequential order, deep copies (nil when counting)
	count int     // solutions found (the NEC bulk count may exceed len(sols)==0 rows)
	err   error   // context error that cut the span short
}

// span is one contiguous sub-range of a batch's regions: a stream of
// segments plus the link to the next sub-range in sequential order.
type span struct {
	segs chan segment
	next *span // successor in region order; written before segs is closed
}

func newSpan() *span { return &span{segs: make(chan segment, 1)} }

// spanWork is the mutable claim on a span's candidate range, the unit the
// stealing protocol operates on. Lock order: pipeState.stealMu strictly
// before spanWork.mu; neither is ever acquired while holding the other
// reversed.
type spanWork struct {
	mu   sync.Mutex
	sub  *span
	next int // next region index the owner will start
	hi   int // exclusive end of the range (shrunk by steals)

	// rotate is the continuation span created by the first region-internal
	// split of the owner's current region: the owner's in-region rows keep
	// flowing into sub, the thief spans for the stolen sub-ranges sit
	// between sub and rotate, and when the region ends the owner closes sub
	// and carries on in rotate — so the emitter replays
	// owner-region-rows → stolen-tail-rows → later-regions, the sequential
	// order. Guarded by mu.
	rotate *span

	// seedRC, on a thief's synthetic spanWork (empty candidate range), is
	// the stolen sub-region cursor to run before the range. Set once at
	// creation, consumed by runSpan.
	seedRC *regionCursor
}

// pipeState is the shared coordination state of one pipeline run.
type pipeState struct {
	m          *matcher
	cands      []uint32
	start      int
	chunk      int
	numBatches int
	collect    bool
	limit      int
	quota      int // max rows per segment
	sharedPlan *searchPlan
	skipBefore int

	cursor atomic.Int64  // next unclaimed batch
	stop   atomic.Bool   // emitter finished; abandon unclaimed work
	done   chan struct{} // closed with stop, releases blocked workers
	tokens chan struct{} // batch-window semaphore
	ring   []chan *span  // first span of batch bi arrives at ring[bi%window]

	stealMu sync.Mutex
	// stealable holds the registered spans in claim order — a slice, not a
	// set, so the victim scan below visits spans in a deterministic order
	// (turbolint:maporder guards this path; steal choice shapes only load
	// balance, never row order, but determinism keeps runs reproducible).
	// Spent entries are dropped lazily during scans and on unregister.
	stealable []*spanWork
	// offers holds region splits published by region owners (offerSplit) and
	// not yet adopted by an idle worker: synthetic empty-range spanWorks
	// whose seed cursor is the stolen sub-region. Guarded by stealMu.
	offers []*spanWork

	// idle is the number of workers currently hungry — polling for a range
	// or region to steal. Region owners consult it between cursor resumes:
	// a split is carved only when someone is waiting to run it (demand-
	// driven, so an unloaded pipeline never pays for splitting).
	idle atomic.Int64
	// working is the number of spanWorks handed out (claim, steal,
	// stealRegion) whose runSpan has not finished. While it is nonzero an
	// idle thief must keep polling: a running span may still publish offers.
	// Increments happen under stealMu, atomically with the hand-out, so a
	// thief that sees no offers, no stealable range, and working == 0 can
	// soundly exit.
	working atomic.Int64

	profMu sync.Mutex
	prof   *ProfileResult
}

// pipelineSteals counts successful steals across all runs — a test hook for
// asserting the splitting path actually engages on skewed instances.
var pipelineSteals atomic.Int64

// regionSplits counts successful region-internal cursor splits across all
// runs — the test hook for the in-region work-stealing path.
var regionSplits atomic.Int64

// regionStealPoll is how long an idle thief waits before re-checking the
// offer queue. Region owners publish offers at suspension points
// (backpressure blocks, counting chunk boundaries), so a short poll keeps
// thief latency well under the cost of one stolen subtree.
const regionStealPoll = 50 * time.Microsecond

// regionResumeChunk is the count-mode resume quota between suspensions:
// large enough to amortize the suspend, small enough that idle workers get
// a split offer every few microseconds of counting.
const regionResumeChunk = 1024

// pipelineQuota derives the per-segment row cap from the StreamBuffer row
// budget: the window may hold one delivered segment per in-flight batch plus
// one in production, so quota ≈ StreamBuffer/window keeps rows in flight
// within a small constant factor of StreamBuffer.
func pipelineQuota(streamBuffer, window, workers int) int {
	if streamBuffer <= 0 {
		streamBuffer = 64 * workers
	}
	q := streamBuffer / window
	if q < 1 {
		q = 1
	}
	return q
}

// runPipeline executes the match with opts.Workers parallel workers while
// delivering solutions to visit in exactly the sequential enumeration order.
// With a nil visitor it is a parallel count: per-segment totals are summed
// in region order, so MaxSolutions clamps as deterministically as it does
// sequentially.
func (m *matcher) runPipeline(visit Visitor) (int, error) {
	start, cands := m.startCandidates()
	if len(cands) == 0 {
		m.foldSigCounters()
		return 0, nil
	}
	// Point-shaped queries have no per-region work to distribute; the
	// sequential fast path is optimal and already ordered. The pipeline's
	// visitor contract hands out owned rows (worker-side deep copies), so
	// the delegation must clone what the sequential run lends it —
	// Collect appends pipeline rows without copying.
	if len(m.q.Vertices) == 1 && len(m.q.Edges) == 0 {
		// run repeats startCandidates and folds the signature counters
		// itself; drop this call's counts so they are not folded twice.
		m.sigChecked.Store(0)
		m.sigKilled.Store(0)
		if visit == nil {
			return m.run(nil)
		}
		return m.run(func(mt Match) bool { return visit(mt.Clone()) })
	}
	m.buildQueryTree(start)
	if m.opts.Profile != nil {
		defer m.foldSigCounters()
	}

	pr := m.opts.Profile
	if pr != nil {
		pr.StartVertex = start
		pr.StartCandidates = len(cands)
		if m.red != nil {
			pr.NECClasses = len(m.red.classes)
			pr.NECMergedVertices = m.red.mergedVertices()
		}
	}

	// Dynamic distribution (paper §5.2): small contiguous chunks claimed
	// from a shared cursor; stealing re-splits whatever skew the static
	// chunking misjudged.
	workers := m.opts.Workers
	chunk := len(cands)/(workers*8) + 1
	if chunk > maxPipelineChunk {
		chunk = maxPipelineChunk
	}
	// Workers may exceed the batch count: the surplus cannot claim a batch,
	// but region splitting still gives them work — a one-batch, one-region
	// instance (a single huge candidate region) parallelizes by carving the
	// suspended cursor, not by distributing regions.
	numBatches := (len(cands) + chunk - 1) / chunk
	window := 2 * workers
	if window > numBatches {
		window = numBatches
	}
	quota := pipelineQuota(m.opts.StreamBuffer, window, workers)

	// +REUSE pins every region to the matching order of the first region
	// that survives exploration — the first in SEQUENTIAL order, because the
	// emitted row order depends on the plan. The pre-pass stops at that
	// region and hands the failures before it to the workers as known
	// skips, so total exploration work stays within one region of the
	// sequential run.
	var sharedPlan *searchPlan
	skipBefore := 0
	if m.opts.ReuseOrder {
		rg := newRegion(len(m.q.Vertices))
		for i, vs := range cands {
			if err := m.ctx.Err(); err != nil {
				return 0, err
			}
			rg.reset(vs)
			ckBase, klBase := m.sigChecked.Load(), m.sigKilled.Load()
			if m.explore(rg, start, vs) {
				// The surviving region is explored again by the worker that
				// claims it; drop this exploration's signature counts so the
				// run total matches a sequential run exactly. (The failed
				// explorations before it stay counted: workers skip those
				// regions, while a sequential run pays for them once — here.)
				m.sigChecked.Add(ckBase - m.sigChecked.Load())
				m.sigKilled.Add(klBase - m.sigKilled.Load())
				sharedPlan = m.buildPlan(rg)
				skipBefore = i
				break
			}
			skipBefore = i + 1
		}
	}

	ps := &pipeState{
		m:          m,
		cands:      cands,
		start:      start,
		chunk:      chunk,
		numBatches: numBatches,
		collect:    visit != nil,
		limit:      m.opts.MaxSolutions,
		quota:      quota,
		sharedPlan: sharedPlan,
		skipBefore: skipBefore,
		done:       make(chan struct{}),
		tokens:     make(chan struct{}, window),
		ring:       make([]chan *span, window),
		prof:       pr,
	}
	for i := range ps.ring {
		ps.ring[i] = make(chan *span, 1)
	}
	for i := 0; i < window; i++ {
		ps.tokens <- struct{}{}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ps.worker()
		}()
	}
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()

	const maxInt = int(^uint(0) >> 1)
	limit := m.opts.MaxSolutions
	emitted := 0
	var err error
emit:
	for bi := 0; bi < numBatches; bi++ {
		var sp *span
		select {
		case sp = <-ps.ring[bi%window]:
		case <-workersDone:
			// All workers exited before announcing this batch — the context
			// was cancelled before it was claimed. The non-blocking re-check
			// covers the race where the announcement and the last exit landed
			// together.
			select {
			case sp = <-ps.ring[bi%window]:
			default:
				err = m.ctx.Err()
				break emit
			}
		}
		for sp != nil {
			for seg := range sp.segs {
				if visit == nil {
					// bulkCount saturates per segment; keep the sum saturating.
					if seg.count > maxInt-emitted {
						emitted = maxInt
					} else {
						emitted += seg.count
					}
				} else {
					for _, mt := range seg.sols {
						emitted++
						if !visit(mt) {
							break emit
						}
						if limit > 0 && emitted >= limit {
							break emit
						}
					}
				}
				if seg.err != nil {
					err = seg.err
					break emit
				}
				if limit > 0 && emitted >= limit {
					break emit
				}
			}
			// segs closed: the span's range is exhausted and next is final.
			sp = sp.next
		}
		// The batch chain is fully replayed: open the window one batch on.
		ps.tokens <- struct{}{}
	}
	ps.stop.Store(true)
	close(ps.done)
	// Wait for the workers so profile merging is complete and no goroutine
	// outlives the call (Close/cancel rely on this for prompt teardown).
	<-workersDone

	if limit > 0 && emitted > limit {
		emitted = limit
	}
	return emitted, err
}

// worker claims fresh batches while any remain (bounded by the window
// semaphore), then turns thief: it steals the remaining range of running
// spans until nothing is left to split.
func (ps *pipeState) worker() {
	m := ps.m
	w := &pipeWorker{ps: ps}
	if ps.prof != nil {
		w.localProf = new(ProfileResult)
		defer func() {
			ps.profMu.Lock()
			ps.prof.merge(w.localProf)
			ps.profMu.Unlock()
		}()
	}
	if ps.collect {
		w.st = newSearchState(m, func(mt Match) bool {
			if ps.stop.Load() {
				return false
			}
			w.buf = append(w.buf, mt.Clone())
			return true
		}, 0, nil)
	} else {
		w.st = newSearchState(m, nil, 0, nil)
	}
	w.st.profile = w.localProf
	w.st.stop = &ps.stop
	w.rg = newRegion(len(m.q.Vertices))

	// hungry advertises this worker in ps.idle while it has nothing to run,
	// which is what makes region owners start publishing split offers.
	hungry := false
	setHungry := func(h bool) {
		if h != hungry {
			hungry = h
			if h {
				ps.idle.Add(1)
			} else {
				ps.idle.Add(-1)
			}
		}
	}
	defer func() { setHungry(false) }()

	for {
		if ps.stop.Load() || m.ctx.Err() != nil {
			return
		}
		select {
		case <-ps.tokens:
			setHungry(false)
		case <-ps.done:
			return
		default:
			// The window is full: instead of idling for a token, help a
			// loaded batch along by stealing part of its remaining range, or
			// — when every range is spent — adopting a split of a region
			// search still grinding inside the window.
			if sw := ps.steal(); sw != nil {
				setHungry(false)
				w.runSpan(sw)
				if w.st.stopped {
					return
				}
				continue
			}
			if sw, _ := ps.stealRegion(); sw != nil {
				setHungry(false)
				w.runSpan(sw)
				if w.st.stopped {
					return
				}
				continue
			}
			setHungry(true)
			select {
			case <-ps.tokens:
				setHungry(false)
			case <-ps.done:
				return
			case <-time.After(regionStealPoll):
				// A running region may publish an offer at its next
				// suspension; re-check instead of parking on the token.
				continue
			}
		}
		bi, sw := ps.claim()
		if sw == nil {
			break // batches exhausted: fall through to stealing
		}
		// The slot is guaranteed empty: batch bi is claimable only after
		// batch bi-window was fully replayed, which drained the slot.
		ps.ring[bi%len(ps.ring)] <- sw.sub
		w.runSpan(sw)
		if w.st.stopped {
			return
		}
	}
	for {
		if ps.stop.Load() || m.ctx.Err() != nil {
			return
		}
		sw := ps.steal()
		if sw == nil {
			var active bool
			if sw, active = ps.stealRegion(); sw == nil {
				if !active {
					// Sound exit: spanWorks are handed out (and ps.working
					// incremented) under stealMu, atomically with the claim,
					// steal, or offer pop, so a thief that observes the batch
					// cursor exhausted, no stealable range, no pending offer,
					// and working == 0 has seen a state no future action can
					// invalidate.
					return
				}
				setHungry(true)
				select {
				case <-ps.done:
					return
				case <-time.After(regionStealPoll):
				}
				continue
			}
		}
		setHungry(false)
		w.runSpan(sw)
		if w.st.stopped {
			return
		}
	}
}

// claim atomically takes the next batch AND registers its span for
// stealing. The atomicity (same lock as steal) guarantees a thief that
// observes the cursor exhausted also observes every claimed span — without
// it, a thief could slip between a claim and its registration and exit with
// work still splittable.
func (ps *pipeState) claim() (int, *spanWork) {
	ps.stealMu.Lock()
	defer ps.stealMu.Unlock()
	bi := int(ps.cursor.Add(1)) - 1
	if bi >= ps.numBatches {
		return bi, nil
	}
	lo := bi * ps.chunk
	hi := lo + ps.chunk
	if hi > len(ps.cands) {
		hi = len(ps.cands)
	}
	sw := &spanWork{sub: newSpan(), next: lo, hi: hi}
	ps.stealable = append(ps.stealable, sw)
	ps.working.Add(1)
	return bi, sw
}

func (ps *pipeState) unregister(sw *spanWork) {
	ps.stealMu.Lock()
	ps.removeLocked(sw)
	ps.stealMu.Unlock()
}

// removeLocked drops sw from the registry; stealMu must be held.
func (ps *pipeState) removeLocked(sw *spanWork) {
	for i, s := range ps.stealable {
		if s == sw {
			ps.stealable = append(ps.stealable[:i], ps.stealable[i+1:]...)
			return
		}
	}
}

// steal takes the tail half of the largest remaining registered range and
// splices a fresh span for it into the victim's delivery chain. It returns
// nil when no range has stealable work left.
func (ps *pipeState) steal() *spanWork {
	ps.stealMu.Lock()
	defer ps.stealMu.Unlock()
	var victim *spanWork
	best := 0
	live := ps.stealable[:0]
	for _, sw := range ps.stealable {
		sw.mu.Lock()
		avail := sw.hi - sw.next
		sw.mu.Unlock()
		if avail <= 0 {
			continue // spent; drop lazily
		}
		live = append(live, sw)
		if avail > best {
			best, victim = avail, sw
		}
	}
	ps.stealable = live
	if victim == nil {
		return nil
	}
	victim.mu.Lock()
	avail := victim.hi - victim.next
	if avail <= 0 { // raced with the owner finishing
		victim.mu.Unlock()
		ps.removeLocked(victim)
		return nil
	}
	take := (avail + 1) / 2
	lo := victim.hi - take
	nsw := &spanWork{sub: newSpan(), next: lo, hi: victim.hi}
	victim.hi = lo
	// The stolen range follows every region of the victim's kept range — in
	// particular the victim's CURRENT region and any sub-ranges already
	// carved out of it by region thieves, which sit between sub and rotate.
	anchor := victim.sub
	if victim.rotate != nil {
		anchor = victim.rotate
	}
	nsw.sub.next = anchor.next
	anchor.next = nsw.sub
	victim.mu.Unlock()
	ps.stealable = append(ps.stealable, nsw)
	ps.working.Add(1)
	pipelineSteals.Add(1)
	return nsw
}

// stealRegion adopts a published region split: a synthetic empty-range
// spanWork whose seed cursor enumerates the tail half of some owner's
// in-flight region, its span already spliced into that owner's delivery
// chain. active reports whether any span is still running — while true, an
// idle thief must keep polling, because a running span may publish offers.
func (ps *pipeState) stealRegion() (sw *spanWork, active bool) {
	ps.stealMu.Lock()
	defer ps.stealMu.Unlock()
	if len(ps.offers) > 0 {
		sw = ps.offers[0]
		ps.offers = ps.offers[1:]
		ps.working.Add(1)
		return sw, true
	}
	return nil, ps.working.Load() > 0
}

// offerSplit carves the tail half of the bottom-most pending candidate loop
// out of the worker's CURRENT region search and publishes it for an idle
// worker: the stolen sub-region's rows follow every row the owner still
// produces in this region, so its span is spliced right after sw.sub —
// before the continuation span the owner rotates to when the region ends.
// Only the region's owner calls this, between two resumes, so the cursor
// needs no lock; demand (ps.idle) is checked by the caller and re-checked
// here against the offers already outstanding, so a burst of suspensions
// does not fragment the region beyond what the hungry workers can adopt.
// Reports whether a split was published (the owner must then rotate spans
// at region end and stop reusing the region object).
func (w *pipeWorker) offerSplit(sw *spanWork, rc *regionCursor) bool {
	ps := w.ps
	ps.stealMu.Lock()
	saturated := int64(len(ps.offers)) >= ps.idle.Load()
	ps.stealMu.Unlock()
	if saturated {
		return false
	}
	// The thief installs its own visitor and profile sink when it adopts the
	// seed; the stop flag is shared run-wide.
	nrc := rc.splitOff(nil, nil, &ps.stop)
	if nrc == nil {
		return false
	}
	t := newSpan()
	sw.mu.Lock()
	if sw.rotate == nil {
		// First split of this region: create the continuation span this
		// worker will rotate to when the region ends. Chain becomes
		// sub → t → rotate → (old successors).
		cont := newSpan()
		cont.next = sw.sub.next
		sw.rotate = cont
		t.next = cont
	} else {
		// A later split steals the tail of the now-truncated iteration
		// space, which precedes every earlier-stolen tail in sequential
		// order: splice directly after sub.
		t.next = sw.sub.next
	}
	sw.sub.next = t
	sw.mu.Unlock()
	nsw := &spanWork{sub: t, seedRC: nrc}
	ps.stealMu.Lock()
	ps.offers = append(ps.offers, nsw)
	ps.stealMu.Unlock()
	regionSplits.Add(1)
	return true
}

// pipeWorker is one worker's private execution state: a reusable search
// state and region, the resumable cursor, and the segment row buffer its
// visitor fills.
type pipeWorker struct {
	ps        *pipeState
	st        *searchState
	rg        *region
	rgShared  bool // w.rg's candidate lists are shared with a region thief
	rc        regionCursor
	buf       []Match
	localProf *ProfileResult
}

// ensureRegion replaces w.rg when its current contents are shared with a
// region thief (the thief's cloned searchState keeps reading the region's
// candidate map), so the worker's next reset cannot race the thief's search.
func (w *pipeWorker) ensureRegion() {
	if w.rgShared {
		w.rg = newRegion(len(w.ps.m.q.Vertices))
		w.rgShared = false
	}
}

// runSpan searches sw's candidate range region by region — preceded by the
// stolen sub-region seed when sw came from a region split — delivering
// segments of at most quota rows into sw.sub and suspending the region
// cursor on backpressure. The span's channel is always closed on return —
// after next is final — so the emitter can follow the chain.
func (w *pipeWorker) runSpan(sw *spanWork) {
	ps := w.ps
	m := ps.m
	st := w.st
	countBase := st.count
	var seedSt *searchState
	plan := ps.sharedPlan
	defer ps.working.Add(-1)
	// spanRows is the solutions THIS span has produced: the stolen seed
	// sub-region (counted on its cloned state) plus the range's own regions
	// (counted on the worker state).
	spanRows := func() int {
		n := st.count - countBase
		if seedSt != nil {
			n += seedSt.count
		}
		return n
	}
	// Span-local MaxSolutions cutoff: once THIS span alone has produced
	// limit solutions, its remaining regions can never be emitted — the
	// emitter, replaying in order, reaches the cap at or before this span's
	// end — so the span closes early. The bound must be span-local, not
	// worker-cumulative as it was pre-stealing: a thief may pick up a range
	// that precedes work it already counted, and a cumulative cutoff there
	// would leave a gap before already-delivered rows.
	spanQuota := func() int {
		if ps.limit <= 0 {
			return 0 // unlimited
		}
		if q := ps.limit - spanRows(); q > 0 {
			return q
		}
		return -1 // span produced MaxSolutions; the emitter cuts within it
	}
	if sw.seedRC != nil {
		// Adopt the stolen sub-region: the cursor arrives with a cloned
		// searchState carrying the victim's live ancestor bindings; this
		// worker plugs in its own visitor and profile sink before resuming.
		rc := sw.seedRC
		seedSt = rc.st
		seedSt.profile = w.localProf
		if ps.collect {
			seedSt.visit = func(mt Match) bool {
				if ps.stop.Load() {
					return false
				}
				w.buf = append(w.buf, mt.Clone())
				return true
			}
		}
		w.runRegion(sw, rc, spanQuota)
		if seedSt.err != nil && st.err == nil {
			st.err = seedSt.err
		}
		if seedSt.stopped {
			st.stopped = true
		}
	}
	for !st.stopped {
		if spanQuota() < 0 {
			break
		}
		sw.mu.Lock()
		gi := sw.next
		if gi >= sw.hi || st.stopped {
			sw.mu.Unlock()
			break
		}
		sw.next = gi + 1
		sw.mu.Unlock()

		if gi < ps.skipBefore {
			continue // known explore failure (the +REUSE pre-pass)
		}
		vs := ps.cands[gi]
		w.ensureRegion()
		w.rg.reset(vs)
		if !m.explore(w.rg, ps.start, vs) {
			continue
		}
		if w.localProf != nil {
			w.localProf.Regions++
			for _, total := range w.rg.totals {
				w.localProf.ExploredCandidates += total
			}
		}
		if plan == nil || !m.opts.ReuseOrder {
			plan = m.buildPlan(w.rg)
		}
		st.rg, st.plan = w.rg, plan
		w.rc.start(st)
		w.runRegion(sw, &w.rc, spanQuota)
	}
	// Final segment: leftover rows, the span's count contribution (counting
	// mode), and any context error that cut the search short. When a split
	// rotated the span mid-range, the count lands in the continuation span —
	// the emitter's count sum is order-insensitive, so the clamp still cuts
	// at the same total.
	seg := segment{sols: w.buf, err: st.err}
	if !ps.collect {
		seg.count = spanRows()
	}
	w.buf = nil
	if len(seg.sols) > 0 || seg.count != 0 || seg.err != nil {
		select {
		case sw.sub.segs <- seg:
		case <-ps.done:
		}
	}
	// Publish the final next/hi before closing so thieves observe the spent
	// range, then close: the emitter reads sub.next only after the close.
	sw.mu.Lock()
	sw.next = sw.hi
	rot := sw.rotate
	sw.rotate = nil
	sw.mu.Unlock()
	ps.unregister(sw)
	close(sw.sub.segs)
	if rot != nil {
		// The span ended with a rotation still pending (the run shut down or
		// the span quota filled before the split region finished): close the
		// continuation too, so the emitter can keep walking the chain.
		close(rot.segs)
	}
}

// runRegion drives one region search — the worker's own cursor or a stolen
// seed sub-region — to completion, suspending on backpressure and offering
// splits of the remaining iteration space whenever workers are idle. On a
// mid-region abandonment (span quota filled, shutdown) the cursor is
// unwound. When a split was published, the owner seals this region's rows
// and rotates sw.sub to the prepared continuation span, so later regions
// land after the stolen subtrees in the delivery chain.
func (w *pipeWorker) runRegion(sw *spanWork, rc *regionCursor, spanQuota func() int) {
	ps := w.ps
	st := rc.st
	regionDone := false
	split := false
	for {
		// Collect mode resumes row by row for eager delivery; count mode
		// runs in bounded chunks so the cursor suspends often enough for
		// idle workers to get a split offer (and so one enormous region
		// cannot blow past a MaxSolutions cap by more than an NEC bulk
		// batch).
		quota := 1
		if !ps.collect {
			quota = spanQuota()
			if quota < 0 {
				break
			}
			if quota == 0 || quota > regionResumeChunk {
				quota = regionResumeChunk
			}
		}
		done := rc.resume(quota)
		if !done && !st.stopped {
			if !ps.collect {
				// Count mode has no channel operations between chunks, so on
				// a single P this loop would monopolize the scheduler:
				// out-of-work workers never run, never go hungry, and the
				// region finishes unsplit. One yield per chunk lets them
				// advertise demand (and lets waiting thieves adopt published
				// offers); its cost is noise against 1024 rows of search.
				// Collect mode yields naturally through the flush below.
				runtime.Gosched()
			}
			// Demand-driven splitting, before the flush below so a hungry
			// worker is already enumerating the stolen tail while this one
			// blocks on backpressure.
			if ps.idle.Load() > 0 && w.offerSplit(sw, rc) {
				split = true
			}
		}
		if ps.collect && len(w.buf) > 0 {
			// Eager per-row delivery: hand over whatever has accumulated
			// the moment the slot is free, so the emitter never waits for
			// a full segment; block only when the segment cap is hit —
			// that block is the per-row backpressure.
			if !w.flush(sw, false) && len(w.buf) >= ps.quota {
				if !w.flush(sw, true) {
					st.stopped = true
				}
			}
		}
		if done || st.stopped {
			regionDone = done
			break
		}
		if spanQuota() < 0 {
			break // span quota filled mid-region; abandon the rest
		}
	}
	if !regionDone {
		// The region is abandoned with the cursor suspended: unwind it so
		// the searchState carries no stale used[]/varBind[] bindings into
		// later claimed or stolen spans — which may precede the limit cut in
		// region order and still have rows to deliver.
		rc.abort()
	}
	if split {
		// At least one thief now shares this region object (via its cloned
		// searchState) — the worker must not reset it for the next region.
		w.rgShared = true
		// Seal this region's rows into the current span and rotate to the
		// continuation: the stolen subtrees' spans sit between the two,
		// preserving sequential order.
		if len(w.buf) > 0 && !w.flush(sw, true) {
			st.stopped = true
		}
		old := sw.sub
		sw.mu.Lock()
		sw.sub = sw.rotate
		sw.rotate = nil
		sw.mu.Unlock()
		close(old.segs)
	}
}

// flush tries to deliver the accumulated rows as one segment. Non-blocking
// unless block is set; reports whether the rows were handed off (false with
// block set means the run is shutting down).
func (w *pipeWorker) flush(sw *spanWork, block bool) bool {
	seg := segment{sols: w.buf}
	if block {
		select {
		case sw.sub.segs <- seg:
			w.buf = nil
			return true
		case <-w.ps.done:
			return false
		}
	}
	select {
	case sw.sub.segs <- seg:
		w.buf = nil
		return true
	default:
		return false
	}
}
