package core

import (
	"sync"
	"sync/atomic"
)

// This file implements the ordered parallel region pipeline (paper §5.2
// lifted from materialized fan-out to streaming): W workers claim contiguous
// batches of candidate regions from a shared cursor, explore and search each
// batch into a private solution buffer, and the caller's goroutine — the
// emitter — replays the buffers in exact sequential batch order. Because the
// visitor only ever runs on the emitter, every sequential contract survives
// parallelism unchanged: rows arrive in the sequential enumeration order,
// returning false stops the run, and MaxSolutions cuts the stream at the
// same row it would cut a sequential run.
//
// Backpressure comes from a token semaphore sized to the reorder window: a
// worker may not claim a batch until the emitter has finished replaying the
// batch `window` positions earlier. A consumer that stops early (visitor
// false, MaxSolutions, a cancelled cursor) therefore leaves all batches
// beyond the window unclaimed and unexplored, just like the sequential run
// abandons its remaining candidate regions.
//
// Delivery uses a ring of one-slot channels indexed by batch mod window.
// The token accounting makes slot reuse safe: batch i can only be claimed
// after batch i-window was fully replayed, so its slot has been drained by
// the time batch i's result is sent, and the send never blocks.

// maxPipelineChunk caps the candidate-region batch size. Batches amortize
// scheduling (one channel handoff per batch, not per region); the cap keeps
// first-row latency and the early-termination overshoot bounded.
const maxPipelineChunk = 64

// batchResult is one batch's contribution, delivered to the emitter.
type batchResult struct {
	sols  []Match // solutions in sequential order, deep copies (nil when counting)
	count int     // solutions found in the batch
	err   error   // context error that cut the batch short
}

// pipeState is the shared coordination state of one pipeline run.
type pipeState struct {
	cands      []uint32
	start      int
	chunk      int
	numBatches int
	collect    bool // buffer solutions (vs count-only)
	limit      int  // MaxSolutions, also the per-batch work bound
	sharedPlan *searchPlan
	skipBefore int // candidates below this index are known explore failures

	cursor atomic.Int64  // next unclaimed batch
	stop   atomic.Bool   // emitter finished; abandon unclaimed work
	done   chan struct{} // closed with stop, releases workers blocked on tokens
	tokens chan struct{} // reorder-window semaphore
	ring   []chan batchResult

	profMu sync.Mutex
	prof   *ProfileResult
}

// runPipeline executes the match with opts.Workers parallel workers while
// delivering solutions to visit in exactly the sequential enumeration order.
// With a nil visitor it is a parallel count: per-batch totals are summed in
// batch order, so MaxSolutions clamps as deterministically as it does
// sequentially.
func (m *matcher) runPipeline(visit Visitor) (int, error) {
	start, cands := m.startCandidates()
	if len(cands) == 0 {
		return 0, nil
	}
	// Point-shaped queries have no per-region work to distribute; the
	// sequential fast path is optimal and already ordered. The pipeline's
	// visitor contract hands out owned rows (worker-side deep copies), so
	// the delegation must clone what the sequential run lends it —
	// Collect appends pipeline rows without copying.
	if len(m.q.Vertices) == 1 && len(m.q.Edges) == 0 {
		if visit == nil {
			return m.run(nil)
		}
		return m.run(func(mt Match) bool { return visit(mt.Clone()) })
	}
	m.buildQueryTree(start)

	pr := m.opts.Profile
	if pr != nil {
		pr.StartVertex = start
		pr.StartCandidates = len(cands)
		if m.red != nil {
			pr.NECClasses = len(m.red.classes)
			pr.NECMergedVertices = m.red.mergedVertices()
		}
	}

	// Dynamic distribution (paper §5.2): small contiguous chunks claimed
	// from a shared cursor, so skewed regions do not starve workers while
	// the chunk order keeps reassembly trivial.
	workers := m.opts.Workers
	chunk := len(cands)/(workers*8) + 1
	if chunk > maxPipelineChunk {
		chunk = maxPipelineChunk
	}
	numBatches := (len(cands) + chunk - 1) / chunk
	if workers > numBatches {
		workers = numBatches
	}
	// StreamBuffer = 1 is honored: one batch in flight serializes the
	// handoff (worker throughput degrades to lockstep) but minimizes how
	// far an early-closed run can overshoot.
	window := m.opts.StreamBuffer
	if window <= 0 {
		window = 2 * workers
	}
	if window < 1 {
		window = 1
	}

	// +REUSE pins every region to the matching order of the first region
	// that survives exploration — the first in SEQUENTIAL order, because the
	// emitted row order depends on the plan. The pre-pass stops at that
	// region and hands the failures before it to the workers as known
	// skips, so total exploration work stays within one region of the
	// sequential run.
	var sharedPlan *searchPlan
	skipBefore := 0
	if m.opts.ReuseOrder {
		rg := newRegion(len(m.q.Vertices))
		for i, vs := range cands {
			if err := m.ctx.Err(); err != nil {
				return 0, err
			}
			rg.reset(vs)
			if m.explore(rg, start, vs) {
				sharedPlan = m.buildPlan(rg)
				skipBefore = i
				break
			}
			skipBefore = i + 1
		}
	}

	ps := &pipeState{
		cands:      cands,
		start:      start,
		chunk:      chunk,
		numBatches: numBatches,
		collect:    visit != nil,
		limit:      m.opts.MaxSolutions,
		sharedPlan: sharedPlan,
		skipBefore: skipBefore,
		done:       make(chan struct{}),
		tokens:     make(chan struct{}, window),
		ring:       make([]chan batchResult, window),
		prof:       pr,
	}
	for i := range ps.ring {
		ps.ring[i] = make(chan batchResult, 1)
	}
	for i := 0; i < window; i++ {
		ps.tokens <- struct{}{}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.pipelineWorker(ps)
		}()
	}
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()

	const maxInt = int(^uint(0) >> 1)
	limit := m.opts.MaxSolutions
	emitted := 0
	var err error
emit:
	for bi := 0; bi < numBatches; bi++ {
		var res batchResult
		select {
		case res = <-ps.ring[bi%window]:
		case <-workersDone:
			// All workers exited before delivering this batch — the context
			// was cancelled before it was claimed. The non-blocking re-check
			// covers the race where the delivery and the last exit landed
			// together.
			select {
			case res = <-ps.ring[bi%window]:
			default:
				err = m.ctx.Err()
				break emit
			}
		}
		if visit == nil {
			// bulkCount saturates per batch; keep the sum saturating too.
			if res.count > maxInt-emitted {
				emitted = maxInt
			} else {
				emitted += res.count
			}
		} else {
			for _, mt := range res.sols {
				emitted++
				if !visit(mt) {
					break emit
				}
				if limit > 0 && emitted >= limit {
					break emit
				}
			}
		}
		if res.err != nil {
			err = res.err
			break emit
		}
		if limit > 0 && emitted >= limit {
			break emit
		}
		// The batch is fully replayed: open the window one batch further.
		ps.tokens <- struct{}{}
	}
	ps.stop.Store(true)
	close(ps.done)
	// Wait for the workers so profile merging is complete and no goroutine
	// outlives the call (Close/cancel rely on this for prompt teardown).
	<-workersDone

	if limit > 0 && emitted > limit {
		emitted = limit
	}
	return emitted, err
}

// pipelineWorker claims batches until the work or the window runs out. Each
// batch replays the sequential per-region loop of matcher.run against a
// worker-private region and search state; solutions are deep-copied into the
// batch buffer because the emitter replays them after this worker has moved
// on to other regions.
func (m *matcher) pipelineWorker(ps *pipeState) {
	var localProf *ProfileResult
	if ps.prof != nil {
		localProf = new(ProfileResult)
		defer func() {
			ps.profMu.Lock()
			ps.prof.merge(localProf)
			ps.profMu.Unlock()
		}()
	}
	var buf []Match
	var visit Visitor
	if ps.collect {
		visit = func(mt Match) bool {
			if ps.stop.Load() {
				return false
			}
			buf = append(buf, mt.Clone())
			return true
		}
	}
	st := newSearchState(m, visit, ps.limit, nil)
	st.profile = localProf
	st.stop = &ps.stop
	rg := newRegion(len(m.q.Vertices))
	plan := ps.sharedPlan
	window := len(ps.ring)
	for {
		if ps.stop.Load() || m.ctx.Err() != nil {
			return
		}
		select {
		case <-ps.tokens:
		case <-ps.done:
			return
		}
		bi := int(ps.cursor.Add(1)) - 1
		if bi >= ps.numBatches {
			return
		}
		lo := bi * ps.chunk
		hi := lo + ps.chunk
		if hi > len(ps.cands) {
			hi = len(ps.cands)
		}
		buf = nil
		countBefore := st.count
		// Cancellation is checked once per claimed batch (above) and
		// amortized inside the search loop, as in the materialized fan-out:
		// a per-candidate ctx.Err() would put the context mutex on every
		// worker's hot path.
		for gi := lo; gi < hi; gi++ {
			if st.stopped {
				break
			}
			if gi < ps.skipBefore {
				continue // known explore failure (the +REUSE pre-pass)
			}
			vs := ps.cands[gi]
			rg.reset(vs)
			if !m.explore(rg, ps.start, vs) {
				continue
			}
			if localProf != nil {
				localProf.Regions++
				for _, total := range rg.totals {
					localProf.ExploredCandidates += total
				}
			}
			if plan == nil || !m.opts.ReuseOrder {
				plan = m.buildPlan(rg)
			}
			st.rg, st.plan = rg, plan
			st.search(0)
		}
		ps.ring[bi%window] <- batchResult{sols: buf, count: st.count - countBefore, err: st.err}
		if st.stopped {
			// Either a context error or the global stop was just delivered
			// with the batch, or this worker's cumulative count reached
			// MaxSolutions — and since its batches are claimed in increasing
			// order, every batch it could still claim lies beyond the
			// emitter's cut-off.
			return
		}
	}
}
