package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph"
)

// starInstance builds hubs with a labeled fan-out and a star query whose
// leaves form one NEC class, exercising worker-side combination expansion.
func starInstance(hubs, fanout, leaves int) (*graph.Graph, *QueryGraph) {
	fHub, fLeaf := uint32(0), uint32(1)
	b := graph.NewBuilder()
	next := uint32(0)
	for h := 0; h < hubs; h++ {
		hv := next
		next++
		b.AddVertexLabel(hv, fHub)
		for f := 0; f < fanout; f++ {
			lv := next
			next++
			b.AddVertexLabel(lv, fLeaf)
			b.AddEdge(hv, 7, lv)
		}
	}
	g := b.Build()
	q := NewQueryGraph()
	hub := q.AddVertex([]uint32{fHub}, NoID)
	for i := 0; i < leaves; i++ {
		leaf := q.AddVertex([]uint32{fLeaf}, NoID)
		q.AddEdge(hub, leaf, 7)
	}
	return g, q
}

// matchKey flattens one match for comparison.
func matchKey(mt Match) string {
	return fmt.Sprintf("%v|%v", mt.Vertices, mt.EdgeLabels)
}

// streamKeys drains Stream into per-row keys.
func streamKeys(t *testing.T, g graph.View, q *QueryGraph, sem Semantics, opts Opts) []string {
	t.Helper()
	var keys []string
	n, err := Stream(context.Background(), g, q, sem, opts, func(mt Match) bool {
		keys = append(keys, matchKey(mt))
		return true
	})
	if err != nil {
		t.Fatalf("Stream(workers=%d): %v", opts.Workers, err)
	}
	if n != len(keys) {
		t.Fatalf("Stream(workers=%d) returned %d, visited %d", opts.Workers, n, len(keys))
	}
	return keys
}

// pipelineInstances is the shared corpus of (graph, query) shapes: wide
// bipartite (many regions), the Fig. 1 instance (joins, non-tree edges),
// the skewed Fig. 2 star (empty result), and NEC-class stars.
func pipelineInstances() []struct {
	name string
	g    *graph.Graph
	q    *QueryGraph
} {
	big, bq := bipartiteInstance(48)
	f1g, f1q := fig1Data(), fig1Query()
	f2g, f2q, _, _, _ := fig2Instance()
	sg, sq := starInstance(40, 5, 3)
	// Point-shaped query (one vertex, no edges): takes the pipeline's
	// sequential fast path, which must still hand Collect owned rows.
	pg, _ := starInstance(12, 4, 1)
	pq := NewQueryGraph()
	pq.AddVertex([]uint32{1}, NoID) // the leaf label
	return []struct {
		name string
		g    *graph.Graph
		q    *QueryGraph
	}{
		{"bipartite", big, bq},
		{"fig1", f1g, f1q},
		{"fig2-empty", f2g, f2q},
		{"nec-star", sg, sq},
		{"point", pg, pq},
	}
}

// TestPipelineOrderDifferential is the tentpole's acceptance test at the
// core layer: for every instance, semantics, and optimization mix, Stream
// with Workers ∈ {2, 3, 8} (and a deliberately tiny reorder window) yields
// exactly the sequential row sequence.
func TestPipelineOrderDifferential(t *testing.T) {
	optVariants := []struct {
		name string
		opts Opts
	}{
		{"baseline", Baseline()},
		{"optimized", Optimized()},
		{"nec-off", Opts{NoNEC: true}},
		{"int-only", Opts{Intersect: true}},
	}
	for _, inst := range pipelineInstances() {
		for _, sem := range []Semantics{Homomorphism, Isomorphism} {
			for _, v := range optVariants {
				t.Run(fmt.Sprintf("%s/%v/%s", inst.name, sem, v.name), func(t *testing.T) {
					seq := v.opts
					seq.Workers = 1
					want := streamKeys(t, inst.g, inst.q, sem, seq)
					for _, workers := range []int{2, 3, 8} {
						for _, window := range []int{0, 1, 2} {
							par := v.opts
							par.Workers = workers
							par.StreamBuffer = window
							got := streamKeys(t, inst.g, inst.q, sem, par)
							if len(got) != len(want) {
								t.Fatalf("workers=%d window=%d: %d rows, want %d", workers, window, len(got), len(want))
							}
							for i := range got {
								if got[i] != want[i] {
									t.Fatalf("workers=%d window=%d row %d:\n got %s\nwant %s", workers, window, i, got[i], want[i])
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestPipelineCollectCountDifferential checks the Collect and Count rewires:
// parallel Collect returns the sequential rows in order (including under a
// MaxSolutions cap — a deterministic prefix) and parallel Count the same
// total.
func TestPipelineCollectCountDifferential(t *testing.T) {
	for _, inst := range pipelineInstances() {
		for _, sem := range []Semantics{Homomorphism, Isomorphism} {
			for _, limit := range []int{0, 7} {
				opts := Optimized()
				opts.Workers = 1
				opts.MaxSolutions = limit
				want, err := Collect(context.Background(), inst.g, inst.q, sem, opts)
				if err != nil {
					t.Fatal(err)
				}
				wantN, err := Count(context.Background(), inst.g, inst.q, sem, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 8} {
					opts.Workers = workers
					got, err := Collect(context.Background(), inst.g, inst.q, sem, opts)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s/%v limit=%d workers=%d: Collect %d rows, want %d",
							inst.name, sem, limit, workers, len(got), len(want))
					}
					for i := range got {
						if matchKey(got[i]) != matchKey(want[i]) {
							t.Fatalf("%s/%v limit=%d workers=%d row %d differs", inst.name, sem, limit, workers, i)
						}
					}
					gotN, err := Count(context.Background(), inst.g, inst.q, sem, opts)
					if err != nil {
						t.Fatal(err)
					}
					if gotN != wantN {
						t.Fatalf("%s/%v limit=%d workers=%d: Count = %d, want %d",
							inst.name, sem, limit, workers, gotN, wantN)
					}
				}
			}
		}
	}
}

// TestPipelineVisitorStop: a visitor returning false stops a parallel
// stream cleanly after the same prefix a sequential stream would deliver.
func TestPipelineVisitorStop(t *testing.T) {
	g, q := bipartiteInstance(32)
	full := streamKeys(t, g, q, Homomorphism, Opts{Workers: 1, Intersect: true})
	const stopAt = 9
	opts := Opts{Workers: 4, Intersect: true}
	var got []string
	n, err := Stream(context.Background(), g, q, Homomorphism, opts, func(mt Match) bool {
		got = append(got, matchKey(mt))
		return len(got) < stopAt
	})
	if err != nil {
		t.Fatalf("visitor stop is not an error, got %v", err)
	}
	if n != stopAt || len(got) != stopAt {
		t.Fatalf("visited %d (returned %d), want %d", len(got), n, stopAt)
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("row %d: %s, want sequential prefix %s", i, got[i], full[i])
		}
	}
}

// TestPipelineCancellation: cancelling mid-stream surfaces ctx.Err() and the
// rows delivered before it form a prefix of the sequential sequence.
func TestPipelineCancellation(t *testing.T) {
	g, q := bipartiteInstance(64)
	full := streamKeys(t, g, q, Homomorphism, Opts{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	var got []string
	_, err := Stream(ctx, g, q, Homomorphism, Opts{Workers: 4}, func(mt Match) bool {
		got = append(got, matchKey(mt))
		if len(got) == 3 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) >= len(full) {
		t.Fatalf("cancellation did not cut the stream (saw all %d rows)", len(got))
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("row %d: %s, want sequential prefix %s", i, got[i], full[i])
		}
	}

	// Already-cancelled context: prompt error from the pipeline too.
	ctx, cancel = context.WithCancel(context.Background())
	cancel()
	if _, err := Stream(ctx, g, q, Homomorphism, Opts{Workers: 4}, func(Match) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
}

// TestPipelineProfileMergesToSequentialTotals: a fully drained parallel run
// merges per-worker counters into exactly the sequential totals, for both
// the enumerating and the NEC bulk-count paths.
func TestPipelineProfileMergesToSequentialTotals(t *testing.T) {
	for _, inst := range pipelineInstances() {
		for _, visitMode := range []string{"count", "stream"} {
			var seq, par ProfileResult
			opts := Optimized()
			opts.Workers = 1
			opts.Profile = &seq
			run := func(o Opts) (int, error) {
				if visitMode == "count" {
					return Count(context.Background(), inst.g, inst.q, Homomorphism, o)
				}
				return Stream(context.Background(), inst.g, inst.q, Homomorphism, o, func(Match) bool { return true })
			}
			wantN, err := run(opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Workers = 4
			opts.Profile = &par
			gotN, err := run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if gotN != wantN {
				t.Fatalf("%s/%s: parallel %d, want %d", inst.name, visitMode, gotN, wantN)
			}
			if par != seq {
				t.Fatalf("%s/%s: parallel profile %+v != sequential %+v", inst.name, visitMode, par, seq)
			}
		}
	}
}

// TestRunSpanAbandonedCursorNoPollution: when the span-local MaxSolutions
// cutoff abandons a region mid-enumeration, the suspended cursor's frames
// still hold used[] flags and predicate-variable bindings in the worker's
// searchState. runSpan must unwind them (regionCursor.abort) before the
// state serves another span — a worker that later steals a range preceding
// the limit cut would otherwise silently drop that range's rows. The test
// drives runSpan directly: a heavy region that trips the cutoff, then a
// light region through the same worker whose every row reuses a data vertex
// (or edge label) the abandoned search had bound.
func TestRunSpanAbandonedCursorNoPollution(t *testing.T) {
	fHub, fLeaf := uint32(0), uint32(1)
	// Hub 0 sees all six shared leaves; hub 1 only leaves 2 and 3 — the very
	// vertices an abandoned hub-0 search holds bound (candidates enumerate in
	// adjacency order, so leaf 2 is bound from the first row on).
	isoInstance := func() (*graph.Graph, *QueryGraph) {
		b := graph.NewBuilder()
		b.AddVertexLabel(0, fHub)
		b.AddVertexLabel(1, fHub)
		for l := uint32(2); l < 8; l++ {
			b.AddVertexLabel(l, fLeaf)
			b.AddEdge(0, 7, l)
		}
		b.AddEdge(1, 7, 2)
		b.AddEdge(1, 7, 3)
		q := NewQueryGraph()
		hub := q.AddVertex([]uint32{fHub}, NoID)
		for i := 0; i < 2; i++ {
			leaf := q.AddVertex([]uint32{fLeaf}, NoID)
			q.AddEdge(hub, leaf, 7)
		}
		return b.Build(), q
	}
	// The query's two edges share predicate variable 0; hub 0's edges are
	// labeled 7, hub 1's 8 — a stale varBind from the abandoned heavy region
	// rejects every light-region label.
	predVarInstance := func() (*graph.Graph, *QueryGraph) {
		b := graph.NewBuilder()
		b.AddVertexLabel(0, fHub)
		b.AddVertexLabel(1, fHub)
		for l := uint32(2); l < 8; l++ {
			b.AddVertexLabel(l, fLeaf)
			b.AddEdge(0, 7, l)
		}
		for l := uint32(8); l < 10; l++ {
			b.AddVertexLabel(l, fLeaf)
			b.AddEdge(1, 8, l)
		}
		q := NewQueryGraph()
		hub := q.AddVertex([]uint32{fHub}, NoID)
		for i := 0; i < 2; i++ {
			leaf := q.AddVertex([]uint32{fLeaf}, NoID)
			q.AddVarEdge(hub, leaf, 0)
		}
		return b.Build(), q
	}

	cases := []struct {
		name      string
		sem       Semantics
		noNEC     bool
		inst      func() (*graph.Graph, *QueryGraph)
		lightRows int // rows of hub 1's region
	}{
		{"iso-used", Isomorphism, true, isoInstance, 2},         // cfSearch bindings
		{"iso-nec-expand", Isomorphism, false, isoInstance, 2},  // cfExpand assignments
		{"hom-predvar", Homomorphism, true, predVarInstance, 4}, // cfWild variable bindings
	}
	for _, tc := range cases {
		for _, limit := range []int{1, 3, 5} {
			t.Run(fmt.Sprintf("%s/limit=%d", tc.name, limit), func(t *testing.T) {
				g, q := tc.inst()
				opts := Optimized()
				opts.NoNEC = tc.noNEC
				opts.Workers = 1
				seq := streamKeys(t, g, q, tc.sem, opts)
				if len(seq)-tc.lightRows <= limit {
					t.Fatalf("heavy region too small (%d total rows) to trip the span cutoff at %d", len(seq), limit)
				}

				m := newMatcher(context.Background(), g, q, tc.sem, opts)
				start, cands := m.startCandidates()
				if len(cands) != 2 {
					t.Fatalf("start vertex %d with %d candidates, want the 2 hubs", start, len(cands))
				}
				m.buildQueryTree(start)
				ps := &pipeState{
					m: m, cands: cands, start: start,
					collect: true, limit: limit, quota: 64,
					done: make(chan struct{}),
				}
				w := &pipeWorker{ps: ps}
				w.st = newSearchState(m, func(mt Match) bool {
					w.buf = append(w.buf, mt.Clone())
					return true
				}, 0, nil)
				w.st.stop = &ps.stop
				w.rg = newRegion(len(m.q.Vertices))

				runOne := func(lo, hi int) []string {
					sw := &spanWork{sub: newSpan(), next: lo, hi: hi}
					out := make(chan []string, 1)
					go func() {
						var keys []string
						for seg := range sw.sub.segs {
							for _, mt := range seg.sols {
								keys = append(keys, matchKey(mt))
							}
						}
						out <- keys
					}()
					w.runSpan(sw)
					return <-out
				}

				// The heavy region exceeds the span limit: runSpan abandons it
				// mid-enumeration after exactly limit rows.
				heavy := runOne(0, 1)
				if len(heavy) != limit {
					t.Fatalf("heavy span delivered %d rows, want the span limit %d", len(heavy), limit)
				}
				for i := range heavy {
					if heavy[i] != seq[i] {
						t.Fatalf("heavy row %d: %s, want %s", i, heavy[i], seq[i])
					}
				}
				// The abandoned cursor must leave no bindings behind.
				for v, u := range w.st.used {
					if u {
						t.Errorf("used[%d] still set after abandoning the heavy region", v)
					}
				}
				for i, bnd := range w.st.varBind {
					if bnd != NoID {
						t.Errorf("varBind[%d] = %d still bound after abandoning the heavy region", i, bnd)
					}
				}
				// The light region through the same worker state stands in for
				// a stolen earlier range the emitter still replays: its rows
				// (up to the fresh span's own limit) must match the sequential
				// tail exactly.
				want := seq[len(seq)-tc.lightRows:]
				if limit < len(want) {
					want = want[:limit]
				}
				light := runOne(1, 2)
				if len(light) != len(want) {
					t.Fatalf("light span delivered %d rows, want %d — stale bindings dropped rows", len(light), len(want))
				}
				for i := range light {
					if light[i] != want[i] {
						t.Fatalf("light row %d: %s, want %s", i, light[i], want[i])
					}
				}
			})
		}
	}
}

// TestPipelineBackpressure: with a tiny reorder window, an early stop leaves
// most regions unexplored — the backpressure contract that makes Close
// cheap on parallel cursors.
func TestPipelineBackpressure(t *testing.T) {
	g, q := bipartiteInstance(256)
	var full ProfileResult
	opts := Opts{Workers: 1, Profile: &full}
	if _, err := Stream(context.Background(), g, q, Homomorphism, opts, func(Match) bool { return true }); err != nil {
		t.Fatal(err)
	}

	var part ProfileResult
	opts = Opts{Workers: 4, StreamBuffer: 2, Profile: &part}
	seen := 0
	if _, err := Stream(context.Background(), g, q, Homomorphism, opts, func(Match) bool {
		seen++
		return seen < 2
	}); err != nil {
		t.Fatal(err)
	}
	if part.Regions == 0 {
		t.Fatalf("no effort recorded: %+v", part)
	}
	if part.Regions*4 >= full.Regions {
		t.Fatalf("early stop explored %d of %d regions despite a 2-batch window", part.Regions, full.Regions)
	}
}
