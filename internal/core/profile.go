package core

import "repro/internal/graph"

// ProfileResult reports where a sequential match run spent its effort — the
// counters behind the paper's §3 profiling discussion (candidate region
// exploration vs subgraph search).
type ProfileResult struct {
	// StartVertex is the chosen starting query vertex.
	StartVertex int
	// StartCandidates is the number of starting data vertices (candidate
	// regions attempted).
	StartCandidates int
	// Regions is the number of non-empty candidate regions.
	Regions int
	// ExploredCandidates is the total number of candidate vertices stored
	// across all regions — the paper's Σ|CR(u)| measure of exploration
	// work.
	ExploredCandidates int
	// SearchNodes is the number of (query vertex, data vertex) bindings
	// attempted by SubgraphSearch.
	SearchNodes int
	// Solutions is the number of matches found.
	Solutions int
}

// Profile runs the match sequentially and returns its effort counters along
// with the solution count. It is a diagnostic tool: the run pays for
// counting but is otherwise identical to Count.
func Profile(g *graph.Graph, q *QueryGraph, sem Semantics, opts Opts) (ProfileResult, error) {
	var pr ProfileResult
	if err := q.Validate(); err != nil {
		return pr, err
	}
	opts.Workers = 1
	m := newMatcher(g, q, sem, opts)

	start, cands := m.startCandidates()
	pr.StartVertex = start
	pr.StartCandidates = len(cands)
	if len(cands) == 0 {
		return pr, nil
	}

	if len(m.q.Vertices) == 1 && len(m.q.Edges) == 0 {
		pr.Regions = len(cands)
		pr.SearchNodes = len(cands)
		pr.Solutions = len(cands)
		if opts.MaxSolutions > 0 && pr.Solutions > opts.MaxSolutions {
			pr.Solutions = opts.MaxSolutions
		}
		return pr, nil
	}

	m.buildQueryTree(start)
	st := newSearchState(m, nil, opts.MaxSolutions, nil)
	st.profile = &pr
	rg := newRegion(len(m.q.Vertices))
	var plan *searchPlan
	for _, vs := range cands {
		rg.reset(vs)
		if !m.explore(rg, start, vs) {
			continue
		}
		pr.Regions++
		for _, total := range rg.totals {
			pr.ExploredCandidates += total
		}
		if plan == nil || !opts.ReuseOrder {
			plan = m.buildPlan(rg)
		}
		st.rg, st.plan = rg, plan
		st.search(0)
		if st.stopped {
			break
		}
	}
	pr.Solutions = st.count
	return pr, nil
}
