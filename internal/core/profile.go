package core

import (
	"context"

	"repro/internal/graph"
)

// ProfileResult reports where a sequential match run spent its effort — the
// counters behind the paper's §3 profiling discussion (candidate region
// exploration vs subgraph search).
type ProfileResult struct {
	// StartVertex is the chosen starting query vertex.
	StartVertex int
	// StartCandidates is the number of starting data vertices (candidate
	// regions attempted).
	StartCandidates int
	// Regions is the number of non-empty candidate regions visited. An
	// early-terminated run (MaxSolutions, a visitor returning false, or
	// context cancellation) reports only the regions actually reached.
	Regions int
	// ExploredCandidates is the total number of candidate vertices stored
	// across all regions — the paper's Σ|CR(u)| measure of exploration
	// work.
	ExploredCandidates int
	// SearchNodes is the number of (query vertex, data vertex) bindings
	// attempted by SubgraphSearch.
	SearchNodes int
	// Solutions is the number of matches found.
	Solutions int

	// NECClasses is the number of neighborhood equivalence classes (two or
	// more members) the query reduction merged; zero when the reduction is
	// disabled or found nothing to merge.
	NECClasses int
	// NECMergedVertices is the number of query vertices the reduction
	// removed from the search (sum over classes of size-1).
	NECMergedVertices int
	// NECExpansionsSkipped counts solutions obtained by combination
	// expansion instead of subgraph search: every reduced solution expanded
	// into f full solutions adds f-1 (the search paths the reduction
	// avoided exploring).
	NECExpansionsSkipped int

	// SignatureChecked counts candidate vertices tested against the compact
	// neighborhood-signature index (vertices whose query vertex required at
	// least one concrete (direction, edge label, neighbor label) triple).
	SignatureChecked int
	// SignatureKilled counts how many of those the 64-bit signature rejected
	// before any label, degree, or adjacency-group work.
	SignatureKilled int
}

// merge folds a pipeline worker's privately accumulated counters into the
// run-wide result. Only the additive effort counters move; identity fields
// (StartVertex, StartCandidates, NECClasses, NECMergedVertices) are written
// once by the coordinator.
func (pr *ProfileResult) merge(src *ProfileResult) {
	pr.Regions += src.Regions
	pr.ExploredCandidates += src.ExploredCandidates
	pr.SearchNodes += src.SearchNodes
	pr.NECExpansionsSkipped += src.NECExpansionsSkipped
	pr.SignatureChecked += src.SignatureChecked
	pr.SignatureKilled += src.SignatureKilled
}

// foldSigCounters adds the matcher's signature-filter atomics into the
// run's profile. Every execution path (run, runPipeline, Cursor) calls it
// exactly once, when the run completes.
func (m *matcher) foldSigCounters() {
	if pr := m.opts.Profile; pr != nil {
		pr.SignatureChecked += int(m.sigChecked.Load())
		pr.SignatureKilled += int(m.sigKilled.Load())
	}
}

// Profile runs the match sequentially and returns its effort counters along
// with the solution count. It is a diagnostic tool: the run pays for
// counting but is otherwise identical to Count. It shares the counting
// machinery with Opts.Profile, which any sequential run can use directly.
func Profile(ctx context.Context, g graph.View, q *QueryGraph, sem Semantics, opts Opts) (ProfileResult, error) {
	var pr ProfileResult
	if err := q.Validate(); err != nil {
		return pr, err
	}
	opts.Workers = 1
	opts.Profile = &pr
	m := newMatcher(ctx, g, q, sem, opts)
	n, err := m.run(nil)
	pr.Solutions = n
	return pr, err
}
