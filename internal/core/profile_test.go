package core

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// fig2Instance rebuilds the Figure 2 matching-order instance (skewed star:
// 10 X, 1000 Y, 5 Z under one A vertex; X-Y and X-Z edges, no Y-Z edges)
// and the clique query over it.
func fig2Instance() (*graph.Graph, *QueryGraph, int, int, int) {
	const (
		numX = 10
		numY = 1000
		numZ = 5
	)
	fX, fY, fZ, fA := uint32(0), uint32(1), uint32(2), uint32(3)
	b := graph.NewBuilder()
	v0 := uint32(0)
	b.AddVertexLabel(v0, fA)
	next := uint32(1)
	var xs, ys, zs []uint32
	for i := 0; i < numX; i++ {
		b.AddVertexLabel(next, fX)
		xs = append(xs, next)
		next++
	}
	for i := 0; i < numY; i++ {
		b.AddVertexLabel(next, fY)
		ys = append(ys, next)
		next++
	}
	for i := 0; i < numZ; i++ {
		b.AddVertexLabel(next, fZ)
		zs = append(zs, next)
		next++
	}
	for _, x := range xs {
		b.AddEdge(v0, 0, x)
	}
	for _, y := range ys {
		b.AddEdge(v0, 0, y)
	}
	for _, z := range zs {
		b.AddEdge(v0, 0, z)
	}
	for i, x := range xs {
		for j, y := range ys {
			if (i+j)%2 == 0 {
				b.AddEdge(x, 0, y)
			}
		}
		for _, z := range zs {
			b.AddEdge(x, 0, z)
		}
	}
	g := b.Build()

	q := NewQueryGraph()
	u0 := q.AddVertex([]uint32{fA}, NoID)
	u1 := q.AddVertex([]uint32{fX}, NoID)
	u2 := q.AddVertex([]uint32{fY}, NoID)
	u3 := q.AddVertex([]uint32{fZ}, NoID)
	q.AddEdge(u0, u1, 0)
	q.AddEdge(u0, u2, 0)
	q.AddEdge(u0, u3, 0)
	q.AddEdge(u1, u2, 0)
	q.AddEdge(u1, u3, 0)
	q.AddEdge(u2, u3, 0)
	return g, q, numX, numY, numZ
}

// TestPaperFig2ExplorationEffort quantifies the Figure 2 claim through the
// profiler: the region-ordered search must stay near the good order's
// 1 + 5*10 comparisons, far from the bad order's 10000*10*5.
func TestPaperFig2ExplorationEffort(t *testing.T) {
	g, q, numX, numY, numZ := fig2Instance()
	pr, err := Profile(context.Background(), g, q, Isomorphism, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Solutions != 0 {
		t.Fatalf("solutions = %d, want 0", pr.Solutions)
	}
	if pr.StartVertex != 0 {
		t.Fatalf("start vertex = %d, want u0 (least candidate regions)", pr.StartVertex)
	}
	if pr.StartCandidates != 1 {
		t.Fatalf("start candidates = %d, want 1", pr.StartCandidates)
	}
	badOrder := numY * numX * numZ
	if pr.SearchNodes*10 >= badOrder {
		t.Fatalf("search nodes = %d, within 10x of the bad order's %d", pr.SearchNodes, badOrder)
	}
}

// TestProfileCountsAgreeWithCount ensures Profile is a faithful Count.
func TestProfileCountsAgreeWithCount(t *testing.T) {
	g := fig1Data()
	q := fig1Query()
	for _, sem := range []Semantics{Homomorphism, Isomorphism} {
		for _, opts := range []Opts{Baseline(), Optimized()} {
			pr, err := Profile(context.Background(), g, q, sem, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Count(context.Background(), g, q, sem, opts)
			if err != nil {
				t.Fatal(err)
			}
			if pr.Solutions != want {
				t.Fatalf("sem %v opts %+v: profile %d vs count %d", sem, opts, pr.Solutions, want)
			}
			if pr.Regions == 0 || pr.SearchNodes == 0 || pr.ExploredCandidates == 0 {
				t.Fatalf("counters not collected: %+v", pr)
			}
		}
	}
}

// TestProfilePointQuery covers the Algorithm 1 lines 1-4 path.
func TestProfilePointQuery(t *testing.T) {
	g := fig1Data()
	q := NewQueryGraph()
	q.AddVertex([]uint32{lC}, NoID)
	pr, err := Profile(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Solutions != 2 || pr.Regions != 2 {
		t.Fatalf("point profile = %+v, want 2 solutions/regions", pr)
	}
}

// TestProfileEmptyCandidates covers the no-candidate early return.
func TestProfileEmptyCandidates(t *testing.T) {
	g := fig1Data()
	q := NewQueryGraph()
	q.AddVertex([]uint32{lA, lB, lC}, NoID) // impossible label combination
	pr, err := Profile(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Solutions != 0 || pr.StartCandidates != 0 {
		t.Fatalf("profile = %+v, want empty", pr)
	}
}
