// Package core implements the TurboHOM / TurboHOM++ matching engine: the
// TurboISO algorithm family (start-vertex selection, query tree, candidate
// region exploration, region-adaptive matching order, backtracking subgraph
// search) generalized from subgraph isomorphism to the e-graph homomorphism
// semantics of RDF pattern matching, plus the paper's optimization suite
// (+INT, -NLF, -DEG, +REUSE) and parallel execution over starting vertices.
package core

import (
	"errors"
	"fmt"
)

// NoID marks a blank (unconstrained) label, edge label, or pinned vertex.
const NoID = ^uint32(0)

// VertexPred is an optional pushed-down predicate over candidate data
// vertices (used by the engine layer to evaluate cheap FILTERs during
// exploration). A nil predicate accepts everything.
type VertexPred func(v uint32) bool

// QueryVertex is one vertex of a query graph.
type QueryVertex struct {
	// Labels is the required label set; a candidate data vertex must carry
	// every listed label (L(u) ⊆ L(M(u))). Empty means unconstrained.
	Labels []uint32
	// ID pins the vertex to one data vertex (the two-attribute vertex
	// model's ID attribute). NoID means unpinned.
	ID uint32
	// Pred optionally rejects candidates during exploration.
	Pred VertexPred
}

// QueryEdge is one directed edge of a query graph.
type QueryEdge struct {
	// From and To index QueryGraph.Vertices; the edge points From -> To.
	From, To int
	// Label is the required edge label, or NoID for a variable predicate.
	Label uint32
	// PredVar names the predicate variable of a wildcard edge. Edges
	// sharing a PredVar >= 0 must bind the same data edge label. -1 means
	// the edge either has a constant label or an anonymous wildcard.
	PredVar int
}

// Wildcard reports whether the edge label is unconstrained.
func (e QueryEdge) Wildcard() bool { return e.Label == NoID }

// QueryGraph is a connected pattern to match against a data graph.
type QueryGraph struct {
	Vertices []QueryVertex
	Edges    []QueryEdge
}

// NewQueryGraph returns an empty query graph.
func NewQueryGraph() *QueryGraph { return &QueryGraph{} }

// AddVertex appends a query vertex and returns its index.
func (q *QueryGraph) AddVertex(labels []uint32, id uint32) int {
	q.Vertices = append(q.Vertices, QueryVertex{Labels: labels, ID: id})
	return len(q.Vertices) - 1
}

// AddEdge appends a directed edge with a constant label.
func (q *QueryGraph) AddEdge(from, to int, label uint32) int {
	q.Edges = append(q.Edges, QueryEdge{From: from, To: to, Label: label, PredVar: -1})
	return len(q.Edges) - 1
}

// AddVarEdge appends a directed edge with a variable predicate. predVar < 0
// makes the wildcard anonymous.
func (q *QueryGraph) AddVarEdge(from, to int, predVar int) int {
	q.Edges = append(q.Edges, QueryEdge{From: from, To: to, Label: NoID, PredVar: predVar})
	return len(q.Edges) - 1
}

// Validate checks structural sanity: non-empty, edge endpoints in range,
// and connectivity (the matcher explores one region per starting vertex, so
// disconnected patterns must be decomposed by the caller).
func (q *QueryGraph) Validate() error {
	if len(q.Vertices) == 0 {
		return errors.New("core: empty query graph")
	}
	for i, e := range q.Edges {
		if e.From < 0 || e.From >= len(q.Vertices) || e.To < 0 || e.To >= len(q.Vertices) {
			return fmt.Errorf("core: edge %d endpoints out of range", i)
		}
	}
	if !q.connected() {
		return errors.New("core: query graph is disconnected; split it into components")
	}
	return nil
}

func (q *QueryGraph) connected() bool {
	if len(q.Vertices) == 0 {
		return true
	}
	seen := make([]bool, len(q.Vertices))
	stack := []int{0}
	seen[0] = true
	n := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range q.Edges {
			var w int
			switch u {
			case e.From:
				w = e.To
			case e.To:
				w = e.From
			default:
				continue
			}
			if !seen[w] {
				seen[w] = true
				n++
				stack = append(stack, w)
			}
		}
	}
	return n == len(q.Vertices)
}

// adjacentEdges returns, for every vertex, the indices of its incident
// edges (self-loops listed once).
func (q *QueryGraph) adjacentEdges() [][]int {
	adj := make([][]int, len(q.Vertices))
	for i, e := range q.Edges {
		adj[e.From] = append(adj[e.From], i)
		if e.To != e.From {
			adj[e.To] = append(adj[e.To], i)
		}
	}
	return adj
}
