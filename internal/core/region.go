package core

import "sort"

// regionKey identifies a (query vertex, parent data vertex) pair inside one
// candidate region.
type regionKey uint64

func rkey(u int, v uint32) regionKey {
	return regionKey(u)<<32 | regionKey(v)
}

const (
	stUnknown int8 = iota
	stOK
	stFail
)

// region holds one candidate region: for every query-tree vertex u and every
// data vertex v matched to u's parent, the filtered candidate list CR(u, v)
// (paper §2.2, ExploreCandidateRegion). Exploration is memoized per (u, v),
// so shared subtrees are explored once.
type region struct {
	root   uint32
	cand   map[regionKey][]uint32
	state  map[regionKey]int8
	totals []int // per query vertex: total candidates across parents
}

func newRegion(numQueryVertices int) *region {
	return &region{
		cand:   make(map[regionKey][]uint32),
		state:  make(map[regionKey]int8),
		totals: make([]int, numQueryVertices),
	}
}

func (r *region) reset(root uint32) {
	r.root = root
	clear(r.cand)
	clear(r.state)
	for i := range r.totals {
		r.totals[i] = 0
	}
}

// explore grows the candidate region depth-first along the query tree from
// (u, v). It returns false when some required subtree cannot be matched, in
// which case v is not a viable candidate for u. Results are memoized.
//
// Unlike TurboISO's isomorphism-mode exploration we do not enforce path
// injectivity here: the region is a safe over-approximation and
// SubgraphSearch re-checks injectivity exactly. This keeps the memoization
// path-independent, which the e-graph homomorphism mode needs anyway.
func (m *matcher) explore(rg *region, u int, v uint32) bool {
	k := rkey(u, v)
	if st := rg.state[k]; st != stUnknown {
		return st == stOK
	}
	children := m.children[u]
	lists := make([][]uint32, len(children))
	for i, c := range children {
		base := m.childCandidates(nil, c, v)
		surv := base[:0]
		for _, w := range base {
			if m.explore(rg, c, w) {
				surv = append(surv, w)
			}
		}
		// A deferred NEC class needs one candidate per member under
		// isomorphism (members bind injectively); fewer can never complete.
		need := 1
		if m.sem == Isomorphism && m.red != nil && m.red.classOf[c] >= 0 {
			need = m.red.classSize[c]
		}
		if len(surv) < need {
			rg.state[k] = stFail
			return false
		}
		lists[i] = surv
	}
	for i, c := range children {
		ck := rkey(c, v)
		rg.cand[ck] = lists[i]
		rg.totals[c] += len(lists[i])
	}
	rg.state[k] = stOK
	return true
}

// searchPlan is the region-specific matching order plus the per-position
// edge bookkeeping derived from it.
type searchPlan struct {
	order []int // matching order; order[0] == start
	pos   []int // inverse of order
	// constJoins[dc]: constant-label non-tree edges (excluding self-loops)
	// whose second endpoint is matched at position dc — the IsJoinable set.
	constJoins [][]int
	// selfConst[dc]: constant-label self-loops on order[dc].
	selfConst [][]int
	// wild[dc]: wildcard edges fully resolved at position dc (the wildcard
	// tree edge of order[dc], wildcard non-tree edges, wildcard self-loops).
	// Their labels are enumerated and bound during search.
	wild [][]int
}

// buildPlan implements DetermineMatchingOrder: rank the root-to-leaf query
// paths by candidate population in this region (ascending) and merge them
// into one matching order, then precompute the join-edge schedule.
func (m *matcher) buildPlan(rg *region) *searchPlan {
	var paths [][]int
	var walk func(u int, acc []int)
	walk = func(u int, acc []int) {
		acc = append(acc, u)
		if len(m.children[u]) == 0 {
			paths = append(paths, append([]int(nil), acc...))
			return
		}
		for _, c := range m.children[u] {
			walk(c, acc)
		}
	}
	walk(m.start, nil)

	est := make([]int, len(paths))
	for i, p := range paths {
		for _, u := range p[1:] {
			est[i] += rg.totals[u]
		}
	}
	idx := make([]int, len(paths))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return est[idx[a]] < est[idx[b]] })

	n := len(m.q.Vertices)
	plan := &searchPlan{pos: make([]int, n)}
	added := make([]bool, n)
	for _, pi := range idx {
		for _, u := range paths[pi] {
			if !added[u] {
				added[u] = true
				plan.pos[u] = len(plan.order)
				plan.order = append(plan.order, u)
			}
		}
	}

	plan.constJoins = make([][]int, n)
	plan.selfConst = make([][]int, n)
	plan.wild = make([][]int, n)
	// Wildcard tree edges resolve at the child's position.
	for u := 0; u < n; u++ {
		if u != m.start && m.q.Edges[m.parentEdge[u]].Wildcard() {
			dc := plan.pos[u]
			plan.wild[dc] = append(plan.wild[dc], m.parentEdge[u])
		}
	}
	// Non-tree edges resolve where their later endpoint is placed.
	for _, ei := range m.nonTree {
		e := m.q.Edges[ei]
		dc := plan.pos[e.From]
		if plan.pos[e.To] > dc {
			dc = plan.pos[e.To]
		}
		switch {
		case e.Wildcard():
			plan.wild[dc] = append(plan.wild[dc], ei)
		case e.From == e.To:
			plan.selfConst[dc] = append(plan.selfConst[dc], ei)
		default:
			plan.constJoins[dc] = append(plan.constJoins[dc], ei)
		}
	}
	return plan
}
