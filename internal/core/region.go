package core

import (
	"sort"

	"repro/internal/graph"
)

// regionKey identifies a (query vertex, parent data vertex) pair inside one
// candidate region.
type regionKey uint64

func rkey(u int, v uint32) regionKey {
	return regionKey(u)<<32 | regionKey(v)
}

const (
	stUnknown int8 = iota
	stOK
	stFail
)

// region holds one candidate region: for every query-tree vertex u and every
// data vertex v matched to u's parent, the filtered candidate list CR(u, v)
// (paper §2.2, ExploreCandidateRegion). Exploration is memoized per (u, v),
// so shared subtrees are explored once.
type region struct {
	root   uint32
	cand   map[regionKey][]uint32
	state  map[regionKey]int8
	totals []int // per query vertex: total candidates across parents
}

func newRegion(numQueryVertices int) *region {
	return &region{
		cand:   make(map[regionKey][]uint32),
		state:  make(map[regionKey]int8),
		totals: make([]int, numQueryVertices),
	}
}

func (r *region) reset(root uint32) {
	r.root = root
	clear(r.cand)
	clear(r.state)
	for i := range r.totals {
		r.totals[i] = 0
	}
}

// explore grows the candidate region depth-first along the query tree from
// (u, v). It returns false when some required subtree cannot be matched, in
// which case v is not a viable candidate for u. Results are memoized.
//
// Unlike TurboISO's isomorphism-mode exploration we do not enforce path
// injectivity here: the region is a safe over-approximation and
// SubgraphSearch re-checks injectivity exactly. This keeps the memoization
// path-independent, which the e-graph homomorphism mode needs anyway.
func (m *matcher) explore(rg *region, u int, v uint32) bool {
	k := rkey(u, v)
	if st := rg.state[k]; st != stUnknown {
		return st == stOK
	}
	children := m.children[u]
	lists := make([][]uint32, len(children))
	for i, c := range children {
		base := m.childCandidates(nil, c, v)
		surv := base[:0]
		for _, w := range base {
			if m.explore(rg, c, w) {
				surv = append(surv, w)
			}
		}
		// A deferred NEC class needs one candidate per member under
		// isomorphism (members bind injectively); fewer can never complete.
		need := 1
		if m.sem == Isomorphism && m.red != nil && m.red.classOf[c] >= 0 {
			need = m.red.classSize[c]
		}
		if len(surv) < need {
			rg.state[k] = stFail
			return false
		}
		lists[i] = surv
	}
	for i, c := range children {
		ck := rkey(c, v)
		rg.cand[ck] = lists[i]
		rg.totals[c] += len(lists[i])
	}
	rg.state[k] = stOK
	return true
}

// searchPlan is the region-specific matching order plus the per-position
// edge bookkeeping derived from it.
type searchPlan struct {
	order []int // matching order; order[0] == start
	pos   []int // inverse of order
	// constJoins[dc]: constant-label non-tree edges (excluding self-loops)
	// whose second endpoint is matched at position dc — the IsJoinable set.
	constJoins [][]int
	// selfConst[dc]: constant-label self-loops on order[dc].
	selfConst [][]int
	// wild[dc]: wildcard edges fully resolved at position dc (the wildcard
	// tree edge of order[dc], wildcard non-tree edges, wildcard self-loops).
	// Their labels are enumerated and bound during search.
	wild [][]int
}

// buildPlan implements DetermineMatchingOrder: rank the root-to-leaf query
// paths — by the statistics-driven cost model under Opts.CostOrder, by
// candidate population in this region (ascending) otherwise — and merge them
// into one matching order, then precompute the join-edge schedule.
func (m *matcher) buildPlan(rg *region) *searchPlan {
	var paths [][]int
	var walk func(u int, acc []int)
	walk = func(u int, acc []int) {
		acc = append(acc, u)
		if len(m.children[u]) == 0 {
			paths = append(paths, append([]int(nil), acc...))
			return
		}
		for _, c := range m.children[u] {
			walk(c, acc)
		}
	}
	walk(m.start, nil)

	idx := make([]int, len(paths))
	for i := range idx {
		idx[i] = i
	}
	if st := m.g.Stats(); m.opts.CostOrder && st != nil {
		// Exchange-argument ranking: running path i before path j costs
		// roughly k_i + c_i·k_j (the later path repeats once per solution
		// prefix of the earlier), so i belongs first iff
		// k_i·(c_j−1) > k_j·(c_i−1). With every c clamped to ≥1 this is a
		// consistent ordering (equivalent to descending k/(c−1), where
		// shrinking paths sort first); ties keep the BFS path order, like
		// the paper's stable sort.
		k, c := m.pathCosts(paths, rg, st)
		sort.SliceStable(idx, func(a, b int) bool {
			i, j := idx[a], idx[b]
			return k[i]*(c[j]-1) > k[j]*(c[i]-1)
		})
	} else {
		est := make([]int, len(paths))
		for i, p := range paths {
			for _, u := range p[1:] {
				est[i] += rg.totals[u]
			}
		}
		sort.SliceStable(idx, func(a, b int) bool { return est[idx[a]] < est[idx[b]] })
	}

	n := len(m.q.Vertices)
	plan := &searchPlan{pos: make([]int, n)}
	added := make([]bool, n)
	for _, pi := range idx {
		for _, u := range paths[pi] {
			if !added[u] {
				added[u] = true
				plan.pos[u] = len(plan.order)
				plan.order = append(plan.order, u)
			}
		}
	}

	plan.constJoins = make([][]int, n)
	plan.selfConst = make([][]int, n)
	plan.wild = make([][]int, n)
	// Wildcard tree edges resolve at the child's position.
	for u := 0; u < n; u++ {
		if u != m.start && m.q.Edges[m.parentEdge[u]].Wildcard() {
			dc := plan.pos[u]
			plan.wild[dc] = append(plan.wild[dc], m.parentEdge[u])
		}
	}
	// Non-tree edges resolve where their later endpoint is placed.
	for _, ei := range m.nonTree {
		e := m.q.Edges[ei]
		dc := plan.pos[e.From]
		if plan.pos[e.To] > dc {
			dc = plan.pos[e.To]
		}
		switch {
		case e.Wildcard():
			plan.wild[dc] = append(plan.wild[dc], ei)
		case e.From == e.To:
			plan.selfConst[dc] = append(plan.selfConst[dc], ei)
		default:
			plan.constJoins[dc] = append(plan.constJoins[dc], ei)
		}
	}
	return plan
}

// joinAvgFanout estimates how many candidates for u one bound data vertex at
// the other endpoint of constant non-tree edge e admits: the average
// out-fanout E/S of the edge label when the bound side is the subject, the
// average in-fanout E/O when it is the object.
func joinAvgFanout(st *graph.Stats, e *QueryEdge, u int) float64 {
	if e.From != u { // bound --el--> u
		return float64(st.EdgeCount(e.Label)) / float64(max(st.SubjectCount(e.Label), 1))
	}
	return float64(st.EdgeCount(e.Label)) / float64(max(st.ObjectCount(e.Label), 1))
}

// pathCosts evaluates the cost model on each root-to-leaf path: walking down
// a path, the running cardinality multiplies by the per-step average fanout
// (this region's candidate totals, child over parent) and is clamped by any
// constant non-tree join whose other endpoint is already bound on the same
// path — the join admits at most cardAt(other)·avg-fanout bindings, however
// large the tree fanout is. The per-path cost k is the sum of the step
// cardinalities (the nodes the search visits, with joins applied before the
// visit as +INT does); c is the final cardinality the path hands to the
// paths merged after it.
func (m *matcher) pathCosts(paths [][]int, rg *region, st *graph.Stats) (k, c []float64) {
	k = make([]float64, len(paths))
	c = make([]float64, len(paths))
	n := len(m.q.Vertices)
	onPath := make([]int, n) // step index within the current path, -1 outside
	cardAt := make([]float64, n)
	for i := range onPath {
		onPath[i] = -1
	}
	for pi, p := range paths {
		for step, u := range p {
			onPath[u] = step
		}
		cardAt[p[0]] = 1
		card, cost := 1.0, 0.0
		for step := 1; step < len(p); step++ {
			u := p[step]
			parentTotal := float64(rg.totals[p[step-1]])
			if step == 1 || parentTotal < 1 {
				// The start vertex has exactly one candidate per region (the
				// region root), which rg.totals does not record.
				parentTotal = 1
			}
			card *= float64(rg.totals[u]) / parentTotal
			for _, ei := range m.adjEdges[u] {
				e := &m.q.Edges[ei]
				if e.Wildcard() || ei == m.parentEdge[u] || e.From == e.To {
					continue
				}
				w := e.From + e.To - u
				if ws := onPath[w]; ws < 0 || ws >= step {
					continue // other endpoint not bound earlier on this path
				}
				if bound := cardAt[w] * joinAvgFanout(st, e, u); bound < card {
					card = bound
				}
			}
			cost += card
			cardAt[u] = card
		}
		k[pi], c[pi] = cost, card
		if c[pi] < 1 {
			c[pi] = 1
		}
		for _, u := range p {
			onPath[u] = -1
		}
	}
	return k, c
}

// orderCosts evaluates the cost model along a finished matching order: the
// estimated number of search nodes visited at each position, cumulative over
// the whole prefix (not per-path). Used by Explain.
func (m *matcher) orderCosts(rg *region, plan *searchPlan, st *graph.Stats) []float64 {
	costs := make([]float64, len(plan.order))
	cardAt := make([]float64, len(plan.order)) // by position
	for dc, u := range plan.order {
		if dc == 0 {
			costs[0], cardAt[0] = 1, 1
			continue
		}
		p := m.parent[u]
		parentTotal := float64(rg.totals[p])
		if p == m.start || parentTotal < 1 {
			parentTotal = 1
		}
		card := cardAt[plan.pos[p]] * float64(rg.totals[u]) / parentTotal
		for _, ei := range plan.constJoins[dc] {
			e := &m.q.Edges[ei]
			w := e.From + e.To - u
			if bound := cardAt[plan.pos[w]] * joinAvgFanout(st, e, u); bound < card {
				card = bound
			}
		}
		costs[dc], cardAt[dc] = card, card
	}
	return costs
}
