package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/graph"
)

// singleRegionInstance builds the adversarial shape for region-internal
// splitting: one hub with a unique label, so the whole match set lives in ONE
// candidate region (one start candidate, one batch, one span). Without
// in-region splitting the pipeline degenerates to a sequential run however
// many workers it is given. hub --7--> a (mids of them) --8--> b (leaves per
// mid), queried by the chain r -> x -> y.
func singleRegionInstance(mids, leaves int) (*graph.Graph, *QueryGraph) {
	fHub, fMid, fLeaf := uint32(0), uint32(1), uint32(2)
	b := graph.NewBuilder()
	b.AddVertexLabel(0, fHub)
	next := uint32(1)
	for i := 0; i < mids; i++ {
		mv := next
		next++
		b.AddVertexLabel(mv, fMid)
		b.AddEdge(0, 7, mv)
		for j := 0; j < leaves; j++ {
			lv := next
			next++
			b.AddVertexLabel(lv, fLeaf)
			b.AddEdge(mv, 8, lv)
		}
	}
	q := NewQueryGraph()
	r := q.AddVertex([]uint32{fHub}, NoID)
	x := q.AddVertex([]uint32{fMid}, NoID)
	y := q.AddVertex([]uint32{fLeaf}, NoID)
	q.AddEdge(r, x, 7)
	q.AddEdge(x, y, 8)
	return b.Build(), q
}

// TestRegionSplitDifferential: on a single-region instance — where batch
// stealing can never engage — parallel Stream/Collect must still deliver the
// byte-identical sequential row sequence for every worker count, Count must
// agree (including under MaxSolutions), and the region-split counter must
// prove the in-region stealing path actually carried work.
func TestRegionSplitDifferential(t *testing.T) {
	g, q := singleRegionInstance(96, 40)
	splitBase := regionSplits.Load()
	for _, sem := range []Semantics{Homomorphism, Isomorphism} {
		seq := Optimized()
		seq.Workers = 1
		want := streamKeys(t, g, q, sem, seq)
		wantN, err := Count(context.Background(), g, q, sem, seq)
		if err != nil {
			t.Fatal(err)
		}
		if wantN != len(want) {
			t.Fatalf("%v: sequential Count %d != %d rows", sem, wantN, len(want))
		}
		for _, workers := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%v/workers=%d", sem, workers), func(t *testing.T) {
				par := Optimized()
				par.Workers = workers
				par.StreamBuffer = 8
				got := streamKeys(t, g, q, sem, par)
				if len(got) != len(want) {
					t.Fatalf("%d rows, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("row %d:\n got %s\nwant %s", i, got[i], want[i])
					}
				}
				gotN, err := Count(context.Background(), g, q, sem, par)
				if err != nil {
					t.Fatal(err)
				}
				if gotN != wantN {
					t.Fatalf("Count = %d, want %d", gotN, wantN)
				}
				for _, limit := range []int{1, 57} {
					lim := par
					lim.MaxSolutions = limit
					rows, err := Collect(context.Background(), g, q, sem, lim)
					if err != nil {
						t.Fatal(err)
					}
					if len(rows) != limit {
						t.Fatalf("limit=%d: Collect %d rows", limit, len(rows))
					}
					for i, mt := range rows {
						if matchKey(mt) != want[i] {
							t.Fatalf("limit=%d row %d differs from sequential prefix", limit, i)
						}
					}
					n, err := Count(context.Background(), g, q, sem, lim)
					if err != nil {
						t.Fatal(err)
					}
					if n != limit {
						t.Fatalf("limit=%d: Count = %d", limit, n)
					}
				}
			})
		}
	}
	// Split engagement is timing-dependent — a thief must catch the region
	// while it is still running — so if the differential runs above finished
	// too fast to be caught, prove engagement on a heavier instance, retrying
	// a bounded number of times. The correctness checks above do not depend
	// on whether a split happened; this only asserts the path can carry work.
	if regionSplits.Load() == splitBase {
		hg, hq := singleRegionInstance(64, 600)
		par := Optimized()
		par.Workers = 8
		for i := 0; i < 25 && regionSplits.Load() == splitBase; i++ {
			if _, err := Count(context.Background(), hg, hq, Homomorphism, par); err != nil {
				t.Fatal(err)
			}
		}
	}
	if regionSplits.Load() == splitBase {
		t.Errorf("no region-internal split engaged on a single-region instance")
	}
}
