package core

// run executes the full TurboHOM++ pipeline sequentially: choose a start
// vertex, build the query tree, then per starting data vertex explore the
// candidate region, determine (or reuse) the matching order, and search.
// The matcher's context is checked between candidate regions (and inside
// the search loop, see searchState), so cancellation abandons the regions
// not yet explored.
func (m *matcher) run(visit Visitor) (int, error) {
	pr := m.opts.Profile
	if pr != nil {
		// The signature-filter counters accumulate on the matcher (shared
		// atomics) through every passFilters call, including the start-vertex
		// refinement below; fold them exactly once on the way out.
		defer m.foldSigCounters()
	}
	start, cands := m.startCandidates()
	if pr != nil {
		pr.StartVertex = start
		pr.StartCandidates = len(cands)
		if m.red != nil {
			pr.NECClasses = len(m.red.classes)
			pr.NECMergedVertices = m.red.mergedVertices()
		}
	}
	if len(cands) == 0 {
		return 0, nil
	}
	// Point-shaped query (Algorithm 1 lines 1-4): a single vertex with no
	// edges needs no region machinery — every filtered candidate is a
	// solution. This is the case the type-aware transformation creates for
	// class-scan queries like LUBM Q6/Q14.
	if len(m.q.Vertices) == 1 && len(m.q.Edges) == 0 {
		st := newSearchState(m, visit, m.opts.MaxSolutions, nil)
		for i, v := range cands {
			if i&1023 == 0 {
				if err := m.ctx.Err(); err != nil {
					return st.count, err
				}
			}
			if pr != nil {
				pr.Regions++
				pr.SearchNodes++
			}
			st.mapping[0] = v
			st.emit()
			if st.stopped {
				break
			}
		}
		return st.count, st.err
	}
	m.buildQueryTree(start)
	st := newSearchState(m, visit, m.opts.MaxSolutions, nil)
	st.profile = pr
	rg := newRegion(len(m.q.Vertices))
	var plan *searchPlan
	for _, vs := range cands {
		if err := m.ctx.Err(); err != nil {
			return st.count, err
		}
		rg.reset(vs)
		if !m.explore(rg, start, vs) {
			continue
		}
		if pr != nil {
			pr.Regions++
			for _, total := range rg.totals {
				pr.ExploredCandidates += total
			}
		}
		if plan == nil || !m.opts.ReuseOrder {
			plan = m.buildPlan(rg)
			if m.onPlan != nil {
				m.onPlan(rg, plan)
			}
		}
		st.rg, st.plan = rg, plan
		st.search(0)
		if st.stopped {
			break
		}
	}
	n := st.count
	// The NEC bulk count can overshoot the cap by one expansion batch.
	if m.opts.MaxSolutions > 0 && n > m.opts.MaxSolutions {
		n = m.opts.MaxSolutions
	}
	return n, st.err
}
