package core

import (
	"sync"
	"sync/atomic"
)

// run executes the full TurboHOM++ pipeline sequentially: choose a start
// vertex, build the query tree, then per starting data vertex explore the
// candidate region, determine (or reuse) the matching order, and search.
// The matcher's context is checked between candidate regions (and inside
// the search loop, see searchState), so cancellation abandons the regions
// not yet explored.
func (m *matcher) run(visit Visitor) (int, error) {
	start, cands := m.startCandidates()
	pr := m.opts.Profile
	if pr != nil {
		pr.StartVertex = start
		pr.StartCandidates = len(cands)
		if m.red != nil {
			pr.NECClasses = len(m.red.classes)
			pr.NECMergedVertices = m.red.mergedVertices()
		}
	}
	if len(cands) == 0 {
		return 0, nil
	}
	// Point-shaped query (Algorithm 1 lines 1-4): a single vertex with no
	// edges needs no region machinery — every filtered candidate is a
	// solution. This is the case the type-aware transformation creates for
	// class-scan queries like LUBM Q6/Q14.
	if len(m.q.Vertices) == 1 && len(m.q.Edges) == 0 {
		st := newSearchState(m, visit, m.opts.MaxSolutions, nil)
		for i, v := range cands {
			if i&1023 == 0 {
				if err := m.ctx.Err(); err != nil {
					return st.count, err
				}
			}
			if pr != nil {
				pr.Regions++
				pr.SearchNodes++
			}
			st.mapping[0] = v
			st.emit()
			if st.stopped {
				break
			}
		}
		return st.count, st.err
	}
	m.buildQueryTree(start)
	st := newSearchState(m, visit, m.opts.MaxSolutions, nil)
	st.profile = pr
	rg := newRegion(len(m.q.Vertices))
	var plan *searchPlan
	for _, vs := range cands {
		if err := m.ctx.Err(); err != nil {
			return st.count, err
		}
		rg.reset(vs)
		if !m.explore(rg, start, vs) {
			continue
		}
		if pr != nil {
			pr.Regions++
			for _, total := range rg.totals {
				pr.ExploredCandidates += total
			}
		}
		if plan == nil || !m.opts.ReuseOrder {
			plan = m.buildPlan(rg)
		}
		st.rg, st.plan = rg, plan
		st.search(0)
		if st.stopped {
			break
		}
	}
	n := st.count
	// The NEC bulk count can overshoot the cap by one expansion batch.
	if m.opts.MaxSolutions > 0 && n > m.opts.MaxSolutions {
		n = m.opts.MaxSolutions
	}
	return n, st.err
}

// runParallelCount distributes starting vertices across workers (paper
// §5.2: dynamic small-chunk distribution) and counts solutions.
func (m *matcher) runParallelCount() (int, error) {
	total, _, err := m.runParallel(false)
	if err != nil {
		return 0, err
	}
	n := int(total)
	if m.opts.MaxSolutions > 0 && n > m.opts.MaxSolutions {
		n = m.opts.MaxSolutions
	}
	return n, nil
}

// runParallelCollect distributes starting vertices across workers and
// returns the merged solutions.
func (m *matcher) runParallelCollect() ([]Match, error) {
	_, sols, err := m.runParallel(true)
	if err != nil {
		return nil, err
	}
	if m.opts.MaxSolutions > 0 && len(sols) > m.opts.MaxSolutions {
		sols = sols[:m.opts.MaxSolutions]
	}
	return sols, nil
}

func (m *matcher) runParallel(collect bool) (int64, []Match, error) {
	start, cands := m.startCandidates()
	if len(cands) == 0 {
		return 0, nil, nil
	}
	// Point-shaped queries have no per-region work to distribute; the
	// sequential fast path is optimal.
	if len(m.q.Vertices) == 1 && len(m.q.Edges) == 0 {
		var sols []Match
		visit := Visitor(nil)
		if collect {
			visit = func(mt Match) bool {
				sols = append(sols, mt.Clone())
				return true
			}
		}
		n, err := m.run(visit)
		return int64(n), sols, err
	}
	m.buildQueryTree(start)

	workers := m.opts.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	// Dynamic distribution: small chunks claimed from a shared cursor so
	// skewed candidate regions do not starve workers.
	chunk := len(cands)/(workers*8) + 1
	if chunk > 256 {
		chunk = 256
	}
	numChunks := (len(cands) + chunk - 1) / chunk

	var cursor, total atomic.Int64
	// Solutions are gathered per chunk and merged in chunk order, so a full
	// parallel Collect returns exactly the sequential enumeration order
	// regardless of how workers raced over the chunks. (Under MaxSolutions
	// early termination the surviving subset is unspecified, as before.)
	var perChunk [][]Match
	if collect {
		perChunk = make([][]Match, numChunks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cur *[]Match
			var visit Visitor
			if collect {
				visit = func(mt Match) bool {
					*cur = append(*cur, mt.Clone())
					return true
				}
			}
			st := newSearchState(m, visit, m.opts.MaxSolutions, &total)
			rg := newRegion(len(m.q.Vertices))
			var plan *searchPlan
			for {
				if st.stopped || m.ctx.Err() != nil {
					return
				}
				ci := int(cursor.Add(1)) - 1
				if ci >= numChunks {
					return
				}
				lo := ci * chunk
				hi := lo + chunk
				if hi > len(cands) {
					hi = len(cands)
				}
				var sols []Match
				cur = &sols
				// Cancellation is checked once per claimed chunk (above) and
				// amortized inside the search loop; a per-candidate ctx.Err()
				// here would put the context mutex on every worker's hot path.
				for _, vs := range cands[lo:hi] {
					if st.stopped {
						break
					}
					rg.reset(vs)
					if !m.explore(rg, start, vs) {
						continue
					}
					if plan == nil || !m.opts.ReuseOrder {
						plan = m.buildPlan(rg)
					}
					st.rg, st.plan = rg, plan
					st.search(0)
				}
				if collect {
					perChunk[ci] = sols
				}
			}
		}()
	}
	wg.Wait()

	if err := m.ctx.Err(); err != nil {
		return total.Load(), nil, err
	}
	if !collect {
		return total.Load(), nil, nil
	}
	var merged []Match
	for _, sols := range perChunk {
		merged = append(merged, sols...)
	}
	return total.Load(), merged, nil
}
