package core

import (
	"context"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/intset"
)

// This file holds the recursive SubgraphSearch — the sequential production
// path (run()) and the reference implementation the resumable cursor in
// cursor.go is differential-tested against. The two must enumerate
// identically: any change to the loops below needs a mirrored change in the
// cursor's frame machine, and vice versa (TestCursorDifferential and
// FuzzResumePoints enforce this).

// searchState is the per-worker mutable state of SubgraphSearch.
type searchState struct {
	m     *matcher
	ctx   context.Context
	visit Visitor

	rg   *region
	plan *searchPlan

	mapping  []uint32 // M: query vertex -> data vertex
	edgeBind []uint32 // Me: query edge -> bound edge label
	varBind  []uint32 // predicate variable -> bound edge label (NoID unbound)
	used     []bool   // F: isomorphism-mode in-use flags (nil for hom)

	count   int
	limit   int
	steps   int // search-loop iterations since the last context check
	stopped bool
	err     error // context error that stopped the search (nil otherwise)

	profile *ProfileResult // optional effort counters (Profile only)

	shared *atomic.Int64 // cross-worker solution count (nil if sequential)

	// stop, when non-nil, is the pipeline's global abandon flag: the emitter
	// sets it when the consumer stops early, and the periodic check below
	// folds it into the same cadence as the context check so a worker deep
	// inside one enormous region notices promptly.
	stop *atomic.Bool

	// NEC expansion state (nil without a reduction). classCands[ci] is the
	// snapshot of class ci's admissible candidate set, taken when the search
	// passes the representative's position; fullMap/fullEdges are the
	// original-query-space Match buffers filled by expansion at emit time.
	classCands [][]uint32
	fullMap    []uint32
	fullEdges  []uint32

	// Per-depth scratch buffers for the +INT intersections; indexed by the
	// matching-order position so nested recursion never aliases.
	candBuf  [][]uint32
	adjBuf   [][]uint32
	listsBuf [][][]uint32
	rootBuf  [1]uint32
	lblBuf   []uint32
}

func newSearchState(m *matcher, visit Visitor, limit int, shared *atomic.Int64) *searchState {
	n := len(m.q.Vertices)
	s := &searchState{
		m:        m,
		ctx:      m.ctx,
		visit:    visit,
		mapping:  make([]uint32, n),
		edgeBind: make([]uint32, len(m.q.Edges)),
		count:    0,
		limit:    limit,
		shared:   shared,
		candBuf:  make([][]uint32, n),
		adjBuf:   make([][]uint32, n),
		listsBuf: make([][][]uint32, n),
	}
	maxVar := -1
	for i, e := range m.q.Edges {
		if e.Wildcard() {
			s.edgeBind[i] = NoID
		} else {
			s.edgeBind[i] = e.Label
		}
		if e.PredVar > maxVar {
			maxVar = e.PredVar
		}
	}
	s.varBind = make([]uint32, maxVar+1)
	for i := range s.varBind {
		s.varBind[i] = NoID
	}
	if m.sem == Isomorphism {
		s.used = make([]bool, m.g.NumVertices())
	}
	if m.red != nil {
		s.classCands = make([][]uint32, len(m.red.classes))
		s.fullMap = make([]uint32, len(m.red.orig.Vertices))
		s.fullEdges = make([]uint32, len(m.red.orig.Edges))
		for i, e := range m.red.orig.Edges {
			if m.red.edgeMap[i] < 0 {
				// Dropped member edges are constant-label by construction.
				s.fullEdges[i] = e.Label
			}
		}
	}
	return s
}

func (s *searchState) emit() {
	if s.m.red != nil {
		s.emitNEC()
		return
	}
	s.emitMatch(s.mapping, s.edgeBind)
}

// emitMatch delivers one concrete solution and updates the count/limit
// bookkeeping.
func (s *searchState) emitMatch(mv, me []uint32) {
	s.count++
	if s.visit != nil && !s.visit(Match{Vertices: mv, EdgeLabels: me}) {
		s.stopped = true
		return
	}
	if s.shared != nil {
		total := s.shared.Add(1)
		if s.limit > 0 && total >= int64(s.limit) {
			s.stopped = true
		}
		return
	}
	if s.limit > 0 && s.count >= s.limit {
		s.stopped = true
	}
}

// bulkCount accounts for n solutions at once without materializing them —
// the combinatorial fast path of the NEC expansion. The accumulator
// saturates instead of wrapping: expansion factors themselves saturate in
// emitNEC, so repeated regions could otherwise push the sum negative.
func (s *searchState) bulkCount(n int) {
	const maxInt = int(^uint(0) >> 1)
	if n > maxInt-s.count {
		s.count = maxInt
	} else {
		s.count += n
	}
	if s.shared != nil {
		total := s.shared.Add(int64(n))
		if s.limit > 0 && total >= int64(s.limit) {
			s.stopped = true
		}
		return
	}
	if s.limit > 0 && s.count >= s.limit {
		s.stopped = true
	}
}

// search places the matching-order position dc (SubgraphSearch in the
// paper, with +INT folded in when enabled).
func (s *searchState) search(dc int) {
	if s.stopped {
		return
	}
	plan := s.plan
	if dc == len(plan.order) {
		s.emit()
		return
	}
	u := plan.order[dc]

	var cands []uint32
	if dc == 0 {
		s.rootBuf[0] = s.rg.root
		cands = s.rootBuf[:]
	} else {
		cands = s.rg.cand[rkey(u, s.mapping[s.m.parent[u]])]
	}

	constJoins := plan.constJoins[dc]
	if s.m.opts.Intersect && len(constJoins) > 0 {
		// +INT: one k-way intersection replaces per-candidate membership
		// tests (paper §4.3).
		cands = s.intersectJoins(dc, u, cands, constJoins)
		constJoins = nil
	}

	if s.m.red != nil {
		if ci := s.m.red.classOf[u]; ci >= 0 {
			s.searchNEC(dc, u, ci, cands, constJoins)
			return
		}
	}

	for _, v := range cands {
		if s.stopped {
			return
		}
		// Periodic cancellation check: cheap enough for the hot loop, and
		// frequent enough that deadlines, Close() and the pipeline's stop
		// flag take effect promptly even inside one enormous candidate
		// region.
		s.steps++
		if s.steps&2047 == 0 {
			if err := s.ctx.Err(); err != nil {
				s.err = err
				s.stopped = true
				return
			}
			if s.stop != nil && s.stop.Load() {
				s.stopped = true
				return
			}
		}
		if s.profile != nil {
			s.profile.SearchNodes++
		}
		if s.used != nil && s.used[v] {
			continue // injectivity (subgraph isomorphism only)
		}
		if constJoins != nil && !s.checkConstJoins(u, v, constJoins) {
			continue
		}
		if !s.checkSelfLoops(v, plan.selfConst[dc]) {
			continue
		}
		s.bindWild(dc, u, v, plan.wild[dc], 0)
	}
}

// searchNEC handles the position of a deferred NEC representative. All of
// the class's constraints resolve at or before this position (its single
// neighbor is its query-tree parent; parallel edges to the parent are
// non-tree edges scheduled here; wildcard edges and self-loops are excluded
// by construction), so instead of binding the representative and recursing
// once per candidate, the surviving candidate set is snapshotted and the
// search descends exactly once. emit later expands every class by
// combination — the NEC reduction's whole point: a class of k members costs
// one search subtree instead of |C|^k.
func (s *searchState) searchNEC(dc, u, ci int, cands []uint32, constJoins []int) {
	buf := s.candBuf[dc][:0]
	for _, v := range cands {
		s.steps++
		if s.steps&2047 == 0 {
			if err := s.ctx.Err(); err != nil {
				s.err = err
				s.stopped = true
				return
			}
			if s.stop != nil && s.stop.Load() {
				s.stopped = true
				return
			}
		}
		if s.profile != nil {
			s.profile.SearchNodes++
		}
		// A data vertex bound by an ancestor stays bound through every emit
		// under this subtree, so it can never be assigned to a member
		// (isomorphism); filtering here tightens the |S| >= k prune.
		if s.used != nil && s.used[v] {
			continue
		}
		if constJoins != nil && !s.checkConstJoins(u, v, constJoins) {
			continue
		}
		buf = append(buf, v)
	}
	s.candBuf[dc] = buf
	k := s.m.red.classSize[u]
	if len(buf) == 0 || (s.used != nil && len(buf) < k) {
		return
	}
	s.classCands[ci] = buf
	s.search(dc + 1)
}

// emitNEC expands one reduced solution into full original-query solutions.
// Under homomorphism class members bind independently over the class
// candidate set (Cartesian power); under isomorphism they bind injectively,
// avoiding every data vertex the rest of the mapping uses. With no visitor
// the homomorphism expansion is a pure product and is counted without
// enumeration.
func (s *searchState) emitNEC() {
	red := s.m.red

	if s.visit == nil && s.used == nil {
		// Count-only homomorphism: the expansion factor is the product of
		// |S_c|^k_c over all classes.
		total := 1
		for ci, cls := range red.classes {
			n := len(s.classCands[ci])
			for range cls.members {
				if n != 0 && total > int(^uint(0)>>1)/n {
					total = int(^uint(0) >> 1) // saturate instead of overflowing
					break
				}
				total *= n
			}
		}
		if s.profile != nil {
			s.profile.NECExpansionsSkipped += total - 1
		}
		s.bulkCount(total)
		return
	}

	// Materialize the reduced bindings into original-query space; class
	// members are filled in by expandClass below.
	for ov := range red.orig.Vertices {
		rv := red.vertexMap[ov]
		if red.classSize[rv] == 1 {
			s.fullMap[ov] = s.mapping[rv]
		}
	}
	for oe, re := range red.edgeMap {
		if re >= 0 {
			s.fullEdges[oe] = s.edgeBind[re]
		}
	}
	before := s.count
	s.expandClass(0)
	if s.profile != nil && s.count > before {
		s.profile.NECExpansionsSkipped += s.count - before - 1
	}
}

// expandClass assigns data vertices to the members of class ci and recurses
// into the next class; once every class is assigned, the full match is
// emitted.
func (s *searchState) expandClass(ci int) {
	if s.stopped {
		return
	}
	red := s.m.red
	if ci == len(red.classes) {
		s.emitMatch(s.fullMap, s.fullEdges)
		return
	}
	members := red.classes[ci].members
	cands := s.classCands[ci]
	var assign func(mi int)
	assign = func(mi int) {
		if mi == len(members) {
			s.expandClass(ci + 1)
			return
		}
		for _, v := range cands {
			if s.used != nil {
				if s.used[v] {
					continue
				}
				s.used[v] = true
			}
			s.fullMap[members[mi]] = v
			assign(mi + 1)
			if s.used != nil {
				s.used[v] = false
			}
			if s.stopped {
				return
			}
		}
	}
	assign(0)
}

// intersectJoins computes cands ∩ adj-lists of the already-matched endpoints
// of the given constant non-tree edges, using per-depth buffers.
func (s *searchState) intersectJoins(dc, u int, cands []uint32, edges []int) []uint32 {
	m := s.m
	lists := append(s.listsBuf[dc][:0], cands)
	adjScratch := s.adjBuf[dc][:0]
	for _, ei := range edges {
		e := m.q.Edges[ei]
		var w int
		var dir graph.Dir
		if e.From == u {
			// Candidates x with x --el--> M(To): incoming adjacency of M(To).
			w, dir = e.To, graph.In
		} else {
			w, dir = e.From, graph.Out
		}
		vw := s.mapping[w]
		if labels := m.q.Vertices[u].Labels; len(labels) > 0 {
			// Candidates all carry labels[0], so the (el, labels[0]) group
			// is a complete filter.
			lists = append(lists, m.g.Adj(vw, dir, e.Label, labels[0]))
		} else {
			start := len(adjScratch)
			adjScratch = m.g.AdjEdgeLabel(adjScratch, vw, dir, e.Label)
			lists = append(lists, adjScratch[start:])
		}
	}
	s.adjBuf[dc] = adjScratch
	s.listsBuf[dc] = lists
	s.candBuf[dc] = intset.IntersectK(s.candBuf[dc][:0], lists...)
	return s.candBuf[dc]
}

// checkConstJoins is the unoptimized IsJoinable: membership tests per
// candidate.
func (s *searchState) checkConstJoins(u int, v uint32, edges []int) bool {
	m := s.m
	for _, ei := range edges {
		e := m.q.Edges[ei]
		var ok bool
		if e.From == u {
			ok = m.g.HasEdge(v, s.mapping[e.To], e.Label)
		} else {
			ok = m.g.HasEdge(s.mapping[e.From], v, e.Label)
		}
		if !ok {
			return false
		}
	}
	return true
}

func (s *searchState) checkSelfLoops(v uint32, edges []int) bool {
	for _, ei := range edges {
		if !s.m.g.HasEdge(v, v, s.m.q.Edges[ei].Label) {
			return false
		}
	}
	return true
}

// bindWild enumerates label assignments for the wildcard edges resolved at
// this position (the e-graph homomorphism's Me mapping, paper Def. 2),
// respecting shared predicate variables, then descends.
func (s *searchState) bindWild(dc, u int, v uint32, edges []int, idx int) {
	if s.stopped {
		return
	}
	if idx == len(edges) {
		s.mapping[u] = v
		if s.used != nil {
			s.used[v] = true
		}
		s.search(dc + 1)
		if s.used != nil {
			s.used[v] = false
		}
		return
	}
	m := s.m
	e := m.q.Edges[edges[idx]]
	vf, vt := v, v
	if e.From != u {
		vf = s.mapping[e.From]
	}
	if e.To != u {
		vt = s.mapping[e.To]
	}
	s.lblBuf = m.g.EdgeLabelsBetween(s.lblBuf[:0], vf, vt)
	labels := s.lblBuf
	if len(labels) == 0 {
		return
	}
	bound := NoID
	if e.PredVar >= 0 {
		bound = s.varBind[e.PredVar]
	}
	// Copy: recursion below reuses lblBuf.
	labelsCopy := append([]uint32(nil), labels...)
	for _, lbl := range labelsCopy {
		if bound != NoID && lbl != bound {
			continue
		}
		s.edgeBind[edges[idx]] = lbl
		if e.PredVar >= 0 && bound == NoID {
			s.varBind[e.PredVar] = lbl
		}
		s.bindWild(dc, u, v, edges, idx+1)
		if e.PredVar >= 0 && bound == NoID {
			s.varBind[e.PredVar] = NoID
		}
		if s.stopped {
			return
		}
	}
	s.edgeBind[edges[idx]] = NoID
}
