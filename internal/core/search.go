package core

import (
	"context"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/intset"
)

// searchState is the per-worker mutable state of SubgraphSearch.
type searchState struct {
	m     *matcher
	ctx   context.Context
	visit Visitor

	rg   *region
	plan *searchPlan

	mapping  []uint32 // M: query vertex -> data vertex
	edgeBind []uint32 // Me: query edge -> bound edge label
	varBind  []uint32 // predicate variable -> bound edge label (NoID unbound)
	used     []bool   // F: isomorphism-mode in-use flags (nil for hom)

	count   int
	limit   int
	steps   int // search-loop iterations since the last context check
	stopped bool
	err     error // context error that stopped the search (nil otherwise)

	profile *ProfileResult // optional effort counters (Profile only)

	shared *atomic.Int64 // cross-worker solution count (nil if sequential)

	// Per-depth scratch buffers for the +INT intersections; indexed by the
	// matching-order position so nested recursion never aliases.
	candBuf  [][]uint32
	adjBuf   [][]uint32
	listsBuf [][][]uint32
	rootBuf  [1]uint32
	lblBuf   []uint32
}

func newSearchState(m *matcher, visit Visitor, limit int, shared *atomic.Int64) *searchState {
	n := len(m.q.Vertices)
	s := &searchState{
		m:        m,
		ctx:      m.ctx,
		visit:    visit,
		mapping:  make([]uint32, n),
		edgeBind: make([]uint32, len(m.q.Edges)),
		count:    0,
		limit:    limit,
		shared:   shared,
		candBuf:  make([][]uint32, n),
		adjBuf:   make([][]uint32, n),
		listsBuf: make([][][]uint32, n),
	}
	maxVar := -1
	for i, e := range m.q.Edges {
		if e.Wildcard() {
			s.edgeBind[i] = NoID
		} else {
			s.edgeBind[i] = e.Label
		}
		if e.PredVar > maxVar {
			maxVar = e.PredVar
		}
	}
	s.varBind = make([]uint32, maxVar+1)
	for i := range s.varBind {
		s.varBind[i] = NoID
	}
	if m.sem == Isomorphism {
		s.used = make([]bool, m.g.NumVertices())
	}
	return s
}

func (s *searchState) emit() {
	s.count++
	if s.visit != nil && !s.visit(Match{Vertices: s.mapping, EdgeLabels: s.edgeBind}) {
		s.stopped = true
		return
	}
	if s.shared != nil {
		total := s.shared.Add(1)
		if s.limit > 0 && total >= int64(s.limit) {
			s.stopped = true
		}
		return
	}
	if s.limit > 0 && s.count >= s.limit {
		s.stopped = true
	}
}

// search places the matching-order position dc (SubgraphSearch in the
// paper, with +INT folded in when enabled).
func (s *searchState) search(dc int) {
	if s.stopped {
		return
	}
	plan := s.plan
	if dc == len(plan.order) {
		s.emit()
		return
	}
	u := plan.order[dc]

	var cands []uint32
	if dc == 0 {
		s.rootBuf[0] = s.rg.root
		cands = s.rootBuf[:]
	} else {
		cands = s.rg.cand[rkey(u, s.mapping[s.m.parent[u]])]
	}

	constJoins := plan.constJoins[dc]
	if s.m.opts.Intersect && len(constJoins) > 0 {
		// +INT: one k-way intersection replaces per-candidate membership
		// tests (paper §4.3).
		cands = s.intersectJoins(dc, u, cands, constJoins)
		constJoins = nil
	}

	for _, v := range cands {
		if s.stopped {
			return
		}
		// Periodic cancellation check: cheap enough for the hot loop, and
		// frequent enough that deadlines and Close() take effect promptly
		// even inside one enormous candidate region.
		s.steps++
		if s.steps&2047 == 0 && s.ctx.Err() != nil {
			s.err = s.ctx.Err()
			s.stopped = true
			return
		}
		if s.profile != nil {
			s.profile.SearchNodes++
		}
		if s.used != nil && s.used[v] {
			continue // injectivity (subgraph isomorphism only)
		}
		if constJoins != nil && !s.checkConstJoins(u, v, constJoins) {
			continue
		}
		if !s.checkSelfLoops(v, plan.selfConst[dc]) {
			continue
		}
		s.bindWild(dc, u, v, plan.wild[dc], 0)
	}
}

// intersectJoins computes cands ∩ adj-lists of the already-matched endpoints
// of the given constant non-tree edges, using per-depth buffers.
func (s *searchState) intersectJoins(dc, u int, cands []uint32, edges []int) []uint32 {
	m := s.m
	lists := append(s.listsBuf[dc][:0], cands)
	adjScratch := s.adjBuf[dc][:0]
	for _, ei := range edges {
		e := m.q.Edges[ei]
		var w int
		var dir graph.Dir
		if e.From == u {
			// Candidates x with x --el--> M(To): incoming adjacency of M(To).
			w, dir = e.To, graph.In
		} else {
			w, dir = e.From, graph.Out
		}
		vw := s.mapping[w]
		if labels := m.q.Vertices[u].Labels; len(labels) > 0 {
			// Candidates all carry labels[0], so the (el, labels[0]) group
			// is a complete filter.
			lists = append(lists, m.g.Adj(vw, dir, e.Label, labels[0]))
		} else {
			start := len(adjScratch)
			adjScratch = m.g.AdjEdgeLabel(adjScratch, vw, dir, e.Label)
			lists = append(lists, adjScratch[start:])
		}
	}
	s.adjBuf[dc] = adjScratch
	s.listsBuf[dc] = lists
	s.candBuf[dc] = intset.IntersectK(s.candBuf[dc][:0], lists...)
	return s.candBuf[dc]
}

// checkConstJoins is the unoptimized IsJoinable: membership tests per
// candidate.
func (s *searchState) checkConstJoins(u int, v uint32, edges []int) bool {
	m := s.m
	for _, ei := range edges {
		e := m.q.Edges[ei]
		var ok bool
		if e.From == u {
			ok = m.g.HasEdge(v, s.mapping[e.To], e.Label)
		} else {
			ok = m.g.HasEdge(s.mapping[e.From], v, e.Label)
		}
		if !ok {
			return false
		}
	}
	return true
}

func (s *searchState) checkSelfLoops(v uint32, edges []int) bool {
	for _, ei := range edges {
		if !s.m.g.HasEdge(v, v, s.m.q.Edges[ei].Label) {
			return false
		}
	}
	return true
}

// bindWild enumerates label assignments for the wildcard edges resolved at
// this position (the e-graph homomorphism's Me mapping, paper Def. 2),
// respecting shared predicate variables, then descends.
func (s *searchState) bindWild(dc, u int, v uint32, edges []int, idx int) {
	if s.stopped {
		return
	}
	if idx == len(edges) {
		s.mapping[u] = v
		if s.used != nil {
			s.used[v] = true
		}
		s.search(dc + 1)
		if s.used != nil {
			s.used[v] = false
		}
		return
	}
	m := s.m
	e := m.q.Edges[edges[idx]]
	vf, vt := v, v
	if e.From != u {
		vf = s.mapping[e.From]
	}
	if e.To != u {
		vt = s.mapping[e.To]
	}
	s.lblBuf = m.g.EdgeLabelsBetween(s.lblBuf[:0], vf, vt)
	labels := s.lblBuf
	if len(labels) == 0 {
		return
	}
	bound := NoID
	if e.PredVar >= 0 {
		bound = s.varBind[e.PredVar]
	}
	// Copy: recursion below reuses lblBuf.
	labelsCopy := append([]uint32(nil), labels...)
	for _, lbl := range labelsCopy {
		if bound != NoID && lbl != bound {
			continue
		}
		s.edgeBind[edges[idx]] = lbl
		if e.PredVar >= 0 && bound == NoID {
			s.varBind[e.PredVar] = lbl
		}
		s.bindWild(dc, u, v, edges, idx+1)
		if e.PredVar >= 0 && bound == NoID {
			s.varBind[e.PredVar] = NoID
		}
		if s.stopped {
			return
		}
	}
	s.edgeBind[edges[idx]] = NoID
}
