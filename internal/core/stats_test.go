package core

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

// bruteFreq computes what freqEstimate promises, straight from the View's
// per-vertex accessors instead of the precomputed statistics: the minimum
// over the exact per-label vertex counts and the distinct subject/object
// counts of every incident constant edge.
func bruteFreq(g graph.View, q *QueryGraph, adjEdges [][]int, u int) int {
	qv := &q.Vertices[u]
	if qv.ID != NoID {
		return 1
	}
	est := g.NumVertices()
	for _, l := range qv.Labels {
		n := 0
		for v := 0; v < g.NumVertices(); v++ {
			if g.HasLabel(uint32(v), l) {
				n++
			}
		}
		if n < est {
			est = n
		}
	}
	for _, ei := range adjEdges[u] {
		e := q.Edges[ei]
		if e.Wildcard() {
			continue
		}
		n := 0
		for v := 0; v < g.NumVertices(); v++ {
			if e.From == u && g.CountEdgeLabel(uint32(v), graph.Out, e.Label) > 0 {
				n++
			}
			if e.To == u && e.From != u && g.CountEdgeLabel(uint32(v), graph.In, e.Label) > 0 {
				n++
			}
		}
		if n < est {
			est = n
		}
	}
	return est
}

// TestFreqEstimateExact pins freqEstimate against a brute-force count over
// random graph/query pairs: the statistics-backed estimate must equal the
// exact minimum it claims to be, and must stay an upper bound on the number
// of vertices satisfying the estimated conditions simultaneously (the
// superset of the refined candidate list that startCandidates relies on).
func TestFreqEstimateExact(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		g := randomData(r, 20+r.Intn(20), 4, 3, 60+r.Intn(60))
		q := randomQuery(r, 2+r.Intn(4), 4, 3, g.NumVertices())
		if err := q.Validate(); err != nil {
			continue
		}
		m := newMatcher(context.Background(), g, q, Homomorphism, Optimized())
		for u := range q.Vertices {
			want := bruteFreq(g, q, m.adjEdges, u)
			got := m.freqEstimate(u)
			if got != want {
				t.Fatalf("trial %d vertex %d: freqEstimate = %d, brute force = %d",
					trial, u, got, want)
			}
			// Upper-bound property: count vertices meeting every estimated
			// condition at once; the min over the individual counts can only
			// be larger.
			meet := 0
			qv := &q.Vertices[u]
			for v := 0; v < g.NumVertices(); v++ {
				if qv.ID != NoID && uint32(v) != qv.ID {
					continue
				}
				if !g.HasAllLabels(uint32(v), qv.Labels) {
					continue
				}
				ok := true
				for _, ei := range m.adjEdges[u] {
					e := q.Edges[ei]
					if e.Wildcard() {
						continue
					}
					if e.From == u && g.CountEdgeLabel(uint32(v), graph.Out, e.Label) == 0 {
						ok = false
						break
					}
					if e.To == u && e.From != u && g.CountEdgeLabel(uint32(v), graph.In, e.Label) == 0 {
						ok = false
						break
					}
				}
				if ok {
					meet++
				}
			}
			if got < meet {
				t.Fatalf("trial %d vertex %d: freqEstimate %d below satisfying count %d",
					trial, u, got, meet)
			}
		}
	}
}

// sortedKeys collects a run's solutions as sorted row keys — the multiset
// representation for permutation-equality checks.
func sortedKeys(t *testing.T, g graph.View, q *QueryGraph, sem Semantics, opts Opts) []string {
	t.Helper()
	rows, err := Collect(context.Background(), g, q, sem, opts)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(rows))
	for i, mt := range rows {
		keys[i] = matchKey(mt)
	}
	sort.Strings(keys)
	return keys
}

// TestSignatureFilterEquivalence: the 64-bit neighborhood signature is a
// necessary condition, so disabling it must never change results — row
// multisets agree with the filter on and off across random instances and
// both semantics. The crafted instance then proves the filter actually
// kills: half the mid vertices lack the leaf edge the query requires, and
// every one of them must be rejected by the signature alone.
func TestSignatureFilterEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		g := randomData(r, 20+r.Intn(20), 4, 3, 60+r.Intn(60))
		q := randomQuery(r, 2+r.Intn(4), 4, 3, g.NumVertices())
		if err := q.Validate(); err != nil {
			continue
		}
		for _, sem := range []Semantics{Homomorphism, Isomorphism} {
			on := Optimized()
			off := on
			off.NoSignature = true
			a := sortedKeys(t, g, q, sem, on)
			b := sortedKeys(t, g, q, sem, off)
			if len(a) != len(b) {
				t.Fatalf("trial %d %v: %d rows with signature, %d without", trial, sem, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d %v row %d: %s vs %s", trial, sem, i, a[i], b[i])
				}
			}
		}
	}

	// Kill-rate instance: hub --7--> 40 mids, only 20 of which have the
	// --8--> leaf the query demands. With NLF off (Optimized), the signature
	// is the only neighborhood filter, so each childless mid is killed by it.
	fHub, fMid, fLeaf := uint32(0), uint32(1), uint32(2)
	b := graph.NewBuilder()
	b.AddVertexLabel(0, fHub)
	next := uint32(1)
	for i := 0; i < 40; i++ {
		mv := next
		next++
		b.AddVertexLabel(mv, fMid)
		b.AddEdge(0, 7, mv)
		if i%2 == 0 {
			lv := next
			next++
			b.AddVertexLabel(lv, fLeaf)
			b.AddEdge(mv, 8, lv)
		}
	}
	g := b.Build()
	q := NewQueryGraph()
	qr := q.AddVertex([]uint32{fHub}, NoID)
	qx := q.AddVertex([]uint32{fMid}, NoID)
	qy := q.AddVertex([]uint32{fLeaf}, NoID)
	q.AddEdge(qr, qx, 7)
	q.AddEdge(qx, qy, 8)
	pr, err := Profile(context.Background(), g, q, Homomorphism, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Solutions != 20 {
		t.Fatalf("crafted instance: %d solutions, want 20", pr.Solutions)
	}
	if pr.SignatureChecked == 0 {
		t.Fatalf("signature filter never consulted")
	}
	if pr.SignatureKilled < 20 {
		t.Fatalf("signature killed %d candidates, want >= 20 (the childless mids)", pr.SignatureKilled)
	}
}
