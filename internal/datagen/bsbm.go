package datagen

import (
	"fmt"
	"math"

	"repro/internal/rdf"
)

// BSBM namespaces (Berlin SPARQL Benchmark).
const (
	BSBMVoc  = "http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/"
	BSBMInst = "http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/instances/"
)

func bsbm(local string) rdf.Term  { return rdf.NewIRI(BSBMVoc + local) }
func bsbmI(local string) rdf.Term { return rdf.NewIRI(BSBMInst + local) }

// BSBM vocabulary.
var (
	bsbmProduct     = bsbm("Product")
	bsbmProducerCls = bsbm("Producer")
	bsbmVendorCls   = bsbm("Vendor")
	bsbmOfferCls    = bsbm("Offer")
	bsbmReviewCls   = bsbm("Review")
	bsbmPersonCls   = bsbm("Person")
	bsbmFeatureCls  = bsbm("ProductFeature")

	bsbmLabel     = bsbm("label")
	bsbmProducer  = bsbm("producer")
	bsbmFeature   = bsbm("productFeature")
	bsbmNum1      = bsbm("productPropertyNumeric1")
	bsbmNum2      = bsbm("productPropertyNumeric2")
	bsbmNum3      = bsbm("productPropertyNumeric3")
	bsbmText1     = bsbm("productPropertyTextual1")
	bsbmText2     = bsbm("productPropertyTextual2")
	bsbmText4     = bsbm("productPropertyTextual4")
	bsbmOfferFor  = bsbm("offerFor")
	bsbmVendor    = bsbm("vendor")
	bsbmPrice     = bsbm("price")
	bsbmDelivery  = bsbm("deliveryDays")
	bsbmValidTo   = bsbm("validTo")
	bsbmReviewFor = bsbm("reviewFor")
	bsbmReviewer  = bsbm("reviewer")
	bsbmTitle     = bsbm("title")
	bsbmRating1   = bsbm("rating1")
	bsbmRating2   = bsbm("rating2")
	bsbmRevDate   = bsbm("reviewDate")
	bsbmCountry   = bsbm("country")
	bsbmName      = bsbm("name")
)

// BSBMConfig parameterizes the BSBM generator.
type BSBMConfig struct {
	// Products is the scale factor.
	Products int
	Seed     int64
}

// Generator shape constants: branches of the product-type tree, ratios of
// dependent entities per product — the BSBM dataset's fixed proportions.
const (
	bsbmTypeBranches   = 4
	bsbmTypesPerBranch = 5
	bsbmOffersPerProd  = 4
	bsbmReviewsPerProd = 3
	bsbmMinFeatures    = 40
)

var bsbmAdjectives = []string{
	"swift", "glorious", "rustic", "quiet", "magic", "bright",
	"crimson", "gentle", "frozen", "amber",
}

var bsbmNouns = []string{
	"widget", "gadget", "engine", "lantern", "compass", "kettle",
	"drill", "anvil", "prism", "rotor",
}

var bsbmCountries = []string{"US", "DE", "GB", "JP", "FR", "KR"}

// BSBMOntology returns the product-type TBox: leaf types under branch types
// under bsbm:Product. The materializer propagates product types upward so
// queries can select by branch or by the root class.
func BSBMOntology() []rdf.Triple {
	var out []rdf.Triple
	for b := 0; b < bsbmTypeBranches; b++ {
		branch := bsbmI(fmt.Sprintf("ProductTypeBranch%d", b))
		out = append(out, rdf.Triple{S: branch, P: rdf.SubClassTerm, O: bsbmProduct})
		for l := 0; l < bsbmTypesPerBranch; l++ {
			leaf := bsbmI(fmt.Sprintf("ProductType%d", b*bsbmTypesPerBranch+l))
			out = append(out, rdf.Triple{S: leaf, P: rdf.SubClassTerm, O: branch})
		}
	}
	return out
}

// BSBMRules returns the inference rules for BSBM (the type hierarchy only).
func BSBMRules() *Rules { return ExtractRules(BSBMOntology()) }

// BSBM generates products, producers, vendors, offers, reviewers and
// reviews with the benchmark's fixed proportions. Optional-ish properties
// (textual2, textual4, rating1, rating2) are emitted for only part of the
// population, which is what the OPTIONAL/bound() queries of the explore mix
// observe.
func BSBM(cfg BSBMConfig) []rdf.Triple {
	r := newRNG(cfg.Seed*7_654_321 + 11)
	out := BSBMOntology()

	nProducts := cfg.Products
	nFeatures := nProducts/5 + bsbmMinFeatures
	nProducers := nProducts/25 + 1
	nVendors := nProducts/20 + 2
	nReviewers := nProducts/10 + 3

	for f := 0; f < nFeatures; f++ {
		feat := bsbmI(fmt.Sprintf("ProductFeature%d", f))
		out = append(out,
			rdf.Triple{S: feat, P: rdf.TypeTerm, O: bsbmFeatureCls},
			rdf.Triple{S: feat, P: bsbmLabel, O: literal("feature %d", f)},
		)
	}
	for p := 0; p < nProducers; p++ {
		pr := bsbmI(fmt.Sprintf("Producer%d", p))
		out = append(out,
			rdf.Triple{S: pr, P: rdf.TypeTerm, O: bsbmProducerCls},
			rdf.Triple{S: pr, P: bsbmLabel, O: literal("producer %d", p)},
			rdf.Triple{S: pr, P: bsbmCountry, O: rdf.NewLiteral(pick(r, bsbmCountries))},
		)
	}
	for v := 0; v < nVendors; v++ {
		vd := bsbmI(fmt.Sprintf("Vendor%d", v))
		out = append(out,
			rdf.Triple{S: vd, P: rdf.TypeTerm, O: bsbmVendorCls},
			rdf.Triple{S: vd, P: bsbmLabel, O: literal("vendor %d", v)},
			rdf.Triple{S: vd, P: bsbmCountry, O: rdf.NewLiteral(pick(r, bsbmCountries))},
		)
	}
	for rv := 0; rv < nReviewers; rv++ {
		p := bsbmI(fmt.Sprintf("Reviewer%d", rv))
		out = append(out,
			rdf.Triple{S: p, P: rdf.TypeTerm, O: bsbmPersonCls},
			rdf.Triple{S: p, P: bsbmName, O: literal("Reviewer %d", rv)},
			rdf.Triple{S: p, P: bsbmCountry, O: rdf.NewLiteral(pick(r, bsbmCountries))},
		)
	}

	// skewedFeature favors low feature indexes (quadratic skew), giving the
	// benchmark's popular-feature queries non-empty results at every scale.
	skewedFeature := func() rdf.Term {
		u := r.Float64()
		return bsbmI(fmt.Sprintf("ProductFeature%d", int(u*u*float64(nFeatures))))
	}

	nOffers, nReviews := 0, 0
	for p := 0; p < nProducts; p++ {
		prod := bsbmI(fmt.Sprintf("Product%d", p))
		leaf := bsbmI(fmt.Sprintf("ProductType%d", r.Intn(bsbmTypeBranches*bsbmTypesPerBranch)))
		label := fmt.Sprintf("%s %s %d", pick(r, bsbmAdjectives), pick(r, bsbmNouns), p)
		out = append(out,
			rdf.Triple{S: prod, P: rdf.TypeTerm, O: leaf},
			rdf.Triple{S: prod, P: bsbmLabel, O: rdf.NewLiteral(label)},
			rdf.Triple{S: prod, P: bsbmProducer, O: bsbmI(fmt.Sprintf("Producer%d", r.Intn(nProducers)))},
			rdf.Triple{S: prod, P: bsbmNum1, O: rdf.NewIntLiteral(int64(r.between(1, 2000)))},
			rdf.Triple{S: prod, P: bsbmNum2, O: rdf.NewIntLiteral(int64(r.between(1, 2000)))},
			rdf.Triple{S: prod, P: bsbmNum3, O: rdf.NewIntLiteral(int64(r.between(1, 2000)))},
			rdf.Triple{S: prod, P: bsbmText1, O: literal("text one %d", p)},
		)
		if r.Intn(10) < 7 {
			out = append(out, rdf.Triple{S: prod, P: bsbmText2, O: literal("text two %d", p)})
		}
		if r.Intn(10) < 6 {
			out = append(out, rdf.Triple{S: prod, P: bsbmText4, O: literal("text four %d", p)})
		}
		for i := 0; i < r.between(4, 8); i++ {
			out = append(out, rdf.Triple{S: prod, P: bsbmFeature, O: skewedFeature()})
		}

		for i := 0; i < bsbmOffersPerProd; i++ {
			off := bsbmI(fmt.Sprintf("Offer%d", nOffers))
			nOffers++
			price := math.Round(float64(r.between(5, 3000))*100) / 100
			out = append(out,
				rdf.Triple{S: off, P: rdf.TypeTerm, O: bsbmOfferCls},
				rdf.Triple{S: off, P: bsbmOfferFor, O: prod},
				rdf.Triple{S: off, P: bsbmVendor, O: bsbmI(fmt.Sprintf("Vendor%d", r.Intn(nVendors)))},
				rdf.Triple{S: off, P: bsbmPrice, O: rdf.NewFloatLiteral(price)},
				rdf.Triple{S: off, P: bsbmDelivery, O: rdf.NewIntLiteral(int64(r.between(1, 7)))},
				rdf.Triple{S: off, P: bsbmValidTo, O: rdf.NewTypedLiteral(
					fmt.Sprintf("2026-%02d-%02d", r.between(1, 12), r.between(1, 28)), rdf.XSDDate)},
			)
		}

		for i := 0; i < bsbmReviewsPerProd; i++ {
			rev := bsbmI(fmt.Sprintf("Review%d", nReviews))
			nReviews++
			lang := "en"
			if r.chance(3) {
				lang = "de"
			}
			out = append(out,
				rdf.Triple{S: rev, P: rdf.TypeTerm, O: bsbmReviewCls},
				rdf.Triple{S: rev, P: bsbmReviewFor, O: prod},
				rdf.Triple{S: rev, P: bsbmReviewer, O: bsbmI(fmt.Sprintf("Reviewer%d", r.Intn(nReviewers)))},
				rdf.Triple{S: rev, P: bsbmTitle, O: rdf.NewLangLiteral(fmt.Sprintf("review %d", nReviews-1), lang)},
				rdf.Triple{S: rev, P: bsbmRevDate, O: rdf.NewTypedLiteral(
					fmt.Sprintf("2025-%02d-%02d", r.between(1, 12), r.between(1, 28)), rdf.XSDDate)},
			)
			if r.Intn(10) < 8 {
				out = append(out, rdf.Triple{S: rev, P: bsbmRating1, O: rdf.NewIntLiteral(int64(r.between(1, 10)))})
			}
			if r.Intn(10) < 6 {
				out = append(out, rdf.Triple{S: rev, P: bsbmRating2, O: rdf.NewIntLiteral(int64(r.between(1, 10)))})
			}
		}
	}
	return out
}

// BSBMDataset generates BSBM at the given product count, materializes the
// type hierarchy, and attaches the 12 explore-use-case queries.
func BSBMDataset(products int) *Dataset {
	triples := Materialize(BSBM(BSBMConfig{Products: products, Seed: 1}), BSBMRules())
	return &Dataset{
		Name:    fmt.Sprintf("BSBM%d", products),
		Triples: triples,
		Queries: BSBMQueries(),
	}
}
