package datagen

// BSBMQueries returns the 12 explore-use-case queries. They follow the
// official mix's structure: every general SPARQL feature the paper's §5.1
// discusses appears — FILTER (cheap comparisons, join conditions, regex,
// lang, bound-negation), OPTIONAL (including multiple and nested groups),
// and UNION. Constant IRIs reference entities that exist at every scale
// (Product0/1, Offer0/1, Review0, popular features, type-tree nodes).
func BSBMQueries() []Query {
	const prefix = `PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX bsbm: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/>
PREFIX inst: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/instances/>
`
	q := func(id, body string) Query { return Query{ID: id, Text: prefix + body} }
	return []Query{
		// Q1: products of a type branch with two popular features and a
		// numeric threshold.
		q("Q1", `SELECT ?product ?label WHERE {
	?product rdf:type inst:ProductTypeBranch0 .
	?product bsbm:label ?label .
	?product bsbm:productFeature inst:ProductFeature0 .
	?product bsbm:productFeature inst:ProductFeature1 .
	?product bsbm:productPropertyNumeric1 ?v .
	FILTER(?v > 500) }`),

		// Q2: details of one product, optional textual properties.
		q("Q2", `SELECT ?label ?producerLabel ?n1 ?t1 ?t2 WHERE {
	inst:Product0 bsbm:label ?label .
	inst:Product0 bsbm:producer ?producer .
	?producer bsbm:label ?producerLabel .
	inst:Product0 bsbm:productPropertyNumeric1 ?n1 .
	inst:Product0 bsbm:productPropertyTextual1 ?t1 .
	OPTIONAL { inst:Product0 bsbm:productPropertyTextual2 ?t2 . } }`),

		// Q3: branch + feature + threshold, keeping only products that lack
		// textual4 (OPTIONAL + !bound negation).
		q("Q3", `SELECT ?product WHERE {
	?product rdf:type inst:ProductTypeBranch1 .
	?product bsbm:productFeature inst:ProductFeature0 .
	?product bsbm:productPropertyNumeric1 ?v .
	FILTER(?v > 300)
	OPTIONAL { ?product bsbm:productPropertyTextual4 ?t . }
	FILTER(!bound(?t)) }`),

		// Q4: UNION of two alternative feature/threshold combinations.
		q("Q4", `SELECT ?product WHERE {
	{ ?product rdf:type inst:ProductTypeBranch0 .
	  ?product bsbm:productFeature inst:ProductFeature0 .
	  ?product bsbm:productPropertyNumeric1 ?v1 .
	  FILTER(?v1 > 800) }
	UNION
	{ ?product rdf:type inst:ProductTypeBranch1 .
	  ?product bsbm:productFeature inst:ProductFeature1 .
	  ?product bsbm:productPropertyNumeric2 ?v2 .
	  FILTER(?v2 > 800) } }`),

		// Q5: products with property values close to Product0's — the
		// expensive join-condition FILTER of the paper's Table 6 discussion.
		q("Q5", `SELECT ?product WHERE {
	inst:Product0 bsbm:productPropertyNumeric1 ?o1 .
	inst:Product0 bsbm:productPropertyNumeric2 ?o2 .
	?product bsbm:productPropertyNumeric1 ?v1 .
	?product bsbm:productPropertyNumeric2 ?v2 .
	FILTER(?v1 > ?o1 - 120 && ?v1 < ?o1 + 120)
	FILTER(?v2 > ?o2 - 170 && ?v2 < ?o2 + 170) }`),

		// Q6: regular-expression search over every product label — the
		// expensive regex FILTER of the paper's Table 6 discussion.
		q("Q6", `SELECT ?product ?label WHERE {
	?product rdf:type bsbm:Product .
	?product bsbm:label ?label .
	FILTER regex(?label, "magic") }`),

		// Q7: one product with all offers and reviews, both optional.
		q("Q7", `SELECT ?label ?offer ?price ?rev ?rating WHERE {
	inst:Product1 bsbm:label ?label .
	OPTIONAL {
		?offer bsbm:offerFor inst:Product1 .
		?offer bsbm:price ?price .
	}
	OPTIONAL {
		?rev bsbm:reviewFor inst:Product1 .
		OPTIONAL { ?rev bsbm:rating1 ?rating . }
	} }`),

		// Q8: English-language reviews of one product.
		q("Q8", `SELECT ?title WHERE {
	?rev bsbm:reviewFor inst:Product1 .
	?rev bsbm:title ?title .
	FILTER(lang(?title) = "en") }`),

		// Q9: reviewer behind one review.
		q("Q9", `SELECT ?name ?country WHERE {
	inst:Review0 bsbm:reviewer ?r .
	?r bsbm:name ?name .
	?r bsbm:country ?country . }`),

		// Q10: cheap, quickly deliverable offers for one product.
		q("Q10", `SELECT ?offer ?price WHERE {
	?offer bsbm:offerFor inst:Product1 .
	?offer bsbm:deliveryDays ?d .
	?offer bsbm:price ?price .
	FILTER(?d <= 4)
	FILTER(?price < 2800) }`),

		// Q11: everything about one offer, unbound predicates in both
		// directions.
		q("Q11", `SELECT ?p ?x WHERE {
	{ inst:Offer0 ?p ?x . } UNION { ?x ?p inst:Offer0 . } }`),

		// Q12: offer export — follow the offer to product and vendor.
		q("Q12", `SELECT ?productLabel ?vendorLabel ?price ?validTo WHERE {
	inst:Offer1 bsbm:offerFor ?product .
	?product bsbm:label ?productLabel .
	inst:Offer1 bsbm:vendor ?vendor .
	?vendor bsbm:label ?vendorLabel .
	inst:Offer1 bsbm:price ?price .
	inst:Offer1 bsbm:validTo ?validTo . }`),
	}
}
