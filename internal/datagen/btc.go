package datagen

import (
	"fmt"

	"repro/internal/rdf"
)

// Vocabularies of the BTC-like crawl: the mix of FOAF, Dublin Core, SIOC,
// W3C geo, and DBpedia-style terms that dominates the real Billion Triples
// Challenge 2012 crawl.
const (
	FOAF = "http://xmlns.com/foaf/0.1/"
	DC   = "http://purl.org/dc/elements/1.1/"
	SIOC = "http://rdfs.org/sioc/ns#"
	GEO  = "http://www.w3.org/2003/01/geo/wgs84_pos#"
	DBO  = "http://dbpedia.org/ontology/"
	RDFS = "http://www.w3.org/2000/01/rdf-schema#"
)

func foaf(l string) rdf.Term { return rdf.NewIRI(FOAF + l) }
func dc(l string) rdf.Term   { return rdf.NewIRI(DC + l) }
func sioc(l string) rdf.Term { return rdf.NewIRI(SIOC + l) }
func geo(l string) rdf.Term  { return rdf.NewIRI(GEO + l) }
func dbo(l string) rdf.Term  { return rdf.NewIRI(DBO + l) }

var (
	foafPerson   = foaf("Person")
	foafName     = foaf("name")
	foafKnows    = foaf("knows")
	foafMbox     = foaf("mbox")
	foafHomepage = foaf("homepage")
	foafMaker    = foaf("maker")

	dcTitle   = dc("title")
	dcCreator = dc("creator")

	siocPost    = sioc("Post")
	siocCreator = sioc("has_creator")
	siocReplyOf = sioc("reply_of")

	geoThing = geo("SpatialThing")
	geoLat   = geo("lat")
	geoLong  = geo("long")

	dboPlace      = dbo("Place")
	dboPopulation = dbo("populationTotal")

	rdfsLabel = rdf.NewIRI(RDFS + "label")
)

// BTCConfig parameterizes the BTC-like generator.
type BTCConfig struct {
	// People is the scale factor; documents, posts, and places scale with
	// it.
	People int
	Seed   int64
}

func btcPerson(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://crawl.example.org/person/%d", i))
}

func btcDoc(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://crawl.example.org/doc/%d", i))
}

func btcPost(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://crawl.example.org/post/%d", i))
}

func btcPlace(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://crawl.example.org/place/%d", i))
}

// BTC generates a web-crawl-like graph: FOAF profiles with very uneven
// property coverage, documents with Dublin Core metadata, SIOC posts in
// reply chains, and geo-tagged places. Person0 is a hub (the crawl's
// celebrity) and anchors the pinned-vertex queries, mirroring the BTC2012
// query set where several queries fix one IRI (paper §7.2). No inference is
// applied: the paper loads BTC2012 original triples only, because the crawl
// violates the RDF standard in ways its inference engine rejects.
func BTC(cfg BTCConfig) []rdf.Triple {
	r := newRNG(cfg.Seed*97_011 + 3)
	var out []rdf.Triple

	nPeople := cfg.People
	nDocs := nPeople / 2
	nPosts := nPeople * 2
	nPlaces := nPeople/10 + 5

	for i := 0; i < nPlaces; i++ {
		pl := btcPlace(i)
		out = append(out,
			rdf.Triple{S: pl, P: rdf.TypeTerm, O: dboPlace},
			rdf.Triple{S: pl, P: rdfsLabel, O: literal("Place %d", i)},
		)
		// Place 0 anchors the pinned-vertex query Q4, so it is always
		// geo-tagged; the rest of the crawl has patchy coverage.
		if i == 0 || r.chance(2) {
			out = append(out,
				rdf.Triple{S: pl, P: rdf.TypeTerm, O: geoThing},
				rdf.Triple{S: pl, P: geoLat, O: rdf.NewFloatLiteral(float64(r.between(-90, 90)))},
				rdf.Triple{S: pl, P: geoLong, O: rdf.NewFloatLiteral(float64(r.between(-180, 180)))},
			)
		}
		if r.chance(3) {
			out = append(out, rdf.Triple{S: pl, P: dboPopulation, O: rdf.NewIntLiteral(int64(r.between(1000, 5_000_000)))})
		}
	}

	for i := 0; i < nPeople; i++ {
		p := btcPerson(i)
		out = append(out,
			rdf.Triple{S: p, P: rdf.TypeTerm, O: foafPerson},
			rdf.Triple{S: p, P: foafName, O: literal("Person %d", i)},
		)
		if r.chance(2) {
			out = append(out, rdf.Triple{S: p, P: foafMbox, O: rdf.NewIRI(fmt.Sprintf("mailto:p%d@example.org", i))})
		}
		if r.chance(3) {
			out = append(out, rdf.Triple{S: p, P: foafHomepage, O: rdf.NewIRI(fmt.Sprintf("http://home.example.org/%d", i))})
		}
		// Social edges: everyone knows a few people; everyone has a small
		// chance of knowing the hub, so Person0's neighborhood grows with
		// the crawl.
		for k := 0; k < r.between(1, 4); k++ {
			out = append(out, rdf.Triple{S: p, P: foafKnows, O: btcPerson(r.Intn(nPeople))})
		}
		if i != 0 && r.chance(10) {
			out = append(out, rdf.Triple{S: p, P: foafKnows, O: btcPerson(0)})
		}
	}

	for i := 0; i < nDocs; i++ {
		d := btcDoc(i)
		creator := btcPerson(r.Intn(nPeople))
		out = append(out,
			rdf.Triple{S: d, P: dcTitle, O: literal("Document %d", i)},
			rdf.Triple{S: d, P: dcCreator, O: creator},
		)
		if r.chance(2) {
			out = append(out, rdf.Triple{S: d, P: foafMaker, O: creator})
		}
	}

	for i := 0; i < nPosts; i++ {
		ps := btcPost(i)
		out = append(out,
			rdf.Triple{S: ps, P: rdf.TypeTerm, O: siocPost},
			rdf.Triple{S: ps, P: dcTitle, O: literal("Post %d", i)},
			rdf.Triple{S: ps, P: siocCreator, O: btcPerson(r.Intn(nPeople))},
		)
		if i > 0 && r.chance(2) {
			out = append(out, rdf.Triple{S: ps, P: siocReplyOf, O: btcPost(r.Intn(i))})
		}
	}
	return out
}

// BTCDataset generates the BTC-like crawl (original triples only, as in the
// paper) with its 8 benchmark queries.
func BTCDataset(people int) *Dataset {
	return &Dataset{
		Name:    fmt.Sprintf("BTC%d", people),
		Triples: BTC(BTCConfig{People: people, Seed: 1}),
		Queries: BTCQueries(),
	}
}
