package datagen

// BTCQueries returns the 8-query BTC workload. Like the paper's BTC2012
// set, the shapes are simple (tree-shaped, §7.2) and several queries pin a
// query vertex to one IRI (Q2, Q4, Q5 here, matching the paper's
// description of its Q2/Q4/Q5).
func BTCQueries() []Query {
	const prefix = `PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX sioc: <http://rdfs.org/sioc/ns#>
PREFIX geo: <http://www.w3.org/2003/01/geo/wgs84_pos#>
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX crawl: <http://crawl.example.org/>
`
	q := func(id, body string) Query { return Query{ID: id, Text: prefix + body} }
	return []Query{
		// Q1: fully-described FOAF profiles (name + mbox + homepage).
		q("Q1", `SELECT ?p ?n ?m ?h WHERE {
	?p rdf:type foaf:Person .
	?p foaf:name ?n .
	?p foaf:mbox ?m .
	?p foaf:homepage ?h . }`),

		// Q2: the hub's direct acquaintances (pinned vertex).
		q("Q2", `SELECT ?f ?n WHERE {
	<http://crawl.example.org/person/0> foaf:knows ?f .
	?f foaf:name ?n . }`),

		// Q3: documents attributed through both DC and FOAF.
		q("Q3", `SELECT ?d ?c WHERE {
	?d dc:creator ?c .
	?d foaf:maker ?c .
	?d dc:title ?t . }`),

		// Q4: one place's full geo record (pinned vertex).
		q("Q4", `SELECT ?lat ?long ?label WHERE {
	<http://crawl.example.org/place/0> geo:lat ?lat .
	<http://crawl.example.org/place/0> geo:long ?long .
	<http://crawl.example.org/place/0> rdfs:label ?label . }`),

		// Q5: posts by the hub (pinned vertex).
		q("Q5", `SELECT ?post ?title WHERE {
	?post sioc:has_creator <http://crawl.example.org/person/0> .
	?post dc:title ?title . }`),

		// Q6: geo-tagged populated places.
		q("Q6", `SELECT ?pl ?pop ?lat WHERE {
	?pl rdf:type dbo:Place .
	?pl dbo:populationTotal ?pop .
	?pl geo:lat ?lat . }`),

		// Q7: reply posts whose authors know the hub.
		q("Q7", `SELECT ?post ?author WHERE {
	?post sioc:reply_of ?parent .
	?post sioc:has_creator ?author .
	?author foaf:knows <http://crawl.example.org/person/0> . }`),

		// Q8: two-hop acquaintance names — the workload's largest result.
		q("Q8", `SELECT ?a ?c WHERE {
	?a foaf:knows ?b .
	?b foaf:knows ?c .
	?c foaf:name ?n . }`),
	}
}
