// Package datagen provides deterministic, seeded generators for the four
// benchmark datasets of the paper's evaluation — LUBM, BSBM, YAGO-like, and
// BTC2012-like — together with their query workloads and the RDFS/OWL-lite
// inference materializer the paper relies on ("we load the original triples
// as well as inferred triples", §7.1).
//
// The official generators and crawls produce billions of triples; these
// generators reproduce the schema, predicate vocabulary, cardinality ratios,
// and query-relevant structure at laptop scale. Every generator is seeded
// per top-level entity (e.g. per university), so entity #0's neighborhood is
// byte-identical at every scale factor — the property behind the paper's
// constant-solution queries.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Query is one benchmark query.
type Query struct {
	// ID is the paper's query name, e.g. "Q1".
	ID string
	// Text is the SPARQL source.
	Text string
	// Increasing marks queries whose solution count grows with the scale
	// factor (the paper's "increasing solution queries"); false marks
	// constant-solution queries. Only meaningful for LUBM.
	Increasing bool
}

// Dataset bundles generated triples with the benchmark's query workload.
type Dataset struct {
	Name    string
	Triples []rdf.Triple
	Queries []Query
}

// rng wraps math/rand with the small helpers the generators share.
type rng struct{ *rand.Rand }

func newRNG(seed int64) rng {
	return rng{rand.New(rand.NewSource(seed))}
}

// between returns a uniform int in [lo, hi].
func (r rng) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// chance reports true with probability 1/n.
func (r rng) chance(n int) bool { return r.Intn(n) == 0 }

// pick returns a uniform element of s.
func pick[T any](r rng, s []T) T { return s[r.Intn(len(s))] }

// sampleDistinct returns k distinct uniform values in [0, n); k is clamped
// to n.
func (r rng) sampleDistinct(k, n int) []int {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		x := r.Intn(n)
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func literal(format string, args ...any) rdf.Term {
	return rdf.NewLiteral(fmt.Sprintf(format, args...))
}
