package datagen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/transform"
)

func datasetEngine(t *testing.T, ds *Dataset) *engine.Engine {
	t.Helper()
	data := transform.Build(ds.Triples, transform.TypeAware)
	return engine.New(data, core.Optimized())
}

func assertDeterministic(t *testing.T, name string, gen func() []rdf.Triple) {
	t.Helper()
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("%s: non-deterministic sizes %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: triple %d differs", name, i)
		}
	}
}

func TestBSBMDeterministic(t *testing.T) {
	assertDeterministic(t, "bsbm", func() []rdf.Triple {
		return BSBM(BSBMConfig{Products: 50, Seed: 1})
	})
}

func TestYAGODeterministic(t *testing.T) {
	assertDeterministic(t, "yago", func() []rdf.Triple {
		return YAGO(YAGOConfig{People: 100, Seed: 1})
	})
}

func TestBTCDeterministic(t *testing.T) {
	assertDeterministic(t, "btc", func() []rdf.Triple {
		return BTC(BTCConfig{People: 100, Seed: 1})
	})
}

func TestBSBMQueriesRun(t *testing.T) {
	ds := BSBMDataset(150)
	e := datasetEngine(t, ds)
	for _, q := range ds.Queries {
		n, err := e.Count(q.Text)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if n == 0 {
			t.Errorf("%s returned no solutions", q.ID)
		}
	}
}

// TestBSBMProductTypeInference checks that leaf-typed products are
// reachable through branch and root classes after materialization.
func TestBSBMProductTypeInference(t *testing.T) {
	ds := BSBMDataset(30)
	e := datasetEngine(t, ds)
	leaf, err := e.Count(`PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX bsbm: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/>
SELECT ?p WHERE { ?p rdf:type bsbm:Product . }`)
	if err != nil {
		t.Fatal(err)
	}
	if leaf != 30 {
		t.Fatalf("products via root class = %d, want 30", leaf)
	}
}

func TestYAGOQueriesRun(t *testing.T) {
	ds := YAGODataset(400)
	e := datasetEngine(t, ds)
	for _, q := range ds.Queries {
		n, err := e.Count(q.Text)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if q.ID == "Q2" {
			if n != 0 {
				t.Errorf("Q2 must be empty by construction, got %d", n)
			}
			continue
		}
		if n == 0 {
			t.Errorf("%s returned no solutions", q.ID)
		}
	}
}

func TestBTCQueriesRun(t *testing.T) {
	ds := BTCDataset(400)
	e := datasetEngine(t, ds)
	for _, q := range ds.Queries {
		n, err := e.Count(q.Text)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if n == 0 {
			t.Errorf("%s returned no solutions", q.ID)
		}
	}
}

// TestQueryIDsUnique guards against copy-paste duplicates across workloads.
func TestQueryIDsUnique(t *testing.T) {
	for _, qs := range [][]Query{LUBMQueries(), BSBMQueries(), YAGOQueries(), BTCQueries()} {
		seen := map[string]bool{}
		for _, q := range qs {
			if seen[q.ID] {
				t.Fatalf("duplicate query ID %s", q.ID)
			}
			seen[q.ID] = true
			if q.Text == "" {
				t.Fatalf("query %s has no text", q.ID)
			}
		}
	}
}

func TestWorkloadSizes(t *testing.T) {
	if n := len(LUBMQueries()); n != 14 {
		t.Fatalf("LUBM has %d queries, want 14", n)
	}
	if n := len(BSBMQueries()); n != 12 {
		t.Fatalf("BSBM has %d queries, want 12", n)
	}
	if n := len(YAGOQueries()); n != 8 {
		t.Fatalf("YAGO has %d queries, want 8", n)
	}
	if n := len(BTCQueries()); n != 8 {
		t.Fatalf("BTC has %d queries, want 8", n)
	}
}
