package datagen

import (
	"sort"

	"repro/internal/rdf"
)

// Rules is the RDFS/OWL-lite rule set the materializer applies — the same
// fragment the paper's external inference engine produces for LUBM and BSBM
// ("we load the original triples as well as inferred triples", §7.1):
//
//   - rdfs:subClassOf: type propagation through the transitive class
//     hierarchy,
//   - rdfs:subPropertyOf: triple propagation through the transitive
//     property hierarchy,
//   - owl:inverseOf: reversed triples in both directions,
//   - owl:TransitiveProperty: transitive closure per marked predicate,
//   - class-definition rules: (s p o) implies (s rdf:type C) for a
//     registered (p, C) pair — LUBM's Chair is the canonical example.
type Rules struct {
	subClass map[rdf.Term][]rdf.Term // class -> direct superclasses
	subProp  map[rdf.Term][]rdf.Term // predicate -> direct superproperties
	inverse  map[rdf.Term][]rdf.Term // predicate -> inverse predicates
	trans    map[rdf.Term]bool       // transitive predicates
	propCls  map[rdf.Term][]rdf.Term // predicate -> implied subject classes
}

// NewRules returns an empty rule set.
func NewRules() *Rules {
	return &Rules{
		subClass: map[rdf.Term][]rdf.Term{},
		subProp:  map[rdf.Term][]rdf.Term{},
		inverse:  map[rdf.Term][]rdf.Term{},
		trans:    map[rdf.Term]bool{},
		propCls:  map[rdf.Term][]rdf.Term{},
	}
}

// ExtractRules reads the schema-level triples of a dataset —
// rdfs:subClassOf, rdfs:subPropertyOf, owl:inverseOf, and
// rdf:type owl:TransitiveProperty — into a rule set.
func ExtractRules(triples []rdf.Triple) *Rules {
	r := NewRules()
	for _, t := range triples {
		switch t.P.IRIValue() {
		case rdf.RDFSSubClass:
			r.AddSubClass(t.S, t.O)
		case rdf.RDFSSubProp:
			r.AddSubProperty(t.S, t.O)
		case rdf.OWLInverseOf:
			r.AddInverse(t.S, t.O)
		case rdf.RDFType:
			if t.O.IRIValue() == rdf.OWLTransitive {
				r.AddTransitive(t.S)
			}
		}
	}
	return r
}

// AddSubClass declares sub ⊑ super.
func (r *Rules) AddSubClass(sub, super rdf.Term) {
	r.subClass[sub] = append(r.subClass[sub], super)
}

// AddSubProperty declares sub ⊑ super for predicates.
func (r *Rules) AddSubProperty(sub, super rdf.Term) {
	r.subProp[sub] = append(r.subProp[sub], super)
}

// AddInverse declares p and q mutually inverse.
func (r *Rules) AddInverse(p, q rdf.Term) {
	r.inverse[p] = append(r.inverse[p], q)
	r.inverse[q] = append(r.inverse[q], p)
}

// AddTransitive marks p transitive.
func (r *Rules) AddTransitive(p rdf.Term) { r.trans[p] = true }

// AddPropertyClass declares that any subject of predicate p has class c.
func (r *Rules) AddPropertyClass(p, c rdf.Term) {
	r.propCls[p] = append(r.propCls[p], c)
}

// closure computes the reflexive-free transitive closure of a direct
// hierarchy map.
func closure(direct map[rdf.Term][]rdf.Term) map[rdf.Term][]rdf.Term {
	out := make(map[rdf.Term][]rdf.Term, len(direct))
	var expand func(x rdf.Term, seen map[rdf.Term]bool)
	expand = func(x rdf.Term, seen map[rdf.Term]bool) {
		for _, up := range direct[x] {
			if !seen[up] {
				seen[up] = true
				expand(up, seen)
			}
		}
	}
	for x := range direct {
		seen := map[rdf.Term]bool{x: true}
		expand(x, seen)
		delete(seen, x)
		ups := make([]rdf.Term, 0, len(seen))
		for u := range seen {
			ups = append(ups, u)
		}
		sort.Slice(ups, func(i, j int) bool { return ups[i] < ups[j] })
		out[x] = ups
	}
	return out
}

// Materialize returns the input triples plus every triple entailed by the
// rules, deduplicated. It runs a semi-naive fixpoint: a work queue of fresh
// triples, each expanded through all rules; derived triples that are not
// yet present re-enter the queue. Triple identity is tracked through
// dictionary-encoded keys, so the memory cost per triple is three uint32s,
// not three strings.
func Materialize(triples []rdf.Triple, r *Rules) []rdf.Triple {
	subCls := closure(r.subClass)
	subPrp := closure(r.subProp)

	dict := rdf.NewDictionary()

	type key [3]uint32
	seen := make(map[key]bool, len(triples)*2)
	out := make([]rdf.Triple, 0, len(triples)*2)
	queue := make([]rdf.Triple, 0, len(triples))

	add := func(t rdf.Triple) {
		k := key{dict.Intern(t.S), dict.Intern(t.P), dict.Intern(t.O)}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, t)
		queue = append(queue, t)
	}

	for _, t := range triples {
		add(t)
	}

	// Adjacency for transitive predicates, maintained incrementally:
	// per predicate, successor and predecessor maps.
	succ := map[rdf.Term]map[rdf.Term][]rdf.Term{}
	pred := map[rdf.Term]map[rdf.Term][]rdf.Term{}
	for p := range r.trans {
		succ[p] = map[rdf.Term][]rdf.Term{}
		pred[p] = map[rdf.Term][]rdf.Term{}
	}

	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		isType := t.P.IRIValue() == rdf.RDFType

		if isType {
			// subClassOf: propagate to all superclasses.
			for _, super := range subCls[t.O] {
				add(rdf.Triple{S: t.S, P: t.P, O: super})
			}
			continue
		}

		// subPropertyOf: re-emit under all superproperties.
		for _, super := range subPrp[t.P] {
			add(rdf.Triple{S: t.S, P: super, O: t.O})
		}
		// inverseOf.
		for _, inv := range r.inverse[t.P] {
			add(rdf.Triple{S: t.O, P: inv, O: t.S})
		}
		// Class-definition rules.
		for _, c := range r.propCls[t.P] {
			add(rdf.Triple{S: t.S, P: rdf.TypeTerm, O: c})
		}
		// Transitivity: join the new edge with both frontiers; derived
		// edges re-enter the queue, completing the closure.
		if r.trans[t.P] {
			for _, o2 := range succ[t.P][t.O] {
				add(rdf.Triple{S: t.S, P: t.P, O: o2})
			}
			for _, s2 := range pred[t.P][t.S] {
				add(rdf.Triple{S: s2, P: t.P, O: t.O})
			}
			succ[t.P][t.S] = append(succ[t.P][t.S], t.O)
			pred[t.P][t.O] = append(pred[t.P][t.O], t.S)
		}
	}
	return out
}
