package datagen

import (
	"testing"

	"repro/internal/rdf"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }

func TestSubClassClosure(t *testing.T) {
	r := NewRules()
	r.AddSubClass(ex("A"), ex("B"))
	r.AddSubClass(ex("B"), ex("C"))
	got := Materialize([]rdf.Triple{{S: ex("x"), P: rdf.TypeTerm, O: ex("A")}}, r)
	want := map[rdf.Term]bool{ex("A"): true, ex("B"): true, ex("C"): true}
	if len(got) != 3 {
		t.Fatalf("got %d triples, want 3: %v", len(got), got)
	}
	for _, tr := range got {
		if !want[tr.O] {
			t.Fatalf("unexpected type %v", tr.O)
		}
	}
}

func TestSubClassCycleTerminates(t *testing.T) {
	r := NewRules()
	r.AddSubClass(ex("A"), ex("B"))
	r.AddSubClass(ex("B"), ex("A")) // cycle
	got := Materialize([]rdf.Triple{{S: ex("x"), P: rdf.TypeTerm, O: ex("A")}}, r)
	if len(got) != 2 {
		t.Fatalf("got %d triples, want 2 (A and B)", len(got))
	}
}

func TestSubPropertyChain(t *testing.T) {
	r := NewRules()
	r.AddSubProperty(ex("headOf"), ex("worksFor"))
	r.AddSubProperty(ex("worksFor"), ex("memberOf"))
	got := Materialize([]rdf.Triple{{S: ex("p"), P: ex("headOf"), O: ex("d")}}, r)
	preds := map[rdf.Term]bool{}
	for _, tr := range got {
		preds[tr.P] = true
	}
	for _, p := range []rdf.Term{ex("headOf"), ex("worksFor"), ex("memberOf")} {
		if !preds[p] {
			t.Fatalf("missing propagated predicate %v (have %v)", p, preds)
		}
	}
}

func TestInverse(t *testing.T) {
	r := NewRules()
	r.AddInverse(ex("degreeFrom"), ex("hasAlumnus"))
	got := Materialize([]rdf.Triple{{S: ex("p"), P: ex("degreeFrom"), O: ex("u")}}, r)
	found := false
	for _, tr := range got {
		if tr.S == ex("u") && tr.P == ex("hasAlumnus") && tr.O == ex("p") {
			found = true
		}
	}
	if !found {
		t.Fatalf("inverse triple missing: %v", got)
	}
	// Inverse of the inverse must not invent new triples beyond the pair.
	if len(got) != 2 {
		t.Fatalf("got %d triples, want 2", len(got))
	}
}

func TestTransitiveClosure(t *testing.T) {
	r := NewRules()
	r.AddTransitive(ex("partOf"))
	chain := []rdf.Triple{
		{S: ex("a"), P: ex("partOf"), O: ex("b")},
		{S: ex("b"), P: ex("partOf"), O: ex("c")},
		{S: ex("c"), P: ex("partOf"), O: ex("d")},
	}
	got := Materialize(chain, r)
	// Closure of a 4-chain: 3 + 2 + 1 = 6 edges.
	if len(got) != 6 {
		t.Fatalf("got %d triples, want 6: %v", len(got), got)
	}
}

func TestTransitiveCycleTerminates(t *testing.T) {
	r := NewRules()
	r.AddTransitive(ex("partOf"))
	got := Materialize([]rdf.Triple{
		{S: ex("a"), P: ex("partOf"), O: ex("b")},
		{S: ex("b"), P: ex("partOf"), O: ex("a")},
	}, r)
	// a->b, b->a, a->a, b->b.
	if len(got) != 4 {
		t.Fatalf("got %d triples, want 4: %v", len(got), got)
	}
}

func TestPropertyClassRule(t *testing.T) {
	r := NewRules()
	r.AddPropertyClass(ex("headOf"), ex("Chair"))
	r.AddSubClass(ex("Chair"), ex("Person"))
	got := Materialize([]rdf.Triple{{S: ex("p"), P: ex("headOf"), O: ex("d")}}, r)
	types := map[rdf.Term]bool{}
	for _, tr := range got {
		if tr.P == rdf.TypeTerm {
			types[tr.O] = true
		}
	}
	if !types[ex("Chair")] || !types[ex("Person")] {
		t.Fatalf("class-definition rule incomplete: %v", types)
	}
}

func TestRuleInterplay(t *testing.T) {
	// subPropertyOf feeding inverseOf feeding nothing: the LUBM
	// degreeFrom stack.
	r := NewRules()
	r.AddSubProperty(ex("ugFrom"), ex("degreeFrom"))
	r.AddInverse(ex("degreeFrom"), ex("hasAlumnus"))
	got := Materialize([]rdf.Triple{{S: ex("p"), P: ex("ugFrom"), O: ex("u")}}, r)
	found := false
	for _, tr := range got {
		if tr.S == ex("u") && tr.P == ex("hasAlumnus") && tr.O == ex("p") {
			found = true
		}
	}
	if !found {
		t.Fatalf("hasAlumnus not derived through subPropertyOf: %v", got)
	}
}

func TestExtractRulesFromOntology(t *testing.T) {
	r := ExtractRules(LUBMOntology())
	if len(r.subClass) == 0 || len(r.subProp) == 0 {
		t.Fatal("ontology rules not extracted")
	}
	if !r.trans[ubSubOrgOf] {
		t.Fatal("subOrganizationOf not marked transitive")
	}
	if len(r.inverse[ubDegreeFrom]) != 1 {
		t.Fatalf("degreeFrom inverse = %v", r.inverse[ubDegreeFrom])
	}
}

func TestMaterializeIdempotent(t *testing.T) {
	r := LUBMRules()
	base := LUBM(LUBMConfig{Universities: 1, Seed: 7})
	once := Materialize(base, r)
	twice := Materialize(once, r)
	if len(once) != len(twice) {
		t.Fatalf("materialize not idempotent: %d then %d", len(once), len(twice))
	}
}

func TestMaterializeDedups(t *testing.T) {
	r := NewRules()
	in := []rdf.Triple{
		{S: ex("a"), P: ex("p"), O: ex("b")},
		{S: ex("a"), P: ex("p"), O: ex("b")},
	}
	if got := Materialize(in, r); len(got) != 1 {
		t.Fatalf("got %d triples, want 1", len(got))
	}
}
