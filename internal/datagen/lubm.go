package datagen

import (
	"fmt"

	"repro/internal/rdf"
)

// UB is the LUBM univ-bench ontology namespace.
const UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

func ub(local string) rdf.Term { return rdf.NewIRI(UB + local) }

// LUBM vocabulary used by the generator and queries.
var (
	ubUniversity    = ub("University")
	ubDepartment    = ub("Department")
	ubResearchGroup = ub("ResearchGroup")
	ubOrganization  = ub("Organization")

	ubPerson      = ub("Person")
	ubEmployee    = ub("Employee")
	ubFaculty     = ub("Faculty")
	ubProfessor   = ub("Professor")
	ubFullProf    = ub("FullProfessor")
	ubAssocProf   = ub("AssociateProfessor")
	ubAsstProf    = ub("AssistantProfessor")
	ubLecturer    = ub("Lecturer")
	ubStudent     = ub("Student")
	ubUndergrad   = ub("UndergraduateStudent")
	ubGradStudent = ub("GraduateStudent")
	ubChair       = ub("Chair")
	ubTA          = ub("TeachingAssistant")
	ubRA          = ub("ResearchAssistant")
	ubCourse      = ub("Course")
	ubGradCourse  = ub("GraduateCourse")
	ubPublication = ub("Publication")

	ubWorksFor      = ub("worksFor")
	ubMemberOf      = ub("memberOf")
	ubHeadOf        = ub("headOf")
	ubSubOrgOf      = ub("subOrganizationOf")
	ubUndergradFrom = ub("undergraduateDegreeFrom")
	ubMastersFrom   = ub("mastersDegreeFrom")
	ubDoctoralFrom  = ub("doctoralDegreeFrom")
	ubDegreeFrom    = ub("degreeFrom")
	ubHasAlumnus    = ub("hasAlumnus")
	ubTeacherOf     = ub("teacherOf")
	ubTakesCourse   = ub("takesCourse")
	ubAdvisor       = ub("advisor")
	ubPubAuthor     = ub("publicationAuthor")
	ubTAOf          = ub("teachingAssistantOf")
	ubName          = ub("name")
	ubEmail         = ub("emailAddress")
	ubTelephone     = ub("telephone")
	ubResearchInt   = ub("researchInterest")
)

// LUBMConfig parameterizes the LUBM generator.
type LUBMConfig struct {
	// Universities is the scale factor (LUBM-N = N universities).
	Universities int
	// Seed drives all randomized cardinalities; each university derives its
	// own stream from Seed so its content is scale-independent.
	Seed int64
	// RefPool is the number of universities the degreeFrom predicates may
	// reference. The official generator references a fixed pool of
	// universities beyond the generated ones, which is what makes the
	// paper's Q2/Q13 solution counts grow with the scale factor. 0 means
	// the default of 50.
	RefPool int
}

func (c LUBMConfig) refPool() int {
	if c.RefPool > 0 {
		return c.RefPool
	}
	return 50
}

// Cardinalities per department, about one third of the official UBA
// generator's to keep laptop-scale runs fast. Ratios between the classes —
// what the benchmark queries actually observe — match the original.
const (
	lubmDeptMin, lubmDeptMax             = 5, 8
	lubmFullMin, lubmFullMax             = 3, 4
	lubmAssocMin, lubmAssocMax           = 4, 5
	lubmAsstMin, lubmAsstMax             = 3, 4
	lubmLectMin, lubmLectMax             = 2, 3
	lubmUgPerFacMin, lubmUgPerFacMax     = 6, 9 // undergrads per faculty member
	lubmGradPerFacMin, lubmGradPerFacMax = 2, 3
	lubmRGMin, lubmRGMax                 = 3, 5
	lubmUgCourses                        = 3 // mean courses per undergrad (2-4)
	lubmResearchAreas                    = 30
)

// LUBMOntology returns the univ-bench TBox: the subclass hierarchy, the
// subproperty hierarchy, the degreeFrom/hasAlumnus inversion, and the
// transitivity of subOrganizationOf. The materializer extracts its rules
// from these triples, and the type-aware transformation folds the class
// hierarchy into vertex labels.
func LUBMOntology() []rdf.Triple {
	sub := func(a, b rdf.Term) rdf.Triple {
		return rdf.Triple{S: a, P: rdf.SubClassTerm, O: b}
	}
	subP := func(a, b rdf.Term) rdf.Triple {
		return rdf.Triple{S: a, P: rdf.NewIRI(rdf.RDFSSubProp), O: b}
	}
	return []rdf.Triple{
		sub(ubUniversity, ubOrganization),
		sub(ubDepartment, ubOrganization),
		sub(ubResearchGroup, ubOrganization),

		sub(ubEmployee, ubPerson),
		sub(ubFaculty, ubEmployee),
		sub(ubProfessor, ubFaculty),
		sub(ubFullProf, ubProfessor),
		sub(ubAssocProf, ubProfessor),
		sub(ubAsstProf, ubProfessor),
		sub(ubLecturer, ubFaculty),
		sub(ubChair, ubProfessor),
		sub(ubStudent, ubPerson),
		sub(ubUndergrad, ubStudent),
		sub(ubGradStudent, ubStudent),
		sub(ubTA, ubPerson),
		sub(ubRA, ubPerson),
		sub(ubGradCourse, ubCourse),

		subP(ubHeadOf, ubWorksFor),
		subP(ubWorksFor, ubMemberOf),
		subP(ubUndergradFrom, ubDegreeFrom),
		subP(ubMastersFrom, ubDegreeFrom),
		subP(ubDoctoralFrom, ubDegreeFrom),

		{S: ubDegreeFrom, P: rdf.NewIRI(rdf.OWLInverseOf), O: ubHasAlumnus},
		{S: ubSubOrgOf, P: rdf.TypeTerm, O: rdf.NewIRI(rdf.OWLTransitive)},
	}
}

// LUBMRules returns the inference rules for LUBM: everything extractable
// from the ontology plus the Chair class definition (a person who heads a
// department is a Chair — the paper's example of a class-definition rule).
func LUBMRules() *Rules {
	r := ExtractRules(LUBMOntology())
	r.AddPropertyClass(ubHeadOf, ubChair)
	return r
}

func univIRI(u int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://www.University%d.edu", u))
}

func deptIRI(u, d int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://www.Department%d.University%d.edu", d, u))
}

func deptEntity(u, d int, kind string, i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://www.Department%d.University%d.edu/%s%d", d, u, kind, i))
}

func pubIRI(u, d int, kind string, i, m int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://www.Department%d.University%d.edu/%s%d/Publication%d", d, u, kind, i, m))
}

// LUBM generates the ABox for cfg.Universities universities plus the
// ontology TBox. The output contains no inferred triples; pass it through
// Materialize(LUBMRules()) to obtain the benchmark's standard loading set.
func LUBM(cfg LUBMConfig) []rdf.Triple {
	out := LUBMOntology()
	for u := 0; u < cfg.Universities; u++ {
		out = appendUniversity(out, cfg, u)
	}
	return out
}

// appendUniversity emits one university. All randomness is drawn from a
// stream seeded by (Seed, university index) only.
func appendUniversity(out []rdf.Triple, cfg LUBMConfig, u int) []rdf.Triple {
	r := newRNG(cfg.Seed*1_000_003 + int64(u))
	univ := univIRI(u)
	out = append(out,
		rdf.Triple{S: univ, P: rdf.TypeTerm, O: ubUniversity},
		rdf.Triple{S: univ, P: ubName, O: literal("University%d", u)},
	)

	pool := cfg.refPool()
	refUniv := func() rdf.Term { return univIRI(r.Intn(pool)) }

	nDept := r.between(lubmDeptMin, lubmDeptMax)
	for d := 0; d < nDept; d++ {
		dept := deptIRI(u, d)
		out = append(out,
			rdf.Triple{S: dept, P: rdf.TypeTerm, O: ubDepartment},
			rdf.Triple{S: dept, P: ubSubOrgOf, O: univ},
			rdf.Triple{S: dept, P: ubName, O: literal("Department%d", d)},
		)

		// Faculty roster: (kind, class) in a fixed order so entity names
		// are stable.
		type facultyMember struct {
			iri   rdf.Term
			kind  string
			class rdf.Term
		}
		var faculty []facultyMember
		addFaculty := func(kind string, class rdf.Term, n int) {
			for i := 0; i < n; i++ {
				faculty = append(faculty, facultyMember{deptEntity(u, d, kind, i), kind, class})
			}
		}
		addFaculty("FullProfessor", ubFullProf, r.between(lubmFullMin, lubmFullMax))
		addFaculty("AssociateProfessor", ubAssocProf, r.between(lubmAssocMin, lubmAssocMax))
		addFaculty("AssistantProfessor", ubAsstProf, r.between(lubmAsstMin, lubmAsstMax))
		addFaculty("Lecturer", ubLecturer, r.between(lubmLectMin, lubmLectMax))

		// Courses: each faculty member teaches 1-2 undergraduate courses and
		// 1-2 graduate courses.
		var courses, gradCourses []rdf.Term
		newCourse := func(grad bool) rdf.Term {
			if grad {
				c := deptEntity(u, d, "GraduateCourse", len(gradCourses))
				gradCourses = append(gradCourses, c)
				return c
			}
			c := deptEntity(u, d, "Course", len(courses))
			courses = append(courses, c)
			return c
		}

		var professors []rdf.Term // advisor pool (Professor subclasses)
		for fi, f := range faculty {
			out = append(out,
				rdf.Triple{S: f.iri, P: rdf.TypeTerm, O: f.class},
				rdf.Triple{S: f.iri, P: ubWorksFor, O: dept},
				rdf.Triple{S: f.iri, P: ubName, O: literal("%s%d", f.kind, fi)},
				rdf.Triple{S: f.iri, P: ubEmail, O: literal("%s%d@Department%d.University%d.edu", f.kind, fi, d, u)},
				rdf.Triple{S: f.iri, P: ubTelephone, O: literal("xxx-xxx-%04d", r.Intn(10000))},
				rdf.Triple{S: f.iri, P: ubUndergradFrom, O: refUniv()},
				rdf.Triple{S: f.iri, P: ubMastersFrom, O: refUniv()},
				rdf.Triple{S: f.iri, P: ubDoctoralFrom, O: refUniv()},
				rdf.Triple{S: f.iri, P: ubResearchInt, O: literal("Research%d", r.Intn(lubmResearchAreas))},
			)
			if f.class != ubLecturer {
				professors = append(professors, f.iri)
			}
			for i := 0; i < r.between(1, 2); i++ {
				c := newCourse(false)
				out = append(out,
					rdf.Triple{S: c, P: rdf.TypeTerm, O: ubCourse},
					rdf.Triple{S: c, P: ubName, O: literal("Course%d", len(courses)-1)},
					rdf.Triple{S: f.iri, P: ubTeacherOf, O: c},
				)
			}
			for i := 0; i < r.between(1, 2); i++ {
				c := newCourse(true)
				out = append(out,
					rdf.Triple{S: c, P: rdf.TypeTerm, O: ubGradCourse},
					rdf.Triple{S: c, P: ubName, O: literal("GraduateCourse%d", len(gradCourses)-1)},
					rdf.Triple{S: f.iri, P: ubTeacherOf, O: c},
				)
			}
		}

		// The first full professor heads the department. Inference turns
		// this into rdf:type Chair and worksFor/memberOf.
		out = append(out, rdf.Triple{S: faculty[0].iri, P: ubHeadOf, O: dept})

		// Research groups.
		nRG := r.between(lubmRGMin, lubmRGMax)
		groups := make([]rdf.Term, nRG)
		for g := 0; g < nRG; g++ {
			rg := deptEntity(u, d, "ResearchGroup", g)
			groups[g] = rg
			out = append(out,
				rdf.Triple{S: rg, P: rdf.TypeTerm, O: ubResearchGroup},
				rdf.Triple{S: rg, P: ubSubOrgOf, O: dept},
			)
		}

		// Undergraduate students.
		nUg := len(faculty) * r.between(lubmUgPerFacMin, lubmUgPerFacMax)
		for i := 0; i < nUg; i++ {
			s := deptEntity(u, d, "UndergraduateStudent", i)
			out = append(out,
				rdf.Triple{S: s, P: rdf.TypeTerm, O: ubUndergrad},
				rdf.Triple{S: s, P: ubMemberOf, O: dept},
				rdf.Triple{S: s, P: ubName, O: literal("UndergraduateStudent%d", i)},
				rdf.Triple{S: s, P: ubEmail, O: literal("UndergraduateStudent%d@Department%d.University%d.edu", i, d, u)},
				rdf.Triple{S: s, P: ubTelephone, O: literal("xxx-xxx-%04d", r.Intn(10000))},
			)
			for _, ci := range r.sampleDistinct(r.between(lubmUgCourses-1, lubmUgCourses+1), len(courses)) {
				out = append(out, rdf.Triple{S: s, P: ubTakesCourse, O: courses[ci]})
			}
			if r.chance(5) {
				out = append(out, rdf.Triple{S: s, P: ubAdvisor, O: pick(r, professors)})
			}
		}

		// Graduate students.
		nGrad := len(faculty) * r.between(lubmGradPerFacMin, lubmGradPerFacMax)
		grads := make([]rdf.Term, nGrad)
		for i := 0; i < nGrad; i++ {
			s := deptEntity(u, d, "GraduateStudent", i)
			grads[i] = s
			out = append(out,
				rdf.Triple{S: s, P: rdf.TypeTerm, O: ubGradStudent},
				rdf.Triple{S: s, P: ubMemberOf, O: dept},
				rdf.Triple{S: s, P: ubName, O: literal("GraduateStudent%d", i)},
				rdf.Triple{S: s, P: ubEmail, O: literal("GraduateStudent%d@Department%d.University%d.edu", i, d, u)},
				rdf.Triple{S: s, P: ubTelephone, O: literal("xxx-xxx-%04d", r.Intn(10000))},
				rdf.Triple{S: s, P: ubUndergradFrom, O: refUniv()},
				rdf.Triple{S: s, P: ubAdvisor, O: pick(r, professors)},
			)
			for _, ci := range r.sampleDistinct(r.between(1, 3), len(gradCourses)) {
				out = append(out, rdf.Triple{S: s, P: ubTakesCourse, O: gradCourses[ci]})
			}
			if r.chance(5) {
				out = append(out,
					rdf.Triple{S: s, P: rdf.TypeTerm, O: ubTA},
					rdf.Triple{S: s, P: ubTAOf, O: pick(r, courses)},
				)
			} else if r.chance(4) {
				out = append(out,
					rdf.Triple{S: s, P: rdf.TypeTerm, O: ubRA},
					rdf.Triple{S: s, P: ubWorksFor, O: pick(r, groups)},
				)
			}
		}

		// Publications: faculty-rank-dependent output with graduate
		// co-authors.
		pubQuota := map[string][2]int{
			"FullProfessor":      {4, 6},
			"AssociateProfessor": {3, 4},
			"AssistantProfessor": {2, 3},
			"Lecturer":           {0, 1},
		}
		perKind := map[string]int{}
		for _, f := range faculty {
			q := pubQuota[f.kind]
			idx := perKind[f.kind]
			perKind[f.kind]++
			for m := 0; m < r.between(q[0], q[1]); m++ {
				p := pubIRI(u, d, f.kind, idx, m)
				out = append(out,
					rdf.Triple{S: p, P: rdf.TypeTerm, O: ubPublication},
					rdf.Triple{S: p, P: ubName, O: literal("Publication%d", m)},
					rdf.Triple{S: p, P: ubPubAuthor, O: f.iri},
				)
				if len(grads) > 0 {
					for i := 0; i < r.Intn(3); i++ {
						out = append(out, rdf.Triple{S: p, P: ubPubAuthor, O: pick(r, grads)})
					}
				}
			}
		}
	}
	return out
}

// LUBMDataset generates LUBM at the given scale, materializes the inferred
// triples, and attaches the 14 benchmark queries.
func LUBMDataset(scale int) *Dataset {
	triples := Materialize(LUBM(LUBMConfig{Universities: scale, Seed: 1}), LUBMRules())
	return &Dataset{
		Name:    fmt.Sprintf("LUBM%d", scale),
		Triples: triples,
		Queries: LUBMQueries(),
	}
}
