package datagen

// LUBMQueries returns the 14 LUBM benchmark queries. The SPARQL text follows
// the official benchmark; the constant IRIs point into University0 exactly
// as in the original (Department0.University0, its AssociateProfessor0, its
// GraduateCourse0). Queries whose Increasing flag is set are the paper's
// increasing-solution queries (Q2, Q6, Q9, Q13, Q14); the rest have
// scale-independent solution counts.
func LUBMQueries() []Query {
	const prefix = `PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
`
	q := func(id, body string, increasing bool) Query {
		return Query{ID: id, Text: prefix + body, Increasing: increasing}
	}
	return []Query{
		q("Q1", `SELECT ?X WHERE {
	?X rdf:type ub:GraduateStudent .
	?X ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> . }`, false),

		q("Q2", `SELECT ?X ?Y ?Z WHERE {
	?X rdf:type ub:GraduateStudent .
	?Y rdf:type ub:University .
	?Z rdf:type ub:Department .
	?X ub:memberOf ?Z .
	?Z ub:subOrganizationOf ?Y .
	?X ub:undergraduateDegreeFrom ?Y . }`, true),

		q("Q3", `SELECT ?X WHERE {
	?X rdf:type ub:Publication .
	?X ub:publicationAuthor <http://www.Department0.University0.edu/AssistantProfessor0> . }`, false),

		q("Q4", `SELECT ?X ?Y1 ?Y2 ?Y3 WHERE {
	?X rdf:type ub:Professor .
	?X ub:worksFor <http://www.Department0.University0.edu> .
	?X ub:name ?Y1 .
	?X ub:emailAddress ?Y2 .
	?X ub:telephone ?Y3 . }`, false),

		q("Q5", `SELECT ?X WHERE {
	?X rdf:type ub:Person .
	?X ub:memberOf <http://www.Department0.University0.edu> . }`, false),

		q("Q6", `SELECT ?X WHERE { ?X rdf:type ub:Student . }`, true),

		q("Q7", `SELECT ?X ?Y WHERE {
	?X rdf:type ub:Student .
	?Y rdf:type ub:Course .
	?X ub:takesCourse ?Y .
	<http://www.Department0.University0.edu/AssociateProfessor0> ub:teacherOf ?Y . }`, false),

		q("Q8", `SELECT ?X ?Y ?Z WHERE {
	?X rdf:type ub:Student .
	?Y rdf:type ub:Department .
	?X ub:memberOf ?Y .
	?Y ub:subOrganizationOf <http://www.University0.edu> .
	?X ub:emailAddress ?Z . }`, false),

		q("Q9", `SELECT ?X ?Y ?Z WHERE {
	?X rdf:type ub:Student .
	?Y rdf:type ub:Faculty .
	?Z rdf:type ub:Course .
	?X ub:advisor ?Y .
	?Y ub:teacherOf ?Z .
	?X ub:takesCourse ?Z . }`, true),

		q("Q10", `SELECT ?X WHERE {
	?X rdf:type ub:Student .
	?X ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> . }`, false),

		q("Q11", `SELECT ?X WHERE {
	?X rdf:type ub:ResearchGroup .
	?X ub:subOrganizationOf <http://www.University0.edu> . }`, false),

		q("Q12", `SELECT ?X ?Y WHERE {
	?X rdf:type ub:Chair .
	?Y rdf:type ub:Department .
	?X ub:worksFor ?Y .
	?Y ub:subOrganizationOf <http://www.University0.edu> . }`, false),

		q("Q13", `SELECT ?X WHERE {
	?X rdf:type ub:Person .
	<http://www.University0.edu> ub:hasAlumnus ?X . }`, true),

		q("Q14", `SELECT ?X WHERE { ?X rdf:type ub:UndergraduateStudent . }`, true),
	}
}

// LUBMQuery returns one query by ID, or a zero Query.
func LUBMQuery(id string) Query {
	for _, q := range LUBMQueries() {
		if q.ID == id {
			return q
		}
	}
	return Query{}
}
