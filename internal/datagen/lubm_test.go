package datagen

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/transform"
)

func lubmEngine(t *testing.T, scale int) *engine.Engine {
	t.Helper()
	ds := LUBMDataset(scale)
	data := transform.Build(ds.Triples, transform.TypeAware)
	return engine.New(data, core.Optimized())
}

func TestLUBMDeterministic(t *testing.T) {
	a := LUBM(LUBMConfig{Universities: 2, Seed: 1})
	b := LUBM(LUBMConfig{Universities: 2, Seed: 1})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := LUBM(LUBMConfig{Universities: 2, Seed: 2})
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

// TestLUBMScaleInvariance checks the property behind the paper's
// constant-solution queries: University0's triples are identical at every
// scale factor.
func TestLUBMScaleInvariance(t *testing.T) {
	collectU0 := func(ts []rdf.Triple) map[rdf.Triple]bool {
		set := map[rdf.Triple]bool{}
		for _, tr := range ts {
			if strings.Contains(string(tr.S), "University0.edu") {
				set[tr] = true
			}
		}
		return set
	}
	small := collectU0(LUBM(LUBMConfig{Universities: 1, Seed: 1}))
	large := collectU0(LUBM(LUBMConfig{Universities: 4, Seed: 1}))
	if len(small) == 0 {
		t.Fatal("no University0 triples generated")
	}
	if len(small) != len(large) {
		t.Fatalf("University0 differs across scales: %d vs %d triples", len(small), len(large))
	}
	for tr := range small {
		if !large[tr] {
			t.Fatalf("missing at larger scale: %v", tr)
		}
	}
}

func TestLUBMGrowsLinearly(t *testing.T) {
	// Per-university sizes vary (each draws its own cardinalities), so the
	// tolerance is generous; the point is ruling out constant or quadratic
	// growth.
	n1 := len(LUBM(LUBMConfig{Universities: 1, Seed: 1}))
	n4 := len(LUBM(LUBMConfig{Universities: 4, Seed: 1}))
	ratio := float64(n4) / float64(n1)
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("scale 1->4 grew by %.2fx, want roughly 4x (%d -> %d)", ratio, n1, n4)
	}
}

// TestLUBMQuerySolutionShape verifies the paper's Table 2 shape: constant
// solution queries keep their counts across scales, increasing ones grow.
func TestLUBMQuerySolutionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two LUBM datasets")
	}
	e1 := lubmEngine(t, 1)
	e3 := lubmEngine(t, 3)
	for _, q := range LUBMQueries() {
		n1, err := e1.Count(q.Text)
		if err != nil {
			t.Fatalf("%s at scale 1: %v", q.ID, err)
		}
		n3, err := e3.Count(q.Text)
		if err != nil {
			t.Fatalf("%s at scale 3: %v", q.ID, err)
		}
		if q.Increasing {
			if n3 <= n1 {
				t.Errorf("%s: increasing query did not grow (%d -> %d)", q.ID, n1, n3)
			}
		} else {
			if n1 != n3 {
				t.Errorf("%s: constant query changed (%d -> %d)", q.ID, n1, n3)
			}
			if n1 == 0 {
				t.Errorf("%s: constant query has no solutions", q.ID)
			}
		}
	}
}

// TestLUBMQueriesNonEmpty ensures every benchmark query has at least one
// solution at scale 1 except Q2-like coincidence queries, which only need
// to be non-empty at a larger scale (checked in the shape test above).
func TestLUBMQueriesNonEmpty(t *testing.T) {
	e := lubmEngine(t, 2)
	for _, q := range LUBMQueries() {
		n, err := e.Count(q.Text)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if n == 0 && q.ID != "Q2" && q.ID != "Q9" {
			t.Errorf("%s returned no solutions at scale 2", q.ID)
		}
	}
}

func TestLUBMInferredTypes(t *testing.T) {
	ds := LUBMDataset(1)
	// A full professor must carry the whole superclass chain after
	// materialization.
	var gotFaculty, gotPerson, gotChair, gotStudentFromGrad bool
	for _, tr := range ds.Triples {
		if tr.P != rdf.TypeTerm {
			continue
		}
		s := string(tr.S)
		if strings.Contains(s, "FullProfessor0") && !strings.Contains(s, "Publication") {
			switch tr.O {
			case ubFaculty:
				gotFaculty = true
			case ubPerson:
				gotPerson = true
			case ubChair:
				gotChair = true
			}
		}
		if strings.Contains(s, "GraduateStudent0") && !strings.Contains(s, "Publication") && tr.O == ubStudent {
			gotStudentFromGrad = true
		}
	}
	if !gotFaculty || !gotPerson {
		t.Errorf("professor superclass types missing (faculty=%v person=%v)", gotFaculty, gotPerson)
	}
	if !gotChair {
		t.Error("Chair not derived for a department head")
	}
	if !gotStudentFromGrad {
		t.Error("GraduateStudent not promoted to Student")
	}
}

func TestLUBMTransitiveSubOrg(t *testing.T) {
	ds := LUBMDataset(1)
	// Research groups must reach the university through materialized
	// transitivity.
	found := false
	for _, tr := range ds.Triples {
		if tr.P == ubSubOrgOf &&
			strings.Contains(string(tr.S), "ResearchGroup") &&
			strings.Contains(string(tr.O), "www.University0.edu") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no ResearchGroup subOrganizationOf University0 triple materialized")
	}
}

func TestLUBMQueryLookupByID(t *testing.T) {
	if q := LUBMQuery("Q9"); q.ID != "Q9" || !q.Increasing {
		t.Fatalf("LUBMQuery(Q9) = %+v", q)
	}
	if q := LUBMQuery("nope"); q.ID != "" {
		t.Fatalf("LUBMQuery(nope) = %+v", q)
	}
}
