package datagen

import (
	"fmt"

	"repro/internal/rdf"
)

// YAGO namespace (simplified).
const YagoNS = "http://yago-knowledge.org/resource/"

func yago(local string) rdf.Term { return rdf.NewIRI(YagoNS + local) }

// YAGO vocabulary: class terms follow YAGO's wordnet naming, predicates the
// fact names the RDF-3X query set uses (the paper substitutes bornIn for
// bornInLocation, §7.1; we use the substituted names directly).
var (
	yagoScientist  = yago("wordnet_scientist")
	yagoActor      = yago("wordnet_actor")
	yagoPolitician = yago("wordnet_politician")
	yagoWriter     = yago("wordnet_writer")
	yagoCity       = yago("wordnet_city")
	yagoCountry    = yago("wordnet_country")
	yagoUniversity = yago("wordnet_university")
	yagoMovie      = yago("wordnet_movie")
	yagoPrize      = yago("wordnet_prize")

	yagoBornIn     = yago("bornIn")
	yagoDiedIn     = yago("diedIn")
	yagoLocatedIn  = yago("locatedIn")
	yagoCitizenOf  = yago("isCitizenOf")
	yagoMarriedTo  = yago("isMarriedTo")
	yagoWonPrize   = yago("hasWonPrize")
	yagoGradFrom   = yago("graduatedFrom")
	yagoWorksAt    = yago("worksAt")
	yagoActedIn    = yago("actedIn")
	yagoDirected   = yago("directed")
	yagoInfluences = yago("influences")
	yagoGivenName  = yago("hasGivenName")
	yagoFamilyName = yago("hasFamilyName")
)

var yagoCountryNames = []string{
	"United_States", "Switzerland", "Germany", "France", "Japan",
	"United_Kingdom", "Italy", "Canada", "South_Korea", "Brazil",
}

var yagoGivenNames = []string{
	"Albert", "Marie", "Isaac", "Ada", "Alan", "Grace", "Erwin", "Emmy",
	"Niels", "Rosalind", "Richard", "Lise",
}

var yagoFamilyNames = []string{
	"Einstein", "Curie", "Newton", "Lovelace", "Turing", "Hopper",
	"Schrodinger", "Noether", "Bohr", "Franklin", "Feynman", "Meitner",
}

// YAGOConfig parameterizes the YAGO-like generator.
type YAGOConfig struct {
	// People is the scale factor; cities, universities, movies and prizes
	// scale along with it.
	People int
	Seed   int64
}

// YAGO generates a heterogeneous fact graph in YAGO's style: persons of
// four professions with irregular property coverage (unlike LUBM, most
// properties are present only for a fraction of the population — the
// dataset the paper uses to check that +REUSE survives schema
// irregularity). Married pairs are always born in different cities, so the
// "married couple born in the same city" query has zero solutions, mirroring
// the empty query of the paper's Table 4.
func YAGO(cfg YAGOConfig) []rdf.Triple {
	r := newRNG(cfg.Seed*31_337 + 5)
	var out []rdf.Triple

	nPeople := cfg.People
	nCities := nPeople/10 + 20
	nUnis := nPeople/25 + 8
	nMovies := nPeople/5 + 10
	nPrizes := 10

	countries := make([]rdf.Term, len(yagoCountryNames))
	for i, n := range yagoCountryNames {
		countries[i] = yago(n)
		out = append(out, rdf.Triple{S: countries[i], P: rdf.TypeTerm, O: yagoCountry})
	}
	cities := make([]rdf.Term, nCities)
	cityCountry := make([]int, nCities)
	for i := 0; i < nCities; i++ {
		cities[i] = yago(fmt.Sprintf("City%d", i))
		cityCountry[i] = r.Intn(len(countries))
		out = append(out,
			rdf.Triple{S: cities[i], P: rdf.TypeTerm, O: yagoCity},
			rdf.Triple{S: cities[i], P: yagoLocatedIn, O: countries[cityCountry[i]]},
		)
	}
	unis := make([]rdf.Term, nUnis)
	for i := 0; i < nUnis; i++ {
		unis[i] = yago(fmt.Sprintf("University%d", i))
		out = append(out,
			rdf.Triple{S: unis[i], P: rdf.TypeTerm, O: yagoUniversity},
			rdf.Triple{S: unis[i], P: yagoLocatedIn, O: cities[r.Intn(nCities)]},
		)
	}
	prizes := make([]rdf.Term, nPrizes)
	for i := 0; i < nPrizes; i++ {
		prizes[i] = yago(fmt.Sprintf("Prize%d", i))
		out = append(out, rdf.Triple{S: prizes[i], P: rdf.TypeTerm, O: yagoPrize})
	}
	movies := make([]rdf.Term, nMovies)
	for i := 0; i < nMovies; i++ {
		movies[i] = yago(fmt.Sprintf("Movie%d", i))
		out = append(out, rdf.Triple{S: movies[i], P: rdf.TypeTerm, O: yagoMovie})
	}

	professions := []rdf.Term{yagoScientist, yagoActor, yagoPolitician, yagoWriter}
	people := make([]rdf.Term, nPeople)
	born := make([]int, nPeople)
	for i := 0; i < nPeople; i++ {
		p := yago(fmt.Sprintf("Person%d", i))
		people[i] = p
		prof := professions[r.Intn(len(professions))]
		born[i] = r.Intn(nCities)
		out = append(out,
			rdf.Triple{S: p, P: rdf.TypeTerm, O: prof},
			rdf.Triple{S: p, P: yagoBornIn, O: cities[born[i]]},
			rdf.Triple{S: p, P: yagoGivenName, O: rdf.NewLiteral(pick(r, yagoGivenNames))},
			rdf.Triple{S: p, P: yagoFamilyName, O: rdf.NewLiteral(pick(r, yagoFamilyNames))},
		)
		if r.chance(2) {
			out = append(out, rdf.Triple{S: p, P: yagoCitizenOf, O: countries[cityCountry[born[i]]]})
		}
		if r.chance(4) {
			out = append(out, rdf.Triple{S: p, P: yagoDiedIn, O: cities[r.Intn(nCities)]})
		}
		if r.chance(3) {
			out = append(out, rdf.Triple{S: p, P: yagoGradFrom, O: unis[r.Intn(nUnis)]})
		}
		if r.chance(5) {
			out = append(out, rdf.Triple{S: p, P: yagoWonPrize, O: prizes[r.Intn(nPrizes)]})
		}
		switch prof {
		case yagoScientist:
			out = append(out, rdf.Triple{S: p, P: yagoWorksAt, O: unis[r.Intn(nUnis)]})
		case yagoActor:
			for k := 0; k < r.between(1, 3); k++ {
				m := movies[r.Intn(nMovies)]
				out = append(out, rdf.Triple{S: p, P: yagoActedIn, O: m})
				// A few actors direct a movie they star in (the
				// self-directed query).
				if r.chance(10) {
					out = append(out, rdf.Triple{S: p, P: yagoDirected, O: m})
				}
			}
		case yagoWriter:
			if r.chance(2) {
				out = append(out, rdf.Triple{S: p, P: yagoInfluences, O: yago(fmt.Sprintf("Person%d", r.Intn(nPeople)))})
			}
		}
	}

	// Marriages: consecutive pairs with distinct birth cities, keeping the
	// same-city marriage query empty by construction.
	for i := 0; i+1 < nPeople; i += 7 {
		if born[i] == born[i+1] {
			continue
		}
		out = append(out,
			rdf.Triple{S: people[i], P: yagoMarriedTo, O: people[i+1]},
			rdf.Triple{S: people[i+1], P: yagoMarriedTo, O: people[i]},
		)
	}
	return out
}

// YAGODataset generates the YAGO-like dataset (no inference — YAGO is
// loaded as-is in the paper) with its 8 benchmark queries.
func YAGODataset(people int) *Dataset {
	return &Dataset{
		Name:    fmt.Sprintf("YAGO%d", people),
		Triples: YAGO(YAGOConfig{People: people, Seed: 1}),
		Queries: YAGOQueries(),
	}
}
