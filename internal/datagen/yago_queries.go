package datagen

// YAGOQueries returns the 8-query YAGO workload, following the structure of
// the RDF-3X query set the paper reuses (§7.1): entity-centric joins over
// the fact predicates, a guaranteed-empty query (Q2, like the paper's
// Table 4), a self-join (Q3), and one large star (Q7).
func YAGOQueries() []Query {
	const prefix = `PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX y: <http://yago-knowledge.org/resource/>
`
	q := func(id, body string) Query { return Query{ID: id, Text: prefix + body} }
	return []Query{
		// Q1: scientists born in a Swiss city.
		q("Q1", `SELECT ?p ?city WHERE {
	?p rdf:type y:wordnet_scientist .
	?p y:bornIn ?city .
	?city y:locatedIn y:Switzerland . }`),

		// Q2: married couples born in the same city — empty by
		// construction, like the paper's YAGO Q2.
		q("Q2", `SELECT ?a ?b ?city WHERE {
	?a y:isMarriedTo ?b .
	?a y:bornIn ?city .
	?b y:bornIn ?city . }`),

		// Q3: actors who directed a movie they acted in.
		q("Q3", `SELECT ?p ?m WHERE {
	?p rdf:type y:wordnet_actor .
	?p y:actedIn ?m .
	?p y:directed ?m . }`),

		// Q4: prize-winning scientists working at a university located in a
		// United States city.
		q("Q4", `SELECT ?p ?u WHERE {
	?p rdf:type y:wordnet_scientist .
	?p y:hasWonPrize ?prize .
	?p y:worksAt ?u .
	?u y:locatedIn ?city .
	?city y:locatedIn y:United_States . }`),

		// Q5: writers who influence someone born in the same city as
		// themselves.
		q("Q5", `SELECT ?w ?x WHERE {
	?w rdf:type y:wordnet_writer .
	?w y:influences ?x .
	?w y:bornIn ?city .
	?x y:bornIn ?city . }`),

		// Q6: politicians who are citizens of a country where some actor
		// was born.
		q("Q6", `SELECT ?pol ?country WHERE {
	?pol rdf:type y:wordnet_politician .
	?pol y:isCitizenOf ?country .
	?city y:locatedIn ?country .
	?actor y:bornIn ?city .
	?actor rdf:type y:wordnet_actor . }`),

		// Q7: the big star — names, birthplace, citizenship for everyone
		// with full coverage.
		q("Q7", `SELECT ?p ?gn ?fn ?city ?country WHERE {
	?p y:hasGivenName ?gn .
	?p y:hasFamilyName ?fn .
	?p y:bornIn ?city .
	?p y:isCitizenOf ?country .
	?city y:locatedIn ?country . }`),

		// Q8: people who graduated from a university in their birth city.
		q("Q8", `SELECT ?p ?u WHERE {
	?p y:graduatedFrom ?u .
	?u y:locatedIn ?city .
	?p y:bornIn ?city . }`),
	}
}
