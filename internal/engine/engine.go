// Package engine executes SPARQL queries against a transformed RDF dataset
// using the core TurboHOM++ matcher. It translates basic graph patterns into
// query graphs under either transformation (folding constant rdf:type
// patterns into vertex labels under the type-aware transformation), pushes
// inexpensive FILTERs into exploration, evaluates expensive FILTERs after
// matching, and implements OPTIONAL as a SPARQL left join and UNION by
// sub-query splitting (paper §5.1).
//
// Execution is organized around prepared queries: Prepare parses and plans
// once, and the resulting PreparedQuery can be executed many times,
// concurrently, either materialized (Exec) or streamed row by row through a
// Rows cursor (Select). String-based Query/Count are thin wrappers that
// prepare and execute in one step.
package engine

import (
	"context"
	"fmt"
	"maps"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/transform"
)

// Engine executes queries against one dataset. The dataset is held as an
// atomically swappable snapshot: a mutable store publishes a fresh
// transform.Data after every update batch via SetData, and every execution
// pins the snapshot current at its start — in-flight cursors and concurrent
// executions never observe a later snapshot mid-run.
type Engine struct {
	mode transform.Mode
	cur  atomic.Pointer[transform.Data]
	sem  core.Semantics
	opts core.Opts
}

// New builds an engine over transformed data with the given matcher options.
// Workers == 0 defaults to runtime.GOMAXPROCS(0), so every execution path is
// parallel out of the box: the materializing paths (Exec, Count) fan
// candidate regions over the workers, and the streaming cursor (Select)
// runs the ordered region pipeline, whose reorder stage preserves the
// sequential row order, early termination, and MaxSolutions determinism.
// Nothing about the default costs determinism — results with Workers = N
// are byte-identical to Workers = 1, capped or not. Pass Workers = 1 for
// strictly sequential execution (ablations, single-core boxes).
func New(data *transform.Data, opts core.Opts) *Engine {
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{mode: data.Mode, sem: core.Homomorphism, opts: opts}
	e.cur.Store(data)
	return e
}

// Data returns the current dataset snapshot.
func (e *Engine) Data() *transform.Data { return e.cur.Load() }

// SetData publishes a new dataset snapshot. The snapshot must come from the
// same store lineage as the previous one — same transformation mode and the
// same append-only dictionaries — so that prepared queries' pinned term IDs
// stay meaningful. Executions already running keep their pinned snapshot;
// executions starting afterwards observe the new one.
//
// The lineage contract is enforced where it is checkable: the mode must
// match and the epoch must not go backwards. Epochs keep increasing across
// restarts (a store restored from a persisted snapshot resumes at the
// snapshot's epoch), so this also catches accidentally publishing a stale
// pre-restart snapshot into a recovered engine.
func (e *Engine) SetData(d *transform.Data) {
	if d.Mode != e.mode {
		panic(fmt.Sprintf("engine: SetData with %s-transformed snapshot into a %s engine", d.Mode, e.mode))
	}
	if cur := e.cur.Load(); cur != nil && d.Epoch < cur.Epoch {
		panic(fmt.Sprintf("engine: SetData would move the snapshot epoch backwards (%d -> %d)", cur.Epoch, d.Epoch))
	}
	e.cur.Store(d)
}

// SetSemantics overrides the matching semantics (the default is the RDF
// e-graph homomorphism; Isomorphism gives classic subgraph isomorphism).
// Prepared queries read the engine configuration at execution time, so
// configure the engine fully before running queries: SetSemantics must not
// be called concurrently with any execution, including executions of
// previously prepared queries.
func (e *Engine) SetSemantics(s core.Semantics) { e.sem = s }

// Result is a materialized result set. Unbound positions (OPTIONAL) hold
// the empty term.
type Result struct {
	Vars []string
	Rows [][]rdf.Term
}

// PreparedQuery is a parsed and planned query. Preparation pays the SPARQL
// front-end cost (parsing, UNION/type-wildcard expansion, plan compilation
// against the dataset's dictionaries) exactly once; the prepared query is
// immutable afterwards and safe for concurrent execution.
//
// Plans are compiled per dataset snapshot: each execution pins the engine's
// current snapshot and reuses the cached compilation when it matches,
// recompiling (once) after the store has been updated. Term↔ID mappings are
// append-only, so recompilation only ever changes what the snapshot can
// change: candidate statistics, label views, and empty-by-unknown-term
// decisions.
//
// Compilations are kept in a bounded per-epoch cache: acquiring plans for a
// snapshot pins that snapshot's entry for the execution's lifetime, and
// releasing the last pin of a superseded epoch drops the entry — so the
// cache holds the current epoch's compilation plus exactly the superseded
// ones still referenced by in-flight cursors, never an unbounded history of
// past epochs.
type PreparedQuery struct {
	e      *Engine
	q      *sparql.Query
	vars   []string
	vi     *varIndex
	groups []*flatGroup

	keyOnce sync.Once
	key     string

	mu    sync.Mutex
	plans map[uint64]*planEntry
}

// planEntry is one snapshot's compilation of a prepared query, reference-
// counted by the executions pinning it.
type planEntry struct {
	data  *transform.Data
	plans []*plan
	fp    *cache.Footprint
	pins  int
}

// acquirePlans returns the plans compiled against snapshot d, pinned for
// one execution. Every acquire must be paired with exactly one releasePlans
// once the execution (and any cursor over it) is done.
func (pq *PreparedQuery) acquirePlans(d *transform.Data) (*planEntry, error) {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if pe, ok := pq.plans[d.Epoch]; ok && pe.data == d {
		pe.pins++
		return pe, nil
	}
	plans := make([]*plan, 0, len(pq.groups))
	for _, g := range pq.groups {
		p, err := pq.e.buildPlan(d, g, nil)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	pe := &planEntry{data: d, plans: plans, fp: pq.e.plansFootprint(plans), pins: 1}
	pq.plans[d.Epoch] = pe
	pq.sweepLocked()
	return pe, nil
}

// releasePlans drops one pin. The last pin of an entry whose snapshot has
// been superseded removes it from the cache; the current snapshot's entry is
// kept for the next execution.
func (pq *PreparedQuery) releasePlans(pe *planEntry) {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	pe.pins--
	if pe.pins == 0 && pe.data != pq.e.Data() {
		if cur, ok := pq.plans[pe.data.Epoch]; ok && cur == pe {
			delete(pq.plans, pe.data.Epoch)
		}
	}
}

// sweepLocked drops unpinned entries of superseded epochs. Deletion order
// over the map is irrelevant: every unpinned stale entry goes.
func (pq *PreparedQuery) sweepLocked() {
	cur := pq.e.Data()
	maps.DeleteFunc(pq.plans, func(_ uint64, pe *planEntry) bool {
		return pe.pins == 0 && pe.data != cur
	})
}

// cachedPlanEpochs lists the epochs with live compiled plans (test hook).
func (pq *PreparedQuery) cachedPlanEpochs() []uint64 {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	epochs := make([]uint64, 0, len(pq.plans))
	for epoch := range pq.plans {
		epochs = append(epochs, epoch)
	}
	slices.Sort(epochs)
	return epochs
}

// CacheKey identifies the query's result set across textual variations: the
// canonical rendering of the parsed query plus the engine's options
// fingerprint. Two query strings with the same key produce byte-identical
// result sets on the same snapshot; two queries with different semantics
// never share a key. It is the result cache's lookup key.
func (pq *PreparedQuery) CacheKey() string {
	pq.keyOnce.Do(func() {
		pq.key = sparql.Canonical(pq.q) + "\x00" + pq.e.fingerprint()
	})
	return pq.key
}

// fingerprint encodes every engine option that can change a query's result
// rows or their order. Workers and StreamBuffer are deliberately absent: row
// streams are byte-identical across worker counts by the pipeline's ordering
// contract.
func (e *Engine) fingerprint() string {
	o := e.opts
	return fmt.Sprintf("mode=%d;sem=%d;int=%t;nlf=%t;deg=%t;reuse=%t;cost=%t;sig=%t;nec=%t;max=%d;topk=%d",
		e.mode, e.sem, o.Intersect, o.NoNLF, o.NoDegree, o.ReuseOrder,
		o.CostOrder, o.NoSignature, o.NoNEC, o.MaxSolutions, o.StartVertexCandidates)
}

// Prepare parses src and compiles its execution plan.
func (e *Engine) Prepare(src string) (*PreparedQuery, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.PrepareParsed(q)
}

// PrepareParsed compiles an already-parsed query. The query must not be
// mutated afterwards.
func (e *Engine) PrepareParsed(q *sparql.Query) (*PreparedQuery, error) {
	pq := &PreparedQuery{
		e:      e,
		q:      q,
		vars:   q.ProjectedVars(),
		vi:     buildVarIndex(q),
		groups: e.expandGroups(q.Where),
		plans:  make(map[uint64]*planEntry),
	}
	// Compile eagerly against the current snapshot so preparation reports
	// errors up front; later snapshots recompile lazily through acquirePlans.
	pe, err := pq.acquirePlans(e.Data())
	if err != nil {
		return nil, err
	}
	pq.releasePlans(pe)
	return pq, nil
}

// Vars returns the projection, in SELECT order. The slice is shared; do not
// modify it.
func (pq *PreparedQuery) Vars() []string { return pq.vars }

// Ask reports whether the query is an ASK form: answered with a boolean
// (does at least one solution exist?) instead of a row set. The parser pins
// an ASK query's Limit to 1, so draining its cursor does no more work than
// finding the first solution.
func (pq *PreparedQuery) Ask() bool { return pq.q.Ask }

// Exec runs the prepared query and materializes every row. Unlike Select
// it lets Workers > 1 parallelize the matching: a consumer draining
// everything wants throughput, not first-row latency.
func (pq *PreparedQuery) Exec(ctx context.Context) (*Result, error) {
	var rows [][]rdf.Term
	err := pq.stream(ctx, pq.e.Data(), nil, false, func(row []rdf.Term) bool {
		rows = append(rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	return &Result{Vars: pq.vars, Rows: rows}, nil
}

// Count runs the prepared query returning only the number of rows. It uses
// a count-only fast path (no row materialization, no dictionary lookups —
// the paper's timing protocol) whenever the query shape allows.
func (pq *PreparedQuery) Count(ctx context.Context) (int, error) {
	q := pq.q
	d := pq.e.Data()
	pe, err := pq.acquirePlans(d)
	if err != nil {
		return 0, err
	}
	defer pq.releasePlans(pe)
	if !q.Distinct && q.Limit < 0 && q.Offset == 0 {
		total := 0
		fast := true
		for i, g := range pq.groups {
			n, ok, err := pq.e.tryFastCount(ctx, pe.plans[i], g)
			if err != nil {
				return 0, err
			}
			if !ok {
				fast = false
				break
			}
			total += n
		}
		if fast {
			return total, nil
		}
	}
	n := 0
	err = pq.streamWith(ctx, pe, nil, false, func([]rdf.Term) bool {
		n++
		return true
	})
	return n, err
}

// Query parses and executes a SPARQL query string.
func (e *Engine) Query(src string) (*Result, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext parses and executes a SPARQL query string under ctx.
func (e *Engine) QueryContext(ctx context.Context, src string) (*Result, error) {
	pq, err := e.Prepare(src)
	if err != nil {
		return nil, err
	}
	return pq.Exec(ctx)
}

// Count parses and executes a query, returning only the number of rows.
func (e *Engine) Count(src string) (int, error) {
	return e.CountContext(context.Background(), src)
}

// CountContext parses and counts a query's rows under ctx.
func (e *Engine) CountContext(ctx context.Context, src string) (int, error) {
	pq, err := e.Prepare(src)
	if err != nil {
		return 0, err
	}
	return pq.Count(ctx)
}

// Select parses src and returns a streaming cursor over its rows.
func (e *Engine) Select(ctx context.Context, src string) (*Rows, error) {
	pq, err := e.Prepare(src)
	if err != nil {
		return nil, err
	}
	return pq.Select(ctx), nil
}

// Exec executes a parsed query (compatibility wrapper over PrepareParsed).
func (e *Engine) Exec(q *sparql.Query) (*Result, error) {
	pq, err := e.PrepareParsed(q)
	if err != nil {
		return nil, err
	}
	return pq.Exec(context.Background())
}

// ExecCount executes a parsed query counting rows only.
func (e *Engine) ExecCount(q *sparql.Query) (int, error) {
	pq, err := e.PrepareParsed(q)
	if err != nil {
		return 0, err
	}
	return pq.Count(context.Background())
}

// tryFastCount counts a flat group's solutions without materializing rows.
// It applies when the group has no OPTIONALs, no post filters, and no
// variable-type expansions, and no predicate variable spans components.
func (e *Engine) tryFastCount(ctx context.Context, plan *plan, g *flatGroup) (int, bool, error) {
	if plan.empty {
		return 0, true, nil
	}
	if len(plan.optionals) > 0 || len(plan.post) > 0 || len(plan.typeExps) > 0 || len(g.fixed) > 0 {
		return 0, false, nil
	}
	if len(plan.comps) == 0 {
		return 1, true, nil // empty group pattern: one empty solution
	}
	// Predicate variables shared across components force a join.
	if plan.predVarSpansComponents() {
		return 0, false, nil
	}
	total := 1
	for _, c := range plan.comps {
		n, err := core.Count(ctx, plan.data.G, c.qg, e.sem, e.opts)
		if err != nil {
			return 0, false, err
		}
		total *= n
		if total == 0 {
			return 0, true, nil
		}
	}
	return total, true, nil
}

// varIndex assigns a dense slot to every variable in the query.
type varIndex struct {
	index map[string]int
	names []string
}

func buildVarIndex(q *sparql.Query) *varIndex {
	vi := &varIndex{index: map[string]int{}}
	set := map[string]bool{}
	q.Where.Vars(set)
	for _, v := range q.ProjectedVars() {
		set[v] = true
	}
	// Deterministic slot order.
	var names []string
	for v := range set {
		names = append(names, v)
	}
	sortStrings(names)
	for _, v := range names {
		vi.index[v] = len(vi.names)
		vi.names = append(vi.names, v)
	}
	return vi
}

func (vi *varIndex) slot(name string) int {
	i, ok := vi.index[name]
	if !ok {
		return -1
	}
	return i
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// fixedBinding pins a variable to a constant term for one alternative (used
// by the wildcard-predicate rdf:type expansion).
type fixedBinding struct {
	name string
	term rdf.Term
}

// flatGroup is a group pattern after UNION expansion: triples, filters and
// optionals only, plus per-alternative fixed variable bindings.
type flatGroup struct {
	triples   []sparql.TriplePattern
	filters   []sparql.Expr
	optionals []*sparql.GroupPattern
	fixed     []fixedBinding
}

// expandUnions distributes every UNION chain in g, producing the flat
// alternatives whose solutions are concatenated (paper §5.1: split into
// sub-queries, union the solutions).
func expandUnions(g *sparql.GroupPattern) []*flatGroup {
	base := &flatGroup{
		triples:   g.Triples,
		filters:   g.Filters,
		optionals: g.Optionals,
	}
	groups := []*flatGroup{base}
	for _, chain := range g.Unions {
		var next []*flatGroup
		for _, cur := range groups {
			for _, alt := range chain {
				for _, altFlat := range expandUnions(alt) {
					merged := &flatGroup{
						triples:   concat(cur.triples, altFlat.triples),
						filters:   concat(cur.filters, altFlat.filters),
						optionals: concat(cur.optionals, altFlat.optionals),
						fixed:     concat(cur.fixed, altFlat.fixed),
					}
					next = append(next, merged)
				}
			}
		}
		groups = next
	}
	return groups
}

// expandGroups flattens g's UNIONs and, under the type-aware transformation,
// expands every variable-predicate pattern into its rdf:type alternative.
// The type-aware graph has no rdf:type edges — they were folded into vertex
// labels — so a wildcard predicate must additionally be allowed to bind
// rdf:type, with the object ranging over the subject's direct type set
// Lsimple (paper §4.2, the simple entailment regime). Each such pattern
// doubles the alternatives: one where it matches a real edge (the wildcard
// can never bind rdf:type there, keeping the alternatives disjoint) and one
// where it is rewritten to a constant rdf:type pattern with the predicate
// variable pinned.
func (e *Engine) expandGroups(g *sparql.GroupPattern) []*flatGroup {
	flats := expandUnions(g)
	if e.mode != transform.TypeAware {
		return flats
	}
	var out []*flatGroup
	for _, f := range flats {
		out = append(out, e.expandTypeWildcards(f)...)
	}
	return out
}

// maxWildcardExpansion caps the 2^k alternative blow-up of groups with many
// variable predicates; beyond it the rdf:type alternatives are dropped
// (matching plain graph-edge semantics).
const maxWildcardExpansion = 4

func (e *Engine) expandTypeWildcards(f *flatGroup) []*flatGroup {
	var wild []int
	for i, tp := range f.triples {
		if tp.P.IsVar() {
			wild = append(wild, i)
		}
	}
	if len(wild) == 0 || len(wild) > maxWildcardExpansion {
		return []*flatGroup{f}
	}
	var out []*flatGroup
	for mask := 0; mask < 1<<len(wild); mask++ {
		alt := &flatGroup{
			triples:   append([]sparql.TriplePattern(nil), f.triples...),
			filters:   f.filters,
			optionals: f.optionals,
			fixed:     append([]fixedBinding(nil), f.fixed...),
		}
		for bit, ti := range wild {
			if mask&(1<<bit) == 0 {
				continue
			}
			tp := alt.triples[ti]
			alt.triples[ti] = sparql.TriplePattern{
				S: tp.S,
				P: sparql.Constant(rdf.TypeTerm),
				O: tp.O,
			}
			alt.fixed = append(alt.fixed, fixedBinding{name: tp.P.Var, term: rdf.TypeTerm})
		}
		out = append(out, alt)
	}
	return out
}

func concat[T any](a, b []T) []T {
	if len(b) == 0 {
		return a
	}
	out := make([]T, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v (%d rows)", r.Vars, len(r.Rows))
	return b.String()
}
