package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/transform"
)

const ns = "http://example.org/"

func iri(s string) rdf.Term { return rdf.NewIRI(ns + s) }

// uniTriples is a small university dataset with explicit type closure (as
// the paper loads original + inferred triples).
func uniTriples() []rdf.Triple {
	tp := rdf.TypeTerm
	sc := rdf.SubClassTerm
	var ts []rdf.Triple
	add := func(s, p, o rdf.Term) { ts = append(ts, rdf.Triple{S: s, P: p, O: o}) }

	add(iri("GraduateStudent"), sc, iri("Student"))
	add(iri("UndergraduateStudent"), sc, iri("Student"))
	add(iri("Student"), sc, iri("Person"))
	add(iri("Professor"), sc, iri("Person"))

	// Two universities, two departments.
	add(iri("univ0"), tp, iri("University"))
	add(iri("univ1"), tp, iri("University"))
	add(iri("dept0"), tp, iri("Department"))
	add(iri("dept1"), tp, iri("Department"))
	add(iri("dept0"), iri("subOrganizationOf"), iri("univ0"))
	add(iri("dept1"), iri("subOrganizationOf"), iri("univ1"))

	// Students with inferred superclass types materialized.
	students := []struct {
		name  string
		kind  string
		dept  string
		ugUni string
	}{
		{"alice", "GraduateStudent", "dept0", "univ0"},
		{"bob", "GraduateStudent", "dept0", "univ1"},
		{"carol", "GraduateStudent", "dept1", "univ1"},
		{"dave", "UndergraduateStudent", "dept0", ""},
	}
	for _, s := range students {
		add(iri(s.name), tp, iri(s.kind))
		add(iri(s.name), tp, iri("Student")) // inferred
		add(iri(s.name), tp, iri("Person"))  // inferred
		add(iri(s.name), iri("memberOf"), iri(s.dept))
		if s.ugUni != "" {
			add(iri(s.name), iri("undergraduateDegreeFrom"), iri(s.ugUni))
		}
		add(iri(s.name), iri("name"), rdf.NewLiteral(strings.ToUpper(s.name)))
	}
	add(iri("prof0"), tp, iri("Professor"))
	add(iri("prof0"), tp, iri("Person")) // inferred
	add(iri("prof0"), iri("worksFor"), iri("dept0"))
	add(iri("alice"), iri("advisor"), iri("prof0"))
	add(iri("bob"), iri("advisor"), iri("prof0"))

	// Products for FILTER/OPTIONAL tests (paper §5.1 example).
	add(iri("product1"), tp, iri("Product"))
	add(iri("product1"), iri("price"), rdf.NewIntLiteral(100))
	add(iri("product1"), iri("rating"), rdf.NewIntLiteral(5))
	add(iri("product1"), iri("rating"), rdf.NewIntLiteral(1))
	add(iri("product2"), tp, iri("Product"))
	add(iri("product2"), iri("price"), rdf.NewIntLiteral(250))
	add(iri("product2"), iri("rating"), rdf.NewIntLiteral(3))
	add(iri("product2"), iri("homepage"), rdf.NewLiteral("http://shop/p2"))
	return ts
}

func newEngines(t *testing.T) (aware, direct *Engine) {
	t.Helper()
	ts := uniTriples()
	aware = New(transform.Build(ts, transform.TypeAware), core.Optimized())
	direct = New(transform.Build(ts, transform.Direct), core.Optimized())
	return aware, direct
}

func rowsKey(res *Result) []string {
	keys := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, t := range r {
			parts[i] = string(t)
		}
		keys = append(keys, strings.Join(parts, "|"))
	}
	sort.Strings(keys)
	return keys
}

func assertSameResults(t *testing.T, q string, a, b *Engine) *Result {
	t.Helper()
	ra, err := a.Query(q)
	if err != nil {
		t.Fatalf("type-aware: %v\nquery: %s", err, q)
	}
	rb, err := b.Query(q)
	if err != nil {
		t.Fatalf("direct: %v\nquery: %s", err, q)
	}
	ka, kb := rowsKey(ra), rowsKey(rb)
	if len(ka) != len(kb) {
		t.Fatalf("row count differs: type-aware %d vs direct %d\nquery: %s", len(ka), len(kb), q)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("rows differ at %d:\n  aware : %s\n  direct: %s\nquery: %s", i, ka[i], kb[i], q)
		}
	}
	return ra
}

const prefix = "PREFIX : <" + ns + ">\n"

func TestBasicTypeQuery(t *testing.T) {
	aware, direct := newEngines(t)
	q := prefix + `SELECT ?x WHERE { ?x a :Student . }`
	res := assertSameResults(t, q, aware, direct)
	if len(res.Rows) != 4 {
		t.Errorf("students = %d, want 4", len(res.Rows))
	}
}

func TestTriangleQueryPaperFig5(t *testing.T) {
	aware, direct := newEngines(t)
	// The paper's Figure 5a query (triangle after type-aware transform).
	q := prefix + `SELECT ?X ?Y ?Z WHERE {
		?X a :Student . ?Y a :University . ?Z a :Department .
		?X :undergraduateDegreeFrom ?Y .
		?X :memberOf ?Z .
		?Z :subOrganizationOf ?Y . }`
	res := assertSameResults(t, q, aware, direct)
	// alice: dept0/univ0 with ugDegree univ0 -> match.
	// bob: dept0 (univ0) but ugDegree univ1 -> no.
	// carol: dept1/univ1, ugDegree univ1 -> match.
	if len(res.Rows) != 2 {
		t.Fatalf("triangle rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestCountMatchesExec(t *testing.T) {
	aware, _ := newEngines(t)
	queries := []string{
		prefix + `SELECT ?x WHERE { ?x a :Student . }`,
		prefix + `SELECT ?x ?y WHERE { ?x :memberOf ?y . }`,
		prefix + `SELECT ?x WHERE { ?x :advisor :prof0 . }`,
		prefix + `SELECT ?x ?y ?z WHERE { ?x a :Student . ?x :memberOf ?y . ?y :subOrganizationOf ?z . }`,
	}
	for _, q := range queries {
		n, err := aware.Count(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		res, err := aware.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(res.Rows) {
			t.Errorf("Count=%d Exec=%d for %s", n, len(res.Rows), q)
		}
	}
}

func TestOptionalPaperExample(t *testing.T) {
	aware, direct := newEngines(t)
	// Paper Figure 12: price is required; rating+homepage optional as a
	// unit. product1 has ratings but no homepage, so the optional group
	// fails and the nullified row appears exactly once.
	q := prefix + `SELECT ?price ?rating ?homepage WHERE {
		:product1 a :Product . :product1 :price ?price .
		OPTIONAL { :product1 :rating ?rating . :product1 :homepage ?homepage . } }`
	res := assertSameResults(t, q, aware, direct)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (duplicate-excluded null row): %v", len(res.Rows), res.Rows)
	}
	row := res.Rows[0]
	if row[0] != rdf.NewIntLiteral(100) || row[1] != "" || row[2] != "" {
		t.Errorf("row = %v, want (100, null, null)", row)
	}
	// product2 has both: optional binds.
	q2 := prefix + `SELECT ?price ?rating ?homepage WHERE {
		:product2 a :Product . :product2 :price ?price .
		OPTIONAL { :product2 :rating ?rating . :product2 :homepage ?homepage . } }`
	res2 := assertSameResults(t, q2, aware, direct)
	if len(res2.Rows) != 1 || res2.Rows[0][1] == "" || res2.Rows[0][2] == "" {
		t.Errorf("product2 rows = %v, want bound rating+homepage", res2.Rows)
	}
}

func TestOptionalPartialBinding(t *testing.T) {
	aware, direct := newEngines(t)
	// Separate optionals: rating binds (twice), homepage nullifies.
	q := prefix + `SELECT ?rating ?homepage WHERE {
		:product1 :price ?price .
		OPTIONAL { :product1 :rating ?rating . }
		OPTIONAL { :product1 :homepage ?homepage . } }`
	res := assertSameResults(t, q, aware, direct)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	for _, r := range res.Rows {
		if r[0] == "" || r[1] != "" {
			t.Errorf("row = %v, want bound rating, null homepage", r)
		}
	}
}

func TestFilterPushdownAndJoinFilter(t *testing.T) {
	aware, direct := newEngines(t)
	// Cheap filter: single variable comparison (pushed into exploration).
	q := prefix + `SELECT ?p ?v WHERE { ?p :price ?v . FILTER (?v > 150) }`
	res := assertSameResults(t, q, aware, direct)
	if len(res.Rows) != 1 || res.Rows[0][0] != iri("product2") {
		t.Errorf("rows = %v, want product2 only", res.Rows)
	}
	// Expensive filter: join condition across two variables (paper Fig 13).
	q2 := prefix + `SELECT ?a ?b WHERE {
		?a :price ?pa . ?b :price ?pb . FILTER (?pa < ?pb) }`
	res2 := assertSameResults(t, q2, aware, direct)
	if len(res2.Rows) != 1 || res2.Rows[0][0] != iri("product1") || res2.Rows[0][1] != iri("product2") {
		t.Errorf("rows = %v, want (product1, product2)", res2.Rows)
	}
}

func TestFilterRegex(t *testing.T) {
	aware, direct := newEngines(t)
	q := prefix + `SELECT ?x WHERE { ?x :name ?n . FILTER regex(?n, "^A") }`
	res := assertSameResults(t, q, aware, direct)
	if len(res.Rows) != 1 || res.Rows[0][0] != iri("alice") {
		t.Errorf("rows = %v, want alice", res.Rows)
	}
}

func TestFilterBoundWithOptional(t *testing.T) {
	aware, direct := newEngines(t)
	// Products without a homepage (negation via !bound).
	q := prefix + `SELECT ?p WHERE {
		?p :price ?v .
		OPTIONAL { ?p :homepage ?h . }
		FILTER (!bound(?h)) }`
	res := assertSameResults(t, q, aware, direct)
	if len(res.Rows) != 1 || res.Rows[0][0] != iri("product1") {
		t.Errorf("rows = %v, want product1", res.Rows)
	}
}

func TestUnion(t *testing.T) {
	aware, direct := newEngines(t)
	q := prefix + `SELECT ?x WHERE {
		{ ?x :memberOf :dept0 . } UNION { ?x :memberOf :dept1 . } }`
	res := assertSameResults(t, q, aware, direct)
	if len(res.Rows) != 4 {
		t.Errorf("union rows = %d, want 4", len(res.Rows))
	}
	// UNION does not deduplicate.
	q2 := prefix + `SELECT ?x WHERE {
		{ ?x :memberOf :dept0 . } UNION { ?x :memberOf :dept0 . } }`
	res2 := assertSameResults(t, q2, aware, direct)
	if len(res2.Rows) != 6 {
		t.Errorf("duplicate union rows = %d, want 6", len(res2.Rows))
	}
	// With DISTINCT they collapse.
	q3 := prefix + `SELECT DISTINCT ?x WHERE {
		{ ?x :memberOf :dept0 . } UNION { ?x :memberOf :dept0 . } }`
	res3 := assertSameResults(t, q3, aware, direct)
	if len(res3.Rows) != 3 {
		t.Errorf("distinct union rows = %d, want 3", len(res3.Rows))
	}
}

func TestVariablePredicate(t *testing.T) {
	aware, _ := newEngines(t)
	q := prefix + `SELECT ?p WHERE { :alice ?p :prof0 . }`
	res, err := aware.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != iri("advisor") {
		t.Errorf("rows = %v, want advisor", res.Rows)
	}
}

func TestVariableTypeExpansion(t *testing.T) {
	aware, direct := newEngines(t)
	q := prefix + `SELECT ?t WHERE { :alice a ?t . }`
	res := assertSameResults(t, q, aware, direct)
	got := map[rdf.Term]bool{}
	for _, r := range res.Rows {
		got[r[0]] = true
	}
	want := []rdf.Term{iri("GraduateStudent"), iri("Student"), iri("Person")}
	if len(res.Rows) != len(want) {
		t.Fatalf("types = %v, want %v", res.Rows, want)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing type %s", w)
		}
	}
}

func TestVariableTypeJoined(t *testing.T) {
	aware, direct := newEngines(t)
	// Type variable joined with a structural pattern.
	q := prefix + `SELECT ?x ?t WHERE { ?x :advisor :prof0 . ?x a ?t . }`
	res := assertSameResults(t, q, aware, direct)
	// alice and bob each have 3 types.
	if len(res.Rows) != 6 {
		t.Errorf("rows = %d, want 6: %v", len(res.Rows), res.Rows)
	}
}

func TestDistinctLimitOffset(t *testing.T) {
	aware, _ := newEngines(t)
	q := prefix + `SELECT ?y WHERE { ?x :memberOf ?y . }`
	res, err := aware.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	qd := prefix + `SELECT DISTINCT ?y WHERE { ?x :memberOf ?y . }`
	resD, _ := aware.Query(qd)
	if len(resD.Rows) != 2 {
		t.Errorf("distinct rows = %d, want 2", len(resD.Rows))
	}
	ql := prefix + `SELECT ?y WHERE { ?x :memberOf ?y . } LIMIT 3`
	resL, _ := aware.Query(ql)
	if len(resL.Rows) != 3 {
		t.Errorf("limit rows = %d, want 3", len(resL.Rows))
	}
	qo := prefix + `SELECT ?y WHERE { ?x :memberOf ?y . } LIMIT 3 OFFSET 3`
	resO, _ := aware.Query(qo)
	if len(resO.Rows) != 1 {
		t.Errorf("offset rows = %d, want 1", len(resO.Rows))
	}
}

func TestDisconnectedBGPCrossProduct(t *testing.T) {
	aware, direct := newEngines(t)
	// Two independent patterns: 2 universities x 2 products = 4 rows.
	q := prefix + `SELECT ?u ?p WHERE { ?u a :University . ?p :price ?v . }`
	res := assertSameResults(t, q, aware, direct)
	if len(res.Rows) != 4 {
		t.Errorf("cross product rows = %d, want 4", len(res.Rows))
	}
	// Count fast path must agree (product of component counts).
	n, err := aware.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("count = %d, want 4", n)
	}
}

func TestSharedPredicateVarAcrossComponents(t *testing.T) {
	aware, _ := newEngines(t)
	// ?p must bind the same predicate in both components.
	q := prefix + `SELECT ?p WHERE { :alice ?p :dept0 . :carol ?p :dept1 . }`
	res, err := aware.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != iri("memberOf") {
		t.Errorf("rows = %v, want memberOf", res.Rows)
	}
	n, _ := aware.Count(q)
	if n != 1 {
		t.Errorf("count = %d, want 1", n)
	}
}

func TestUnknownTermsYieldEmpty(t *testing.T) {
	aware, direct := newEngines(t)
	for _, q := range []string{
		prefix + `SELECT ?x WHERE { ?x a :Nonexistent . }`,
		prefix + `SELECT ?x WHERE { ?x :noSuchPredicate ?y . }`,
		prefix + `SELECT ?x WHERE { :ghost :memberOf ?x . }`,
	} {
		res := assertSameResults(t, q, aware, direct)
		if len(res.Rows) != 0 {
			t.Errorf("rows = %d, want 0 for %s", len(res.Rows), q)
		}
		n, err := aware.Count(q)
		if err != nil || n != 0 {
			t.Errorf("count = %d (%v), want 0 for %s", n, err, q)
		}
	}
}

func TestNestedOptional(t *testing.T) {
	aware, direct := newEngines(t)
	q := prefix + `SELECT ?x ?r ?h WHERE {
		?x :price ?v .
		OPTIONAL {
			?x :rating ?r .
			OPTIONAL { ?x :homepage ?h . }
		} }`
	res := assertSameResults(t, q, aware, direct)
	// product1: ratings 5,1 (homepage null); product2: rating 3 + homepage.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3: %v", len(res.Rows), res.Rows)
	}
}

func TestProjectionMissingVar(t *testing.T) {
	aware, _ := newEngines(t)
	// Projecting a variable that never occurs yields empty column.
	q := prefix + `SELECT ?x ?ghost WHERE { ?x a :University . }`
	res, err := aware.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1] != "" {
			t.Errorf("ghost bound: %v", r)
		}
	}
}

func TestEmptyGroupPattern(t *testing.T) {
	aware, _ := newEngines(t)
	res, err := aware.Query(`SELECT ?x WHERE { }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("empty group rows = %d, want 1 (empty solution)", len(res.Rows))
	}
	n, _ := aware.Count(`SELECT ?x WHERE { }`)
	if n != 1 {
		t.Errorf("empty group count = %d, want 1", n)
	}
}

func TestIsomorphismSemanticsToggle(t *testing.T) {
	aware, _ := newEngines(t)
	// Homomorphism allows ?a and ?b to be the same advisor-sharing student.
	q := prefix + `SELECT ?a ?b WHERE { ?a :advisor ?p . ?b :advisor ?p . }`
	nHom, err := aware.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if nHom != 4 { // (alice,alice),(alice,bob),(bob,alice),(bob,bob)
		t.Errorf("hom count = %d, want 4", nHom)
	}
	aware.SetSemantics(core.Isomorphism)
	defer aware.SetSemantics(core.Homomorphism)
	nIso, err := aware.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	// Injectivity also applies to ?p, but prof0 is shared; (a,b) pairs with
	// a != b and both != prof0: (alice,bob),(bob,alice).
	if nIso != 2 {
		t.Errorf("iso count = %d, want 2", nIso)
	}
}

func TestParallelQueryAgrees(t *testing.T) {
	ts := uniTriples()
	opts := core.Optimized()
	opts.Workers = 4
	par := New(transform.Build(ts, transform.TypeAware), opts)
	seq := New(transform.Build(ts, transform.TypeAware), core.Optimized())
	q := prefix + `SELECT ?x ?y WHERE { ?x a :Person . ?x :memberOf ?y . }`
	a, err := par.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := seq.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := rowsKey(a), rowsKey(b)
	if fmt.Sprint(ka) != fmt.Sprint(kb) {
		t.Errorf("parallel rows differ:\n%v\n%v", ka, kb)
	}
}

func TestQuerySyntaxErrorSurfaces(t *testing.T) {
	aware, _ := newEngines(t)
	if _, err := aware.Query("SELECT bogus"); err == nil {
		t.Error("syntax error not surfaced")
	}
	if _, err := aware.Count("SELECT bogus"); err == nil {
		t.Error("syntax error not surfaced from Count")
	}
}

// TestWildcardPredicateIncludesType checks the simple-entailment behaviour
// of variable predicates under the type-aware transformation: a wildcard
// predicate must also bind rdf:type with the object drawn from the
// subject's direct type set (paper §4.2, Lsimple), even though the
// transformed graph has no rdf:type edges.
func TestWildcardPredicateIncludesType(t *testing.T) {
	aware, direct := newEngines(t)
	q := prefix + `SELECT ?p ?o WHERE { :alice ?p ?o . }`
	// alice: 3 type triples + memberOf + undergraduateDegreeFrom + name +
	// advisor.
	for _, e := range []*Engine{aware, direct} {
		n, err := e.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if n != 7 {
			t.Errorf("alice wildcard count = %d, want 7", n)
		}
	}
}

// TestWildcardPredicateTypeObjectConstant pins the object of a wildcard
// predicate to a class term: only the rdf:type binding can satisfy it under
// the type-aware transformation.
func TestWildcardPredicateTypeObjectConstant(t *testing.T) {
	aware, _ := newEngines(t)
	res, err := aware.Query(prefix + `SELECT ?p WHERE { :alice ?p :Student . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != rdf.TypeTerm {
		t.Fatalf("rows = %v, want one rdf:type binding", res.Rows)
	}
}

// TestWildcardPredicateSubjectScan leaves every position variable except
// the predicate's object join: all entities with any type.
func TestWildcardPredicateSubjectScan(t *testing.T) {
	aware, direct := newEngines(t)
	q := prefix + `SELECT ?s ?o WHERE { ?s ?p ?o . ?o :subOrganizationOf :univ0 . }`
	a, err := aware.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	d, err := direct.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != d {
		t.Fatalf("type-aware %d != direct %d", a, d)
	}
}

// starEngine builds a dataset of hubs with repeated-predicate fanout — the
// NEC shape — and returns engines with the reduction on and off.
func starEngine(t *testing.T, nec core.Opts) *Engine {
	t.Helper()
	var ts []rdf.Triple
	for h := 0; h < 6; h++ {
		hub := iri(fmt.Sprintf("hub%d", h))
		ts = append(ts, rdf.Triple{S: hub, P: rdf.TypeTerm, O: iri("Hub")})
		for f := 0; f <= h; f++ {
			ts = append(ts, rdf.Triple{S: hub, P: iri("knows"), O: iri(fmt.Sprintf("friend%d_%d", h, f))})
		}
	}
	return New(transform.Build(ts, transform.TypeAware), nec)
}

// TestNECSPARQLStar proves the SPARQL layer projects NEC expansions into
// identical bindings with the reduction on and off: repeated-predicate star
// patterns compile to equivalent query vertices that core merges, and the
// expanded matches must restore every projected variable.
func TestNECSPARQLStar(t *testing.T) {
	on := core.Optimized()
	off := core.Optimized()
	off.NoNEC = true
	eOn, eOff := starEngine(t, on), starEngine(t, off)

	queries := []string{
		`SELECT ?h ?a ?b WHERE { ?h a :Hub . ?h :knows ?a . ?h :knows ?b . }`,
		`SELECT ?h ?a ?b ?c WHERE { ?h :knows ?a . ?h :knows ?b . ?h :knows ?c . }`,
		`SELECT ?h ?a WHERE { ?h :knows ?a . ?h :knows ?b . FILTER(?a != ?b) }`,
		`SELECT DISTINCT ?a WHERE { :hub3 :knows ?a . :hub3 :knows ?b . }`,
	}
	for _, q := range queries {
		assertSameResults(t, prefix+q, eOn, eOff)
		nOn, err := eOn.Count(prefix + q)
		if err != nil {
			t.Fatal(err)
		}
		nOff, err := eOff.Count(prefix + q)
		if err != nil {
			t.Fatal(err)
		}
		if nOn != nOff {
			t.Fatalf("count differs for %s: NEC on %d, off %d", q, nOn, nOff)
		}
	}
}

// TestNECSPARQLStarProfiled asserts the reduction is actually active on the
// SPARQL path — the streamed matcher reports merged classes and skipped
// expansions for a star query.
func TestNECSPARQLStarProfiled(t *testing.T) {
	eng := starEngine(t, core.Optimized())
	pq, err := eng.Prepare(prefix + `SELECT ?h ?a ?b ?c WHERE { ?h :knows ?a . ?h :knows ?b . ?h :knows ?c . }`)
	if err != nil {
		t.Fatal(err)
	}
	var prof core.ProfileResult
	rows := pq.SelectProfiled(context.Background(), &prof)
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if n == 0 {
		t.Fatal("no rows")
	}
	if prof.NECClasses != 1 || prof.NECMergedVertices != 2 {
		t.Fatalf("NEC counters = %+v, want 1 class / 2 merged", prof)
	}
	if prof.NECExpansionsSkipped == 0 {
		t.Fatalf("expansions skipped = 0: %+v", prof)
	}
}

// TestDefaultWorkersParallel pins the out-of-the-box parallelism contract:
// an engine built with Workers == 0 resolves to runtime.GOMAXPROCS and its
// materialized execution equals sequential execution row for row.
func TestDefaultWorkersParallel(t *testing.T) {
	ts := uniTriples()
	auto := New(transform.Build(ts, transform.TypeAware), core.Optimized())
	if runtime.GOMAXPROCS(0) > 1 && auto.opts.Workers < 2 {
		t.Fatalf("Workers = %d, want GOMAXPROCS default", auto.opts.Workers)
	}
	// A MaxSolutions cap keeps the sequential default: parallel early
	// termination would make the surviving row subset nondeterministic.
	capped := core.Optimized()
	capped.MaxSolutions = 5
	if w := New(transform.Build(ts, transform.TypeAware), capped).opts.Workers; w != 1 {
		t.Fatalf("capped engine Workers = %d, want 1", w)
	}
	seqOpts := core.Optimized()
	seqOpts.Workers = 1
	seq := New(transform.Build(ts, transform.TypeAware), seqOpts)

	q := prefix + `SELECT ?x ?y WHERE { ?x :memberOf ?y . }`
	ra, err := auto.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := seq.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Rows) != len(rs.Rows) {
		t.Fatalf("rows: auto %d, sequential %d", len(ra.Rows), len(rs.Rows))
	}
	for i := range ra.Rows {
		for j := range ra.Rows[i] {
			if ra.Rows[i][j] != rs.Rows[i][j] {
				t.Fatalf("row %d differs: %v vs %v", i, ra.Rows[i], rs.Rows[i])
			}
		}
	}
}
