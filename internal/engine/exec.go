package engine

import (
	"context"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/transform"
)

// execGroup evaluates a flat group under the query-wide variable index,
// returning one row per solution. It is the materializing path used for
// OPTIONAL sub-groups, whose plans depend on the enclosing row's bindings;
// top-level groups stream through streamGroup instead. outer carries
// bindings from an enclosing solution; those variables were already
// substituted into the plan as constants and stay empty in the returned
// rows.
func (e *Engine) execGroup(ctx context.Context, d *transform.Data, g *flatGroup, vi *varIndex, outer sparql.Bindings) ([][]rdf.Term, error) {
	p, err := e.buildPlan(d, g, outer)
	if err != nil {
		return nil, err
	}
	if p.empty {
		return nil, nil
	}

	// Seed the row with the alternative's fixed bindings (wildcard-predicate
	// rdf:type expansion); conflicting fixes or an enclosing binding that
	// disagrees make the alternative empty.
	seed := make([]rdf.Term, len(vi.names))
	for _, fb := range g.fixed {
		if outer != nil {
			if t, ok := outer[fb.name]; ok && t != "" && t != fb.term {
				return nil, nil
			}
		}
		slot := vi.slot(fb.name)
		if slot < 0 {
			continue
		}
		if seed[slot] != "" && seed[slot] != fb.term {
			return nil, nil
		}
		seed[slot] = fb.term
	}
	rows := [][]rdf.Term{seed}

	// Join the components (cross product with conflict detection: a
	// predicate variable can span components).
	for _, c := range p.comps {
		sols, err := core.Collect(ctx, d.G, c.qg, e.sem, e.opts)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			return nil, nil
		}
		next := make([][]rdf.Term, 0, len(rows)*len(sols))
		for _, row := range rows {
			for _, sol := range sols {
				if merged, ok := e.mergeSolution(d, row, c, sol, vi); ok {
					next = append(next, merged)
				}
			}
		}
		rows = next
		if len(rows) == 0 {
			return nil, nil
		}
	}

	// Variable-type expansions (`?s rdf:type ?t` under TypeAware).
	for _, exp := range p.typeExps {
		rows, err = e.expandTypes(d, rows, exp, vi, outer)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return nil, nil
		}
	}

	// OPTIONAL groups: SPARQL left join, one group at a time.
	for _, flats := range p.optFlats {
		rows, err = e.execOptional(ctx, d, flats, vi, rows, outer)
		if err != nil {
			return nil, err
		}
	}

	// Post filters (join conditions, regex, filters over OPTIONAL vars).
	if len(p.post) > 0 {
		kept := rows[:0]
		for _, row := range rows {
			b := e.rowBindings(row, vi, outer)
			ok := true
			for _, f := range p.post {
				if !sparql.EvalFilter(f, b) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	return rows, nil
}

// mergeSolution folds one matcher solution into a row copy, rejecting
// conflicting bindings.
func (e *Engine) mergeSolution(d *transform.Data, row []rdf.Term, c *component, sol core.Match, vi *varIndex) ([]rdf.Term, bool) {
	merged := append([]rdf.Term(nil), row...)
	for i, tag := range c.vertexVar {
		if tag == "" {
			continue
		}
		slot := vi.slot(tag)
		if slot < 0 {
			continue
		}
		t := d.TermOfVertex(sol.Vertices[i])
		if merged[slot] != "" && merged[slot] != t {
			return nil, false
		}
		merged[slot] = t
	}
	for i, tag := range c.edgeVar {
		if tag == "" {
			continue
		}
		slot := vi.slot(tag)
		if slot < 0 {
			continue
		}
		t := d.TermOfEdgeLabel(sol.EdgeLabels[i])
		if merged[slot] != "" && merged[slot] != t {
			return nil, false
		}
		merged[slot] = t
	}
	return merged, true
}

// expandTypes multiplies rows by the admissible type terms of one
// `?s rdf:type ?t` expansion: the intersection of the direct types of every
// subject the variable covers.
func (e *Engine) expandTypes(d *transform.Data, rows [][]rdf.Term, exp typeExpansion, vi *varIndex, outer sparql.Bindings) ([][]rdf.Term, error) {
	slot := vi.slot(exp.typeVar)
	var out [][]rdf.Term
	for _, row := range rows {
		types, ok := allowedTypes(d, exp, row, vi, outer)
		if !ok {
			continue
		}
		for _, l := range types {
			t := d.TermOfLabel(l)
			if slot >= 0 {
				if row[slot] != "" && row[slot] != t {
					continue
				}
				r2 := append([]rdf.Term(nil), row...)
				r2[slot] = t
				out = append(out, r2)
			} else {
				out = append(out, row)
			}
		}
	}
	return out, nil
}

func allowedTypes(d *transform.Data, exp typeExpansion, row []rdf.Term, vi *varIndex, outer sparql.Bindings) ([]uint32, bool) {
	var sets [][]uint32
	addVertexTypes := func(v uint32) {
		sets = append(sets, d.SimpleTypes(v))
	}
	for _, v := range exp.subjConst {
		addVertexTypes(v)
	}
	for _, name := range exp.subjVars {
		var term rdf.Term
		if slot := vi.slot(name); slot >= 0 && row[slot] != "" {
			term = row[slot]
		} else if outer != nil {
			term = outer[name]
		}
		if term == "" {
			return nil, false // subject not bound: no types derivable
		}
		v, ok := d.VertexOf(term)
		if !ok {
			return nil, false
		}
		addVertexTypes(v)
	}
	if len(sets) == 0 {
		return nil, false
	}
	// Intersect (sets are sorted).
	cur := sets[0]
	for _, s := range sets[1:] {
		var next []uint32
		i, j := 0, 0
		for i < len(cur) && j < len(s) {
			switch {
			case cur[i] == s[j]:
				next = append(next, cur[i])
				i++
				j++
			case cur[i] < s[j]:
				i++
			default:
				j++
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	if exp.typeVar != "" && outer != nil {
		if t, ok := outer[exp.typeVar]; ok && t != "" {
			l, ok := d.LabelOf(t)
			if !ok {
				return nil, false
			}
			var filtered []uint32
			for _, x := range cur {
				if x == l {
					filtered = append(filtered, x)
				}
			}
			cur = filtered
		}
	}
	return cur, len(cur) > 0
}

// execOptional left-joins rows with an OPTIONAL group (pre-expanded into
// its flat alternatives): rows that match extend; rows that do not keep
// their bindings with the group's variables null — emitted exactly once
// (the paper's qualify-and-exclude-duplicate outcome via standard left-join
// semantics).
func (e *Engine) execOptional(ctx context.Context, d *transform.Data, flats []*flatGroup, vi *varIndex, rows [][]rdf.Term, outer sparql.Bindings) ([][]rdf.Term, error) {
	var out [][]rdf.Term
	for _, row := range rows {
		inner := e.rowBindings(row, vi, outer)
		var subRows [][]rdf.Term
		for _, flat := range flats {
			rs, err := e.execGroup(ctx, d, flat, vi, inner)
			if err != nil {
				return nil, err
			}
			subRows = append(subRows, rs...)
		}
		if len(subRows) == 0 {
			out = append(out, row)
			continue
		}
		for _, sub := range subRows {
			merged := append([]rdf.Term(nil), row...)
			ok := true
			for i, t := range sub {
				if t == "" {
					continue
				}
				if merged[i] != "" && merged[i] != t {
					ok = false
					break
				}
				merged[i] = t
			}
			if ok {
				out = append(out, merged)
			}
		}
	}
	return out, nil
}

// rowBindings builds the variable bindings visible to filters and nested
// groups: the row's values, falling back to enclosing bindings.
func (e *Engine) rowBindings(row []rdf.Term, vi *varIndex, outer sparql.Bindings) sparql.Bindings {
	b := make(sparql.Bindings, len(vi.names)+len(outer))
	for k, v := range outer {
		b[k] = v
	}
	for i, name := range vi.names {
		if row[i] != "" {
			b[name] = row[i]
		}
	}
	return b
}
