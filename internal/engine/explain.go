package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
)

// ComponentExplain reports how the matcher executes one connected component
// of a basic graph pattern: the matching order (as SPARQL variable names,
// or constant terms), the cost model's per-position cardinality estimates,
// and the matcher's effort counters, signature kill rates included.
type ComponentExplain struct {
	// Order lists the matching order; Order[0] is the start vertex.
	Order []string
	// Core carries the matcher-level explanation: original-index order,
	// per-position cardinality estimates, and the profile counters.
	Core core.ExplainResult
}

// GroupExplain is one UNION alternative's explanation. Solutions are
// per-component BGP counts — OPTIONAL, post-match FILTERs, DISTINCT and
// LIMIT apply downstream of what is profiled here.
type GroupExplain struct {
	Components []ComponentExplain
	// Empty marks an alternative statically proven empty (a term, label,
	// or predicate unknown to the dictionary).
	Empty bool
}

// Explain is a prepared query's execution explanation.
type Explain struct {
	Groups []GroupExplain
}

// Explain executes the prepared query sequentially, component by component,
// and reports each component's matching order, cost estimates, and effort
// counters. It pays for a full (uncapped) execution of every component.
func (pq *PreparedQuery) Explain(ctx context.Context) (*Explain, error) {
	d := pq.e.Data()
	pe, err := pq.acquirePlans(d)
	if err != nil {
		return nil, err
	}
	defer pq.releasePlans(pe)
	ex := &Explain{}
	for _, p := range pe.plans {
		ge := GroupExplain{Empty: p.empty}
		if !p.empty {
			for _, c := range p.comps {
				cer, err := core.Explain(ctx, p.data.G, c.qg, pq.e.sem, pq.e.opts)
				if err != nil {
					return nil, err
				}
				ce := ComponentExplain{Core: cer}
				for _, u := range cer.Order {
					ce.Order = append(ce.Order, c.vertexName(p, u))
				}
				ge.Components = append(ge.Components, ce)
			}
		}
		ex.Groups = append(ex.Groups, ge)
	}
	return ex, nil
}

// vertexName renders query vertex u for display: its variable name, the
// constant term it is pinned to, or a positional placeholder.
func (c *component) vertexName(p *plan, u int) string {
	if u < len(c.vertexVar) && c.vertexVar[u] != "" {
		return "?" + c.vertexVar[u]
	}
	if qv := c.qg.Vertices[u]; qv.ID != core.NoID {
		return string(p.data.TermOfVertex(qv.ID))
	}
	return fmt.Sprintf("_:v%d", u)
}

// String renders the explanation for human consumption: one block per
// component with the matching order, the estimated rows at each position,
// and the filter counters.
func (ex *Explain) String() string {
	var b strings.Builder
	for gi, g := range ex.Groups {
		if len(ex.Groups) > 1 {
			fmt.Fprintf(&b, "union alternative %d:\n", gi+1)
		}
		if g.Empty {
			b.WriteString("  (statically empty: unknown term)\n")
			continue
		}
		for ci, c := range g.Components {
			cr := &c.Core
			model := "population heuristic"
			if cr.CostOrdered {
				model = "statistics cost model"
			}
			fmt.Fprintf(&b, "component %d (%s, %d start candidates):\n", ci+1, model, cr.StartCandidates)
			for i, name := range c.Order {
				fmt.Fprintf(&b, "  %2d. %-24s", i+1, name)
				if i < len(cr.EstRows) {
					fmt.Fprintf(&b, " est rows %.1f", cr.EstRows[i])
				}
				b.WriteByte('\n')
			}
			pr := &cr.Profile
			fmt.Fprintf(&b, "  search nodes %d, regions %d, solutions %d\n",
				pr.SearchNodes, pr.Regions, cr.Solutions)
			fmt.Fprintf(&b, "  signature checked %d, killed %d", pr.SignatureChecked, pr.SignatureKilled)
			if pr.SignatureChecked > 0 {
				fmt.Fprintf(&b, " (%.1f%%)", 100*float64(pr.SignatureKilled)/float64(pr.SignatureChecked))
			}
			b.WriteByte('\n')
			if pr.NECClasses > 0 {
				fmt.Fprintf(&b, "  NEC classes %d, merged vertices %d, expansions skipped %d\n",
					pr.NECClasses, pr.NECMergedVertices, pr.NECExpansionsSkipped)
			}
		}
	}
	return b.String()
}
