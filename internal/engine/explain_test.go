package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/transform"
)

func TestExplain(t *testing.T) {
	data := transform.Build(uniTriples(), transform.TypeAware)
	for _, costOrder := range []bool{false, true} {
		opts := core.Optimized()
		opts.CostOrder = costOrder
		e := New(data, opts)
		pq, err := e.Prepare(`SELECT ?x ?d WHERE {
			?x <http://example.org/memberOf> ?d .
			?d <http://example.org/subOrganizationOf> ?u .
		}`)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := pq.Explain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.Groups) != 1 || len(ex.Groups[0].Components) != 1 {
			t.Fatalf("explain shape: %+v", ex)
		}
		ce := ex.Groups[0].Components[0]
		if len(ce.Order) != 3 {
			t.Fatalf("order %v, want 3 vertices", ce.Order)
		}
		seen := map[string]bool{}
		for _, name := range ce.Order {
			seen[name] = true
		}
		for _, want := range []string{"?x", "?d", "?u"} {
			if !seen[want] {
				t.Errorf("order %v missing %s", ce.Order, want)
			}
		}
		if ce.Core.CostOrdered != costOrder {
			t.Errorf("CostOrdered = %v, want %v", ce.Core.CostOrdered, costOrder)
		}
		if len(ce.Core.EstRows) != len(ce.Order) {
			t.Errorf("%d cost estimates for %d positions", len(ce.Core.EstRows), len(ce.Order))
		}
		if ce.Core.Profile.SearchNodes == 0 || ce.Core.Solutions == 0 {
			t.Errorf("profile not populated: %+v", ce.Core.Profile)
		}
		// The execution the explanation profiles must agree with Count.
		n, err := pq.Count(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n != ce.Core.Solutions {
			t.Errorf("explain found %d solutions, Count %d", ce.Core.Solutions, n)
		}
		s := ex.String()
		for _, frag := range []string{"component 1", "signature checked", "search nodes"} {
			if !strings.Contains(s, frag) {
				t.Errorf("String() missing %q:\n%s", frag, s)
			}
		}
	}

	// A constant subject renders as its term; an unknown term marks the
	// group statically empty.
	e := New(data, core.Optimized())
	pq, err := e.Prepare(`SELECT ?d WHERE { <http://example.org/alice> <http://example.org/memberOf> ?d . }`)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := pq.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s := ex.String(); !strings.Contains(s, "<http://example.org/alice>") {
		t.Errorf("constant vertex not rendered as its term:\n%s", s)
	}
	pq, err = e.Prepare(`SELECT ?d WHERE { <http://example.org/nobody> <http://example.org/memberOf> ?d . }`)
	if err != nil {
		t.Fatal(err)
	}
	ex, err = pq.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Groups) != 1 || !ex.Groups[0].Empty {
		t.Fatalf("unknown-term group not marked empty: %+v", ex)
	}
}
