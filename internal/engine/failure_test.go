package engine

// Failure-injection and edge-case tests: empty stores, unconstrained
// queries, unknown prefixes, blank nodes, patterns the type-aware
// representation cannot answer, and zero-solution paths.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/transform"
)

func TestEmptyStore(t *testing.T) {
	e := New(transform.Build(nil, transform.TypeAware), core.Optimized())
	n, err := e.Count(`SELECT ?s WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("count on empty store = %d", n)
	}
}

func TestUnknownPrefixErrors(t *testing.T) {
	aware, _ := newEngines(t)
	if _, err := aware.Query(`SELECT ?x WHERE { ?x nosuch:pred ?y . }`); err == nil {
		t.Fatal("undeclared prefix accepted")
	}
}

func TestQueryWithNoConstants(t *testing.T) {
	// Full scan: every (s, p, o) combination. The direct transformation
	// sees every triple; the type-aware one sees everything except
	// rdfs:subClassOf triples, which fold into the label hierarchy (the
	// documented representation loss — rdf:type triples ARE recovered,
	// through the Lsimple wildcard expansion).
	aware, direct := newEngines(t)
	a, err := aware.Count(`SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := direct.Count(`SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	subClass := 0
	for _, tr := range uniTriples() {
		if tr.P == rdf.SubClassTerm {
			subClass++
		}
	}
	if d != len(uniTriples()) {
		t.Fatalf("direct full scan = %d, want %d", d, len(uniTriples()))
	}
	if a != d-subClass {
		t.Fatalf("type-aware full scan = %d, want %d (all but %d subClassOf)", a, d-subClass, subClass)
	}
}

func TestSelfLoopPattern(t *testing.T) {
	ts := []rdf.Triple{
		{S: iri("n"), P: iri("loop"), O: iri("n")},
		{S: iri("n"), P: iri("loop"), O: iri("m")},
	}
	e := New(transform.Build(ts, transform.TypeAware), core.Optimized())
	n, err := e.Count(`PREFIX : <http://example.org/> SELECT ?x WHERE { ?x :loop ?x . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("self-loop count = %d, want 1", n)
	}
}

// TestSubClassOfUnqueryableUnderTypeAware documents the type-aware
// transformation's representation loss: rdfs:subClassOf triples fold into
// the label hierarchy and cannot be matched as edges (they can under the
// direct transformation).
func TestSubClassOfUnqueryableUnderTypeAware(t *testing.T) {
	aware, direct := newEngines(t)
	q := `PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		PREFIX : <http://example.org/>
		SELECT ?c WHERE { ?c rdfs:subClassOf :Person . }`
	n, err := aware.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("type-aware subClassOf count = %d, want 0 (folded away)", n)
	}
	n, err = direct.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // Student and Professor
		t.Fatalf("direct subClassOf count = %d, want 2", n)
	}
}

func TestBlankNodesAsVertices(t *testing.T) {
	ts := []rdf.Triple{
		{S: rdf.NewBlank("b0"), P: iri("p"), O: iri("x")},
		{S: iri("y"), P: iri("p"), O: rdf.NewBlank("b0")},
	}
	e := New(transform.Build(ts, transform.TypeAware), core.Optimized())
	n, err := e.Count(`PREFIX : <http://example.org/> SELECT ?a ?c WHERE { ?a :p ?b . ?b :p ?c . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // y -> _:b0 -> x
		t.Fatalf("blank-node join = %d, want 1", n)
	}
}

func TestFilterOnUnboundVariableEliminatesRows(t *testing.T) {
	aware, _ := newEngines(t)
	// ?z is never bound: comparison errors are null, null FILTERs drop rows.
	n, err := aware.Count(prefix + `SELECT ?x WHERE { ?x a :Product . FILTER(?z > 1) }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
}

func TestMaxSolutionsThroughLimit(t *testing.T) {
	aware, _ := newEngines(t)
	res, err := aware.Query(prefix + `SELECT ?x WHERE { ?x a :Person . } LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limit ignored: %d rows", len(res.Rows))
	}
}

func TestZeroSolutionTriangle(t *testing.T) {
	// A triangle pattern with no instance in the data: exploration must
	// terminate cleanly everywhere.
	aware, direct := newEngines(t)
	q := prefix + `SELECT ?a WHERE { ?a :advisor ?b . ?b :advisor ?c . ?c :advisor ?a . }`
	for _, e := range []*Engine{aware, direct} {
		n, err := e.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("count = %d, want 0", n)
		}
	}
}

func TestDataAccessorAndResultString(t *testing.T) {
	aware, _ := newEngines(t)
	if aware.Data() == nil {
		t.Fatal("Data() returned nil")
	}
	res, err := aware.Query(prefix + `SELECT ?x WHERE { ?x a :Product . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty result String()")
	}
}

// TestTypeVariableWithPinnedType exercises allowedTypes' outer-binding
// filter: a type variable constrained by an enclosing OPTIONAL binding.
func TestTypeVariableWithPinnedType(t *testing.T) {
	aware, _ := newEngines(t)
	// ?t is bound by the required part; the OPTIONAL re-states the type
	// pattern, forcing the type expansion to respect the existing binding.
	res, err := aware.Query(prefix + `SELECT ?t ?n WHERE {
		:alice a ?t .
		OPTIONAL { :bob a ?t . :bob :name ?n . }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// alice's types: GraduateStudent, Student, Person. bob shares
	// GraduateStudent/Student/Person, so ?n binds everywhere bob has the
	// same type.
	for _, row := range res.Rows {
		if row[0] == "" {
			t.Fatalf("unbound type in %v", res.Rows)
		}
	}
}

// TestTypeVariableIntersection: one type variable over two subjects yields
// only the shared types.
func TestTypeVariableIntersection(t *testing.T) {
	aware, _ := newEngines(t)
	res, err := aware.Query(prefix + `SELECT ?t WHERE { :alice a ?t . :prof0 a ?t . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != iri("Person") {
		t.Fatalf("shared types = %v, want [Person]", res.Rows)
	}
}

// TestTypeVariableUnknownSubject: a pinned subject absent from the data.
func TestTypeVariableUnknownSubject(t *testing.T) {
	aware, _ := newEngines(t)
	n, err := aware.Count(prefix + `SELECT ?t WHERE { :nobody a ?t . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
}
