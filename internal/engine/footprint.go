package engine

import "repro/internal/cache"

// plansFootprint derives the read footprint of a prepared query's compiled
// plans: an over-approximation of the label and predicate IDs the query can
// read from the snapshot. A committed batch whose delta footprint is
// disjoint cannot change the query's result set, which is what lets the
// result cache carry entries across such batches. IDs are epoch-stable —
// the dictionaries are append-only — so a footprint computed against one
// snapshot remains meaningful against every later one.
func (e *Engine) plansFootprint(plans []*plan) *cache.Footprint {
	fp := cache.NewFootprint()
	for _, p := range plans {
		e.addPlanFootprint(p, fp)
		if fp.Universal() {
			break
		}
	}
	return fp
}

func (e *Engine) addPlanFootprint(p *plan, fp *cache.Footprint) {
	if p.empty {
		// Empty-by-unknown-term: a later batch could intern the missing term
		// and make the plan non-empty, but the missing ID cannot be named
		// yet. Widen fully so such an entry never outlives an update.
		fp.WidenAll()
		return
	}
	for _, c := range p.comps {
		c.qg.AddFootprint(fp)
	}
	if len(p.typeExps) > 0 {
		// Type-variable expansions enumerate direct rdf:type sets, which the
		// delta footprint reports on the label dimension.
		fp.WidenLabels()
	}
	for _, flats := range p.optFlats {
		for _, g := range flats {
			// Compile the OPTIONAL without outer bindings: unpinned variables
			// match a superset of what any outer row pins them to, so the
			// footprint only widens.
			op, err := e.buildPlan(p.data, g, nil)
			if err != nil {
				fp.WidenAll()
				return
			}
			e.addPlanFootprint(op, fp)
			if fp.Universal() {
				return
			}
		}
	}
}
