package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/transform"
)

// FuzzCacheKey fuzzes the result cache's key derivation: the canonical query
// text and the engine options fingerprint (run in CI as a smoke step). The
// invariants:
//
//   - Canonical is a fixpoint of parsing: the canonical text reparses, and
//     canonicalizes to itself.
//   - Keying is sound: the original text and its canonical text prepare to
//     the same CacheKey and produce byte-identical result streams — so a hit
//     under the key can be served for either spelling.
//   - Keying separates engines whose options change result sets: the same
//     query prepared under a different matching configuration gets a
//     different key.
func FuzzCacheKey(f *testing.F) {
	for _, qs := range [][]datagen.Query{
		datagen.LUBMQueries(),
		datagen.BSBMQueries(),
		datagen.YAGOQueries(),
		datagen.BTCQueries(),
	} {
		for _, q := range qs {
			f.Add(q.Text)
		}
	}
	for _, s := range []string{
		`SELECT DISTINCT ?x ?p WHERE { ?x ?p ?y . OPTIONAL { ?y <http://u/q> ?z . } { ?x a <http://u/C0> . } UNION { ?x <http://u/p> 3.5 . } } ORDER BY DESC(?x) LIMIT 4 OFFSET 1`,
		`ASK { ?x <http://u/p> "v\n"@en . FILTER(regex(str(?x), "a|b", "i") && bound(?x) || !(-?y < 2)) }`,
		`PREFIX u: <http://u/> SELECT ?x, ?y WHERE { ?x u:p ?y ; a u:C0 . ?x u:q ?y , u:e0 . }`,
	} {
		f.Add(s)
	}

	triples := planCacheTriples()
	triples = append(triples,
		rdf.Triple{S: rdf.NewIRI("http://u/a"), P: rdf.TypeTerm, O: rdf.NewIRI("http://u/C0")},
		rdf.Triple{S: rdf.NewIRI("http://u/C0"), P: rdf.SubClassTerm, O: rdf.NewIRI("http://u/C1")},
	)
	eng := New(transform.Build(triples, transform.TypeAware), core.Optimized())
	// Same data, different matching configuration: keys must not collide
	// across engines that can answer the same text differently.
	iso := New(transform.Build(triples, transform.TypeAware), core.Opts{Workers: 2})
	iso.SetSemantics(core.Isomorphism)

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // oversized inputs only slow the mutator down
		}
		q, err := sparql.Parse(src)
		if err != nil {
			return
		}
		c1 := sparql.Canonical(q)
		q2, err := sparql.Parse(c1)
		if err != nil {
			t.Fatalf("canonical %q of %q does not reparse: %v", c1, src, err)
		}
		if c2 := sparql.Canonical(q2); c2 != c1 {
			t.Fatalf("canonical not a fixpoint for %q:\n c1 %q\n c2 %q", src, c1, c2)
		}

		pq1, err1 := eng.PrepareParsed(q)
		pq2, err2 := eng.PrepareParsed(q2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("prepare diverged for %q: original %v, canonical %v", src, err1, err2)
		}
		if err1 != nil {
			return
		}
		if pq1.CacheKey() != pq2.CacheKey() {
			t.Fatalf("cache keys differ across spellings of %q:\n %q\n %q", src, pq1.CacheKey(), pq2.CacheKey())
		}
		if pqIso, err := iso.PrepareParsed(q); err == nil && pqIso.CacheKey() == pq1.CacheKey() {
			t.Fatalf("cache key %q collides across engine configurations", pq1.CacheKey())
		}

		r1, err1 := pq1.Exec(t.Context())
		r2, err2 := pq2.Exec(t.Context())
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("exec diverged for %q: original %v, canonical %v", src, err1, err2)
		}
		if err1 != nil {
			return
		}
		if k1, k2 := orderedKey(r1), orderedKey(r2); k1 != k2 {
			t.Fatalf("results diverged between %q and its canonical %q:\n %q\n %q", src, c1, k1, k2)
		}
	})
}

// orderedKey flattens a result set preserving row order (unlike resultKey,
// which builds a multiset key): the two spellings share plans, so their
// streams must agree byte for byte.
func orderedKey(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for _, t := range row {
			b.WriteString(string(t))
			b.WriteByte('\x1f')
		}
		b.WriteByte('\x1e')
	}
	return b.String()
}
