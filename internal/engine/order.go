package engine

import (
	"sort"

	"repro/internal/rdf"
)

// This file holds the two streaming ORDER BY consumers that replaced the
// buffer-everything-then-sort special case, both fed row by row from the
// matcher's resumable pipeline:
//
//   - topK keeps the k smallest rows (k = LIMIT + OFFSET) in a bounded
//     max-heap, so `ORDER BY … LIMIT k` allocates O(k) result memory no
//     matter how many solutions stream past;
//   - runSorter builds bounded sorted runs as rows arrive and k-way merges
//     them at the end, for unbounded ORDER BY (and ORDER BY + DISTINCT,
//     whose deduplication happens downstream in sorted order).
//
// Both reproduce sparql.SortSolutions exactly, including its stability:
// rows are tagged with their arrival sequence and ties broken by it, which
// is precisely what a stable sort of the fully-buffered stream would do.
// The differential tests in order_stream_test.go and the datagen workload
// suite pin that equivalence.

// seqRow is a row tagged with its arrival position for stable ordering.
type seqRow struct {
	row []rdf.Term
	seq int
}

// rowCmp orders seqRows by the ORDER BY comparator, ties by arrival.
type rowCmp func(a, b []rdf.Term) int

func (c rowCmp) lessSeq(a, b seqRow) bool {
	if d := c(a.row, b.row); d != 0 {
		return d < 0
	}
	return a.seq < b.seq
}

// topK retains the k smallest rows of a stream under cmp, ties broken by
// arrival order — the streaming equivalent of a stable sort followed by
// rows[:k]. It is a max-heap: the root is the worst retained row, evicted
// whenever a better one arrives.
type topK struct {
	cmp  rowCmp
	k    int
	n    int // arrival counter
	heap []seqRow
}

func newTopK(k int, cmp rowCmp) *topK { return &topK{cmp: cmp, k: k} }

// push offers one row. Rows are retained by reference; the engine's
// streaming paths hand over freshly built rows, so no copy is needed.
func (t *topK) push(row []rdf.Term) {
	sr := seqRow{row: row, seq: t.n}
	t.n++
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, sr)
		t.siftUp(len(t.heap) - 1)
		return
	}
	// Full: replace the root (the worst row kept) if the newcomer is
	// better. An equal-key newcomer has a larger seq, so it is NOT better —
	// exactly the stable-sort outcome of keeping earliest arrivals.
	if t.cmp.lessSeq(sr, t.heap[0]) {
		t.heap[0] = sr
		t.siftDown(0)
	}
}

// sorted returns the retained rows in ascending order. The heap is consumed.
func (t *topK) sorted() [][]rdf.Term {
	sort.Slice(t.heap, func(i, j int) bool { return t.cmp.lessSeq(t.heap[i], t.heap[j]) })
	out := make([][]rdf.Term, len(t.heap))
	for i, sr := range t.heap {
		out[i] = sr.row
	}
	return out
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.cmp.lessSeq(t.heap[p], t.heap[i]) { // parent not strictly better: done
			break
		}
		t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
		i = p
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && t.cmp.lessSeq(t.heap[worst], t.heap[l]) {
			worst = l
		}
		if r < n && t.cmp.lessSeq(t.heap[worst], t.heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// sortRunSize bounds one sorted run of the unbounded ORDER BY path: runs are
// sorted incrementally as the stream arrives (bounding each sort's working
// set) and merged lazily at the end, emitting from the first row of the
// merge instead of after one monolithic sort.
const sortRunSize = 4096

// runSorter accumulates the stream into per-arrival-order runs, sorts each
// run as it fills, and merges the sorted runs on emit. Ties across runs
// resolve to the earlier run — runs partition the stream in arrival order,
// so the merged sequence equals a stable sort of the whole stream.
type runSorter struct {
	cmp  rowCmp
	cur  [][]rdf.Term
	runs [][][]rdf.Term
}

func newRunSorter(cmp rowCmp) *runSorter { return &runSorter{cmp: cmp} }

func (rs *runSorter) push(row []rdf.Term) {
	rs.cur = append(rs.cur, row)
	if len(rs.cur) >= sortRunSize {
		rs.seal()
	}
}

// seal sorts the in-progress run (stably: within a run, arrival order is
// slice order) and appends it to the merge set.
func (rs *runSorter) seal() {
	if len(rs.cur) == 0 {
		return
	}
	cur := rs.cur
	sort.SliceStable(cur, func(i, j int) bool { return rs.cmp(cur[i], cur[j]) < 0 })
	rs.runs = append(rs.runs, cur)
	rs.cur = nil
}

// mergeEmit drains the sorted runs through emit in global order, stopping
// early when emit returns false.
func (rs *runSorter) mergeEmit(emit func(row []rdf.Term) bool) {
	rs.seal()
	switch len(rs.runs) {
	case 0:
		return
	case 1:
		for _, row := range rs.runs[0] {
			if !emit(row) {
				return
			}
		}
		return
	}
	// K-way merge over run heads: a min-heap of (row, run index), ties by
	// run index (earlier run = earlier arrival).
	type head struct {
		run int
		pos int
	}
	less := func(a, b head) bool {
		if d := rs.cmp(rs.runs[a.run][a.pos], rs.runs[b.run][b.pos]); d != 0 {
			return d < 0
		}
		return a.run < b.run
	}
	heap := make([]head, 0, len(rs.runs))
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			best := i
			if l < len(heap) && less(heap[l], heap[best]) {
				best = l
			}
			if r < len(heap) && less(heap[r], heap[best]) {
				best = r
			}
			if best == i {
				return
			}
			heap[i], heap[best] = heap[best], heap[i]
			i = best
		}
	}
	for run := range rs.runs {
		heap = append(heap, head{run: run})
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	for len(heap) > 0 {
		h := heap[0]
		if !emit(rs.runs[h.run][h.pos]) {
			return
		}
		if h.pos+1 < len(rs.runs[h.run]) {
			heap[0].pos = h.pos + 1
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
}
