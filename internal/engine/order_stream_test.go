package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// refSort is the reference the streaming order paths must reproduce: a
// stable sort of the fully-buffered stream by column 0.
func refSort(rows [][]rdf.Term) [][]rdf.Term {
	out := append([][]rdf.Term(nil), rows...)
	sparql.SortSolutions(out, []sparql.OrderKey{{Var: "k"}}, func(string) int { return 0 })
	return out
}

// randomRows builds rows with deliberately clustered keys so ties exercise
// the stability contract, over mixed term kinds so the comparator's
// type-rank contract is in play.
func randomRows(r *rand.Rand, n int) [][]rdf.Term {
	rows := make([][]rdf.Term, n)
	for i := range rows {
		var key rdf.Term
		switch r.Intn(4) {
		case 0:
			key = rdf.NewIntLiteral(int64(r.Intn(12)))
		case 1:
			key = rdf.NewLiteral(fmt.Sprintf("%d", r.Intn(12))) // numeric-looking string
		case 2:
			key = rdf.NewIRI(fmt.Sprintf("http://x/%d", r.Intn(6)))
		default:
			key = rdf.NewLiteral(string(rune('a' + r.Intn(6))))
		}
		// Second column tags arrival order so stability violations are
		// visible even between fully identical keys.
		rows[i] = []rdf.Term{key, rdf.NewIntLiteral(int64(i))}
	}
	return rows
}

func keyCmp() rowCmp {
	return rowCmp(sparql.RowComparator([]sparql.OrderKey{{Var: "k"}}, func(v string) int {
		if v == "k" {
			return 0
		}
		return -1
	}))
}

// TestTopKMatchesStableSort: for every k, pushing a stream into topK and
// reading it back equals stable-sort-then-truncate.
func TestTopKMatchesStableSort(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cmp := keyCmp()
	for trial := 0; trial < 25; trial++ {
		rows := randomRows(r, 1+r.Intn(200))
		want := refSort(rows)
		for _, k := range []int{0, 1, 2, 7, len(rows) / 2, len(rows), len(rows) + 3} {
			h := newTopK(k, cmp)
			for _, row := range rows {
				h.push(row)
			}
			got := h.sorted()
			wantK := want
			if k < len(wantK) {
				wantK = wantK[:k]
			}
			if len(got) != len(wantK) {
				t.Fatalf("trial %d k=%d: %d rows, want %d", trial, k, len(got), len(wantK))
			}
			for i := range got {
				if got[i][0] != wantK[i][0] || got[i][1] != wantK[i][1] {
					t.Fatalf("trial %d k=%d row %d: %v, want %v (stability?)", trial, k, i, got[i], wantK[i])
				}
			}
		}
	}
}

// TestRunSorterMatchesStableSort drives the run-merge path across run
// boundaries (several runs plus a partial tail) and checks the merged
// stream equals a stable sort, including early emit stop.
func TestRunSorterMatchesStableSort(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	cmp := keyCmp()
	for _, n := range []int{0, 1, 50, sortRunSize, sortRunSize + 1, 3*sortRunSize + 77} {
		rows := randomRows(r, n)
		want := refSort(rows)
		rs := newRunSorter(cmp)
		for _, row := range rows {
			rs.push(row)
		}
		var got [][]rdf.Term
		rs.mergeEmit(func(row []rdf.Term) bool {
			got = append(got, row)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("n=%d: merged %d rows, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
				t.Fatalf("n=%d row %d: %v, want %v", n, i, got[i], want[i])
			}
		}
		if n > 10 {
			// Early stop: the merge must respect a false return mid-stream.
			count := 0
			rs2 := newRunSorter(cmp)
			for _, row := range rows {
				rs2.push(row)
			}
			rs2.mergeEmit(func([]rdf.Term) bool { count++; return count < 5 })
			if count != 5 {
				t.Fatalf("n=%d: early stop emitted %d rows, want 5", n, count)
			}
		}
	}
}

// TestOrderByLimitDifferential: every ORDER BY + LIMIT/OFFSET combination
// through the engine equals the unlimited ordered result truncated — the
// top-k heap path vs the run-merge path vs plain slicing.
func TestOrderByLimitDifferential(t *testing.T) {
	aware, _ := newEngines(t)
	base := prefix + `SELECT ?x ?p WHERE { ?x :price ?p . } ORDER BY DESC(?p) ?x`
	full, err := aware.Query(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) < 2 {
		t.Fatalf("fixture too small: %d rows", len(full.Rows))
	}
	for _, limit := range []int{0, 1, 2, len(full.Rows), len(full.Rows) + 5} {
		for _, offset := range []int{0, 1, 3} {
			q := fmt.Sprintf("%s LIMIT %d OFFSET %d", base, limit, offset)
			res, err := aware.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			want := full.Rows
			if offset < len(want) {
				want = want[offset:]
			} else {
				want = nil
			}
			if limit < len(want) {
				want = want[:limit]
			}
			if len(res.Rows) != len(want) {
				t.Fatalf("limit=%d offset=%d: %d rows, want %d", limit, offset, len(res.Rows), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if res.Rows[i][j] != want[i][j] {
						t.Fatalf("limit=%d offset=%d row %d: %v, want %v", limit, offset, i, res.Rows[i], want[i])
					}
				}
			}
		}
	}
}

// TestOrderByDistinctLimit exercises the run-merge path (DISTINCT disables
// the top-k bound) with a LIMIT applied after deduplication.
func TestOrderByDistinctLimit(t *testing.T) {
	aware, _ := newEngines(t)
	full, err := aware.Query(prefix + `SELECT DISTINCT ?t WHERE { ?x a ?t . } ORDER BY ?t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) < 2 {
		t.Fatalf("fixture too small: %d distinct types", len(full.Rows))
	}
	lim, err := aware.Query(prefix + `SELECT DISTINCT ?t WHERE { ?x a ?t . } ORDER BY ?t LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(lim.Rows))
	}
	for i := range lim.Rows {
		if lim.Rows[i][0] != full.Rows[i][0] {
			t.Fatalf("row %d: %v, want %v", i, lim.Rows[i], full.Rows[i])
		}
	}
}

// TestOrderByUnresolvableKeyStreams: keys that bind no column leave the
// stream order untouched (and take the non-buffering path).
func TestOrderByUnresolvableKeyStreams(t *testing.T) {
	aware, _ := newEngines(t)
	plain, err := aware.Query(prefix + `SELECT ?x WHERE { ?x a :Product . }`)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := aware.Query(prefix + `SELECT ?x WHERE { ?x a :Product . } ORDER BY ?nosuch`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Rows) != len(ordered.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(plain.Rows), len(ordered.Rows))
	}
	for i := range plain.Rows {
		if plain.Rows[i][0] != ordered.Rows[i][0] {
			t.Fatalf("row %d reordered by unresolvable key", i)
		}
	}
}
