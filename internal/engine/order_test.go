package engine

import (
	"testing"

	"repro/internal/baseline/bitmat"
	"repro/internal/baseline/rdf3x"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestOrderByParsing(t *testing.T) {
	q, err := sparql.Parse(`SELECT ?x WHERE { ?x <http://p> ?y . } ORDER BY DESC(?y) ?x LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 2 {
		t.Fatalf("OrderBy = %v, want 2 keys", q.OrderBy)
	}
	if !q.OrderBy[0].Desc || q.OrderBy[0].Var != "y" {
		t.Fatalf("first key = %+v, want DESC(?y)", q.OrderBy[0])
	}
	if q.OrderBy[1].Desc || q.OrderBy[1].Var != "x" {
		t.Fatalf("second key = %+v, want ASC ?x", q.OrderBy[1])
	}
	if q.Limit != 2 {
		t.Fatalf("Limit = %d", q.Limit)
	}
}

func TestOrderByNumericAscDesc(t *testing.T) {
	aware, _ := newEngines(t)
	res, err := aware.Query(prefix + `SELECT ?x ?r WHERE { ?x :rating ?r . } ORDER BY ?r`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	want := []rdf.Term{rdf.NewIntLiteral(1), rdf.NewIntLiteral(3), rdf.NewIntLiteral(5)}
	for i, r := range res.Rows {
		if r[1] != want[i] {
			t.Fatalf("asc order wrong at %d: %v", i, res.Rows)
		}
	}

	res, err = aware.Query(prefix + `SELECT ?x ?r WHERE { ?x :rating ?r . } ORDER BY DESC(?r)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1] != rdf.NewIntLiteral(5) {
		t.Fatalf("desc order wrong: %v", res.Rows)
	}
}

func TestOrderByNonProjectedKey(t *testing.T) {
	aware, _ := newEngines(t)
	res, err := aware.Query(prefix + `SELECT ?x WHERE { ?x :rating ?r . } ORDER BY DESC(?r) LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != iri("product1") {
		t.Fatalf("top-rated = %v, want product1", res.Rows)
	}
}

// TestOrderByAgreesAcrossEngines checks that all three engines produce the
// same ordered projection.
func TestOrderByAgreesAcrossEngines(t *testing.T) {
	ts := uniTriples()
	q := prefix + `SELECT ?x ?p WHERE { ?x :price ?p . } ORDER BY DESC(?p)`

	aware, _ := newEngines(t)
	res, err := aware.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	_, mergeRows, err := rdf3x.Load(ts).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	_, bitRows, err := bitmat.Load(ts).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(mergeRows) || len(res.Rows) != len(bitRows) {
		t.Fatalf("row counts differ: %d %d %d", len(res.Rows), len(mergeRows), len(bitRows))
	}
	for i := range res.Rows {
		for j := range res.Rows[i] {
			if res.Rows[i][j] != mergeRows[i][j] || res.Rows[i][j] != bitRows[i][j] {
				t.Fatalf("row %d differs: turbo=%v rdf3x=%v bitmat=%v",
					i, res.Rows[i], mergeRows[i], bitRows[i])
			}
		}
	}
	// And the ordering itself.
	if res.Rows[0][0] != iri("product2") {
		t.Fatalf("expected product2 (price 250) first: %v", res.Rows)
	}
}

func TestOrderByUnboundOptionalFirst(t *testing.T) {
	aware, _ := newEngines(t)
	res, err := aware.Query(prefix + `SELECT ?x ?h WHERE {
		?x a :Product .
		OPTIONAL { ?x :homepage ?h . }
	} ORDER BY ?h`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][1] != "" {
		t.Fatalf("unbound should sort first: %v", res.Rows)
	}
}
