package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/transform"
)

// rowString flattens a projected row for byte-level comparison.
func rowString(row []rdf.Term) string {
	s := ""
	for _, t := range row {
		s += string(t) + "\x1f"
	}
	return s
}

// workerCounts is the differential matrix from the issue: sequential, the
// smallest parallel configuration, and everything the box has.
func workerCounts() []int {
	ws := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		ws = append(ws, n)
	} else {
		ws = append(ws, 4) // still exercises the pipeline on small boxes
	}
	return ws
}

// TestSelectWorkersDifferential is the engine-layer acceptance test: for
// every streaming query shape, Select must yield byte-identical row
// sequences for Workers ∈ {1, 2, GOMAXPROCS}, across both semantics and
// with the NEC reduction on and off.
func TestSelectWorkersDifferential(t *testing.T) {
	ts := uniTriples()
	data := transform.Build(ts, transform.TypeAware)
	for _, sem := range []core.Semantics{core.Homomorphism, core.Isomorphism} {
		for _, nec := range []bool{false, true} {
			engines := map[int]*Engine{}
			for _, w := range workerCounts() {
				opts := core.Optimized()
				opts.Workers = w
				opts.NoNEC = nec
				eng := New(data, opts)
				eng.SetSemantics(sem)
				engines[w] = eng
			}
			for _, tc := range streamShapes {
				t.Run(fmt.Sprintf("%v/nec-off=%v/%s", sem, nec, tc.name), func(t *testing.T) {
					q := streamPrefix + tc.query
					var want []string
					for _, w := range workerCounts() {
						rows, err := engines[w].Select(context.Background(), q)
						if err != nil {
							t.Fatal(err)
						}
						var got []string
						for _, row := range drain(t, rows) {
							got = append(got, rowString(row))
						}
						if w == 1 {
							want = got
							continue
						}
						if len(got) != len(want) {
							t.Fatalf("workers=%d: %d rows, want %d", w, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("workers=%d row %d:\n got %q\nwant %q", w, i, got[i], want[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestSelectWorkersMidStreamClose: pulling k rows then closing must deliver
// the identical k-row prefix for every worker count, with no error, and a
// parallel engine must stop its workers promptly (the drain in Close joins
// the pipeline).
func TestSelectWorkersMidStreamClose(t *testing.T) {
	eng1 := wideEngine(200)
	data := eng1.Data()
	const k = 7
	var want []string
	for _, w := range workerCounts() {
		opts := core.Optimized()
		opts.Workers = w
		eng := New(data, opts)
		pq, err := eng.Prepare(wideQuery)
		if err != nil {
			t.Fatal(err)
		}
		rows := pq.Select(context.Background())
		var got []string
		for i := 0; i < k; i++ {
			if !rows.Next() {
				t.Fatalf("workers=%d: missing row %d: %v", w, i, rows.Err())
			}
			got = append(got, rowString(rows.Row()))
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", w, err)
		}
		if rows.Next() {
			t.Fatalf("workers=%d: Next after Close", w)
		}
		if w == 1 {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

// TestSelectWorkersCancelPrefix: a context cancelled mid-iteration ends the
// cursor with ctx.Err() on every worker count, and whatever rows arrived
// before the cut form a prefix of the sequential sequence.
func TestSelectWorkersCancelPrefix(t *testing.T) {
	eng1 := wideEngine(200)
	data := eng1.Data()
	seqOpts := core.Optimized()
	seqOpts.Workers = 1
	seqPq, err := New(data, seqOpts).Prepare(wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	var full []string
	for _, row := range drain(t, seqPq.Select(context.Background())) {
		full = append(full, rowString(row))
	}

	for _, w := range workerCounts() {
		opts := core.Optimized()
		opts.Workers = w
		pq, err := New(data, opts).Prepare(wideQuery)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		rows := pq.Select(ctx)
		var got []string
		for rows.Next() {
			got = append(got, rowString(rows.Row()))
			if len(got) == 3 {
				cancel()
			}
		}
		if !errors.Is(rows.Err(), context.Canceled) {
			t.Fatalf("workers=%d: Err = %v, want context.Canceled", w, rows.Err())
		}
		rows.Close()
		cancel()
		if len(got) >= len(full) {
			t.Fatalf("workers=%d: cancellation did not stop enumeration (%d rows)", w, len(got))
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("workers=%d row %d: %q, want sequential prefix %q", w, i, got[i], full[i])
			}
		}
	}
}

// TestExecWorkersPointScan: parallel Exec of a point-shaped class scan
// (single query vertex, no edges — the shape the type-aware transformation
// creates for `?x rdf:type C`) must materialize distinct rows. Regression:
// the pipeline's point-shape fast path once handed Collect aliased matches,
// collapsing every row to the last candidate.
func TestExecWorkersPointScan(t *testing.T) {
	eng1 := wideEngine(50) // 50 Author vertices
	data := eng1.Data()
	const q = streamPrefix + `SELECT ?a WHERE { ?a rdf:type :Author . }`
	for _, w := range workerCounts() {
		opts := core.Optimized()
		opts.Workers = w
		pq, err := New(data, opts).Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pq.Exec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 50 {
			t.Fatalf("workers=%d: %d rows, want 50", w, len(res.Rows))
		}
		distinct := map[string]bool{}
		for _, row := range res.Rows {
			distinct[rowString(row)] = true
		}
		if len(distinct) != 50 {
			t.Fatalf("workers=%d: %d distinct rows of %d — aliased matches", w, len(distinct), len(res.Rows))
		}
	}
}

// TestSelectWorkersLimitDeterministic: a MaxSolutions-capped engine is no
// longer forced sequential — the pipeline makes the capped subset exactly
// the sequential prefix for any worker count.
func TestSelectWorkersLimitDeterministic(t *testing.T) {
	eng1 := wideEngine(100)
	data := eng1.Data()
	var want []string
	for _, w := range workerCounts() {
		opts := core.Optimized()
		opts.Workers = w
		opts.MaxSolutions = 11
		pq, err := New(data, opts).Prepare(wideQuery)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, row := range drain(t, pq.Select(context.Background())) {
			got = append(got, rowString(row))
		}
		if len(got) != 11 {
			t.Fatalf("workers=%d: %d rows, want the 11-row cap", w, len(got))
		}
		if w == 1 {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}
