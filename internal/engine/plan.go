package engine

import (
	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/transform"
)

// plan is a flat group compiled against one dataset snapshot: connected
// query-graph components, variable-type expansions, post filters, and
// optionals. The snapshot is pinned in data; every graph access during an
// execution of this plan resolves against it, so a plan keeps producing
// consistent results while the store moves on.
type plan struct {
	data  *transform.Data
	empty bool // statically proven empty (unknown term/label/predicate)

	comps     []*component
	typeExps  []typeExpansion
	post      []sparql.Expr
	optionals []*sparql.GroupPattern
	// optFlats caches each OPTIONAL's UNION/type-wildcard expansion, which
	// does not depend on row bindings, so per-row left joins skip it.
	optFlats [][]*flatGroup
	outer    sparql.Bindings // bindings inherited from the enclosing row
}

// component is one connected component of the group's query graph.
type component struct {
	qg *core.QueryGraph
	// vertexVar[i] names the variable matched by query vertex i ("" for
	// constants).
	vertexVar []string
	// edgeVar[i] names the predicate variable of query edge i ("").
	edgeVar []string
}

// typeExpansion materializes `?s rdf:type ?t` patterns under the type-aware
// transformation: after matching, ?t ranges over the direct types shared by
// every listed subject.
type typeExpansion struct {
	typeVar   string
	subjVars  []string
	subjConst []uint32 // pinned subject vertices
}

// vertexKey identifies a query vertex during construction: a variable name
// or a constant term.
type vertexKey struct {
	name string
	term rdf.Term
}

type vertexInfo struct {
	idx    int
	labels []uint32
	id     uint32
	varTag string
}

// buildPlan compiles a flat group against the snapshot d. outer pins
// variables bound by an enclosing solution (OPTIONAL evaluation).
func (e *Engine) buildPlan(d *transform.Data, g *flatGroup, outer sparql.Bindings) (*plan, error) {
	p := &plan{data: d, outer: outer, optionals: g.optionals}
	for _, opt := range g.optionals {
		p.optFlats = append(p.optFlats, e.expandGroups(opt))
	}

	resolve := func(tv sparql.TermOrVar) sparql.TermOrVar {
		if tv.IsVar() && outer != nil {
			if t, ok := outer[tv.Var]; ok && t != "" {
				return sparql.Constant(t)
			}
		}
		return tv
	}

	verts := map[vertexKey]*vertexInfo{}
	order := []*vertexInfo{}
	vertex := func(tv sparql.TermOrVar) (*vertexInfo, bool) {
		var key vertexKey
		var pin uint32 = core.NoID
		var tag string
		if tv.IsVar() {
			key = vertexKey{name: tv.Var}
			tag = tv.Var
		} else {
			key = vertexKey{term: tv.Term}
			id, ok := d.VertexOf(tv.Term)
			if !ok {
				return nil, false // unknown term: no solutions
			}
			pin = id
		}
		if vi, ok := verts[key]; ok {
			return vi, true
		}
		vi := &vertexInfo{idx: len(order), id: pin, varTag: tag}
		verts[key] = vi
		order = append(order, vi)
		return vi, true
	}

	type pendingEdge struct {
		from, to int
		label    uint32
		predVar  string
	}
	var edges []pendingEdge
	typeVarPatterns := map[string][]sparql.TermOrVar{} // typeVar -> subjects

	for _, tp := range g.triples {
		s, pr, o := resolve(tp.S), resolve(tp.P), resolve(tp.O)

		// Constant rdf:type patterns fold into labels under TypeAware.
		if d.Mode == transform.TypeAware && !pr.IsVar() && pr.Term.IRIValue() == rdf.RDFType {
			if o.IsVar() {
				typeVarPatterns[o.Var] = append(typeVarPatterns[o.Var], s)
				// The subject still needs a vertex so that a type-only
				// query has something to match.
				if _, ok := vertex(s); !ok {
					p.empty = true
					return p, nil
				}
				continue
			}
			label, ok := d.LabelOf(o.Term)
			if !ok {
				p.empty = true // type never seen in the data
				return p, nil
			}
			vi, ok := vertex(s)
			if !ok {
				p.empty = true
				return p, nil
			}
			vi.labels = appendUnique(vi.labels, label)
			continue
		}
		// rdfs:subClassOf patterns cannot be answered from a type-aware
		// graph (the hierarchy is folded into labels); they match nothing.
		if d.Mode == transform.TypeAware && !pr.IsVar() && pr.Term.IRIValue() == rdf.RDFSSubClass {
			p.empty = true
			return p, nil
		}

		sv, ok := vertex(s)
		if !ok {
			p.empty = true
			return p, nil
		}
		ov, ok := vertex(o)
		if !ok {
			p.empty = true
			return p, nil
		}
		if pr.IsVar() {
			edges = append(edges, pendingEdge{sv.idx, ov.idx, core.NoID, pr.Var})
			continue
		}
		el, ok := d.EdgeLabelOf(pr.Term)
		if !ok {
			p.empty = true
			return p, nil
		}
		edges = append(edges, pendingEdge{sv.idx, ov.idx, el, ""})
	}

	// Type expansions: resolve subjects to vars or pinned vertices. The
	// expansion order nests the per-row ?t enumeration, so it shapes the
	// emitted row order when a group has several type variables — iterate
	// the map's keys sorted, never raw.
	typeVars := make([]string, 0, len(typeVarPatterns))
	for tv := range typeVarPatterns {
		typeVars = append(typeVars, tv)
	}
	sortStrings(typeVars)
	for _, tv := range typeVars {
		subjects := typeVarPatterns[tv]
		exp := typeExpansion{typeVar: tv}
		for _, s := range subjects {
			if s.IsVar() {
				exp.subjVars = append(exp.subjVars, s.Var)
				continue
			}
			id, ok := d.VertexOf(s.Term)
			if !ok {
				p.empty = true
				return p, nil
			}
			exp.subjConst = append(exp.subjConst, id)
		}
		p.typeExps = append(p.typeExps, exp)
	}

	// Split into connected components (union-find over vertices).
	parent := make([]int, len(order))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, pe := range edges {
		union(pe.from, pe.to)
	}
	type localSlot struct {
		c *component
		i int
	}
	compOf := map[int]*component{}
	local := make([]localSlot, len(order))
	predVarID := map[string]int{}
	for gi, vi := range order {
		root := find(gi)
		c, ok := compOf[root]
		if !ok {
			c = &component{qg: core.NewQueryGraph()}
			compOf[root] = c
			p.comps = append(p.comps, c)
		}
		localIdx := c.qg.AddVertex(vi.labels, vi.id)
		c.vertexVar = append(c.vertexVar, vi.varTag)
		local[gi] = localSlot{c, localIdx}
	}
	for _, pe := range edges {
		fromLoc, toLoc := local[pe.from], local[pe.to]
		c := fromLoc.c
		if pe.predVar != "" {
			id, ok := predVarID[pe.predVar]
			if !ok {
				id = len(predVarID)
				predVarID[pe.predVar] = id
			}
			c.qg.AddVarEdge(fromLoc.i, toLoc.i, id)
			c.edgeVar = append(c.edgeVar, pe.predVar)
		} else {
			c.qg.AddEdge(fromLoc.i, toLoc.i, pe.label)
			c.edgeVar = append(c.edgeVar, "")
		}
	}

	// Classify filters: single-variable filters over a BGP vertex variable
	// are pushed into exploration; everything else runs post-match.
	for _, f := range g.filters {
		if !pushdownFilter(d, p, f) {
			p.post = append(p.post, f)
		}
	}
	return p, nil
}

func appendUnique(s []uint32, x uint32) []uint32 {
	for _, v := range s {
		if v == x {
			return s
		}
	}
	return append(s, x)
}

// pushdownFilter attaches f as a vertex predicate when it references
// exactly one variable and that variable is a vertex of some component. The
// predicate closure captures the snapshot's dictionary, which is append-only,
// so the term resolution stays correct for the plan's lifetime.
func pushdownFilter(d *transform.Data, p *plan, f sparql.Expr) bool {
	set := map[string]bool{}
	f.Vars(set)
	if len(set) != 1 {
		return false
	}
	// Single key by the len check above; collect-and-sort keeps the
	// extraction structurally order-independent (turbolint:maporder).
	names := make([]string, 0, 1)
	for v := range set {
		names = append(names, v)
	}
	sortStrings(names)
	name := names[0]
	// Variables consumed by type expansions or predicate slots cannot be
	// pushed to a vertex.
	for _, exp := range p.typeExps {
		if exp.typeVar == name {
			return false
		}
	}
	for _, c := range p.comps {
		for i, tag := range c.vertexVar {
			if tag != name {
				continue
			}
			qv := &c.qg.Vertices[i]
			prev := qv.Pred
			filter := f
			qv.Pred = func(v uint32) bool {
				if prev != nil && !prev(v) {
					return false
				}
				return sparql.EvalFilter(filter, sparql.Bindings{name: d.TermOfVertex(v)})
			}
			return true
		}
		for _, tag := range c.edgeVar {
			if tag == name {
				return false // predicate variable: evaluate post-match
			}
		}
	}
	return false
}

// predVarSpansComponents reports whether some predicate variable occurs in
// two different components (forcing a cross-component join).
func (p *plan) predVarSpansComponents() bool {
	seen := map[string]*component{}
	for _, c := range p.comps {
		for _, tag := range c.edgeVar {
			if tag == "" {
				continue
			}
			if prev, ok := seen[tag]; ok && prev != c {
				return true
			}
			seen[tag] = c
		}
	}
	return false
}
