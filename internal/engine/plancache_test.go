package engine

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/transform"
)

func planCacheTriples() []rdf.Triple {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://u/" + s) }
	var ts []rdf.Triple
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			ts = append(ts, rdf.Triple{S: iri(string(rune('a' + i))), P: iri("p"), O: iri(string(rune('a' + j)))})
		}
	}
	return ts
}

// TestPlanCacheDropsSupersededEpochs pins the prepared-plan cache's bound:
// it holds the current epoch's compilation plus exactly the superseded
// epochs still pinned by open cursors — an old epoch's plans are dropped the
// moment its last cursor closes, and a burst of updates with no cursors
// leaves a single entry.
func TestPlanCacheDropsSupersededEpochs(t *testing.T) {
	mut := transform.NewMutable(planCacheTriples(), transform.TypeAware)
	e := New(mut.Current(), core.Optimized())
	pq, err := e.Prepare(`SELECT ?x ?y WHERE { ?x <http://u/p> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	e0 := e.Data().Epoch
	if got := pq.cachedPlanEpochs(); !reflect.DeepEqual(got, []uint64{e0}) {
		t.Fatalf("after prepare: cached epochs %v, want [%d]", got, e0)
	}

	// A cursor opened at the current snapshot pins that epoch's plans.
	rows := pq.Select(t.Context())

	iri := func(s string) rdf.Term { return rdf.NewIRI("http://u/" + s) }
	d, n := mut.Apply([]rdf.Triple{{S: iri("z"), P: iri("p"), O: iri("a")}}, nil)
	if n != 1 {
		t.Fatalf("apply: %d changes", n)
	}
	e.SetData(d)
	e1 := d.Epoch

	// Executing at the new snapshot compiles its plans; the pinned old epoch
	// must survive alongside.
	if _, err := pq.Exec(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := pq.cachedPlanEpochs(); !reflect.DeepEqual(got, []uint64{e0, e1}) {
		t.Fatalf("with open cursor: cached epochs %v, want [%d %d]", got, e0, e1)
	}

	// The cursor still enumerates its pinned snapshot (16 rows, not 17).
	got := 0
	for rows.Next() {
		got++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Fatalf("pinned cursor saw %d rows, want 16", got)
	}

	// Closing the last cursor over the superseded epoch drops its plans.
	if got := pq.cachedPlanEpochs(); !reflect.DeepEqual(got, []uint64{e1}) {
		t.Fatalf("after close: cached epochs %v, want [%d]", got, e1)
	}

	// A burst of cursor-less updates leaves only the newest compilation.
	for i := 0; i < 3; i++ {
		d, _ := mut.Apply([]rdf.Triple{{S: iri("z"), P: iri("p"), O: iri(string(rune('b' + i)))}}, nil)
		e.SetData(d)
		if _, err := pq.Exec(t.Context()); err != nil {
			t.Fatal(err)
		}
	}
	if got := pq.cachedPlanEpochs(); !reflect.DeepEqual(got, []uint64{e.Data().Epoch}) {
		t.Fatalf("after burst: cached epochs %v, want [%d]", got, e.Data().Epoch)
	}
}

// TestRowsEpochAndFootprint covers the cursor's cache-facing accessors: the
// epoch is the pinned snapshot's, and the footprint covers the query's
// predicate reads.
func TestRowsEpochAndFootprint(t *testing.T) {
	mut := transform.NewMutable(planCacheTriples(), transform.TypeAware)
	e := New(mut.Current(), core.Optimized())
	pq, err := e.Prepare(`SELECT ?x ?y WHERE { ?x <http://u/p> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	rows := pq.Select(t.Context())
	defer rows.Close()
	if rows.Epoch() != e.Data().Epoch {
		t.Fatalf("cursor epoch %d, want %d", rows.Epoch(), e.Data().Epoch)
	}
	fp := rows.Footprint()
	if fp == nil || fp.Empty() {
		t.Fatalf("cursor footprint %v, want non-empty", fp)
	}
	delta := mut.LastFootprint()
	if !delta.Empty() {
		t.Fatalf("no updates yet, delta footprint %v", delta)
	}
}
