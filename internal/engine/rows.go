package engine

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/rdf"
)

// Rows is a streaming cursor over a query's solutions, in the style of
// database/sql: call Next until it returns false, read the current row with
// Row or Scan, then check Err. Close releases the executing query early —
// the matcher abandons its remaining candidate regions instead of scanning
// them — and is safe to call at any point (always Close a cursor you do not
// drain). A Rows must not be used from multiple goroutines concurrently;
// run Select once per goroutine instead (PreparedQuery is concurrency-safe).
type Rows struct {
	vars   []string
	ch     chan []rdf.Term
	cancel context.CancelFunc
	epoch  uint64
	fp     *cache.Footprint

	cur    []rdf.Term
	err    error // written by the producer before it closes ch
	done   bool  // consumer observed the channel close
	closed bool  // Close was called

	closeOnce sync.Once
}

// Epoch returns the epoch of the dataset snapshot this cursor enumerates —
// pinned synchronously when the cursor was opened.
func (r *Rows) Epoch() uint64 { return r.epoch }

// Footprint returns an over-approximation of the label and predicate IDs the
// query reads from the pinned snapshot: a committed batch whose delta
// footprint is disjoint cannot change this cursor's result set. The value is
// shared and must not be mutated; it is nil when plan compilation failed.
func (r *Rows) Footprint() *cache.Footprint { return r.fp }

// Select starts executing the prepared query and returns a cursor over its
// rows. Execution advances only as the consumer pulls: on a sequential
// engine the matcher runs in lockstep with Next, and on a parallel engine
// (Workers > 1) the ordered region pipeline searches candidate regions
// through resumable cursors, buffering no more than StreamBuffer rows
// ahead of the consumer — even a single region with a huge result set
// streams its first rows after a bounded amount of search — so closing
// the cursor after k rows still does on the order of k rows' search work
// (plus the row window). Row order is identical for every worker count.
// ORDER BY with LIMIT holds only the best LIMIT+OFFSET rows (a bounded
// heap); unbounded ORDER BY holds sorted runs and merges them. Cancelling
// ctx (or its deadline expiring) aborts the query; Err then returns the
// context error.
func (pq *PreparedQuery) Select(ctx context.Context) *Rows {
	return pq.SelectProfiled(ctx, nil)
}

// SelectProfiled is Select with matcher effort counters: prof, when
// non-nil, accumulates the counters of the streamed matcher run. On a
// parallel engine (Workers > 1) the pipeline merges per-worker counters: a
// fully drained cursor reports the same totals as a sequential run, while a
// cursor closed early may report somewhat more effort than a sequential run
// would have spent — workers race ahead within the row window. Read
// prof only after the cursor is exhausted or closed.
//
// The dataset snapshot is pinned synchronously, before SelectProfiled
// returns: a cursor opened before a store update enumerates exactly the
// pre-update solutions, however late it is drained and whatever updates or
// compactions land in the meantime.
func (pq *PreparedQuery) SelectProfiled(ctx context.Context, prof *core.ProfileResult) *Rows {
	if ctx == nil {
		ctx = context.Background()
	}
	d := pq.e.Data()
	cctx, cancel := context.WithCancel(ctx)
	r := &Rows{
		vars:   pq.vars,
		ch:     make(chan []rdf.Term),
		cancel: cancel,
		epoch:  d.Epoch,
	}
	// Acquire (and thereby pin) the snapshot's compiled plans synchronously
	// too: the pin lives until the producer goroutine exits, so a prepared
	// query's plan cache drops a superseded epoch only once every cursor
	// over it has closed.
	pe, err := pq.acquirePlans(d)
	if err != nil {
		cancel()
		r.err = err
		r.done = true
		close(r.ch)
		return r
	}
	r.fp = pe.fp
	go func() {
		truncated := false // emit aborted by cancellation (vs clean completion)
		err := pq.streamWith(cctx, pe, prof, true, func(row []rdf.Term) bool {
			select {
			case r.ch <- row:
				return true
			case <-cctx.Done():
				truncated = true
				return false
			}
		})
		if err != nil && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			err = nil // cancellation came from Close, not from the caller
		}
		if err == nil && truncated {
			// Promote the caller's context error only when the stream was
			// actually cut short: a result set that completed just before a
			// deadline expired is a success, not a failure.
			err = ctx.Err()
		}
		// Unpin before closing the channel: a consumer returning from Close
		// (which waits for the close) may immediately assert that superseded
		// plan epochs are gone.
		pq.releasePlans(pe)
		r.err = err
		close(r.ch)
	}()
	return r
}

// All executes the prepared query as a range-over-func iterator, yielding
// each projected row as the matcher finds it. Unlike Select there is no
// producer goroutine: the pipeline is driven synchronously from the yield
// callback, so per-row overhead is a function call, not a channel handoff.
// Breaking out of the loop terminates the search; a context cancellation or
// execution failure is yielded as the final pair with a nil row.
func (pq *PreparedQuery) All(ctx context.Context) iter.Seq2[[]rdf.Term, error] {
	d := pq.e.Data()
	return func(yield func([]rdf.Term, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		stopped := false
		err := pq.stream(ctx, d, nil, true, func(row []rdf.Term) bool {
			if !yield(row, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}

// Vars returns the projection, in SELECT order. The slice is shared; do not
// modify it.
func (r *Rows) Vars() []string { return r.vars }

// Next advances to the next row, blocking until one is available. It
// returns false when the rows are exhausted, the cursor is closed, the
// context is cancelled, or execution fails — check Err to tell the cases
// apart.
func (r *Rows) Next() bool {
	if r.done || r.closed {
		return false
	}
	row, ok := <-r.ch
	if !ok {
		r.done = true
		return false
	}
	r.cur = row
	return true
}

// Row returns the current row: one term per projected variable, in Vars
// order, with unbound OPTIONAL positions holding the empty term. The slice
// is owned by the caller and remains valid after the next call to Next.
func (r *Rows) Row() []rdf.Term { return r.cur }

// Scan copies the current row into dest, one pointer per projected
// variable.
func (r *Rows) Scan(dest ...*rdf.Term) error {
	if r.cur == nil {
		return errors.New("engine: Scan called before a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("engine: Scan wants %d destinations for %d columns", len(dest), len(r.cur))
	}
	for i := range dest {
		*dest[i] = r.cur[i]
	}
	return nil
}

// Err returns the error, if any, that terminated iteration: a context
// cancellation or deadline, or an execution failure. It returns nil while
// rows are still pending, after a clean exhaustion, and after a Close that
// cut short a healthy iteration; an execution failure persists through
// Close.
func (r *Rows) Err() error {
	if !r.done {
		return nil
	}
	return r.err
}

// Close stops execution and releases the producing goroutine. It is
// idempotent. Close returns Err so `defer rows.Close()` and error-checked
// teardown compose.
func (r *Rows) Close() error {
	r.closeOnce.Do(func() {
		r.closed = true
		r.cancel()
		for range r.ch { // release the producer, wait for its exit
		}
		r.done = true
	})
	return r.Err()
}
