package engine

import (
	"context"
	"strings"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/transform"
)

// RowVisitor consumes one projected solution row. Returning false stops
// execution; the matcher abandons its remaining candidate regions.
type RowVisitor func(row []rdf.Term) bool

// stream runs the prepared query, pushing projected rows — after DISTINCT
// deduplication, OFFSET skipping, and LIMIT truncation — to emit in pipeline
// order. Plain pattern/FILTER/OPTIONAL/UNION queries stream: each row flows
// from the matcher's visitor callback to emit without accumulating a result
// set (DISTINCT keeps a seen-set but still emits incrementally). ORDER BY no
// longer special-cases "buffer everything then sort": `ORDER BY … LIMIT k`
// feeds a bounded top-k heap from the stream (O(k) result memory), and
// unbounded ORDER BY sorts bounded runs as rows arrive and merges them on
// emission; both must still see the full stream before the first row leaves,
// as the last solution could sort first. prof, when non-nil, accumulates
// matcher effort counters (merged from the pipeline's workers when
// Workers > 1). streamFirst routes the first component of each group through
// the streaming matcher — with Workers > 1 that is the ordered parallel
// region pipeline, which keeps the sequential row order while searching
// regions concurrently — for first-row latency and early termination;
// materializing consumers (Exec, Count) collect it instead and join from the
// materialized sets.
func (pq *PreparedQuery) stream(ctx context.Context, d *transform.Data, prof *core.ProfileResult, streamFirst bool, emit RowVisitor) error {
	pe, err := pq.acquirePlans(d)
	if err != nil {
		return err
	}
	defer pq.releasePlans(pe)
	return pq.streamWith(ctx, pe, prof, streamFirst, emit)
}

// streamWith is stream against an already-acquired plan entry; the caller
// owns the pin.
func (pq *PreparedQuery) streamWith(ctx context.Context, pe *planEntry, prof *core.ProfileResult, streamFirst bool, emit RowVisitor) error {
	plans := pe.plans
	pj := &projector{pq: pq, emit: emit, offset: pq.q.Offset, limit: pq.q.Limit}
	if pq.q.Distinct {
		pj.seen = map[string]bool{}
	}

	if cmp := sparql.RowComparator(pq.q.OrderBy, pq.vi.slot); cmp != nil {
		// Ordering runs on the unprojected solutions so keys may reference
		// non-projected variables. (A nil comparator — no key resolves to a
		// column — leaves the stream order untouched, so such queries take
		// the plain streaming path below.)
		return pq.streamOrdered(ctx, plans, prof, streamFirst, rowCmp(cmp), pj)
	}

	for i, g := range pq.groups {
		stopped := false
		err := pq.e.streamGroup(ctx, plans[i], g, pq.vi, prof, streamFirst, func(row []rdf.Term) bool {
			if !pj.push(row) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			break
		}
	}
	return nil
}

// streamOrdered drains the groups' solution stream into an order-aware
// consumer and replays it sorted through the projector.
//
// With a LIMIT and no DISTINCT, only the best LIMIT+OFFSET rows can ever be
// emitted, so a bounded top-k heap suffices: memory is O(k) regardless of
// the solution count. DISTINCT disables the bound (rows that deduplicate
// away downstream must not consume heap slots), and an unbounded ORDER BY
// has no k — both fall back to sorted runs merged on emission, which holds
// every row but sorts incrementally and streams the merge.
func (pq *PreparedQuery) streamOrdered(ctx context.Context, plans []*plan, prof *core.ProfileResult, streamFirst bool, cmp rowCmp, pj *projector) error {
	var push func(row []rdf.Term)
	var finish func()
	if pq.q.Limit >= 0 && !pq.q.Distinct {
		h := newTopK(pq.q.Limit+pq.q.Offset, cmp)
		push = h.push
		finish = func() {
			for _, row := range h.sorted() {
				if !pj.push(row) {
					return
				}
			}
		}
	} else {
		rs := newRunSorter(cmp)
		push = rs.push
		finish = func() { rs.mergeEmit(pj.push) }
	}
	for i, g := range pq.groups {
		err := pq.e.streamGroup(ctx, plans[i], g, pq.vi, prof, streamFirst, func(row []rdf.Term) bool {
			push(row)
			return true
		})
		if err != nil {
			return err
		}
	}
	finish()
	return nil
}

// projector applies the solution-modifier tail of the pipeline: projection
// to the SELECT variables, DISTINCT, OFFSET, LIMIT. push reports whether the
// caller should keep producing rows.
type projector struct {
	pq      *PreparedQuery
	seen    map[string]bool // non-nil iff DISTINCT
	offset  int
	limit   int // -1 = unlimited
	emitted int
	emit    RowVisitor
}

func (pj *projector) push(row []rdf.Term) bool {
	vars, vi := pj.pq.vars, pj.pq.vi
	proj := make([]rdf.Term, len(vars))
	for i, v := range vars {
		if idx, ok := vi.index[v]; ok {
			proj[i] = row[idx]
		}
	}
	if pj.seen != nil {
		k := rowKey(proj)
		if pj.seen[k] {
			return true
		}
		pj.seen[k] = true
	}
	if pj.offset > 0 {
		pj.offset--
		return true
	}
	if pj.limit >= 0 && pj.emitted >= pj.limit {
		return false
	}
	if !pj.emit(proj) {
		return false
	}
	pj.emitted++
	return pj.limit < 0 || pj.emitted < pj.limit
}

func rowKey(row []rdf.Term) string {
	var b strings.Builder
	for _, t := range row {
		b.WriteString(string(t))
		b.WriteByte('\x00')
	}
	return b.String()
}

// streamGroup evaluates one flat group against its prebuilt plan, pushing
// unprojected solution rows to emit. The first query-graph component
// streams straight from the matcher's visitor — in parallel but in
// sequential row order when Workers > 1, via the ordered region pipeline —
// and the remaining components are materialized once and cross-joined per
// streamed solution. When streamFirst is false and Workers > 1, the first
// component is materialized in parallel instead (a consumer that drains
// everything anyway skips the streaming machinery; the order is the same
// either way).
func (e *Engine) streamGroup(ctx context.Context, p *plan, g *flatGroup, vi *varIndex, prof *core.ProfileResult, streamFirst bool, emit RowVisitor) error {
	if p.empty {
		return nil
	}
	d := p.data

	// Seed the row with the alternative's fixed bindings (wildcard-predicate
	// rdf:type expansion); conflicting fixes make the alternative empty.
	seed := make([]rdf.Term, len(vi.names))
	for _, fb := range g.fixed {
		slot := vi.slot(fb.name)
		if slot < 0 {
			continue
		}
		if seed[slot] != "" && seed[slot] != fb.term {
			return nil
		}
		seed[slot] = fb.term
	}

	// tail finishes one fully-joined row: variable-type expansions, OPTIONAL
	// left joins, post filters, then emit. It reports whether to continue.
	tail := func(row []rdf.Term) (bool, error) {
		rows := [][]rdf.Term{row}
		var err error
		for _, exp := range p.typeExps {
			rows, err = e.expandTypes(d, rows, exp, vi, nil)
			if err != nil {
				return false, err
			}
			if len(rows) == 0 {
				return true, nil
			}
		}
		for _, flats := range p.optFlats {
			rows, err = e.execOptional(ctx, d, flats, vi, rows, nil)
			if err != nil {
				return false, err
			}
		}
		for _, r := range rows {
			if len(p.post) > 0 {
				b := e.rowBindings(r, vi, nil)
				keep := true
				for _, f := range p.post {
					if !sparql.EvalFilter(f, b) {
						keep = false
						break
					}
				}
				if !keep {
					continue
				}
			}
			if !emit(r) {
				return false, nil
			}
		}
		return true, nil
	}

	if len(p.comps) == 0 {
		_, err := tail(seed)
		return err
	}

	streamed := 1
	if !streamFirst && e.opts.Workers > 1 {
		streamed = 0
	}

	rest := make([][]core.Match, len(p.comps)-streamed)
	for i, c := range p.comps[streamed:] {
		sols, err := core.Collect(ctx, d.G, c.qg, e.sem, e.opts)
		if err != nil {
			return err
		}
		if len(sols) == 0 {
			return nil // inner join: any empty component empties the group
		}
		rest[i] = sols
	}

	if streamed == 0 {
		_, err := e.joinRest(d, p.comps, rest, 0, seed, vi, tail)
		return err
	}

	opts := e.opts
	if prof != nil {
		opts.Profile = prof
	}
	var tailErr error
	_, err := core.Stream(ctx, d.G, p.comps[0].qg, e.sem, opts, func(mt core.Match) bool {
		row, ok := e.mergeSolution(d, seed, p.comps[0], mt, vi)
		if !ok {
			return true
		}
		cont, err := e.joinRest(d, p.comps[1:], rest, 0, row, vi, tail)
		if err != nil {
			tailErr = err
			return false
		}
		return cont
	})
	if tailErr != nil {
		return tailErr
	}
	return err
}

// joinRest cross-joins row against the materialized solutions of the given
// components (conflict detection handles predicate variables spanning
// components), invoking tail on every full row. It reports whether to
// continue producing.
func (e *Engine) joinRest(d *transform.Data, comps []*component, rest [][]core.Match, i int, row []rdf.Term, vi *varIndex, tail func([]rdf.Term) (bool, error)) (bool, error) {
	if i == len(rest) {
		return tail(row)
	}
	for _, sol := range rest[i] {
		merged, ok := e.mergeSolution(d, row, comps[i], sol, vi)
		if !ok {
			continue
		}
		cont, err := e.joinRest(d, comps, rest, i+1, merged, vi, tail)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}
