package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/transform"
)

const streamPrefix = `PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX : <http://example.org/>
`

// streamShapes covers every query shape the cursor must handle: pure BGP,
// pushed and post filters, OPTIONAL, UNION, predicate variables, and each
// solution modifier (DISTINCT streams incrementally, ORDER BY buffers).
var streamShapes = []struct {
	name  string
	query string
}{
	{"bgp", `SELECT ?x ?y WHERE { ?x :memberOf ?y . }`},
	{"join", `SELECT ?x ?u WHERE { ?x :memberOf ?d . ?d :subOrganizationOf ?u . ?x :undergraduateDegreeFrom ?u . }`},
	{"filter", `SELECT ?x ?r WHERE { ?x :rating ?r . FILTER(?r > 2) }`},
	{"optional", `SELECT ?x ?h WHERE { ?x rdf:type :Product . OPTIONAL { ?x :homepage ?h . } }`},
	{"union", `SELECT ?x WHERE { { ?x rdf:type :Professor . } UNION { ?x rdf:type :University . } }`},
	{"predvar", `SELECT ?p ?o WHERE { :alice ?p ?o . }`},
	{"distinct", `SELECT DISTINCT ?y WHERE { ?x :advisor ?y . }`},
	{"orderby", `SELECT ?x ?r WHERE { ?x :rating ?r . } ORDER BY DESC(?r)`},
	{"limitoffset", `SELECT ?x WHERE { ?x rdf:type :Student . } LIMIT 2 OFFSET 1`},
	{"typevar", `SELECT ?t WHERE { :alice rdf:type ?t . }`},
	{"empty", `SELECT ?x WHERE { ?x rdf:type :Nothing . }`},
}

// drain pulls every row out of a cursor.
func drain(t *testing.T, rows *Rows) [][]rdf.Term {
	t.Helper()
	var out [][]rdf.Term
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("close error: %v", err)
	}
	return out
}

func TestSelectMatchesExec(t *testing.T) {
	aware, direct := newEngines(t)
	for _, eng := range []*Engine{aware, direct} {
		for _, tc := range streamShapes {
			t.Run(tc.name, func(t *testing.T) {
				q := streamPrefix + tc.query
				want, err := eng.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := eng.Select(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				got := drain(t, rows)
				if len(got) != len(want.Rows) {
					t.Fatalf("cursor rows = %d, want %d", len(got), len(want.Rows))
				}
				for i := range got {
					for j := range got[i] {
						if got[i][j] != want.Rows[i][j] {
							t.Fatalf("row %d col %d: %q vs %q", i, j, got[i][j], want.Rows[i][j])
						}
					}
				}
			})
		}
	}
}

func TestPreparedReexecution(t *testing.T) {
	aware, _ := newEngines(t)
	pq, err := aware.Prepare(streamPrefix + `SELECT ?x ?d WHERE { ?x :memberOf ?d . }`)
	if err != nil {
		t.Fatal(err)
	}
	first := drain(t, pq.Select(context.Background()))
	if len(first) == 0 {
		t.Fatal("no rows")
	}
	for run := 0; run < 3; run++ {
		again := drain(t, pq.Select(context.Background()))
		if len(again) != len(first) {
			t.Fatalf("run %d: %d rows, want %d", run, len(again), len(first))
		}
	}
	n, err := pq.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(first) {
		t.Fatalf("Count = %d, want %d", n, len(first))
	}
}

// wideEngine builds a dataset with many solutions spread over many candidate
// regions, so early termination has something measurable to skip.
func wideEngine(n int) *Engine {
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		author := rdf.NewIRI(fmt.Sprintf("http://example.org/author%d", i))
		ts = append(ts, rdf.Triple{S: author, P: rdf.TypeTerm, O: rdf.NewIRI("http://example.org/Author")})
		for j := 0; j < 4; j++ {
			paper := rdf.NewIRI(fmt.Sprintf("http://example.org/paper%d_%d", i, j))
			ts = append(ts, rdf.Triple{S: paper, P: rdf.TypeTerm, O: rdf.NewIRI("http://example.org/Paper")})
			ts = append(ts, rdf.Triple{S: author, P: rdf.NewIRI("http://example.org/wrote"), O: paper})
		}
	}
	return New(transform.Build(ts, transform.TypeAware), core.Optimized())
}

const wideQuery = streamPrefix + `SELECT ?a ?p WHERE { ?a rdf:type :Author . ?a :wrote ?p . }`

// TestCloseShortCircuitsSearch is the early-termination acceptance test:
// closing the cursor after k rows must leave most of the candidate regions
// unexplored, visible through the matcher's effort counters.
func TestCloseShortCircuitsSearch(t *testing.T) {
	eng := wideEngine(300) // 1200 solutions over 300 regions
	pq, err := eng.Prepare(wideQuery)
	if err != nil {
		t.Fatal(err)
	}

	var full core.ProfileResult
	rows := pq.SelectProfiled(context.Background(), &full)
	all := drain(t, rows)
	if len(all) != 1200 {
		t.Fatalf("full enumeration = %d rows, want 1200", len(all))
	}

	var part core.ProfileResult
	rows = pq.SelectProfiled(context.Background(), &part)
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("row %d missing: %v", i, rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if rows.Next() {
		t.Fatal("Next after Close returned true")
	}
	if part.Regions == 0 || part.SearchNodes == 0 {
		t.Fatalf("no effort recorded: %+v", part)
	}
	if part.Regions*4 >= full.Regions {
		t.Fatalf("close left too many regions explored: %d of %d", part.Regions, full.Regions)
	}
	if part.SearchNodes*4 >= full.SearchNodes {
		t.Fatalf("close left too many search nodes visited: %d of %d", part.SearchNodes, full.SearchNodes)
	}
}

// TestParallelEngineCursorStreamsOrdered pins the Workers > 1 contract of
// the ordered region pipeline: the cursor yields exactly the sequential row
// sequence, and closing it early abandons the regions beyond the reorder
// window — visible as a profile far below the full run's (though, unlike a
// sequential close, workers may have raced a window ahead).
func TestParallelEngineCursorStreamsOrdered(t *testing.T) {
	var ts []rdf.Triple
	for i := 0; i < 300; i++ {
		author := rdf.NewIRI(fmt.Sprintf("http://example.org/author%d", i))
		ts = append(ts, rdf.Triple{S: author, P: rdf.TypeTerm, O: rdf.NewIRI("http://example.org/Author")})
		for j := 0; j < 4; j++ {
			paper := rdf.NewIRI(fmt.Sprintf("http://example.org/paper%d_%d", i, j))
			ts = append(ts, rdf.Triple{S: paper, P: rdf.TypeTerm, O: rdf.NewIRI("http://example.org/Paper")})
			ts = append(ts, rdf.Triple{S: author, P: rdf.NewIRI("http://example.org/wrote"), O: paper})
		}
	}
	data := transform.Build(ts, transform.TypeAware)
	opts := core.Optimized()
	opts.Workers = 4
	eng := New(data, opts)
	pq, err := eng.Prepare(wideQuery)
	if err != nil {
		t.Fatal(err)
	}

	res, err := pq.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1200 {
		t.Fatalf("parallel Exec = %d rows, want 1200", len(res.Rows))
	}

	// The parallel cursor's row sequence is byte-identical to a sequential
	// engine's over the same snapshot.
	seqOpts := core.Optimized()
	seqOpts.Workers = 1
	seqEng := New(data, seqOpts)
	seqPq, err := seqEng.Prepare(wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, seqPq.Select(context.Background()))
	got := drain(t, pq.Select(context.Background()))
	if len(got) != len(want) {
		t.Fatalf("parallel cursor rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d col %d: parallel %q vs sequential %q", i, j, got[i][j], want[i][j])
			}
		}
	}

	var full core.ProfileResult
	drain(t, pq.SelectProfiled(context.Background(), &full))

	var part core.ProfileResult
	rows := pq.SelectProfiled(context.Background(), &part)
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("missing row %d: %v", i, rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if part.Regions == 0 {
		t.Fatalf("no effort recorded: %+v", part)
	}
	// Early close may overshoot by the reorder window (2×Workers batches),
	// but must stay well below the full run.
	if part.Regions*2 >= full.Regions {
		t.Fatalf("close left too many regions explored: %d of %d", part.Regions, full.Regions)
	}
	// A fully drained parallel cursor reports the sequential effort totals.
	var seqFull core.ProfileResult
	drain(t, seqPq.SelectProfiled(context.Background(), &seqFull))
	if full.Regions != seqFull.Regions || full.SearchNodes != seqFull.SearchNodes ||
		full.ExploredCandidates != seqFull.ExploredCandidates {
		t.Fatalf("parallel profile %+v != sequential %+v", full, seqFull)
	}
}

func TestSelectContextCancellation(t *testing.T) {
	eng := wideEngine(300)
	pq, err := eng.Prepare(wideQuery)
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled context: no rows, prompt ctx.Err.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows := pq.Select(ctx)
	n := 0
	for rows.Next() {
		n++
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
	rows.Close()

	// Cancellation mid-iteration: iteration ends with ctx.Err and most of
	// the result set unvisited.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	rows = pq.Select(ctx)
	seen := 0
	for rows.Next() {
		seen++
		if seen == 2 {
			cancel()
		}
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("mid-iteration Err = %v, want context.Canceled", rows.Err())
	}
	if seen >= 1200 {
		t.Fatalf("cancellation did not stop enumeration (saw %d rows)", seen)
	}
	if err := rows.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close after cancel = %v, want context.Canceled", err)
	}

	// Count with a cancelled context propagates too (fast path included).
	if _, err := pq.Count(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Count err = %v, want context.Canceled", err)
	}
}

// TestPreparedConcurrentSelect exercises one PreparedQuery from many
// goroutines (run with -race).
func TestPreparedConcurrentSelect(t *testing.T) {
	eng := wideEngine(50)
	pq, err := eng.Prepare(wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	counts := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows := pq.Select(context.Background())
			defer rows.Close()
			for rows.Next() {
				counts[w]++
			}
			errs[w] = rows.Err()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if counts[w] != 200 {
			t.Fatalf("worker %d saw %d rows, want 200", w, counts[w])
		}
	}
}

func TestRowsScan(t *testing.T) {
	aware, _ := newEngines(t)
	rows, err := aware.Select(context.Background(), streamPrefix+`SELECT ?x ?d WHERE { ?x :memberOf ?d . }`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var x, d rdf.Term
	if err := rows.Scan(&x, &d); err == nil {
		t.Fatal("Scan before Next should fail")
	}
	if !rows.Next() {
		t.Fatal("no rows")
	}
	if err := rows.Scan(&x); err == nil {
		t.Fatal("Scan with wrong arity should fail")
	}
	if err := rows.Scan(&x, &d); err != nil {
		t.Fatal(err)
	}
	if x == "" || d == "" {
		t.Fatalf("scanned empty terms: %q %q", x, d)
	}
}
