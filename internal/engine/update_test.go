package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/transform"
)

// updateQueries cover the shapes the delta overlay must keep honest: label
// scans, joins over the delta, variable predicates, type variables, stars
// (NEC-reducible), OPTIONAL and FILTER.
var updateQueries = []string{
	`SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://u/C0> . }`,
	`SELECT ?x ?y WHERE { ?x <http://u/p> ?y . }`,
	`SELECT ?x ?y ?z WHERE { ?x <http://u/p> ?y . ?y <http://u/q> ?z . }`,
	`SELECT ?x ?p ?y WHERE { ?x ?p ?y . }`,
	`SELECT ?x ?t WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t . }`,
	`SELECT ?a ?b WHERE { ?x <http://u/p> ?a . ?x <http://u/p> ?b . }`,
	`SELECT ?x ?y WHERE { ?x <http://u/q> ?y . OPTIONAL { ?y <http://u/p> ?z . } }`,
	`SELECT ?x WHERE { ?x <http://u/p> ?y . FILTER(?y != <http://u/e0>) }`,
	`SELECT DISTINCT ?y WHERE { ?x <http://u/p> ?y . }`,
}

// updateTriverse is the triple universe for the engine-level differential:
// entities, two predicates, a class hierarchy and typed entities.
func updateTriverse() []rdf.Triple {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://u/" + s) }
	var ts []rdf.Triple
	ents := make([]rdf.Term, 5)
	for i := range ents {
		ents[i] = iri(fmt.Sprintf("e%d", i))
	}
	for _, s := range ents {
		for _, o := range ents {
			ts = append(ts, rdf.Triple{S: s, P: iri("p"), O: o})
			ts = append(ts, rdf.Triple{S: s, P: iri("q"), O: o})
		}
		for c := 0; c < 3; c++ {
			ts = append(ts, rdf.Triple{S: s, P: rdf.TypeTerm, O: iri(fmt.Sprintf("C%d", c))})
		}
	}
	ts = append(ts,
		rdf.Triple{S: iri("C0"), P: rdf.SubClassTerm, O: iri("C1")},
		rdf.Triple{S: iri("C1"), P: rdf.SubClassTerm, O: iri("C2")},
	)
	return ts
}

// resultKey flattens a result set into an order-independent multiset key.
func resultKey(res *Result) string {
	rows := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var b strings.Builder
		for _, t := range row {
			b.WriteString(string(t))
			b.WriteByte('\x1f')
		}
		rows[i] = b.String()
	}
	sort.Strings(rows)
	return strings.Join(rows, "\x1e")
}

// TestDifferentialUpdates drives random insert/delete interleavings through
// a Mutable-backed engine and checks, after every batch, that each query
// returns exactly what a fresh engine over the net triple set returns —
// under both transformations, both matching semantics, and with the NEC
// reduction on and off. Prepared queries are prepared ONCE against the
// initial snapshot and reused across every update, exercising the
// per-snapshot plan re-resolution.
func TestDifferentialUpdates(t *testing.T) {
	universe := updateTriverse()
	for _, mode := range []transform.Mode{transform.Direct, transform.TypeAware} {
		for _, sem := range []core.Semantics{core.Homomorphism, core.Isomorphism} {
			for _, noNEC := range []bool{false, true} {
				name := fmt.Sprintf("%v/%v/nec=%v", mode, sem, !noNEC)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(42))
					opts := core.Optimized()
					opts.NoNEC = noNEC
					opts.Workers = 1

					var init []rdf.Triple
					net := map[rdf.Triple]struct{}{}
					for _, tr := range universe {
						if rng.Intn(2) == 0 {
							init = append(init, tr)
							net[tr] = struct{}{}
						}
					}
					mut := transform.NewMutable(init, mode)
					live := New(mut.Current(), opts)
					live.SetSemantics(sem)

					prepared := make([]*PreparedQuery, len(updateQueries))
					for i, q := range updateQueries {
						pq, err := live.Prepare(q)
						if err != nil {
							t.Fatalf("prepare %q: %v", q, err)
						}
						prepared[i] = pq
					}

					check := func(step int) {
						list := make([]rdf.Triple, 0, len(net))
						for tr := range net {
							list = append(list, tr)
						}
						fresh := New(transform.Build(list, mode), opts)
						fresh.SetSemantics(sem)
						for i, q := range updateQueries {
							liveRes, err := prepared[i].Exec(t.Context())
							if err != nil {
								t.Fatalf("step %d: live %q: %v", step, q, err)
							}
							freshRes, err := fresh.Query(q)
							if err != nil {
								t.Fatalf("step %d: fresh %q: %v", step, q, err)
							}
							if lk, fk := resultKey(liveRes), resultKey(freshRes); lk != fk {
								t.Fatalf("step %d: %q diverged:\nlive  (%d rows) %q\nfresh (%d rows) %q",
									step, q, len(liveRes.Rows), lk, len(freshRes.Rows), fk)
							}
							// The count path must agree with materialization.
							n, err := prepared[i].Count(t.Context())
							if err != nil {
								t.Fatalf("step %d: count %q: %v", step, q, err)
							}
							if n != len(liveRes.Rows) {
								t.Fatalf("step %d: %q Count=%d, Exec=%d rows", step, q, n, len(liveRes.Rows))
							}
						}
					}
					check(-1)

					for step := 0; step < 12; step++ {
						var ins, del []rdf.Triple
						for i := 0; i < 1+rng.Intn(5); i++ {
							tr := universe[rng.Intn(len(universe))]
							if rng.Intn(2) == 0 {
								ins = append(ins, tr)
								net[tr] = struct{}{}
							} else {
								del = append(del, tr)
								delete(net, tr)
							}
						}
						snap, _ := mut.Apply(ins, del)
						live.SetData(snap)
						check(step)
						if step == 7 {
							live.SetData(mut.Compact())
							check(step)
						}
					}
				})
			}
		}
	}
}

// TestSnapshotPinnedAcrossUpdate checks engine-level snapshot isolation:
// an execution pins the snapshot current at its start and never observes a
// concurrent SetData.
func TestSnapshotPinnedAcrossUpdate(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://u/" + s) }
	tr := func(s, p, o string) rdf.Triple { return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)} }

	mut := transform.NewMutable([]rdf.Triple{tr("a", "p", "b"), tr("b", "p", "c")}, transform.TypeAware)
	e := New(mut.Current(), core.Optimized())
	pq, err := e.Prepare(`SELECT ?x ?y WHERE { ?x <http://u/p> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}

	rows := pq.Select(t.Context())
	defer rows.Close()

	// Update and compact while the cursor is open but undrained.
	snap, n := mut.Apply([]rdf.Triple{tr("c", "p", "d")}, []rdf.Triple{tr("a", "p", "b")})
	if n != 2 {
		t.Fatalf("applied %d, want 2", n)
	}
	e.SetData(snap)
	e.SetData(mut.Compact())

	got := 0
	seen := map[string]bool{}
	for rows.Next() {
		got++
		seen[string(rows.Row()[0])+"|"+string(rows.Row()[1])] = true
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if got != 2 || !seen["<http://u/a>|<http://u/b>"] || !seen["<http://u/b>|<http://u/c>"] {
		t.Fatalf("pre-update cursor saw %v", seen)
	}

	// A fresh execution sees the post-update state.
	res, err := pq.Exec(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-update rows = %d, want 2", len(res.Rows))
	}
	post := map[string]bool{}
	for _, r := range res.Rows {
		post[string(r[0])+"|"+string(r[1])] = true
	}
	if !post["<http://u/b>|<http://u/c>"] || !post["<http://u/c>|<http://u/d>"] {
		t.Fatalf("post-update rows = %v", post)
	}
}
