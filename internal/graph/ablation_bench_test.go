package graph

// Ablation benchmarks for the storage design choices DESIGN.md calls out:
// the neighbor-type grouped adjacency (paper Fig. 9) against the flat
// alternative a naive port would use. The exact-group lookup is the
// operation ExploreCandidateRegion performs per expansion step, so its
// advantage compounds across the whole match.

import (
	"math/rand"
	"testing"

	"repro/internal/intset"
)

// buildSkewed builds a graph shaped like a type-aware LUBM neighborhood:
// one hub with many neighbors spread over a few (edge label, vertex label)
// groups of very different sizes.
func buildSkewed() (*Graph, uint32) {
	const (
		hub        = 0
		nEdgeLabel = 6
		nVtxLabel  = 8
	)
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	next := uint32(1)
	for el := uint32(0); el < nEdgeLabel; el++ {
		// Group sizes: label 0 is huge, the rest small — LUBM's
		// takesCourse vs headOf skew.
		size := 20
		if el == 0 {
			size = 4000
		}
		for i := 0; i < size; i++ {
			v := next
			next++
			b.AddVertexLabel(v, uint32(rng.Intn(nVtxLabel)))
			b.AddEdge(hub, el, v)
		}
	}
	return b.Build(), hub
}

// BenchmarkAdjExactGroup is the design in use: one binary search to the
// (el, vl) group, zero scanning.
func BenchmarkAdjExactGroup(b *testing.B) {
	g, hub := buildSkewed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.Adj(hub, Out, 3, 2)) == 0 {
			// Group sizes vary with the seed; membership is irrelevant,
			// only the lookup cost matters.
			_ = i
		}
	}
}

// BenchmarkAdjScanAndFilter is the ablated alternative: take the whole
// edge-label run and filter by neighbor label, the cost a flat adjacency
// representation pays on every expansion against the big group.
func BenchmarkAdjScanAndFilter(b *testing.B) {
	g, hub := buildSkewed()
	var buf []uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.AdjEdgeLabel(buf[:0], hub, Out, 0)
		n := 0
		for _, v := range buf {
			if g.HasLabel(v, 2) {
				n++
			}
		}
	}
}

// BenchmarkGroupSize measures the NLF filter's primitive (a group size
// probe without materializing the members).
func BenchmarkGroupSize(b *testing.B) {
	g, hub := buildSkewed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GroupSize(hub, Out, 0, 2)
	}
}

// BenchmarkIntersectAdjVsProbe contrasts the two IsJoinable strategies of
// the paper's +INT discussion on this graph: one k-way intersection of a
// candidate list with the hub's adjacency, vs per-candidate binary-search
// probes.
func BenchmarkIntersectAdjVsProbe(b *testing.B) {
	g, hub := buildSkewed()
	adj := g.AdjEdgeLabel(nil, hub, Out, 0)
	// Candidate list: every 10th member plus misses.
	var cands []uint32
	for i, v := range adj {
		if i%10 == 0 {
			cands = append(cands, v, v+100000)
		}
	}
	b.Run("intersection", func(b *testing.B) {
		var dst []uint32
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = intset.Intersect2(dst[:0], cands, adj)
		}
	})
	b.Run("probes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, c := range cands {
				if intset.Contains(adj, c) {
					n++
				}
			}
		}
	})
}
