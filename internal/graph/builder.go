package graph

import (
	"sort"

	"repro/internal/intset"
)

// edge is a builder-side (subject, edge label, object) record.
type edge struct {
	s, el, o uint32
}

// Builder accumulates vertices, vertex labels, and edges, then freezes them
// into an immutable Graph. Vertex IDs must be dense (the builder grows the
// vertex space to the largest ID seen).
type Builder struct {
	numVertices int
	labels      []edge // reuse edge as (vertex, label, _) pairs: s=vertex, el=label
	edges       []edge
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// EnsureVertex grows the vertex space to include v.
func (b *Builder) EnsureVertex(v uint32) {
	if int(v) >= b.numVertices {
		b.numVertices = int(v) + 1
	}
}

// AddVertexLabel attaches label l to vertex v.
func (b *Builder) AddVertexLabel(v, l uint32) {
	b.EnsureVertex(v)
	b.labels = append(b.labels, edge{s: v, el: l})
}

// AddEdge records the edge s --el--> o. Duplicate edges collapse at Build.
func (b *Builder) AddEdge(s, el, o uint32) {
	b.EnsureVertex(s)
	b.EnsureVertex(o)
	b.edges = append(b.edges, edge{s: s, el: el, o: o})
}

// NumEdgesAdded reports how many AddEdge calls were made (before dedup).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build freezes the builder into a Graph. The builder must not be used
// afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{numVertices: b.numVertices}

	// --- Vertex labels: sort (vertex, label), dedup, CSR. ---
	sort.Slice(b.labels, func(i, j int) bool {
		if b.labels[i].s != b.labels[j].s {
			return b.labels[i].s < b.labels[j].s
		}
		return b.labels[i].el < b.labels[j].el
	})
	b.labels = dedupEdges(b.labels)
	g.labelOff = make([]int, b.numVertices+1)
	g.labels = make([]uint32, len(b.labels))
	maxLabel := -1
	for i, e := range b.labels {
		g.labelOff[e.s+1]++
		g.labels[i] = e.el
		if int(e.el) > maxLabel {
			maxLabel = int(e.el)
		}
	}
	for v := 0; v < b.numVertices; v++ {
		g.labelOff[v+1] += g.labelOff[v]
	}
	g.numLabels = maxLabel + 1

	// --- Inverse vertex-label list. ---
	g.invOff = make([]int, g.numLabels+1)
	for _, e := range b.labels {
		g.invOff[e.el+1]++
	}
	for l := 0; l < g.numLabels; l++ {
		g.invOff[l+1] += g.invOff[l]
	}
	g.inv = make([]uint32, len(b.labels))
	fill := make([]int, g.numLabels)
	for _, e := range b.labels { // b.labels sorted by vertex -> inv lists sorted
		g.inv[g.invOff[e.el]+fill[e.el]] = e.s
		fill[e.el]++
	}

	// --- Edges: sort, dedup, count degrees and edge-label space. ---
	sort.Slice(b.edges, func(i, j int) bool { return edgeLess(b.edges[i], b.edges[j]) })
	b.edges = dedupTriples(b.edges)
	g.numEdges = len(b.edges)
	g.outDeg = make([]int32, b.numVertices)
	g.inDeg = make([]int32, b.numVertices)
	maxEL := -1
	for _, e := range b.edges {
		g.outDeg[e.s]++
		g.inDeg[e.o]++
		if int(e.el) > maxEL {
			maxEL = int(e.el)
		}
	}
	g.numEdgeLabels = maxEL + 1
	edgeLabelEdges := make([]int, g.numEdgeLabels)
	for _, e := range b.edges {
		edgeLabelEdges[e.el]++
	}

	// --- Neighbor-type grouped adjacency, both directions. ---
	g.out = buildAdjacency(b.numVertices, b.edges, g, Out)
	g.in = buildAdjacency(b.numVertices, b.edges, g, In)

	// --- Predicate index. ---
	g.predSubOff, g.predSub = buildPredicateIndex(g.numEdgeLabels, b.edges, true)
	g.predObjOff, g.predObj = buildPredicateIndex(g.numEdgeLabels, b.edges, false)

	// --- Statistics and neighborhood signatures, from the frozen arrays. ---
	g.finishStats(edgeLabelEdges)
	g.computeSignatures()

	return g
}

func edgeLess(a, b edge) bool {
	if a.s != b.s {
		return a.s < b.s
	}
	if a.el != b.el {
		return a.el < b.el
	}
	return a.o < b.o
}

// dedupEdges removes adjacent duplicates of (s, el) pairs (labels).
func dedupEdges(es []edge) []edge {
	if len(es) < 2 {
		return es
	}
	w := 1
	for i := 1; i < len(es); i++ {
		if es[i].s != es[w-1].s || es[i].el != es[w-1].el {
			es[w] = es[i]
			w++
		}
	}
	return es[:w]
}

// dedupTriples removes adjacent duplicate (s, el, o) edges.
func dedupTriples(es []edge) []edge {
	if len(es) < 2 {
		return es
	}
	w := 1
	for i := 1; i < len(es); i++ {
		if es[i] != es[w-1] {
			es[w] = es[i]
			w++
		}
	}
	return es[:w]
}

// adjEntry is one (owner, key, neighbor) row of the grouped adjacency under
// construction. A single edge expands to one row per neighbor label.
type adjEntry struct {
	owner    uint32
	key      NeighborType
	neighbor uint32
}

func buildAdjacency(numVertices int, edges []edge, g *Graph, d Dir) adjacency {
	// Expand each edge into one entry per neighbor label (paper: a neighbor
	// with labels {A,B} under edge a files into groups (a,A) and (a,B)).
	entries := make([]adjEntry, 0, len(edges)*2)
	for _, e := range edges {
		owner, nb := e.s, e.o
		if d == In {
			owner, nb = e.o, e.s
		}
		ls := g.Labels(nb)
		if len(ls) == 0 {
			entries = append(entries, adjEntry{owner, NeighborType{e.el, NoLabel}, nb})
			continue
		}
		for _, l := range ls {
			entries = append(entries, adjEntry{owner, NeighborType{e.el, l}, nb})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.owner != b.owner {
			return a.owner < b.owner
		}
		if a.key != b.key {
			return ntLess(a.key, b.key)
		}
		return a.neighbor < b.neighbor
	})

	var a adjacency
	a.vtxGroupOff = make([]int, numVertices+1)
	a.adj = make([]uint32, len(entries))
	for i, e := range entries {
		a.adj[i] = e.neighbor
		newGroup := i == 0 || entries[i-1].owner != e.owner || entries[i-1].key != e.key
		if newGroup {
			a.groupKeys = append(a.groupKeys, e.key)
			a.groupEnd = append(a.groupEnd, i+1)
			a.vtxGroupOff[e.owner+1]++
		} else {
			a.groupEnd[len(a.groupEnd)-1] = i + 1
		}
	}
	for v := 0; v < numVertices; v++ {
		a.vtxGroupOff[v+1] += a.vtxGroupOff[v]
	}
	return a
}

func buildPredicateIndex(numEdgeLabels int, edges []edge, subjects bool) ([]int, []uint32) {
	perLabel := make([][]uint32, numEdgeLabels)
	for _, e := range edges {
		v := e.s
		if !subjects {
			v = e.o
		}
		perLabel[e.el] = append(perLabel[e.el], v)
	}
	off := make([]int, numEdgeLabels+1)
	var flat []uint32
	for el := 0; el < numEdgeLabels; el++ {
		s := intset.Dedup(perLabel[el])
		flat = append(flat, s...)
		off[el+1] = len(flat)
	}
	return off, flat
}
