// Binary snapshot codec for the frozen CSR arrays.
//
// The encoder writes every array the accessors index into; the decoder
// treats the bytes as untrusted and re-validates the structural invariants
// the accessors rely on — CSR offset arrays must be monotone and end at
// their flat array's length, adjacency group ends must be nondecreasing,
// and every stored vertex ID must be in range. These checks are
// load-bearing: Labels, Adj, and friends slice with offset pairs and would
// panic on a negative-length slice if a corrupt snapshot were installed
// unchecked. Statistics and neighborhood signatures are cheap to recompute
// from the validated arrays, so they are derived on decode rather than
// stored (only the per-edge-label edge counts, which need the pre-expansion
// edge list, travel in the snapshot).
package graph

import (
	"fmt"

	"repro/internal/wire"
)

// CorruptSnapshotError reports a malformed or internally inconsistent graph
// snapshot. Decoding untrusted bytes returns it instead of panicking.
type CorruptSnapshotError struct {
	Off int    // byte offset within the snapshot section, where known
	Msg string // what invariant was violated
}

func (e *CorruptSnapshotError) Error() string {
	return fmt.Sprintf("graph: corrupt snapshot: %s (offset %d)", e.Msg, e.Off)
}

// AppendSnapshot appends the graph's binary snapshot section to dst. The
// encoding is deterministic: the same graph always produces the same bytes.
func (g *Graph) AppendSnapshot(dst []byte) []byte {
	dst = wire.AppendInts(dst, []int{g.numVertices, g.numEdges, g.numLabels, g.numEdgeLabels})

	dst = wire.AppendInts(dst, g.labelOff)
	dst = wire.AppendU32s(dst, g.labels)
	dst = wire.AppendInts(dst, g.invOff)
	dst = wire.AppendU32s(dst, g.inv)

	dst = appendAdjacency(dst, &g.out)
	dst = appendAdjacency(dst, &g.in)

	dst = appendDegrees(dst, g.outDeg)
	dst = appendDegrees(dst, g.inDeg)

	dst = wire.AppendInts(dst, g.predSubOff)
	dst = wire.AppendU32s(dst, g.predSub)
	dst = wire.AppendInts(dst, g.predObjOff)
	dst = wire.AppendU32s(dst, g.predObj)

	dst = wire.AppendInts(dst, g.stats.EdgeLabelEdges)
	return dst
}

func appendAdjacency(dst []byte, a *adjacency) []byte {
	dst = wire.AppendInts(dst, a.vtxGroupOff)
	keys := make([]uint32, 0, len(a.groupKeys)*2)
	for _, k := range a.groupKeys {
		keys = append(keys, k.EdgeLabel, k.VertexLabel)
	}
	dst = wire.AppendU32s(dst, keys)
	dst = wire.AppendInts(dst, a.groupEnd)
	return wire.AppendU32s(dst, a.adj)
}

func appendDegrees(dst []byte, deg []int32) []byte {
	vs := make([]uint32, len(deg))
	for i, d := range deg {
		vs[i] = uint32(d)
	}
	return wire.AppendU32s(dst, vs)
}

// DecodeSnapshot rebuilds a Graph from a section written by AppendSnapshot.
// The input is untrusted: any truncation, trailing garbage, or violated
// structural invariant returns a *CorruptSnapshotError — never a panic.
func DecodeSnapshot(data []byte) (*Graph, error) {
	r := wire.NewReader(data)
	g := &Graph{}
	dims := r.Ints("dims")
	var err error
	fail := func(msg string) (*Graph, error) {
		return nil, &CorruptSnapshotError{Off: r.Off(), Msg: msg}
	}

	// Dims travel as a 4-element offset-style array purely for the reader's
	// overflow checks; semantic bounds are validated against the arrays below.
	if dims == nil {
		dims = []int{0, 0, 0, 0}
	}
	if len(dims) != 4 {
		return fail(fmt.Sprintf("expected 4 dimensions, got %d", len(dims)))
	}
	g.numVertices, g.numEdges, g.numLabels, g.numEdgeLabels = dims[0], dims[1], dims[2], dims[3]

	g.labelOff = r.Ints("labelOff")
	g.labels = r.U32s("labels")
	g.invOff = r.Ints("invOff")
	g.inv = r.U32s("inv")

	if g.out, err = decodeAdjacency(r, "out"); err != nil {
		return nil, err
	}
	if g.in, err = decodeAdjacency(r, "in"); err != nil {
		return nil, err
	}

	g.outDeg = decodeDegrees(r, "outDeg")
	g.inDeg = decodeDegrees(r, "inDeg")

	g.predSubOff = r.Ints("predSubOff")
	g.predSub = r.U32s("predSub")
	g.predObjOff = r.Ints("predObjOff")
	g.predObj = r.U32s("predObj")

	edgeLabelEdges := r.Ints("edgeLabelEdges")

	if off, msg, failed := r.Failed(); failed {
		return nil, &CorruptSnapshotError{Off: off, Msg: msg}
	}
	if r.Remaining() != 0 {
		return fail(fmt.Sprintf("%d trailing bytes after graph snapshot", r.Remaining()))
	}

	// Structural validation: everything the accessors slice or index with.
	if err := checkCSR(g.labelOff, g.numVertices, len(g.labels), "labelOff"); err != nil {
		return nil, err
	}
	if err := checkIDs(g.labels, uint32(g.numLabels), "vertex label"); err != nil {
		return nil, err
	}
	if err := checkCSR(g.invOff, g.numLabels, len(g.inv), "invOff"); err != nil {
		return nil, err
	}
	if err := checkIDs(g.inv, uint32(g.numVertices), "inverse-list vertex"); err != nil {
		return nil, err
	}
	if err := checkAdjacency(&g.out, g.numVertices, "out"); err != nil {
		return nil, err
	}
	if err := checkAdjacency(&g.in, g.numVertices, "in"); err != nil {
		return nil, err
	}
	if len(g.outDeg) != g.numVertices || len(g.inDeg) != g.numVertices {
		return fail("degree array length mismatch")
	}
	if err := checkCSR(g.predSubOff, g.numEdgeLabels, len(g.predSub), "predSubOff"); err != nil {
		return nil, err
	}
	if err := checkIDs(g.predSub, uint32(g.numVertices), "predicate subject"); err != nil {
		return nil, err
	}
	if err := checkCSR(g.predObjOff, g.numEdgeLabels, len(g.predObj), "predObjOff"); err != nil {
		return nil, err
	}
	if err := checkIDs(g.predObj, uint32(g.numVertices), "predicate object"); err != nil {
		return nil, err
	}
	if len(edgeLabelEdges) != g.numEdgeLabels {
		return fail("edgeLabelEdges length mismatch")
	}
	// Vertex IDs are uint32; a larger claimed space could not be indexed.
	if uint64(g.numVertices) > uint64(NoLabel) {
		return fail("vertex count exceeds the uint32 ID space")
	}

	// Derived data: cheap single passes over now-validated arrays.
	g.finishStats(edgeLabelEdges)
	g.computeSignatures()
	return g, nil
}

func decodeAdjacency(r *wire.Reader, name string) (adjacency, error) {
	var a adjacency
	a.vtxGroupOff = r.Ints(name + ".vtxGroupOff")
	flat := r.U32s(name + ".groupKeys")
	if len(flat)%2 != 0 {
		return a, &CorruptSnapshotError{Off: r.Off(), Msg: name + ": odd group-key array"}
	}
	a.groupKeys = make([]NeighborType, len(flat)/2)
	for i := range a.groupKeys {
		a.groupKeys[i] = NeighborType{EdgeLabel: flat[2*i], VertexLabel: flat[2*i+1]}
	}
	a.groupEnd = r.Ints(name + ".groupEnd")
	a.adj = r.U32s(name + ".adj")
	return a, nil
}

func decodeDegrees(r *wire.Reader, name string) []int32 {
	vs := r.U32s(name)
	deg := make([]int32, len(vs))
	for i, v := range vs {
		deg[i] = int32(v)
	}
	return deg
}

// checkCSR validates an offset array over n entries indexing a flat array:
// length n+1, starts at 0, monotone nondecreasing, ends at flatLen. These
// are exactly the conditions under which off[i]:off[i+1] slicing cannot
// panic.
func checkCSR(off []int, n, flatLen int, name string) error {
	if n < 0 || len(off) != n+1 {
		return &CorruptSnapshotError{Msg: fmt.Sprintf("%s: length %d, want %d", name, len(off), n+1)}
	}
	if off[0] != 0 {
		return &CorruptSnapshotError{Msg: fmt.Sprintf("%s: does not start at 0", name)}
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return &CorruptSnapshotError{Msg: fmt.Sprintf("%s: offsets decrease at %d", name, i)}
		}
	}
	if off[n] != flatLen {
		return &CorruptSnapshotError{Msg: fmt.Sprintf("%s: ends at %d, flat array has %d", name, off[n], flatLen)}
	}
	return nil
}

func checkIDs(vals []uint32, limit uint32, name string) error {
	for i, v := range vals {
		if v >= limit {
			return &CorruptSnapshotError{Msg: fmt.Sprintf("%s ID %d at index %d out of range (limit %d)", name, v, i, limit)}
		}
	}
	return nil
}

func checkAdjacency(a *adjacency, numVertices int, name string) error {
	if err := checkCSR(a.vtxGroupOff, numVertices, len(a.groupKeys), name+".vtxGroupOff"); err != nil {
		return err
	}
	if len(a.groupEnd) != len(a.groupKeys) {
		return &CorruptSnapshotError{Msg: fmt.Sprintf("%s: %d group ends for %d keys", name, len(a.groupEnd), len(a.groupKeys))}
	}
	prev := 0
	for i, e := range a.groupEnd {
		if e < prev {
			return &CorruptSnapshotError{Msg: fmt.Sprintf("%s: group ends decrease at %d", name, i)}
		}
		prev = e
	}
	if prev != len(a.adj) {
		return &CorruptSnapshotError{Msg: fmt.Sprintf("%s: groups end at %d, adjacency has %d", name, prev, len(a.adj))}
	}
	return checkIDs(a.adj, uint32(numVertices), name+" neighbor")
}
