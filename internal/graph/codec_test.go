package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildCodecGraph assembles a graph with multi-label vertices, unlabeled
// vertices, multi-edges, and an isolated vertex — every shape the codec
// must carry.
func buildCodecGraph() *Graph {
	b := NewBuilder()
	b.AddVertexLabel(0, 0)
	b.AddVertexLabel(0, 1)
	b.AddVertexLabel(1, 0)
	b.AddVertexLabel(3, 2)
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 2)
	b.AddEdge(2, 0, 0)
	b.AddEdge(2, 1, 3)
	b.AddEdge(3, 0, 3) // self loop
	b.EnsureVertex(5)  // isolated, no labels
	return b.Build()
}

func assertGraphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() ||
		got.NumLabels() != want.NumLabels() || got.NumEdgeLabels() != want.NumEdgeLabels() {
		t.Fatalf("dims = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
			got.NumVertices(), got.NumEdges(), got.NumLabels(), got.NumEdgeLabels(),
			want.NumVertices(), want.NumEdges(), want.NumLabels(), want.NumEdgeLabels())
	}
	for v := uint32(0); int(v) < want.NumVertices(); v++ {
		if !reflect.DeepEqual(got.Labels(v), want.Labels(v)) {
			t.Errorf("Labels(%d) = %v, want %v", v, got.Labels(v), want.Labels(v))
		}
		if got.Signature(v) != want.Signature(v) {
			t.Errorf("Signature(%d) differs", v)
		}
		for _, d := range [2]Dir{Out, In} {
			if got.Degree(v, d) != want.Degree(v, d) {
				t.Errorf("Degree(%d, %s) = %d, want %d", v, d, got.Degree(v, d), want.Degree(v, d))
			}
			keys := want.NeighborTypes(v, d)
			if !reflect.DeepEqual(got.NeighborTypes(v, d), keys) {
				t.Errorf("NeighborTypes(%d, %s) differ", v, d)
			}
			for _, k := range keys {
				if !reflect.DeepEqual(got.Adj(v, d, k.EdgeLabel, k.VertexLabel), want.Adj(v, d, k.EdgeLabel, k.VertexLabel)) {
					t.Errorf("Adj(%d, %s, %v) differs", v, d, k)
				}
			}
		}
	}
	for l := uint32(0); int(l) < want.NumLabels(); l++ {
		if !reflect.DeepEqual(got.VerticesWithLabel(l), want.VerticesWithLabel(l)) {
			t.Errorf("VerticesWithLabel(%d) differs", l)
		}
	}
	for el := uint32(0); int(el) < want.NumEdgeLabels(); el++ {
		if !reflect.DeepEqual(got.SubjectsOf(el), want.SubjectsOf(el)) {
			t.Errorf("SubjectsOf(%d) differs", el)
		}
		if !reflect.DeepEqual(got.ObjectsOf(el), want.ObjectsOf(el)) {
			t.Errorf("ObjectsOf(%d) differs", el)
		}
	}
	if !reflect.DeepEqual(got.Stats(), want.Stats()) {
		t.Errorf("Stats differ: %+v vs %+v", got.Stats(), want.Stats())
	}
}

func TestGraphSnapshotRoundTrip(t *testing.T) {
	want := buildCodecGraph()
	blob := want.AppendSnapshot(nil)
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	assertGraphsEqual(t, got, want)

	if blob2 := want.AppendSnapshot(nil); string(blob2) != string(blob) {
		t.Error("encoding is not deterministic")
	}
}

func TestGraphSnapshotEmpty(t *testing.T) {
	want := NewBuilder().Build()
	got, err := DecodeSnapshot(want.AppendSnapshot(nil))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	assertGraphsEqual(t, got, want)
}

// Truncation at every byte must produce a typed error, never a panic.
func TestGraphSnapshotTruncation(t *testing.T) {
	blob := buildCodecGraph().AppendSnapshot(nil)
	for cut := 0; cut < len(blob); cut++ {
		g, err := DecodeSnapshot(blob[:cut])
		if err == nil {
			t.Fatalf("cut %d: decoded without error", cut)
		}
		if _, ok := err.(*CorruptSnapshotError); !ok {
			t.Fatalf("cut %d: error type %T", cut, err)
		}
		if g != nil {
			t.Fatalf("cut %d: non-nil graph with error", cut)
		}
	}
}

// Deterministic random byte corruption: decode must either fail cleanly or
// succeed; using the accessors on a successful decode must not panic (the
// structural validation guarantees slice safety even when values changed).
func TestGraphSnapshotBitFlips(t *testing.T) {
	blob := buildCodecGraph().AppendSnapshot(nil)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), blob...)
		mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		g, err := DecodeSnapshot(mut)
		if err != nil {
			continue
		}
		for v := uint32(0); int(v) < g.NumVertices(); v++ {
			g.Labels(v)
			for _, d := range [2]Dir{Out, In} {
				for _, k := range g.NeighborTypes(v, d) {
					g.Adj(v, d, k.EdgeLabel, k.VertexLabel)
				}
			}
		}
	}
}
