// Package graph implements the in-memory labeled-graph storage used by the
// matching engine: per-vertex adjacency segmented into neighbor-type groups
// (pairs of edge label and neighbor vertex label, paper §4.2 Fig. 9), the
// inverse vertex-label list, and the predicate index.
//
// Everything is stored in flat slices with CSR-style offset arrays. A graph
// with millions of vertices costs a handful of allocations, which keeps Go's
// GC out of the hot path — the main risk the paper's in-memory design faces
// when transplanted to a managed runtime.
package graph

import (
	"sort"

	"repro/internal/intset"
)

// NoLabel marks a blank vertex label or edge label inside neighbor-type
// keys. It equals rdf.NoID but is re-declared here so the package stands on
// its own.
const NoLabel = ^uint32(0)

// Dir selects the adjacency direction.
type Dir uint8

const (
	// Out follows edges from subject to object.
	Out Dir = iota
	// In follows edges from object to subject.
	In
)

// Reverse returns the opposite direction.
func (d Dir) Reverse() Dir {
	if d == Out {
		return In
	}
	return Out
}

func (d Dir) String() string {
	if d == Out {
		return "out"
	}
	return "in"
}

// NeighborType is the adjacency group key: the label of the connecting edge
// and one label of the neighbor (NoLabel when the neighbor has none).
type NeighborType struct {
	EdgeLabel   uint32
	VertexLabel uint32
}

func ntLess(a, b NeighborType) bool {
	if a.EdgeLabel != b.EdgeLabel {
		return a.EdgeLabel < b.EdgeLabel
	}
	return a.VertexLabel < b.VertexLabel
}

// adjacency is one direction of the neighbor-type grouped adjacency list.
// Groups of vertex v occupy groupKeys[vtxGroupOff[v]:vtxGroupOff[v+1]],
// sorted by key; group g's members occupy adj[start:groupEnd[g]] where start
// is the previous group's end (the paper's "end offsets" layout).
type adjacency struct {
	vtxGroupOff []int
	groupKeys   []NeighborType
	groupEnd    []int
	adj         []uint32
}

func (a *adjacency) groupSpan(g int) (int, int) {
	start := 0
	if g > 0 {
		start = a.groupEnd[g-1]
	}
	return start, a.groupEnd[g]
}

// group returns the member slice for group index g.
func (a *adjacency) group(g int) []uint32 {
	s, e := a.groupSpan(g)
	return a.adj[s:e]
}

// find locates the group of v with the exact key, or -1.
func (a *adjacency) find(v uint32, key NeighborType) int {
	lo, hi := a.vtxGroupOff[v], a.vtxGroupOff[v+1]
	g := lo + sort.Search(hi-lo, func(i int) bool { return !ntLess(a.groupKeys[lo+i], key) })
	if g < hi && a.groupKeys[g] == key {
		return g
	}
	return -1
}

// Graph is an immutable labeled multigraph over dense uint32 vertex IDs.
// Build one with a Builder.
type Graph struct {
	numVertices   int
	numEdges      int
	numLabels     int
	numEdgeLabels int

	labelOff []int // CSR: vertex -> sorted label IDs
	labels   []uint32

	invOff []int // CSR: label -> sorted vertex IDs
	inv    []uint32

	out adjacency
	in  adjacency

	outDeg []int32 // true out-degree (edge count, not group-entry count)
	inDeg  []int32

	predSubOff []int // CSR: edge label -> sorted distinct subject IDs
	predSub    []uint32
	predObjOff []int
	predObj    []uint32

	stats *Stats   // precomputed cardinality statistics
	sig   []uint64 // per-vertex neighborhood signatures
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges reports the number of distinct (s, label, o) edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumLabels reports the size of the vertex-label space.
func (g *Graph) NumLabels() int { return g.numLabels }

// NumEdgeLabels reports the size of the edge-label space.
func (g *Graph) NumEdgeLabels() int { return g.numEdgeLabels }

// Labels returns the sorted label set of v. Callers must not mutate it.
func (g *Graph) Labels(v uint32) []uint32 {
	return g.labels[g.labelOff[v]:g.labelOff[v+1]]
}

// HasLabel reports whether v carries label l.
func (g *Graph) HasLabel(v uint32, l uint32) bool {
	return intset.Contains(g.Labels(v), l)
}

// HasAllLabels reports whether v carries every label in ls.
func (g *Graph) HasAllLabels(v uint32, ls []uint32) bool {
	for _, l := range ls {
		if !g.HasLabel(v, l) {
			return false
		}
	}
	return true
}

// VerticesWithLabel returns the sorted vertex IDs carrying label l — the
// inverse vertex-label list of the paper. Callers must not mutate it.
func (g *Graph) VerticesWithLabel(l uint32) []uint32 {
	if int(l) >= g.numLabels {
		return nil
	}
	return g.inv[g.invOff[l]:g.invOff[l+1]]
}

// Degree returns the edge count of v in direction d.
func (g *Graph) Degree(v uint32, d Dir) int {
	if d == Out {
		return int(g.outDeg[v])
	}
	return int(g.inDeg[v])
}

func (g *Graph) dir(d Dir) *adjacency {
	if d == Out {
		return &g.out
	}
	return &g.in
}

// Adj returns the sorted neighbors of v in direction d connected by edge
// label el whose label set contains vl — one adjacency group (paper Fig. 9,
// adj(v,(el,vl))). vl == NoLabel selects neighbors with an empty label set.
// Callers must not mutate the result.
func (g *Graph) Adj(v uint32, d Dir, el, vl uint32) []uint32 {
	a := g.dir(d)
	gi := a.find(v, NeighborType{el, vl})
	if gi < 0 {
		return nil
	}
	return a.group(gi)
}

// AdjEdgeLabel appends to dst the union of v's neighbors in direction d over
// edge label el, for any neighbor label (el fixed, vertex label blank).
func (g *Graph) AdjEdgeLabel(dst []uint32, v uint32, d Dir, el uint32) []uint32 {
	a := g.dir(d)
	lo, hi := a.vtxGroupOff[v], a.vtxGroupOff[v+1]
	first := lo + sort.Search(hi-lo, func(i int) bool { return a.groupKeys[lo+i].EdgeLabel >= el })
	var sets [][]uint32
	for gi := first; gi < hi && a.groupKeys[gi].EdgeLabel == el; gi++ {
		sets = append(sets, a.group(gi))
	}
	return intset.UnionK(dst, sets...)
}

// AdjAny appends to dst the union of all neighbors of v in direction d
// (both labels blank).
func (g *Graph) AdjAny(dst []uint32, v uint32, d Dir) []uint32 {
	a := g.dir(d)
	lo, hi := a.vtxGroupOff[v], a.vtxGroupOff[v+1]
	var sets [][]uint32
	for gi := lo; gi < hi; gi++ {
		sets = append(sets, a.group(gi))
	}
	return intset.UnionK(dst, sets...)
}

// AdjVertexLabel appends to dst the union of v's neighbors in direction d
// that carry label vl, over any edge label (edge label blank).
func (g *Graph) AdjVertexLabel(dst []uint32, v uint32, d Dir, vl uint32) []uint32 {
	a := g.dir(d)
	lo, hi := a.vtxGroupOff[v], a.vtxGroupOff[v+1]
	var sets [][]uint32
	for gi := lo; gi < hi; gi++ {
		if a.groupKeys[gi].VertexLabel == vl {
			sets = append(sets, a.group(gi))
		}
	}
	return intset.UnionK(dst, sets...)
}

// HasEdge reports whether the edge v --el--> w exists. el == NoLabel matches
// any edge label.
func (g *Graph) HasEdge(v, w uint32, el uint32) bool {
	if el == NoLabel {
		return len(g.EdgeLabelsBetween(nil, v, w)) > 0
	}
	vl := g.groupLabelOf(w)
	return intset.Contains(g.Adj(v, Out, el, vl), w)
}

// groupLabelOf picks the group key label under which w is filed: its first
// label, or NoLabel when it has none.
func (g *Graph) groupLabelOf(w uint32) uint32 {
	ls := g.Labels(w)
	if len(ls) == 0 {
		return NoLabel
	}
	return ls[0]
}

// EdgeLabelsBetween appends to dst the labels of all edges v --?--> w.
func (g *Graph) EdgeLabelsBetween(dst []uint32, v, w uint32) []uint32 {
	a := &g.out
	vl := g.groupLabelOf(w)
	lo, hi := a.vtxGroupOff[v], a.vtxGroupOff[v+1]
	for gi := lo; gi < hi; gi++ {
		if a.groupKeys[gi].VertexLabel != vl {
			continue
		}
		if intset.Contains(a.group(gi), w) {
			dst = append(dst, a.groupKeys[gi].EdgeLabel)
		}
	}
	return dst
}

// NeighborTypes returns the group keys of v in direction d — the basis of
// the NLF filter. Callers must not mutate the result.
func (g *Graph) NeighborTypes(v uint32, d Dir) []NeighborType {
	a := g.dir(d)
	return a.groupKeys[a.vtxGroupOff[v]:a.vtxGroupOff[v+1]]
}

// GroupSize returns the number of neighbors of v in direction d filed under
// (el, vl), without materializing the slice.
func (g *Graph) GroupSize(v uint32, d Dir, el, vl uint32) int {
	a := g.dir(d)
	gi := a.find(v, NeighborType{el, vl})
	if gi < 0 {
		return 0
	}
	s, e := a.groupSpan(gi)
	return e - s
}

// CountEdgeLabel returns the total size of v's adjacency groups in
// direction d with edge label el. Neighbors carrying several labels are
// counted once per label (an overcount), so the result is an upper bound on
// the true neighbor count — which is the safe direction for filter use.
func (g *Graph) CountEdgeLabel(v uint32, d Dir, el uint32) int {
	a := g.dir(d)
	lo, hi := a.vtxGroupOff[v], a.vtxGroupOff[v+1]
	first := lo + sort.Search(hi-lo, func(i int) bool { return a.groupKeys[lo+i].EdgeLabel >= el })
	n := 0
	for gi := first; gi < hi && a.groupKeys[gi].EdgeLabel == el; gi++ {
		s, e := a.groupSpan(gi)
		n += e - s
	}
	return n
}

// CountVertexLabel returns the total size of v's adjacency groups in
// direction d whose neighbor label is vl, over any edge label. Multi-edges
// to the same neighbor count once per edge label (an upper bound).
func (g *Graph) CountVertexLabel(v uint32, d Dir, vl uint32) int {
	a := g.dir(d)
	lo, hi := a.vtxGroupOff[v], a.vtxGroupOff[v+1]
	n := 0
	for gi := lo; gi < hi; gi++ {
		if a.groupKeys[gi].VertexLabel == vl {
			s, e := a.groupSpan(gi)
			n += e - s
		}
	}
	return n
}

// SubjectsOf returns the sorted distinct subjects of edges labeled el — one
// half of the paper's predicate index. Callers must not mutate the result.
func (g *Graph) SubjectsOf(el uint32) []uint32 {
	if int(el) >= g.numEdgeLabels {
		return nil
	}
	return g.predSub[g.predSubOff[el]:g.predSubOff[el+1]]
}

// ObjectsOf returns the sorted distinct objects of edges labeled el.
func (g *Graph) ObjectsOf(el uint32) []uint32 {
	if int(el) >= g.numEdgeLabels {
		return nil
	}
	return g.predObj[g.predObjOff[el]:g.predObjOff[el+1]]
}
