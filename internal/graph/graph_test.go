package graph

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/intset"
)

// paperGraph builds the type-aware transformed data graph of paper Fig. 7d:
//
//	v0 {A,B} --a--> v1 {C}
//	v0       --b--> v2 {D}
//	v0       --d--> v3 {}
//	v0       --e--> v4 {}
//	v2       --c--> v1
//
// Labels: A=0 B=1 C=2 D=3. Edge labels: a=0 b=1 c=2 d=3 e=4.
func paperGraph() *Graph {
	b := NewBuilder()
	b.AddVertexLabel(0, 0)
	b.AddVertexLabel(0, 1)
	b.AddVertexLabel(1, 2)
	b.AddVertexLabel(2, 3)
	b.EnsureVertex(4)
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 3, 3)
	b.AddEdge(0, 4, 4)
	b.AddEdge(2, 2, 1)
	return b.Build()
}

func TestPaperFig9Layout(t *testing.T) {
	g := paperGraph()
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	// Labels.
	if !intset.Equal(g.Labels(0), []uint32{0, 1}) {
		t.Errorf("Labels(v0) = %v, want [0 1]", g.Labels(0))
	}
	if len(g.Labels(3)) != 0 || len(g.Labels(4)) != 0 {
		t.Error("v3/v4 should be unlabeled")
	}
	// Inverse label list (paper Fig. 9a): A->{v0}, B->{v0}, C->{v1}, D->{v2}.
	for l, want := range [][]uint32{{0}, {0}, {1}, {2}} {
		if got := g.VerticesWithLabel(uint32(l)); !intset.Equal(got, want) {
			t.Errorf("VerticesWithLabel(%d) = %v, want %v", l, got, want)
		}
	}
	// Adjacency groups of v0 (paper Fig. 9b): (a,C)->{v1}, (b,D)->{v2},
	// (d,_)->{v3}, (e,_)->{v4}.
	if got := g.Adj(0, Out, 0, 2); !intset.Equal(got, []uint32{1}) {
		t.Errorf("adj(v0,(a,C)) = %v, want [1]", got)
	}
	if got := g.Adj(0, Out, 1, 3); !intset.Equal(got, []uint32{2}) {
		t.Errorf("adj(v0,(b,D)) = %v, want [2]", got)
	}
	if got := g.Adj(0, Out, 3, NoLabel); !intset.Equal(got, []uint32{3}) {
		t.Errorf("adj(v0,(d,_)) = %v, want [3]", got)
	}
	if got := g.Adj(0, Out, 4, NoLabel); !intset.Equal(got, []uint32{4}) {
		t.Errorf("adj(v0,(e,_)) = %v, want [4]", got)
	}
	// adj(v2): (c,C)->{v1}.
	if got := g.Adj(2, Out, 2, 2); !intset.Equal(got, []uint32{1}) {
		t.Errorf("adj(v2,(c,C)) = %v, want [1]", got)
	}
	// Incoming adjacency of v1: via a from v0 (filed under v0's labels A and
	// B) and via c from v2.
	if got := g.Adj(1, In, 0, 0); !intset.Equal(got, []uint32{0}) {
		t.Errorf("in-adj(v1,(a,A)) = %v, want [0]", got)
	}
	if got := g.Adj(1, In, 0, 1); !intset.Equal(got, []uint32{0}) {
		t.Errorf("in-adj(v1,(a,B)) = %v, want [0]", got)
	}
	if got := g.Adj(1, In, 2, 3); !intset.Equal(got, []uint32{2}) {
		t.Errorf("in-adj(v1,(c,D)) = %v, want [2]", got)
	}
}

func TestMultiLabelNeighborDedup(t *testing.T) {
	g := paperGraph()
	// v1's incoming neighbors over edge label a with blank vertex label must
	// contain v0 exactly once even though v0 files under two labels.
	got := g.AdjEdgeLabel(nil, 1, In, 0)
	if !intset.Equal(got, []uint32{0}) {
		t.Errorf("AdjEdgeLabel(v1, in, a) = %v, want [0]", got)
	}
	all := g.AdjAny(nil, 1, In)
	if !intset.Equal(all, []uint32{0, 2}) {
		t.Errorf("AdjAny(v1, in) = %v, want [0 2]", all)
	}
}

func TestAdjVertexLabel(t *testing.T) {
	g := paperGraph()
	// Neighbors of v0 (out) carrying label C over any edge label: v1.
	got := g.AdjVertexLabel(nil, 0, Out, 2)
	if !intset.Equal(got, []uint32{1}) {
		t.Errorf("AdjVertexLabel(v0, out, C) = %v, want [1]", got)
	}
	// Label D: v2.
	got = g.AdjVertexLabel(nil, 0, Out, 3)
	if !intset.Equal(got, []uint32{2}) {
		t.Errorf("AdjVertexLabel(v0, out, D) = %v, want [2]", got)
	}
}

func TestHasEdgeAndEdgeLabels(t *testing.T) {
	g := paperGraph()
	if !g.HasEdge(0, 1, 0) {
		t.Error("HasEdge(v0, v1, a) = false")
	}
	if g.HasEdge(1, 0, 0) {
		t.Error("HasEdge(v1, v0, a) = true (direction must matter)")
	}
	if g.HasEdge(0, 1, 2) {
		t.Error("HasEdge(v0, v1, c) = true")
	}
	if !g.HasEdge(0, 3, NoLabel) {
		t.Error("HasEdge(v0, v3, any) = false")
	}
	labels := g.EdgeLabelsBetween(nil, 0, 1)
	if len(labels) != 1 || labels[0] != 0 {
		t.Errorf("EdgeLabelsBetween(v0, v1) = %v, want [0]", labels)
	}
}

func TestDegrees(t *testing.T) {
	g := paperGraph()
	if got := g.Degree(0, Out); got != 4 {
		t.Errorf("outDeg(v0) = %d, want 4", got)
	}
	if got := g.Degree(1, In); got != 2 {
		t.Errorf("inDeg(v1) = %d, want 2", got)
	}
	if got := g.Degree(0, In); got != 0 {
		t.Errorf("inDeg(v0) = %d, want 0", got)
	}
}

func TestPredicateIndex(t *testing.T) {
	g := paperGraph()
	if got := g.SubjectsOf(0); !intset.Equal(got, []uint32{0}) {
		t.Errorf("SubjectsOf(a) = %v, want [0]", got)
	}
	if got := g.ObjectsOf(0); !intset.Equal(got, []uint32{1}) {
		t.Errorf("ObjectsOf(a) = %v, want [1]", got)
	}
	if got := g.SubjectsOf(99); got != nil {
		t.Errorf("SubjectsOf(unknown) = %v, want nil", got)
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	b := NewBuilder()
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 0, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(0, Out) != 1 {
		t.Errorf("outDeg = %d, want 1", g.Degree(0, Out))
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder().Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.VerticesWithLabel(0); got != nil {
		t.Errorf("VerticesWithLabel on empty = %v", got)
	}
}

func TestIsolatedVertex(t *testing.T) {
	b := NewBuilder()
	b.EnsureVertex(7)
	g := b.Build()
	if g.NumVertices() != 8 {
		t.Fatalf("NumVertices = %d, want 8", g.NumVertices())
	}
	if got := g.AdjAny(nil, 7, Out); len(got) != 0 {
		t.Errorf("AdjAny(isolated) = %v", got)
	}
}

// refGraph is a naive reference used by the randomized consistency test.
type refGraph struct {
	labels map[uint32][]uint32
	edges  map[[3]uint32]bool // s, el, o
}

func TestRandomizedAdjacencyConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		const (
			nV  = 40
			nL  = 5
			nEL = 4
			nE  = 150
		)
		b := NewBuilder()
		ref := refGraph{labels: map[uint32][]uint32{}, edges: map[[3]uint32]bool{}}
		b.EnsureVertex(nV - 1)
		for v := uint32(0); v < nV; v++ {
			for l := uint32(0); l < nL; l++ {
				if r.Intn(3) == 0 {
					b.AddVertexLabel(v, l)
					ref.labels[v] = append(ref.labels[v], l)
				}
			}
		}
		for i := 0; i < nE; i++ {
			s, el, o := uint32(r.Intn(nV)), uint32(r.Intn(nEL)), uint32(r.Intn(nV))
			b.AddEdge(s, el, o)
			ref.edges[[3]uint32{s, el, o}] = true
		}
		g := b.Build()

		if g.NumEdges() != len(ref.edges) {
			t.Fatalf("trial %d: NumEdges = %d, want %d", trial, g.NumEdges(), len(ref.edges))
		}
		for v := uint32(0); v < nV; v++ {
			for el := uint32(0); el < nEL; el++ {
				// Out neighbors over el must match the reference set.
				var want []uint32
				for key := range ref.edges {
					if key[0] == v && key[1] == el {
						want = append(want, key[2])
					}
				}
				want = intset.Dedup(want)
				got := g.AdjEdgeLabel(nil, v, Out, el)
				if !intset.Equal(got, want) {
					t.Fatalf("trial %d: AdjEdgeLabel(%d, out, %d) = %v, want %v", trial, v, el, got, want)
				}
				// In neighbors likewise.
				want = want[:0]
				for key := range ref.edges {
					if key[2] == v && key[1] == el {
						want = append(want, key[0])
					}
				}
				want = intset.Dedup(want)
				got = g.AdjEdgeLabel(nil, v, In, el)
				if !intset.Equal(got, want) {
					t.Fatalf("trial %d: AdjEdgeLabel(%d, in, %d) = %v, want %v", trial, v, el, got, want)
				}
			}
			// HasEdge must agree with the reference for a sample of pairs.
			for i := 0; i < 20; i++ {
				w, el := uint32(r.Intn(nV)), uint32(r.Intn(nEL))
				want := ref.edges[[3]uint32{v, el, w}]
				if got := g.HasEdge(v, w, el); got != want {
					t.Fatalf("trial %d: HasEdge(%d,%d,%d) = %v, want %v", trial, v, w, el, got, want)
				}
			}
			// Labels sorted and matching.
			want := intset.Dedup(append([]uint32(nil), ref.labels[v]...))
			if !intset.Equal(g.Labels(v), want) {
				t.Fatalf("trial %d: Labels(%d) = %v, want %v", trial, v, g.Labels(v), want)
			}
		}
		// Inverse label lists must be sorted and complete.
		for l := uint32(0); l < nL; l++ {
			var want []uint32
			for v, ls := range ref.labels {
				for _, x := range ls {
					if x == l {
						want = append(want, v)
					}
				}
			}
			want = intset.Dedup(want)
			got := g.VerticesWithLabel(l)
			if !intset.Equal(got, want) {
				t.Fatalf("trial %d: VerticesWithLabel(%d) = %v, want %v", trial, l, got, want)
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("trial %d: inverse list not sorted", trial)
			}
		}
	}
}

func TestGroupSizeMatchesAdj(t *testing.T) {
	g := paperGraph()
	if got, want := g.GroupSize(0, Out, 0, 2), len(g.Adj(0, Out, 0, 2)); got != want {
		t.Errorf("GroupSize = %d, want %d", got, want)
	}
	if got := g.GroupSize(0, Out, 9, 9); got != 0 {
		t.Errorf("GroupSize(missing) = %d, want 0", got)
	}
}

func TestNeighborTypes(t *testing.T) {
	g := paperGraph()
	nts := g.NeighborTypes(0, Out)
	want := []NeighborType{{0, 2}, {1, 3}, {3, NoLabel}, {4, NoLabel}}
	if len(nts) != len(want) {
		t.Fatalf("NeighborTypes = %v, want %v", nts, want)
	}
	for i := range nts {
		if nts[i] != want[i] {
			t.Errorf("NeighborTypes[%d] = %v, want %v", i, nts[i], want[i])
		}
	}
}
