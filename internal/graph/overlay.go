// Delta overlay: incremental updates over an immutable CSR Graph.
//
// The design follows the differential-index shape of RDF-3X (and of the
// in-repo rdf3x baseline): mutations land in small added/removed sets keyed
// against an immutable base, and readers see a merged view. A Delta is the
// mutable accumulator — owned by a single writer under the store's mutation
// lock — and Snapshot freezes it into an immutable Overlay that implements
// the full View interface. Snapshots share the base CSR arrays; only the
// vertices the delta touches ("dirty" vertices) carry materialized merged
// adjacency, so a snapshot costs O(delta · degree), not O(graph).
//
// Dirtiness propagates one hop from label changes: the grouped adjacency
// keys neighbors by *their* label sets (paper Fig. 9), so giving vertex w a
// new label regroups w inside every neighbor's adjacency — those neighbors
// are materialized too. Compaction (rebuilding the base CSR from base+delta)
// is the upstream store's job; Delta only promises that a snapshot equals
// the graph a fresh Builder would produce from the merged edge/label sets.
package graph

import (
	"sort"

	"repro/internal/intset"
)

// edgeKey identifies one (subject, edge label, object) edge in delta sets.
type edgeKey struct{ s, el, o uint32 }

// labelKey identifies one (vertex, label) attachment in delta sets.
type labelKey struct{ v, l uint32 }

// Delta accumulates edge and vertex-label additions and removals against a
// base Graph. It is not safe for concurrent use; the owning store serializes
// writers and publishes immutable Snapshots to readers. The sets are kept
// disjoint from the base (an added edge is never a base edge, a removed edge
// always is), so add/delete pairs cancel exactly.
type Delta struct {
	base        *Graph
	numVertices int
	addEdge     map[edgeKey]struct{}
	delEdge     map[edgeKey]struct{}
	// Label changes are indexed per vertex so writer-side bookkeeping
	// (EffectiveLabels during type deletes) stays O(labels of v), not
	// O(delta). nAddLabel/nDelLabel track the totals.
	addLabel             map[uint32]map[uint32]struct{}
	delLabel             map[uint32]map[uint32]struct{}
	nAddLabel, nDelLabel int
}

// NewDelta returns an empty delta over base.
func NewDelta(base *Graph) *Delta {
	return &Delta{
		base:        base,
		numVertices: base.NumVertices(),
		addEdge:     make(map[edgeKey]struct{}),
		delEdge:     make(map[edgeKey]struct{}),
		addLabel:    make(map[uint32]map[uint32]struct{}),
		delLabel:    make(map[uint32]map[uint32]struct{}),
	}
}

// Empty reports whether the delta holds no edge or label changes. A vertex
// space grown past the base without content (an interned term whose edges
// cancelled out) does not count: vertices without edges, labels or types are
// unreachable by every query pattern, so a base-only view is equivalent.
func (d *Delta) Empty() bool {
	return len(d.addEdge) == 0 && len(d.delEdge) == 0 &&
		d.nAddLabel == 0 && d.nDelLabel == 0
}

// Size reports the number of pending changes (edges plus labels).
func (d *Delta) Size() int {
	return len(d.addEdge) + len(d.delEdge) + d.nAddLabel + d.nDelLabel
}

// EnsureVertex grows the vertex space to include v.
func (d *Delta) EnsureVertex(v uint32) {
	if int(v) >= d.numVertices {
		d.numVertices = int(v) + 1
	}
}

// baseHasEdge reports whether the base graph holds the exact edge.
func (d *Delta) baseHasEdge(k edgeKey) bool {
	n := d.base.NumVertices()
	return int(k.s) < n && int(k.o) < n && d.base.HasEdge(k.s, k.o, k.el)
}

// baseHasLabel reports whether the base graph attaches l to v.
func (d *Delta) baseHasLabel(k labelKey) bool {
	return int(k.v) < d.base.NumVertices() && d.base.HasLabel(k.v, k.l)
}

// AddEdge records the edge s --el--> o, reporting whether the effective
// graph changed (false when the edge already exists).
func (d *Delta) AddEdge(s, el, o uint32) bool {
	d.EnsureVertex(s)
	d.EnsureVertex(o)
	k := edgeKey{s, el, o}
	if _, ok := d.delEdge[k]; ok {
		delete(d.delEdge, k)
		return true
	}
	if d.baseHasEdge(k) {
		return false
	}
	if _, ok := d.addEdge[k]; ok {
		return false
	}
	d.addEdge[k] = struct{}{}
	return true
}

// DeleteEdge removes the edge s --el--> o, reporting whether the effective
// graph changed (false when the edge does not exist).
func (d *Delta) DeleteEdge(s, el, o uint32) bool {
	k := edgeKey{s, el, o}
	if _, ok := d.addEdge[k]; ok {
		delete(d.addEdge, k)
		return true
	}
	if !d.baseHasEdge(k) {
		return false
	}
	if _, ok := d.delEdge[k]; ok {
		return false
	}
	d.delEdge[k] = struct{}{}
	return true
}

func setKeys(m map[uint32]struct{}) []uint32 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// AddLabel attaches label l to vertex v, reporting whether the effective
// graph changed.
func (d *Delta) AddLabel(v, l uint32) bool {
	d.EnsureVertex(v)
	if dl, ok := d.delLabel[v]; ok {
		if _, ok := dl[l]; ok {
			delete(dl, l)
			d.nDelLabel--
			if len(dl) == 0 {
				delete(d.delLabel, v)
			}
			return true
		}
	}
	if d.baseHasLabel(labelKey{v, l}) {
		return false
	}
	al, ok := d.addLabel[v]
	if !ok {
		al = map[uint32]struct{}{}
		d.addLabel[v] = al
	}
	if _, ok := al[l]; ok {
		return false
	}
	al[l] = struct{}{}
	d.nAddLabel++
	return true
}

// DeleteLabel detaches label l from vertex v, reporting whether the
// effective graph changed.
func (d *Delta) DeleteLabel(v, l uint32) bool {
	if al, ok := d.addLabel[v]; ok {
		if _, ok := al[l]; ok {
			delete(al, l)
			d.nAddLabel--
			if len(al) == 0 {
				delete(d.addLabel, v)
			}
			return true
		}
	}
	if !d.baseHasLabel(labelKey{v, l}) {
		return false
	}
	dl, ok := d.delLabel[v]
	if !ok {
		dl = map[uint32]struct{}{}
		d.delLabel[v] = dl
	}
	if _, ok := dl[l]; ok {
		return false
	}
	dl[l] = struct{}{}
	d.nDelLabel++
	return true
}

// HasLabel reports whether the effective (base ± delta) graph attaches l
// to v.
func (d *Delta) HasLabel(v, l uint32) bool {
	if al, ok := d.addLabel[v]; ok {
		if _, ok := al[l]; ok {
			return true
		}
	}
	if dl, ok := d.delLabel[v]; ok {
		if _, ok := dl[l]; ok {
			return false
		}
	}
	return d.baseHasLabel(labelKey{v, l})
}

// EffectiveLabels returns the merged sorted label set of v under the
// current delta.
func (d *Delta) EffectiveLabels(v uint32) []uint32 {
	adds := setKeys(d.addLabel[v])
	dels := setKeys(d.delLabel[v])
	var base []uint32
	if int(v) < d.base.NumVertices() {
		base = d.base.Labels(v)
	}
	return mergeSets(base, adds, dels)
}

// mergeSets returns (base ∪ adds) − dels as a fresh sorted set. adds and
// dels may be unsorted and are sorted in place.
func mergeSets(base, adds, dels []uint32) []uint32 {
	sort.Slice(adds, func(i, j int) bool { return adds[i] < adds[j] })
	sort.Slice(dels, func(i, j int) bool { return dels[i] < dels[j] })
	merged := intset.Union2(nil, base, intset.Dedup(adds))
	if len(dels) == 0 {
		return merged
	}
	return intset.Diff(nil, merged, intset.Dedup(dels))
}

// grouped is a single vertex's neighbor-type grouped adjacency in one
// direction: the per-vertex slice of the CSR layout in graph.go.
type grouped struct {
	keys []NeighborType
	end  []int // cumulative end offsets into adj
	adj  []uint32
}

func (g *grouped) span(i int) (int, int) {
	start := 0
	if i > 0 {
		start = g.end[i-1]
	}
	return start, g.end[i]
}

func (g *grouped) group(i int) []uint32 {
	s, e := g.span(i)
	return g.adj[s:e]
}

func (g *grouped) find(key NeighborType) int {
	i := sort.Search(len(g.keys), func(i int) bool { return !ntLess(g.keys[i], key) })
	if i < len(g.keys) && g.keys[i] == key {
		return i
	}
	return -1
}

// vertexView is the fully merged state of one dirty vertex.
type vertexView struct {
	out, in       grouped
	outDeg, inDeg int
}

// Overlay is an immutable merged view of a base Graph plus one Delta
// snapshot. Reads on vertices, labels and predicates the delta never touched
// delegate straight to the base; dirty entries resolve against materialized
// merged structures. An Overlay is safe for concurrent readers and stays
// valid forever — later deltas and compactions produce new values and never
// mutate published overlays.
type Overlay struct {
	base          *Graph
	numVertices   int
	numEdges      int
	numLabels     int
	numEdgeLabels int

	labels  map[uint32][]uint32    // vertices whose label set changed (or is new)
	verts   map[uint32]*vertexView // dirty vertices' merged adjacency
	inv     map[uint32][]uint32    // labels whose inverse list changed
	predSub map[uint32][]uint32    // edge labels whose subject list changed
	predObj map[uint32][]uint32    // edge labels whose object list changed

	stats *Stats            // base stats plus per-delta corrections
	sigs  map[uint32]uint64 // dirty vertices' recomputed signatures
}

// Snapshot freezes the delta into an immutable Overlay. The overlay observes
// exactly the edges and labels of (base + additions − removals); differential
// tests pin this against a fresh Builder over the merged sets.
func (d *Delta) Snapshot() *Overlay {
	base := d.base
	bn := base.NumVertices()
	o := &Overlay{
		base:          base,
		numVertices:   d.numVertices,
		numEdges:      base.NumEdges() + len(d.addEdge) - len(d.delEdge),
		numLabels:     base.NumLabels(),
		numEdgeLabels: base.NumEdgeLabels(),
		labels:        make(map[uint32][]uint32),
		verts:         make(map[uint32]*vertexView),
		inv:           make(map[uint32][]uint32),
		predSub:       make(map[uint32][]uint32),
		predObj:       make(map[uint32][]uint32),
	}
	if o.numVertices < bn {
		o.numVertices = bn
	}

	// Group the edge delta by endpoint and the label delta by vertex and by
	// label, and widen the label/edge-label spaces for fresh IDs.
	outAdd := map[uint32][]rawEdge{}
	inAdd := map[uint32][]rawEdge{}
	outDel := map[uint32]map[rawEdge]struct{}{}
	inDel := map[uint32]map[rawEdge]struct{}{}
	dirty := map[uint32]struct{}{}
	markDel := func(m map[uint32]map[rawEdge]struct{}, v uint32, e rawEdge) {
		s, ok := m[v]
		if !ok {
			s = map[rawEdge]struct{}{}
			m[v] = s
		}
		s[e] = struct{}{}
	}
	for k := range d.addEdge {
		outAdd[k.s] = append(outAdd[k.s], rawEdge{k.el, k.o})
		inAdd[k.o] = append(inAdd[k.o], rawEdge{k.el, k.s})
		dirty[k.s] = struct{}{}
		dirty[k.o] = struct{}{}
		if int(k.el)+1 > o.numEdgeLabels {
			o.numEdgeLabels = int(k.el) + 1
		}
	}
	for k := range d.delEdge {
		markDel(outDel, k.s, rawEdge{k.el, k.o})
		markDel(inDel, k.o, rawEdge{k.el, k.s})
		dirty[k.s] = struct{}{}
		dirty[k.o] = struct{}{}
	}

	labAdd := map[uint32][]uint32{}
	labDel := map[uint32][]uint32{}
	invAdd := map[uint32][]uint32{}
	invDel := map[uint32][]uint32{}
	for v, ls := range d.addLabel {
		for l := range ls {
			labAdd[v] = append(labAdd[v], l)
			invAdd[l] = append(invAdd[l], v)
			if int(l)+1 > o.numLabels {
				o.numLabels = int(l) + 1
			}
		}
	}
	for v, ls := range d.delLabel {
		for l := range ls {
			labDel[v] = append(labDel[v], l)
			invDel[l] = append(invDel[l], v)
		}
	}

	// Merged label sets for relabeled vertices, and one-hop dirtiness: a
	// relabeled vertex regroups inside all of its base neighbors' adjacency.
	// (Delta-edge neighbors of a relabeled vertex are already dirty.)
	var scratch []rawEdge
	relabeled := map[uint32]struct{}{}
	for v := range labAdd {
		relabeled[v] = struct{}{}
	}
	for v := range labDel {
		relabeled[v] = struct{}{}
	}
	for v := range relabeled {
		var bl []uint32
		if int(v) < bn {
			bl = base.Labels(v)
		}
		o.labels[v] = mergeSets(bl, labAdd[v], labDel[v])
		dirty[v] = struct{}{}
		scratch = base.rawEdges(scratch[:0], v, Out)
		for _, e := range scratch {
			dirty[e.nb] = struct{}{}
		}
		scratch = base.rawEdges(scratch[:0], v, In)
		for _, e := range scratch {
			dirty[e.nb] = struct{}{}
		}
	}

	labelsOf := func(v uint32) []uint32 {
		if ls, ok := o.labels[v]; ok {
			return ls
		}
		if int(v) < bn {
			return base.Labels(v)
		}
		return nil
	}

	// Materialize the merged adjacency of every dirty vertex.
	for v := range dirty {
		vv := &vertexView{}
		out := mergeRaw(base.rawEdges(nil, v, Out), outAdd[v], outDel[v])
		in := mergeRaw(base.rawEdges(nil, v, In), inAdd[v], inDel[v])
		vv.outDeg, vv.inDeg = len(out), len(in)
		vv.out = groupRaw(out, labelsOf)
		vv.in = groupRaw(in, labelsOf)
		o.verts[v] = vv
	}

	// Merged inverse vertex-label lists for dirty labels.
	for l := range mergedLabelKeys(invAdd, invDel) {
		o.inv[l] = mergeSets(base.VerticesWithLabel(l), invAdd[l], invDel[l])
	}

	// Merged predicate index entries for dirty edge labels, grouped in one
	// pass over the edge delta. A removed edge only removes its subject
	// (object) from the index when the vertex has no remaining edge under
	// that label — checked against the materialized merged adjacency, which
	// covers every removal endpoint by construction.
	type predDelta struct {
		subAdd, subDel, objAdd, objDel []uint32
	}
	preds := map[uint32]*predDelta{}
	predOf := func(el uint32) *predDelta {
		pd, ok := preds[el]
		if !ok {
			pd = &predDelta{}
			preds[el] = pd
		}
		return pd
	}
	for k := range d.addEdge {
		pd := predOf(k.el)
		pd.subAdd = append(pd.subAdd, k.s)
		pd.objAdd = append(pd.objAdd, k.o)
	}
	for k := range d.delEdge {
		pd := predOf(k.el)
		if !o.verts[k.s].out.hasEdgeLabel(k.el) {
			pd.subDel = append(pd.subDel, k.s)
		}
		if !o.verts[k.o].in.hasEdgeLabel(k.el) {
			pd.objDel = append(pd.objDel, k.o)
		}
	}
	for el, pd := range preds {
		o.predSub[el] = mergeSets(base.SubjectsOf(el), pd.subAdd, pd.subDel)
		o.predObj[el] = mergeSets(base.ObjectsOf(el), pd.objAdd, pd.objDel)
	}

	// Recompute dirty vertices' signatures from their merged adjacency —
	// exact, so a deleted edge's bit never lingers on the overlay — and
	// derive the snapshot's statistics as base stats plus corrections.
	o.sigs = make(map[uint32]uint64, len(o.verts))
	for v, vv := range o.verts {
		o.sigs[v] = vv.signature()
	}
	o.stats = d.correctedStats(o)
	return o
}

// correctedStats derives the overlay's statistics from the base stats plus
// per-delta corrections: dirty inverse-label and predicate lists are already
// materialized (their lengths are the exact counts), edge counts adjust by
// the add/del sets, and degree histogram entries move only for dirty
// vertices.
func (d *Delta) correctedStats(o *Overlay) *Stats {
	base := d.base.Stats()
	st := &Stats{
		Vertices:          o.numVertices,
		Edges:             o.numEdges,
		LabelVertices:     growCopy(base.LabelVertices, o.numLabels),
		EdgeLabelEdges:    growCopy(base.EdgeLabelEdges, o.numEdgeLabels),
		EdgeLabelSubjects: growCopy(base.EdgeLabelSubjects, o.numEdgeLabels),
		EdgeLabelObjects:  growCopy(base.EdgeLabelObjects, o.numEdgeLabels),
		OutDegreeHist:     base.OutDegreeHist,
		InDegreeHist:      base.InDegreeHist,
	}
	for l, vs := range o.inv {
		st.LabelVertices[l] = len(vs)
	}
	for el, vs := range o.predSub {
		st.EdgeLabelSubjects[el] = len(vs)
	}
	for el, vs := range o.predObj {
		st.EdgeLabelObjects[el] = len(vs)
	}
	for k := range d.addEdge {
		st.EdgeLabelEdges[k.el]++
	}
	for k := range d.delEdge {
		st.EdgeLabelEdges[k.el]--
	}
	// Vertices past the base start at degree zero; dirty vertices then move
	// from their base bucket to their merged bucket.
	bn := d.base.NumVertices()
	if nv := o.numVertices - bn; nv > 0 {
		st.OutDegreeHist[0] += nv
		st.InDegreeHist[0] += nv
	}
	for v, vv := range o.verts {
		if int(v) < bn {
			st.OutDegreeHist[DegreeBucket(d.base.Degree(v, Out))]--
			st.InDegreeHist[DegreeBucket(d.base.Degree(v, In))]--
		} else {
			st.OutDegreeHist[0]--
			st.InDegreeHist[0]--
		}
		st.OutDegreeHist[DegreeBucket(vv.outDeg)]++
		st.InDegreeHist[DegreeBucket(vv.inDeg)]++
	}
	return st
}

// growCopy returns a length-n copy of src (zero-filled past its end).
func growCopy(src []int, n int) []int {
	out := make([]int, n)
	copy(out, src)
	return out
}

// hasEdgeLabel reports whether any group of g carries edge label el.
func (g *grouped) hasEdgeLabel(el uint32) bool {
	i := sort.Search(len(g.keys), func(i int) bool { return g.keys[i].EdgeLabel >= el })
	return i < len(g.keys) && g.keys[i].EdgeLabel == el
}

func mergedLabelKeys(a, b map[uint32][]uint32) map[uint32]struct{} {
	out := make(map[uint32]struct{}, len(a)+len(b))
	for k := range a {
		out[k] = struct{}{}
	}
	for k := range b {
		out[k] = struct{}{}
	}
	return out
}

// mergeRaw returns (base ∪ adds) − dels over raw (el, nb) incidences. base
// is sorted and deduplicated; adds is disjoint from base, dels ⊆ base.
func mergeRaw(base []rawEdge, adds []rawEdge, dels map[rawEdge]struct{}) []rawEdge {
	out := make([]rawEdge, 0, len(base)+len(adds))
	for _, e := range base {
		if _, gone := dels[e]; !gone {
			out = append(out, e)
		}
	}
	out = append(out, adds...)
	sort.Slice(out, func(i, j int) bool { return rawLess(out[i], out[j]) })
	return out
}

// groupRaw builds the neighbor-type grouped adjacency of one vertex from its
// merged raw edges, filing each neighbor once per label (NoLabel when it has
// none) exactly as Builder.Build does.
func groupRaw(raw []rawEdge, labelsOf func(uint32) []uint32) grouped {
	type entry struct {
		key NeighborType
		nb  uint32
	}
	entries := make([]entry, 0, len(raw))
	for _, e := range raw {
		ls := labelsOf(e.nb)
		if len(ls) == 0 {
			entries = append(entries, entry{NeighborType{e.el, NoLabel}, e.nb})
			continue
		}
		for _, l := range ls {
			entries = append(entries, entry{NeighborType{e.el, l}, e.nb})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.key != b.key {
			return ntLess(a.key, b.key)
		}
		return a.nb < b.nb
	})
	var g grouped
	g.adj = make([]uint32, len(entries))
	for i, e := range entries {
		g.adj[i] = e.nb
		if i == 0 || entries[i-1].key != e.key {
			g.keys = append(g.keys, e.key)
			g.end = append(g.end, i+1)
		} else {
			g.end[len(g.end)-1] = i + 1
		}
	}
	return g
}

// --- View implementation ---

// NumVertices reports the number of vertices.
func (o *Overlay) NumVertices() int { return o.numVertices }

// NumEdges reports the number of distinct (s, label, o) edges.
func (o *Overlay) NumEdges() int { return o.numEdges }

// NumLabels reports the size of the vertex-label space.
func (o *Overlay) NumLabels() int { return o.numLabels }

// NumEdgeLabels reports the size of the edge-label space.
func (o *Overlay) NumEdgeLabels() int { return o.numEdgeLabels }

// Labels returns the sorted label set of v.
func (o *Overlay) Labels(v uint32) []uint32 {
	if ls, ok := o.labels[v]; ok {
		return ls
	}
	if int(v) < o.base.NumVertices() {
		return o.base.Labels(v)
	}
	return nil
}

// HasLabel reports whether v carries label l.
func (o *Overlay) HasLabel(v uint32, l uint32) bool {
	return intset.Contains(o.Labels(v), l)
}

// HasAllLabels reports whether v carries every label in ls.
func (o *Overlay) HasAllLabels(v uint32, ls []uint32) bool {
	for _, l := range ls {
		if !o.HasLabel(v, l) {
			return false
		}
	}
	return true
}

// VerticesWithLabel returns the sorted vertex IDs carrying label l.
func (o *Overlay) VerticesWithLabel(l uint32) []uint32 {
	if vs, ok := o.inv[l]; ok {
		return vs
	}
	return o.base.VerticesWithLabel(l)
}

func (v *vertexView) dir(d Dir) *grouped {
	if d == Out {
		return &v.out
	}
	return &v.in
}

// Degree returns the edge count of v in direction d.
func (o *Overlay) Degree(v uint32, d Dir) int {
	if vv, ok := o.verts[v]; ok {
		if d == Out {
			return vv.outDeg
		}
		return vv.inDeg
	}
	if int(v) < o.base.NumVertices() {
		return o.base.Degree(v, d)
	}
	return 0
}

// Adj returns the adjacency group adj(v, (el, vl)).
func (o *Overlay) Adj(v uint32, d Dir, el, vl uint32) []uint32 {
	if vv, ok := o.verts[v]; ok {
		g := vv.dir(d)
		gi := g.find(NeighborType{el, vl})
		if gi < 0 {
			return nil
		}
		return g.group(gi)
	}
	if int(v) < o.base.NumVertices() {
		return o.base.Adj(v, d, el, vl)
	}
	return nil
}

// AdjEdgeLabel appends the union of v's neighbors over edge label el.
func (o *Overlay) AdjEdgeLabel(dst []uint32, v uint32, d Dir, el uint32) []uint32 {
	if vv, ok := o.verts[v]; ok {
		g := vv.dir(d)
		first := sort.Search(len(g.keys), func(i int) bool { return g.keys[i].EdgeLabel >= el })
		var sets [][]uint32
		for gi := first; gi < len(g.keys) && g.keys[gi].EdgeLabel == el; gi++ {
			sets = append(sets, g.group(gi))
		}
		return intset.UnionK(dst, sets...)
	}
	if int(v) < o.base.NumVertices() {
		return o.base.AdjEdgeLabel(dst, v, d, el)
	}
	return dst
}

// AdjAny appends the union of all neighbors of v in direction d.
func (o *Overlay) AdjAny(dst []uint32, v uint32, d Dir) []uint32 {
	if vv, ok := o.verts[v]; ok {
		g := vv.dir(d)
		var sets [][]uint32
		for gi := range g.keys {
			sets = append(sets, g.group(gi))
		}
		return intset.UnionK(dst, sets...)
	}
	if int(v) < o.base.NumVertices() {
		return o.base.AdjAny(dst, v, d)
	}
	return dst
}

// AdjVertexLabel appends the union of v's neighbors carrying label vl.
func (o *Overlay) AdjVertexLabel(dst []uint32, v uint32, d Dir, vl uint32) []uint32 {
	if vv, ok := o.verts[v]; ok {
		g := vv.dir(d)
		var sets [][]uint32
		for gi := range g.keys {
			if g.keys[gi].VertexLabel == vl {
				sets = append(sets, g.group(gi))
			}
		}
		return intset.UnionK(dst, sets...)
	}
	if int(v) < o.base.NumVertices() {
		return o.base.AdjVertexLabel(dst, v, d, vl)
	}
	return dst
}

// groupLabelOf picks the group key label under which w is filed: its first
// merged label, or NoLabel when it has none.
func (o *Overlay) groupLabelOf(w uint32) uint32 {
	ls := o.Labels(w)
	if len(ls) == 0 {
		return NoLabel
	}
	return ls[0]
}

// HasEdge reports whether v --el--> w exists. el == NoLabel matches any
// edge label.
func (o *Overlay) HasEdge(v, w uint32, el uint32) bool {
	if el == NoLabel {
		return len(o.EdgeLabelsBetween(nil, v, w)) > 0
	}
	if _, ok := o.verts[v]; ok {
		return intset.Contains(o.Adj(v, Out, el, o.groupLabelOf(w)), w)
	}
	// v untouched: none of its edges changed and none of its neighbors were
	// relabeled (that would have dirtied v), so the base answer stands. A w
	// outside the base can only connect through delta edges, which dirty v.
	bn := o.base.NumVertices()
	if int(v) >= bn || int(w) >= bn {
		return false
	}
	return o.base.HasEdge(v, w, el)
}

// EdgeLabelsBetween appends the labels of all edges v --?--> w.
func (o *Overlay) EdgeLabelsBetween(dst []uint32, v, w uint32) []uint32 {
	if vv, ok := o.verts[v]; ok {
		vl := o.groupLabelOf(w)
		g := &vv.out
		for gi := range g.keys {
			if g.keys[gi].VertexLabel != vl {
				continue
			}
			if intset.Contains(g.group(gi), w) {
				dst = append(dst, g.keys[gi].EdgeLabel)
			}
		}
		return dst
	}
	bn := o.base.NumVertices()
	if int(v) >= bn || int(w) >= bn {
		return dst
	}
	return o.base.EdgeLabelsBetween(dst, v, w)
}

// NeighborTypes returns the adjacency group keys of v in direction d.
func (o *Overlay) NeighborTypes(v uint32, d Dir) []NeighborType {
	if vv, ok := o.verts[v]; ok {
		return vv.dir(d).keys
	}
	if int(v) < o.base.NumVertices() {
		return o.base.NeighborTypes(v, d)
	}
	return nil
}

// GroupSize returns len(Adj(v, d, el, vl)) without materializing it.
func (o *Overlay) GroupSize(v uint32, d Dir, el, vl uint32) int {
	if vv, ok := o.verts[v]; ok {
		g := vv.dir(d)
		gi := g.find(NeighborType{el, vl})
		if gi < 0 {
			return 0
		}
		s, e := g.span(gi)
		return e - s
	}
	if int(v) < o.base.NumVertices() {
		return o.base.GroupSize(v, d, el, vl)
	}
	return 0
}

// CountEdgeLabel totals v's group sizes with edge label el.
func (o *Overlay) CountEdgeLabel(v uint32, d Dir, el uint32) int {
	if vv, ok := o.verts[v]; ok {
		g := vv.dir(d)
		first := sort.Search(len(g.keys), func(i int) bool { return g.keys[i].EdgeLabel >= el })
		n := 0
		for gi := first; gi < len(g.keys) && g.keys[gi].EdgeLabel == el; gi++ {
			s, e := g.span(gi)
			n += e - s
		}
		return n
	}
	if int(v) < o.base.NumVertices() {
		return o.base.CountEdgeLabel(v, d, el)
	}
	return 0
}

// CountVertexLabel totals v's group sizes with neighbor label vl.
func (o *Overlay) CountVertexLabel(v uint32, d Dir, vl uint32) int {
	if vv, ok := o.verts[v]; ok {
		g := vv.dir(d)
		n := 0
		for gi := range g.keys {
			if g.keys[gi].VertexLabel == vl {
				s, e := g.span(gi)
				n += e - s
			}
		}
		return n
	}
	if int(v) < o.base.NumVertices() {
		return o.base.CountVertexLabel(v, d, vl)
	}
	return 0
}

// SubjectsOf returns the sorted distinct subjects of edges labeled el.
func (o *Overlay) SubjectsOf(el uint32) []uint32 {
	if vs, ok := o.predSub[el]; ok {
		return vs
	}
	return o.base.SubjectsOf(el)
}

// ObjectsOf returns the sorted distinct objects of edges labeled el.
func (o *Overlay) ObjectsOf(el uint32) []uint32 {
	if vs, ok := o.predObj[el]; ok {
		return vs
	}
	return o.base.ObjectsOf(el)
}
