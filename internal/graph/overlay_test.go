package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/intset"
)

// modelGraph is the reference state a Delta run should converge to: plain
// edge and label sets.
type modelGraph struct {
	numVertices int
	edges       map[edgeKey]struct{}
	labels      map[labelKey]struct{}
}

func (m *modelGraph) build() *Graph {
	b := NewBuilder()
	if m.numVertices > 0 {
		b.EnsureVertex(uint32(m.numVertices - 1))
	}
	for k := range m.labels {
		b.AddVertexLabel(k.v, k.l)
	}
	for k := range m.edges {
		b.AddEdge(k.s, k.el, k.o)
	}
	return b.Build()
}

// compareViews checks every View method agreement between got and want over
// the full (small) ID space.
func compareViews(t *testing.T, got, want View, maxV, maxL, maxEL int) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("NumVertices = %d, want %d", got.NumVertices(), want.NumVertices())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", got.NumEdges(), want.NumEdges())
	}
	for l := 0; l < maxL; l++ {
		if !intset.Equal(got.VerticesWithLabel(uint32(l)), want.VerticesWithLabel(uint32(l))) {
			t.Fatalf("VerticesWithLabel(%d) = %v, want %v", l, got.VerticesWithLabel(uint32(l)), want.VerticesWithLabel(uint32(l)))
		}
	}
	for el := 0; el < maxEL; el++ {
		if !intset.Equal(got.SubjectsOf(uint32(el)), want.SubjectsOf(uint32(el))) {
			t.Fatalf("SubjectsOf(%d) = %v, want %v", el, got.SubjectsOf(uint32(el)), want.SubjectsOf(uint32(el)))
		}
		if !intset.Equal(got.ObjectsOf(uint32(el)), want.ObjectsOf(uint32(el))) {
			t.Fatalf("ObjectsOf(%d) = %v, want %v", el, got.ObjectsOf(uint32(el)), want.ObjectsOf(uint32(el)))
		}
	}
	for vi := 0; vi < maxV; vi++ {
		v := uint32(vi)
		inRange := vi < want.NumVertices()
		var wantLabels []uint32
		if inRange {
			wantLabels = want.Labels(v)
		}
		if !intset.Equal(got.Labels(v), wantLabels) {
			t.Fatalf("Labels(%d) = %v, want %v", v, got.Labels(v), wantLabels)
		}
		for _, d := range []Dir{Out, In} {
			wantDeg := 0
			var wantNT []NeighborType
			if inRange {
				wantDeg = want.Degree(v, d)
				wantNT = want.NeighborTypes(v, d)
			}
			if got.Degree(v, d) != wantDeg {
				t.Fatalf("Degree(%d, %v) = %d, want %d", v, d, got.Degree(v, d), wantDeg)
			}
			gotNT := got.NeighborTypes(v, d)
			if len(gotNT) != len(wantNT) {
				t.Fatalf("NeighborTypes(%d, %v) = %v, want %v", v, d, gotNT, wantNT)
			}
			for i := range gotNT {
				if gotNT[i] != wantNT[i] {
					t.Fatalf("NeighborTypes(%d, %v) = %v, want %v", v, d, gotNT, wantNT)
				}
			}
			for el := 0; el < maxEL; el++ {
				var wantAEL []uint32
				wantCEL := 0
				if inRange {
					wantAEL = want.AdjEdgeLabel(nil, v, d, uint32(el))
					wantCEL = want.CountEdgeLabel(v, d, uint32(el))
				}
				if !intset.Equal(got.AdjEdgeLabel(nil, v, d, uint32(el)), wantAEL) {
					t.Fatalf("AdjEdgeLabel(%d, %v, %d) mismatch", v, d, el)
				}
				if got.CountEdgeLabel(v, d, uint32(el)) != wantCEL {
					t.Fatalf("CountEdgeLabel(%d, %v, %d) = %d, want %d", v, d, el, got.CountEdgeLabel(v, d, uint32(el)), wantCEL)
				}
				for vl := -1; vl < maxL; vl++ {
					key := uint32(vl)
					if vl < 0 {
						key = NoLabel
					}
					var wantAdj []uint32
					wantGS := 0
					if inRange {
						wantAdj = want.Adj(v, d, uint32(el), key)
						wantGS = want.GroupSize(v, d, uint32(el), key)
					}
					if !intset.Equal(got.Adj(v, d, uint32(el), key), wantAdj) {
						t.Fatalf("Adj(%d, %v, %d, %d) = %v, want %v", v, d, el, int32(key), got.Adj(v, d, uint32(el), key), wantAdj)
					}
					if got.GroupSize(v, d, uint32(el), key) != wantGS {
						t.Fatalf("GroupSize(%d, %v, %d, %d) mismatch", v, d, el, int32(key))
					}
				}
			}
			for vl := -1; vl < maxL; vl++ {
				key := uint32(vl)
				if vl < 0 {
					key = NoLabel
				}
				var wantAVL []uint32
				wantCVL := 0
				if inRange {
					wantAVL = want.AdjVertexLabel(nil, v, d, key)
					wantCVL = want.CountVertexLabel(v, d, key)
				}
				if !intset.Equal(got.AdjVertexLabel(nil, v, d, key), wantAVL) {
					t.Fatalf("AdjVertexLabel(%d, %v, %d) mismatch", v, d, int32(key))
				}
				if got.CountVertexLabel(v, d, key) != wantCVL {
					t.Fatalf("CountVertexLabel(%d, %v, %d) mismatch", v, d, int32(key))
				}
			}
			var wantAny []uint32
			if inRange {
				wantAny = want.AdjAny(nil, v, d)
			}
			if !intset.Equal(got.AdjAny(nil, v, d), wantAny) {
				t.Fatalf("AdjAny(%d, %v) mismatch", v, d)
			}
		}
		for wi := 0; wi < maxV; wi++ {
			w := uint32(wi)
			bothIn := inRange && wi < want.NumVertices()
			var wantELB []uint32
			if bothIn {
				wantELB = want.EdgeLabelsBetween(nil, v, w)
			}
			gotELB := got.EdgeLabelsBetween(nil, v, w)
			if !intset.Equal(gotELB, wantELB) {
				t.Fatalf("EdgeLabelsBetween(%d, %d) = %v, want %v", v, w, gotELB, wantELB)
			}
			for el := -1; el < maxEL; el++ {
				key := uint32(el)
				if el < 0 {
					key = NoLabel
				}
				wantHE := false
				if bothIn {
					wantHE = want.HasEdge(v, w, key)
				}
				if got.HasEdge(v, w, key) != wantHE {
					t.Fatalf("HasEdge(%d, %d, %d) = %v, want %v", v, w, int32(key), got.HasEdge(v, w, key), wantHE)
				}
			}
		}
	}
}

// TestOverlayDifferential drives random add/delete interleavings through a
// Delta and pins every Snapshot against a Graph rebuilt from scratch from
// the net edge/label sets — the graph-level core of the update contract.
func TestOverlayDifferential(t *testing.T) {
	const (
		maxV  = 9 // leaves headroom above the base's vertex space
		maxL  = 4
		maxEL = 3
	)
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			model := &modelGraph{
				edges:  map[edgeKey]struct{}{},
				labels: map[labelKey]struct{}{},
			}
			// Random base over a subset of the vertex space.
			baseV := 4 + rng.Intn(3)
			model.numVertices = baseV
			for i := 0; i < 12; i++ {
				k := edgeKey{uint32(rng.Intn(baseV)), uint32(rng.Intn(maxEL)), uint32(rng.Intn(baseV))}
				model.edges[k] = struct{}{}
			}
			for i := 0; i < 6; i++ {
				k := labelKey{uint32(rng.Intn(baseV)), uint32(rng.Intn(maxL))}
				model.labels[k] = struct{}{}
			}
			base := model.build()
			delta := NewDelta(base)

			for step := 0; step < 60; step++ {
				switch rng.Intn(4) {
				case 0: // add edge (possibly to a new vertex)
					k := edgeKey{uint32(rng.Intn(maxV)), uint32(rng.Intn(maxEL)), uint32(rng.Intn(maxV))}
					delta.AddEdge(k.s, k.el, k.o)
					model.edges[k] = struct{}{}
					model.bump(k.s)
					model.bump(k.o)
				case 1: // delete edge (random, often absent)
					k := edgeKey{uint32(rng.Intn(maxV)), uint32(rng.Intn(maxEL)), uint32(rng.Intn(maxV))}
					changed := delta.DeleteEdge(k.s, k.el, k.o)
					_, present := model.edges[k]
					if changed != present {
						t.Fatalf("DeleteEdge(%v) changed=%v, model present=%v", k, changed, present)
					}
					delete(model.edges, k)
				case 2: // add label
					k := labelKey{uint32(rng.Intn(maxV)), uint32(rng.Intn(maxL))}
					delta.AddLabel(k.v, k.l)
					model.labels[k] = struct{}{}
					model.bump(k.v)
				case 3: // delete label
					k := labelKey{uint32(rng.Intn(maxV)), uint32(rng.Intn(maxL))}
					changed := delta.DeleteLabel(k.v, k.l)
					_, present := model.labels[k]
					if changed != present {
						t.Fatalf("DeleteLabel(%v) changed=%v, model present=%v", k, changed, present)
					}
					delete(model.labels, k)
				}
				if step%10 == 9 || step == 59 {
					fresh := model.build()
					compareViews(t, delta.Snapshot(), fresh, maxV+1, maxL+1, maxEL+1)
				}
			}
		})
	}
}

// bump grows the model's vertex space like Delta.EnsureVertex.
func (m *modelGraph) bump(v uint32) {
	if int(v) >= m.numVertices {
		m.numVertices = int(v) + 1
	}
}

// TestOverlayEmptyDeltaDelegates checks that an empty delta's snapshot is a
// pure pass-through of the base.
func TestOverlayEmptyDeltaDelegates(t *testing.T) {
	b := NewBuilder()
	b.AddVertexLabel(0, 1)
	b.AddEdge(0, 0, 1)
	base := b.Build()
	d := NewDelta(base)
	if !d.Empty() {
		t.Fatal("fresh delta not empty")
	}
	o := d.Snapshot()
	compareViews(t, o, base, base.NumVertices()+1, base.NumLabels()+1, base.NumEdgeLabels()+1)
}

// TestDeltaCancellation checks that add/delete pairs cancel exactly and the
// delta returns to empty.
func TestDeltaCancellation(t *testing.T) {
	b := NewBuilder()
	b.AddEdge(0, 0, 1)
	b.AddVertexLabel(0, 0)
	base := b.Build()
	d := NewDelta(base)

	if !d.AddEdge(0, 0, 2) || !d.DeleteEdge(0, 0, 2) {
		t.Fatal("add/delete of a fresh edge should both report change")
	}
	if !d.DeleteEdge(0, 0, 1) || !d.AddEdge(0, 0, 1) {
		t.Fatal("delete/re-add of a base edge should both report change")
	}
	if !d.AddLabel(1, 3) || !d.DeleteLabel(1, 3) {
		t.Fatal("label add/delete pair should both report change")
	}
	if !d.DeleteLabel(0, 0) || !d.AddLabel(0, 0) {
		t.Fatal("base label delete/re-add should both report change")
	}
	if d.AddEdge(0, 0, 1) {
		t.Fatal("re-adding an existing base edge should be a no-op")
	}
	if d.DeleteEdge(0, 1, 1) {
		t.Fatal("deleting an absent edge should be a no-op")
	}
	if !d.Empty() {
		t.Fatalf("delta should have cancelled to empty, size %d", d.Size())
	}
}
