package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/intset"
)

// randGraph is the quick.Generator input: a random labeled multigraph plus
// its naive reference representation.
type randGraph struct {
	n      int
	labels map[uint32][]uint32 // vertex -> sorted distinct labels
	edges  [][3]uint32         // (from, label, to), deduped
}

// Generate implements quick.Generator.
func (randGraph) Generate(r *rand.Rand, size int) reflect.Value {
	n := 2 + r.Intn(10)
	nLabels := 1 + r.Intn(4)
	nEdgeLabels := 1 + r.Intn(3)

	g := randGraph{n: n, labels: map[uint32][]uint32{}}
	for v := uint32(0); v < uint32(n); v++ {
		set := map[uint32]bool{}
		for i := 0; i < r.Intn(3); i++ {
			set[uint32(r.Intn(nLabels))] = true
		}
		for l := range set {
			g.labels[v] = append(g.labels[v], l)
		}
		sort.Slice(g.labels[v], func(i, j int) bool { return g.labels[v][i] < g.labels[v][j] })
	}
	seen := map[[3]uint32]bool{}
	for i := 0; i < 4*n; i++ {
		e := [3]uint32{uint32(r.Intn(n)), uint32(r.Intn(nEdgeLabels)), uint32(r.Intn(n))}
		if !seen[e] {
			seen[e] = true
			g.edges = append(g.edges, e)
		}
	}
	return reflect.ValueOf(g)
}

func (g randGraph) build() *Graph {
	b := NewBuilder()
	for v := uint32(0); v < uint32(g.n); v++ {
		b.EnsureVertex(v)
		for _, l := range g.labels[v] {
			b.AddVertexLabel(v, l)
		}
	}
	for _, e := range g.edges {
		b.AddEdge(e[0], e[1], e[2])
	}
	return b.Build()
}

// refAdj computes the expected neighbor set naively.
func (g randGraph) refAdj(v uint32, d Dir, el uint32, vl uint32) []uint32 {
	set := map[uint32]bool{}
	for _, e := range g.edges {
		var from, to uint32
		if d == Out {
			from, to = e[0], e[2]
		} else {
			from, to = e[2], e[0]
		}
		if from != v {
			continue
		}
		if el != NoLabel && e[1] != el {
			continue
		}
		if vl != NoLabel && !containsU32(g.labels[to], vl) {
			continue
		}
		set[to] = true
	}
	out := make([]uint32, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func containsU32(s []uint32, x uint32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickAdjEdgeLabel: AdjEdgeLabel equals the naive neighbor set over
// one edge label, both directions.
func TestQuickAdjEdgeLabel(t *testing.T) {
	f := func(rg randGraph) bool {
		g := rg.build()
		for v := uint32(0); v < uint32(rg.n); v++ {
			for _, d := range []Dir{Out, In} {
				for el := uint32(0); el < uint32(g.NumEdgeLabels()); el++ {
					got := g.AdjEdgeLabel(nil, v, d, el)
					if !equalU32(got, rg.refAdj(v, d, el, NoLabel)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAdjAny: AdjAny equals the naive full neighbor set.
func TestQuickAdjAny(t *testing.T) {
	f := func(rg randGraph) bool {
		g := rg.build()
		for v := uint32(0); v < uint32(rg.n); v++ {
			for _, d := range []Dir{Out, In} {
				got := g.AdjAny(nil, v, d)
				if !equalU32(got, rg.refAdj(v, d, NoLabel, NoLabel)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAdjExact: the exact (edge label, vertex label) group equals the
// naive filter.
func TestQuickAdjExact(t *testing.T) {
	f := func(rg randGraph) bool {
		g := rg.build()
		for v := uint32(0); v < uint32(rg.n); v++ {
			for el := uint32(0); el < uint32(g.NumEdgeLabels()); el++ {
				for vl := uint32(0); vl < uint32(g.NumLabels()); vl++ {
					got := g.Adj(v, Out, el, vl)
					if !equalU32(got, rg.refAdj(v, Out, el, vl)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHasEdge: HasEdge agrees with the edge list, including the
// wildcard label.
func TestQuickHasEdge(t *testing.T) {
	f := func(rg randGraph) bool {
		g := rg.build()
		ref := map[[3]uint32]bool{}
		refAny := map[[2]uint32]bool{}
		for _, e := range rg.edges {
			ref[e] = true
			refAny[[2]uint32{e[0], e[2]}] = true
		}
		for v := uint32(0); v < uint32(rg.n); v++ {
			for w := uint32(0); w < uint32(rg.n); w++ {
				for el := uint32(0); el < uint32(g.NumEdgeLabels()); el++ {
					if g.HasEdge(v, w, el) != ref[[3]uint32{v, el, w}] {
						return false
					}
				}
				if g.HasEdge(v, w, NoLabel) != refAny[[2]uint32{v, w}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDegreeAndInverseIndex: degrees match edge counts and the inverse
// vertex-label list matches the label assignment.
func TestQuickDegreeAndInverseIndex(t *testing.T) {
	f := func(rg randGraph) bool {
		g := rg.build()
		outDeg := make([]int, rg.n)
		inDeg := make([]int, rg.n)
		for _, e := range rg.edges {
			outDeg[e[0]]++
			inDeg[e[2]]++
		}
		for v := 0; v < rg.n; v++ {
			if g.Degree(uint32(v), Out) != outDeg[v] || g.Degree(uint32(v), In) != inDeg[v] {
				return false
			}
		}
		for l := uint32(0); l < uint32(g.NumLabels()); l++ {
			for _, v := range g.VerticesWithLabel(l) {
				if !containsU32(rg.labels[v], l) {
					return false
				}
			}
		}
		// Every labeled vertex appears in its inverse lists.
		for v, ls := range rg.labels {
			for _, l := range ls {
				if !intset.Contains(g.VerticesWithLabel(l), v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
