// Graph statistics and the compact neighborhood signature index.
//
// Stats carries the per-label cardinalities the cost-based matching order
// consumes: vertex counts per vertex label, edge counts and distinct
// subject/object counts per edge label, and log2 degree histograms. A
// Builder computes them for free while freezing the CSR arrays; an Overlay
// derives them from the base stats plus per-delta corrections, so snapshots
// stay O(delta).
//
// The signature index is the compact-neighborhood-index idea: each vertex
// carries a 64-bit Bloom signature over its incident (direction, edge label,
// neighbor label) triples — exactly the grouped-adjacency keys. A query
// vertex's required triples hash to a mask; a candidate whose signature is
// missing a required bit cannot match and is rejected without an adjacency
// walk. False positives are safe (later filters re-check), false negatives
// are impossible because every present group key sets its bit.
package graph

import "math/bits"

// DegreeBuckets is the number of log2 buckets in a degree histogram:
// bucket i holds vertices whose degree d satisfies bits.Len(d) == i, i.e.
// bucket 0 is degree 0, bucket 1 is degree 1, bucket 2 is degrees 2-3, ...
const DegreeBuckets = 33

// Stats holds precomputed cardinality statistics of one graph snapshot.
// All slices are indexed by label ID and sized to the snapshot's label
// spaces; the accessor methods bounds-check so callers can probe labels
// outside the space.
type Stats struct {
	Vertices int // total vertices
	Edges    int // total distinct (s, el, o) edges

	LabelVertices     []int // per vertex label: vertices carrying it
	EdgeLabelEdges    []int // per edge label: distinct edges
	EdgeLabelSubjects []int // per edge label: distinct subjects
	EdgeLabelObjects  []int // per edge label: distinct objects

	OutDegreeHist [DegreeBuckets]int // log2 histogram of out-degrees
	InDegreeHist  [DegreeBuckets]int // log2 histogram of in-degrees
}

// DegreeBucket returns the histogram bucket of degree d.
func DegreeBucket(d int) int {
	b := bits.Len(uint(d))
	if b >= DegreeBuckets {
		b = DegreeBuckets - 1
	}
	return b
}

// LabelCount returns the number of vertices carrying vertex label l.
func (s *Stats) LabelCount(l uint32) int {
	if int(l) >= len(s.LabelVertices) {
		return 0
	}
	return s.LabelVertices[l]
}

// EdgeCount returns the number of distinct edges labeled el.
func (s *Stats) EdgeCount(el uint32) int {
	if int(el) >= len(s.EdgeLabelEdges) {
		return 0
	}
	return s.EdgeLabelEdges[el]
}

// SubjectCount returns the number of distinct subjects of edges labeled el.
func (s *Stats) SubjectCount(el uint32) int {
	if int(el) >= len(s.EdgeLabelSubjects) {
		return 0
	}
	return s.EdgeLabelSubjects[el]
}

// ObjectCount returns the number of distinct objects of edges labeled el.
func (s *Stats) ObjectCount(el uint32) int {
	if int(el) >= len(s.EdgeLabelObjects) {
		return 0
	}
	return s.EdgeLabelObjects[el]
}

// SignatureBit returns the signature bit of one incident
// (direction, edge label, neighbor label) triple — a single set bit in a
// 64-bit word. The matcher hashes a query vertex's required triples with
// the same function, so data-side and query-side bits agree by
// construction.
func SignatureBit(d Dir, el, vl uint32) uint64 {
	x := uint64(el)<<33 ^ uint64(vl)<<1 ^ uint64(d)
	// splitmix64 finalizer: cheap, well-mixed, stable across platforms.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return 1 << (x & 63)
}

// finishStats fills g.stats from the frozen CSR arrays. The per-edge-label
// edge counts must already be in place (Build counts them while walking the
// deduplicated edge list).
func (g *Graph) finishStats(edgeLabelEdges []int) {
	st := &Stats{
		Vertices:       g.numVertices,
		Edges:          g.numEdges,
		EdgeLabelEdges: edgeLabelEdges,
	}
	st.LabelVertices = make([]int, g.numLabels)
	for l := 0; l < g.numLabels; l++ {
		st.LabelVertices[l] = g.invOff[l+1] - g.invOff[l]
	}
	st.EdgeLabelSubjects = make([]int, g.numEdgeLabels)
	st.EdgeLabelObjects = make([]int, g.numEdgeLabels)
	for el := 0; el < g.numEdgeLabels; el++ {
		st.EdgeLabelSubjects[el] = g.predSubOff[el+1] - g.predSubOff[el]
		st.EdgeLabelObjects[el] = g.predObjOff[el+1] - g.predObjOff[el]
	}
	for v := 0; v < g.numVertices; v++ {
		st.OutDegreeHist[DegreeBucket(int(g.outDeg[v]))]++
		st.InDegreeHist[DegreeBucket(int(g.inDeg[v]))]++
	}
	g.stats = st
}

// computeSignatures fills g.sig from the grouped adjacency: one pass over
// each direction's group keys, OR-ing the bit of every present
// (dir, edge label, neighbor label) group.
func (g *Graph) computeSignatures() {
	g.sig = make([]uint64, g.numVertices)
	for _, d := range [2]Dir{Out, In} {
		a := g.dir(d)
		for v := 0; v < g.numVertices; v++ {
			s := g.sig[v]
			for _, key := range a.groupKeys[a.vtxGroupOff[v]:a.vtxGroupOff[v+1]] {
				s |= SignatureBit(d, key.EdgeLabel, key.VertexLabel)
			}
			g.sig[v] = s
		}
	}
}

// signatureOf recomputes the signature of one dirty overlay vertex from its
// materialized merged adjacency.
func (vv *vertexView) signature() uint64 {
	var s uint64
	for _, key := range vv.out.keys {
		s |= SignatureBit(Out, key.EdgeLabel, key.VertexLabel)
	}
	for _, key := range vv.in.keys {
		s |= SignatureBit(In, key.EdgeLabel, key.VertexLabel)
	}
	return s
}

// Stats returns the precomputed statistics of the graph. The result is
// immutable and shared; callers must not mutate it.
func (g *Graph) Stats() *Stats { return g.stats }

// Signature returns the 64-bit neighborhood signature of v.
func (g *Graph) Signature(v uint32) uint64 {
	if int(v) >= len(g.sig) {
		return 0
	}
	return g.sig[v]
}

// Stats returns the corrected statistics of the overlay snapshot.
func (o *Overlay) Stats() *Stats { return o.stats }

// Signature returns the 64-bit neighborhood signature of v under the
// overlay: recomputed for dirty vertices, the base signature otherwise. A
// vertex beyond the base without materialized adjacency has no edges, so
// its signature is empty.
func (o *Overlay) Signature(v uint32) uint64 {
	if s, ok := o.sigs[v]; ok {
		return s
	}
	return o.base.Signature(v)
}
