package graph

import "sort"

// View is the read-only interface over a labeled data graph that the
// matching engine consumes. Two implementations exist: the immutable CSR
// *Graph built by a Builder, and the *Overlay a Delta produces, which merges
// a CSR base with a small set of edge/label additions and removals. Every
// method keeps the CSR contracts: returned slices are sorted, duplicate-free
// and must not be mutated by callers.
type View interface {
	// NumVertices reports the number of vertices.
	NumVertices() int
	// NumEdges reports the number of distinct (s, label, o) edges.
	NumEdges() int
	// NumLabels reports the size of the vertex-label space.
	NumLabels() int
	// NumEdgeLabels reports the size of the edge-label space.
	NumEdgeLabels() int

	// Labels returns the sorted label set of v.
	Labels(v uint32) []uint32
	// HasLabel reports whether v carries label l.
	HasLabel(v uint32, l uint32) bool
	// HasAllLabels reports whether v carries every label in ls.
	HasAllLabels(v uint32, ls []uint32) bool
	// VerticesWithLabel returns the sorted vertex IDs carrying label l.
	VerticesWithLabel(l uint32) []uint32

	// Degree returns the edge count of v in direction d.
	Degree(v uint32, d Dir) int
	// Adj returns the adjacency group adj(v, (el, vl)).
	Adj(v uint32, d Dir, el, vl uint32) []uint32
	// AdjEdgeLabel appends the union of v's neighbors over edge label el.
	AdjEdgeLabel(dst []uint32, v uint32, d Dir, el uint32) []uint32
	// AdjAny appends the union of all neighbors of v in direction d.
	AdjAny(dst []uint32, v uint32, d Dir) []uint32
	// AdjVertexLabel appends the union of v's neighbors carrying label vl.
	AdjVertexLabel(dst []uint32, v uint32, d Dir, vl uint32) []uint32
	// HasEdge reports whether v --el--> w exists (el == NoLabel: any label).
	HasEdge(v, w uint32, el uint32) bool
	// EdgeLabelsBetween appends the labels of all edges v --?--> w.
	EdgeLabelsBetween(dst []uint32, v, w uint32) []uint32
	// NeighborTypes returns the adjacency group keys of v in direction d.
	NeighborTypes(v uint32, d Dir) []NeighborType
	// GroupSize returns len(Adj(v, d, el, vl)) without materializing it.
	GroupSize(v uint32, d Dir, el, vl uint32) int
	// CountEdgeLabel totals v's group sizes with edge label el.
	CountEdgeLabel(v uint32, d Dir, el uint32) int
	// CountVertexLabel totals v's group sizes with neighbor label vl.
	CountVertexLabel(v uint32, d Dir, vl uint32) int

	// SubjectsOf returns the sorted distinct subjects of edges labeled el.
	SubjectsOf(el uint32) []uint32
	// ObjectsOf returns the sorted distinct objects of edges labeled el.
	ObjectsOf(el uint32) []uint32

	// Stats returns the snapshot's precomputed cardinality statistics.
	// The result is immutable, shared, and never nil.
	Stats() *Stats
	// Signature returns the 64-bit neighborhood signature of v: the OR of
	// SignatureBit over every (direction, edge label, neighbor label)
	// triple incident to v.
	Signature(v uint32) uint64
}

var (
	_ View = (*Graph)(nil)
	_ View = (*Overlay)(nil)
)

// rawEdge is one (edge label, neighbor) incidence of a vertex, the raw-edge
// currency the delta machinery merges before regrouping by neighbor label.
type rawEdge struct{ el, nb uint32 }

func rawLess(a, b rawEdge) bool {
	if a.el != b.el {
		return a.el < b.el
	}
	return a.nb < b.nb
}

// rawEdges appends the distinct (edge label, neighbor) pairs of v in
// direction d. The grouped adjacency files a neighbor once per neighbor
// label, so the group contents are collected, sorted and deduplicated.
func (g *Graph) rawEdges(dst []rawEdge, v uint32, d Dir) []rawEdge {
	if int(v) >= g.numVertices {
		return dst
	}
	a := g.dir(d)
	start := len(dst)
	lo, hi := a.vtxGroupOff[v], a.vtxGroupOff[v+1]
	for gi := lo; gi < hi; gi++ {
		el := a.groupKeys[gi].EdgeLabel
		for _, nb := range a.group(gi) {
			dst = append(dst, rawEdge{el, nb})
		}
	}
	tail := dst[start:]
	sort.Slice(tail, func(i, j int) bool { return rawLess(tail[i], tail[j]) })
	w := start
	for i := start; i < len(dst); i++ {
		if i == start || dst[i] != dst[w-1] {
			dst[w] = dst[i]
			w++
		}
	}
	return dst[:w]
}
