// Package intset provides algebra over sorted, duplicate-free []uint32
// slices. These are the working currency of the matching engine: adjacency
// groups, candidate lists, and inverse-label lists are all sorted ID slices,
// and the +INT optimization of TurboHOM++ is built on the k-way
// intersections implemented here.
//
// All functions treat nil and empty slices as the empty set. Inputs must be
// strictly increasing; outputs are strictly increasing.
package intset

import "sort"

// Contains reports whether x is a member of the sorted set s using binary
// search (galloping is not worthwhile for single lookups).
func Contains(s []uint32, x uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// SearchFrom returns the smallest index i >= lo with s[i] >= x, using
// galloping (exponential) search from lo. It is the building block for
// intersecting sets of very different sizes.
func SearchFrom(s []uint32, lo int, x uint32) int {
	if lo >= len(s) || s[lo] >= x {
		return lo
	}
	// Gallop: find a window (lo+step/2, lo+step] containing the boundary.
	step := 1
	hi := lo + 1
	for hi < len(s) && s[hi] < x {
		lo = hi
		step <<= 1
		hi += step
	}
	if hi > len(s) {
		hi = len(s)
	}
	// Binary search within (lo, hi].
	return lo + 1 + sort.Search(hi-lo-1, func(i int) bool { return s[lo+1+i] >= x })
}

// Intersect2 appends the intersection of a and b to dst and returns it.
// It adaptively picks a strategy: a linear merge when the sizes are similar,
// galloping from the smaller side otherwise. This mirrors the cost model in
// the paper's +INT discussion (merge scan vs repeated binary search).
func Intersect2(dst, a, b []uint32) []uint32 {
	if len(a) == 0 || len(b) == 0 {
		return dst
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	// Heuristic threshold: galloping wins when one side is much smaller.
	if len(b)/(len(a)+1) >= 8 {
		j := 0
		for _, x := range a {
			j = SearchFrom(b, j, x)
			if j == len(b) {
				break
			}
			if b[j] == x {
				dst = append(dst, x)
				j++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		switch {
		case ai == bj:
			dst = append(dst, ai)
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return dst
}

// IntersectK appends the k-way intersection of the given sets to dst and
// returns it. The sets are processed smallest-first so intermediate results
// shrink as fast as possible. With zero sets it returns dst unchanged; the
// caller decides what an empty intersection of zero sets means.
func IntersectK(dst []uint32, sets ...[]uint32) []uint32 {
	switch len(sets) {
	case 0:
		return dst
	case 1:
		return append(dst, sets[0]...)
	case 2:
		// The dominant case on the matcher's hot path (+INT with one
		// non-tree edge): delegate without any intermediate allocation.
		return Intersect2(dst, sets[0], sets[1])
	}
	// Order smallest-first without mutating the caller's slice header order.
	ordered := make([][]uint32, len(sets))
	copy(ordered, sets)
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i]) < len(ordered[j]) })

	cur := append([]uint32(nil), ordered[0]...)
	var tmp []uint32
	for _, s := range ordered[1:] {
		if len(cur) == 0 {
			return dst
		}
		tmp = Intersect2(tmp[:0], cur, s)
		cur, tmp = tmp, cur
	}
	return append(dst, cur...)
}

// Union2 appends the union of a and b to dst and returns it.
func Union2(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		switch {
		case ai == bj:
			dst = append(dst, ai)
			i++
			j++
		case ai < bj:
			dst = append(dst, ai)
			i++
		default:
			dst = append(dst, bj)
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// UnionK appends the k-way union of the given sets to dst and returns it.
func UnionK(dst []uint32, sets ...[]uint32) []uint32 {
	switch len(sets) {
	case 0:
		return dst
	case 1:
		return append(dst, sets[0]...)
	}
	cur := append([]uint32(nil), sets[0]...)
	var tmp []uint32
	for _, s := range sets[1:] {
		tmp = Union2(tmp[:0], cur, s)
		cur, tmp = tmp, cur
	}
	return append(dst, cur...)
}

// Diff appends a \ b to dst and returns it.
func Diff(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		switch {
		case ai == bj:
			i++
			j++
		case ai < bj:
			dst = append(dst, ai)
			i++
		default:
			j++
		}
	}
	return append(dst, a[i:]...)
}

// Dedup sorts s in place and removes duplicates, returning the shortened
// slice. It is used by index builders that accumulate unsorted IDs.
func Dedup(s []uint32) []uint32 {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// IsSorted reports whether s is strictly increasing (a valid set).
func IsSorted(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Equal reports whether a and b contain the same elements.
func Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
