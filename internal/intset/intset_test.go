package intset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// mkSet turns arbitrary values into a valid sorted set.
func mkSet(vals []uint32) []uint32 {
	return Dedup(append([]uint32(nil), vals...))
}

// mapSet is the reference implementation used by property tests.
func mapSet(s []uint32) map[uint32]bool {
	m := make(map[uint32]bool, len(s))
	for _, x := range s {
		m[x] = true
	}
	return m
}

func fromMap(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestContains(t *testing.T) {
	s := []uint32{1, 3, 5, 9, 100}
	for _, x := range s {
		if !Contains(s, x) {
			t.Errorf("Contains(%v, %d) = false, want true", s, x)
		}
	}
	for _, x := range []uint32{0, 2, 4, 6, 99, 101} {
		if Contains(s, x) {
			t.Errorf("Contains(%v, %d) = true, want false", s, x)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains(nil, 1) = true")
	}
}

func TestSearchFrom(t *testing.T) {
	s := []uint32{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	for lo := 0; lo <= len(s); lo++ {
		for x := uint32(0); x <= 22; x++ {
			got := SearchFrom(s, lo, x)
			want := lo + sort.Search(len(s)-lo, func(i int) bool { return s[lo+i] >= x })
			if got != want {
				t.Fatalf("SearchFrom(s, %d, %d) = %d, want %d", lo, x, got, want)
			}
		}
	}
}

func TestIntersect2Basic(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{nil, nil, nil},
		{[]uint32{1, 2, 3}, nil, nil},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, []uint32{2, 3}},
		{[]uint32{1, 5, 9}, []uint32{2, 6, 10}, nil},
		{[]uint32{7}, []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, []uint32{7}},
	}
	for _, c := range cases {
		got := Intersect2(nil, c.a, c.b)
		if !Equal(got, c.want) {
			t.Errorf("Intersect2(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Symmetric.
		got = Intersect2(nil, c.b, c.a)
		if !Equal(got, c.want) {
			t.Errorf("Intersect2(%v, %v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestIntersect2Property(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkSet(av), mkSet(bv)
		got := Intersect2(nil, a, b)
		am, bm := mapSet(a), mapSet(b)
		want := map[uint32]bool{}
		for x := range am {
			if bm[x] {
				want[x] = true
			}
		}
		return Equal(got, fromMap(want)) && IsSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntersect2Galloping(t *testing.T) {
	// Force the galloping path: one huge set, one tiny set.
	big := make([]uint32, 0, 10000)
	for i := 0; i < 10000; i++ {
		big = append(big, uint32(i*3))
	}
	small := []uint32{3, 299, 300, 29996, 29997}
	got := Intersect2(nil, small, big)
	want := []uint32{3, 300, 29997}
	if !Equal(got, want) {
		t.Errorf("galloping intersect = %v, want %v", got, want)
	}
}

func TestIntersectKProperty(t *testing.T) {
	f := func(av, bv, cv []uint32) bool {
		a, b, c := mkSet(av), mkSet(bv), mkSet(cv)
		got := IntersectK(nil, a, b, c)
		want := Intersect2(nil, Intersect2(nil, a, b), c)
		return Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntersectKEdge(t *testing.T) {
	if got := IntersectK(nil); got != nil {
		t.Errorf("IntersectK() = %v, want nil", got)
	}
	one := []uint32{1, 2}
	if got := IntersectK(nil, one); !Equal(got, one) {
		t.Errorf("IntersectK(one) = %v, want %v", got, one)
	}
	if got := IntersectK(nil, one, nil); len(got) != 0 {
		t.Errorf("IntersectK(one, empty) = %v, want empty", got)
	}
}

func TestUnion2Property(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkSet(av), mkSet(bv)
		got := Union2(nil, a, b)
		m := mapSet(a)
		for x := range mapSet(b) {
			m[x] = true
		}
		return Equal(got, fromMap(m)) && IsSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnionKProperty(t *testing.T) {
	f := func(av, bv, cv []uint32) bool {
		a, b, c := mkSet(av), mkSet(bv), mkSet(cv)
		got := UnionK(nil, a, b, c)
		want := Union2(nil, Union2(nil, a, b), c)
		return Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDiffProperty(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkSet(av), mkSet(bv)
		got := Diff(nil, a, b)
		bm := mapSet(b)
		want := map[uint32]bool{}
		for _, x := range a {
			if !bm[x] {
				want[x] = true
			}
		}
		return Equal(got, fromMap(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDedup(t *testing.T) {
	got := Dedup([]uint32{5, 1, 5, 3, 1, 1, 9})
	want := []uint32{1, 3, 5, 9}
	if !Equal(got, want) {
		t.Errorf("Dedup = %v, want %v", got, want)
	}
	if got := Dedup(nil); got != nil {
		t.Errorf("Dedup(nil) = %v", got)
	}
	if got := Dedup([]uint32{7}); !Equal(got, []uint32{7}) {
		t.Errorf("Dedup([7]) = %v", got)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil) || !IsSorted([]uint32{1}) || !IsSorted([]uint32{1, 2, 9}) {
		t.Error("IsSorted false negative")
	}
	if IsSorted([]uint32{1, 1}) || IsSorted([]uint32{2, 1}) {
		t.Error("IsSorted false positive")
	}
}

func TestDstReuse(t *testing.T) {
	// Appending into a preallocated dst must not corrupt results.
	dst := make([]uint32, 0, 64)
	a := []uint32{1, 2, 3, 4}
	b := []uint32{2, 4, 6}
	dst = Intersect2(dst, a, b)
	dst = Union2(dst, a, b) // appended after the intersection
	want := []uint32{2, 4, 1, 2, 3, 4, 6}
	if !Equal(dst, want) {
		t.Errorf("chained append = %v, want %v", dst, want)
	}
}

func BenchmarkIntersect2Merge(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomSet(r, 10000, 40000)
	c := randomSet(r, 10000, 40000)
	var dst []uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect2(dst[:0], a, c)
	}
}

func BenchmarkIntersect2Gallop(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomSet(r, 50, 400000)
	c := randomSet(r, 100000, 400000)
	var dst []uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect2(dst[:0], a, c)
	}
}

func randomSet(r *rand.Rand, n, max int) []uint32 {
	s := make([]uint32, n)
	for i := range s {
		s[i] = uint32(r.Intn(max))
	}
	return Dedup(s)
}
