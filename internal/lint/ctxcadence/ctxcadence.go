// Package ctxcadence enforces the matcher's cancellation contract. The
// engine promises that deadlines, Rows.Close and the pipeline's stop flag
// take effect promptly even inside one enormous candidate region, which
// requires two disciplines:
//
//  1. Every enumeration loop in the core matcher — a loop that drives the
//     search by calling search/bindWild/step/resume/emit and friends —
//     must contain a cancellation checkpoint: a ctx.Err() call, a read of
//     the searchState stopped flag, a stop.Load() on the pipeline's
//     abandon flag, or a checkCancel-style helper. (The 2048-step cadence
//     inside search counts: the ctx.Err() call is syntactically inside
//     the loop.) Bounded per-frame loops that only push frames
//     (pushWild/pushExpand) are not enumeration drivers and are exempt by
//     construction — they are excluded from the driver call set.
//
//  2. A function that accepts a context.Context must thread it: calling
//     context.Background() or context.TODO() inside such a function
//     detaches every callee beneath from the caller's cancellation. The
//     one idiomatic exception is the nil-guard rebind
//     `if ctx == nil { ctx = context.Background() }`, recognized as a
//     plain assignment into an existing context variable.
//
//  3. A serving-layer loop that pumps a cursor — any for/range statement
//     whose condition, post statement, or body calls a no-argument Next()
//     method returning bool — must also contain a checkpoint. HTTP
//     handlers sit between a cursor and a client socket; net/http cancels
//     the request context when the client disconnects, but a Write to a
//     dead connection can keep succeeding into kernel buffers for a
//     while, so a row-emission loop that never consults ctx.Err() keeps
//     the matcher burning on a result nobody will read. The bool-result
//     shape excludes container/list-style iterators (whose Next returns
//     the next element, not a bool).
//
// Rule 1 is scoped to the matcher packages via -ctxcadence.pkgs
// (default repro/internal/core); rule 2 applies everywhere; rule 3 is
// scoped to the serving packages via -ctxcadence.httppkgs (default
// repro/internal/server).
package ctxcadence

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxcadence",
	Doc:  "check that core enumeration loops contain a cancellation checkpoint and that ctx-taking functions do not detach callees with context.Background/TODO",
	Run:  run,
}

var pkgs, httppkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", "repro/internal/core",
		"comma-separated packages whose enumeration loops need cancellation checkpoints (suffix match)")
	Analyzer.Flags.StringVar(&httppkgs, "httppkgs", "repro/internal/server",
		"comma-separated serving packages whose cursor-pumping loops need cancellation checkpoints (suffix match)")
}

// driverFuncs are the same-package calls that advance the enumeration:
// a loop containing one can run for an unbounded number of solutions and
// therefore needs a checkpoint. Frame-push helpers (push*) and the
// bounded region exploration (explore) are deliberately absent.
var driverFuncs = map[string]bool{
	"search":      true,
	"searchNEC":   true,
	"bindWild":    true,
	"expandClass": true,
	"emit":        true,
	"emitMatch":   true,
	"step":        true,
	"resume":      true,
	"descend":     true,
	"runSpan":     true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inScope := lintutil.InScope(pass, pkgs)
	inServe := lintutil.InScope(pass, httppkgs)
	for _, file := range lintutil.NonTestFiles(pass) {
		if inScope {
			checkLoops(pass, file)
		}
		if inServe {
			checkCursorLoops(pass, file)
		}
		checkBackground(pass, file)
	}
	return nil, nil
}

// checkLoops flags enumeration loops without a cancellation checkpoint.
func checkLoops(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var pos token.Pos
		switch n := n.(type) {
		case *ast.ForStmt:
			body, pos = n.Body, n.Pos()
		case *ast.RangeStmt:
			body, pos = n.Body, n.Pos()
		default:
			return true
		}
		if !callsDriver(pass, body) {
			return true
		}
		if !hasCheckpoint(pass, body) {
			pass.Reportf(pos, "enumeration loop drives the search but has no cancellation checkpoint (ctx.Err / stopped flag / stop.Load); Close and deadlines would stall inside it")
		}
		return true
	})
}

// callsDriver reports whether the loop body calls a same-package
// enumeration driver.
func callsDriver(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := lintutil.CalleeName(call)
		if !driverFuncs[name] {
			return true
		}
		// Same-package functions/methods only: a stdlib Stream.resume or
		// similar must not trigger.
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[fn]; o != nil && o.Pkg() == pass.Pkg {
				found = true
			}
		case *ast.SelectorExpr:
			if o := pass.TypesInfo.Uses[fn.Sel]; o != nil && o.Pkg() == pass.Pkg {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasCheckpoint reports whether the loop body contains a cancellation
// check in one of the recognized forms.
func hasCheckpoint(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			name := lintutil.CalleeName(n)
			switch name {
			case "Err":
				if recv := lintutil.ReceiverExpr(n); recv != nil {
					if t := pass.TypesInfo.TypeOf(recv); t != nil && lintutil.IsContextType(t) {
						found = true
					}
				}
			case "Load":
				if recv := lintutil.ReceiverExpr(n); recv != nil && selectorName(recv) == "stop" {
					found = true
				}
			case "checkCancel", "cancelled", "canceled", "checkCancelled":
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "stopped" {
				found = true
			}
		case *ast.Ident:
			if n.Name == "stopped" {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkCursorLoops flags serving-layer loops that pump a cursor (any
// no-arg Next() method returning bool, anywhere in the for statement —
// `for rows.Next()` and `for next := first; next; next = rows.Next()`
// alike) without a cancellation checkpoint in the body.
func checkCursorLoops(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		if !callsCursorNext(pass, n) {
			return true
		}
		if !hasCheckpoint(pass, body) {
			pass.Reportf(n.Pos(), "cursor-pumping loop has no cancellation checkpoint; check ctx.Err() on the emission cadence so a disconnected client aborts the search")
		}
		return true
	})
}

// callsCursorNext reports whether the for/range statement calls a
// cursor-style Next: a no-argument method returning exactly one bool.
func callsCursorNext(pass *analysis.Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 || lintutil.CalleeName(call) != "Next" {
			return true
		}
		if lintutil.ReceiverExpr(call) == nil {
			return true
		}
		if t, ok := pass.TypesInfo.TypeOf(call).(*types.Basic); ok && t.Kind() == types.Bool {
			found = true
		}
		return !found
	})
	return found
}

// selectorName returns the final name of an ident/selector chain
// ("stop" for ps.stop), or "".
func selectorName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// checkBackground flags context.Background()/TODO() inside functions that
// already receive a context, except the nil-guard rebind.
func checkBackground(pass *analysis.Pass, file *ast.File) {
	// ctxFuncs holds every function node that declares a context.Context
	// parameter, with its span.
	type span struct {
		pos, end token.Pos
	}
	var ctxFuncs []span
	ast.Inspect(file, func(n ast.Node) bool {
		params := lintutil.FuncParams(n)
		if params == nil {
			return true
		}
		for _, f := range params.List {
			if t := pass.TypesInfo.TypeOf(f.Type); t != nil && lintutil.IsContextType(t) {
				ctxFuncs = append(ctxFuncs, span{n.Pos(), n.End()})
				break
			}
		}
		return true
	})
	if len(ctxFuncs) == 0 {
		return
	}

	// rebinds collects Background/TODO calls that re-bind an existing
	// context variable (the nil-guard), keyed by call position.
	rebinds := map[token.Pos]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBackgroundCall(pass, call) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if t := pass.TypesInfo.TypeOf(id); t != nil && lintutil.IsContextType(t) {
					rebinds[call.Pos()] = true
				}
			}
		}
		return true
	})

	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBackgroundCall(pass, call) || rebinds[call.Pos()] {
			return true
		}
		for _, s := range ctxFuncs {
			if s.pos <= call.Pos() && call.Pos() < s.end {
				pass.Reportf(call.Pos(), "context.%s inside a function that receives a ctx; thread the caller's ctx so cancellation reaches this callee", lintutil.CalleeName(call))
				return true
			}
		}
		return true
	})
}

func isBackgroundCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
