package ctxcadence_test

import (
	"testing"

	"repro/internal/lint/ctxcadence"
	"repro/internal/lint/linttest"
)

// TestCtxCadence runs under the default -ctxcadence.pkgs scope: the
// testdata package named repro/internal/core gets the loop-checkpoint
// rule; package b only the everywhere context-threading rule.
func TestCtxCadence(t *testing.T) {
	linttest.Run(t, linttest.TestData(), ctxcadence.Analyzer, "repro/internal/core", "b")
}
