package ctxcadence_test

import (
	"testing"

	"repro/internal/lint/ctxcadence"
	"repro/internal/lint/linttest"
)

// TestCtxCadence runs under the default flag scopes: the testdata package
// named repro/internal/core gets the enumeration-loop rule, the one named
// repro/internal/server the cursor-pumping rule, and package b only the
// everywhere context-threading rule.
func TestCtxCadence(t *testing.T) {
	linttest.Run(t, linttest.TestData(), ctxcadence.Analyzer,
		"repro/internal/core", "repro/internal/server", "b")
}
