// Package b is outside the matcher scope: its loops are not held to the
// checkpoint rule, but the context-threading rule applies everywhere.
package b

import "context"

type walker struct{ n int }

func (w *walker) search(dc int) { w.n++ }

// freeLoop calls something named search, but package b is not on the
// enumeration path: no checkpoint required.
func freeLoop(w *walker, xs []int) {
	for range xs {
		w.search(0)
	}
}

// stillNoDetach: rule 2 is not scoped.
func stillNoDetach(ctx context.Context, f func(context.Context)) {
	f(context.Background()) // want `context.Background inside a function that receives a ctx`
}
