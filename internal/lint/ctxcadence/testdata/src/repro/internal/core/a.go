// Package core (testdata) exercises the cancellation-cadence rules in
// the analyzer's default scope: enumeration loops need a checkpoint, and
// ctx-taking functions must not detach callees.
package core

import (
	"context"
	"sync/atomic"
)

type state struct {
	ctx     context.Context
	stopped bool
	count   int
}

// search and emit are enumeration drivers: a loop around them can run for
// an unbounded number of solutions.
func (s *state) search(dc int) { s.count++ }
func (s *state) emit()         { s.count++ }

// pushWild is a bounded per-frame helper, deliberately outside the driver
// set.
func (s *state) pushWild(v uint32) { s.count += int(v) }

// uncheckedLoop drives the search with no way for Close or a deadline to
// interrupt it.
func (s *state) uncheckedLoop(cands []uint32) {
	for range cands { // want `enumeration loop drives the search but has no cancellation checkpoint`
		s.search(0)
	}
}

// stoppedFlagLoop checks the searchState's stop flag each iteration.
func (s *state) stoppedFlagLoop(cands []uint32) {
	for range cands {
		if s.stopped {
			return
		}
		s.search(0)
	}
}

// cadenceLoop is the matcher's real shape: a strided ctx.Err() check.
func (s *state) cadenceLoop(cands []uint32) {
	for i := range cands {
		if i&2047 == 0 && s.ctx.Err() != nil {
			return
		}
		s.emit()
	}
}

type pipe struct{ stop atomic.Bool }

// stopLoadLoop polls the pipeline's abandon flag.
func (p *pipe) stopLoadLoop(s *state, cands []uint32) {
	for range cands {
		if p.stop.Load() {
			return
		}
		s.search(0)
	}
}

// boundedPush only pushes frames; it is not an enumeration loop.
func (s *state) boundedPush(frames []uint32) {
	for _, f := range frames {
		s.pushWild(f)
	}
}

// detach severs the caller's cancellation from everything work does.
func detach(ctx context.Context, work func(context.Context)) {
	work(context.Background()) // want `context.Background inside a function that receives a ctx`
}

// detachTODO is the same bug spelled TODO.
func detachTODO(ctx context.Context, work func(context.Context)) {
	work(context.TODO()) // want `context.TODO inside a function that receives a ctx`
}

// nilGuard is the idiomatic rebind: allowed.
func nilGuard(ctx context.Context, work func(context.Context)) {
	if ctx == nil {
		ctx = context.Background()
	}
	work(ctx)
}
