// Package server (testdata) exercises the serving-layer cursor rule: a
// loop pumping a bool-returning Next() needs a cancellation checkpoint.
// The Rows stub stands in for the engine cursor so the fixture does not
// drag net/http or the real engine into the linttest importer.
package server

import "context"

type Rows struct{ n int }

func (r *Rows) Next() bool  { r.n--; return r.n > 0 }
func (r *Rows) Row() []int  { return nil }
func (r *Rows) Close() bool { return true }

type request struct{ ctx context.Context }

func (r *request) Context() context.Context { return r.ctx }

func write([]int) {}

// pumpUnchecked streams rows with no way to notice a dead client.
func pumpUnchecked(rows *Rows) {
	for rows.Next() { // want `cursor-pumping loop has no cancellation checkpoint`
		write(rows.Row())
	}
}

// pumpPostStmt hides the Next in the post statement, the handler's real
// shape when the first row is pulled before the loop.
func pumpPostStmt(rows *Rows, first bool) {
	for next := first; next; next = rows.Next() { // want `cursor-pumping loop has no cancellation checkpoint`
		write(rows.Row())
	}
}

// pumpChecked consults the request context each iteration.
func pumpChecked(req *request, rows *Rows) {
	for rows.Next() {
		if req.Context().Err() != nil {
			break
		}
		write(rows.Row())
	}
}

// pumpCadence checks on a stride, like the handler's flush cadence.
func pumpCadence(ctx context.Context, rows *Rows) {
	i := 0
	for next := true; next; next = rows.Next() {
		if i%32 == 0 && ctx.Err() != nil {
			break
		}
		i++
		write(rows.Row())
	}
}

// listElem mimics container/list: Next returns an element, not a bool,
// so walking a list is not cursor pumping.
type listElem struct{ next *listElem }

func (e *listElem) Next() *listElem { return e.next }

func walkList(front *listElem) int {
	n := 0
	for e := front; e != nil; e = e.Next() {
		n++
	}
	return n
}

// drainBounded ranges over a slice; no cursor involved.
func drainBounded(vals []int) int {
	sum := 0
	for _, v := range vals {
		sum += v
	}
	return sum
}
