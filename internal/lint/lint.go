// Package lint assembles the turbolint analyzer suite: project-specific
// go/analysis checkers that mechanically enforce the engine's concurrency
// and determinism invariants (see each analyzer's package documentation
// and the "Enforced invariants" section of DESIGN.md).
package lint

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/ctxcadence"
	"repro/internal/lint/maporder"
	"repro/internal/lint/rowclone"
	"repro/internal/lint/snapshotpin"
	"repro/internal/lint/undopaired"
)

// Analyzers returns the full turbolint suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxcadence.Analyzer,
		maporder.Analyzer,
		rowclone.Analyzer,
		snapshotpin.Analyzer,
		undopaired.Analyzer,
	}
}
