// Package linttest runs an analyzer over GOPATH-style testdata packages
// and checks its diagnostics against // want annotations — a small,
// offline stand-in for golang.org/x/tools/go/analysis/analysistest (the
// vendored x/tools subset ships the analysis framework and the
// unitchecker driver, not the test harness).
//
// Layout and annotation syntax follow analysistest: a package named
// "repro/internal/core" lives in testdata/src/repro/internal/core/*.go,
// and a comment of the form
//
//	s.used[v] = true // want `binding established`
//
// asserts that the analyzer reports a diagnostic on that line whose
// message matches the quoted regular expression (several patterns assert
// several diagnostics). Diagnostics without a matching annotation, and
// annotations without a matching diagnostic, both fail the test.
//
// Packages are type-checked with the source importer, so testdata may
// import the standard library (context, sort, sync/atomic, ...) but not
// other modules. Facts are not supported — the turbolint analyzers are
// package-local by design.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory (go test always runs with the package directory as cwd).
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run applies a to each named package under dir/src and compares the
// diagnostics with the packages' // want annotations. Package names with
// slashes map to nested directories, so scoped analyzers can be tested
// under their real import paths.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	for _, name := range pkgNames {
		runPackage(t, dir, a, name)
	}
}

func runPackage(t *testing.T, dir string, a *analysis.Analyzer, pkgName string) {
	t.Helper()
	srcDir := filepath.Join(dir, "src", filepath.FromSlash(pkgName))

	fset := token.NewFileSet()
	files, err := parseDir(fset, srcDir)
	if err != nil {
		t.Fatalf("package %s: %v", pkgName, err)
	}
	if len(files) == 0 {
		t.Fatalf("package %s: no Go files in %s", pkgName, srcDir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(pkgName, fset, files, info)
	if len(typeErrs) > 0 {
		for _, e := range typeErrs {
			t.Errorf("package %s: type error: %v", pkgName, e)
		}
		t.Fatalf("package %s: type-check failed", pkgName)
	}

	diags := execute(t, a, fset, files, pkg, info)
	check(t, fset, files, pkgName, diags)
}

// execute runs a (and, transitively, its Requires) over one package and
// returns the root analyzer's diagnostics.
func execute(t *testing.T, root *analysis.Analyzer, fset *token.FileSet,
	files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	t.Helper()
	results := map[*analysis.Analyzer]interface{}{}
	var diags []analysis.Diagnostic

	var run func(a *analysis.Analyzer)
	run = func(a *analysis.Analyzer) {
		if _, done := results[a]; done {
			return
		}
		for _, req := range a.Requires {
			run(req)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if a == root {
					diags = append(diags, d)
				}
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s failed: %v", a.Name, err)
		}
		results[a] = res
	}
	run(root)
	return diags
}

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	re      *regexp.Regexp
	text    string
	matched bool
}

type lineKey struct {
	file string
	line int
}

// check diffs the diagnostics against the files' // want annotations.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, pkgName string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[lineKey][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, err := parseWant(c.Text)
				if err != nil {
					pos := fset.Position(c.Pos())
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				if patterns == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{filepath.Base(pos.Filename), pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, text: p})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := lineKey{filepath.Base(pos.Filename), pos.Line}
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: %s:%d: unexpected diagnostic: %s", pkgName, key.file, key.line, d.Message)
		}
	}

	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", pkgName, k.file, k.line, exp.text)
			}
		}
	}
}

// parseWant extracts the regexp patterns of a // want comment, nil when
// the comment is not a want annotation.
func parseWant(comment string) ([]string, error) {
	text := comment
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want")
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, nil
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil, fmt.Errorf("want comment with no pattern")
	}
	var patterns []string
	for rest != "" {
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("want pattern must be a quoted or backquoted Go string: %q", rest)
		}
		p, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", quoted, err)
		}
		patterns = append(patterns, p)
		rest = strings.TrimSpace(rest[len(quoted):])
	}
	return patterns, nil
}

// parseDir parses every non-test .go file of one directory.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
