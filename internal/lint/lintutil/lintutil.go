// Package lintutil holds the small shared helpers of the turbolint
// analyzers: package scoping, test-file filtering, and common AST/type
// queries. The analyzers are project-specific by design — they encode the
// engine's concurrency and determinism invariants — so the helpers lean on
// names and shapes from this repository (searchState, regionCursor,
// transform.Data) rather than trying to be generic.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// InScope reports whether the package under analysis matches the
// comma-separated path list in pkgs. An empty list means every package.
// Each entry matches the package path exactly or as a path suffix
// ("internal/core" matches "repro/internal/core"), which lets analyzer
// testdata packages stand in for the real ones.
func InScope(pass *analysis.Pass, pkgs string) bool {
	if pkgs == "" {
		return true
	}
	path := pass.Pkg.Path()
	for _, p := range strings.Split(pkgs, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file at pos lives in a _test.go file.
// The analyzers skip test files: tests deliberately violate the invariants
// (regression tests reproduce the historical bugs) and test-local visitors
// materialize borrowed rows on purpose under controlled lifetimes.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// NonTestFiles yields the syntax trees of the package's non-test files.
func NonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if !IsTestFile(pass, f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// NamedName returns the name of the (possibly pointer-wrapped, possibly
// aliased) named type of t, or "".
func NamedName(t types.Type) string {
	if t == nil {
		return ""
	}
	t = t.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	// Underlying strips the name; walk the original instead.
	return namedName(t)
}

func namedName(t types.Type) string {
	switch t := t.(type) {
	case *types.Pointer:
		return namedName(t.Elem())
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return ""
}

// TypeName returns the name of t's named type after stripping pointers,
// or "" when t is unnamed.
func TypeName(t types.Type) string { return namedName(t) }

// CalleeName returns the bare name of the function or method a call
// invokes ("Data" for e.Data(), "sort" never — this is the Sel/Ident name
// only), or "".
func CalleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// ReceiverExpr returns the receiver expression of a method-style call
// (x in x.M()), or nil for plain calls.
func ReceiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// EnclosingFuncs maps every node in the file to its innermost enclosing
// function node (FuncDecl or FuncLit) by position. Use FuncFor on the
// returned index.
type EnclosingFuncs struct {
	fset  *token.FileSet
	funcs []funcSpan
}

type funcSpan struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	pos  token.Pos
	end  token.Pos
}

// IndexFuncs builds the enclosing-function index for f.
func IndexFuncs(fset *token.FileSet, f *ast.File) *EnclosingFuncs {
	e := &EnclosingFuncs{fset: fset}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			e.funcs = append(e.funcs, funcSpan{node: n, pos: n.Pos(), end: n.End()})
		}
		return true
	})
	return e
}

// FuncFor returns the innermost function whose span contains pos, or nil.
func (e *EnclosingFuncs) FuncFor(pos token.Pos) ast.Node {
	var best ast.Node
	// token.Pos is int-sized; 1<<60 would overflow it on 32-bit builds.
	bestSize := token.Pos(^uint(0) >> 1)
	for _, fs := range e.funcs {
		if fs.pos <= pos && pos < fs.end {
			if size := fs.end - fs.pos; size < bestSize {
				best, bestSize = fs.node, size
			}
		}
	}
	return best
}

// FuncBody returns the body of a FuncDecl or FuncLit node.
func FuncBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// FuncParams returns the parameter field list of a FuncDecl or FuncLit.
func FuncParams(n ast.Node) *ast.FieldList {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Type.Params
	case *ast.FuncLit:
		return n.Type.Params
	}
	return nil
}
