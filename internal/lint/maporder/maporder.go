// Package maporder protects the engine's byte-identical-order guarantee:
// the row sequence a query produces is identical for every worker count,
// which means nothing on the ordered-emission path — core emit, pipeline
// replay, engine stream/order — may depend on Go's randomized map
// iteration order.
//
// Within the configured packages (-maporder.pkgs, default the core and
// engine packages) every `range` over a map is a finding, with two
// idiomatic exemptions:
//
//   - map-to-map transfer: a body that only writes into the elements of
//     other maps (b[k] = v) is order-independent;
//   - collect-then-sort: a body that appends the ranged keys/values to a
//     slice which a later statement in the same function passes to a
//     sorting call (sort.Slice, slices.Sort, a local sortStrings, ...)
//     establishes its own deterministic order.
//
// Everything else must iterate a sorted key slice instead. The exemptions
// are deliberately narrow: a false positive becomes a testdata case and,
// if legitimate, a new exemption — never an inline suppression.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "forbid range-over-map on the ordered-emission path unless the iteration is order-independent or sorted afterwards",
	Run:  run,
}

var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", "repro/internal/core,repro/internal/engine",
		"comma-separated packages on the ordered-emission path (suffix match)")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.InScope(pass, pkgs) {
		return nil, nil
	}
	for _, file := range lintutil.NonTestFiles(pass) {
		funcs := lintutil.IndexFuncs(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if mapToMapTransfer(pass, rng) || collectThenSort(pass, funcs, rng) {
				return true
			}
			pass.Reportf(rng.Pos(), "range over map on the ordered-emission path: iteration order is nondeterministic and breaks the byte-identical row order guarantee; iterate sorted keys (or collect and sort) instead")
			return true
		})
	}
	return nil, nil
}

// mapToMapTransfer reports whether the range body consists solely of
// assignments whose every target is an element of some map — a pure
// key-by-key transfer, which no iteration order can perturb.
func mapToMapTransfer(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				return false
			}
			xt := pass.TypesInfo.TypeOf(idx.X)
			if xt == nil {
				return false
			}
			if _, isMap := xt.Underlying().(*types.Map); !isMap {
				return false
			}
		}
	}
	return true
}

// collectThenSort reports whether the range body appends into slices that
// a later statement of the same function sorts. The sort is recognized
// syntactically: a call whose callee name contains "sort"
// (sort.Slice, slices.SortFunc, sortStrings, ...) taking the collected
// slice — matched by expression text — as an argument, positioned after
// the range statement.
func collectThenSort(pass *analysis.Pass, funcs *lintutil.EnclosingFuncs, rng *ast.RangeStmt) bool {
	targets := map[string]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			targets[exprText(as.Lhs[i])] = true
		}
		return true
	})
	if len(targets) == 0 {
		return false
	}
	fn := funcs.FuncFor(rng.Pos())
	body := lintutil.FuncBody(fn)
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted || call.Pos() < rng.End() {
			return true
		}
		name := lintutil.CalleeName(call)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if x := exprText(sel.X); x != "" {
				name = x + "." + name // sort.Slice, slices.SortFunc, ...
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if targets[exprText(arg)] {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// exprText renders simple expressions (identifiers, selectors, index
// expressions over them) to a comparable string; anything more complex
// yields "" and never matches.
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprText(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		x, i := exprText(e.X), exprText(e.Index)
		if x != "" && i != "" {
			return x + "[" + i + "]"
		}
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}
