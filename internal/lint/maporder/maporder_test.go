package maporder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/maporder"
)

// TestMapOrder runs under the analyzer's default -maporder.pkgs scope:
// the testdata package named repro/internal/core is on the ordered
// emission path; package b is not and must stay silent.
func TestMapOrder(t *testing.T) {
	linttest.Run(t, linttest.TestData(), maporder.Analyzer, "repro/internal/core", "b")
}
