// Package b is outside the ordered-emission path: map iteration order is
// free here, so nothing is reported.
package b

func anyOrder(m map[string]int, sink func(string, int)) {
	for k, v := range m {
		sink(k, v)
	}
}
