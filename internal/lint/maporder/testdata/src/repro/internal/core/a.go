// Package core (testdata) exercises the ordered-emission-path rule under
// the analyzer's default scope: range-over-map is a finding unless the
// iteration is order-independent or sorted afterwards.
package core

import "sort"

// emitRaw feeds rows straight out of map iteration order: the emitted
// sequence differs between runs and between worker counts.
func emitRaw(m map[string]int, emit func(string, int)) {
	for k, v := range m { // want `range over map on the ordered-emission path`
		emit(k, v)
	}
}

// collectNoSort materializes the keys but never orders them, so the
// nondeterminism just moves into the returned slice.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map on the ordered-emission path`
		keys = append(keys, k)
	}
	return keys
}

// collectSorted is the idiom the analyzer demands: collect, then sort.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectSortSlice is the sort.Slice shape that once false-positived
// (the matcher's neighborhood-label filter builds nlf[u] this way).
func collectSortSlice(m map[uint32][]uint32, u int) [][]uint32 {
	nlf := make([][]uint32, u+1)
	for _, vs := range m {
		nlf[u] = append(nlf[u], vs...)
	}
	sort.Slice(nlf[u], func(i, j int) bool { return nlf[u][i] < nlf[u][j] })
	return nlf
}

// sortLocal recognizes project-local sorting helpers by name.
func sortLocal(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) { sort.Strings(s) }

// transfer writes key-by-key into another map: no order dependence.
func transfer(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// sortOther sorts a different slice than the one collected; the collected
// one still leaks map order.
func sortOther(m map[string]int, other []string) []string {
	var keys []string
	for k := range m { // want `range over map on the ordered-emission path`
		keys = append(keys, k)
	}
	sort.Strings(other)
	return keys
}
