// Package rowclone enforces the matcher's row ownership contract: a Match
// delivered to a visitor callback is BORROWED — its Vertices/EdgeLabels
// backing arrays belong to the matcher and are reused for the next
// solution as soon as the callback returns. A visitor may read the row,
// or hand it to a callee that finishes with it before returning, but it
// must clone before the row (or any slice inside it) outlives the
// callback: stored to a captured variable, appended to a result slice,
// sent on a channel, or tucked into a struct.
//
// PR 4 shipped exactly this bug: the pipeline's point-shape fast path
// returned N aliased rows, all sharing one backing array, so every row of
// the materialized result held the last solution. This analyzer flags the
// pattern mechanically.
//
// Detection: for every call that passes a function literal (or a
// same-package function) where the callee expects a Visitor — a
// func(Match) bool, by name or by shape — the callback's Match parameter
// and everything aliasing it is tracked as borrowed. Escaping a borrowed
// value is a finding. Calls whose callee is named runPipeline are exempt:
// the pipeline delivers owned rows (each worker clones into its buffer
// before the reorder stage), so its consumer may retain them freely.
//
// Cloning launders the taint: mt.Clone(), append([]uint32(nil), s...),
// slices.Clone(s), and copy(dst, s) all produce owned memory. Passing a
// borrowed row as a call argument is not a finding — synchronous callees
// are assumed to finish with the row before returning (the analysis is
// intra-procedural; the callee's own visitor obligations are checked at
// its own callback sites).
package rowclone

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "rowclone",
	Doc:  "check that borrowed matcher rows (core.Match and its slices) are cloned before being retained beyond the visitor callback",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	decls := funcDecls(pass)
	seen := map[ast.Node]bool{}

	for _, file := range lintutil.NonTestFiles(pass) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lintutil.CalleeName(call) == "runPipeline" {
				return true // owning lender: pipeline rows are deep copies
			}
			sig := calleeSignature(pass, call)
			if sig == nil {
				return true
			}
			for i, arg := range call.Args {
				if i >= sig.Params().Len() && !sig.Variadic() {
					break
				}
				pt := paramType(sig, i)
				if !isVisitorType(pt) {
					continue
				}
				switch fn := ast.Unparen(arg).(type) {
				case *ast.FuncLit:
					if !seen[fn] {
						seen[fn] = true
						checkVisitor(pass, fn.Type.Params, fn.Body)
					}
				case *ast.Ident:
					if decl := declFor(pass, decls, fn); decl != nil && !seen[decl] {
						seen[decl] = true
						if !lintutil.IsTestFile(pass, decl.Pos()) {
							checkVisitor(pass, decl.Type.Params, decl.Body)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// funcDecls indexes the package's function declarations by object, so a
// named function passed as a visitor can be analyzed at its definition.
func funcDecls(pass *analysis.Pass) map[types.Object]*ast.FuncDecl {
	m := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					m[obj] = fd
				}
			}
		}
	}
	return m
}

func declFor(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, id *ast.Ident) *ast.FuncDecl {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	return decls[obj]
}

func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func paramType(sig *types.Signature, i int) types.Type {
	if sig.Variadic() && i >= sig.Params().Len()-1 {
		last := sig.Params().At(sig.Params().Len() - 1).Type()
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i < sig.Params().Len() {
		return sig.Params().At(i).Type()
	}
	return nil
}

// isVisitorType reports whether t is the matcher's visitor shape: a named
// type Visitor, or any func(Match) bool.
func isVisitorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if lintutil.TypeName(t) == "Visitor" {
		return true
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
		return false
	}
	return lintutil.TypeName(sig.Params().At(0).Type()) == "Match"
}

// checkVisitor runs the borrow analysis over one visitor body: params of
// type Match seed the borrowed set, simple aliases join it, and escapes
// are reported.
func checkVisitor(pass *analysis.Pass, params *ast.FieldList, body *ast.BlockStmt) {
	if params == nil || body == nil {
		return
	}
	b := &borrowChecker{pass: pass, body: body, borrowed: map[types.Object]bool{}}
	for _, field := range params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if lintutil.TypeName(t) != "Match" {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				b.borrowed[obj] = true
			}
		}
	}
	if len(b.borrowed) == 0 {
		return
	}
	// Alias propagation to a fixed point: `row := mt` or
	// `v := mt.Vertices` extend the borrowed set, so later escapes of the
	// alias are caught too. The set only grows, so this terminates.
	for {
		before := len(b.borrowed)
		ast.Inspect(body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				b.propagate(as)
			}
			return true
		})
		if len(b.borrowed) == before {
			break
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			b.checkAssign(n)
		case *ast.SendStmt:
			if b.isBorrowed(n.Value) {
				pass.Reportf(n.Value.Pos(), "borrowed matcher row sent on a channel; the backing array is reused after the callback returns — clone it first (Clone / append([]uint32(nil), ...))")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if b.isBorrowed(arg) {
					pass.Reportf(arg.Pos(), "borrowed matcher row passed to a goroutine; it outlives the callback — clone it first")
				}
			}
		}
		return true
	})
}

type borrowChecker struct {
	pass     *analysis.Pass
	body     *ast.BlockStmt
	borrowed map[types.Object]bool
}

// propagate taints local variables assigned from borrowed values.
func (b *borrowChecker) propagate(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if !b.isBorrowed(as.Rhs[i]) {
			continue
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if obj := b.localObj(id); obj != nil {
			b.borrowed[obj] = true
		}
	}
}

// checkAssign reports borrowed values escaping through an assignment: to
// a variable captured from an enclosing scope, to a struct field, or into
// a slice or map element.
func (b *borrowChecker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if !b.isBorrowed(as.Rhs[i]) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if b.localObj(l) == nil {
				b.report(as.Rhs[i], "stored in a variable captured from outside the callback")
			}
		case *ast.SelectorExpr:
			b.report(as.Rhs[i], "stored in a struct field")
		case *ast.IndexExpr:
			b.report(as.Rhs[i], "stored in a slice or map element")
		case *ast.StarExpr:
			b.report(as.Rhs[i], "stored through a pointer")
		}
	}
}

func (b *borrowChecker) report(at ast.Expr, how string) {
	b.pass.Reportf(at.Pos(), "borrowed matcher row %s; the backing array is reused after the callback returns — clone it first (Clone / append([]uint32(nil), ...))", how)
}

// localObj returns id's object when it is declared inside the callback
// body, nil when it is captured from an enclosing scope (or unresolved).
func (b *borrowChecker) localObj(id *ast.Ident) types.Object {
	obj := b.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = b.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return nil
	}
	if obj.Pos() >= b.body.Pos() && obj.Pos() < b.body.End() {
		return obj
	}
	return nil
}

// isBorrowed reports whether e aliases the borrowed row: the parameter
// itself, a tainted local, a field or subslice of a borrowed value, a
// composite literal embedding one, or an append whose operands include
// one. Clone-like calls launder the taint; reads of scalar elements
// (m.Vertices[i]) carry none.
func (b *borrowChecker) isBorrowed(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := b.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = b.pass.TypesInfo.Defs[e]
		}
		return obj != nil && b.borrowed[obj]
	case *ast.SelectorExpr:
		return b.isBorrowed(e.X)
	case *ast.SliceExpr:
		return b.isBorrowed(e.X)
	case *ast.UnaryExpr:
		return b.isBorrowed(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if b.isBorrowed(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// append(x, y, ...) aliases its operands; ellipsis-spreading a
		// []uint32 copies scalar elements and is safe. Every other call
		// (Clone, slices.Clone, constructors) returns owned memory.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if len(e.Args) > 0 && b.isBorrowed(e.Args[0]) {
				return true
			}
			if e.Ellipsis == 0 {
				for _, arg := range e.Args[1:] {
					if b.isBorrowed(arg) {
						return true
					}
				}
			}
		}
		return false
	}
	return false
}
