package rowclone_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/rowclone"
)

func TestRowClone(t *testing.T) {
	linttest.Run(t, linttest.TestData(), rowclone.Analyzer, "a")
}
