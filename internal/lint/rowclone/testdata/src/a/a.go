// Package a reproduces the PR 4 aliased-row bug class: visitor callbacks
// retain borrowed matcher rows whose backing arrays the matcher reuses
// for the next solution.
package a

type Match struct {
	Vertices   []uint32
	EdgeLabels []uint32
}

func (m Match) Clone() Match {
	return Match{
		Vertices:   append([]uint32(nil), m.Vertices...),
		EdgeLabels: append([]uint32(nil), m.EdgeLabels...),
	}
}

// Visitor receives each solution; the row is borrowed for the duration of
// the call.
type Visitor func(Match) bool

type matcher struct{}

// run lends borrowed rows to the visitor.
func (m *matcher) run(visit Visitor) int { return 0 }

// runPipeline delivers owned rows (workers clone before the reorder
// stage), so its consumers may retain them freely.
func (m *matcher) runPipeline(visit Visitor) int { return 0 }

// collectAliased is the PR 4 bug verbatim: every element of out ends up
// sharing one backing array and holds the last solution.
func collectAliased(m *matcher) []Match {
	var out []Match
	m.run(func(mt Match) bool {
		out = append(out, mt) // want `borrowed matcher row stored in a variable captured from outside the callback`
		return true
	})
	return out
}

// collectCloned launders the row before retaining it.
func collectCloned(m *matcher) []Match {
	var out []Match
	m.run(func(mt Match) bool {
		out = append(out, mt.Clone())
		return true
	})
	return out
}

// collectPipeline retains pipeline rows, which are owned.
func collectPipeline(m *matcher) []Match {
	var out []Match
	m.runPipeline(func(mt Match) bool {
		out = append(out, mt)
		return true
	})
	return out
}

// keepVertices retains a slice inside the borrowed row — same aliasing,
// one level down.
func keepVertices(m *matcher) [][]uint32 {
	var rows [][]uint32
	m.run(func(mt Match) bool {
		rows = append(rows, mt.Vertices) // want `borrowed matcher row stored in a variable captured from outside the callback`
		return true
	})
	return rows
}

// copiedVertices spreads the elements into fresh memory first.
func copiedVertices(m *matcher) [][]uint32 {
	var rows [][]uint32
	m.run(func(mt Match) bool {
		rows = append(rows, append([]uint32(nil), mt.Vertices...))
		return true
	})
	return rows
}

// sendRow lets the row outlive the callback through a channel.
func sendRow(m *matcher, ch chan Match) {
	m.run(func(mt Match) bool {
		ch <- mt // want `borrowed matcher row sent on a channel`
		return true
	})
}

func sendCloned(m *matcher, ch chan Match) {
	m.run(func(mt Match) bool {
		ch <- mt.Clone()
		return true
	})
}

// aliasEscape hides the escape behind a local alias; the taint follows.
func aliasEscape(m *matcher) []Match {
	var out []Match
	m.run(func(mt Match) bool {
		row := mt
		out = append(out, row) // want `borrowed matcher row stored in a variable captured from outside the callback`
		return true
	})
	return out
}

type holder struct{ last Match }

// fieldStore tucks the borrowed row into a struct that outlives the call.
func fieldStore(m *matcher, h *holder) {
	m.run(func(mt Match) bool {
		h.last = mt // want `borrowed matcher row stored in a struct field`
		return true
	})
}

// goRow hands the row to a goroutine that races the matcher's reuse.
func goRow(m *matcher, sink func(Match)) {
	m.run(func(mt Match) bool {
		go sink(mt) // want `borrowed matcher row passed to a goroutine`
		return true
	})
}

// localUse reads the row and hands it to synchronous callees: no escape,
// no finding.
func localUse(m *matcher, f func(Match)) int {
	n := 0
	m.run(func(mt Match) bool {
		tmp := mt
		f(tmp)
		n += len(mt.Vertices)
		return true
	})
	return n
}

var global []Match

// keep is a named visitor: the analysis follows the identifier to its
// declaration.
func keep(mt Match) bool {
	global = append(global, mt) // want `borrowed matcher row stored in a variable captured from outside the callback`
	return true
}

func useNamed(m *matcher) { m.run(keep) }
