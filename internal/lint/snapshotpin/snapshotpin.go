// Package snapshotpin enforces the engine's snapshot isolation contract:
// an execution path pins the atomic dataset snapshot exactly once and
// computes entirely against the pinned value.
//
// The engine publishes the current dataset as an atomic.Pointer[Data]
// behind a Data() accessor. Every exported execution entry point
// (Prepare, Exec, Count, Select, All, Stats, ...) must load that pointer
// once, bind it to a local, and thread the pinned *Data through every
// callee. Loading it a second time — directly or through a helper — can
// observe a newer snapshot published by a concurrent writer, silently
// mixing two datasets inside one execution (the bug class the PR 3
// snapshot-isolation work eliminated).
//
// Three rules, checked per function (declarations and literals
// separately, since a goroutine body is its own execution path):
//
//  1. at most one snapshot load per function — the second and later
//     calls to a Data() accessor are reported;
//  2. no raw atomic load: x.Load() on an atomic.Pointer[Data] is only
//     allowed inside the accessor itself (a method named Data returning
//     *Data);
//  3. a function that already receives a pinned *Data parameter must not
//     load the snapshot again — it must use the parameter.
//
// A "snapshot load" is a call to a niladic method named Data whose single
// result is a *Data of some package (the engine's accessor shape).
//
// The storage layer's Segment handles obey the same one-pin contract:
// Snapshot() on a Segment returns the decoded *SegmentData, and an
// execution path pins it once (OpenDir opens the file, snapshots, and
// threads the result down). Three mirrored rules:
//
//  4. at most one Segment Snapshot() pin per function — a niladic method
//     named Snapshot returning (*SegmentData, error);
//  5. a function with a pinned *SegmentData parameter must not call
//     Snapshot() again;
//  6. a function holding any pinned snapshot parameter (*Data or
//     *SegmentData) must not call OpenFileSegment — re-opening the
//     segment file mid-execution reads storage that may have been
//     rewritten by a concurrent Compact.
package snapshotpin

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "snapshotpin",
	Doc:  "check that each execution path pins the dataset snapshot (engine Data or storage Segment) at most once and uses pinned parameters instead of re-loading",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range lintutil.NonTestFiles(pass) {
		funcs := lintutil.IndexFuncs(pass.Fset, file)
		// loads[fn] collects the snapshot-load call sites of each function;
		// segLoads and segOpens do the same for Segment pins and file opens.
		loads := map[ast.Node][]*ast.CallExpr{}
		segLoads := map[ast.Node][]*ast.CallExpr{}
		segOpens := map[ast.Node][]*ast.CallExpr{}

		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcs.FuncFor(call.Pos())
			switch {
			case isSnapshotAccessorCall(pass, call):
				loads[fn] = append(loads[fn], call)
			case isSegmentSnapshotCall(pass, call):
				segLoads[fn] = append(segLoads[fn], call)
			case isSegmentOpenCall(pass, call):
				segOpens[fn] = append(segOpens[fn], call)
			case isRawSnapshotLoad(pass, call):
				if !insideAccessor(pass, fn) {
					pass.Reportf(call.Pos(), "raw Load of the atomic snapshot pointer outside the Data accessor; call the accessor so pinning stays auditable")
				}
			}
			return true
		})

		for fn, calls := range loads {
			if fn == nil {
				continue
			}
			if hasPinnedParam(pass, fn, "Data") {
				for _, c := range calls {
					pass.Reportf(c.Pos(), "function receives a pinned *Data parameter but loads the snapshot again; use the parameter so the execution stays on one snapshot")
				}
				continue
			}
			for _, c := range calls[1:] {
				pass.Reportf(c.Pos(), "second snapshot load in one function; pin the snapshot once (d := e.Data()) and thread it through")
			}
		}

		for fn, calls := range segLoads {
			if fn == nil {
				continue
			}
			if hasPinnedParam(pass, fn, "SegmentData") {
				for _, c := range calls {
					pass.Reportf(c.Pos(), "function receives a pinned *SegmentData parameter but pins the segment snapshot again; use the parameter so the execution stays on one snapshot")
				}
				continue
			}
			for _, c := range calls[1:] {
				pass.Reportf(c.Pos(), "second segment snapshot pin in one function; pin once (sd, err := seg.Snapshot()) and thread it through")
			}
		}

		for fn, calls := range segOpens {
			if fn == nil {
				continue
			}
			if hasPinnedParam(pass, fn, "Data") || hasPinnedParam(pass, fn, "SegmentData") {
				for _, c := range calls {
					pass.Reportf(c.Pos(), "execution path holding a pinned snapshot re-opens the segment file; open once at the entry point and thread the pinned data through")
				}
			}
		}
	}
	return nil, nil
}

// isSnapshotAccessorCall matches e.Data() — a niladic method named Data
// whose single result is *Data.
func isSnapshotAccessorCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Data" || len(call.Args) != 0 {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Type() == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return isPtrToNamed(sig.Results().At(0).Type(), "Data")
}

// isSegmentSnapshotCall matches seg.Snapshot() — a niladic method named
// Snapshot whose results are (*SegmentData, error), the Segment handle's
// pin operation.
func isSegmentSnapshotCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Snapshot" || len(call.Args) != 0 {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Type() == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 2 {
		return false
	}
	return isPtrToNamed(sig.Results().At(0).Type(), "SegmentData")
}

// isSegmentOpenCall matches a call to OpenFileSegment, by name: the only
// way to acquire a file-backed Segment handle.
func isSegmentOpenCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	if id.Name != "OpenFileSegment" {
		return false
	}
	_, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok
}

// isRawSnapshotLoad matches x.Load() where x is an atomic.Pointer whose
// type argument is a named type Data.
func isRawSnapshotLoad(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" || len(call.Args) != 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Pointer" || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	args := named.TypeArgs()
	return args != nil && args.Len() == 1 && lintutil.TypeName(args.At(0)) == "Data"
}

// insideAccessor reports whether fn is the snapshot accessor itself: a
// method named Data returning *Data, or the symmetric SetData publisher.
func insideAccessor(pass *analysis.Pass, fn ast.Node) bool {
	decl, ok := fn.(*ast.FuncDecl)
	if !ok || decl.Recv == nil {
		return false
	}
	return decl.Name.Name == "Data" || decl.Name.Name == "SetData"
}

// hasPinnedParam reports whether fn declares a parameter of type *<name>
// (e.g. *Data, *SegmentData) — i.e. it already operates on a pinned
// snapshot of that kind.
func hasPinnedParam(pass *analysis.Pass, fn ast.Node, name string) bool {
	params := lintutil.FuncParams(fn)
	if params == nil {
		return false
	}
	for _, field := range params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t != nil && isPtrToNamed(t, name) {
			return true
		}
	}
	return false
}

func isPtrToNamed(t types.Type, name string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return lintutil.TypeName(p.Elem()) == name
}
