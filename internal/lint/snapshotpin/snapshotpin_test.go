package snapshotpin_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/snapshotpin"
)

func TestSnapshotPin(t *testing.T) {
	linttest.Run(t, linttest.TestData(), snapshotpin.Analyzer, "a")
}
