// Package a reproduces the PR 3 snapshot-isolation bug class: execution
// paths that load the atomic dataset snapshot more than once can observe
// two different datasets inside one query.
package a

import "sync/atomic"

type Data struct{ x int }

type Engine struct{ cur atomic.Pointer[Data] }

// Data is the accessor: the one place a raw Load is allowed.
func (e *Engine) Data() *Data     { return e.cur.Load() }
func (e *Engine) SetData(d *Data) { e.cur.Store(d) }

// good pins once and computes against the pinned value.
func good(e *Engine) int {
	d := e.Data()
	return d.x + d.x
}

// doubleLoad is the bug: a writer publishing between the two loads makes
// a and b different snapshots.
func doubleLoad(e *Engine) int {
	a := e.Data()
	b := e.Data() // want `second snapshot load`
	return a.x + b.x
}

// rawLoad bypasses the accessor.
func rawLoad(e *Engine) int {
	return e.cur.Load().x // want `raw Load of the atomic snapshot pointer`
}

// helperReload receives a pinned snapshot but loads a fresh one anyway.
func helperReload(e *Engine, d *Data) int {
	return d.x + e.Data().x // want `pinned \*Data parameter but loads the snapshot again`
}

// pinnedUser threads the pinned snapshot correctly.
func pinnedUser(d *Data) int { return d.x }

// goroutineBody is its own execution path: one load outside, one load
// inside the literal, no function loads twice.
func goroutineBody(e *Engine, done chan int) {
	d := e.Data()
	go func() {
		d2 := e.Data()
		done <- d2.x
	}()
	done <- d.x
}
