// Package a reproduces the PR 3 snapshot-isolation bug class: execution
// paths that load the atomic dataset snapshot more than once can observe
// two different datasets inside one query.
package a

import "sync/atomic"

type Data struct{ x int }

type Engine struct{ cur atomic.Pointer[Data] }

// Data is the accessor: the one place a raw Load is allowed.
func (e *Engine) Data() *Data     { return e.cur.Load() }
func (e *Engine) SetData(d *Data) { e.cur.Store(d) }

// good pins once and computes against the pinned value.
func good(e *Engine) int {
	d := e.Data()
	return d.x + d.x
}

// doubleLoad is the bug: a writer publishing between the two loads makes
// a and b different snapshots.
func doubleLoad(e *Engine) int {
	a := e.Data()
	b := e.Data() // want `second snapshot load`
	return a.x + b.x
}

// rawLoad bypasses the accessor.
func rawLoad(e *Engine) int {
	return e.cur.Load().x // want `raw Load of the atomic snapshot pointer`
}

// helperReload receives a pinned snapshot but loads a fresh one anyway.
func helperReload(e *Engine, d *Data) int {
	return d.x + e.Data().x // want `pinned \*Data parameter but loads the snapshot again`
}

// pinnedUser threads the pinned snapshot correctly.
func pinnedUser(d *Data) int { return d.x }

// goroutineBody is its own execution path: one load outside, one load
// inside the literal, no function loads twice.
func goroutineBody(e *Engine, done chan int) {
	d := e.Data()
	go func() {
		d2 := e.Data()
		done <- d2.x
	}()
	done <- d.x
}

// The storage-layer shapes: a file-backed Segment handle whose Snapshot
// method is the pin operation, mirroring the engine's Data accessor.

type SegmentData struct{ n int }

type FileSegment struct{ data *SegmentData }

func OpenFileSegment(path string) (*FileSegment, error) {
	return &FileSegment{data: &SegmentData{}}, nil
}

func (s *FileSegment) Snapshot() (*SegmentData, error) { return s.data, nil }

// openOnce is the legitimate cold-start shape: open, pin once, use.
func openOnce(path string) (int, error) {
	seg, err := OpenFileSegment(path)
	if err != nil {
		return 0, err
	}
	sd, err := seg.Snapshot()
	if err != nil {
		return 0, err
	}
	return sd.n, nil
}

// doublePin pins the segment snapshot twice in one execution path.
func doublePin(seg *FileSegment) int {
	a, _ := seg.Snapshot()
	b, _ := seg.Snapshot() // want `second segment snapshot pin`
	return a.n + b.n
}

// segHelperReload receives a pinned *SegmentData but pins again.
func segHelperReload(seg *FileSegment, sd *SegmentData) int {
	d, _ := seg.Snapshot() // want `pinned \*SegmentData parameter but pins the segment snapshot again`
	return sd.n + d.n
}

// segPinnedUser threads the pinned segment snapshot correctly.
func segPinnedUser(sd *SegmentData) int { return sd.n }

// reopenUnderSegmentPin re-opens the segment file while holding a pinned
// *SegmentData — storage may have been rewritten by a concurrent Compact.
func reopenUnderSegmentPin(path string, sd *SegmentData) int {
	seg, err := OpenFileSegment(path) // want `re-opens the segment file`
	_, _ = seg, err
	return sd.n
}

// reopenUnderDataPin does the same while pinned to an engine snapshot.
func reopenUnderDataPin(path string, d *Data) int {
	seg, err := OpenFileSegment(path) // want `re-opens the segment file`
	_, _ = seg, err
	return d.x
}
