// Package core (testdata) reproduces the PR 5 stale-binding bug class:
// binding writes into the shared searchState without a reachable undo,
// incomplete undo methods, and suspended cursors dropped without abort.
package core

const NoID = ^uint32(0)

type searchState struct {
	used     []bool
	varBind  []uint32
	edgeBind []uint32
	stopped  bool
}

type cframe struct {
	v      uint32
	edge   int
	bound  bool
	setVar bool
}

func descend() {}

// bindPaired writes the bindings and reverts them around the recursion.
func (s *searchState) bindPaired(v uint32, lbl uint32) {
	s.used[v] = true
	s.varBind[0] = lbl
	descend()
	s.varBind[0] = NoID
	s.used[v] = false
}

// bindLeak is the bug: the used[] entry survives the return and prunes
// every later region against a vertex nobody holds.
func (s *searchState) bindLeak(v uint32) {
	s.used[v] = true // want `used\[\] binding established with no reachable undo`
	descend()
}

// bindEdgeLeak leaks the edge-binding family the same way.
func (s *searchState) bindEdgeLeak(lbl uint32) {
	s.edgeBind[0] = lbl // want `edgeBind\[\] binding established with no reachable undo`
	descend()
}

// rcur transfers ownership of its binding to a frame: the frame's undo
// reverts it on whichever path unwinds.
type rcur struct {
	st    *searchState
	stack []cframe
}

func (rc *rcur) push(v uint32) {
	rc.st.used[v] = true
	rc.stack = append(rc.stack, cframe{v: v, bound: true})
}

// bindDelegated funnels the revert through the frame's undo method.
func (rc *rcur) bindDelegated(v uint32, f *cframe) {
	rc.st.used[v] = true
	descend()
	f.undo(rc.st)
}

// undo on cframe reverts every binding family — the single unwind site.
func (f *cframe) undo(st *searchState) {
	if f.bound {
		st.used[f.v] = false
		f.bound = false
	}
	if f.setVar {
		st.varBind[0] = NoID
		f.setVar = false
	}
	st.edgeBind[f.edge] = NoID
}

type wframe struct {
	v      uint32
	bound  bool
	setVar bool
}

// undo on wframe forgets the edgeBind family: resume and abort drift.
func (f *wframe) undo(st *searchState) { // want `undo reverts some binding families but not edgeBind\[\]`
	if f.bound {
		st.used[f.v] = false
		f.bound = false
	}
	if f.setVar {
		st.varBind[0] = NoID
		f.setVar = false
	}
}

// newState initializes edgeBind to the sentinel: inverse-only writes are
// not bindings.
func newState(labels []uint32) *searchState {
	s := &searchState{edgeBind: make([]uint32, len(labels))}
	for i := range labels {
		s.edgeBind[i] = NoID
	}
	return s
}

type edge struct{ Label uint32 }

// pinLabel writes a constant label from a field: initialization, not a
// binding.
func pinLabel(s *searchState, e edge) {
	s.edgeBind[0] = e.Label
}

type regionCursor struct{ st *searchState }

func (rc *regionCursor) start(st *searchState) {}
func (rc *regionCursor) resume(n int) bool     { return true }
func (rc *regionCursor) abort()                {}

// runSpanLeaky is the PR 5 bug: when the quota runs out the suspended
// cursor is dropped, leaving its used[]/varBind[] entries behind.
func runSpanLeaky(rc *regionCursor, st *searchState, quota int) {
	rc.start(st)
	for !st.stopped {
		if done := rc.resume(quota); done { // want `region cursor is started and resumed here but never aborted`
			break
		}
		if quota == 0 {
			break
		}
	}
}

// runSpanAborted unwinds the suspended cursor before dropping it.
func runSpanAborted(rc *regionCursor, st *searchState, quota int) {
	rc.start(st)
	done := false
	for !st.stopped {
		if done = rc.resume(quota); done {
			break
		}
		if quota == 0 {
			break
		}
	}
	if !done {
		rc.abort()
	}
}

// suspendSafely keeps ownership of the suspended cursor: the false branch
// returns with the cursor still resumable.
func suspendSafely(rc *regionCursor, st *searchState, n int) bool {
	rc.start(st)
	if !rc.resume(n) {
		return false
	}
	return true
}
