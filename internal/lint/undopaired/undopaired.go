// Package undopaired guards the cursor frame machine's binding
// discipline. The searchState arrays used[], varBind[] and edgeBind[]
// carry live bindings across suspensions; every write that establishes a
// binding must have a reachable inverse on both the resume path and the
// abort path, or the next region is pruned against stale state. PR 5
// shipped exactly this bug: a worker that dropped a suspended cursor
// without unwinding left used[]/varBind[] entries behind, silently
// dropping rows from later spans.
//
// The analysis is a paired-call-site approximation with three rules,
// scoped to the matcher packages (-undopaired.pkgs):
//
//  1. Paired writes: a function that establishes a binding
//     (used[i] = true, varBind[i] = lbl, edgeBind[i] = lbl) must, in the
//     same function, either (a) write the inverse for that family
//     (= false / = NoID), (b) transfer ownership to a cursor frame by
//     setting its bookkeeping flag (bound/setVar/expSet = true), or
//     (c) delegate by calling an undo method. Initialization writes with
//     constant or field RHS (edgeBind[i] = e.Label in newSearchState)
//     establish no binding and are ignored.
//
//  2. Complete undo: a method named undo that reverts any family must
//     revert all three — the frame machine funnels every unwind through
//     one site precisely so the families cannot drift apart.
//
//  3. No abandoned cursors: a function that both starts and resumes a
//     region cursor must either call abort (the unwind) or suspend
//     safely — every resume call in the `if !rc.resume(n) { ...; return }`
//     shape, which leaves the cursor owned and resumable rather than
//     dropped.
package undopaired

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "undopaired",
	Doc:  "check that cursor/search binding writes (used/varBind/edgeBind) have matching undos, that undo reverts every family, and that suspended cursors are aborted rather than dropped",
	Run:  run,
}

var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", "repro/internal/core",
		"comma-separated packages holding the cursor frame machine (suffix match)")
}

// families maps each binding array to the frame bookkeeping flags that
// can take over its undo obligation.
var families = map[string][]string{
	"used":     {"bound", "expSet"},
	"varBind":  {"setVar"},
	"edgeBind": {},
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.InScope(pass, pkgs) {
		return nil, nil
	}
	for _, file := range lintutil.NonTestFiles(pass) {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBindings(pass, fd)
			if fd.Name.Name == "undo" {
				checkUndoComplete(pass, fd)
			}
			checkAbandonment(pass, fd)
		}
	}
	return nil, nil
}

// bindingWrite classifies one assignment into a binding family.
type bindingWrite struct {
	family string
	bind   bool // true = establishes, false = reverts
	pos    token.Pos
}

// classify returns the binding writes of one assignment statement.
func classify(pass *analysis.Pass, as *ast.AssignStmt) []bindingWrite {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var out []bindingWrite
	for i, lhs := range as.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		fam := selectorName(idx.X)
		if _, known := families[fam]; !known {
			continue
		}
		rhs := ast.Unparen(as.Rhs[i])
		switch fam {
		case "used":
			if id, ok := rhs.(*ast.Ident); ok {
				switch id.Name {
				case "true":
					out = append(out, bindingWrite{fam, true, as.Pos()})
				case "false":
					out = append(out, bindingWrite{fam, false, as.Pos()})
				}
			}
		default: // varBind, edgeBind
			switch rhs := rhs.(type) {
			case *ast.Ident:
				if isConstant(pass, rhs) {
					// NoID (or another sentinel constant): the revert.
					out = append(out, bindingWrite{fam, false, as.Pos()})
				} else {
					out = append(out, bindingWrite{fam, true, as.Pos()})
				}
			case *ast.SelectorExpr:
				if rhs.Sel.Name == "NoID" {
					out = append(out, bindingWrite{fam, false, as.Pos()})
				}
				// Other field RHS (edgeBind[i] = e.Label) is constant-label
				// initialization, not a binding: no write recorded.
			}
		}
	}
	return out
}

// selectorName returns the final name of an ident/selector chain
// ("used" for s.used), or "".
func selectorName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func isConstant(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	_, ok := obj.(*types.Const)
	return ok
}

// checkBindings enforces rule 1 on one function.
func checkBindings(pass *analysis.Pass, fd *ast.FuncDecl) {
	binds := map[string][]token.Pos{}
	inverse := map[string]bool{}
	transfer := map[string]bool{}
	delegates := false

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, w := range classify(pass, n) {
				if w.bind {
					binds[w.family] = append(binds[w.family], w.pos)
				} else {
					inverse[w.family] = true
				}
			}
			// Ownership transfer: frame flag set to true.
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if id, ok := ast.Unparen(n.Rhs[i]).(*ast.Ident); !ok || id.Name != "true" {
						continue
					}
					for fam, flags := range families {
						for _, fl := range flags {
							if sel.Sel.Name == fl {
								transfer[fam] = true
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if lintutil.CalleeName(n) == "undo" {
				delegates = true
			}
		case *ast.CompositeLit:
			// cframe{..., bound: true} style transfer.
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if v, ok := ast.Unparen(kv.Value).(*ast.Ident); !ok || v.Name != "true" {
					continue
				}
				for fam, flags := range families {
					for _, fl := range flags {
						if key.Name == fl {
							transfer[fam] = true
						}
					}
				}
			}
		}
		return true
	})

	if delegates {
		return // the undo method owns the revert; rule 2 checks it
	}
	for fam, sites := range binds {
		if inverse[fam] || transfer[fam] {
			continue
		}
		for _, pos := range sites {
			pass.Reportf(pos, "%s[] binding established with no reachable undo in this function: no inverse write, no frame ownership flag, no undo delegation — a suspended or aborted search would keep the stale binding", fam)
		}
	}
}

// checkUndoComplete enforces rule 2: an undo method that reverts any
// binding family must revert all of them.
func checkUndoComplete(pass *analysis.Pass, fd *ast.FuncDecl) {
	reverted := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, w := range classify(pass, as) {
				if !w.bind {
					reverted[w.family] = true
				}
			}
		}
		return true
	})
	if len(reverted) == 0 {
		return // not the frame unwind (some unrelated undo)
	}
	for fam := range families {
		if !reverted[fam] {
			pass.Reportf(fd.Pos(), "undo reverts some binding families but not %s[]; the single undo site must cover every family so resume and abort cannot drift", fam)
		}
	}
}

// checkAbandonment enforces rule 3 on one function.
func checkAbandonment(pass *analysis.Pass, fd *ast.FuncDecl) {
	var starts, aborts bool
	var resumes []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv := lintutil.ReceiverExpr(call)
		if recv == nil || !isCursorType(pass.TypesInfo.TypeOf(recv)) {
			return true
		}
		switch lintutil.CalleeName(call) {
		case "start":
			starts = true
		case "resume":
			resumes = append(resumes, call)
		case "abort":
			aborts = true
		}
		return true
	})
	if !starts || len(resumes) == 0 || aborts {
		return
	}
	for _, call := range resumes {
		if !safeSuspend(fd.Body, call) {
			pass.Reportf(call.Pos(), "region cursor is started and resumed here but never aborted; a suspended cursor dropped without abort leaves stale used[]/varBind[] bindings in the shared searchState (use abort, or suspend with `if !rc.resume(n) { ...; return }`)")
		}
	}
}

// isCursorType reports whether t names a cursor type (regionCursor,
// Cursor), possibly behind a pointer.
func isCursorType(t types.Type) bool {
	name := lintutil.TypeName(t)
	return name != "" && strings.Contains(strings.ToLower(name), "cursor")
}

// safeSuspend reports whether the resume call sits in the safe-suspend
// shape: `if !x.resume(n) { ...; return }` — the false branch returns
// with the cursor still owned, so no binding is abandoned.
func safeSuspend(body *ast.BlockStmt, resume *ast.CallExpr) bool {
	safe := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || safe {
			return !safe
		}
		un, ok := ast.Unparen(ifs.Cond).(*ast.UnaryExpr)
		if !ok || un.Op != token.NOT {
			return true
		}
		if call, ok := ast.Unparen(un.X).(*ast.CallExpr); !ok || call != resume {
			return true
		}
		if n := len(ifs.Body.List); n > 0 {
			if _, ok := ifs.Body.List[n-1].(*ast.ReturnStmt); ok {
				safe = true
				return false
			}
		}
		return true
	})
	return safe
}
