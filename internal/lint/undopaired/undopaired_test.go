package undopaired_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/undopaired"
)

// TestUndoPaired runs under the default -undopaired.pkgs scope against a
// testdata package named repro/internal/core.
func TestUndoPaired(t *testing.T) {
	linttest.Run(t, linttest.TestData(), undopaired.Analyzer, "repro/internal/core")
}
