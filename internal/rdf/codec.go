package rdf

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/wire"
)

// DecodeError reports malformed bytes on an rdf decode path (dictionary
// snapshot sections, term keys). Load paths return it instead of panicking,
// so a corrupt or untrusted snapshot surfaces as an error the caller can
// handle.
type DecodeError struct {
	Off int    // byte offset of the first problem within the decoded blob
	Msg string // what was wrong
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("rdf: decode: %s (offset %d)", e.Msg, e.Off)
}

// KeySize is the fixed width of an encoded term key.
const KeySize = 16

// Key is the fixed-width binary encoding of a Term:
//
//	[0]     kind tag: 0 invalid, 1 blank node, 2 IRI, 3 literal
//	[1]     subtag: for literals, the datatype class — 0 plain,
//	        1 xsd:integer, 2 xsd:double, 3 xsd:string, 4 xsd:date,
//	        0xFD language-tagged, 0xFE any other datatype; 0 otherwise
//	[2]     form: 0 inline, 1 hashed
//	[3:16]  payload: the term's content zero-padded (inline) or the first
//	        13 bytes of a 128-bit hash of the full term string (hashed)
//
// Every field is written big-endian-style most-significant-first, so
// bytes.Compare on keys is a canonical platform-independent order: terms
// group by kind, then by datatype class, and short (inline) content sorts
// in lexical order. Inline keys round-trip back to the Term via KeyTerm;
// hashed keys identify the term (collision odds ~2^-104) but need a
// dictionary to recover it.
type Key [KeySize]byte

// Kind tags ([0]) and literal subtags ([1]) of a Key.
const (
	keyInvalid = 0
	keyBlank   = 1
	keyIRI     = 2
	keyLiteral = 3

	subPlain   = 0
	subInteger = 1
	subDouble  = 2
	subString  = 3
	subDate    = 4
	subLang    = 0xFD
	subOther   = 0xFE

	formInline = 0
	formHashed = 1

	keyPayload = KeySize - 3 // 13 bytes of content or hash
)

// datatypeSubtag maps well-known XSD datatype IRIs to their key subtag.
func datatypeSubtag(dt string) (uint8, bool) {
	switch dt {
	case XSDInteger:
		return subInteger, true
	case XSDDouble:
		return subDouble, true
	case XSDString:
		return subString, true
	case XSDDate:
		return subDate, true
	}
	return subOther, false
}

func subtagDatatype(sub uint8) string {
	switch sub {
	case subInteger:
		return XSDInteger
	case subDouble:
		return XSDDouble
	case subString:
		return XSDString
	case subDate:
		return XSDDate
	}
	return ""
}

// EncodeKey builds the fixed-width key for t. It never fails: content that
// does not fit the inline payload (or contains NUL, which zero-padding
// could not distinguish from padding) is stored in hashed form.
func EncodeKey(t Term) Key {
	var k Key
	s := string(t)
	var content string // inline candidate; NUL count it may legally contain
	nuls := 0
	switch t.Kind() {
	case Blank:
		k[0] = keyBlank
		content = s[2:]
	case IRI:
		k[0] = keyIRI
		content = s[1 : len(s)-1]
	case Literal:
		k[0] = keyLiteral
		end := strings.LastIndexByte(s, '"')
		body, suffix := s[1:end], s[end+1:]
		switch {
		case strings.HasPrefix(suffix, "^^<"):
			sub, known := datatypeSubtag(suffix[3 : len(suffix)-1])
			k[1] = sub
			if !known {
				// The subtag cannot name the datatype, so the key can
				// never round-trip; hash the full term unconditionally.
				return hashKey(k, s)
			}
			content = body
		case strings.HasPrefix(suffix, "@"):
			k[1] = subLang
			// body NUL-separated from the language tag; the separator is
			// unambiguous because inline content may not contain NUL.
			content = body + "\x00" + suffix[1:]
			nuls = 1
		default:
			k[1] = subPlain
			content = body
		}
	default:
		k[0] = keyInvalid
		content = s
	}
	if len(content) > keyPayload || strings.Count(content, "\x00") != nuls ||
		strings.HasSuffix(content, "\x00") {
		return hashKey(k, s)
	}
	k[2] = formInline
	copy(k[3:], content)
	return k
}

func hashKey(k Key, s string) Key {
	k[2] = formHashed
	h1, h2 := hash128(s)
	for i := 0; i < 8; i++ {
		k[3+i] = byte(h1 >> (56 - 8*i))
	}
	for i := 0; i < keyPayload-8; i++ {
		k[11+i] = byte(h2 >> (56 - 8*i))
	}
	return k
}

// hash128 is two independently-seeded FNV-1a 64-bit hashes computed in one
// pass. Pure integer arithmetic on explicit constants: the result is
// identical on every platform and word size, which the snapshot format
// depends on for its canonical sort order.
func hash128(s string) (h1, h2 uint64) {
	const prime = 1099511628211
	h1 = 14695981039346656037
	h2 = 14695981039346656037 ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(s); i++ {
		c := uint64(s[i])
		h1 = (h1 ^ c) * prime
		h2 = (h2 ^ c) * prime
	}
	return h1, h2
}

// KeyTerm reconstructs the Term an inline key encodes. ok is false for
// hashed keys and malformed tag bytes — those need a dictionary lookup.
func KeyTerm(k Key) (Term, bool) {
	if k[2] != formInline {
		return "", false
	}
	payload := k[3:]
	n := len(payload)
	for n > 0 && payload[n-1] == 0 {
		n--
	}
	content := string(payload[:n])
	switch k[0] {
	case keyBlank:
		if k[1] != 0 {
			return "", false
		}
		return Term("_:" + content), true
	case keyIRI:
		if k[1] != 0 {
			return "", false
		}
		return Term("<" + content + ">"), true
	case keyLiteral:
		switch k[1] {
		case subPlain:
			return Term(`"` + content + `"`), true
		case subInteger, subDouble, subString, subDate:
			return Term(`"` + content + `"^^<` + subtagDatatype(k[1]) + ">"), true
		case subLang:
			body, lang, ok := strings.Cut(content, "\x00")
			if !ok {
				return "", false
			}
			return Term(`"` + body + `"@` + lang), true
		}
		return "", false
	case keyInvalid:
		if k[1] != 0 {
			return "", false
		}
		return Term(content), true
	}
	return "", false
}

// Compare orders keys by their canonical byte order.
func (k Key) Compare(o Key) int { return bytes.Compare(k[:], o[:]) }

// AppendSnapshot appends the dictionary's binary snapshot section: a u64
// term count followed by each term as uvarint-length-prefixed bytes, in ID
// order. Decoding the section with DecodeDictionary reproduces the exact
// ID assignment.
func (d *Dictionary) AppendSnapshot(dst []byte) []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	dst = wire.AppendU64(dst, uint64(len(d.terms)))
	for _, t := range d.terms {
		dst = wire.AppendString(dst, string(t))
	}
	return dst
}

// DecodeDictionary rebuilds a dictionary from a snapshot section written by
// AppendSnapshot. The input is untrusted: truncation, trailing garbage,
// duplicate terms, and counts at or beyond the NoID cap all return a
// *DecodeError — this path never panics. All term strings share one backing
// allocation, so a large dictionary loads with O(1) string headers of GC
// overhead rather than one allocation per term.
func DecodeDictionary(data []byte) (*Dictionary, error) {
	backing := string(data)
	r := wire.NewReader(data)
	count := r.U64()
	if count >= uint64(NoID) {
		return nil, &DecodeError{Off: 0, Msg: fmt.Sprintf("dictionary count %d at or beyond the 2^32-1 ID cap", count)}
	}
	// Each term costs at least its 1-byte length prefix, so a count that
	// exceeds the remaining bytes is corrupt; checking before allocating
	// keeps a poisoned count from reserving gigabytes.
	if count > uint64(r.Remaining()) {
		return nil, &DecodeError{Off: r.Off(), Msg: "dictionary count exceeds input"}
	}
	n := int(count)
	d := &Dictionary{
		ids:   make(map[Term]uint32, n),
		terms: make([]Term, 0, n),
	}
	for i := 0; i < n; i++ {
		b := r.Bytes("dictionary term")
		if _, _, failed := r.Failed(); failed {
			break
		}
		t := Term(backing[r.Off()-len(b) : r.Off()])
		if _, dup := d.ids[t]; dup {
			return nil, &DecodeError{Off: r.Off(), Msg: fmt.Sprintf("duplicate dictionary term %s", t)}
		}
		d.ids[t] = uint32(i)
		d.terms = append(d.terms, t)
	}
	if off, msg, failed := r.Failed(); failed {
		return nil, &DecodeError{Off: off, Msg: msg}
	}
	if r.Remaining() != 0 {
		return nil, &DecodeError{Off: r.Off(), Msg: fmt.Sprintf("%d trailing bytes after dictionary", r.Remaining())}
	}
	return d, nil
}
