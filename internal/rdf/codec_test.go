package rdf

import (
	"sort"
	"strings"
	"testing"
)

func TestKeyInlineRoundTrip(t *testing.T) {
	terms := []Term{
		NewIRI("ex:a"),
		NewIRI(""),
		NewBlank("b0"),
		NewBlank(""),
		NewLiteral("hi"),
		NewLiteral(""),
		NewIntLiteral(42),
		NewIntLiteral(-7),
		NewFloatLiteral(2.5),
		NewTypedLiteral("x", XSDString),
		NewTypedLiteral("2024-01-02", XSDDate),
		NewLangLiteral("hey", "en"),
		NewLangLiteral("", "de-AT"),
		Term("garbage"), // Invalid kind still gets a stable key
	}
	for _, tm := range terms {
		k := EncodeKey(tm)
		got, ok := KeyTerm(k)
		if !ok {
			t.Errorf("%s: expected inline key, got hashed/invalid", tm)
			continue
		}
		if got != tm {
			t.Errorf("%s: round-tripped to %s", tm, got)
		}
	}
}

func TestKeyHashedForms(t *testing.T) {
	hashed := []Term{
		NewIRI("http://example.org/a-very-long-iri-that-cannot-inline"),
		NewLiteral(strings.Repeat("x", 14)),
		NewTypedLiteral("1", "http://example.org/custom"), // unknown datatype
		NewLiteral("nul\x00byte"),                         // NUL would alias zero padding
		NewLangLiteral("nul\x00", "en"),
	}
	seen := map[Key]Term{}
	for _, tm := range hashed {
		k := EncodeKey(tm)
		if _, ok := KeyTerm(k); ok {
			t.Errorf("%s: expected hashed key", tm)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("hash collision between %s and %s", prev, tm)
		}
		seen[k] = tm
		if k2 := EncodeKey(tm); k2 != k {
			t.Errorf("%s: key not deterministic", tm)
		}
	}
}

// 13 bytes of content is the inline maximum; 14 must hash.
func TestKeyInlineBoundary(t *testing.T) {
	if _, ok := KeyTerm(EncodeKey(NewLiteral(strings.Repeat("y", 13)))); !ok {
		t.Error("13-byte content should inline")
	}
	if _, ok := KeyTerm(EncodeKey(NewLiteral(strings.Repeat("y", 14)))); ok {
		t.Error("14-byte content should hash")
	}
}

// Inline keys of the same kind sort in lexical content order, and kinds
// group: blanks < IRIs < literals.
func TestKeyCanonicalOrder(t *testing.T) {
	ordered := []Term{
		NewBlank("a"),
		NewIRI("a"),
		NewIRI("ab"),
		NewIRI("b"),
		NewLiteral("a"),
		NewIntLiteral(5),
	}
	keys := make([]Key, len(ordered))
	for i, tm := range ordered {
		keys[i] = EncodeKey(tm)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 }) {
		t.Errorf("keys not in canonical order: %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			t.Errorf("distinct terms %s and %s share a key", ordered[i-1], ordered[i])
		}
	}
}

func TestDictionarySnapshotRoundTrip(t *testing.T) {
	d := NewDictionary()
	terms := []Term{NewIRI("ex:s"), NewLiteral("lit"), NewBlank("b"), NewLangLiteral("x", "en")}
	for _, tm := range terms {
		d.Intern(tm)
	}
	got, err := DecodeDictionary(d.AppendSnapshot(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), d.Len())
	}
	for i, tm := range terms {
		id, ok := got.Lookup(tm)
		if !ok || id != uint32(i) {
			t.Errorf("%s: lookup = (%d, %v), want (%d, true)", tm, id, ok, i)
		}
		if got.Term(uint32(i)) != tm {
			t.Errorf("Term(%d) = %s, want %s", i, got.Term(uint32(i)), tm)
		}
	}
	// The decoded dictionary stays appendable.
	if id := got.Intern(NewIRI("ex:new")); id != uint32(len(terms)) {
		t.Errorf("post-decode Intern = %d, want %d", id, len(terms))
	}
}

func TestDecodeDictionaryEmpty(t *testing.T) {
	d, err := DecodeDictionary(NewDictionary().AppendSnapshot(nil))
	if err != nil || d.Len() != 0 {
		t.Fatalf("empty round-trip: %v, len %d", err, d.Len())
	}
}

// Every malformed variant must return *DecodeError — never panic.
func TestDecodeDictionaryCorrupt(t *testing.T) {
	d := NewDictionary()
	d.Intern(NewIRI("ex:a"))
	d.Intern(NewIRI("ex:b"))
	blob := d.AppendSnapshot(nil)

	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeDictionary(blob[:cut]); err == nil {
			t.Errorf("cut %d: no error", cut)
		} else if _, ok := err.(*DecodeError); !ok {
			t.Errorf("cut %d: error type %T", cut, err)
		}
	}

	if _, err := DecodeDictionary(append(append([]byte(nil), blob...), 0xFF)); err == nil {
		t.Error("trailing garbage: no error")
	}

	dup := NewDictionary()
	dup.Intern(NewIRI("ex:a"))
	dupBlob := dup.AppendSnapshot(nil)
	dupBlob = append(dupBlob, dupBlob[8:]...) // repeat the term record
	dupBlob[7] = 2                            // count = 2
	if _, err := DecodeDictionary(dupBlob); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate term: err = %v", err)
	}

	// A count at the NoID cap must be a typed error, not the Intern panic.
	capped := make([]byte, 8)
	capped[4], capped[5], capped[6], capped[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeDictionary(capped); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("capped count: err = %v", err)
	}
}
