package rdf

import "sync"

// NoID is the sentinel "no identifier / blank" value used across the
// repository for vertex IDs, label IDs, and edge-label IDs.
const NoID = ^uint32(0)

// Dictionary maps terms to dense uint32 IDs and back. IDs are assigned in
// first-seen order starting at 0 and are never reassigned: the dictionary is
// append-only, which is what lets query plans and store snapshots pin IDs
// that stay valid across later insertions.
//
// Capacity is 2³²−1 terms (IDs 0 through 2³²−2): the all-ones value is NoID,
// the repository-wide blank/sentinel marker, and handing it out as a real ID
// would silently corrupt every structure that tests against it. Intern
// panics with a clear message when the cap is reached instead.
//
// A Dictionary is safe for concurrent use: Intern takes the mutation lock,
// readers (Lookup, Term, Len, Terms) take a shared lock. The append-only
// contract means a reader holding an ID or a Terms slice from before a
// mutation still observes valid data afterwards.
type Dictionary struct {
	mu    sync.RWMutex
	ids   map[Term]uint32
	terms []Term
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[Term]uint32)}
}

// nextID is the capacity guard for ID assignment: the ID after 2³²−2 would
// be NoID, the sentinel, so assignment refuses it loudly.
func nextID(n int) uint32 {
	if uint32(n) == NoID {
		panic("rdf: dictionary full: 2^32-1 terms reached; the next ID would collide with the NoID sentinel")
	}
	return uint32(n)
}

// Intern returns the ID for t, assigning a fresh one on first sight. It
// panics when the dictionary is full (see the type comment for the cap).
func (d *Dictionary) Intern(t Term) uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := nextID(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	return id
}

// Lookup returns the ID for t if it is already interned.
func (d *Dictionary) Lookup(t Term) (uint32, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	return id, ok
}

// Term returns the term for an ID. It panics on out-of-range IDs, which
// indicate a bug rather than bad input.
func (d *Dictionary) Term(id uint32) Term {
	d.mu.RLock()
	t := d.terms[id]
	d.mu.RUnlock()
	return t
}

// Len reports the number of interned terms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	n := len(d.terms)
	d.mu.RUnlock()
	return n
}

// Terms exposes the ID→term slice; callers must not mutate it. The returned
// slice is a stable snapshot: later Interns may grow a new backing array but
// never rewrite existing entries.
func (d *Dictionary) Terms() []Term {
	d.mu.RLock()
	ts := d.terms
	d.mu.RUnlock()
	return ts
}
