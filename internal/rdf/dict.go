package rdf

// NoID is the sentinel "no identifier / blank" value used across the
// repository for vertex IDs, label IDs, and edge-label IDs.
const NoID = ^uint32(0)

// Dictionary maps terms to dense uint32 IDs and back. IDs are assigned in
// first-seen order starting at 0. The reverse mapping is a flat slice so a
// lookup by ID is a single index operation.
type Dictionary struct {
	ids   map[Term]uint32
	terms []Term
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[Term]uint32)}
}

// Intern returns the ID for t, assigning a fresh one on first sight.
func (d *Dictionary) Intern(t Term) uint32 {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := uint32(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	return id
}

// Lookup returns the ID for t if it is already interned.
func (d *Dictionary) Lookup(t Term) (uint32, bool) {
	id, ok := d.ids[t]
	return id, ok
}

// Term returns the term for an ID. It panics on out-of-range IDs, which
// indicate a bug rather than bad input.
func (d *Dictionary) Term(id uint32) Term { return d.terms[id] }

// Len reports the number of interned terms.
func (d *Dictionary) Len() int { return len(d.terms) }

// Terms exposes the ID→term slice; callers must not mutate it.
func (d *Dictionary) Terms() []Term { return d.terms }
