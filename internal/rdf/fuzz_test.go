package rdf

import (
	"strings"
	"testing"
)

// FuzzNTriples is the native fuzz target for the N-Triples statement
// parser (run in CI as a smoke step; `go test -fuzz=FuzzNTriples` explores
// further). Beyond not panicking, it checks the parser/writer round-trip
// invariant behind term canonicalization: any statement that parses must
// re-serialize to a statement that parses back to the identical triple —
// the property the store relies on so that equal terms intern as one
// vertex however they were spelled in the input.
func FuzzNTriples(f *testing.F) {
	seeds := []string{
		`<http://a> <http://b> <http://c> .`,
		`<http://a> <http://b> "lit" .`,
		`<http://a> <http://b> "typed"^^<http://dt> .`,
		`<http://a> <http://b> "tagged"@en-US .`,
		`_:b0 <http://b> _:b1.`,
		`_:b.0 <http://b> "dot label" .`,
		`<http://s> <http://p> "café" .`,
		`<http://s> <http://p> "tab\tnl\nquote\"back\\" .`,
		`<http://s> <http://p> "astral\U0001F600" .`,
		`# comment`,
		``,
		`<http://a> <http://b> "unterminated`,
		`<http://a> "litpred" <http://c> .`,
		`"litsubj" <http://b> <http://c> .`,
		`<http://a> <http://b> <http://c> extra .`,
		`<http://a> <http://b> <http://c>`,
		" ",
		strings.Repeat("<http://x>", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseTripleLine(line)
		if err != nil {
			if pe, ok := err.(*ParseError); ok && pe.Error() == "" {
				t.Fatalf("empty parse error for %q", line)
			}
			return
		}
		var b strings.Builder
		w := NewWriter(&b)
		if err := w.Write(tr); err != nil {
			t.Fatalf("write of parsed triple failed: %v (input %q)", err, line)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		out := strings.TrimSuffix(b.String(), "\n")
		tr2, err := ParseTripleLine(out)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n input %q\nserial %q", err, line, out)
		}
		if tr2 != tr {
			t.Fatalf("round-trip changed the triple:\n input %q\n first %+v\nsecond %+v", line, tr, tr2)
		}
	})
}

// FuzzNTriplesDocument feeds whole documents (multiple lines, comments,
// blank lines) through the streaming Reader: ReadAll must never panic, and
// any document it accepts must survive WriteAll -> ReadAll unchanged.
func FuzzNTriplesDocument(f *testing.F) {
	f.Add("<http://a> <http://b> <http://c> .\n# c\n\n_:x <http://p> \"v\"@en .\n")
	f.Add("<http://a> <http://b> \"a\\nb\" .\r\n<http://a> <http://b> <http://c> .")
	f.Add("junk\n<http://a> <http://b> <http://c> .")
	f.Fuzz(func(t *testing.T, doc string) {
		triples, err := ReadAll(strings.NewReader(doc))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WriteAll(&b, triples); err != nil {
			t.Fatalf("WriteAll: %v", err)
		}
		again, err := ReadAll(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-read of serialized document failed: %v\ndoc %q\nserial %q", err, doc, b.String())
		}
		if len(again) != len(triples) {
			t.Fatalf("round-trip changed triple count: %d vs %d", len(triples), len(again))
		}
		for i := range again {
			if again[i] != triples[i] {
				t.Fatalf("round-trip changed triple %d: %+v vs %+v", i, triples[i], again[i])
			}
		}
	})
}
