package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a malformed N-Triples line.
type ParseError struct {
	Line int
	Msg  string
	Text string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Reader streams triples from N-Triples text. Lines starting with '#' and
// blank lines are skipped. Every statement must end with the grammar's '.'
// terminator; a line without one is rejected with a *ParseError rather than
// silently accepted, since a missing dot usually means a truncated or
// corrupted dump.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader wraps r in an N-Triples reader.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{s: s}
}

// Read returns the next triple, or io.EOF when exhausted.
func (r *Reader) Read() (Triple, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			if pe, ok := err.(*ParseError); ok {
				pe.Line = r.line
			}
			return Triple{}, err
		}
		return t, nil
	}
	if err := r.s.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll consumes the reader and returns all triples.
func ReadAll(rd io.Reader) ([]Triple, error) {
	r := NewReader(rd)
	var out []Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseTripleLine parses a single N-Triples statement. The statement must
// carry its terminating '.'. The terminator is scanned as a token of its own
// rather than stripped up front, so terms that may abut it without
// whitespace — `<s> <p> _:b.` — parse per the grammar: a blank-node label
// may contain but never end with '.'. Literal objects are canonicalized on
// the way in (escape sequences decoded and minimally re-escaped), so
// `"café"` and `"café"` produce the identical Term.
func ParseTripleLine(line string) (Triple, error) {
	rest := strings.TrimSpace(line)

	s, rest, err := scanTerm(rest, line)
	if err != nil {
		return Triple{}, err
	}
	p, rest, err := scanTerm(rest, line)
	if err != nil {
		return Triple{}, err
	}
	o, rest, err := scanTerm(rest, line)
	if err != nil {
		return Triple{}, err
	}
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" || rest[0] != '.' {
		return Triple{}, &ParseError{Msg: "missing statement terminator '.'", Text: line}
	}
	if strings.TrimSpace(rest[1:]) != "" {
		return Triple{}, &ParseError{Msg: "trailing tokens after statement terminator '.'", Text: line}
	}
	if s.Kind() == Literal {
		return Triple{}, &ParseError{Msg: "literal subject", Text: line}
	}
	if p.Kind() != IRI {
		return Triple{}, &ParseError{Msg: "predicate must be an IRI", Text: line}
	}
	return Triple{S: s, P: p, O: o}, nil
}

// scanTerm extracts the next term from s, returning the term and remainder.
func scanTerm(s, line string) (Term, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return "", "", &ParseError{Msg: "unexpected end of statement", Text: line}
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return "", "", &ParseError{Msg: "unterminated IRI", Text: line}
		}
		return Term(s[:end+1]), s[end+1:], nil
	case '_':
		if !strings.HasPrefix(s, "_:") {
			return "", "", &ParseError{Msg: "malformed blank node", Text: line}
		}
		// BLANK_NODE_LABEL: '.' is a legal interior character but the label
		// neither starts nor ends with it — trailing dots belong to the
		// statement terminator, not the label (`<s> <p> _:b.`).
		end := 2
		for end < len(s) && isBlankLabelByte(s[end]) {
			end++
		}
		for end > 2 && s[end-1] == '.' {
			end--
		}
		if end == 2 {
			return "", "", &ParseError{Msg: "malformed blank node", Text: line}
		}
		return Term(s[:end]), s[end:], nil
	case '"':
		end := closingQuote(s)
		if end < 0 {
			return "", "", &ParseError{Msg: "unterminated literal", Text: line}
		}
		i := end + 1
		switch {
		case strings.HasPrefix(s[i:], "^^<"):
			dtEnd := strings.IndexByte(s[i:], '>')
			if dtEnd < 0 {
				return "", "", &ParseError{Msg: "unterminated datatype IRI", Text: line}
			}
			i += dtEnd + 1
		case strings.HasPrefix(s[i:], "@"):
			j := i + 1
			for j < len(s) && (isAlnum(s[j]) || s[j] == '-') {
				j++
			}
			if j == i+1 {
				return "", "", &ParseError{Msg: "empty language tag", Text: line}
			}
			i = j
		}
		return Term(s[:i]).Canonical(), s[i:], nil
	default:
		return "", "", &ParseError{Msg: "unrecognized term", Text: line}
	}
}

// isBlankLabelByte approximates the PN_CHARS production for blank-node
// labels: ASCII letters, digits, '_', '-', '.' (interior only; the caller
// trims trailing dots) and any non-ASCII byte (labels may carry Unicode).
func isBlankLabelByte(b byte) bool {
	return isAlnum(b) || b == '_' || b == '-' || b == '.' || b >= 0x80
}

// closingQuote returns the index of the unescaped closing quote of a literal
// starting at s[0] == '"', or -1.
func closingQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

func isAlnum(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// Writer serializes triples as N-Triples text.
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w in an N-Triples writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one triple. Literal terms are re-escaped into the canonical
// encoding on the way out, so a Write/Read round trip preserves term
// identity even for terms constructed with non-canonical escapes.
func (w *Writer) Write(t Triple) error {
	if _, err := w.w.WriteString(string(t.S.Canonical())); err != nil {
		return err
	}
	w.w.WriteByte(' ')
	w.w.WriteString(string(t.P))
	w.w.WriteByte(' ')
	w.w.WriteString(string(t.O.Canonical()))
	_, err := w.w.WriteString(" .\n")
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll writes all triples to w in N-Triples format.
func WriteAll(w io.Writer, triples []Triple) error {
	nw := NewWriter(w)
	for _, t := range triples {
		if err := nw.Write(t); err != nil {
			return err
		}
	}
	return nw.Flush()
}
