package rdf

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermKinds(t *testing.T) {
	cases := []struct {
		term Term
		kind TermKind
	}{
		{NewIRI("http://x/a"), IRI},
		{NewLiteral("hello"), Literal},
		{NewTypedLiteral("3", XSDInteger), Literal},
		{NewLangLiteral("chat", "fr"), Literal},
		{NewBlank("b0"), Blank},
		{Term(""), Invalid},
		{Term("oops"), Invalid},
	}
	for _, c := range cases {
		if got := c.term.Kind(); got != c.kind {
			t.Errorf("Kind(%q) = %v, want %v", c.term, got, c.kind)
		}
	}
}

func TestTermAccessors(t *testing.T) {
	iri := NewIRI("http://x/a")
	if got := iri.IRIValue(); got != "http://x/a" {
		t.Errorf("IRIValue = %q", got)
	}
	lit := NewTypedLiteral("42", XSDInteger)
	if got := lit.LexicalValue(); got != "42" {
		t.Errorf("LexicalValue = %q", got)
	}
	if got := lit.DatatypeIRI(); got != XSDInteger {
		t.Errorf("DatatypeIRI = %q", got)
	}
	if v, ok := lit.NumericValue(); !ok || v != 42 {
		t.Errorf("NumericValue = %v, %v", v, ok)
	}
	lang := NewLangLiteral("bonjour", "fr")
	if got := lang.Lang(); got != "fr" {
		t.Errorf("Lang = %q", got)
	}
	if got := lang.LexicalValue(); got != "bonjour" {
		t.Errorf("LexicalValue = %q", got)
	}
	if _, ok := NewLiteral("abc").NumericValue(); ok {
		t.Error("NumericValue of non-number should fail")
	}
	if _, ok := iri.NumericValue(); ok {
		t.Error("NumericValue of IRI should fail")
	}
}

func TestLiteralEscapeRoundTrip(t *testing.T) {
	values := []string{
		"plain",
		`with "quotes"`,
		"tab\tnewline\nreturn\r",
		`back\slash`,
		"",
	}
	for _, v := range values {
		lit := NewLiteral(v)
		if got := lit.LexicalValue(); got != v {
			t.Errorf("round trip %q -> %q -> %q", v, lit, got)
		}
	}
}

func TestLiteralEscapeProperty(t *testing.T) {
	f := func(s string) bool {
		return NewLiteral(s).LexicalValue() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseTripleLine(t *testing.T) {
	cases := []struct {
		line string
		want Triple
	}{
		{
			`<http://x/s> <http://x/p> <http://x/o> .`,
			Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o")},
		},
		{
			`<http://x/s> <http://x/p> "lit" .`,
			Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("lit")},
		},
		{
			`_:b0 <http://x/p> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
			Triple{NewBlank("b0"), NewIRI("http://x/p"), NewTypedLiteral("3", XSDInteger)},
		},
		{
			`<http://x/s> <http://x/p> "hi"@en-GB .`,
			Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), NewLangLiteral("hi", "en-GB")},
		},
		{ // no space before the terminator
			`<http://x/s> <http://x/p> _:b1.`,
			Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), NewBlank("b1")},
		},
		{ // literal containing an escaped quote and a dot
			`<http://x/s> <http://x/p> "a \"b\". c" .`,
			Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), Term(`"a \"b\". c"`)},
		},
	}
	for _, c := range cases {
		got, err := ParseTripleLine(c.line)
		if err != nil {
			t.Errorf("ParseTripleLine(%q): %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTripleLine(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

func TestParseTripleLineErrors(t *testing.T) {
	bad := []string{
		``,
		`<http://x/s>`,
		`<http://x/s> <http://x/p>`,
		`<http://x/s <http://x/p> <http://x/o> .`,
		`"lit" <http://x/p> <http://x/o> .`,
		`<http://x/s> "lit" <http://x/o> .`,
		`<http://x/s> <http://x/p> "unterminated .`,
		`<http://x/s> <http://x/p> <http://x/o> junk .`,
		`<http://x/s> <http://x/p> "x"@ .`,
		`frob <http://x/p> <http://x/o> .`,
		`<http://x/s> <http://x/p> <http://x/o>`, // missing terminator
		`<http://x/s> <http://x/p> _:b1`,         // missing terminator
		`<http://x/s> <http://x/p> "lit"`,        // missing terminator
	}
	for _, line := range bad {
		_, err := ParseTripleLine(line)
		if err == nil {
			t.Errorf("ParseTripleLine(%q): expected error", line)
			continue
		}
		if _, ok := err.(*ParseError); !ok {
			t.Errorf("ParseTripleLine(%q): error type %T, want *ParseError", line, err)
		}
	}
}

// TestMissingTerminatorReported pins the satellite contract: a dot-less
// statement is a *ParseError naming the terminator, carrying the reader's
// line number.
func TestMissingTerminatorReported(t *testing.T) {
	r := NewReader(strings.NewReader("<http://x/s> <http://x/p> <http://x/o> .\n<http://x/s> <http://x/p> <http://x/o>\n"))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first Read: %v", err)
	}
	_, err := r.Read()
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %v (%T), want *ParseError", err, err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Msg, "terminator") {
		t.Errorf("error message %q does not name the terminator", pe.Msg)
	}
}

func TestReaderSkipsCommentsAndReportsLines(t *testing.T) {
	src := "# header\n\n<http://x/s> <http://x/p> <http://x/o> .\nbroken line\n"
	r := NewReader(strings.NewReader(src))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first Read: %v", err)
	}
	_, err := r.Read()
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("second Read err = %v, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4", pe.Line)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	triples := []Triple{
		{NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o")},
		{NewIRI("http://x/s"), NewIRI("http://x/q"), NewLiteral(`tricky "quote" and \slash`)},
		{NewBlank("n1"), NewIRI("http://x/p"), NewTypedLiteral("3.5", XSDDouble)},
		{NewIRI("http://x/s"), NewIRI("http://x/r"), NewLangLiteral("hello", "en")},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, triples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(triples) {
		t.Fatalf("round trip count %d, want %d", len(got), len(triples))
	}
	for i := range got {
		if got[i] != triples[i] {
			t.Errorf("triple %d = %v, want %v", i, got[i], triples[i])
		}
	}
}

func TestReadAllEOFOnly(t *testing.T) {
	got, err := ReadAll(strings.NewReader("# nothing here\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("ReadAll = %v, %v", got, err)
	}
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read on empty = %v, want EOF", err)
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Intern(NewIRI("http://x/a"))
	b := d.Intern(NewIRI("http://x/b"))
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if got := d.Intern(NewIRI("http://x/a")); got != a {
		t.Errorf("re-intern = %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if got := d.Term(a); got != NewIRI("http://x/a") {
		t.Errorf("Term(%d) = %q", a, got)
	}
	if _, ok := d.Lookup(NewIRI("http://x/zzz")); ok {
		t.Error("Lookup of unseen term succeeded")
	}
	if id, ok := d.Lookup(NewIRI("http://x/b")); !ok || id != b {
		t.Errorf("Lookup(b) = %d, %v", id, ok)
	}
}

func TestDictionaryDenseIDs(t *testing.T) {
	d := NewDictionary()
	for i := 0; i < 100; i++ {
		id := d.Intern(NewIntLiteral(int64(i)))
		if id != uint32(i) {
			t.Fatalf("Intern #%d = %d, want dense assignment", i, id)
		}
	}
}

func TestTermKindStrings(t *testing.T) {
	for k, want := range map[TermKind]string{
		IRI: "IRI", Literal: "Literal", Blank: "Blank", Invalid: "Invalid",
	} {
		if k.String() != want {
			t.Errorf("TermKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := Triple{S: NewIRI("http://s"), P: NewIRI("http://p"), O: NewLiteral("o")}
	if got := tr.String(); got != `<http://s> <http://p> "o" .` {
		t.Fatalf("Triple.String() = %q", got)
	}
}

func TestFloatLiteralAndNumericValue(t *testing.T) {
	f := NewFloatLiteral(2.5)
	v, ok := f.NumericValue()
	if !ok || v != 2.5 {
		t.Fatalf("NumericValue = %v %v", v, ok)
	}
	if f.DatatypeIRI() != XSDDouble {
		t.Fatalf("datatype = %q", f.DatatypeIRI())
	}
	if _, ok := NewIRI("http://x").NumericValue(); ok {
		t.Fatal("IRI should have no numeric value")
	}
	if _, ok := NewLiteral("abc").NumericValue(); ok {
		t.Fatal("non-numeric literal accepted")
	}
}

func TestDegenerateTermAccessors(t *testing.T) {
	if Term("").Kind() != Invalid {
		t.Fatal("empty term should be Invalid")
	}
	if Term("x").IRIValue() != "" {
		t.Fatal("non-IRI IRIValue should be empty")
	}
	if Term(`<`).IRIValue() != "" {
		t.Fatal("truncated IRI should yield empty value")
	}
	if Term(`"`).LexicalValue() != "" {
		t.Fatal("truncated literal should yield empty value")
	}
	if NewIRI("http://x").LexicalValue() != "" {
		t.Fatal("IRI has no lexical value")
	}
	if NewLiteral("x").Lang() != "" || NewLiteral("x").DatatypeIRI() != "" {
		t.Fatal("plain literal has no lang or datatype")
	}
}

func TestUnescapeUnicodeAndEdgeCases(t *testing.T) {
	// \u escape round-trips through the reader.
	tr, err := ParseTripleLine(`<http://s> <http://p> "snow☃man" .`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.O.LexicalValue() != "snow☃man" {
		t.Fatalf("unicode unescape = %q", tr.O.LexicalValue())
	}
	// A malformed \u escape falls back to the literal character.
	tr, err = ParseTripleLine(`<http://s> <http://p> "bad\uZZZZesc" .`)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.O.LexicalValue(); got != "baduZZZZesc" {
		t.Fatalf("malformed unicode = %q", got)
	}
	// Trailing backslash survives.
	if got := unescapeLiteral(`tail\`); got != `tail\` {
		t.Fatalf("trailing backslash = %q", got)
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := ParseTripleLine("garbage")
	if err == nil {
		t.Fatal("garbage accepted")
	}
	var pe *ParseError
	if !errorsAs(err, &pe) {
		t.Fatalf("error type = %T", err)
	}
	if pe.Error() == "" {
		t.Fatal("empty error message")
	}
}

func errorsAs(err error, target *(*ParseError)) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

// TestBlankNodeTerminator pins the satellite contract: a blank-node label
// may contain but never end with '.', so the statement terminator can abut
// the label without whitespace and round-trips cleanly.
func TestBlankNodeTerminator(t *testing.T) {
	cases := []struct {
		line string
		want Triple
	}{
		{ // terminator folded straight onto the label
			`<http://x/s> <http://x/p> _:b.`,
			Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), NewBlank("b")},
		},
		{ // interior dots belong to the label, the trailing one does not
			`<http://x/s> <http://x/p> _:b.c.d.`,
			Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), NewBlank("b.c.d")},
		},
		{ // blank subject abutting the predicate's '<'
			`_:b<http://x/p> <http://x/o> .`,
			Triple{NewBlank("b"), NewIRI("http://x/p"), NewIRI("http://x/o")},
		},
		{ // unicode label bytes
			`<http://x/s> <http://x/p> _:héllo .`,
			Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), NewBlank("héllo")},
		},
	}
	for _, c := range cases {
		got, err := ParseTripleLine(c.line)
		if err != nil {
			t.Errorf("ParseTripleLine(%q): %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTripleLine(%q) = %v, want %v", c.line, got, c.want)
		}
		// Round trip: write and re-read the parsed triple.
		var buf bytes.Buffer
		if err := WriteAll(&buf, []Triple{got}); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(&buf)
		if err != nil || len(back) != 1 || back[0] != got {
			t.Errorf("round trip of %q = %v, %v", c.line, back, err)
		}
	}
	// A lone "_:" label (or a label swallowed entirely by dots) is malformed.
	for _, bad := range []string{
		`<http://x/s> <http://x/p> _: .`,
		`<http://x/s> <http://x/p> _:. .`,
		`<http://x/s> <http://x/p> _:b extra.`,
	} {
		if _, err := ParseTripleLine(bad); err == nil {
			t.Errorf("ParseTripleLine(%q): expected error", bad)
		}
	}
}

// TestLiteralCanonicalization pins the satellite contract: escaped and raw
// spellings of the same literal value parse to the identical Term, so they
// intern as one dictionary entry.
func TestLiteralCanonicalization(t *testing.T) {
	lines := []string{
		`<http://x/s> <http://x/p> "café" .`,
		`<http://x/s> <http://x/p> "caf\u00E9" .`,
		`<http://x/s> <http://x/p> "caf\U000000E9" .`,
		`<http://x/s> <http://x/p> "caf\u00e9" .`,
	}
	want := NewLiteral("café")
	for _, line := range lines {
		tr, err := ParseTripleLine(line)
		if err != nil {
			t.Fatalf("ParseTripleLine(%q): %v", line, err)
		}
		if tr.O != want {
			t.Errorf("ParseTripleLine(%q).O = %q, want %q", line, tr.O, want)
		}
	}
	// Suffixed literals canonicalize the body and keep the suffix.
	tr, err := ParseTripleLine(`<http://x/s> <http://x/p> "café"@fr .`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.O != NewLangLiteral("café", "fr") {
		t.Errorf("lang literal = %q", tr.O)
	}
	// Control-character escapes decode and re-escape canonically.
	tr, err = ParseTripleLine(`<http://x/s> <http://x/p> "a\tb\nc\"d\\e" .`)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.O.LexicalValue(); got != "a\tb\nc\"d\\e" {
		t.Errorf("LexicalValue = %q", got)
	}
	if tr.O != NewLiteral("a\tb\nc\"d\\e") {
		t.Errorf("canonical form = %q", tr.O)
	}
}

// TestTermCanonical exercises Term.Canonical directly, including the
// no-allocation fast path and Writer re-escaping.
func TestTermCanonical(t *testing.T) {
	if got := Term(`"caf\u00E9"^^<http://dt>`).Canonical(); got != NewTypedLiteral("café", "http://dt") {
		t.Errorf("typed canonical = %q", got)
	}
	already := NewLiteral("plain")
	if got := already.Canonical(); got != already {
		t.Errorf("canonical of canonical = %q", got)
	}
	if got := NewIRI("http://x").Canonical(); got != NewIRI("http://x") {
		t.Errorf("IRI canonical = %q", got)
	}
	// \b and \f decode to raw control bytes, which round-trip.
	bf := Term(`"a\bb\fc"`).Canonical()
	if bf.LexicalValue() != "a\bb\fc" {
		t.Errorf("\\b/\\f decode = %q", bf.LexicalValue())
	}

	// Writer re-escapes non-canonical terms on the way out.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), Term(`"caf\u00E9"`)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), `<http://x/s> <http://x/p> "café" .`+"\n"; got != want {
		t.Errorf("Writer output = %q, want %q", got, want)
	}
}

// TestMixedEscapeDatasetRoundTrip writes a dataset with every escape flavor
// and checks the read-back interns to the same term set.
func TestMixedEscapeDatasetRoundTrip(t *testing.T) {
	src := strings.Join([]string{
		`<http://x/a> <http://x/p> "tab\there" .`,
		`<http://x/b> <http://x/p> "newline\nhere" .`,
		`<http://x/c> <http://x/p> "quote\"here" .`,
		`<http://x/d> <http://x/p> "slash\\here" .`,
		`<http://x/e> <http://x/p> "uni☃ and \U0001F600" .`,
		`<http://x/f> <http://x/p> "uni☃ and 😀" .`,
	}, "\n")
	triples, err := ReadAll(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// The last two lines denote the same object term.
	if triples[4].O != triples[5].O {
		t.Errorf("escaped %q != raw %q", triples[4].O, triples[5].O)
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, triples); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range triples {
		if back[i] != triples[i] {
			t.Errorf("round trip %d: %v != %v", i, back[i], triples[i])
		}
	}
}

// TestDictionaryCap pins the satellite contract: the ID after 2³²−2 would
// be NoID, so assignment panics with a clear message instead of handing out
// the sentinel.
func TestDictionaryCap(t *testing.T) {
	if got := nextID(0); got != 0 {
		t.Fatalf("nextID(0) = %d", got)
	}
	// int cannot hold NoID on 32-bit platforms; -1 and -2 have the same
	// uint32 images (uint32(-1) == NoID), so they exercise the same guard
	// on any word size.
	if got := nextID(-2); got != NoID-1 {
		t.Fatalf("nextID(NoID-1) = %d", got)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("nextID(NoID) did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "dictionary full") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	nextID(-1)
}

// TestDictionaryConcurrentReaders checks the mutation-lock contract: Intern
// racing with Lookup/Term/Len is safe (run under -race).
func TestDictionaryConcurrentReaders(t *testing.T) {
	d := NewDictionary()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			d.Intern(NewIntLiteral(int64(i)))
		}
	}()
	for i := 0; i < 2000; i++ {
		if id, ok := d.Lookup(NewIntLiteral(int64(i % 50))); ok {
			if d.Term(id) != NewIntLiteral(int64(i%50)) {
				t.Fatal("Term/Lookup disagree")
			}
		}
		_ = d.Len()
	}
	<-done
}

func TestDictionaryTermsSlice(t *testing.T) {
	d := NewDictionary()
	d.Intern(NewIRI("http://a"))
	d.Intern(NewIRI("http://b"))
	ts := d.Terms()
	if len(ts) != 2 || ts[0] != NewIRI("http://a") {
		t.Fatalf("Terms() = %v", ts)
	}
}
