// Package rdf implements the RDF data model used by every engine in this
// repository: terms (IRIs, literals, blank nodes), triples, a streaming
// N-Triples reader/writer, and the term dictionary that maps terms to dense
// uint32 IDs.
//
// Terms are stored in a single canonical string encoding (the N-Triples
// surface syntax: `<iri>`, `"literal"`, `"3"^^<dt>`, `"s"@en`, `_:b0`).
// Keeping one string per term — instead of a struct with several string
// fields — halves the dictionary's footprint and keeps GC pressure down,
// which matters when millions of terms are loaded.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind classifies a term.
type TermKind uint8

const (
	// IRI is an IRI reference, encoded "<...>".
	IRI TermKind = iota
	// Literal is an RDF literal, encoded `"..."` with optional
	// `^^<datatype>` or `@lang` suffix.
	Literal
	// Blank is a blank node, encoded "_:label".
	Blank
	// Invalid marks an unrecognizable term encoding.
	Invalid
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return "Invalid"
	}
}

// Term is a single RDF term in canonical N-Triples encoding.
type Term string

// Kind reports the kind of the term from its encoding.
func (t Term) Kind() TermKind {
	if len(t) == 0 {
		return Invalid
	}
	switch t[0] {
	case '<':
		return IRI
	case '"':
		return Literal
	case '_':
		return Blank
	default:
		return Invalid
	}
}

// NewIRI builds an IRI term from a bare IRI string.
func NewIRI(iri string) Term { return Term("<" + iri + ">") }

// NewBlank builds a blank-node term from a label.
func NewBlank(label string) Term { return Term("_:" + label) }

// NewLiteral builds a plain string literal, escaping as needed.
func NewLiteral(value string) Term {
	return Term(`"` + escapeLiteral(value) + `"`)
}

// NewTypedLiteral builds a literal with a datatype IRI.
func NewTypedLiteral(value, datatypeIRI string) Term {
	return Term(`"` + escapeLiteral(value) + `"^^<` + datatypeIRI + ">")
}

// NewLangLiteral builds a language-tagged literal.
func NewLangLiteral(value, lang string) Term {
	return Term(`"` + escapeLiteral(value) + `"@` + lang)
}

// NewIntLiteral builds an xsd:integer literal.
func NewIntLiteral(v int64) Term {
	return NewTypedLiteral(strconv.FormatInt(v, 10), XSDInteger)
}

// NewFloatLiteral builds an xsd:double literal.
func NewFloatLiteral(v float64) Term {
	return NewTypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), XSDDouble)
}

// IRIValue returns the IRI without angle brackets, or "" if not an IRI.
func (t Term) IRIValue() string {
	if t.Kind() != IRI || len(t) < 2 {
		return ""
	}
	return string(t[1 : len(t)-1])
}

// LexicalValue returns a literal's lexical form (unescaped), or "" if the
// term is not a literal.
func (t Term) LexicalValue() string {
	if t.Kind() != Literal {
		return ""
	}
	s := string(t)
	end := strings.LastIndexByte(s, '"')
	if end <= 0 {
		return ""
	}
	return unescapeLiteral(s[1:end])
}

// DatatypeIRI returns a literal's datatype IRI, or "" when absent.
func (t Term) DatatypeIRI() string {
	s := string(t)
	i := strings.LastIndex(s, `"^^<`)
	if i < 0 || !strings.HasSuffix(s, ">") {
		return ""
	}
	return s[i+4 : len(s)-1]
}

// Lang returns a literal's language tag, or "" when absent.
func (t Term) Lang() string {
	s := string(t)
	i := strings.LastIndex(s, `"@`)
	if i < 0 || i+2 >= len(s) {
		return ""
	}
	return s[i+2:]
}

// NumericValue parses the literal as a number. ok is false for non-literals
// and non-numeric lexical forms.
func (t Term) NumericValue() (v float64, ok bool) {
	if t.Kind() != Literal {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.LexicalValue(), 64)
	return v, err == nil
}

// Canonical returns the term with its literal escape sequences normalized:
// \uXXXX / \UXXXXXXXX and the single-character escapes are decoded, then the
// lexical form is re-escaped minimally (only ", \, newline, carriage return
// and tab). Two literals denoting the same value — `"café"` and
// `"café"` — therefore canonicalize to the identical Term string, which
// is what makes dictionary interning, joins and DISTINCT treat them as one
// term. Non-literals are returned unchanged; the common already-canonical
// case costs one scan and no allocation.
func (t Term) Canonical() Term {
	if t.Kind() != Literal {
		return t
	}
	s := string(t)
	end := strings.LastIndexByte(s, '"')
	if end <= 0 {
		return t
	}
	body := s[1:end]
	canon := escapeLiteral(unescapeLiteral(body))
	if canon == body {
		return t
	}
	return Term(`"` + canon + `"` + s[end+1:])
}

// Unescape decodes the N-Triples escape sequences of s: the single-character
// escapes (\t \b \n \r \f \" \' \\) and the numeric escapes \uXXXX and
// \UXXXXXXXX. Malformed escapes degrade to the escaped character itself.
func Unescape(s string) string { return unescapeLiteral(s) }

// Triple is a single RDF statement.
type Triple struct {
	S, P, O Term
}

// Canonical returns the triple with every term canonicalized (literal escape
// normalization; see Term.Canonical).
func (t Triple) Canonical() Triple {
	return Triple{S: t.S.Canonical(), P: t.P.Canonical(), O: t.O.Canonical()}
}

func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Well-known vocabulary.
const (
	RDFType       = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSSubClass  = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSSubProp   = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
	OWLInverseOf  = "http://www.w3.org/2002/07/owl#inverseOf"
	OWLTransitive = "http://www.w3.org/2002/07/owl#TransitiveProperty"
	XSDInteger    = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDouble     = "http://www.w3.org/2001/XMLSchema#double"
	XSDString     = "http://www.w3.org/2001/XMLSchema#string"
	XSDDate       = "http://www.w3.org/2001/XMLSchema#date"
)

// TypeTerm is the rdf:type predicate as a Term.
var TypeTerm = NewIRI(RDFType)

// SubClassTerm is the rdfs:subClassOf predicate as a Term.
var SubClassTerm = NewIRI(RDFSSubClass)

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case 'b':
			b.WriteByte('\b')
		case 'f':
			b.WriteByte('\f')
		case '"':
			b.WriteByte('"')
		case '\'':
			b.WriteByte('\'')
		case '\\':
			b.WriteByte('\\')
		case 'u':
			if i+4 < len(s) {
				if r, err := strconv.ParseUint(s[i+1:i+5], 16, 32); err == nil {
					b.WriteRune(rune(r))
					i += 4
					continue
				}
			}
			b.WriteByte('u')
		case 'U':
			if i+8 < len(s) {
				if r, err := strconv.ParseUint(s[i+1:i+9], 16, 32); err == nil && r <= 0x10FFFF {
					b.WriteRune(rune(r))
					i += 8
					continue
				}
			}
			b.WriteByte('U')
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
