package server

import (
	"container/list"
	"sync"

	turbohom "repro"
)

// preparedCache is the server's prepared-query LRU. A cache hit skips
// parsing and planning entirely; it stays correct across store updates
// because a Prepared recompiles itself lazily against whatever snapshot it
// executes on. A nil *preparedCache is a valid, always-missing cache
// (PreparedCache < 0 disables caching).
type preparedCache struct {
	mu    sync.Mutex
	max   int
	m     map[string]*list.Element
	order *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	p   *turbohom.Prepared
}

func newPreparedCache(max int) *preparedCache {
	if max <= 0 {
		return nil
	}
	return &preparedCache{
		max:   max,
		m:     make(map[string]*list.Element, max),
		order: list.New(),
	}
}

func (c *preparedCache) get(query string) (*turbohom.Prepared, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[query]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).p, true
}

func (c *preparedCache) put(query string, p *turbohom.Prepared) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[query]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).p = p
		return
	}
	c.m[query] = c.order.PushFront(&cacheEntry{key: query, p: p})
	for len(c.m) > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

func (c *preparedCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
