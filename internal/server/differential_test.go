package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	turbohom "repro"
	"repro/internal/datagen"
	"repro/internal/server"
	"repro/internal/server/loadtest"
)

// TestDifferentialWorkloads drains every benchmark query of every datagen
// workload twice over HTTP — once per result format — and once in process,
// and demands the three row sets be identical term for term. Term is a
// canonical N-Triples string, so == is byte equality: any serialization or
// decoding drift in either wire format shows up here.
func TestDifferentialWorkloads(t *testing.T) {
	for _, ds := range []*datagen.Dataset{
		datagen.LUBMDataset(1),
		datagen.BSBMDataset(40),
		datagen.YAGODataset(250),
		datagen.BTCDataset(250),
	} {
		t.Run(ds.Name, func(t *testing.T) {
			store := turbohom.New(ds.Triples, &turbohom.Options{Workers: 4})
			defer store.Close()
			ts := httptest.NewServer(server.New(store, turbohom.ServerOptions{QueryTimeout: -1}))
			defer ts.Close()

			for _, q := range ds.Queries {
				p, err := store.Prepare(q.Text)
				if err != nil {
					t.Fatalf("%s: %v", q.ID, err)
				}
				var want [][]turbohom.Term
				rows := p.Select(context.Background())
				for rows.Next() {
					want = append(want, append([]turbohom.Term(nil), rows.Row()...))
				}
				if err := rows.Close(); err != nil {
					t.Fatalf("%s: %v", q.ID, err)
				}
				for _, accept := range []string{"application/sparql-results+json", "application/sparql-results+xml"} {
					doc, err := loadtest.DoQuery(context.Background(), http.DefaultClient, ts.URL, q.Text, accept)
					if err != nil {
						t.Fatalf("%s via %s: %v", q.ID, accept, err)
					}
					assertRowsEqual(t, q.ID+" "+accept, doc, p.Vars(), want)
				}
			}
		})
	}
}

// TestSnapshotIsolationOverHTTP pins the wire-level snapshot contract: a
// response whose cursor opened before an update streams the pre-update
// rows, while the next request sees the change — even though the update
// committed while the first response was still being read.
func TestSnapshotIsolationOverHTTP(t *testing.T) {
	const n = 120
	store := turbohom.New(fanTriples(n), &turbohom.Options{Workers: 2, StreamBuffer: 8})
	defer store.Close()
	ts := httptest.NewServer(server.New(store, turbohom.ServerOptions{QueryTimeout: -1}))
	defer ts.Close()

	countRows := func(body string) int { return strings.Count(body, `{"a":`) }

	// Open the stream and read the head, so the handler has demonstrably
	// called Select (pinning its snapshot) before the update below.
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(fanQuery))
	if err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 32)
	if _, err := io.ReadFull(resp.Body, head); err != nil {
		t.Fatal(err)
	}

	// Concurrent update: one new child on each fan. A post-update snapshot
	// yields (n+1)*(n+1) rows; the pinned one must still yield n*n.
	ins, del, err := loadtest.DoUpdate(context.Background(), http.DefaultClient, ts.URL,
		`INSERT DATA { <http://x/hub> <http://x/p> <http://x/pnew> . <http://x/hub> <http://x/q> <http://x/qnew> }`)
	if err != nil {
		t.Fatal(err)
	}
	if ins != 2 || del != 0 {
		t.Fatalf("update counts (%d, %d), want (2, 0)", ins, del)
	}

	rest, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := countRows(string(head) + string(rest)); got != n*n {
		t.Fatalf("in-flight stream delivered %d rows, want the pre-update %d", got, n*n)
	}

	// A fresh request sees the committed update.
	resp2, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(fanQuery))
	if err != nil {
		t.Fatal(err)
	}
	body2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := countRows(string(body2)); got != (n+1)*(n+1) {
		t.Fatalf("fresh stream delivered %d rows, want the post-update %d", got, (n+1)*(n+1))
	}
}

// TestDifferentialUnderChurn hammers the endpoint with interleaved queries
// and updates and checks every response is internally consistent: a fan
// query's row count must be a perfect square k*k with k in the range the
// churn can produce — a torn snapshot would surface as a non-square count.
func TestDifferentialUnderChurn(t *testing.T) {
	const n = 40
	store := turbohom.New(fanTriples(n), &turbohom.Options{Workers: 2})
	defer store.Close()
	ts := httptest.NewServer(server.New(store, turbohom.ServerOptions{QueryTimeout: -1}))
	defer ts.Close()

	const churn = 12
	errc := make(chan error, 2*churn)
	go func() {
		for i := 0; i < churn; i++ {
			u := fmt.Sprintf(`INSERT DATA { <http://x/hub> <http://x/p> <http://x/pc%02d> . <http://x/hub> <http://x/q> <http://x/qc%02d> }`, i, i)
			if _, _, err := loadtest.DoUpdate(context.Background(), http.DefaultClient, ts.URL, u); err != nil {
				errc <- err
				return
			}
			if i%3 == 2 {
				d := fmt.Sprintf(`DELETE DATA { <http://x/hub> <http://x/p> <http://x/pc%02d> }`, i-2)
				if _, _, err := loadtest.DoUpdate(context.Background(), http.DefaultClient, ts.URL, d); err != nil {
					errc <- err
					return
				}
			}
		}
		errc <- nil
	}()

	for i := 0; i < churn; i++ {
		doc, err := loadtest.DoQuery(context.Background(), http.DefaultClient, ts.URL, fanQuery, "")
		if err != nil {
			t.Fatal(err)
		}
		rows := len(doc.Rows)
		// p-fan size ∈ [n, n+churn], q-fan ∈ [n, n+churn]; a consistent
		// snapshot sees both fans from the same store version.
		ok := false
		for a := n - churn; a <= n+churn && !ok; a++ {
			for b := n - churn; b <= n+churn; b++ {
				if a*b == rows {
					ok = true
					break
				}
			}
		}
		if !ok {
			t.Fatalf("query %d: %d rows is not a plausible fan product — torn snapshot?", i, rows)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
