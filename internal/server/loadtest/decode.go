// Package loadtest is the client side of the SPARQL endpoint: result-set
// decoders that reconstruct the exact rdf.Term rows a server streamed
// (shared by the differential tests and the load generator), a concurrent
// load driver reporting latency percentiles in benchmark format, and a
// slow-drain probe that reads one row at a time while watching the server's
// heap through /healthz.
package loadtest

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"

	"repro/internal/rdf"
)

// Document is a decoded SPARQL results document: a SELECT row set (Vars +
// Rows) or an ASK answer (Boolean non-nil). Rows mirror the engine's
// convention — one term per variable in Vars order, the empty Term for an
// unbound position — so a decoded document compares byte-for-byte against
// an in-process Rows drain.
type Document struct {
	Vars    []string
	Rows    [][]rdf.Term
	Boolean *bool
}

// Decode parses a SPARQL results body in the given content type
// (application/sparql-results+json or +xml).
func Decode(contentType string, r io.Reader) (*Document, error) {
	switch contentType {
	case "application/sparql-results+json", "application/json":
		return decodeJSON(r)
	case "application/sparql-results+xml", "application/xml":
		return decodeXML(r)
	}
	return nil, fmt.Errorf("loadtest: cannot decode content type %q", contentType)
}

type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang"`
	Datatype string `json:"datatype"`
}

func (t jsonTerm) term() (rdf.Term, error) {
	switch t.Type {
	case "uri":
		return rdf.NewIRI(t.Value), nil
	case "bnode":
		return rdf.NewBlank(t.Value), nil
	case "literal", "typed-literal":
		switch {
		case t.Lang != "":
			return rdf.NewLangLiteral(t.Value, t.Lang), nil
		case t.Datatype != "":
			return rdf.NewTypedLiteral(t.Value, t.Datatype), nil
		}
		return rdf.NewLiteral(t.Value), nil
	}
	return "", fmt.Errorf("loadtest: unknown term type %q", t.Type)
}

func decodeJSON(r io.Reader) (*Document, error) {
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Boolean *bool `json:"boolean"`
		Results *struct {
			Bindings []map[string]jsonTerm `json:"bindings"`
		} `json:"results"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("loadtest: decoding json results: %w", err)
	}
	out := &Document{Vars: doc.Head.Vars, Boolean: doc.Boolean}
	if doc.Results == nil {
		return out, nil
	}
	slot := make(map[string]int, len(out.Vars))
	for i, v := range out.Vars {
		slot[v] = i
	}
	for _, b := range doc.Results.Bindings {
		row := make([]rdf.Term, len(out.Vars))
		for name, jt := range b {
			i, ok := slot[name]
			if !ok {
				return nil, fmt.Errorf("loadtest: binding for undeclared variable %q", name)
			}
			t, err := jt.term()
			if err != nil {
				return nil, err
			}
			row[i] = t
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

type xmlLiteral struct {
	Lang     string `xml:"lang,attr"`
	Datatype string `xml:"datatype,attr"`
	Value    string `xml:",chardata"`
}

type xmlBinding struct {
	Name    string      `xml:"name,attr"`
	URI     *string     `xml:"uri"`
	BNode   *string     `xml:"bnode"`
	Literal *xmlLiteral `xml:"literal"`
}

func (b xmlBinding) term() (rdf.Term, error) {
	switch {
	case b.URI != nil:
		return rdf.NewIRI(*b.URI), nil
	case b.BNode != nil:
		return rdf.NewBlank(*b.BNode), nil
	case b.Literal != nil:
		switch {
		case b.Literal.Lang != "":
			return rdf.NewLangLiteral(b.Literal.Value, b.Literal.Lang), nil
		case b.Literal.Datatype != "":
			return rdf.NewTypedLiteral(b.Literal.Value, b.Literal.Datatype), nil
		}
		return rdf.NewLiteral(b.Literal.Value), nil
	}
	return "", fmt.Errorf("loadtest: binding %q carries no term", b.Name)
}

func decodeXML(r io.Reader) (*Document, error) {
	var doc struct {
		XMLName xml.Name `xml:"sparql"`
		Head    struct {
			Variables []struct {
				Name string `xml:"name,attr"`
			} `xml:"variable"`
		} `xml:"head"`
		Boolean *bool `xml:"boolean"`
		Results *struct {
			Results []struct {
				Bindings []xmlBinding `xml:"binding"`
			} `xml:"result"`
		} `xml:"results"`
	}
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("loadtest: decoding xml results: %w", err)
	}
	out := &Document{Boolean: doc.Boolean}
	for _, v := range doc.Head.Variables {
		out.Vars = append(out.Vars, v.Name)
	}
	if doc.Results == nil {
		return out, nil
	}
	slot := make(map[string]int, len(out.Vars))
	for i, v := range out.Vars {
		slot[v] = i
	}
	for _, res := range doc.Results.Results {
		row := make([]rdf.Term, len(out.Vars))
		for _, b := range res.Bindings {
			i, ok := slot[b.Name]
			if !ok {
				return nil, fmt.Errorf("loadtest: binding for undeclared variable %q", b.Name)
			}
			t, err := b.term()
			if err != nil {
				return nil, err
			}
			row[i] = t
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
