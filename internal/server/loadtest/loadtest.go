package loadtest

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// DoQuery runs one SPARQL protocol query (POST, urlencoded form) against
// baseURL's /sparql endpoint and decodes the complete result document.
// accept may be empty for the server default (JSON).
func DoQuery(ctx context.Context, client *http.Client, baseURL, query, accept string) (*Document, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/sparql",
		strings.NewReader(url.Values{"query": {query}}.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("loadtest: query status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	ct := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	doc, err := Decode(ct, resp.Body)
	if err != nil {
		return nil, err
	}
	// Drain to EOF so the client parses the HTTP trailers.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return nil, err
	}
	if tr := resp.Trailer.Get("X-Turbohom-Error"); tr != "" {
		return nil, fmt.Errorf("loadtest: stream ended in error: %s", tr)
	}
	return doc, nil
}

// DoUpdate runs one SPARQL protocol update (POST, urlencoded form) and
// reports the server's inserted/deleted counts.
func DoUpdate(ctx context.Context, client *http.Client, baseURL, update string) (inserted, deleted int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/sparql",
		strings.NewReader(url.Values{"update": {update}}.Encode()))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, 0, fmt.Errorf("loadtest: update status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Sscanf(resp.Header.Get("X-Turbohom-Inserted"), "%d", &inserted) //nolint:errcheck // absent header reads as 0
	fmt.Sscanf(resp.Header.Get("X-Turbohom-Deleted"), "%d", &deleted)   //nolint:errcheck
	return inserted, deleted, nil
}

// Health is the decoded /healthz body (the fields the probes read).
type Health struct {
	Status       string           `json:"status"`
	Triples      int              `json:"triples"`
	HeapAlloc    uint64           `json:"heap_alloc"`
	NumGoroutine int              `json:"num_goroutine"`
	Metrics      map[string]int64 `json:"metrics"`
}

// GetHealth fetches and decodes baseURL/healthz.
func GetHealth(ctx context.Context, client *http.Client, baseURL string) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("loadtest: decoding healthz: %w", err)
	}
	return &h, nil
}

// Config drives Run.
type Config struct {
	BaseURL  string
	Query    string
	Clients  int    // concurrent clients; minimum 1
	Requests int    // total requests, spread over the clients
	Accept   string // result content type; empty = server default (JSON)
}

// Report summarizes one load run. Latencies are full-drain times per
// request: first byte through last row decoded.
type Report struct {
	Clients    int
	Requests   int
	Errors     int
	Rows       int64
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	Mean       time.Duration
	Elapsed    time.Duration
	RowsPerSec float64
}

// Run drives cfg.Clients concurrent clients issuing cfg.Requests total
// queries and aggregates their latencies. Every client drains and decodes
// each response completely before issuing the next request.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.Requests < cfg.Clients {
		cfg.Requests = cfg.Clients
	}
	perClient := make([]int, cfg.Clients)
	for i := 0; i < cfg.Requests; i++ {
		perClient[i%cfg.Clients]++
	}

	type outcome struct {
		lat  []time.Duration
		rows int64
		errs int
		err  error
	}
	outcomes := make([]outcome, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			o := &outcomes[c]
			for i := 0; i < perClient[c]; i++ {
				if ctx.Err() != nil {
					o.err = ctx.Err()
					return
				}
				t0 := time.Now()
				doc, err := DoQuery(ctx, client, cfg.BaseURL, cfg.Query, cfg.Accept)
				if err != nil {
					o.errs++
					o.err = err
					continue
				}
				o.lat = append(o.lat, time.Since(t0))
				o.rows += int64(len(doc.Rows))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var (
		all      []time.Duration
		rows     int64
		errCount int
		firstErr error
	)
	for i := range outcomes {
		all = append(all, outcomes[i].lat...)
		rows += outcomes[i].rows
		errCount += outcomes[i].errs
		if firstErr == nil && outcomes[i].err != nil {
			firstErr = outcomes[i].err
		}
	}
	rep := Summarize(cfg.Clients, cfg.Requests, errCount, all, rows, elapsed)
	if len(all) == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("loadtest: no successful requests")
		}
		return rep, firstErr
	}
	if rep.Errors > 0 {
		return rep, fmt.Errorf("loadtest: %d/%d requests failed: %w", rep.Errors, cfg.Requests, firstErr)
	}
	return rep, nil
}

// Summarize builds a Report from raw per-request latencies — shared by Run
// and by in-process baselines that measure cursor drains without HTTP.
// lat is reordered in place.
func Summarize(clients, requests, errors int, lat []time.Duration, rows int64, elapsed time.Duration) *Report {
	rep := &Report{Clients: clients, Requests: requests, Errors: errors, Rows: rows, Elapsed: elapsed}
	if len(lat) == 0 {
		return rep
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	rep.P50 = percentile(lat, 50)
	rep.P90 = percentile(lat, 90)
	rep.P99 = percentile(lat, 99)
	rep.Mean = sum / time.Duration(len(lat))
	if secs := elapsed.Seconds(); secs > 0 {
		rep.RowsPerSec = float64(rows) / secs
	}
	return rep
}

// percentile reads the p-th percentile from sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100 // ceil
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// BenchLines renders the report as testing-benchmark output lines, the
// format cmd/benchgate parses. Every line carries ns/op so ratio gates can
// reference any of them; the throughput line adds a rows/s custom metric.
//
//	Benchmark<name>/p50  1  <ns> ns/op
//	Benchmark<name>/p99  1  <ns> ns/op
//	Benchmark<name>/throughput  <requests>  <mean-ns> ns/op  <v> rows/s
func (r *Report) BenchLines(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Benchmark%s/p50 1 %d ns/op\n", name, r.P50.Nanoseconds())
	fmt.Fprintf(&b, "Benchmark%s/p90 1 %d ns/op\n", name, r.P90.Nanoseconds())
	fmt.Fprintf(&b, "Benchmark%s/p99 1 %d ns/op\n", name, r.P99.Nanoseconds())
	fmt.Fprintf(&b, "Benchmark%s/throughput %d %d ns/op %.1f rows/s\n",
		name, r.Requests-r.Errors, r.Mean.Nanoseconds(), r.RowsPerSec)
	return b.String()
}

// SlowDrainReport is what SlowDrain observed.
type SlowDrainReport struct {
	RowsRead     int
	BaseHeap     uint64 // server heap_alloc before the stream opened
	MaxHeap      uint64 // max heap_alloc observed while draining slowly
	StreamLive   bool   // the request was still in flight when we disconnected
	ServerCancel bool   // server counted a cancelled query after the disconnect
}

// SlowDrain opens one streaming query and reads it at a fixed pace — one
// response line (one row) per interval, rows times — polling the server's
// /healthz between reads to watch heap_alloc. It then closes the response
// body WITHOUT draining the rest: a deliberate mid-stream disconnect.
//
// Before disconnecting it checks whether the request is still in flight on
// the server (StreamLive): a result small enough to fit in socket buffers
// lets the handler finish while the client crawls, in which case there is
// no cursor left to abort and ServerCancel stays false — callers gating on
// the abort must drive a result set large (or expensive) enough to keep the
// stream live. When the stream was live, SlowDrain polls /healthz until the
// server has counted the cancelled query, so callers can assert both the
// bounded-memory and the cursor-abort halves of the backpressure contract.
func SlowDrain(ctx context.Context, baseURL, query string, rows int, interval time.Duration) (*SlowDrainReport, error) {
	client := &http.Client{}
	defer client.CloseIdleConnections()
	rep := &SlowDrainReport{}

	h, err := GetHealth(ctx, client, baseURL)
	if err != nil {
		return nil, err
	}
	rep.BaseHeap = h.HeapAlloc
	cancelledBefore := h.Metrics["queries_cancelled"]

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/sparql",
		strings.NewReader(url.Values{"query": {query}}.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/sparql-results+json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("loadtest: slow drain status %s", resp.Status)
	}

	// The JSON writer emits one row per line after the head line; reading
	// line by line is reading row by row.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() { // head line
		resp.Body.Close()
		return nil, fmt.Errorf("loadtest: no head line: %v", sc.Err())
	}
	for rep.RowsRead < rows && sc.Scan() {
		rep.RowsRead++
		if h, err := GetHealth(ctx, client, baseURL); err == nil && h.HeapAlloc > rep.MaxHeap {
			rep.MaxHeap = h.HeapAlloc
		}
		select {
		case <-ctx.Done():
			resp.Body.Close()
			return rep, ctx.Err()
		case <-time.After(interval):
		}
	}
	if err := sc.Err(); err != nil {
		resp.Body.Close()
		return rep, err
	}
	if h, err := GetHealth(ctx, client, baseURL); err == nil {
		inflight := h.Metrics["queries_started"] - h.Metrics["queries_ok"] -
			h.Metrics["queries_failed"] - h.Metrics["queries_cancelled"]
		rep.StreamLive = inflight > 0
	}
	resp.Body.Close() // disconnect mid-stream

	if !rep.StreamLive {
		// The handler already finished; there is no cursor to abort.
		return rep, nil
	}

	// Wait for the server to notice and abort the cursor.
	for i := 0; i < 100; i++ {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		h, err := GetHealth(ctx, client, baseURL)
		if err == nil && h.Metrics["queries_cancelled"] > cancelledBefore {
			rep.ServerCancel = true
			return rep, nil
		}
		select {
		case <-ctx.Done():
			return rep, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return rep, nil
}
