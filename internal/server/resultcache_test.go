package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	turbohom "repro"
	"repro/internal/datagen"
	"repro/internal/server"
	"repro/internal/server/loadtest"
)

const (
	ctJSON = "application/sparql-results+json"
	ctXML  = "application/sparql-results+xml"
)

// fetchBody GETs a query and returns the raw response bytes plus the
// X-Turbohom-Cache disposition header.
func fetchBody(t *testing.T, base, query, accept string) (string, string) {
	t.Helper()
	resp := get(t, base+"/sparql?query="+url.QueryEscape(query), accept)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %q)", resp.StatusCode, body)
	}
	return string(body), resp.Header.Get(server.HeaderCache)
}

// cacheStats pulls the result_cache block out of /healthz.
func cacheStats(t *testing.T, base string) (stats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	Budget        int64 `json:"budget"`
	Evictions     int64 `json:"evictions"`
	CarryForwards int64 `json:"carry_forwards"`
	Invalidated   int64 `json:"invalidated"`
}) {
	t.Helper()
	resp := get(t, base+"/healthz", "")
	defer resp.Body.Close()
	var h struct {
		ResultCache json.RawMessage `json:"result_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(h.ResultCache, &stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestResultCacheHitReplaysIdenticalBytes pins the replay contract: a cache
// hit streams a byte-identical response to a live run, in whichever wire
// format the client negotiates — the entry stores terms, not bytes, so one
// warmed entry serves both JSON and XML. The disposition header tells the
// client which path answered.
func TestResultCacheHitReplaysIdenticalBytes(t *testing.T) {
	store := turbohom.New(testTriples(), &turbohom.Options{Workers: 2})
	defer store.Close()
	srvOn := server.New(store, turbohom.ServerOptions{})
	tsOn := httptest.NewServer(srvOn)
	defer tsOn.Close()
	tsOff := httptest.NewServer(server.New(store, turbohom.ServerOptions{ResultCacheBytes: -1}))
	defer tsOff.Close()

	offJSON, disp := fetchBody(t, tsOff.URL, testQuery, ctJSON)
	if disp != "bypass" {
		t.Fatalf("cache-off disposition %q, want bypass", disp)
	}
	offXML, _ := fetchBody(t, tsOff.URL, testQuery, ctXML)

	live, disp := fetchBody(t, tsOn.URL, testQuery, ctJSON)
	if disp != "miss" {
		t.Fatalf("first request disposition %q, want miss", disp)
	}
	replayed, disp := fetchBody(t, tsOn.URL, testQuery, ctJSON)
	if disp != "hit" {
		t.Fatalf("second request disposition %q, want hit", disp)
	}
	// Same entry, different negotiated format: still a hit.
	replayedXML, disp := fetchBody(t, tsOn.URL, testQuery, ctXML)
	if disp != "hit" {
		t.Fatalf("XML request disposition %q, want hit", disp)
	}

	if live != offJSON {
		t.Fatalf("live cache-on body differs from cache-off:\n on  %q\n off %q", live, offJSON)
	}
	if replayed != offJSON {
		t.Fatalf("replayed body differs from live:\n hit  %q\n live %q", replayed, offJSON)
	}
	if replayedXML != offXML {
		t.Fatalf("replayed XML body differs from live:\n hit  %q\n live %q", replayedXML, offXML)
	}

	if m := srvOn.Metrics(); m.CacheHits != 2 || m.CacheMisses != 1 {
		t.Fatalf("metrics hits=%d misses=%d, want 2/1", m.CacheHits, m.CacheMisses)
	}
	if st := cacheStats(t, tsOn.URL); st.Entries != 1 || st.Bytes <= 0 || st.Budget <= 0 {
		t.Fatalf("cache stats %+v, want one accounted entry", st)
	}
	if st := cacheStats(t, tsOff.URL); st.Budget != 0 {
		t.Fatalf("cache-off stats %+v, want zero budget", st)
	}
}

// TestResultCacheCarryForwardAndInvalidation is the invalidation contract
// end to end over HTTP: a committed update whose delta footprint is
// disjoint from a cached query's footprint carries the entry forward to the
// new epoch (the next request is still a hit, with zero matcher work),
// while an update that touches a predicate the query reads invalidates
// exactly the overlapping entries — the untouched one keeps hitting.
func TestResultCacheCarryForwardAndInvalidation(t *testing.T) {
	srv, ts, _ := newTestServer(t, turbohom.ServerOptions{})
	const qOpt = `SELECT ?s ?e WHERE { ?s <http://x/opt> ?e . }`

	// Warm both entries, prove both replay.
	pBody, disp := fetchBody(t, ts.URL, testQuery, ctJSON)
	if disp != "miss" {
		t.Fatalf("warming testQuery: disposition %q", disp)
	}
	optBody, disp := fetchBody(t, ts.URL, qOpt, ctJSON)
	if disp != "miss" {
		t.Fatalf("warming qOpt: disposition %q", disp)
	}
	if _, disp = fetchBody(t, ts.URL, testQuery, ctJSON); disp != "hit" {
		t.Fatalf("repeat testQuery: disposition %q", disp)
	}
	if _, disp = fetchBody(t, ts.URL, qOpt, ctJSON); disp != "hit" {
		t.Fatalf("repeat qOpt: disposition %q", disp)
	}

	// A committed batch on a predicate neither query reads: both entries
	// must survive to the new epoch and keep replaying the same bytes.
	if _, _, err := loadtest.DoUpdate(context.Background(), http.DefaultClient, ts.URL,
		`INSERT DATA { <http://x/zz> <http://x/other> "unrelated" }`); err != nil {
		t.Fatal(err)
	}
	got, disp := fetchBody(t, ts.URL, testQuery, ctJSON)
	if disp != "hit" || got != pBody {
		t.Fatalf("after disjoint update: testQuery disposition %q (body match %t), want a carried-forward hit", disp, got == pBody)
	}
	got, disp = fetchBody(t, ts.URL, qOpt, ctJSON)
	if disp != "hit" || got != optBody {
		t.Fatalf("after disjoint update: qOpt disposition %q (body match %t), want a carried-forward hit", disp, got == optBody)
	}
	if st := cacheStats(t, ts.URL); st.CarryForwards < 2 {
		t.Fatalf("cache stats %+v, want >= 2 carry-forwards", st)
	}

	// A batch on <http://x/opt> intersects qOpt's footprint and only it:
	// qOpt re-executes and sees the new row, testQuery keeps hitting.
	if _, _, err := loadtest.DoUpdate(context.Background(), http.DefaultClient, ts.URL,
		`INSERT DATA { <http://x/s2> <http://x/opt> "extra2" }`); err != nil {
		t.Fatal(err)
	}
	got, disp = fetchBody(t, ts.URL, qOpt, ctJSON)
	if disp != "miss" {
		t.Fatalf("after intersecting update: qOpt disposition %q, want miss", disp)
	}
	if got == optBody {
		t.Fatal("after intersecting update: qOpt replayed the stale pre-update body")
	}
	doc, err := loadtest.Decode(ctJSON, strings.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != 2 {
		t.Fatalf("qOpt after insert: %d rows, want 2", len(doc.Rows))
	}
	if got, disp := fetchBody(t, ts.URL, testQuery, ctJSON); disp != "hit" || got != pBody {
		t.Fatalf("after intersecting update: testQuery disposition %q (body match %t), want an untouched hit", disp, got == pBody)
	}

	if st := cacheStats(t, ts.URL); st.Invalidated < 1 {
		t.Fatalf("cache stats %+v, want >= 1 invalidated", st)
	}
	if m := srv.Metrics(); m.CacheHits != 5 || m.CacheMisses != 3 {
		t.Fatalf("metrics hits=%d misses=%d, want 5/3", m.CacheHits, m.CacheMisses)
	}
}

// TestResultCacheBypass: ASK responses never touch the cache (the answer is
// one boolean from at most one row of search), and a disabled cache marks
// every SELECT bypass.
func TestResultCacheBypass(t *testing.T) {
	srv, ts, _ := newTestServer(t, turbohom.ServerOptions{})
	const ask = `ASK { ?s <http://x/p> ?o . }`
	for i := 0; i < 2; i++ {
		body, disp := fetchBody(t, ts.URL, ask, ctJSON)
		if disp != "bypass" {
			t.Fatalf("ASK request %d: disposition %q, want bypass", i, disp)
		}
		doc, err := loadtest.Decode(ctJSON, strings.NewReader(body))
		if err != nil || doc.Boolean == nil || !*doc.Boolean {
			t.Fatalf("ASK request %d: boolean %v err %v", i, doc.Boolean, err)
		}
	}
	if m := srv.Metrics(); m.CacheHits != 0 || m.CacheMisses != 0 {
		t.Fatalf("ASK moved cache counters: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}

	_, tsOff, _ := newTestServer(t, turbohom.ServerOptions{ResultCacheBytes: -1})
	for i := 0; i < 2; i++ {
		if _, disp := fetchBody(t, tsOff.URL, testQuery, ctJSON); disp != "bypass" {
			t.Fatalf("cache-off request %d: disposition %q, want bypass", i, disp)
		}
	}
}

// TestResultCacheSingleflight: concurrent identical queries against a cold
// cache produce exactly one matcher execution — one leader runs, followers
// replay its entry — and every response is byte-identical.
func TestResultCacheSingleflight(t *testing.T) {
	store := turbohom.New(fanTriples(64), &turbohom.Options{Workers: 2})
	defer store.Close()
	srv := server.New(store, turbohom.ServerOptions{QueryTimeout: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 8
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(fanQuery))
			if err != nil {
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil {
				bodies[i] = string(body)
			}
		}(i)
	}
	wg.Wait()

	for i := 1; i < clients; i++ {
		if bodies[i] == "" || bodies[i] != bodies[0] {
			t.Fatalf("client %d: body diverged (empty %t)", i, bodies[i] == "")
		}
	}
	// Followers either waited on the leader's flight or arrived after
	// admission: at most one live execution, so misses stays at 1 unless a
	// follower's wait raced admission and ran solo — which the flight
	// protocol is there to prevent.
	if m := srv.Metrics(); m.CacheMisses != 1 || m.CacheHits != clients-1 {
		t.Fatalf("metrics hits=%d misses=%d, want %d/1", m.CacheHits, m.CacheMisses, clients-1)
	}
}

// TestDifferentialCacheOnOff drains every benchmark query of every datagen
// workload three times per wire format — live against a cache-off server,
// then cold and hot against a cache-on server sharing the same store — and
// demands all three responses be byte-identical. Any divergence in the
// replay writer (head, escaping, flush framing, trailers) shows up here.
func TestDifferentialCacheOnOff(t *testing.T) {
	for _, ds := range []*datagen.Dataset{
		datagen.LUBMDataset(1),
		datagen.BSBMDataset(40),
		datagen.YAGODataset(250),
		datagen.BTCDataset(250),
	} {
		t.Run(ds.Name, func(t *testing.T) {
			store := turbohom.New(ds.Triples, &turbohom.Options{Workers: 4})
			defer store.Close()
			tsOn := httptest.NewServer(server.New(store, turbohom.ServerOptions{QueryTimeout: -1}))
			defer tsOn.Close()
			tsOff := httptest.NewServer(server.New(store, turbohom.ServerOptions{QueryTimeout: -1, ResultCacheBytes: -1}))
			defer tsOff.Close()

			for _, q := range ds.Queries {
				for _, accept := range []string{ctJSON, ctXML} {
					want, disp := fetchBody(t, tsOff.URL, q.Text, accept)
					if disp != "bypass" {
						t.Fatalf("%s via %s: cache-off disposition %q", q.ID, accept, disp)
					}
					cold, _ := fetchBody(t, tsOn.URL, q.Text, accept)
					hot, _ := fetchBody(t, tsOn.URL, q.Text, accept)
					if cold != want {
						t.Fatalf("%s via %s: cache-on live body diverges from cache-off", q.ID, accept)
					}
					if hot != want {
						t.Fatalf("%s via %s: replayed body diverges from cache-off", q.ID, accept)
					}
				}
			}
		})
	}
}

// TestResultCacheChurnDifferential races Store.Update churn against queries
// on a cache-on and a cache-off server over the same store (run under -race
// in CI). Every response — live, replayed, or carried forward — must be a
// consistent snapshot: the fan query's row count is a perfect product a*b
// with both fan sizes in the churn's reach, and the two servers must agree
// whenever the store is quiescent.
func TestResultCacheChurnDifferential(t *testing.T) {
	const n = 40
	store := turbohom.New(fanTriples(n), &turbohom.Options{Workers: 2})
	defer store.Close()
	tsOn := httptest.NewServer(server.New(store, turbohom.ServerOptions{QueryTimeout: -1}))
	defer tsOn.Close()
	tsOff := httptest.NewServer(server.New(store, turbohom.ServerOptions{QueryTimeout: -1, ResultCacheBytes: -1}))
	defer tsOff.Close()

	const churn = 12
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < churn; i++ {
			u := fmt.Sprintf(`INSERT DATA { <http://x/hub> <http://x/p> <http://x/pc%02d> . <http://x/hub> <http://x/q> <http://x/qc%02d> }`, i, i)
			if _, _, err := store.Update(u); err != nil {
				errc <- err
				return
			}
			if i%3 == 2 {
				d := fmt.Sprintf(`DELETE DATA { <http://x/hub> <http://x/q> <http://x/qc%02d> }`, i-2)
				if _, _, err := store.Update(d); err != nil {
					errc <- err
					return
				}
			}
		}
		errc <- nil
	}()

	plausible := func(rows int) bool {
		for a := n; a <= n+churn; a++ {
			for b := n - churn; b <= n+churn; b++ {
				if a*b == rows {
					return true
				}
			}
		}
		return false
	}
	for i := 0; i < 2*churn; i++ {
		base := tsOn.URL
		if i%2 == 1 {
			base = tsOff.URL
		}
		body, _ := fetchBody(t, base, fanQuery, ctJSON)
		doc, err := loadtest.Decode(ctJSON, strings.NewReader(body))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !plausible(len(doc.Rows)) {
			t.Fatalf("query %d: %d rows is not a plausible fan product — torn or stale snapshot?", i, len(doc.Rows))
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// Quiescent store: cache-on (whether it hits or re-executes) and
	// cache-off must agree byte for byte.
	want, _ := fetchBody(t, tsOff.URL, fanQuery, ctJSON)
	got1, _ := fetchBody(t, tsOn.URL, fanQuery, ctJSON)
	got2, disp := fetchBody(t, tsOn.URL, fanQuery, ctJSON)
	if disp != "hit" {
		t.Fatalf("post-churn repeat: disposition %q, want hit", disp)
	}
	if got1 != want || got2 != want {
		t.Fatal("post-churn: cache-on responses diverge from cache-off")
	}
}
