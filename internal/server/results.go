package server

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"io"
	"mime"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// The two result formats of the SPARQL 1.1 Protocol this server speaks.
const (
	ctJSON = "application/sparql-results+json"
	ctXML  = "application/sparql-results+xml"
)

// xmlResultsNS is the W3C namespace of the SPARQL Query Results XML Format.
const xmlResultsNS = "http://www.w3.org/2005/sparql-results#"

// acceptable maps one Accept media range to the result format it selects.
// serverPref breaks q-value ties: JSON is the server's preferred format.
func acceptable(mediaRange string) (ct string, serverPref int, ok bool) {
	switch mediaRange {
	case ctJSON, "application/json":
		return ctJSON, 0, true
	case ctXML, "application/xml", "text/xml":
		return ctXML, 1, true
	case "application/*", "*/*":
		return ctJSON, 0, true
	}
	return "", 0, false
}

// negotiate resolves an Accept header to a result content type. An absent or
// empty header means the client takes anything (JSON, the server default);
// otherwise the supported range with the highest q-value wins, ties broken
// toward JSON, and no acceptable range with q > 0 means 406.
func negotiate(accept string) (ct string, ok bool) {
	if strings.TrimSpace(accept) == "" {
		return ctJSON, true
	}
	bestQ := -1.0
	bestPref := 0
	best := ""
	for _, part := range strings.Split(accept, ",") {
		mt, params, err := mime.ParseMediaType(part)
		if err != nil {
			continue // a malformed range never matches; others may
		}
		candidate, pref, supported := acceptable(mt)
		if !supported {
			continue
		}
		q := 1.0
		if qs, present := params["q"]; present {
			v, err := strconv.ParseFloat(qs, 64)
			if err != nil || v < 0 {
				continue
			}
			q = v
		}
		if q == 0 {
			continue // explicitly refused
		}
		if q > bestQ || (q == bestQ && pref < bestPref) {
			bestQ, bestPref, best = q, pref, candidate
		}
	}
	return best, best != ""
}

// resultWriter serializes one SPARQL results document, streaming: writeHead
// once, then writeRow per solution, then finish — or writeBoolean alone for
// an ASK. Implementations put one solution per output line so a paced reader
// (and a human) can consume the stream row by row.
type resultWriter interface {
	writeHead(vars []string) error
	writeRow(row []rdf.Term) error
	writeBoolean(b bool) error
	finish() error
}

func newResultWriter(ct string, w io.Writer) resultWriter {
	if ct == ctXML {
		return &xmlWriter{w: w}
	}
	return &jsonWriter{w: w}
}

// jsonWriter streams the SPARQL 1.1 Query Results JSON Format. Key order is
// fixed by construction, so the byte stream is deterministic.
type jsonWriter struct {
	w    io.Writer
	vars []string
	rows int
	buf  bytes.Buffer
}

// jstr appends the JSON encoding of s (a json.Marshal of a string never
// fails).
func jstr(b *bytes.Buffer, s string) {
	enc, _ := json.Marshal(s)
	b.Write(enc)
}

func (j *jsonWriter) writeHead(vars []string) error {
	j.vars = vars
	b := &j.buf
	b.Reset()
	b.WriteString(`{"head":{"vars":[`)
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(',')
		}
		jstr(b, v)
	}
	b.WriteString("]},\"results\":{\"bindings\":[")
	_, err := j.w.Write(b.Bytes())
	return err
}

func (j *jsonWriter) writeRow(row []rdf.Term) error {
	b := &j.buf
	b.Reset()
	if j.rows > 0 {
		b.WriteByte(',')
	}
	b.WriteString("\n{")
	wrote := false
	for i, t := range row {
		if t == "" {
			continue // unbound OPTIONAL position: the binding is omitted
		}
		if wrote {
			b.WriteByte(',')
		}
		wrote = true
		jstr(b, j.vars[i])
		b.WriteByte(':')
		writeJSONTerm(b, t)
	}
	b.WriteByte('}')
	j.rows++
	_, err := j.w.Write(b.Bytes())
	return err
}

func writeJSONTerm(b *bytes.Buffer, t rdf.Term) {
	switch t.Kind() {
	case rdf.IRI:
		b.WriteString(`{"type":"uri","value":`)
		jstr(b, t.IRIValue())
	case rdf.Blank:
		b.WriteString(`{"type":"bnode","value":`)
		jstr(b, string(t[2:]))
	default:
		b.WriteString(`{"type":"literal","value":`)
		jstr(b, t.LexicalValue())
		if lang := t.Lang(); lang != "" {
			b.WriteString(`,"xml:lang":`)
			jstr(b, lang)
		} else if dt := t.DatatypeIRI(); dt != "" {
			b.WriteString(`,"datatype":`)
			jstr(b, dt)
		}
	}
	b.WriteByte('}')
}

func (j *jsonWriter) writeBoolean(v bool) error {
	_, err := io.WriteString(j.w, `{"head":{},"boolean":`+strconv.FormatBool(v)+"}\n")
	return err
}

func (j *jsonWriter) finish() error {
	_, err := io.WriteString(j.w, "\n]}}\n")
	return err
}

// xmlWriter streams the SPARQL Query Results XML Format.
type xmlWriter struct {
	w    io.Writer
	vars []string
	buf  bytes.Buffer
}

// xstr appends s with XML special characters escaped (quotes included, so
// the same helper serves attribute values and character data).
func xstr(b *bytes.Buffer, s string) {
	xml.EscapeText(b, []byte(s)) //nolint:errcheck // bytes.Buffer cannot fail
}

func (x *xmlWriter) writeHead(vars []string) error {
	x.vars = vars
	b := &x.buf
	b.Reset()
	b.WriteString(xml.Header)
	b.WriteString(`<sparql xmlns="` + xmlResultsNS + "\">\n<head>")
	for _, v := range vars {
		b.WriteString(`<variable name="`)
		xstr(b, v)
		b.WriteString(`"/>`)
	}
	b.WriteString("</head>\n<results>")
	_, err := x.w.Write(b.Bytes())
	return err
}

func (x *xmlWriter) writeRow(row []rdf.Term) error {
	b := &x.buf
	b.Reset()
	b.WriteString("\n<result>")
	for i, t := range row {
		if t == "" {
			continue
		}
		b.WriteString(`<binding name="`)
		xstr(b, x.vars[i])
		b.WriteString(`">`)
		writeXMLTerm(b, t)
		b.WriteString("</binding>")
	}
	b.WriteString("</result>")
	_, err := x.w.Write(b.Bytes())
	return err
}

func writeXMLTerm(b *bytes.Buffer, t rdf.Term) {
	switch t.Kind() {
	case rdf.IRI:
		b.WriteString("<uri>")
		xstr(b, t.IRIValue())
		b.WriteString("</uri>")
	case rdf.Blank:
		b.WriteString("<bnode>")
		xstr(b, string(t[2:]))
		b.WriteString("</bnode>")
	default:
		if lang := t.Lang(); lang != "" {
			b.WriteString(`<literal xml:lang="`)
			xstr(b, lang)
			b.WriteString(`">`)
		} else if dt := t.DatatypeIRI(); dt != "" {
			b.WriteString(`<literal datatype="`)
			xstr(b, dt)
			b.WriteString(`">`)
		} else {
			b.WriteString("<literal>")
		}
		xstr(b, t.LexicalValue())
		b.WriteString("</literal>")
	}
}

func (x *xmlWriter) writeBoolean(v bool) error {
	var b bytes.Buffer
	b.WriteString(xml.Header)
	b.WriteString(`<sparql xmlns="` + xmlResultsNS + "\">\n<head></head>\n<boolean>")
	b.WriteString(strconv.FormatBool(v))
	b.WriteString("</boolean>\n</sparql>\n")
	_, err := x.w.Write(b.Bytes())
	return err
}

func (x *xmlWriter) finish() error {
	_, err := io.WriteString(x.w, "\n</results>\n</sparql>\n")
	return err
}
