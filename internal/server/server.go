// Package server implements the W3C SPARQL 1.1 Protocol over HTTP for a
// turbohom store: query via GET or both POST forms, update via POST, with
// content-negotiated JSON/XML results STREAMED row by row from the store's
// cursor to the chunked response body.
//
// The streaming path is the point. A response is never materialized: the
// handler pulls rows from a Rows cursor and writes them straight to the
// ResponseWriter, so per-connection server memory is bounded by the engine's
// Options.StreamBuffer, not by result size. Backpressure composes end to
// end — a client that stops reading fills its TCP window, which blocks the
// handler's Write, which stops Next, which suspends the cursor's region
// pipeline with at most StreamBuffer rows in flight. Closing the connection
// cancels the request context, which aborts the matcher's remaining search.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	turbohom "repro"
	"repro/internal/cache"
	"repro/internal/sparql"
)

// Trailer names: announced before the body, set after it. A streaming
// response commits its 200 before the query finishes, so truncation and
// late failures travel in HTTP trailers.
const (
	// TrailerTruncated carries the row count of a response cut short by
	// ServerOptions.MaxRows. Absent when the result was complete.
	TrailerTruncated = "X-Turbohom-Truncated"
	// TrailerError carries the error that ended a stream after the status
	// line was already out (timeout, execution failure). Absent on success.
	TrailerError = "X-Turbohom-Error"
)

// HeaderCache reports how the result cache served a query response: "hit"
// (replayed from a cached entry, no matcher work), "miss" (executed live,
// possibly admitted for the next request), or "bypass" (cache disabled, or
// an ASK form). It is a response header, not a trailer: the disposition is
// known before the first body byte.
const HeaderCache = "X-Turbohom-Cache"

// Response headers of a successful update.
const (
	headerInserted = "X-Turbohom-Inserted"
	headerDeleted  = "X-Turbohom-Deleted"
)

// maxRequestBody caps POST bodies (queries and updates).
const maxRequestBody = 8 << 20

// flushEvery is the row cadence of explicit response flushes. The first row
// is always flushed — a client that wants to observe streaming (or pace its
// reads) sees it immediately — and afterwards every flushEvery rows, so
// chunk overhead stays small on bulk drains.
const flushEvery = 32

// Metrics are the server's monotonic counters, exported through /healthz
// and Server.Metrics. All fields are atomics; read them via Snapshot.
type Metrics struct {
	QueriesStarted   atomic.Int64 // query requests admitted (after negotiation)
	QueriesOK        atomic.Int64 // streamed to completion (truncation included)
	QueriesFailed    atomic.Int64 // parse failures, negotiation failures, execution errors
	QueriesCancelled atomic.Int64 // timeouts, client disconnects, shutdown cuts
	RowsStreamed     atomic.Int64 // solutions written to response bodies
	Truncated        atomic.Int64 // responses cut by MaxRows
	UpdatesOK        atomic.Int64
	UpdatesFailed    atomic.Int64
	TriplesInserted  atomic.Int64
	TriplesDeleted   atomic.Int64
	PreparedHits     atomic.Int64 // prepared-query cache hits
	PreparedMisses   atomic.Int64
	CacheHits        atomic.Int64 // result-cache hits (replayed responses)
	CacheMisses      atomic.Int64 // result-cache misses (live runs on the cacheable path)
	Regions          atomic.Int64 // matcher candidate regions visited, summed over queries
	SearchNodes      atomic.Int64 // matcher search nodes expanded, summed over queries
}

// MetricsSnapshot is a plain-value copy of Metrics, JSON-encodable.
type MetricsSnapshot struct {
	QueriesStarted   int64 `json:"queries_started"`
	QueriesOK        int64 `json:"queries_ok"`
	QueriesFailed    int64 `json:"queries_failed"`
	QueriesCancelled int64 `json:"queries_cancelled"`
	RowsStreamed     int64 `json:"rows_streamed"`
	Truncated        int64 `json:"truncated"`
	UpdatesOK        int64 `json:"updates_ok"`
	UpdatesFailed    int64 `json:"updates_failed"`
	TriplesInserted  int64 `json:"triples_inserted"`
	TriplesDeleted   int64 `json:"triples_deleted"`
	PreparedHits     int64 `json:"prepared_hits"`
	PreparedMisses   int64 `json:"prepared_misses"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	Regions          int64 `json:"regions"`
	SearchNodes      int64 `json:"search_nodes"`
}

func (m *Metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		QueriesStarted:   m.QueriesStarted.Load(),
		QueriesOK:        m.QueriesOK.Load(),
		QueriesFailed:    m.QueriesFailed.Load(),
		QueriesCancelled: m.QueriesCancelled.Load(),
		RowsStreamed:     m.RowsStreamed.Load(),
		Truncated:        m.Truncated.Load(),
		UpdatesOK:        m.UpdatesOK.Load(),
		UpdatesFailed:    m.UpdatesFailed.Load(),
		TriplesInserted:  m.TriplesInserted.Load(),
		TriplesDeleted:   m.TriplesDeleted.Load(),
		PreparedHits:     m.PreparedHits.Load(),
		PreparedMisses:   m.PreparedMisses.Load(),
		CacheHits:        m.CacheHits.Load(),
		CacheMisses:      m.CacheMisses.Load(),
		Regions:          m.Regions.Load(),
		SearchNodes:      m.SearchNodes.Load(),
	}
}

// Server is the SPARQL protocol endpoint over one Store. It is an
// http.Handler serving:
//
//	/sparql   the SPARQL 1.1 Protocol operation (query and update)
//	/healthz  liveness, store stats, memory and request counters (JSON)
//
// Create with New; serve with any http.Server, or Serve/ListenAndServe for
// the graceful-drain lifecycle.
type Server struct {
	store   *turbohom.Store
	opts    turbohom.ServerOptions
	cache   *preparedCache
	results *cache.Cache // snapshot-versioned result cache; nil = disabled
	mux     *http.ServeMux
	m       Metrics
}

// New builds a Server over store. opts zero value: 30s query timeout,
// unlimited rows, 128-entry prepared LRU, a 64 MiB result cache, 10s drain,
// updates allowed.
func New(store *turbohom.Store, opts turbohom.ServerOptions) *Server {
	s := &Server{
		store:   store,
		opts:    opts,
		cache:   newPreparedCache(opts.EffectivePreparedCache()),
		results: cache.New(opts.EffectiveResultCacheBytes()),
	}
	if s.results != nil {
		// Every committed batch feeds the cache's invalidation ring; the
		// callback runs under the store's writer lock, so epochs arrive in
		// order.
		store.OnCommit(s.results.Advance)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", s.handleSPARQL)
	mux.HandleFunc("/healthz", s.handleHealth)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics returns a snapshot of the server's counters.
func (s *Server) Metrics() MetricsSnapshot { return s.m.snapshot() }

// Serve accepts connections on l until ctx is cancelled, then runs the
// drain protocol: the listener closes immediately, in-flight requests —
// streaming cursors included — get ServerOptions.DrainTimeout to finish,
// and whatever remains is severed, which cancels those requests' contexts
// and thereby closes their cursors. It returns nil after a clean drain and
// the shutdown error (context.DeadlineExceeded) after a forced cut.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		done <- drainServer(hs, s.opts.EffectiveDrainTimeout())
	}()
	err := hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return <-done
	}
	return err
}

// ListenAndServe is Serve on a fresh TCP listener bound to addr.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// drainServer runs graceful shutdown with a wall-clock budget. It takes no
// caller context deliberately: draining starts precisely when the serve
// context is already cancelled, so the budget needs a fresh one.
func drainServer(hs *http.Server, budget time.Duration) error {
	sctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close() // budget exhausted: sever the stragglers
		return err
	}
	return nil
}

// httpError writes a plain-text error response — the protocol's failure
// shape for everything that goes wrong before the first result byte.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	if msg != "" {
		io.WriteString(w, msg+"\n") //nolint:errcheck // error body is best-effort
	}
}

// handleSPARQL dispatches the protocol operation: query via GET ?query= or
// both POST forms (urlencoded query=, application/sparql-query body);
// update via POST only (urlencoded update=, application/sparql-update
// body).
func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		qv := r.URL.Query()
		if qv.Has("update") {
			httpError(w, http.StatusBadRequest, "update is only accepted via POST")
			return
		}
		query := qv.Get("query")
		if query == "" {
			httpError(w, http.StatusBadRequest, "missing query parameter")
			return
		}
		s.handleQuery(w, r, query)
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		ctHeader := r.Header.Get("Content-Type")
		mt, _, err := mime.ParseMediaType(ctHeader)
		if err != nil && ctHeader != "" {
			httpError(w, http.StatusUnsupportedMediaType, "unparseable Content-Type")
			return
		}
		switch mt {
		case "application/x-www-form-urlencoded", "":
			if err := r.ParseForm(); err != nil {
				httpError(w, bodyErrStatus(err), "bad form body: "+err.Error())
				return
			}
			query, update := r.PostForm.Get("query"), r.PostForm.Get("update")
			switch {
			case query != "" && update != "":
				httpError(w, http.StatusBadRequest, "exactly one of query= and update= is allowed")
			case query != "":
				s.handleQuery(w, r, query)
			case update != "":
				s.handleUpdate(w, update)
			default:
				httpError(w, http.StatusBadRequest, "missing query or update parameter")
			}
		case "application/sparql-query":
			body, err := io.ReadAll(r.Body)
			if err != nil {
				httpError(w, bodyErrStatus(err), "reading body: "+err.Error())
				return
			}
			s.handleQuery(w, r, string(body))
		case "application/sparql-update":
			body, err := io.ReadAll(r.Body)
			if err != nil {
				httpError(w, bodyErrStatus(err), "reading body: "+err.Error())
				return
			}
			s.handleUpdate(w, string(body))
		default:
			httpError(w, http.StatusUnsupportedMediaType,
				"unsupported Content-Type "+mt+" (want application/x-www-form-urlencoded, application/sparql-query, or application/sparql-update)")
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		httpError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// bodyErrStatus distinguishes an oversized body (413) from a malformed one
// (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// prepare resolves a query string through the prepared-query LRU.
func (s *Server) prepare(query string) (*turbohom.Prepared, error) {
	if p, ok := s.cache.get(query); ok {
		s.m.PreparedHits.Add(1)
		return p, nil
	}
	p, err := s.store.Prepare(query)
	if err != nil {
		return nil, err
	}
	s.m.PreparedMisses.Add(1)
	s.cache.put(query, p)
	return p, nil
}

// handleQuery executes a SELECT or ASK and streams the result document.
//
// SELECT responses route through the result cache when it is enabled: a hit
// replays the materialized rows through the same streaming writer — same
// bytes, same flush cadence, same trailer semantics — without touching the
// matcher; a miss runs live and, when it was the flight's leader (or a
// follower whose leader produced nothing), offers the collected rows back to
// the cache. Only clean, complete, within-budget result sets are admitted:
// an error, a cancellation, a MaxRows truncation, or a result set over the
// cache's per-entry caps streams normally but caches nothing.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, query string) {
	ct, acceptOK := negotiate(r.Header.Get("Accept"))
	if !acceptOK {
		s.m.QueriesFailed.Add(1)
		httpError(w, http.StatusNotAcceptable,
			"no acceptable result format: supported are "+ctJSON+" and "+ctXML)
		return
	}
	p, err := s.prepare(query)
	if err != nil {
		s.m.QueriesFailed.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.m.QueriesStarted.Add(1)

	ctx := r.Context()
	if d := s.opts.EffectiveQueryTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// Consult the result cache. ASK bypasses it: the answer is one boolean
	// computed from at most one row of search — caching would save nothing.
	disposition := "bypass"
	var (
		key    string
		fl     *cache.Flight
		leader bool
	)
	if s.results != nil && !p.Ask() {
		key = p.CacheKey()
		var e *cache.Entry
		e, fl, leader = s.results.GetOrStart(key, s.store.Epoch())
		if e == nil && fl != nil && !leader {
			// Follower: wait for the in-flight leader instead of running the
			// same search concurrently. A nil entry (failed or inadmissible
			// leader, or our context died) drops us to a solo live run.
			e = fl.Wait(ctx)
			fl = nil
		}
		if e != nil {
			s.m.CacheHits.Add(1)
			s.replayCached(w, ctx, ct, e)
			return
		}
		disposition = "miss"
		s.m.CacheMisses.Add(1)
	}
	w.Header().Set(HeaderCache, disposition)

	// A leader must resolve its flight exactly once, whatever path exits
	// this handler; admit stays nil unless the run completed clean.
	var admit *cache.Entry
	if leader {
		defer func() { s.results.Finish(key, fl, admit) }()
	}

	// The cursor is profiled so the server can account matcher effort —
	// and so tests can prove that a disconnected client really aborted the
	// remaining search. The profile is valid only after Close, hence the
	// deferred metric fold.
	var prof turbohom.ProfileResult
	rows := p.SelectProfiled(ctx, &prof)
	defer func() {
		rows.Close()
		s.m.Regions.Add(int64(prof.Regions))
		s.m.SearchNodes.Add(int64(prof.SearchNodes))
	}()

	// Pull the first row before committing a status line: an execution
	// error with zero rows out still gets a clean HTTP error, not a
	// severed 200.
	first := rows.Next()
	if !first {
		if err := rows.Err(); err != nil {
			s.queryError(w, err)
			return
		}
	}

	if p.Ask() {
		w.Header().Set("Content-Type", ct)
		if err := newResultWriter(ct, w).writeBoolean(first); err != nil {
			s.m.QueriesCancelled.Add(1)
			return
		}
		s.m.QueriesOK.Add(1)
		return
	}

	// On the cacheable path, tee the streamed rows into a prospective cache
	// entry. Cursor rows are caller-owned (the projector allocates a fresh
	// slice per row), so retaining them needs no copy. Blowing either
	// admission cap abandons collection but not the response.
	collecting := disposition == "miss"
	var (
		collected [][]turbohom.Term
		colBytes  int64
	)
	maxBytes, maxRows := s.results.Limits()

	w.Header().Set("Content-Type", ct)
	w.Header().Set("Trailer", TrailerTruncated+", "+TrailerError)
	flusher, _ := w.(http.Flusher)
	wr := newResultWriter(ct, w)
	if err := wr.writeHead(p.Vars()); err != nil {
		s.m.QueriesCancelled.Add(1)
		return
	}

	n := 0
	truncated := false
	cancelled := false
	for next := first; next; next = rows.Next() {
		if ctx.Err() != nil {
			// The request context died (disconnect, timeout) and the
			// checkpoint saw it before the cursor or a Write did.
			cancelled = true
			break
		}
		if err := wr.writeRow(rows.Row()); err != nil {
			// The client went away mid-stream; the deferred Close aborts
			// the remaining search.
			s.m.RowsStreamed.Add(int64(n))
			s.m.QueriesCancelled.Add(1)
			return
		}
		if collecting {
			row := rows.Row()
			colBytes += cache.RowBytes(row)
			if colBytes > maxBytes || len(collected) >= maxRows {
				collecting, collected = false, nil
			} else {
				collected = append(collected, row)
			}
		}
		n++
		if flusher != nil && (n == 1 || n%flushEvery == 0) {
			flusher.Flush()
		}
		if s.opts.MaxRows > 0 && n >= s.opts.MaxRows {
			truncated = true
			break
		}
	}
	s.m.RowsStreamed.Add(int64(n))

	// The document is always closed well-formed; what ended it travels in
	// the trailers.
	switch err := rows.Err(); {
	case err != nil:
		s.m.QueriesCancelled.Add(1)
		w.Header().Set(TrailerError, err.Error())
	case cancelled:
		s.m.QueriesCancelled.Add(1)
		w.Header().Set(TrailerError, ctx.Err().Error())
	case truncated:
		s.m.QueriesOK.Add(1)
		s.m.Truncated.Add(1)
		w.Header().Set(TrailerTruncated, strconv.Itoa(n))
	default:
		s.m.QueriesOK.Add(1)
		if collecting {
			// Clean and complete: the collected rows are exactly the result
			// set at the cursor's pinned snapshot.
			e := cache.NewEntry(p.Vars(), collected, rows.Footprint(), rows.Epoch())
			if leader {
				admit = e
			} else {
				s.results.Put(key, e)
			}
		}
	}
	if err := wr.finish(); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// replayCached streams a cached entry through the same writer machinery as a
// live run: identical bytes, flush cadence, MaxRows cap, and trailer
// semantics — the only observable difference is the X-Turbohom-Cache header
// (and the latency).
func (s *Server) replayCached(w http.ResponseWriter, ctx context.Context, ct string, e *cache.Entry) {
	w.Header().Set("Content-Type", ct)
	w.Header().Set(HeaderCache, "hit")
	w.Header().Set("Trailer", TrailerTruncated+", "+TrailerError)
	flusher, _ := w.(http.Flusher)
	wr := newResultWriter(ct, w)
	if err := wr.writeHead(e.Vars); err != nil {
		s.m.QueriesCancelled.Add(1)
		return
	}
	n := 0
	truncated := false
	cancelled := false
	for _, row := range e.Rows {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		if err := wr.writeRow(row); err != nil {
			s.m.RowsStreamed.Add(int64(n))
			s.m.QueriesCancelled.Add(1)
			return
		}
		n++
		if flusher != nil && (n == 1 || n%flushEvery == 0) {
			flusher.Flush()
		}
		if s.opts.MaxRows > 0 && n >= s.opts.MaxRows {
			truncated = true
			break
		}
	}
	s.m.RowsStreamed.Add(int64(n))
	switch {
	case cancelled:
		s.m.QueriesCancelled.Add(1)
		w.Header().Set(TrailerError, ctx.Err().Error())
	case truncated:
		s.m.QueriesOK.Add(1)
		s.m.Truncated.Add(1)
		w.Header().Set(TrailerTruncated, strconv.Itoa(n))
	default:
		s.m.QueriesOK.Add(1)
	}
	if err := wr.finish(); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// queryError maps a query failure with zero bytes written to an HTTP
// status.
func (s *Server) queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.m.QueriesCancelled.Add(1)
		httpError(w, http.StatusServiceUnavailable, "query timed out")
	case errors.Is(err, context.Canceled):
		s.m.QueriesCancelled.Add(1)
		httpError(w, http.StatusServiceUnavailable, "query cancelled")
	default:
		s.m.QueriesFailed.Add(1)
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleUpdate applies a SPARQL UPDATE request (INSERT DATA / DELETE DATA).
func (s *Server) handleUpdate(w http.ResponseWriter, update string) {
	if s.opts.ReadOnly {
		s.m.UpdatesFailed.Add(1)
		httpError(w, http.StatusForbidden, "server is read-only")
		return
	}
	ins, del, err := s.store.Update(update)
	if err != nil {
		s.m.UpdatesFailed.Add(1)
		var pe *sparql.ParseError
		if errors.As(err, &pe) {
			httpError(w, http.StatusBadRequest, err.Error())
		} else {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.m.UpdatesOK.Add(1)
	s.m.TriplesInserted.Add(int64(ins))
	s.m.TriplesDeleted.Add(int64(del))
	w.Header().Set(headerInserted, strconv.Itoa(ins))
	w.Header().Set(headerDeleted, strconv.Itoa(del))
	w.WriteHeader(http.StatusNoContent)
}

// healthResponse is the /healthz JSON body.
type healthResponse struct {
	Status         string          `json:"status"`
	Triples        int             `json:"triples"`
	Vertices       int             `json:"vertices"`
	Edges          int             `json:"edges"`
	Transformation string          `json:"transformation"`
	HeapAlloc      uint64          `json:"heap_alloc"`
	HeapSys        uint64          `json:"heap_sys"`
	NumGoroutine   int             `json:"num_goroutine"`
	PreparedCached int             `json:"prepared_cached"`
	ResultCache    cache.Stats     `json:"result_cache"`
	Metrics        MetricsSnapshot `json:"metrics"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := s.store.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthResponse{ //nolint:errcheck // best-effort health body
		Status:         "ok",
		Triples:        st.Triples,
		Vertices:       st.Vertices,
		Edges:          st.Edges,
		Transformation: st.Transformation,
		HeapAlloc:      ms.HeapAlloc,
		HeapSys:        ms.HeapSys,
		NumGoroutine:   runtime.NumGoroutine(),
		PreparedCached: s.cache.len(),
		ResultCache:    s.results.Stats(),
		Metrics:        s.m.snapshot(),
	})
}
